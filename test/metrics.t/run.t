The telemetry surface end to end: a daemon with an access log and a
Prometheus file sink, the metrics op in both formats, the `ovo top`
dashboard, a graceful shutdown that CRC-closes the access log, and a
SIGKILL'd daemon whose log reopens cleanly (torn tail truncated).

  $ SOCK=/tmp/ovo-metrics-cram-$$.sock
  $ ovo serve --listen "$SOCK" --idle-timeout 60 \
  >   --access-log access.rlog --prom prom.txt > serve.log 2>&1 &
  $ for i in $(seq 50); do
  >   ovo submit --connect "$SOCK" --ping > /dev/null 2>&1 && break
  >   sleep 0.2
  > done

One cache-cold solve and one hit give the counters known values:

  $ ovo submit --connect "$SOCK" --family hwb-6 | grep cached
  cached            : false
  $ ovo submit --connect "$SOCK" --family hwb-6 | grep cached
  cached            : true

The metrics op returns the aggregated-telemetry object (schema in
doc/service.md) — outcome tallies, queue/worker gauges, windows and
latency distributions:

  $ M=$(ovo submit --connect "$SOCK" --metrics)
  $ echo "$M" | grep -o '"outcomes":{[^}]*}'
  "outcomes":{"ok":2,"cached":1,"cancelled":0,"rejected":0,"errors":0}
  $ echo "$M" | grep -o '"queue":{"depth":[0-9]*,"cap":64}'
  "queue":{"depth":0,"cap":64}
  $ echo "$M" | grep -o '"total":2'
  "total":2
  $ for key in uptime_s rps_1s rps_10s rps_60s cache_hit_rate_60s \
  >            solve queue_wait request engine gc; do
  >   echo "$M" | grep -q "\"$key\"" || echo "missing $key"
  > done

The same op in Prometheus text format 0.0.4 — one TYPE per family,
per-endpoint counters, histogram buckets with a +Inf bound:

  $ ovo submit --connect "$SOCK" --prom > prom.out
  $ grep -c '^# TYPE ovo_requests_total counter$' prom.out
  1
  $ grep '^ovo_requests_total{endpoint="solve"}' prom.out
  ovo_requests_total{endpoint="solve"} 2
  $ grep -c '^ovo_solve_duration_ms_bucket{le="+Inf"} 2$' prom.out
  1
  $ grep '^ovo_solve_duration_ms_count ' prom.out
  ovo_solve_duration_ms_count 2

`ovo top --once` prints a single scriptable frame of the same numbers:

  $ ovo top --once --connect "$SOCK" | grep '^outcomes'
  outcomes ok 2  cached 1  cancelled 0  rejected 0  errors 0
  $ ovo top --once --connect "$SOCK" | grep -c '^queue'
  1

Graceful shutdown drains, writes the final Prometheus exposition and
CRC-closes the access log:

  $ ovo submit --connect "$SOCK" --shutdown
  bye
  $ for i in $(seq 50); do test -e "$SOCK" || break; sleep 0.2; done
  $ grep '^ovo_requests_total{endpoint="solve"} 2$' prom.txt
  ovo_requests_total{endpoint="solve"} 2
  $ grep 'existing entr' serve.log
  [1]

Both solve requests are in the access log — outcome, digest, cache
flag and the tight bound window of an exact answer:

  $ ovo access-log access.rlog | awk '{print $2, $3, $4, $5, $8}'
  #0 ok 6:4fa2c3ee100b867a cached=false bounds=[21,21]
  #1 cached 6:4fa2c3ee100b867a cached=true bounds=[21,21]

A second daemon reopens the same log (2 existing entries), serves one
more request, and dies hard — SIGKILL, no drain, no close:

  $ SOCK2=/tmp/ovo-metrics-cram2-$$.sock
  $ ovo serve --listen "$SOCK2" --idle-timeout 60 \
  >   --access-log access.rlog > serve2.log 2>&1 &
  $ PID=$!
  $ for i in $(seq 50); do
  >   ovo submit --connect "$SOCK2" --ping > /dev/null 2>&1 && break
  >   sleep 0.2
  > done
  $ ovo submit --connect "$SOCK2" --family hwb-6 > /dev/null
  $ kill -9 $PID
  $ wait $PID 2> /dev/null || true
  $ rm -f "$SOCK2"
  $ grep -o 'access log access.rlog: 2 existing' serve2.log
  access log access.rlog: 2 existing

Every entry appended before the kill survives — appends hit the file
per record, so SIGKILL costs at most a torn tail, never a synced
prefix:

  $ ovo access-log access.rlog | awk '{print $2, $3, $5}'
  #0 ok cached=false
  #1 cached cached=true
  #0 ok cached=false

Simulate a torn tail (a crash mid-append): the damaged record is
discarded and reported, everything before it reads back intact:

  $ truncate -s -3 access.rlog
  $ ovo access-log access.rlog 2> err.log | awk '{print $2, $3}'
  #0 ok
  #1 cached
  $ sed 's/[0-9]* trailing/N trailing/' err.log
  [ovo] N trailing bytes discarded (torn tail)

(* The routing layer: consistent-hash placement (exact monotone
   disruption bounds, purity in the live set, replica distinctness —
   all qcheck'd), the health registry, and an in-process end-to-end
   run: three shards behind a router over temp Unix sockets, including
   failover after a shard dies and shard_down when every owner is
   gone.  The load-bearing property is bit-identical answers: whatever
   the fleet returns must equal what one daemon returns. *)

module P = Ovo_serve.Protocol
module Server = Ovo_serve.Server
module Client = Ovo_serve.Client
module Shard_map = Ovo_router.Shard_map
module Health = Ovo_router.Health
module Router = Ovo_router.Router

let all_up _ = true

let mk_shards names =
  List.map
    (fun name -> { Shard_map.name; addr = P.Unix_sock (name ^ ".sock") })
    names

let shard_names n = List.init n (fun i -> Printf.sprintf "s%02d" i)

let owner_name strategy names key =
  let m = Shard_map.make ~strategy (mk_shards names) in
  match Shard_map.owner m ~live:all_up key with
  | Some s -> s.Shard_map.name
  | None -> Alcotest.fail "no owner with all shards live"

let strategies =
  [ ("rendezvous", Shard_map.Rendezvous);
    ("ring", Shard_map.Ring { vnodes = 64 }) ]

let unit_tests =
  [
    Helpers.case "make rejects empty and duplicate shard lists" (fun () ->
        let bad l =
          match Shard_map.make ~strategy:Shard_map.Rendezvous l with
          | exception Invalid_argument _ -> true
          | _ -> false
        in
        Helpers.check_bool "empty" true (bad []);
        Helpers.check_bool "dup" true (bad (mk_shards [ "a"; "a" ])));
    Helpers.case "strategy_of_string parses and roundtrips" (fun () ->
        let ok s expect =
          match Shard_map.strategy_of_string s with
          | Ok st -> Helpers.check_bool s true (st = expect)
          | Error (`Msg m) -> Alcotest.fail m
        in
        ok "rendezvous" Shard_map.Rendezvous;
        ok "hrw" Shard_map.Rendezvous;
        ok "ring" (Shard_map.Ring { vnodes = 64 });
        ok "ring:7" (Shard_map.Ring { vnodes = 7 });
        Helpers.check_bool "garbage rejected" true
          (Result.is_error (Shard_map.strategy_of_string "ring:0"));
        Helpers.check_bool "roundtrip" true
          (Shard_map.strategy_of_string
             (Shard_map.strategy_to_string (Shard_map.Ring { vnodes = 9 }))
          = Ok (Shard_map.Ring { vnodes = 9 })));
    Helpers.case "input order does not matter" (fun () ->
        List.iter
          (fun (_, strategy) ->
            let key = "somekey" in
            let fwd = owner_name strategy (shard_names 5) key in
            let rev = owner_name strategy (List.rev (shard_names 5)) key in
            Helpers.check_bool "same owner" true (fwd = rev))
          strategies);
    Helpers.case "dead primary falls over to the next replica" (fun () ->
        List.iter
          (fun (_, strategy) ->
            let m = Shard_map.make ~strategy (mk_shards (shard_names 4)) in
            let key = "k" in
            match Shard_map.owners ~replicas:2 m ~live:all_up key with
            | [ a; b ] ->
                let live n = n <> a.Shard_map.name in
                (match Shard_map.owner m ~live key with
                | Some s ->
                    Helpers.check_bool "failover is the old second" true
                      (s.Shard_map.name = b.Shard_map.name)
                | None -> Alcotest.fail "no owner");
                Helpers.check_bool "distinct replicas" true
                  (a.Shard_map.name <> b.Shard_map.name)
            | _ -> Alcotest.fail "expected two owners")
          strategies);
    Helpers.case "no live shard means no owner" (fun () ->
        let m =
          Shard_map.make ~strategy:Shard_map.Rendezvous
            (mk_shards (shard_names 3))
        in
        Helpers.check_bool "empty" true
          (Shard_map.owners ~replicas:2 m ~live:(fun _ -> false) "k" = []));
    Helpers.case "health: probe sweep and data-path feeders flip liveness"
      (fun () ->
        let changes = ref [] in
        let h =
          Health.start ~interval:60. ~timeout:0.1
            ~on_change:(fun n up -> changes := (n, up) :: !changes)
            [ ("a", P.Unix_sock "/nonexistent-a.sock");
              ("b", P.Unix_sock "/nonexistent-b.sock") ]
        in
        Fun.protect
          ~finally:(fun () -> Health.stop h)
          (fun () ->
            (* the initial probe sweep (unreachable sockets fail fast)
               corrects the optimistic start; the next sweep is 60 s out,
               so after it the data-path feeders act alone *)
            let deadline = Unix.gettimeofday () +. 5. in
            while
              (Health.is_up h "a" || Health.is_up h "b")
              && Unix.gettimeofday () < deadline
            do
              Thread.delay 0.02
            done;
            Helpers.check_bool "probe marked a down" false (Health.is_up h "a");
            Helpers.check_bool "probe marked b down" false (Health.is_up h "b");
            Health.mark_up h "a";
            Helpers.check_bool "a up" true (Health.is_up h "a");
            Helpers.check_bool "b untouched" false (Health.is_up h "b");
            Health.mark_down h "a";
            Helpers.check_bool "a down again" false (Health.is_up h "a");
            Helpers.check_bool "transitions seen" true
              (List.mem ("a", false) !changes && List.mem ("a", true) !changes);
            Helpers.check_bool "snapshot lists both" true
              (List.map (fun (n, up, _) -> (n, up)) (Health.snapshot h)
              = [ ("a", false); ("b", false) ])));
  ]

(* --- consistent-hashing properties ------------------------------------ *)

let gen_key =
  QCheck.Gen.(string_size ~gen:printable (int_range 1 40))

let arb_key = QCheck.make ~print:(fun s -> s) gen_key

let props =
  List.concat_map
    (fun (sname, strategy) ->
      [
        QCheck.Test.make
          ~name:
            (Printf.sprintf
               "%s: routing is a pure function of (key, live set)" sname)
          ~count:200
          QCheck.(pair arb_key (int_range 1 8))
          (fun (key, n) ->
            let names = shard_names n in
            let a = owner_name strategy names key in
            let b = owner_name strategy names key in
            a = b);
        QCheck.Test.make
          ~name:
            (Printf.sprintf
               "%s: adding a shard moves a key only onto the new shard"
               sname)
          ~count:100
          QCheck.(pair (int_range 2 8) small_nat)
          (fun (n, salt) ->
            (* exact monotone property, no statistical slack: for every
               key, the owner under [n+1] shards is either the owner
               under [n] shards or the shard that was added *)
            let names = shard_names n in
            let added = Printf.sprintf "added%d" salt in
            let grown = names @ [ added ] in
            List.for_all
              (fun i ->
                let key = Printf.sprintf "key-%d-%d" salt i in
                let before = owner_name strategy names key in
                let after = owner_name strategy grown key in
                after = before || after = added)
              (List.init 50 Fun.id));
        QCheck.Test.make
          ~name:
            (Printf.sprintf
               "%s: removing a shard only rehomes that shard's keys" sname)
          ~count:100
          QCheck.(int_range 3 8)
          (fun n ->
            (* removal seen as failure: keys not owned by the dead shard
               keep their owner exactly *)
            let names = shard_names n in
            let m = Shard_map.make ~strategy (mk_shards names) in
            let dead = List.hd names in
            let live n = n <> dead in
            List.for_all
              (fun i ->
                let key = Printf.sprintf "key-%d" i in
                match Shard_map.owner m ~live:all_up key with
                | None -> false
                | Some before ->
                    if before.Shard_map.name = dead then true
                    else
                      Shard_map.owner m ~live key
                      = Some before)
              (List.init 60 Fun.id));
        QCheck.Test.make
          ~name:
            (Printf.sprintf "%s: about 1/N of keys move on shard add" sname)
          ~count:10
          QCheck.(int_range 3 6)
          (fun n ->
            let names = shard_names n in
            let grown = names @ [ "extra" ] in
            let keys = List.init 400 (Printf.sprintf "bulk-key-%d") in
            let moved =
              List.length
                (List.filter
                   (fun k ->
                     owner_name strategy names k
                     <> owner_name strategy grown k)
                   keys)
            in
            (* expectation is 400/(n+1); accept a generous band — the
               point is "a fraction", not "all" or "none" *)
            let expect = 400. /. float_of_int (n + 1) in
            float_of_int moved > 0.3 *. expect
            && float_of_int moved < 3. *. expect);
        QCheck.Test.make
          ~name:(Printf.sprintf "%s: replica lists are distinct shards" sname)
          ~count:100
          QCheck.(pair arb_key (int_range 2 8))
          (fun (key, n) ->
            let m = Shard_map.make ~strategy (mk_shards (shard_names n)) in
            let owners =
              Shard_map.owners ~replicas:3 m ~live:all_up key
              |> List.map (fun s -> s.Shard_map.name)
            in
            List.length owners = min 3 n
            && List.length (List.sort_uniq compare owners)
               = List.length owners);
      ])
    strategies

(* --- end-to-end: three shards behind a router ------------------------- *)

let temp_sock () =
  let path = Filename.temp_file "ovo-router-test" ".sock" in
  Sys.remove path;
  path

let expect_ok = function
  | Ok (r : P.reply) -> r
  | Error (`Msg m) -> Alcotest.fail m

let solve_op ?deadline_ms table =
  P.Solve
    { P.table; kind = Ovo_core.Compact.Bdd; engine = Ovo_core.Engine.Seq;
      deadline_ms }

let start_shard name =
  let sock = temp_sock () in
  let cfg =
    { (Server.default_config ~listen:(P.Unix_sock sock)) with
      Server.workers = 1; shard_id = Some name }
  in
  let server = Server.start cfg in
  let waiter = Thread.create (fun () -> Server.wait server) () in
  (name, sock, server, waiter)

let stop_shard (_, _, server, waiter) =
  Server.shutdown server;
  Thread.join waiter

let with_fleet ?(n = 3) ?(replicas = 2) f =
  let shards = List.init n (fun i -> start_shard (Printf.sprintf "s%d" i)) in
  let rsock = temp_sock () in
  let cfg =
    { (Router.default_config ~listen:(P.Unix_sock rsock)
         ~shards:
           (List.map
              (fun (name, sock, _, _) ->
                { Shard_map.name; addr = P.Unix_sock sock })
              shards))
      with
      Router.replicas;
      (* long probe interval: failover in these tests must come from the
         data path alone, which is the stronger claim *)
      health_interval = 60.;
      connect_timeout = 1.0;
      backoff_ms = 5. }
  in
  let router = Router.start cfg in
  let rwaiter = Thread.create (fun () -> Router.wait router) () in
  Fun.protect
    ~finally:(fun () ->
      Router.shutdown router;
      Thread.join rwaiter;
      List.iter
        (fun ((_, _, server, _) as s) ->
          (* idempotent: some tests stop shards themselves *)
          Server.shutdown server;
          stop_shard s)
        shards)
    (fun () -> f ~router_addr:(P.Unix_sock rsock) ~shards)

let tables =
  [ "0110100110010110"; "0000000011111111"; "0110"; "10010110";
    "1111000011110000"; "01101001"; "0101010101010101"; "0011001111001100" ]

let e2e_tests =
  [
    Helpers.case "fleet answers are bit-identical to a lone daemon"
      (fun () ->
        (* reference run: one daemon, no router *)
        let (_, ssock, _, _) as lone = start_shard "lone" in
        let reference =
          Fun.protect
            ~finally:(fun () -> stop_shard lone)
            (fun () ->
              Client.with_conn (P.Unix_sock ssock) @@ fun c ->
              List.map
                (fun t ->
                  match
                    (expect_ok (Client.roundtrip c { P.id = 0; op = solve_op t }))
                      .P.body
                  with
                  | P.Ok_solve r -> (r.P.digest, r.P.mincost, r.P.order)
                  | _ -> Alcotest.fail "reference solve failed")
                tables)
        in
        with_fleet (fun ~router_addr ~shards:_ ->
            Client.with_conn router_addr @@ fun c ->
            (* ping answers from the router itself *)
            Helpers.check_bool "ping" true
              ((expect_ok (Client.roundtrip c { P.id = 7; op = P.Ping })).P.body
              = P.Pong);
            List.iteri
              (fun i t ->
                match
                  (expect_ok (Client.roundtrip c { P.id = i; op = solve_op t }))
                    .P.body
                with
                | P.Ok_solve r ->
                    Helpers.check_bool "identical answer" true
                      (List.nth reference i
                      = (r.P.digest, r.P.mincost, r.P.order))
                | _ -> Alcotest.fail "fleet solve failed")
              tables;
            (* second pass: all cache hits, still identical *)
            List.iteri
              (fun i t ->
                match
                  (expect_ok (Client.roundtrip c { P.id = i; op = solve_op t }))
                    .P.body
                with
                | P.Ok_solve r ->
                    Helpers.check_bool "cache hit on repeat" true r.P.cached;
                    Helpers.check_bool "identical cached answer" true
                      (List.nth reference i
                      = (r.P.digest, r.P.mincost, r.P.order))
                | _ -> Alcotest.fail "fleet re-solve failed")
              tables))
    ;
    Helpers.case "solve_many streams per-item replies in order" (fun () ->
        with_fleet (fun ~router_addr ~shards:_ ->
            Client.with_conn router_addr @@ fun c ->
            let items =
              List.map
                (fun t ->
                  { P.table = t; kind = Ovo_core.Compact.Bdd;
                    engine = Ovo_core.Engine.Seq; deadline_ms = None })
                tables
            in
            Client.send c { P.id = 5; op = P.Solve_many items };
            let n = List.length items in
            let replies = List.init n (fun _ -> expect_ok (Client.recv c)) in
            List.iteri
              (fun k r ->
                Helpers.check_bool "id echoed" true (r.P.r_id = 5);
                Helpers.check_bool "item tag in order" true
                  (r.P.item = Some k);
                match r.P.body with
                | P.Ok_solve ok ->
                    (* answer must match a direct single solve *)
                    let direct =
                      (expect_ok
                         (Client.roundtrip c
                            { P.id = 100 + k;
                              op = solve_op (List.nth tables k) }))
                        .P.body
                    in
                    (match direct with
                    | P.Ok_solve d ->
                        Helpers.check_bool "batch = single" true
                          (d.P.digest = ok.P.digest
                          && d.P.mincost = ok.P.mincost
                          && d.P.order = ok.P.order)
                    | _ -> Alcotest.fail "direct solve failed")
                | _ -> Alcotest.fail "expected per-item solve reply")
              replies;
            (* an empty batch is a bad request, answered locally *)
            match
              (expect_ok (Client.roundtrip c { P.id = 6; op = P.Solve_many [] }))
                .P.body
            with
            | P.Error { code = P.Bad_request; _ } -> ()
            | _ -> Alcotest.fail "expected bad_request for empty batch"))
    ;
    Helpers.case "per-item deadlines cancel items, not the batch" (fun () ->
        with_fleet (fun ~router_addr ~shards:_ ->
            Client.with_conn router_addr @@ fun c ->
            let item ?deadline_ms t =
              { P.table = t; kind = Ovo_core.Compact.Bdd;
                engine = Ovo_core.Engine.Seq; deadline_ms }
            in
            Client.send c
              { P.id = 9;
                op =
                  P.Solve_many
                    [ item "0110100110010110";
                      item ~deadline_ms:0. "1001011001101001";
                      item "0110" ] };
            let r0 = expect_ok (Client.recv c) in
            let r1 = expect_ok (Client.recv c) in
            let r2 = expect_ok (Client.recv c) in
            (match (r0.P.body, r1.P.body, r2.P.body) with
            | P.Ok_solve _, P.Cancelled _, P.Ok_solve _ -> ()
            | _ -> Alcotest.fail "expected ok / cancelled / ok");
            Helpers.check_bool "items tagged 0,1,2" true
              (List.map (fun r -> r.P.item) [ r0; r1; r2 ]
              = [ Some 0; Some 1; Some 2 ])))
    ;
    Helpers.case "failover: killing one shard loses no requests" (fun () ->
        with_fleet ~n:3 ~replicas:2 (fun ~router_addr ~shards ->
            (* warm: learn each table's answer through the router *)
            let answers =
              Client.with_conn router_addr @@ fun c ->
              List.map
                (fun t ->
                  match
                    (expect_ok (Client.roundtrip c { P.id = 0; op = solve_op t }))
                      .P.body
                  with
                  | P.Ok_solve r -> (t, (r.P.digest, r.P.mincost))
                  | _ -> Alcotest.fail "warm solve failed")
                tables
            in
            (* kill the first shard outright *)
            stop_shard (List.hd shards);
            (* every table must still answer, on a fresh connection,
               bit-identically — replicas=2 guarantees a live owner *)
            Client.with_conn router_addr @@ fun c ->
            List.iteri
              (fun i (t, expect) ->
                match
                  (expect_ok (Client.roundtrip c { P.id = i; op = solve_op t }))
                    .P.body
                with
                | P.Ok_solve r ->
                    Helpers.check_bool "failover answer identical" true
                      ((r.P.digest, r.P.mincost) = expect)
                | P.Error { code; _ } ->
                    Alcotest.fail
                      ("unexpected error after failover: "
                      ^ P.error_code_to_string code)
                | _ -> Alcotest.fail "unexpected reply after failover")
              answers))
    ;
    Helpers.case "shard_down only when every owner is dead" (fun () ->
        (* consistent hashing rehomes a dead shard's keys onto the live
           ones (that is the point), so shard_down appears only when the
           whole live set is exhausted *)
        with_fleet ~n:2 ~replicas:2 (fun ~router_addr ~shards ->
            (* one shard down: everything still answers *)
            stop_shard (List.hd shards);
            (Client.with_conn router_addr @@ fun c ->
             List.iter
               (fun t ->
                 match
                   (expect_ok (Client.roundtrip c { P.id = 0; op = solve_op t }))
                     .P.body
                 with
                 | P.Ok_solve _ -> ()
                 | _ -> Alcotest.fail "one live shard must still answer")
               tables);
            (* both shards down: every solve is shard_down, nothing hangs,
               and the router itself keeps answering local ops *)
            List.iter stop_shard (List.tl shards);
            Client.with_conn router_addr @@ fun c ->
            List.iter
              (fun t ->
                match
                  (expect_ok (Client.roundtrip c { P.id = 1; op = solve_op t }))
                    .P.body
                with
                | P.Error { code = P.Shard_down; _ } -> ()
                | _ -> Alcotest.fail "expected shard_down with no live shard")
              tables;
            (* batches degrade the same way, per item *)
            Client.send c
              { P.id = 2;
                op =
                  P.Solve_many
                    (List.map
                       (fun t ->
                         { P.table = t; kind = Ovo_core.Compact.Bdd;
                           engine = Ovo_core.Engine.Seq; deadline_ms = None })
                       [ "0110"; "1001" ]) };
            List.iter
              (fun k ->
                let r = expect_ok (Client.recv c) in
                Helpers.check_bool "item tagged" true (r.P.item = Some k);
                match r.P.body with
                | P.Error { code = P.Shard_down; _ } -> ()
                | _ -> Alcotest.fail "expected per-item shard_down")
              [ 0; 1 ];
            Helpers.check_bool "ping still local" true
              ((expect_ok (Client.roundtrip c { P.id = 3; op = P.Ping })).P.body
              = P.Pong)))
    ;
    Helpers.case "router stats report shards and routed requests" (fun () ->
        with_fleet (fun ~router_addr ~shards:_ ->
            Client.with_conn router_addr @@ fun c ->
            ignore
              (expect_ok
                 (Client.roundtrip c
                    { P.id = 0; op = solve_op "0110100110010110" }));
            match
              (expect_ok (Client.roundtrip c { P.id = 1; op = P.Stats })).P.body
            with
            | P.Ok_stats s ->
                let open Ovo_obs.Json in
                Helpers.check_bool "role=router" true
                  (Option.bind (member "role" s) to_string_opt = Some "router");
                let shards_obj = member "shards" s in
                Helpers.check_bool "three shard rows" true
                  (match shards_obj with
                  | Some (Obj rows) -> List.length rows = 3
                  | _ -> false)
            | _ -> Alcotest.fail "expected stats"))
    ;
  ]

let () =
  Alcotest.run "router"
    [
      ("shard-map", unit_tests);
      ("hash-props", Helpers.qtests props);
      ("e2e", e2e_tests);
    ]

(* The persistence layer: CRC framing, record-log crash recovery, the
   durable result store, and checkpoint/resume of the exact DP.

   The crash-injection tests exercise the two corruption modes the log
   must survive: a torn tail (kill -9 mid-append — the file ends inside
   a record) and a flipped byte inside a CRC-covered region (bit rot or
   a foreign writer).  Both must truncate recovery to exactly the valid
   prefix, never abort and never surface a damaged record. *)

module Crc32 = Ovo_store.Crc32
module Codec = Ovo_store.Codec
module Rlog = Ovo_store.Rlog
module Rs = Ovo_store.Result_store
module Ck = Ovo_store.Checkpoint
module Tt = Ovo_boolfun.Truthtable
module Fs = Ovo_core.Fs

let tmpdir () =
  let d = Filename.temp_file "ovo-store-test" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let tmpfile () =
  let f = Filename.temp_file "ovo-store-test" ".bin" in
  Sys.remove f;
  f

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* --- crc32 ------------------------------------------------------------ *)

let crc_tests =
  [
    Helpers.case "check vector" (fun () ->
        (* the classic CRC-32/ISO-HDLC test vector *)
        Helpers.check_bool "123456789" true
          (Crc32.string "123456789" = 0xCBF43926l));
    Helpers.case "empty" (fun () ->
        Helpers.check_bool "empty" true (Crc32.string "" = 0l));
    Helpers.case "streaming equals one-shot" (fun () ->
        let s = "the quick brown fox jumps over the lazy dog" in
        let b = Bytes.of_string s in
        let split = 17 in
        let crc1 = Crc32.update b ~pos:0 ~len:split in
        let crc2 =
          Crc32.update ~crc:crc1 b ~pos:split ~len:(Bytes.length b - split)
        in
        Helpers.check_bool "streamed" true (crc2 = Crc32.string s));
    Helpers.case "sensitive to every byte" (fun () ->
        let s = Bytes.of_string "abcdefgh" in
        let base = Crc32.update s ~pos:0 ~len:8 in
        for i = 0 to 7 do
          let m = Bytes.copy s in
          Bytes.set m i (Char.chr (Char.code (Bytes.get m i) lxor 1));
          Helpers.check_bool "differs" true
            (Crc32.update m ~pos:0 ~len:8 <> base)
        done);
  ]

(* --- codec ------------------------------------------------------------ *)

let codec_tests =
  [
    Helpers.case "roundtrip" (fun () ->
        let b = Buffer.create 64 in
        Codec.u8 b 0xAB;
        Codec.u32 b 0xDEADBEEF;
        Codec.u64 b (-42);
        Codec.u64 b max_int;
        Codec.str b "hello";
        Codec.int_array b [| 0; 1; -1; 1 lsl 40 |];
        let r = Codec.reader (Buffer.contents b) in
        Helpers.check_int "u8" 0xAB (Codec.r_u8 r);
        Helpers.check_int "u32" 0xDEADBEEF (Codec.r_u32 r);
        Helpers.check_int "u64 neg" (-42) (Codec.r_u64 r);
        Helpers.check_int "u64 max" max_int (Codec.r_u64 r);
        Alcotest.(check string) "str" "hello" (Codec.r_str r);
        Alcotest.(check (array int))
          "int_array"
          [| 0; 1; -1; 1 lsl 40 |]
          (Codec.r_int_array r);
        Codec.expect_end r);
    Helpers.case "short data raises Corrupt" (fun () ->
        let r = Codec.reader "\x01\x02" in
        Alcotest.check_raises "u32" (Codec.Corrupt "u32") (fun () ->
            ignore (Codec.r_u32 r)));
    Helpers.case "trailing bytes raise Corrupt" (fun () ->
        let r = Codec.reader "\x01\x02" in
        ignore (Codec.r_u8 r);
        Alcotest.check_raises "end" (Codec.Corrupt "trailing bytes")
          (fun () -> Codec.expect_end r));
    Helpers.case "corrupt array count does not OOM" (fun () ->
        let b = Buffer.create 8 in
        Codec.u32 b 0xFFFFFF;
        let r = Codec.reader (Buffer.contents b) in
        Alcotest.check_raises "count" (Codec.Corrupt "int_array") (fun () ->
            ignore (Codec.r_int_array r)));
    Helpers.case "varint/svarint roundtrip and sizes" (fun () ->
        let unsigned = [ 0; 1; 127; 128; 300; 16383; 16384; max_int ] in
        let signed =
          [ 0; -1; 1; -64; 64; -100000; 100000; 1 lsl 60; -(1 lsl 60) ]
        in
        let b = Buffer.create 64 in
        List.iter (Codec.varint b) unsigned;
        List.iter (Codec.svarint b) signed;
        let r = Codec.reader (Buffer.contents b) in
        List.iter
          (fun v -> Helpers.check_int "varint" v (Codec.r_varint r))
          unsigned;
        List.iter
          (fun v -> Helpers.check_int "svarint" v (Codec.r_svarint r))
          signed;
        Codec.expect_end r;
        let size v =
          let b = Buffer.create 10 in
          Codec.varint b v;
          Buffer.length b
        in
        Helpers.check_int "one byte below 128" 1 (size 127);
        Helpers.check_int "two bytes at 128" 2 (size 128);
        Helpers.check_bool "negative rejected" true
          (match Codec.varint (Buffer.create 4) (-1) with
          | exception Invalid_argument _ -> true
          | _ -> false));
    Helpers.case "truncated varint raises Corrupt" (fun () ->
        let r = Codec.reader "\x80\x80" in
        Helpers.check_bool "truncated" true
          (match Codec.r_varint r with
          | exception Codec.Corrupt _ -> true
          | _ -> false);
        (* 10 continuation bytes overflow a 63-bit int *)
        let r = Codec.reader "\xff\xff\xff\xff\xff\xff\xff\xff\xff\x7f" in
        Helpers.check_bool "overflow" true
          (match Codec.r_varint r with
          | exception Codec.Corrupt _ -> true
          | _ -> false));
  ]

(* --- rlog ------------------------------------------------------------- *)

let rlog_tests =
  [
    Helpers.case "roundtrip and reopen-append" (fun () ->
        let path = tmpfile () in
        let t = Rlog.create path in
        Rlog.append t ~rtype:1 "first";
        Rlog.append t ~rtype:2 "";
        Rlog.close t;
        (match Rlog.read path with
        | Ok (rs, rc) ->
            Helpers.check_int "records" 2 (List.length rs);
            Helpers.check_int "discarded" 0 rc.Rlog.rec_discarded_bytes;
            Helpers.check_bool "payloads" true
              (List.map (fun r -> (r.Rlog.rtype, r.Rlog.payload)) rs
              = [ (1, "first"); (2, "") ])
        | Error m -> Alcotest.fail m);
        let t, rs, _ = Rlog.open_append path in
        Helpers.check_int "recovered" 2 (List.length rs);
        Rlog.append t ~rtype:3 "third";
        Rlog.close t;
        match Rlog.read path with
        | Ok (rs, _) -> Helpers.check_int "after append" 3 (List.length rs)
        | Error m -> Alcotest.fail m);
    Helpers.case "torn tail: truncation keeps the valid prefix" (fun () ->
        let path = tmpfile () in
        let t = Rlog.create path in
        Rlog.append t ~rtype:1 "alpha";
        Rlog.append t ~rtype:1 "beta";
        Rlog.append t ~rtype:1 "gamma";
        Rlog.close t;
        let whole = read_file path in
        (* cut inside the last record — a kill -9 mid-write *)
        write_file path (String.sub whole 0 (String.length whole - 3));
        let t, rs, rc = Rlog.open_append path in
        Helpers.check_int "valid prefix" 2 (List.length rs);
        Helpers.check_bool "torn bytes counted" true
          (rc.Rlog.rec_discarded_bytes > 0);
        (* appending after recovery yields a clean log again *)
        Rlog.append t ~rtype:1 "delta";
        Rlog.close t;
        (match Rlog.read path with
        | Ok (rs, rc) ->
            Helpers.check_bool "clean after re-append" true
              (List.map (fun r -> r.Rlog.payload) rs
               = [ "alpha"; "beta"; "delta" ]
              && rc.Rlog.rec_discarded_bytes = 0)
        | Error m -> Alcotest.fail m));
    Helpers.case "bit flip: CRC rejects the record and its suffix"
      (fun () ->
        let path = tmpfile () in
        let t = Rlog.create path in
        Rlog.append t ~rtype:1 "alpha";
        Rlog.append t ~rtype:1 "beta";
        Rlog.append t ~rtype:1 "gamma";
        Rlog.close t;
        let whole = Bytes.of_string (read_file path) in
        (* flip one payload byte of the middle record: 8B magic, then
           records of 8B framing + 6B body each — offset into "beta" *)
        let off = 8 + 14 + 8 + 2 in
        Bytes.set whole off
          (Char.chr (Char.code (Bytes.get whole off) lxor 0x10));
        write_file path (Bytes.to_string whole);
        (match Rlog.read path with
        | Ok (rs, rc) ->
            (* recovery cannot trust anything past the damage *)
            Helpers.check_int "prefix only" 1 (List.length rs);
            Helpers.check_bool "payload intact" true
              ((List.hd rs).Rlog.payload = "alpha");
            Helpers.check_bool "rest discarded" true
              (rc.Rlog.rec_discarded_bytes > 0)
        | Error m -> Alcotest.fail m);
        let t, rs, _ = Rlog.open_append path in
        Helpers.check_int "append past damage" 1 (List.length rs);
        Rlog.close t);
    Helpers.case "foreign magic refused" (fun () ->
        let path = tmpfile () in
        write_file path "NOTOVO!!record-shaped garbage";
        (match Rlog.read path with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected an error");
        match Rlog.open_append path with
        | exception Failure _ -> ()
        | t, _, _ ->
            Rlog.close t;
            Alcotest.fail "open_append accepted a foreign file");
    Helpers.case "write_atomic replaces wholesale" (fun () ->
        let path = tmpfile () in
        Rlog.write_atomic path [ (1, "old") ];
        Rlog.write_atomic path [ (1, "new-a"); (2, "new-b") ];
        match Rlog.read path with
        | Ok (rs, _) ->
            Helpers.check_bool "replaced" true
              (List.map (fun r -> r.Rlog.payload) rs = [ "new-a"; "new-b" ])
        | Error m -> Alcotest.fail m);
    Helpers.case "fsync mode parsing" (fun () ->
        Helpers.check_bool "always" true
          (Rlog.fsync_of_string "always" = Ok Rlog.Always);
        Helpers.check_bool "never" true
          (Rlog.fsync_of_string "never" = Ok Rlog.Never);
        Helpers.check_bool "interval" true
          (Rlog.fsync_of_string "interval" = Ok (Rlog.Interval 1.0));
        Helpers.check_bool "interval:0.25" true
          (Rlog.fsync_of_string "interval:0.25" = Ok (Rlog.Interval 0.25));
        Helpers.check_bool "garbage" true
          (match Rlog.fsync_of_string "sometimes" with
          | Error _ -> true
          | Ok _ -> false));
  ]

(* --- result store ----------------------------------------------------- *)

let entry_of tt kind =
  let canon, _ = Tt.canonicalize tt in
  let r = Fs.run ~kind canon in
  {
    Rs.digest = Tt.digest_of_canonical canon;
    kind;
    canon;
    mincost = r.Fs.mincost;
    size = r.Fs.size;
    canon_order = r.Fs.order;
    widths = r.Fs.widths;
  }

let entry_equal (a : Rs.entry) (b : Rs.entry) =
  a.Rs.digest = b.Rs.digest && a.Rs.kind = b.Rs.kind
  && Tt.equal a.Rs.canon b.Rs.canon
  && a.Rs.mincost = b.Rs.mincost && a.Rs.size = b.Rs.size
  && a.Rs.canon_order = b.Rs.canon_order && a.Rs.widths = b.Rs.widths

let store_tests =
  [
    Helpers.case "append, close, warm-load" (fun () ->
        let dir = tmpdir () in
        let e1 = entry_of (Tt.of_string "0110100110010110") Ovo_core.Compact.Bdd in
        let e2 = entry_of (Tt.of_string "01101001") Ovo_core.Compact.Zdd in
        let s = Rs.open_dir dir in
        Rs.append s e1;
        Rs.append s e2;
        Rs.close s;
        let s = Rs.open_dir dir in
        let st = Rs.stats s in
        Helpers.check_int "warm" 2 st.Rs.st_warm_loaded;
        Helpers.check_int "discarded" 0 st.Rs.st_discarded_records;
        (match Rs.entries s with
        | [ a; b ] ->
            Helpers.check_bool "e1" true (entry_equal a e1);
            Helpers.check_bool "e2" true (entry_equal b e2)
        | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es));
        Rs.close s);
    Helpers.case "last write wins per (digest, kind)" (fun () ->
        let dir = tmpdir () in
        let e = entry_of (Tt.of_string "0110100110010110") Ovo_core.Compact.Bdd in
        let e' = { e with Rs.size = e.Rs.size + 100 } in
        let s = Rs.open_dir dir in
        Rs.append s e;
        Rs.append s e';
        Rs.close s;
        let s = Rs.open_dir dir in
        (match Rs.entries s with
        | [ a ] -> Helpers.check_int "updated" e'.Rs.size a.Rs.size
        | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es));
        Rs.close s);
    Helpers.case "tampered record is discarded, rest survives" (fun () ->
        let dir = tmpdir () in
        let e1 = entry_of (Tt.of_string "0110100110010110") Ovo_core.Compact.Bdd in
        let e2 = entry_of (Tt.of_string "01101001") Ovo_core.Compact.Bdd in
        let s = Rs.open_dir dir in
        Rs.append s e1;
        Rs.append s e2;
        Rs.close s;
        (* Rewrite record 1's payload with a table that still decodes but
           no longer matches its stored digest — CRC-valid tampering.
           Easiest route: re-frame through the rlog layer. *)
        let wal = Filename.concat dir "results.wal" in
        (match Rlog.read wal with
        | Ok ([ r1; r2 ], _) ->
            let broken =
              { e1 with Rs.canon = Tt.of_string "0000000000000001" }
            in
            let t = Rlog.create wal in
            ignore r1;
            (* encode the broken entry via a throwaway store dir *)
            let enc_dir = tmpdir () in
            let enc = Rs.open_dir enc_dir in
            Rs.append enc broken;
            Rs.close enc;
            (match Rlog.read (Filename.concat enc_dir "results.wal") with
            | Ok ([ b ], _) -> Rlog.append t ~rtype:b.Rlog.rtype b.Rlog.payload
            | _ -> Alcotest.fail "bad encode");
            Rlog.append t ~rtype:r2.Rlog.rtype r2.Rlog.payload;
            Rlog.close t
        | _ -> Alcotest.fail "expected 2 wal records");
        let s = Rs.open_dir dir in
        let st = Rs.stats s in
        (* digest check rejects the tampered record; the good one loads *)
        Helpers.check_int "discarded" 1 st.Rs.st_discarded_records;
        Helpers.check_int "warm" 1 st.Rs.st_warm_loaded;
        (match Rs.entries s with
        | [ a ] -> Helpers.check_bool "survivor" true (entry_equal a e2)
        | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es));
        Rs.close s);
    Helpers.case "torn WAL tail degrades to the valid prefix" (fun () ->
        let dir = tmpdir () in
        let e1 = entry_of (Tt.of_string "0110100110010110") Ovo_core.Compact.Bdd in
        let e2 = entry_of (Tt.of_string "01101001") Ovo_core.Compact.Bdd in
        let s = Rs.open_dir dir in
        Rs.append s e1;
        Rs.append s e2;
        Rs.close s;
        let wal = Filename.concat dir "results.wal" in
        let whole = read_file wal in
        write_file wal (String.sub whole 0 (String.length whole - 5));
        let s = Rs.open_dir dir in
        let st = Rs.stats s in
        Helpers.check_int "warm" 1 st.Rs.st_warm_loaded;
        Helpers.check_bool "torn bytes" true (st.Rs.st_discarded_bytes > 0);
        (match Rs.entries s with
        | [ a ] -> Helpers.check_bool "prefix" true (entry_equal a e1)
        | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es));
        Rs.close s);
    Helpers.case "compaction folds the WAL into the snapshot" (fun () ->
        let dir = tmpdir () in
        (* tiny threshold: every append crosses it *)
        let s = Rs.open_dir ~compact_threshold:64 dir in
        let tables = [ "01101001"; "00010111"; "01111110"; "10000001" ] in
        List.iter
          (fun t -> Rs.append s (entry_of (Tt.of_string t) Ovo_core.Compact.Bdd))
          tables;
        let st = Rs.stats s in
        Helpers.check_bool "compacted" true (st.Rs.st_compactions > 0);
        Rs.close s;
        let s = Rs.open_dir dir in
        let st = Rs.stats s in
        Helpers.check_int "all survive" (List.length tables)
          st.Rs.st_warm_loaded;
        Helpers.check_int "none discarded" 0 st.Rs.st_discarded_records;
        Helpers.check_bool "snapshot in use" true (st.Rs.st_snap_bytes > 0);
        Rs.close s);
  ]

(* --- checkpoint/resume ------------------------------------------------ *)

let solution_fingerprint (r : Fs.result) =
  ( r.Fs.mincost,
    r.Fs.size,
    Array.to_list r.Fs.order,
    Array.to_list r.Fs.widths,
    Ovo_core.Diagram.serialize r.Fs.diagram )

exception Crash

(* Run [Fs.run] checkpointing to [path], aborting right after layer
   [stop_after] — the in-process stand-in for kill -9. *)
let run_until ~engine ~kind ~path ~stop_after tt =
  let meta = Ck.meta_of ~kind tt in
  let w, layers = Ck.open_resume ~path meta in
  let on_layer (p : Ovo_core.Subset_dp.progress) =
    Ck.append_layer w p;
    if p.Ovo_core.Subset_dp.p_layer = stop_after then raise Crash
  in
  match Fs.run ~kind ~engine ~on_layer ~resume:layers tt with
  | r ->
      Ck.close w;
      Some r
  | exception Crash ->
      Ck.close w;
      None

let checkpoint_resume_prop engine_name engine =
  QCheck.Test.make ~count:30
    ~name:
      (Printf.sprintf
         "checkpoint interrupted after every layer, resumed: bit-identical \
          (%s)" engine_name)
    (Helpers.arb_truthtable ~lo:2 ~hi:5 ())
    (fun tt ->
      let n = Tt.arity tt in
      let kind = Ovo_core.Compact.Bdd in
      let plain = solution_fingerprint (Fs.run ~kind ~engine tt) in
      List.for_all
        (fun stop_after ->
          let path = tmpfile () in
          Fun.protect
            ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
            (fun () ->
              (* interrupt after layer [stop_after] ... *)
              (match run_until ~engine ~kind ~path ~stop_after tt with
              | None -> ()
              | Some _ -> QCheck.Test.fail_report "run was not interrupted");
              (* ... then resume to completion *)
              match run_until ~engine ~kind ~path ~stop_after:(n + 1) tt with
              | Some r -> solution_fingerprint r = plain
              | None -> QCheck.Test.fail_report "resumed run crashed"))
        (List.init (n - 1) (fun i -> i + 1)))

let checkpoint_tests =
  [
    Helpers.case "meta mismatch is refused" (fun () ->
        let path = tmpfile () in
        let tt = Tt.of_string "0110100110010110" in
        let meta = Ck.meta_of ~kind:Ovo_core.Compact.Bdd tt in
        let w = Ck.create ~path meta in
        Ck.close w;
        let other = Ck.meta_of ~kind:Ovo_core.Compact.Zdd tt in
        match Ck.open_resume ~path other with
        | exception Failure _ -> ()
        | w, _ ->
            Ck.close w;
            Alcotest.fail "resumed a checkpoint of a different run");
    Helpers.case "missing file degrades to a fresh checkpoint" (fun () ->
        let path = tmpfile () in
        let tt = Tt.of_string "01101001" in
        let meta = Ck.meta_of ~kind:Ovo_core.Compact.Bdd tt in
        let w, layers = Ck.open_resume ~path meta in
        Helpers.check_int "no layers" 0 (List.length layers);
        Ck.close w;
        Helpers.check_bool "file created" true (Sys.file_exists path));
    Helpers.case "torn layer record costs exactly that layer" (fun () ->
        let path = tmpfile () in
        let tt = Tt.of_string "0110100110010110" in
        let kind = Ovo_core.Compact.Bdd in
        ignore (run_until ~engine:Ovo_core.Engine.Seq ~kind ~path ~stop_after:3 tt);
        let whole = read_file path in
        write_file path (String.sub whole 0 (String.length whole - 2));
        (match Ck.load path with
        | Ok (_, layers) -> Helpers.check_int "layers" 2 (List.length layers)
        | Error m -> Alcotest.fail m);
        (* and the resumed run still finishes with the right answer *)
        let meta = Ck.meta_of ~kind tt in
        let w, layers = Ck.open_resume ~path meta in
        let r = Fs.run ~kind ~resume:layers tt in
        Ck.close w;
        Helpers.check_int "mincost" (Fs.run ~kind tt).Fs.mincost r.Fs.mincost);
    Helpers.case "legacy layer record ends the resume prefix" (fun () ->
        let path = tmpfile () in
        let tt = Tt.of_string "0110100110010110" in
        let kind = Ovo_core.Compact.Bdd in
        ignore
          (run_until ~engine:Ovo_core.Engine.Seq ~kind ~path ~stop_after:2 tt);
        (* a pre-unification writer appends a record of type 1 *)
        let t, _, _ = Rlog.open_append path in
        Rlog.append t ~rtype:1 "\x02legacy-triple-format";
        Rlog.close t;
        (match Ck.load path with
        | Ok (_, layers) ->
            Helpers.check_int "prefix stops before legacy" 2
              (List.length layers)
        | Error m -> Alcotest.fail m);
        (* resume replays the clean prefix and still finishes right *)
        let meta = Ck.meta_of ~kind tt in
        let w, layers = Ck.open_resume ~path meta in
        Helpers.check_int "resumed layers" 2 (List.length layers);
        let r = Fs.run ~kind ~resume:layers tt in
        Ck.close w;
        Helpers.check_int "mincost" (Fs.run ~kind tt).Fs.mincost r.Fs.mincost);
    Helpers.case "all-legacy checkpoint degrades to a fresh start" (fun () ->
        let path = tmpfile () in
        let tt = Tt.of_string "01101001" in
        let kind = Ovo_core.Compact.Bdd in
        let meta = Ck.meta_of ~kind tt in
        let w = Ck.create ~path meta in
        Ck.close w;
        let t, _, _ = Rlog.open_append path in
        Rlog.append t ~rtype:1 "\x01old";
        Rlog.append t ~rtype:1 "\x02old";
        Rlog.close t;
        let w, layers = Ck.open_resume ~path meta in
        Helpers.check_int "no layers survive" 0 (List.length layers);
        Ck.close w);
    Helpers.case "budget+checkpoint writes each layer once" (fun () ->
        let path = tmpfile () in
        let tt = Tt.of_string "0110100110010110" in
        let n = Tt.arity tt in
        let kind = Ovo_core.Compact.Bdd in
        let plain = solution_fingerprint (Fs.run ~kind tt) in
        let meta = Ck.meta_of ~kind tt in
        let w, layers = Ck.open_resume ~path meta in
        Helpers.check_int "fresh" 0 (List.length layers);
        (* 1-byte budget: every layer spills; the checkpoint is the
           spill store, so reloads slice its layer records *)
        let mb =
          Ovo_core.Membudget.create ~budget_bytes:1 ~extent_bytes:18
            ~sink:(Ck.sink w) ()
        in
        let r =
          Fs.run ~kind ~membudget:mb ~on_layer:(Ck.append_layer w) tt
        in
        Ck.close w;
        Helpers.check_bool "bit-identical" true
          (solution_fingerprint r = plain);
        Helpers.check_bool "reloaded from checkpoint" true
          (Ovo_core.Membudget.reloads mb > 0);
        (* on disk: exactly one meta record plus one record per layer *)
        match Rlog.read path with
        | Ok (records, _) ->
            Helpers.check_int "records = 1 meta + n layers" (1 + n)
              (List.length records)
        | Error m -> Alcotest.fail m);
  ]

let props =
  [
    checkpoint_resume_prop "Seq" Ovo_core.Engine.Seq;
    checkpoint_resume_prop "Par" (Ovo_core.Engine.Par { domains = 3 });
  ]

let () =
  Alcotest.run "store"
    [
      ("crc32", crc_tests);
      ("codec", codec_tests);
      ("rlog", rlog_tests);
      ("result_store", store_tests);
      ("checkpoint", checkpoint_tests);
      ("props", Helpers.qtests props);
    ]

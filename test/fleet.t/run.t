A local fleet end to end: two shards plus a router come up under
`ovo fleet up`, a client solves through the router (with connect
retries, exercising the new submit flags), repeats hit the shard
cache through consistent routing, and `ovo fleet down` stops every
recorded process and removes the state file.

Sockets are fleet-directory-relative, so sun_path stays short even in
the cram sandbox.  Pids are nondeterministic and filtered out.

  $ ovo fleet up 2 --router --dir fleet | sed -E 's/pid [0-9]+ */pid PID /'
  shard-0   pid PID fleet/shard-0.sock
  shard-1   pid PID fleet/shard-1.sock
  router    pid PID fleet/router.sock
  state     fleet/fleet.json

The state file records every process:

  $ grep -o '"pid"' fleet/fleet.json | wc -l
  3

A solve through the router is answered by whichever shard owns the
function's canonical digest — the reply is indistinguishable from a
single daemon's:

  $ ovo submit --connect fleet/router.sock --retries 3 --family hwb-6
  digest            : 6:4fa2c3ee100b867a
  minimum size      : 23 nodes (21 non-terminal)
  order (root first): [5 0 4 1 3 2]
  level widths      : [1 2 4 6 6 2]
  cached            : false

The repeat routes to the same shard, so its cache answers:

  $ ovo submit --connect fleet/router.sock --retries 3 --family hwb-6
  digest            : 6:4fa2c3ee100b867a
  minimum size      : 23 nodes (21 non-terminal)
  order (root first): [5 0 4 1 3 2]
  level widths      : [1 2 4 6 6 2]
  cached            : true

The router's stats report identifies its role and lists both shards
as up:

  $ ovo submit --connect fleet/router.sock --stats | grep -o '"role":"router"'
  "role":"router"
  $ ovo submit --connect fleet/router.sock --stats | grep -o '"up":true' | wc -l
  2

fleet status sees three live processes:

  $ ovo fleet status --dir fleet | sed -E 's/pid [0-9]+ */pid PID /'
  router    pid PID up           unix:fleet/router.sock
  shard-0   pid PID up           unix:fleet/shard-0.sock
  shard-1   pid PID up           unix:fleet/shard-1.sock

Teardown stops the router and both shards and removes the state file:

  $ ovo fleet down --dir fleet | sed -E 's/pid [0-9]+ */pid PID /'
  router    pid PID stopped
  shard-0   pid PID stopped
  shard-1   pid PID stopped
  $ test ! -e fleet/fleet.json
  $ test ! -e fleet/router.sock

module T = Ovo_boolfun.Truthtable

let xor2 = T.of_string "0110"

let unit_tests =
  [
    Helpers.case "of_string arity" (fun () ->
        Helpers.check_int "n" 2 (T.arity xor2);
        Helpers.check_int "size" 4 (T.size xor2));
    Helpers.case "of_string requires power of two" (fun () ->
        Alcotest.check_raises "bad length"
          (Invalid_argument "Truthtable: length not a power of two") (fun () ->
            ignore (T.of_string "011")));
    Helpers.case "eval bit encoding" (fun () ->
        (* code 1 = x0 set, x1 clear *)
        Helpers.check_bool "xor(1,0)" true (T.eval xor2 1);
        Helpers.check_bool "xor(0,1)" true (T.eval xor2 2);
        Helpers.check_bool "xor(1,1)" false (T.eval xor2 3));
    Helpers.case "eval_bits agrees with eval" (fun () ->
        Helpers.check_bool "bits" true (T.eval_bits xor2 [| true; false |]);
        Helpers.check_bool "bits" false (T.eval_bits xor2 [| true; true |]));
    Helpers.case "var projection" (fun () ->
        let v1 = T.var 3 1 in
        Helpers.check_bool "set" true (T.eval v1 0b010);
        Helpers.check_bool "clear" false (T.eval v1 0b101));
    Helpers.case "const" (fun () ->
        Helpers.check_int "ones of true" 8 (T.count_ones (T.const 3 true));
        Helpers.check_int "ones of false" 0 (T.count_ones (T.const 3 false));
        Alcotest.(check (option bool)) "is_const" (Some true)
          (T.is_const (T.const 3 true)));
    Helpers.case "restrict removes the variable" (fun () ->
        (* xor restricted on x0=1 is NOT x1 *)
        let r = T.restrict xor2 0 true in
        Helpers.check_int "arity" 1 (T.arity r);
        Helpers.check_bool "r(0)" true (T.eval r 0);
        Helpers.check_bool "r(1)" false (T.eval r 1));
    Helpers.case "restrict renumbers upper variables" (fun () ->
        (* f = x2 over 3 vars; restricting x0 leaves f = x1 over 2 vars *)
        let f = T.var 3 2 in
        let r = T.restrict f 0 false in
        Helpers.check_bool "eq" true (T.equal r (T.var 2 1)));
    Helpers.case "support and depends_on" (fun () ->
        let f = T.( ||| ) (T.var 3 0) (T.var 3 2) in
        Alcotest.(check (list int)) "support" [ 0; 2 ] (T.support f);
        Helpers.check_bool "dep 1" false (T.depends_on f 1));
    Helpers.case "connectives" (fun () ->
        let a = T.var 2 0 and b = T.var 2 1 in
        Alcotest.(check string) "and" "0001" (T.to_string T.(a &&& b));
        Alcotest.(check string) "or" "0111" (T.to_string T.(a ||| b));
        Alcotest.(check string) "xor" "0110" (T.to_string (T.xor a b));
        Alcotest.(check string) "not" "1010" (T.to_string (T.not_ a)));
    Helpers.case "permute_vars swap" (fun () ->
        (* f = x0 & !x1; swapping gives x1 & !x0 *)
        let f = T.( &&& ) (T.var 2 0) (T.not_ (T.var 2 1)) in
        let g = T.permute_vars f [| 1; 0 |] in
        Helpers.check_bool "g(0b01)=f(0b10)" (T.eval f 0b10) (T.eval g 0b01);
        Helpers.check_bool "eq" true
          (T.equal g (T.( &&& ) (T.var 2 1) (T.not_ (T.var 2 0)))));
    Helpers.case "permute_vars rejects non-permutation" (fun () ->
        Alcotest.check_raises "dup"
          (Invalid_argument "Truthtable.permute_vars: not a permutation")
          (fun () -> ignore (T.permute_vars xor2 [| 0; 0 |])));
    Helpers.case "zero-arity tables" (fun () ->
        let t = T.const 0 true in
        Helpers.check_int "size" 1 (T.size t);
        Helpers.check_bool "eval" true (T.eval t 0));
  ]

let props =
  [
    QCheck.Test.make ~name:"restrict then eval = eval with bit" ~count:300
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let n = T.arity tt in
        let st = Helpers.rng seed in
        let j = Random.State.int st n in
        let b = Random.State.bool st in
        let r = T.restrict tt j b in
        let ok = ref true in
        for code = 0 to T.size r - 1 do
          let low = code land ((1 lsl j) - 1) in
          let high = (code lsr j) lsl (j + 1) in
          let full = high lor low lor (if b then 1 lsl j else 0) in
          if T.eval r code <> T.eval tt full then ok := false
        done;
        !ok);
    QCheck.Test.make ~name:"permute then inverse-permute is identity"
      ~count:300
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let n = T.arity tt in
        let perm = Helpers.perm_of_seed seed n in
        let inv = Array.make n 0 in
        Array.iteri (fun i p -> inv.(p) <- i) perm;
        T.equal tt (T.permute_vars (T.permute_vars tt perm) inv));
    QCheck.Test.make ~name:"permutation preserves count_ones" ~count:300
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let perm = Helpers.perm_of_seed seed (T.arity tt) in
        T.count_ones (T.permute_vars tt perm) = T.count_ones tt);
    QCheck.Test.make ~name:"de morgan" ~count:300
      (QCheck.pair
         (Helpers.arb_truthtable ~lo:1 ~hi:5 ())
         (Helpers.arb_truthtable ~lo:1 ~hi:5 ()))
      (fun (a, b) ->
        QCheck.assume (T.arity a = T.arity b);
        T.equal (T.not_ T.(a &&& b)) T.(T.not_ a ||| T.not_ b));
    QCheck.Test.make ~name:"xor self is false" ~count:200
      (Helpers.arb_truthtable ())
      (fun tt -> T.is_const (T.xor tt tt) = Some false);
    QCheck.Test.make ~name:"count_ones + count of negation = size" ~count:200
      (Helpers.arb_truthtable ())
      (fun tt -> T.count_ones tt + T.count_ones (T.not_ tt) = T.size tt);
    QCheck.Test.make ~name:"cofactor shannon expansion" ~count:300
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let n = T.arity tt in
        let j = Random.State.int (Helpers.rng seed) n in
        let f0, f1 = T.cofactors tt j in
        let ok = ref true in
        for code = 0 to T.size tt - 1 do
          let sub =
            (* drop bit j from code *)
            (code land ((1 lsl j) - 1)) lor ((code lsr (j + 1)) lsl j)
          in
          let expect =
            if code land (1 lsl j) <> 0 then T.eval f1 sub else T.eval f0 sub
          in
          if T.eval tt code <> expect then ok := false
        done;
        !ok);
    QCheck.Test.make ~name:"canonicalize returns its own permutation" ~count:300
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let canon, perm = T.canonicalize tt in
        T.equal canon (T.permute_vars tt perm));
    QCheck.Test.make ~name:"canonicalize is idempotent" ~count:200
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let canon, _ = T.canonicalize tt in
        let canon2, _ = T.canonicalize canon in
        T.equal canon canon2);
    QCheck.Test.make
      ~name:"digest is invariant under variable permutation" ~count:300
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let perm = Helpers.perm_of_seed seed (T.arity tt) in
        String.equal (T.digest tt) (T.digest (T.permute_vars tt perm)));
    QCheck.Test.make
      ~name:"digest agrees with digest_of_canonical" ~count:200
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let canon, _ = T.canonicalize tt in
        String.equal (T.digest tt) (T.digest_of_canonical canon));
  ]

let () =
  Alcotest.run "truthtable"
    [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

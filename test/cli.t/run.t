The CLI reproduces Fig. 1 deterministically:

  $ ovo fig1 --pairs 3
  f = x0*x1 + x2*x3 + ... over 6 variables (paper Fig. 1 family)
  natural ordering    : size 8 (paper: 2n+2 = 8)
  interleaved ordering: size 16 (paper: 2^(n+1) = 16)
  exact optimum       : size 8

Exact optimisation of an expression:

  $ ovo optimize --expr 'x0 & x1 | x2'
  algorithm        : FS (exact)
  minimum size     : 5 nodes (3 non-terminal)
  order (root first): [0 1 2]
  order (paper pi)  : [2 1 0]
  level widths      : [1 1 1]
  modeled cost      : 2.700e+01 table cells

The brute-force baseline agrees:

  $ ovo optimize --expr 'x0 & x1 | x2' --algo brute
  algorithm        : brute force
  minimum size     : 5 nodes (3 non-terminal)
  order (root first): [2 1 0]
  order (paper pi)  : [0 1 2]
  level widths      : [1 1 1]

A* agrees and reports its pruning:

  $ ovo optimize --family mux-2 --algo astar
  A* expanded 17 of 64 subsets
  algorithm        : A* (exact, pruned)
  minimum size     : 9 nodes (7 non-terminal)
  order (root first): [1 0 5 4 3 2]
  order (paper pi)  : [2 3 4 5 0 1]
  level widths      : [1 1 1 1 2 1]

Bad inputs are rejected with clear errors:

  $ ovo optimize --table 011
  ovo: Truthtable: length not a power of two
  [124]

  $ ovo optimize --expr 'x0 &'
  ovo: Expr.of_string: operand expected
  [124]

  $ ovo optimize
  ovo: no input: pass one of --table, --expr, --pla, --blif, --family
  [124]

Unknown families point at the listing:

  $ ovo optimize --family nope
  ovo: unknown family "nope"; try `ovo families` for the list
  [124]

The simulated quantum single-split algorithm is exact too:

  $ ovo optimize --family achilles-3 --algo simple | head -3
  algorithm        : OptOBDD simple split [simulated]
  minimum size     : 8 nodes (6 non-terminal)
  order (root first): [0 1 2 3 4 5]

Table 2 re-solves to the headline constant:

  $ ovo table2 --rounds 2
  Reproducing paper Table 2 (Theorem 13 composition):
    γin=3.00000 k=6 γout=2.83728 α=[0.183792; 0.183802; 0.183974; 0.186132; 0.206480; 0.343573]
    γin=2.83728 k=6 γout=2.79364 α=[0.165753; 0.165759; 0.165857; 0.167339; 0.183883; 0.312741]

The spectrum command quantifies how rare good orderings are:

  $ ovo spectrum --family achilles-3 | head -2
  n=6 orderings=720 min=6 (6.7% optimal) mean=10.8 max=14
  histogram (cost: orderings):

Families are listed with their arities:

  $ ovo families --max-arity 6
  achilles-2       n=4 
  achilles-3       n=6 
  parity-6         n=6 
  hwb-6            n=6 
  mux-2            n=6 

Weighted exact optimisation is exposed directly:

  $ ovo optimize --family mux-2 --weights 5,1,1,1,1,1
  algorithm        : FS (exact, weighted)
  weighted cost    : 11
  node count       : 7
  order (root first): [0 1 2 3 4 5]

Saved diagrams round-trip through `show`:

  $ ovo optimize --family achilles-2 --save ach2.ovo > /dev/null
  $ ovo show ach2.ovo
  bdd(n=4, size=6, order=[3;2;1;0])
  level widths: [1 1 1 1]

Bad saved files are rejected:

  $ echo garbage > bad.ovo
  $ ovo show bad.ovo
  ovo: Diagram.deserialize: malformed header
  [124]

The parallel engine is a drop-in replacement — identical output, any
domain count:

  $ ovo optimize --table 01101001 --engine par --domains 2
  algorithm        : FS (exact)
  minimum size     : 7 nodes (5 non-terminal)
  order (root first): [0 1 2]
  order (paper pi)  : [2 1 0]
  level widths      : [2 2 1]
  modeled cost      : 2.700e+01 table cells

Per-run metrics are surfaced on demand; the two-pass DP shows up as
probes doing the pricing while only winners copy the node table:

  $ ovo optimize --table 01101001 --stats json
  algorithm        : FS (exact)
  minimum size     : 7 nodes (5 non-terminal)
  order (root first): [0 1 2]
  order (paper pi)  : [2 1 0]
  level widths      : [2 2 1]
  modeled cost      : 2.700e+01 table cells
  {"table_cells":27,"cost_probes":12,"compactions":0,"node_creations":17,"states_materialised":9,"node_table_copies":9}

  $ ovo optimize --table 01101001 --engine par --domains 2 --stats text
  algorithm        : FS (exact)
  minimum size     : 7 nodes (5 non-terminal)
  order (root first): [0 1 2]
  order (paper pi)  : [2 1 0]
  level widths      : [2 2 1]
  modeled cost      : 2.700e+01 table cells
  cells=27 probes=12 compactions=0 nodes=17 states=9 copies=9

Branch-and-bound pruning is opt-in, bit-identical, and surfaces its own
stats block (seeded incumbent, states pruned, per-layer trajectory):

  $ ovo optimize --family achilles-2 --prune --stats json
  algorithm        : FS (exact)
  minimum size     : 6 nodes (4 non-terminal)
  order (root first): [0 1 2 3]
  order (paper pi)  : [3 2 1 0]
  level widths      : [1 1 1 1]
  modeled cost      : 9.200e+01 table cells
  {"table_cells":92,"cost_probes":24,"compactions":0,"node_creations":14,"states_materialised":14,"node_table_copies":14,"prune":{"bound_source":"support-count","states_pruned":4,"incumbent":4,"seed_source":"scored","seed_value":4,"layers":[{"k":1,"kept":4,"pruned":0,"lower":4,"incumbent":4},{"k":2,"kept":2,"pruned":4,"lower":4,"incumbent":4},{"k":3,"kept":4,"pruned":0,"lower":4,"incumbent":4},{"k":4,"kept":1,"pruned":0,"lower":4,"incumbent":4}]}}

The parallel engine prunes the same states (the incumbent only moves at
layer boundaries, so Seq and Par agree bit for bit):

  $ ovo optimize --family achilles-2 --prune --engine par --domains 2 --stats text
  algorithm        : FS (exact)
  minimum size     : 6 nodes (4 non-terminal)
  order (root first): [0 1 2 3]
  order (paper pi)  : [3 2 1 0]
  level widths      : [1 1 1 1]
  modeled cost      : 9.200e+01 table cells
  cells=92 probes=24 compactions=0 nodes=14 states=14 copies=14
  prune: bound=support-count pruned=4 incumbent=4 seed=scored:4

Pruning cannot mix with checkpointing (a pruned sweep's layers are
incomplete on purpose, so a checkpoint of them could not be resumed):

  $ ovo optimize --family achilles-2 --prune --checkpoint ck.bin
  ovo: --prune is incompatible with --checkpoint/--resume
  [124]

The portfolio's member list, best first (ties keep registration order:
the learned scorer and the static heuristics run before the search
ones; `scored` is injected from ovo.learn, see doc/learning.md):

  $ ovo optimize --family achilles-3 --algo portfolio
    scored       6
    influence    6
    sifting      6
    window       6
    annealing    6
    genetic      6
    random       6
    exact-block  6
  algorithm        : portfolio (won by scored)
  minimum size     : 8 nodes (6 non-terminal)
  order (root first): [0 1 2 3 4 5]
  order (paper pi)  : [5 4 3 2 1 0]
  level widths      : [1 1 1 1 1 1]

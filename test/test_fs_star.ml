module Fs = Ovo_core.Fs
module Fss = Ovo_core.Fs_star
module C = Ovo_core.Compact
module V = Ovo_core.Varset
module T = Ovo_boolfun.Truthtable

(* Brute-force MINCOST<I, K> reference: minimum node count of the bottom
   |I|+|K| levels over orderings that list I (in any internal order)
   first and then K. *)
let brute_seg_mincost ?(kind = C.Bdd) tt i_set k_set =
  let base = C.of_truthtable kind tt in
  let best = ref max_int in
  List.iter
    (fun pi ->
      List.iter
        (fun pk ->
          let st = C.compact_chain base (Array.of_list (pi @ pk)) in
          if st.C.mincost < !best then best := st.C.mincost)
        (Helpers.permutations (V.elements k_set)))
    (Helpers.permutations (V.elements i_set));
  !best

let unit_tests =
  [
    Helpers.case "full run from empty base equals FS" (fun () ->
        let tt = Ovo_boolfun.Families.hidden_weighted_bit 5 in
        let base = C.of_truthtable C.Bdd tt in
        let st = Fss.complete ~base (C.free base) in
        Helpers.check_int "mincost" (Fs.run tt).Fs.mincost st.C.mincost);
    Helpers.case "upto stops at the requested layer" (fun () ->
        let tt = Ovo_boolfun.Families.parity 5 in
        let base = C.of_truthtable C.Bdd tt in
        let t = Fss.run ~upto:2 ~base (C.free base) in
        Helpers.check_int "layer size" 10 (Hashtbl.length t.Fss.layer);
        (* mincosts: C(5,1) + C(5,2) + empty = 16 *)
        Helpers.check_int "summaries" 16 (Hashtbl.length t.Fss.mincosts);
        Hashtbl.iter
          (fun k _ -> Helpers.check_int "card" 2 (V.cardinal k))
          t.Fss.layer);
    Helpers.case "j_set must be free" (fun () ->
        let tt = T.of_string "0110" in
        let base = C.compact (C.of_truthtable C.Bdd tt) 0 in
        Alcotest.check_raises "not free"
          (Invalid_argument "Fs_star.run: J not free in the base state")
          (fun () -> ignore (Fss.run ~base (V.of_list [ 0 ]))));
    Helpers.case "bad upto rejected" (fun () ->
        let tt = T.of_string "0110" in
        let base = C.of_truthtable C.Bdd tt in
        Alcotest.check_raises "upto" (Invalid_argument "Fs_star.run: bad upto")
          (fun () -> ignore (Fss.run ~upto:3 ~base (V.full 2))));
    Helpers.case "empty J returns the base" (fun () ->
        let tt = T.of_string "0110" in
        let base = C.of_truthtable C.Bdd tt in
        let t = Fss.run ~base V.empty in
        Helpers.check_int "mincost" 0 (Fss.mincost_of t V.empty);
        Helpers.check_bool "state" true (Fss.state_of t V.empty == base));
  ]

let props =
  [
    QCheck.Test.make
      ~name:"segment-constrained optimum matches brute force (Lemma 8)"
      ~count:60
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:5 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let n = T.arity tt in
        let st = Helpers.rng seed in
        (* random disjoint I, J *)
        let i_set = ref V.empty and j_set = ref V.empty in
        for v = 0 to n - 1 do
          match Random.State.int st 3 with
          | 0 -> i_set := V.add v !i_set
          | 1 -> j_set := V.add v !j_set
          | _ -> ()
        done;
        QCheck.assume (not (V.is_empty !j_set));
        (* base: optimal over I via a full FS* from scratch *)
        let base0 = C.of_truthtable C.Bdd tt in
        let base =
          if V.is_empty !i_set then base0
          else Fss.complete ~base:base0 !i_set
        in
        let st' = Fss.complete ~base !j_set in
        st'.C.mincost = brute_seg_mincost tt !i_set !j_set);
    QCheck.Test.make ~name:"composing two FS* runs equals one (consistency)"
      ~count:60
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:5 ()) QCheck.small_int)
      (fun (tt, seed) ->
        (* MINCOST<(A,B)> computed as FS*(FS*(∅,A),B) must match the brute
           force over segment-constrained orders *)
        let n = T.arity tt in
        let st = Helpers.rng seed in
        let a = ref V.empty and b = ref V.empty in
        for v = 0 to n - 1 do
          if Random.State.bool st then a := V.add v !a else b := V.add v !b
        done;
        QCheck.assume (not (V.is_empty !a) && not (V.is_empty !b));
        let base0 = C.of_truthtable C.Bdd tt in
        let sa = Fss.complete ~base:base0 !a in
        let sab = Fss.complete ~base:sa !b in
        sab.C.mincost = brute_seg_mincost tt !a !b);
    QCheck.Test.make ~name:"layer states carry consistent orders" ~count:60
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:5 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let n = T.arity tt in
        let k = 1 + (seed mod n) in
        let base = C.of_truthtable C.Bdd tt in
        let t = Fss.run ~upto:k ~base (C.free base) in
        let ok = ref true in
        Hashtbl.iter
          (fun kset (st : C.state) ->
            (* the achieved suborder must be a permutation of K and the
               state's cost must equal re-evaluating that suborder *)
            let order = Array.of_list (C.order st) in
            if V.of_list (Array.to_list order) <> kset then ok := false;
            let re = C.compact_chain base order in
            if re.C.mincost <> st.C.mincost then ok := false)
          t.Fss.layer;
        !ok);
    QCheck.Test.make ~name:"ZDD segments match brute force" ~count:40
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:4 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let n = T.arity tt in
        let st = Helpers.rng seed in
        let i_set = ref V.empty in
        for v = 0 to n - 1 do
          if Random.State.bool st then i_set := V.add v !i_set
        done;
        let j_set = V.diff (V.full n) !i_set in
        QCheck.assume (not (V.is_empty j_set));
        let base0 = C.of_truthtable C.Zdd tt in
        let base =
          if V.is_empty !i_set then base0
          else Fss.complete ~base:base0 !i_set
        in
        let s = Fss.complete ~base j_set in
        s.C.mincost = brute_seg_mincost ~kind:C.Zdd tt !i_set j_set);
  ]

let () =
  Alcotest.run "fs_star"
    [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

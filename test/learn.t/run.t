The ovo.learn surface, end to end through the CLI: a ground-truth
corpus from the exact DP, gap evaluation of the heuristic orderers
against it, pricing a user-supplied ordering, and the learned scorer as
an --algo with a swappable weight model.

Generate a small corpus.  Each row's opt column is the provable
optimum; scored/sifting are the heuristic baselines recorded alongside:

  $ ovo dataset --families hwb-6,mux-2,parity-6 --n-max 8 --random 2 --out ds.ndjson
    hwb-6            n=6 opt=21   scored=22   sifting=21
    mux-2            n=6 opt=7    scored=7    sifting=7
    parity-6         n=6 opt=11   scored=11   sifting=11
    random-1987-0    n=4 opt=6    scored=7    sifting=6
    random-1987-1    n=5 opt=11   scored=12   sifting=11
  wrote 5 rows: ds.ndjson

The corpus is deterministic by spec — a second run writes the
byte-identical file:

  $ ovo dataset --families hwb-6,mux-2,parity-6 --n-max 8 --random 2 --out ds2.ndjson > /dev/null
  $ cmp ds.ndjson ds2.ndjson

With --store, generation is resumable: completed rows are recovered
from the log instead of re-solved, and the corpus stays byte-identical:

  $ ovo dataset --families hwb-6,mux-2,parity-6 --n-max 8 --random 2 --store dstore --out ds3.ndjson > /dev/null
  $ ovo dataset --families hwb-6,mux-2,parity-6 --n-max 8 --random 2 --store dstore --out ds4.ndjson > /dev/null
  $ cmp ds.ndjson ds3.ndjson && cmp ds.ndjson ds4.ndjson

A family outside the catalogue is a CLI error:

  $ ovo dataset --families no-such-family --out nope.ndjson
  ovo: unknown family "no-such-family" at n_max 12; try `ovo families`
  [124]

Price every default orderer against the corpus's exact optima.  The
gap column is cost/optimal (1.0 = optimal); sifting finds the optimum
on all five rows, the random baseline pays for its ignorance:

  $ ovo eval-orderers --dataset ds.ndjson
  orderer     rows  optimal  mean-gap  p50-gap  p90-gap  max-gap max-regret
  scored         5        2    1.0610    1.069    1.166    1.167          1
  influence      5        2    1.0887    1.069    1.166    1.182          2
  sifting        5        5    1.0000    1.000    1.000    1.000          0
  window         5        4    1.0571    1.000    1.272    1.286          2
  random         5        1    1.7355    1.166    4.143    4.143         22

  $ ovo eval-orderers --dataset missing.ndjson
  ovo: missing.ndjson: No such file or directory
  [124]

Price a single user-supplied ordering (root-first, like every other
ovo command) against the exact optimum:

  $ ovo eval-order --family mux-2 --order 0,1,2,3,4,5
  given cost    : 7
  optimal cost  : 7
  optimal order : [0 1 2 3 4 5]
  gap           : 1.0000
  regret        : 0

  $ ovo eval-order --family mux-2 --order 5,4,3,2,1,0
  given cost    : 29
  optimal cost  : 7
  optimal order : [0 1 2 3 4 5]
  gap           : 4.1429
  regret        : 22

Malformed permutations are rejected, each with a specific message:

  $ ovo eval-order --family mux-2 --order 0,1,2
  ovo: --order has 3 entries but the function has 6 variables
  [124]

  $ ovo eval-order --family mux-2 --order 0,0,1,2,3,4
  ovo: --order repeats variable 0
  [124]

  $ ovo eval-order --family mux-2 --order 0,1,2,3,4,9
  ovo: --order entry 9 is outside 0..5
  [124]

The scorer is an --algo like any other heuristic:

  $ ovo optimize --family hwb-8 --algo scored
  algorithm        : scored (learned static heuristic)
  minimum size     : 54 nodes (52 non-terminal)
  order (root first): [3 0 6 7 1 5 2 4]
  order (paper pi)  : [4 2 5 1 7 6 0 3]
  level widths      : [2 10 15 10 8 4 2 1]

Its weights are a swappable model file: an influence-only model scores
hwb's symmetric variables identically and ties break to the natural
order:

  $ cat > model.json << 'EOF'
  > {"version":1,"weights":{"influence":1.0,"polarity":0.0,"spectral":0.0,"occurrence":0.0,"cosens":0.0,"adjacency":0.0,"proximity":0.0},"decay":0.0}
  > EOF
  $ ovo optimize --family hwb-8 --algo scored --model model.json
  algorithm        : scored (learned static heuristic)
  minimum size     : 57 nodes (55 non-terminal)
  order (root first): [0 1 2 3 4 5 6 7]
  order (paper pi)  : [7 6 5 4 3 2 1 0]
  level widths      : [2 7 17 14 8 4 2 1]

A malformed model is a CLI error, not a crash:

  $ cat > bad.json << 'EOF'
  > {"version":1,"decay":2.0}
  > EOF
  $ ovo optimize --family hwb-8 --algo scored --model bad.json
  ovo: --model: model decay must lie in [0,1]
  [124]

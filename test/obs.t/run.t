The counters of --stats json go through the shared JSON emitter; the
field set and order are part of the documented schema
(doc/observability.md) and must not drift:

  $ ovo optimize --expr 'x0 & x1 | x2' --stats json
  algorithm        : FS (exact)
  minimum size     : 5 nodes (3 non-terminal)
  order (root first): [0 1 2]
  order (paper pi)  : [2 1 0]
  level widths      : [1 1 1]
  modeled cost      : 2.700e+01 table cells
  {"table_cells":27,"cost_probes":12,"compactions":0,"node_creations":9,"states_materialised":9,"node_table_copies":9}

A --trace file ending in .jsonl records one self-describing JSON
object per event.  The Seq engine is deterministic, so the span set of
an exact n=3 solve is exact: one span per DP layer, the sweep, the
reconstruction, and the fs.run parent:

  $ ovo optimize --expr 'x0 & x1 | x2' --trace t.jsonl > /dev/null
  [ovo] trace written: t.jsonl (6 events)

  $ grep -c '"kind":"span"' t.jsonl
  6

  $ grep -o '"name":"[^"]*"' t.jsonl | sort
  "name":"dp.reconstruct"
  "name":"dp.sweep"
  "name":"fs.run"
  "name":"layer k=1"
  "name":"layer k=2"
  "name":"layer k=3"

Every span line carries timing and allocation fields:

  $ grep -c '"start_s":' t.jsonl
  6
  $ grep -c '"dur_s":' t.jsonl
  6
  $ grep -c '"gc_minor_words":' t.jsonl
  6

Layer spans embed the layer's metrics delta as args — deterministic
numbers, pinned here as the schema's worked example:

  $ grep '"name":"layer k=1"' t.jsonl | grep -o '"args":{.*}'
  "args":{"k":1,"subsets":3,"skip_state":false,"table_cells":12,"cost_probes":3,"compactions":0,"node_creations":3,"states_materialised":3,"node_table_copies":3}}

  $ grep '"name":"layer k=3"' t.jsonl | grep -o '"skip_state":[a-z]*'
  "skip_state":true

Any other extension selects Chrome trace_event JSON (one document with
a traceEvents array of complete events):

  $ ovo optimize --expr 'x0 & x1 | x2' --trace t.json > /dev/null
  [ovo] trace written: t.json (6 events)

  $ grep -c '"displayTimeUnit":"ms"' t.json
  1
  $ grep -o '"ph":"X"' t.json | wc -l
  6

--progress ticks each completed DP phase on stderr (durations vary, so
they are stripped here):

  $ ovo optimize --expr 'x0 & x1 | x2' --progress 2>&1 >/dev/null | sed 's/ \{1,\}[0-9.]\{1,\} ms$//'
  [ovo] layer k=1
  [ovo] layer k=2
  [ovo] layer k=3
  [ovo] dp.sweep
  [ovo] dp.reconstruct

--profile prints a text summary to stderr; its header and the Gc line
are stable:

  $ ovo optimize --expr 'x0 & x1 | x2' --profile 2>&1 >/dev/null | sed -n '1p'
  == ovo trace profile ==

The sifting heuristic records one run span plus an instant for every
accepted improvement (hwb-6 from the identity ordering improves once,
23 -> 21 nodes):

  $ ovo optimize --family hwb-6 --algo sifting --trace s.jsonl > /dev/null
  [ovo] trace written: s.jsonl (2 events)

  $ grep -o '"name":"sift[^"]*"' s.jsonl | sort
  "name":"sift.improve"
  "name":"sift.run"

  $ grep '"name":"sift.improve"' s.jsonl | grep -o '"args":{[^}]*}'
  "args":{"pass":1,"var":0,"from":23,"to":21}

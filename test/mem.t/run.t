The memory-budgeted DP gives the same answer as the unbounded run and
reports its spill accounting under "mem" in the JSON stats.  A 64-byte
budget cannot hold this 4-variable instance's packed layers resident,
so completed layers spill to ./spill and reload during backtracking:

  $ ovo optimize --family achilles-2 --mem-budget 64 --spill-dir ./spill --stats json
  algorithm        : FS (exact)
  minimum size     : 6 nodes (4 non-terminal)
  order (root first): [0 1 2 3]
  order (paper pi)  : [3 2 1 0]
  level widths      : [1 1 1 1]
  modeled cost      : 1.080e+02 table cells
  {"table_cells":108,"cost_probes":32,"compactions":0,"node_creations":22,"states_materialised":18,"node_table_copies":18,"mem":{"budget_bytes":64,"extent_bytes":1048576,"peak_resident_bytes":84,"peak_layer_bytes":84,"layers_spilled":3,"extents_spilled":3,"bytes_spilled":132,"raw_bytes_spilled":216,"reloads":3,"bytes_reloaded":132}}

The unbounded run agrees on everything except the "mem" block:

  $ ovo optimize --family achilles-2 --stats json
  algorithm        : FS (exact)
  minimum size     : 6 nodes (4 non-terminal)
  order (root first): [0 1 2 3]
  order (paper pi)  : [3 2 1 0]
  level widths      : [1 1 1 1]
  modeled cost      : 1.080e+02 table cells
  {"table_cells":108,"cost_probes":32,"compactions":0,"node_creations":22,"states_materialised":18,"node_table_copies":18}

The parallel engine is bit-identical under the same budget:

  $ ovo optimize --family achilles-2 --mem-budget 64 --engine par --stats json
  algorithm        : FS (exact)
  minimum size     : 6 nodes (4 non-terminal)
  order (root first): [0 1 2 3]
  order (paper pi)  : [3 2 1 0]
  level widths      : [1 1 1 1]
  modeled cost      : 1.080e+02 table cells
  {"table_cells":108,"cost_probes":32,"compactions":0,"node_creations":22,"states_materialised":18,"node_table_copies":18,"mem":{"budget_bytes":64,"extent_bytes":1048576,"peak_resident_bytes":84,"peak_layer_bytes":84,"layers_spilled":3,"extents_spilled":3,"bytes_spilled":132,"raw_bytes_spilled":216,"reloads":3,"bytes_reloaded":132}}

The spill directory is cleaned up afterwards:

  $ ls spill
  ls: cannot access 'spill': No such file or directory
  [2]

Budgets take binary suffixes:

  $ ovo optimize --family achilles-2 --mem-budget 1k | head -2
  algorithm        : FS (exact)
  minimum size     : 6 nodes (4 non-terminal)

Misuse is rejected:

  $ ovo optimize --family achilles-2 --spill-dir ./spill
  ovo: --spill-dir needs --mem-budget
  [124]

  $ ovo optimize --family achilles-2 --mem-budget 64 --algo brute
  ovo: --mem-budget needs --algo fs, qdc, tower:N or simple
  [124]

  $ ovo optimize --family achilles-2 --mem-budget nope
  ovo: option '--mem-budget': bad size "nope" (want BYTES[k|M|G])
  Usage: ovo optimize [OPTION]…
  Try 'ovo optimize --help' or 'ovo --help' for more information.
  [124]

Extent splitting: with --spill-extent 18 (two entries per extent) even
the 16-byte budget -- smaller than the 84-byte hump layer -- completes,
bit-identically, because layers leave RAM piecewise:

  $ ovo optimize --family achilles-2 --mem-budget 16 --spill-extent 18 --stats json
  algorithm        : FS (exact)
  minimum size     : 6 nodes (4 non-terminal)
  order (root first): [0 1 2 3]
  order (paper pi)  : [3 2 1 0]
  level widths      : [1 1 1 1]
  modeled cost      : 1.080e+02 table cells
  {"table_cells":108,"cost_probes":32,"compactions":0,"node_creations":22,"states_materialised":18,"node_table_copies":18,"mem":{"budget_bytes":16,"extent_bytes":18,"peak_resident_bytes":48,"peak_layer_bytes":144,"layers_spilled":4,"extents_spilled":8,"bytes_spilled":285,"raw_bytes_spilled":375,"reloads":5,"bytes_reloaded":174}}

Memory-mapped segments give the same answer and the same accounting,
but reloads stay off the OCaml heap:

  $ ovo optimize --family achilles-2 --mem-budget 16 --spill-extent 18 --spill-mmap --stats json
  algorithm        : FS (exact)
  minimum size     : 6 nodes (4 non-terminal)
  order (root first): [0 1 2 3]
  order (paper pi)  : [3 2 1 0]
  level widths      : [1 1 1 1]
  modeled cost      : 1.080e+02 table cells
  {"table_cells":108,"cost_probes":32,"compactions":0,"node_creations":22,"states_materialised":18,"node_table_copies":18,"mem":{"budget_bytes":16,"extent_bytes":18,"peak_resident_bytes":48,"peak_layer_bytes":144,"layers_spilled":4,"extents_spilled":8,"bytes_spilled":285,"raw_bytes_spilled":375,"reloads":5,"bytes_reloaded":174}}

A budget combined with a checkpoint spills through the checkpoint
itself -- each layer is written once and no spill directory appears:

  $ ovo optimize --family achilles-2 --mem-budget 16 --spill-extent 18 --checkpoint ./ck --stats json
  algorithm        : FS (exact)
  minimum size     : 6 nodes (4 non-terminal)
  order (root first): [0 1 2 3]
  order (paper pi)  : [3 2 1 0]
  level widths      : [1 1 1 1]
  modeled cost      : 1.080e+02 table cells
  {"table_cells":108,"cost_probes":32,"compactions":0,"node_creations":22,"states_materialised":18,"node_table_copies":18,"mem":{"budget_bytes":16,"extent_bytes":18,"peak_resident_bytes":48,"peak_layer_bytes":144,"layers_spilled":4,"extents_spilled":8,"bytes_spilled":285,"raw_bytes_spilled":375,"reloads":5,"bytes_reloaded":178}}

  $ ls ck
  ck

Resuming from that checkpoint under the same budget reuses its layer
records as the spill store and stays bit-identical:

  $ ovo optimize --family achilles-2 --mem-budget 16 --spill-extent 18 --resume ./ck | head -2
  [ovo] resuming ./ck: layers 1..4 already done
  algorithm        : FS (exact)
  minimum size     : 6 nodes (4 non-terminal)

  $ rm ck

Misuse of the new flags is rejected:

  $ ovo optimize --family achilles-2 --spill-mmap
  ovo: --spill-mmap needs --mem-budget
  [124]

  $ ovo optimize --family achilles-2 --spill-extent 1k
  ovo: --spill-extent needs --mem-budget
  [124]

  $ ovo optimize --family achilles-2 --mem-budget 64 --checkpoint ./ck --spill-dir ./spill
  ovo: --checkpoint/--resume already serve as the spill store; drop --spill-dir/--spill-mmap
  [124]

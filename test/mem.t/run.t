The memory-budgeted DP gives the same answer as the unbounded run and
reports its spill accounting under "mem" in the JSON stats.  A 64-byte
budget cannot hold this 4-variable instance's packed layers resident,
so completed layers spill to ./spill and reload during backtracking:

  $ ovo optimize --family achilles-2 --mem-budget 64 --spill-dir ./spill --stats json
  algorithm        : FS (exact)
  minimum size     : 6 nodes (4 non-terminal)
  order (root first): [0 1 2 3]
  order (paper pi)  : [3 2 1 0]
  level widths      : [1 1 1 1]
  modeled cost      : 1.080e+02 table cells
  {"table_cells":108,"cost_probes":32,"compactions":0,"node_creations":22,"states_materialised":18,"node_table_copies":18,"mem":{"budget_bytes":64,"peak_resident_bytes":118,"peak_layer_bytes":68,"layers_spilled":3,"bytes_spilled":168,"reloads":3,"bytes_reloaded":168}}

The unbounded run agrees on everything except the "mem" block:

  $ ovo optimize --family achilles-2 --stats json
  algorithm        : FS (exact)
  minimum size     : 6 nodes (4 non-terminal)
  order (root first): [0 1 2 3]
  order (paper pi)  : [3 2 1 0]
  level widths      : [1 1 1 1]
  modeled cost      : 1.080e+02 table cells
  {"table_cells":108,"cost_probes":32,"compactions":0,"node_creations":22,"states_materialised":18,"node_table_copies":18}

The parallel engine is bit-identical under the same budget:

  $ ovo optimize --family achilles-2 --mem-budget 64 --engine par --stats json
  algorithm        : FS (exact)
  minimum size     : 6 nodes (4 non-terminal)
  order (root first): [0 1 2 3]
  order (paper pi)  : [3 2 1 0]
  level widths      : [1 1 1 1]
  modeled cost      : 1.080e+02 table cells
  {"table_cells":108,"cost_probes":32,"compactions":0,"node_creations":22,"states_materialised":18,"node_table_copies":18,"mem":{"budget_bytes":64,"peak_resident_bytes":118,"peak_layer_bytes":68,"layers_spilled":3,"bytes_spilled":168,"reloads":3,"bytes_reloaded":168}}

The spill directory is cleaned up afterwards:

  $ ls spill
  ls: cannot access 'spill': No such file or directory
  [2]

Budgets take binary suffixes:

  $ ovo optimize --family achilles-2 --mem-budget 1k | head -2
  algorithm        : FS (exact)
  minimum size     : 6 nodes (4 non-terminal)

Misuse is rejected:

  $ ovo optimize --family achilles-2 --spill-dir ./spill
  ovo: --spill-dir needs --mem-budget
  [124]

  $ ovo optimize --family achilles-2 --mem-budget 64 --algo brute
  ovo: --mem-budget needs --algo fs, qdc, tower:N or simple
  [124]

  $ ovo optimize --family achilles-2 --mem-budget nope
  ovo: option '--mem-budget': bad size "nope" (want BYTES[k|M|G])
  Usage: ovo optimize [OPTION]…
  Try 'ovo optimize --help' or 'ovo --help' for more information.
  [124]

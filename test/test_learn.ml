(* ovo.learn: the feature extractor is permutation-equivariant by
   construction (exact float equality, not approximate — every feature
   is a count ratio), the scorer always emits a valid permutation and
   its seed never changes the exact DP's answer, the dataset factory is
   byte-deterministic by spec (also through a resume), and the gap
   harness rejects orderers that do not return permutations. *)

module Tt = Ovo_boolfun.Truthtable
module Mt = Ovo_boolfun.Mtable
module Fs = Ovo_core.Fs
module B = Ovo_core.Bound
module Feat = Ovo_learn.Features
module Scorer = Ovo_learn.Scorer
module D = Ovo_learn.Dataset
module G = Ovo_learn.Gap

let random_perm rng n =
  let p = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- t
  done;
  p

let is_perm a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.for_all
    (fun v -> v >= 0 && v < n && not seen.(v) && (seen.(v) <- true; true))
    a

(* --- features ---------------------------------------------------------- *)

let equivariance_prop =
  QCheck.Test.make
    ~name:"features are permutation-equivariant (exact floats)" ~count:200
    QCheck.(
      pair (Helpers.arb_truthtable ~lo:1 ~hi:6 ()) (int_range 0 10000))
    (fun (tt, salt) ->
      let n = Tt.arity tt in
      let perm = random_perm (Helpers.rng salt) n in
      Feat.equal
        (Feat.of_truthtable (Tt.permute_vars tt perm))
        (Feat.permute (Feat.of_truthtable tt) perm))

let features_json_prop =
  QCheck.Test.make ~name:"features survive a JSON round-trip" ~count:100
    (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
    (fun tt ->
      let f = Feat.of_truthtable tt in
      match Feat.of_json (Feat.to_json f) with
      | Ok f' -> Feat.equal f f'
      | Error _ -> false)

(* --- scorer ------------------------------------------------------------ *)

let scorer_perm_prop =
  QCheck.Test.make ~name:"the scored order is always a valid permutation"
    ~count:200
    (Helpers.arb_truthtable ~lo:1 ~hi:7 ())
    (fun tt -> is_perm (Scorer.order tt))

let scorer_cost_prop =
  QCheck.Test.make ~name:"the scored cost is achievable (>= the optimum)"
    ~count:100
    (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
    (fun tt ->
      let r = Scorer.run tt in
      r.Scorer.mincost >= (Fs.run tt).Fs.mincost)

let scorer_seed_prop =
  QCheck.Test.make
    ~name:"a scorer-only seed never changes the DP's answer" ~count:80
    (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
    (fun tt ->
      let plain = Fs.run tt in
      let pruned = Fs.run ~prune:(Scorer.bound tt) tt in
      plain.Fs.mincost = pruned.Fs.mincost
      && plain.Fs.size = pruned.Fs.size
      && plain.Fs.order = pruned.Fs.order
      && plain.Fs.widths = pruned.Fs.widths)

let seeded_bound_prop =
  QCheck.Test.make
    ~name:"the scored+sifting seed never changes the DP's answer" ~count:80
    (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
    (fun tt ->
      let plain = Fs.run tt in
      let b = Scorer.seeded_bound tt in
      let pruned = Fs.run ~prune:b tt in
      B.incumbent b >= plain.Fs.mincost
      && plain.Fs.mincost = pruned.Fs.mincost
      && plain.Fs.order = pruned.Fs.order)

let weights_tests =
  [
    Helpers.case "default weights survive save/load" (fun () ->
        let path = Filename.temp_file "ovo-learn-model" ".json" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Scorer.Weights.save path Scorer.Weights.default;
            match Scorer.Weights.load path with
            | Ok w ->
                Helpers.check_bool "roundtrip" true (w = Scorer.Weights.default)
            | Error m -> Alcotest.failf "load: %s" m));
    Helpers.case "absent fields keep their defaults" (fun () ->
        match
          Scorer.Weights.of_json
            (Ovo_obs.Json.Obj
               [
                 ("version", Ovo_obs.Json.Int 1);
                 ( "weights",
                   Ovo_obs.Json.Obj [ ("influence", Ovo_obs.Json.Float 2.0) ]
                 );
               ])
        with
        | Ok w ->
            Helpers.check_bool "influence" true (w.Scorer.Weights.influence = 2.0);
            Helpers.check_bool "cosens untouched" true
              (w.Scorer.Weights.cosens = Scorer.Weights.default.Scorer.Weights.cosens)
        | Error m -> Alcotest.failf "of_json: %s" m);
    Helpers.case "a non-numeric weight is an error" (fun () ->
        Helpers.check_bool "rejected" true
          (Result.is_error
             (Scorer.Weights.of_json
                (Ovo_obs.Json.Obj
                   [
                     ( "weights",
                       Ovo_obs.Json.Obj
                         [ ("influence", Ovo_obs.Json.String "big") ] );
                   ]))));
    Helpers.case "a decay outside [0,1] is an error" (fun () ->
        Helpers.check_bool "rejected" true
          (Result.is_error
             (Scorer.Weights.of_json
                (Ovo_obs.Json.Obj [ ("decay", Ovo_obs.Json.Float 1.5) ]))));
    Helpers.case "a missing model file is an error, not an exception"
      (fun () ->
        Helpers.check_bool "rejected" true
          (Result.is_error (Scorer.Weights.load "/nonexistent/model.json")));
  ]

(* --- dataset ----------------------------------------------------------- *)

let small_spec =
  {
    D.families = Some [ "hwb-6"; "mux-2"; "parity-6" ];
    n_max = 6;
    random = 2;
    seed = 1987;
    kind = Ovo_core.Compact.Bdd;
  }

let dataset_determinism_prop =
  QCheck.Test.make
    ~name:"the corpus is byte-identical for a repeated spec" ~count:4
    QCheck.(int_range 0 1000)
    (fun seed ->
      let spec = { small_spec with D.seed; random = 1 } in
      D.to_ndjson (D.generate spec) = D.to_ndjson (D.generate spec))

let dataset_tests =
  [
    Helpers.case "rows survive a JSON round-trip byte for byte" (fun () ->
        List.iter
          (fun row ->
            let j = D.row_to_json row in
            match D.row_of_json j with
            | Error m -> Alcotest.failf "row_of_json: %s" m
            | Ok row' ->
                Helpers.check_bool "bytes" true
                  (Ovo_obs.Json.to_string (D.row_to_json row')
                  = Ovo_obs.Json.to_string j))
          (D.generate small_spec));
    Helpers.case "the label really is the optimum" (fun () ->
        List.iter
          (fun (row : D.row) ->
            let tt = Tt.of_string row.D.table in
            Helpers.check_int row.D.name (Fs.run tt).Fs.mincost
              row.D.costs.D.c_opt;
            Helpers.check_bool "worst >= opt" true
              (row.D.costs.D.c_worst >= row.D.costs.D.c_opt);
            Helpers.check_bool "opt_order is a permutation" true
              (is_perm row.D.opt_order))
          (D.generate small_spec));
    Helpers.case "a resumed generation is byte-identical" (fun () ->
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "ovo-test-learn-%d" (Unix.getpid ()))
        in
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        let cleanup () =
          Array.iter
            (fun f -> Sys.remove (Filename.concat dir f))
            (Sys.readdir dir);
          Unix.rmdir dir
        in
        Fun.protect ~finally:cleanup (fun () ->
            let plain = D.to_ndjson (D.generate small_spec) in
            let first = D.to_ndjson (D.generate ~store:dir small_spec) in
            let resumed = D.to_ndjson (D.generate ~store:dir small_spec) in
            Helpers.check_bool "store run" true (first = plain);
            Helpers.check_bool "resumed run" true (resumed = plain)));
    Helpers.case "an unknown family is rejected" (fun () ->
        Helpers.check_bool "rejected" true
          (match
             D.tasks { small_spec with D.families = Some [ "no-such" ] }
           with
          | exception Failure _ -> true
          | _ -> false));
  ]

(* --- gap --------------------------------------------------------------- *)

let gap_tests =
  [
    Helpers.case "every orderer's gap is >= 1 and sifting's rows all count"
      (fun () ->
        let rows = D.generate small_spec in
        let stats = G.evaluate (G.default_orderers ()) rows in
        List.iter
          (fun (s : G.stat) ->
            Helpers.check_int (s.G.s_name ^ " rows") (List.length rows)
              s.G.s_rows;
            Helpers.check_bool (s.G.s_name ^ " mean >= 1") true
              (s.G.s_mean_gap >= 1.0);
            Helpers.check_bool (s.G.s_name ^ " max >= mean") true
              (s.G.s_max_gap >= s.G.s_mean_gap -. 1e-9))
          stats);
    Helpers.case "a non-permutation orderer is rejected" (fun () ->
        let rows = D.generate small_spec in
        let broken =
          { G.o_name = "broken"; o_order = (fun tt -> Array.make (Tt.arity tt) 0) }
        in
        Helpers.check_bool "rejected" true
          (match G.evaluate [ broken ] rows with
          | exception Invalid_argument _ -> true
          | _ -> false));
  ]

let props =
  [
    equivariance_prop;
    features_json_prop;
    scorer_perm_prop;
    scorer_cost_prop;
    scorer_seed_prop;
    seeded_bound_prop;
    dataset_determinism_prop;
  ]

let () =
  Alcotest.run "learn"
    [
      ("weights", weights_tests);
      ("dataset", dataset_tests);
      ("gap", gap_tests);
      ("props", Helpers.qtests props);
    ]

(* The branch-and-bound exact DP: the Bound vocabulary itself, the
   admissibility of the counting lower bounds, and the headline
   guarantee — a sifting-seeded pruned sweep prunes states yet stays
   bit-identical to the unpruned one (cost, size, ordering and widths)
   under Seq and Par, with and without a memory budget, for the plain,
   weighted, shared and quantum entry points.  An unsound seed must be
   rejected (Pruned_out), never turned into a wrong answer. *)

module B = Ovo_core.Bound
module Fs = Ovo_core.Fs
module Fw = Ovo_core.Fs_weighted
module Sh = Ovo_core.Shared
module Mb = Ovo_core.Membudget
module Vs = Ovo_core.Varset
module Tt = Ovo_boolfun.Truthtable
module Mt = Ovo_boolfun.Mtable
module Seed = Ovo_ordering.Seed
module O = Ovo_quantum.Opt_obdd

let mem_sink () =
  let store = Hashtbl.create 8 in
  {
    Mb.spill =
      (fun ~k ~ext payload -> Hashtbl.replace store (k, ext) payload);
    reload =
      (fun ~k ~ext ->
        match Hashtbl.find_opt store (k, ext) with
        | Some p -> Ovo_core.Layer_pack.S_string p
        | None -> failwith "mem_sink: no such extent");
  }

(* A trivially admissible lower bound for exercising the context. *)
let zero_lower =
  {
    B.lb_source = "zero";
    remaining = (fun _ -> 0);
    exact_completion = (fun _ -> None);
  }

(* --- the Bound context ------------------------------------------------- *)

let bound_tests =
  [
    Helpers.case "incumbent is a monotone atomic min" (fun () ->
        let b = B.make zero_lower in
        Helpers.check_int "unseeded" max_int (B.incumbent b);
        B.observe b 10;
        Helpers.check_int "first observation" 10 (B.incumbent b);
        B.observe b 15;
        Helpers.check_int "never raised" 10 (B.incumbent b);
        B.observe b 7;
        Helpers.check_int "lowered" 7 (B.incumbent b));
    Helpers.case "seed primes the incumbent" (fun () ->
        let b =
          B.make ~seed:{ B.ub_source = "test"; ub_value = 42 } zero_lower
        in
        Helpers.check_int "seeded" 42 (B.incumbent b);
        Helpers.check_bool "source" true (B.source b = "zero"));
    Helpers.case "pruned counter accumulates" (fun () ->
        let b = B.make zero_lower in
        Helpers.check_int "fresh" 0 (B.states_pruned b);
        B.note_pruned b 3;
        B.note_pruned b 4;
        Helpers.check_int "3+4" 7 (B.states_pruned b));
    Helpers.case "layer trajectory and best_lower" (fun () ->
        let b =
          B.make ~seed:{ B.ub_source = "test"; ub_value = 50 } zero_lower
        in
        Helpers.check_int "no layers yet" 0 (B.best_lower b);
        B.record_layer b
          {
            B.ls_layer = 1;
            ls_kept = 4;
            ls_pruned = 0;
            ls_lower = 10;
            ls_incumbent = 50;
          };
        B.record_layer b
          {
            B.ls_layer = 2;
            ls_kept = 2;
            ls_pruned = 2;
            ls_lower = 23;
            ls_incumbent = 48;
          };
        Helpers.check_int "two layers" 2 (List.length (B.layer_stats b));
        Helpers.check_int "last layer's lower" 23 (B.best_lower b);
        let lower, upper = B.anytime b in
        Helpers.check_int "anytime lower" 23 lower;
        Helpers.check_int "anytime upper" 50 upper);
    Helpers.case "check_final rejects an unachievable seed" (fun () ->
        let b =
          B.make ~seed:{ B.ub_source = "bogus"; ub_value = 5 } zero_lower
        in
        B.check_final b 5;
        Helpers.check_bool "cost above seed" true
          (match B.check_final b 6 with
          | exception B.Pruned_out _ -> true
          | () -> false));
    Helpers.case "exact_completion-only contexts still tighten" (fun () ->
        let lower =
          { zero_lower with B.exact_completion = (fun _ -> Some 3) }
        in
        let b = B.make lower in
        Helpers.check_int "exact hook" (Some 3 |> Option.get)
          (Option.get (B.exact_completion b Vs.empty)));
  ]

(* --- admissibility of the counting bounds ------------------------------ *)

let admissible_prop kind name =
  QCheck.Test.make
    ~name:(Printf.sprintf "counting bound is admissible (%s)" name)
    ~count:120
    (Helpers.arb_truthtable ~lo:1 ~hi:4 ())
    (fun tt ->
      let n = Tt.arity tt in
      let lb = B.counting_lower kind (Mt.of_truthtable tt) in
      lb.B.remaining (Vs.full n) <= Helpers.brute_mincost ~kind tt)

let weighted_admissible_prop =
  QCheck.Test.make ~name:"weighted counting bound is admissible" ~count:80
    (Helpers.arb_truthtable ~lo:1 ~hi:4 ())
    (fun tt ->
      let n = Tt.arity tt in
      let weights = Array.init n (fun i -> 1 + ((i * 7) mod 5)) in
      let lb =
        B.weighted_counting_lower ~weights Ovo_core.Compact.Bdd
          (Mt.of_truthtable tt)
      in
      let r = Fw.run ~weights tt in
      lb.B.remaining (Vs.full n) <= r.Fw.weighted_cost)

(* --- pruned ≡ unpruned ------------------------------------------------- *)

let same_result (a : Fs.result) (b : Fs.result) =
  a.Fs.mincost = b.Fs.mincost && a.Fs.size = b.Fs.size
  && a.Fs.order = b.Fs.order && a.Fs.widths = b.Fs.widths

let identical_prop name engine =
  QCheck.Test.make
    ~name:(Printf.sprintf "pruning never changes the answer (%s)" name)
    ~count:60
    (Helpers.arb_truthtable ~lo:1 ~hi:7 ())
    (fun tt ->
      let plain = Fs.run ~engine tt in
      let b = Seed.bound tt in
      let pruned = Fs.run ~engine ~prune:b tt in
      same_result plain pruned)

let identical_zdd_prop =
  QCheck.Test.make ~name:"pruning never changes the answer (Zdd)" ~count:60
    (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
    (fun tt ->
      let kind = Ovo_core.Compact.Zdd in
      let plain = Fs.run ~kind tt in
      let pruned = Fs.run ~kind ~prune:(Seed.bound ~kind tt) tt in
      same_result plain pruned)

let identical_budget_prop name engine =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "pruning composes with a 1-byte budget (%s)" name)
    ~count:40
    (Helpers.arb_truthtable ~lo:3 ~hi:6 ())
    (fun tt ->
      let plain = Fs.run ~engine tt in
      let mb = Mb.create ~budget_bytes:1 ~sink:(mem_sink ()) () in
      let pruned = Fs.run ~engine ~membudget:mb ~prune:(Seed.bound tt) tt in
      Mb.layers_spilled mb > 0 && same_result plain pruned)

let tight_seed_prop =
  QCheck.Test.make ~name:"a tight seed (= optimum) still yields the optimum"
    ~count:60
    (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
    (fun tt ->
      let plain = Fs.run tt in
      let b =
        B.make
          ~seed:{ B.ub_source = "oracle"; ub_value = plain.Fs.mincost }
          (B.counting_lower Ovo_core.Compact.Bdd (Mt.of_truthtable tt))
      in
      let pruned = Fs.run ~prune:b tt in
      same_result plain pruned)

let unsound_seed_prop =
  QCheck.Test.make
    ~name:"an unachievable seed (optimum - 1) raises Pruned_out" ~count:60
    (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
    (fun tt ->
      let plain = Fs.run tt in
      let b =
        B.make
          ~seed:{ B.ub_source = "liar"; ub_value = plain.Fs.mincost - 1 }
          (B.counting_lower Ovo_core.Compact.Bdd (Mt.of_truthtable tt))
      in
      match Fs.run ~prune:b tt with
      | exception B.Pruned_out _ -> true
      | _ -> false)

let weighted_identical_prop =
  QCheck.Test.make ~name:"weighted pruning never changes the answer"
    ~count:40
    (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
    (fun tt ->
      let n = Tt.arity tt in
      let weights = Array.init n (fun i -> 1 + (i mod 3)) in
      let plain = Fw.run ~weights tt in
      let b = Seed.weighted_bound ~weights (Mt.of_truthtable tt) in
      let pruned = Fw.run ~weights ~prune:b tt in
      pruned.Fw.weighted_cost = plain.Fw.weighted_cost
      && pruned.Fw.mincost = plain.Fw.mincost
      && pruned.Fw.order = plain.Fw.order)

let shared_identical_prop =
  QCheck.Test.make ~name:"shared pruning never changes the answer" ~count:30
    QCheck.(
      pair
        (Helpers.arb_truthtable ~lo:2 ~hi:5 ())
        (int_range 0 1000))
    (fun (tt, salt) ->
      let n = Tt.arity tt in
      let tt2 = Tt.random (Helpers.rng salt) n in
      let mts = [| Mt.of_truthtable tt; Mt.of_truthtable tt2 |] in
      let plain = Sh.minimize_mtables mts in
      let pruned = Sh.minimize_mtables ~prune:(Seed.shared_bound mts) mts in
      pruned.Sh.mincost = plain.Sh.mincost
      && pruned.Sh.size = plain.Sh.size
      && pruned.Sh.order = plain.Sh.order)

(* --- quantum tower sharing one bound and budget ------------------------ *)

let quantum_tests =
  [
    Helpers.case "qdc with a shared bound and budget is unchanged" (fun () ->
        let tt = Tt.random (Helpers.rng 77) 6 in
        let plain_ctx = O.make_ctx () in
        let plain, _ = O.minimize ~ctx:plain_ctx (O.theorem10 ()) tt in
        let mb = Mb.create ~budget_bytes:1 ~sink:(mem_sink ()) () in
        let ctx = O.make_ctx ~membudget:mb ~bound:(Seed.bound tt) () in
        let pruned, _ = O.minimize ~ctx (O.theorem10 ()) tt in
        Helpers.check_int "mincost" plain.Fs.mincost pruned.Fs.mincost;
        Helpers.check_bool "order" true (pruned.Fs.order = plain.Fs.order);
        Helpers.check_bool "budget was exercised" true
          (Mb.layers_spilled mb > 0));
    Helpers.case "tower with a shared bound and budget is unchanged"
      (fun () ->
        let tt = Tt.random (Helpers.rng 78) 6 in
        let plain_ctx = O.make_ctx () in
        let plain, _ = O.minimize ~ctx:plain_ctx (O.tower ~depth:2) tt in
        let mb = Mb.create ~budget_bytes:1 ~sink:(mem_sink ()) () in
        let ctx = O.make_ctx ~membudget:mb ~bound:(Seed.bound tt) () in
        let pruned, _ = O.minimize ~ctx (O.tower ~depth:2) tt in
        Helpers.check_int "mincost" plain.Fs.mincost pruned.Fs.mincost;
        Helpers.check_bool "order" true (pruned.Fs.order = plain.Fs.order));
    Helpers.case "prune cannot resume from a checkpoint" (fun () ->
        let tt = Tt.random (Helpers.rng 79) 5 in
        Helpers.check_bool "rejected" true
          (match
             Fs.run ~prune:(Seed.bound tt)
               ~resume:[ { Ovo_core.Subset_dp.p_layer = 1; p_entries = [||] } ]
               tt
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
  ]

let props =
  [
    admissible_prop Ovo_core.Compact.Bdd "Bdd";
    admissible_prop Ovo_core.Compact.Zdd "Zdd";
    weighted_admissible_prop;
    identical_prop "Seq" Ovo_core.Engine.Seq;
    identical_prop "Par" (Ovo_core.Engine.Par { domains = 3 });
    identical_zdd_prop;
    identical_budget_prop "Seq" Ovo_core.Engine.Seq;
    identical_budget_prop "Par" (Ovo_core.Engine.Par { domains = 3 });
    tight_seed_prop;
    unsound_seed_prop;
    weighted_identical_prop;
    shared_identical_prop;
  ]

let () =
  Alcotest.run "prune"
    [
      ("bound", bound_tests);
      ("quantum", quantum_tests);
      ("props", Helpers.qtests props);
    ]

The ordering service end to end: daemon up, a fresh solve, the same
request answered from the canonical result cache, a deadline-expired
job cancelled between DP layers, and a graceful shutdown that drains
the queue and removes the socket.

The socket lives in /tmp (sun_path is too short for the sandbox cwd);
--idle-timeout is a safety net so a wedged daemon cannot hang the
suite.  The ready poll below tolerates slow daemon start-up.

  $ SOCK=/tmp/ovo-serve-cram-$$.sock
  $ ovo serve --listen "$SOCK" --idle-timeout 60 > serve.log 2>&1 &
  $ for i in $(seq 50); do
  >   ovo submit --connect "$SOCK" --ping > /dev/null 2>&1 && break
  >   sleep 0.2
  > done
  $ ovo submit --connect "$SOCK" --ping
  pong

A first request is a cache-cold exact solve.  The digest is the
canonical content hash of the function, so it is stable across runs:

  $ ovo submit --connect "$SOCK" --family hwb-6
  digest            : 6:4fa2c3ee100b867a
  minimum size      : 23 nodes (21 non-terminal)
  order (root first): [5 0 4 1 3 2]
  level widths      : [1 2 4 6 6 2]
  cached            : false

The identical request comes back from the cache — same digest, same
ordering, same widths, only the cached flag flips:

  $ ovo submit --connect "$SOCK" --family hwb-6
  digest            : 6:4fa2c3ee100b867a
  minimum size      : 23 nodes (21 non-terminal)
  order (root first): [5 0 4 1 3 2]
  level widths      : [1 2 4 6 6 2]
  cached            : true

The hit is visible in the server's stats report:

  $ ovo submit --connect "$SOCK" --stats | grep -o '"hits":[0-9]*'
  "hits":1

A job whose deadline has already expired is aborted cooperatively
(between DP layers) and answered as cancelled, exit code 3:

  $ ovo submit --connect "$SOCK" --family hwb-6 --deadline-ms 0
  ovo: request cancelled: deadline exceeded
  [3]

Malformed input never reaches the wire — the client validates first
(the server applies the same check at admission; test_serve covers it):

  $ ovo submit --connect "$SOCK" --table 011
  ovo: Truthtable: length not a power of two
  [124]

Graceful shutdown: the daemon acknowledges, drains, reports, and
removes its socket file:

  $ ovo submit --connect "$SOCK" --shutdown
  bye
  $ for i in $(seq 50); do test -e "$SOCK" || break; sleep 0.2; done
  $ test ! -e "$SOCK"
  $ sed 's|unix:[^ ]*|unix:SOCK|' serve.log | grep -v 'final stats'
  [ovo-serve] listening on unix:SOCK (2 workers, queue 64, cache 256)
  [ovo-serve] shutdown: drained 0 queued jobs

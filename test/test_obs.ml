(* The observability layer: span bookkeeping under a fake clock, the
   Chrome exporter's well-formedness (checked with the library's own
   JSON parser), the Metrics JSON round-trip, and the two invariants
   that make traces trustworthy — tracing must not change results, and
   the per-domain spans of a Par layer must sum to the merged totals. *)

module Trace = Ovo_obs.Trace
module Export = Ovo_obs.Export
module Json = Ovo_obs.Json
module M = Ovo_core.Metrics
module E = Ovo_core.Engine
module Fs = Ovo_core.Fs
module T = Ovo_boolfun.Truthtable

(* A deterministic clock: each reading is one tick later. *)
let fake_clock () =
  let t = ref 0. in
  fun () ->
    t := !t +. 1.;
    !t

let tracer () = Trace.make ~clock:(fake_clock ()) ~sample_gc:false ()

let span_names t = List.map (fun s -> s.Trace.name) (Trace.spans t)

let unit_tests =
  [
    Helpers.case "null tracer records nothing" (fun () ->
        let x =
          Trace.with_span Trace.null "untraced" (fun () ->
              Trace.instant Trace.null "nope";
              Trace.counter Trace.null "nope" 1.;
              42)
        in
        Helpers.check_int "value" 42 x;
        Helpers.check_int "events" 0 (Trace.event_count Trace.null);
        Helpers.check_bool "disabled" false (Trace.enabled Trace.null));
    Helpers.case "spans close in child-before-parent order" (fun () ->
        let t = tracer () in
        Trace.with_span t "outer" (fun () ->
            Trace.with_span t "inner1" (fun () -> ());
            Trace.with_span t "inner2" (fun () -> ()));
        Alcotest.(check (list string))
          "close order"
          [ "inner1"; "inner2"; "outer" ]
          (span_names t));
    Helpers.case "no negative durations; children nest in the parent"
      (fun () ->
        let t = tracer () in
        Trace.with_span t "outer" (fun () ->
            Trace.with_span t "inner" (fun () -> ()));
        let spans = Trace.spans t in
        List.iter
          (fun s ->
            Helpers.check_bool
              (Printf.sprintf "%s stop >= start" s.Trace.name)
              true
              (s.Trace.stop >= s.Trace.start))
          spans;
        match spans with
        | [ inner; outer ] ->
            Helpers.check_bool "containment" true
              (outer.Trace.start <= inner.Trace.start
              && inner.Trace.stop <= outer.Trace.stop)
        | _ -> Alcotest.fail "expected two spans");
    Helpers.case "span recorded when the body raises" (fun () ->
        let t = tracer () in
        (try
           Trace.with_span t "boom" (fun () -> failwith "expected")
         with Failure _ -> ());
        Alcotest.(check (list string)) "recorded" [ "boom" ] (span_names t));
    Helpers.case "args thunk runs at close and sees the body's effects"
      (fun () ->
        let t = tracer () in
        let celebrated = ref 0 in
        Trace.with_span t
          ~args:(fun () -> [ ("n", Json.Int !celebrated) ])
          "delta"
          (fun () -> celebrated := 7);
        match Trace.spans t with
        | [ s ] ->
            Helpers.check_bool "arg carries the delta" true
              (s.Trace.args = [ ("n", Json.Int 7) ])
        | _ -> Alcotest.fail "expected one span");
    Helpers.case "clear resets; on_event hook fires per event" (fun () ->
        let t = tracer () in
        let seen = ref 0 in
        Trace.on_event t (fun _ -> incr seen);
        Trace.with_span t "a" (fun () -> Trace.instant t "i");
        Trace.counter t "c" 1.;
        Helpers.check_int "hooked" 3 !seen;
        Helpers.check_int "counted" 3 (Trace.event_count t);
        Trace.clear t;
        Helpers.check_int "cleared" 0 (Trace.event_count t));
    Helpers.case "chrome export is well-formed trace_event JSON" (fun () ->
        let t = tracer () in
        Trace.with_span t ~cat:"dp"
          ~args:(fun () -> [ ("k", Json.Int 1) ])
          "layer k=1"
          (fun () -> Trace.instant t ~cat:"heur" "tick");
        Trace.counter t "cells" 12.;
        let doc =
          match Json.parse (Export.chrome t) with
          | Ok doc -> doc
          | Error m -> Alcotest.fail ("chrome JSON does not parse: " ^ m)
        in
        (match Json.member "displayTimeUnit" doc with
        | Some (Json.String "ms") -> ()
        | _ -> Alcotest.fail "missing displayTimeUnit");
        let evs =
          match Json.member "traceEvents" doc with
          | Some (Json.List evs) -> evs
          | _ -> Alcotest.fail "traceEvents missing or not a list"
        in
        Helpers.check_int "one event per probe" 3 (List.length evs);
        (* every event: a known phase, a name, pid/tid ints, ts number;
           complete events also carry a non-negative dur *)
        List.iter
          (fun ev ->
            let field name =
              match Json.member name ev with
              | Some v -> v
              | None -> Alcotest.fail ("event lacks " ^ name)
            in
            (match field "ph" with
            | Json.String ("X" | "i" | "C") -> ()
            | _ -> Alcotest.fail "unknown phase");
            (match field "name" with
            | Json.String _ -> ()
            | _ -> Alcotest.fail "name not a string");
            (match (field "pid", field "tid") with
            | Json.Int _, Json.Int _ -> ()
            | _ -> Alcotest.fail "pid/tid not ints");
            (match Json.to_float_opt (field "ts") with
            | Some ts -> Helpers.check_bool "ts >= 0" true (ts >= 0.)
            | None -> Alcotest.fail "ts not a number");
            match Json.member "dur" ev with
            | Some d -> (
                match Json.to_float_opt d with
                | Some d -> Helpers.check_bool "dur >= 0" true (d >= 0.)
                | None -> Alcotest.fail "dur not a number")
            | None -> ())
          evs;
        (* ts ascending: Perfetto does not require it but chrome://tracing
           renders sorted input much faster, so the exporter sorts *)
        let tss =
          List.map
            (fun ev ->
              match Json.member "ts" ev with
              | Some t -> Option.get (Json.to_float_opt t)
              | None -> nan)
            evs
        in
        Helpers.check_bool "sorted by ts" true
          (List.sort compare tss = tss));
    Helpers.case "jsonl export: one parsable object per event" (fun () ->
        let t = tracer () in
        Trace.with_span t "s" (fun () -> ());
        Trace.instant t "i";
        let lines =
          String.split_on_char '\n' (String.trim (Export.jsonl t))
        in
        Helpers.check_int "lines" 2 (List.length lines);
        List.iter
          (fun line ->
            match Json.parse line with
            | Ok (Json.Obj fields) ->
                Helpers.check_bool "kind present" true
                  (List.mem_assoc "kind" fields)
            | Ok _ -> Alcotest.fail "line not an object"
            | Error m -> Alcotest.fail m)
          lines);
    Helpers.case "summary mentions every span name" (fun () ->
        let t = tracer () in
        Trace.with_span t "alpha" (fun () ->
            Trace.with_span t "beta" (fun () -> ()));
        let s = Export.summary t in
        let mem needle hay =
          let nl = String.length needle and hl = String.length hay in
          let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
          go 0
        in
        Helpers.check_bool "alpha" true (mem "alpha" s);
        Helpers.check_bool "beta" true (mem "beta" s));
    Helpers.case "metrics JSON round-trip (hand value)" (fun () ->
        let m = M.create () in
        M.add_cells m 123;
        M.add_probe m;
        M.add_node m;
        M.add_state m;
        M.add_copy m;
        M.add_compaction m;
        let s = M.snapshot m in
        match M.of_json (M.to_json s) with
        | Some s' -> Helpers.check_bool "round-trip" true (s = s')
        | None -> Alcotest.fail "of_json rejected to_json output");
    Helpers.case "metrics of_json rejects junk" (fun () ->
        Helpers.check_bool "garbage" true (M.of_json "nonsense" = None);
        Helpers.check_bool "missing field" true
          (M.of_json "{\"table_cells\": 3}" = None));
    Helpers.case "json string escaping survives a parse round-trip"
      (fun () ->
        let nasty = "a\"b\\c\nd\te\x01f" in
        let doc = Json.Obj [ ("s", Json.String nasty) ] in
        match Json.parse (Json.to_string doc) with
        | Ok (Json.Obj [ ("s", Json.String s) ]) ->
            Helpers.check_bool "same string" true (s = nasty)
        | _ -> Alcotest.fail "escape round-trip failed");
    Helpers.case "fs layer spans carry the merged metrics delta" (fun () ->
        let t = Trace.make ~sample_gc:false () in
        let metrics = M.create () in
        let tt = T.random (Helpers.rng 5) 6 in
        let _ = Fs.run ~trace:t ~metrics tt in
        let total = (M.snapshot metrics).M.s_table_cells in
        let layer_cells =
          List.fold_left
            (fun acc s ->
              if s.Trace.cat = "dp" && s.Trace.name <> "dp.sweep" then
                match List.assoc_opt "table_cells" s.Trace.args with
                | Some (Json.Int c) -> acc + c
                | _ -> acc
              else acc)
            0 (Trace.spans t)
        in
        Helpers.check_int "layer deltas sum to the run total" total
          layer_cells);
  ]

let props =
  [
    QCheck.Test.make ~name:"tracing never changes the result" ~count:40
      (Helpers.arb_truthtable ~lo:1 ~hi:7 ())
      (fun tt ->
        let plain = Fs.run tt in
        let t = Trace.make ~sample_gc:false () in
        let traced = Fs.run ~trace:t tt in
        plain.Fs.mincost = traced.Fs.mincost
        && plain.Fs.order = traced.Fs.order
        && Trace.event_count t > 0);
    QCheck.Test.make ~name:"Par domain spans sum to the layer totals"
      ~count:15
      (Helpers.arb_truthtable ~lo:4 ~hi:7 ())
      (fun tt ->
        let t = Trace.make ~sample_gc:false () in
        let metrics = M.create () in
        let _ = Fs.run ~trace:t ~engine:(E.par ~domains:2 ()) ~metrics tt in
        let sum pred field =
          List.fold_left
            (fun acc s ->
              if pred s then
                match List.assoc_opt field s.Trace.args with
                | Some (Json.Int c) -> acc + c
                | _ -> acc
              else acc)
            0 (Trace.spans t)
        in
        let is_domain s = s.Trace.cat = "engine" in
        let is_layer s = s.Trace.cat = "dp" && s.Trace.name <> "dp.sweep"
                         && s.Trace.name <> "dp.reconstruct" in
        List.for_all
          (fun field ->
            sum is_domain field = sum is_layer field)
          [ "table_cells"; "cost_probes"; "node_creations";
            "states_materialised"; "node_table_copies" ]);
    QCheck.Test.make ~name:"metrics JSON round-trips for random runs"
      ~count:40
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let m = M.create () in
        let _ = Fs.run ~metrics:m tt in
        let s = M.snapshot m in
        M.of_json (M.to_json s) = Some s);
  ]

let () =
  Alcotest.run "obs" [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

Checkpoint/resume for the exact DP engine, end to end through the CLI.
A run is killed deterministically after layer 2 (--crash-after-layer is
a stand-in for kill -9: the checkpoint is closed exactly as it would be
found on disk after a crash, then the process exits 42), and a second
invocation resumes from the checkpoint file and must reproduce the
uninterrupted answer bit for bit.

The baseline, uninterrupted run:

  $ ovo optimize --table 0110100110010110 --algo fs > plain.txt
  $ cat plain.txt
  algorithm        : FS (exact)
  minimum size     : 9 nodes (7 non-terminal)
  order (root first): [0 1 2 3]
  order (paper pi)  : [3 2 1 0]
  level widths      : [2 2 2 1]
  modeled cost      : 1.080e+02 table cells

The same run with a checkpoint, killed after layer 2:

  $ ovo optimize --table 0110100110010110 --algo fs \
  >   --checkpoint ck.bin --crash-after-layer 2
  [ovo] --crash-after-layer 2: exiting 42
  [42]

Resume picks up from the recorded layers and finishes the sweep:

  $ ovo optimize --table 0110100110010110 --algo fs \
  >   --resume ck.bin > resumed.txt
  [ovo] resuming ck.bin: layers 1..2 already done

The solution is identical to the uninterrupted run.  Only the
"modeled cost" diagnostic differs, because a resumed run does not
re-probe the layers it skipped:

  $ grep -v 'modeled cost' plain.txt > plain.cmp
  $ grep -v 'modeled cost' resumed.txt > resumed.cmp
  $ diff plain.cmp resumed.cmp && echo IDENTICAL
  IDENTICAL

The checkpoint flags are exact-DP only:

  $ ovo optimize --table 0110100110010110 --algo greedy --checkpoint x.bin
  ovo: --checkpoint/--resume/--crash-after-layer need --algo fs
  [124]

And the fsync policy is validated at parse time:

  $ ovo optimize --table 0110 --algo fs --fsync bogus 2>&1 | head -1
  ovo: option '--fsync': bad fsync mode "bogus" (expected always, never,

(* The memory-budgeted out-of-core DP: packed layer encode/decode, byte
   accounting, spill/reload through Ovo_store.Spill, and the headline
   guarantee — a budgeted run is bit-identical to the unbounded one
   under both engines, and a corrupted spill segment is a clean
   [Failure], never a wrong answer. *)

module Mb = Ovo_core.Membudget
module Lp = Ovo_core.Layer_pack
module Vs = Ovo_core.Varset
module Fs = Ovo_core.Fs
module Tt = Ovo_boolfun.Truthtable
module Spill = Ovo_store.Spill

let tmpdir () =
  let d = Filename.temp_file "ovo-mem-test" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* A sink backed by a hashtable — enough to exercise the spill protocol
   without touching the filesystem. *)
let mem_sink () =
  let store = Hashtbl.create 8 in
  ( store,
    {
      Mb.spill = (fun ~k payload -> Hashtbl.replace store k payload);
      reload =
        (fun ~k ->
          match Hashtbl.find_opt store k with
          | Some p -> p
          | None -> failwith "mem_sink: no such layer");
    } )

(* --- Layer_pack ------------------------------------------------------- *)

let vs_of = List.fold_left (fun s i -> Vs.add i s) Vs.empty
let bits s = Vs.fold (fun i acc -> acc lor (1 lsl i)) s 0

let pack_tests =
  [
    Helpers.case "binomial" (fun () ->
        Helpers.check_int "C(8,4)" 70 (Lp.binomial 8 4);
        Helpers.check_int "C(5,0)" 1 (Lp.binomial 5 0);
        Helpers.check_int "C(5,6)" 0 (Lp.binomial 5 6));
    Helpers.case "set/get over every subset" (fun () ->
        let j_set = vs_of [ 0; 2; 3; 5 ] in
        let k = 2 in
        let t = Lp.create ~j_set ~k in
        let expect = Hashtbl.create 8 in
        Vs.iter_subsets_of ~size:k j_set (fun ksub ->
            let cost = bits ksub * 3
            and choice = bits ksub land 0x3f in
            Lp.set t ksub ~cost ~choice;
            Hashtbl.replace expect ksub (cost, choice));
        Helpers.check_int "count" (Lp.binomial 4 2) (Hashtbl.length expect);
        Hashtbl.iter
          (fun ksub (cost, choice) ->
            Helpers.check_int "cost" cost (Lp.cost t ksub);
            Helpers.check_int "choice" choice (Lp.choice t ksub))
          expect);
    Helpers.case "iter visits rank order exactly once" (fun () ->
        let j_set = vs_of [ 1; 2; 4; 6 ] in
        let t = Lp.create ~j_set ~k:3 in
        Vs.iter_subsets_of ~size:3 j_set (fun ksub ->
            Lp.set t ksub ~cost:(bits ksub) ~choice:0);
        let seen = ref [] in
        Lp.iter t (fun ksub ~cost ~choice:_ ->
            Helpers.check_int "cost matches subset" (bits ksub) cost;
            seen := ksub :: !seen);
        Helpers.check_int "visited" (Lp.binomial 4 3) (List.length !seen));
    Helpers.case "encode/decode roundtrip" (fun () ->
        let j_set = vs_of [ 0; 1; 3; 7; 9 ] in
        let t = Lp.create ~j_set ~k:2 in
        Vs.iter_subsets_of ~size:2 j_set (fun ksub ->
            Lp.set t ksub ~cost:(100 + bits ksub) ~choice:7);
        let t' = Lp.decode (Lp.encode t) in
        Vs.iter_subsets_of ~size:2 j_set (fun ksub ->
            Helpers.check_int "cost" (Lp.cost t ksub) (Lp.cost t' ksub);
            Helpers.check_int "choice" (Lp.choice t ksub) (Lp.choice t' ksub));
        Helpers.check_int "size" (Lp.size_bytes t) (Lp.size_bytes t'));
    Helpers.case "decode rejects damage" (fun () ->
        let t = Lp.create ~j_set:(vs_of [ 0; 1; 2 ]) ~k:1 in
        Vs.iter_subsets_of ~size:1
          (vs_of [ 0; 1; 2 ])
          (fun ksub -> Lp.set t ksub ~cost:1 ~choice:0);
        let s = Lp.encode t in
        let fails s =
          match Lp.decode s with
          | exception Failure _ -> true
          | _ -> false
        in
        Helpers.check_bool "truncated" true
          (fails (String.sub s 0 (String.length s - 1)));
        Helpers.check_bool "short header" true (fails "xy");
        let bad_version = Bytes.of_string s in
        Bytes.set bad_version 0 '\xfe';
        Helpers.check_bool "bad version" true
          (fails (Bytes.to_string bad_version)));
    Helpers.case "unset entry is an error" (fun () ->
        let t = Lp.create ~j_set:(vs_of [ 0; 1 ]) ~k:1 in
        Helpers.check_bool "unset" true
          (match Lp.cost t (vs_of [ 0 ]) with
          | exception Invalid_argument _ -> true
          | _ -> false));
  ]

(* --- Membudget -------------------------------------------------------- *)

let budget_tests =
  [
    Helpers.case "parse_bytes units" (fun () ->
        let ok s = Result.get_ok (Mb.parse_bytes s) in
        Helpers.check_int "plain" 1024 (ok "1024");
        Helpers.check_int "k" 4096 (ok "4k");
        Helpers.check_int "K" 4096 (ok "4K");
        Helpers.check_int "M" (2 * 1024 * 1024) (ok "2M");
        Helpers.check_int "G" (1024 * 1024 * 1024) (ok "1g");
        List.iter
          (fun s ->
            Helpers.check_bool s true (Result.is_error (Mb.parse_bytes s)))
          [ ""; "abc"; "0"; "-5"; "1T"; "k" ]);
    Helpers.case "create rejects bad budgets" (fun () ->
        let _, sink = mem_sink () in
        Helpers.check_bool "zero" true
          (match Mb.create ~budget_bytes:0 ~sink () with
          | exception Invalid_argument _ -> true
          | _ -> false);
        Helpers.check_bool "no sink" true
          (match Mb.create ~budget_bytes:100 () with
          | exception Invalid_argument _ -> true
          | _ -> false));
    Helpers.case "unbounded accounting still tracks peaks" (fun () ->
        let n = 6 in
        let tt = Tt.random (Helpers.rng 11) n in
        let mb = Mb.unbounded () in
        ignore (Fs.run ~membudget:mb tt);
        (* the widest layer: C(n, n/2) packed entries plus the header *)
        let expect = (Lp.binomial n (n / 2) * 9) + 14 in
        Helpers.check_int "peak layer" expect (Mb.peak_layer_bytes mb);
        Helpers.check_int "no spills" 0 (Mb.layers_spilled mb);
        Helpers.check_bool "resident peak >= layer peak" true
          (Mb.peak_resident_bytes mb >= Mb.peak_layer_bytes mb));
    Helpers.case "budgeted run spills and balances the books" (fun () ->
        let n = 7 in
        let tt = Tt.random (Helpers.rng 12) n in
        let unb = Mb.unbounded () in
        ignore (Fs.run ~membudget:unb tt);
        let budget = Mb.peak_layer_bytes unb / 2 in
        let _, sink = mem_sink () in
        let mb = Mb.create ~budget_bytes:budget ~sink () in
        ignore (Fs.run ~membudget:mb tt);
        Helpers.check_bool "spilled" true (Mb.layers_spilled mb > 0);
        Helpers.check_int "every spilled byte reloaded" (Mb.bytes_spilled mb)
          (Mb.bytes_reloaded mb);
        Helpers.check_int "one reload per spilled layer" (Mb.layers_spilled mb)
          (Mb.reloads mb));
  ]

(* --- budgeted ≡ unbounded --------------------------------------------- *)

let identical_prop name engine =
  QCheck.Test.make
    ~name:(Printf.sprintf "budget never changes the answer (%s)" name)
    ~count:60
    (Helpers.arb_truthtable ~lo:4 ~hi:7 ())
    (fun tt ->
      let plain = Fs.run ~engine tt in
      (* a 1-byte budget forces every completed layer through the sink *)
      let _, sink = mem_sink () in
      let mb = Mb.create ~budget_bytes:1 ~sink () in
      let tight = Fs.run ~engine ~membudget:mb tt in
      Mb.layers_spilled mb > 0
      && tight.Fs.mincost = plain.Fs.mincost
      && tight.Fs.size = plain.Fs.size
      && tight.Fs.order = plain.Fs.order
      && tight.Fs.widths = plain.Fs.widths)

let props =
  [
    identical_prop "Seq" Ovo_core.Engine.Seq;
    identical_prop "Par" (Ovo_core.Engine.Par { domains = 3 });
  ]

(* --- Spill (on disk) -------------------------------------------------- *)

let spill_tests =
  [
    Helpers.case "spill/reload roundtrip" (fun () ->
        let dir = tmpdir () in
        let sp = Spill.create dir in
        Spill.spill sp ~k:3 "payload three";
        Spill.spill sp ~k:3 "payload three, rewritten";
        Spill.spill sp ~k:11 "payload eleven";
        Helpers.check_bool "k=3" true
          (Spill.reload sp ~k:3 = "payload three, rewritten");
        Helpers.check_bool "k=11" true
          (Spill.reload sp ~k:11 = "payload eleven");
        Spill.remove sp;
        Helpers.check_bool "directory reaped" true (not (Sys.file_exists dir)));
    Helpers.case "remove is idempotent and leaves foreign files" (fun () ->
        let dir = tmpdir () in
        let sp = Spill.create dir in
        Spill.spill sp ~k:1 "x";
        write_file (Filename.concat dir "keep.me") "foreign";
        Spill.remove sp;
        Spill.remove sp;
        Helpers.check_bool "dir kept" true (Sys.is_directory dir);
        Helpers.check_bool "foreign kept" true
          (Sys.file_exists (Filename.concat dir "keep.me")));
    Helpers.case "flipped byte fails the reload" (fun () ->
        let dir = tmpdir () in
        let sp = Spill.create dir in
        Spill.spill sp ~k:4 "some layer bytes that matter";
        let path = Filename.concat dir "layer-04.seg" in
        let b = Bytes.of_string (read_file path) in
        let mid = Bytes.length b / 2 in
        Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x40));
        write_file path (Bytes.to_string b);
        Helpers.check_bool "Failure" true
          (match Spill.reload sp ~k:4 with
          | exception Failure _ -> true
          | _ -> false);
        Spill.remove sp);
    Helpers.case "corrupted segment aborts the DP cleanly" (fun () ->
        let n = 6 in
        let tt = Tt.random (Helpers.rng 13) n in
        let dir = tmpdir () in
        let sp = Spill.create dir in
        (* wrap the sink so the segment rots on disk between the forward
           sweep and the backtrack — the run must fail, not fabricate an
           ordering from damaged costs *)
        let real = Spill.sink sp in
        let sink =
          {
            real with
            Mb.reload =
              (fun ~k ->
                let path =
                  Filename.concat dir (Printf.sprintf "layer-%02d.seg" k)
                in
                let b = Bytes.of_string (read_file path) in
                let mid = Bytes.length b / 2 in
                Bytes.set b mid
                  (Char.chr (Char.code (Bytes.get b mid) lxor 0x01));
                write_file path (Bytes.to_string b);
                real.Mb.reload ~k);
          }
        in
        let mb = Mb.create ~budget_bytes:1 ~sink () in
        Helpers.check_bool "Failure, not a wrong answer" true
          (match Fs.run ~membudget:mb tt with
          | exception Failure _ -> true
          | _ -> false);
        Spill.remove sp);
    Helpers.case "on-disk spill reproduces the in-memory result" (fun () ->
        let n = 7 in
        let tt = Tt.random (Helpers.rng 14) n in
        let plain = Fs.run tt in
        let dir = tmpdir () in
        let sp = Spill.create dir in
        let mb = Mb.create ~budget_bytes:64 ~sink:(Spill.sink sp) () in
        let r = Fs.run ~membudget:mb tt in
        Spill.remove sp;
        Helpers.check_int "mincost" plain.Fs.mincost r.Fs.mincost;
        Helpers.check_bool "order" true (r.Fs.order = plain.Fs.order);
        Helpers.check_bool "widths" true (r.Fs.widths = plain.Fs.widths);
        Helpers.check_bool "spilled" true (Mb.layers_spilled mb > 0));
  ]

let () =
  Alcotest.run "membudget"
    [
      ("layer_pack", pack_tests);
      ("membudget", budget_tests);
      ("spill", spill_tests);
      ("props", Helpers.qtests props);
    ]

(* The memory-budgeted out-of-core DP: packed layer encode/decode, the
   extent split, byte accounting (transient-once spill charging, closed
   form), spill/reload through Ovo_store.Spill in both segment formats,
   and the headline guarantee — a budgeted run is bit-identical to the
   unbounded one under both engines even when a single layer exceeds the
   whole budget, and a corrupted spill segment is a clean [Failure],
   never a wrong answer. *)

module Mb = Ovo_core.Membudget
module Lp = Ovo_core.Layer_pack
module Vs = Ovo_core.Varset
module Fs = Ovo_core.Fs
module Tt = Ovo_boolfun.Truthtable
module Spill = Ovo_store.Spill

let tmpdir () =
  let d = Filename.temp_file "ovo-mem-test" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let src_str = function
  | Lp.S_string s -> s
  | Lp.S_big b -> String.init (Bigarray.Array1.dim b) (Bigarray.Array1.get b)

(* A sink backed by a hashtable — enough to exercise the spill protocol
   without touching the filesystem. *)
let mem_sink () =
  let store = Hashtbl.create 8 in
  ( store,
    {
      Mb.spill = (fun ~k ~ext payload -> Hashtbl.replace store (k, ext) payload);
      reload =
        (fun ~k ~ext ->
          match Hashtbl.find_opt store (k, ext) with
          | Some p -> Lp.S_string p
          | None -> failwith "mem_sink: no such extent");
    } )

(* --- Layer_pack ------------------------------------------------------- *)

let vs_of = List.fold_left (fun s i -> Vs.add i s) Vs.empty
let bits s = Vs.fold (fun i acc -> acc lor (1 lsl i)) s 0

let pack_tests =
  [
    Helpers.case "binomial" (fun () ->
        Helpers.check_int "C(8,4)" 70 (Lp.binomial 8 4);
        Helpers.check_int "C(5,0)" 1 (Lp.binomial 5 0);
        Helpers.check_int "C(5,6)" 0 (Lp.binomial 5 6));
    Helpers.case "set/get over every subset" (fun () ->
        let j_set = vs_of [ 0; 2; 3; 5 ] in
        let k = 2 in
        let t = Lp.create ~j_set ~k in
        let expect = Hashtbl.create 8 in
        Vs.iter_subsets_of ~size:k j_set (fun ksub ->
            let cost = bits ksub * 3
            and choice = bits ksub land 0x3f in
            Lp.set t ksub ~cost ~choice;
            Hashtbl.replace expect ksub (cost, choice));
        Helpers.check_int "count" (Lp.binomial 4 2) (Hashtbl.length expect);
        Hashtbl.iter
          (fun ksub (cost, choice) ->
            Helpers.check_int "cost" cost (Lp.cost t ksub);
            Helpers.check_int "choice" choice (Lp.choice t ksub))
          expect);
    Helpers.case "iter visits rank order exactly once" (fun () ->
        let j_set = vs_of [ 1; 2; 4; 6 ] in
        let t = Lp.create ~j_set ~k:3 in
        Vs.iter_subsets_of ~size:3 j_set (fun ksub ->
            Lp.set t ksub ~cost:(bits ksub) ~choice:0);
        let seen = ref [] in
        Lp.iter t (fun ksub ~cost ~choice:_ ->
            Helpers.check_int "cost matches subset" (bits ksub) cost;
            seen := ksub :: !seen);
        Helpers.check_int "visited" (Lp.binomial 4 3) (List.length !seen));
    Helpers.case "encode/decode roundtrip" (fun () ->
        let j_set = vs_of [ 0; 1; 3; 7; 9 ] in
        let t = Lp.create ~j_set ~k:2 in
        Vs.iter_subsets_of ~size:2 j_set (fun ksub ->
            Lp.set t ksub ~cost:(100 + bits ksub) ~choice:7);
        let t' = Lp.decode (Lp.encode t) in
        Vs.iter_subsets_of ~size:2 j_set (fun ksub ->
            Helpers.check_int "cost" (Lp.cost t ksub) (Lp.cost t' ksub);
            Helpers.check_int "choice" (Lp.choice t ksub) (Lp.choice t' ksub));
        Helpers.check_int "size" (Lp.size_bytes t) (Lp.size_bytes t'));
    Helpers.case "compressed whole layer beats dense and roundtrips"
      (fun () ->
        let j_set = vs_of [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
        let t = Lp.create ~j_set ~k:4 in
        (* smooth cost ramp: the shape real DP tables have, where
           delta+varint wins big *)
        let r = ref 0 in
        Vs.iter_subsets_of ~size:4 j_set (fun ksub ->
            Lp.set t ksub ~cost:(1000 + !r) ~choice:(bits ksub land 7);
            incr r);
        let packed = Lp.encode_packed t in
        let dense = Lp.encode_dense t in
        Helpers.check_bool "packed at most half of dense" true
          (2 * String.length packed <= String.length dense);
        Helpers.check_bool "encode picks the smallest" true
          (String.length (Lp.encode t) <= String.length packed);
        let t' = Lp.decode packed in
        Vs.iter_subsets_of ~size:4 j_set (fun ksub ->
            Helpers.check_int "cost" (Lp.cost t ksub) (Lp.cost t' ksub);
            Helpers.check_int "choice" (Lp.choice t ksub) (Lp.choice t' ksub)));
    Helpers.case "decode rejects damage" (fun () ->
        let t = Lp.create ~j_set:(vs_of [ 0; 1; 2 ]) ~k:1 in
        Vs.iter_subsets_of ~size:1
          (vs_of [ 0; 1; 2 ])
          (fun ksub -> Lp.set t ksub ~cost:1 ~choice:0);
        let s = Lp.encode t in
        let fails s =
          match Lp.decode s with
          | exception Failure _ -> true
          | _ -> false
        in
        Helpers.check_bool "truncated" true
          (fails (String.sub s 0 (String.length s - 1)));
        Helpers.check_bool "short header" true (fails "xy");
        let bad_version = Bytes.of_string s in
        Bytes.set bad_version 0 '\xfe';
        Helpers.check_bool "bad version" true
          (fails (Bytes.to_string bad_version)));
    Helpers.case "unset entry is an error" (fun () ->
        let t = Lp.create ~j_set:(vs_of [ 0; 1 ]) ~k:1 in
        Helpers.check_bool "unset" true
          (match Lp.cost t (vs_of [ 0 ]) with
          | exception Invalid_argument _ -> true
          | _ -> false));
  ]

(* --- extents ----------------------------------------------------------- *)

module X = Lp.Extent

(* A deterministic pseudo-random extent: a rank range of a layer with a
   random subset of entries set, costs of mixed magnitude. *)
let random_extent st =
  let m = 4 + Random.State.int st 5 in
  let j_set =
    let rec pick s =
      if Vs.cardinal s = m then s else pick (Vs.add (Random.State.int st 12) s)
    in
    pick Vs.empty
  in
  let k = 1 + Random.State.int st m in
  let total = Lp.binomial m k in
  let len = 1 + Random.State.int st total in
  let lo = Random.State.int st (total - len + 1) in
  let x = X.create ~j_set ~k ~total ~lo ~len in
  for r = lo to lo + len - 1 do
    if Random.State.int st 4 > 0 then
      X.set x ~rank:r
        ~cost:(Random.State.full_int st (1 lsl (1 + Random.State.int st 40)))
        ~choice:(Random.State.int st 256)
  done;
  x

let same_extent msg a b =
  Helpers.check_int (msg ^ ": lo") (X.lo a) (X.lo b);
  Helpers.check_int (msg ^ ": len") (X.len a) (X.len b);
  Helpers.check_int (msg ^ ": present") (X.present a) (X.present b);
  for r = X.lo a to X.lo a + X.len a - 1 do
    Helpers.check_bool (msg ^ ": mem") (X.mem a ~rank:r) (X.mem b ~rank:r);
    if X.mem a ~rank:r then begin
      Helpers.check_int (msg ^ ": cost") (X.cost a ~rank:r) (X.cost b ~rank:r);
      Helpers.check_int (msg ^ ": choice") (X.choice a ~rank:r)
        (X.choice b ~rank:r)
    end
  done

let extent_roundtrip_prop =
  QCheck.Test.make ~name:"extent packed/raw encodings agree" ~count:150
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let st = Helpers.rng seed in
      let x = random_extent st in
      let dec payload =
        X.of_src (Lp.S_string payload) ~j_set:(X.j_set x) ~k:(X.k x)
          ~total:(X.total x) ~lo:(X.lo x) ~len:(X.len x)
      in
      same_extent "packed" x (dec (X.encode_packed x));
      same_extent "raw" x (dec (X.encode_raw x));
      String.length (X.encode x)
      <= min
           (String.length (X.encode_packed x))
           (String.length (X.encode_raw x)))

let extent_tests =
  [
    Helpers.case "global-rank set/get and bounds" (fun () ->
        let j_set = vs_of [ 0; 1; 2; 3; 4; 5 ] in
        let total = Lp.binomial 6 3 in
        let x = X.create ~j_set ~k:3 ~total ~lo:5 ~len:7 in
        X.set x ~rank:5 ~cost:42 ~choice:1;
        X.set x ~rank:11 ~cost:7 ~choice:2;
        Helpers.check_int "cost lo" 42 (X.cost x ~rank:5);
        Helpers.check_int "cost hi" 7 (X.cost x ~rank:11);
        Helpers.check_int "present" 2 (X.present x);
        Helpers.check_bool "unset mem" false (X.mem x ~rank:6);
        Helpers.check_bool "out of range" true
          (match X.set x ~rank:12 ~cost:1 ~choice:0 with
          | exception Invalid_argument _ -> true
          | _ -> false);
        Helpers.check_int "size" (30 + (7 * 9)) (X.size_bytes x));
    Helpers.case "whole-layer records serve extent reloads" (fun () ->
        (* the unified checkpoint story: a v1/v2/v3 whole-layer payload
           contains any extent of that layer *)
        let j_set = vs_of [ 0; 1; 2; 3; 4; 5; 6 ] in
        let k = 3 in
        let t = Lp.create ~j_set ~k in
        Vs.iter_subsets_of ~size:k j_set (fun ksub ->
            Lp.set t ksub ~cost:(500 + bits ksub) ~choice:(bits ksub land 3));
        let total = Lp.binomial 7 3 in
        List.iter
          (fun payload ->
            let x =
              X.of_src (Lp.S_string payload) ~j_set ~k ~total ~lo:10 ~len:9
            in
            Helpers.check_int "len" 9 (X.len x);
            for r = 10 to 18 do
              let ksub = Lp.unrank t r in
              Helpers.check_int "cost" (Lp.cost t ksub) (X.cost x ~rank:r);
              Helpers.check_int "choice" (Lp.choice t ksub) (X.choice x ~rank:r)
            done)
          [ Lp.encode_dense t; Lp.encode_sparse t; Lp.encode_packed t ]);
    Helpers.case "of_src rejects damage cleanly" (fun () ->
        let st = Helpers.rng 99 in
        let x = random_extent st in
        let j_set = X.j_set x and k = X.k x in
        let total = X.total x and lo = X.lo x and len = X.len x in
        let dec payload = X.of_src (Lp.S_string payload) ~j_set ~k ~total ~lo ~len in
        let fails payload =
          match dec payload with exception Failure _ -> true | _ -> false
        in
        let packed = X.encode_packed x in
        Helpers.check_bool "truncated stream" true
          (fails (String.sub packed 0 (String.length packed - 1)));
        Helpers.check_bool "truncated header" true
          (fails (String.sub packed 0 10));
        Helpers.check_bool "trailing garbage" true (fails (packed ^ "!"));
        (* same cardinality, different universe: the request is well
           formed but the payload belongs to another layer *)
        let other = Vs.add 13 (Vs.remove (Vs.min_elt j_set) j_set) in
        Helpers.check_bool "wrong layer" true
          (match
             X.of_src (Lp.S_string packed) ~j_set:other ~k ~total ~lo ~len
           with
          | exception Failure _ -> true
          | _ -> false);
        (* a payload that does not contain the requested range *)
        Helpers.check_bool "containment" true
          (match
             X.of_src (Lp.S_string packed) ~j_set ~k ~total ~lo
               ~len:(total - lo)
           with
          | exception Failure _ -> len < total - lo
          | _ -> len = total - lo));
    Helpers.case "mapped raw extents stay zero-copy and read-only" (fun () ->
        let j_set = vs_of [ 0; 1; 2; 3; 4 ] in
        let total = Lp.binomial 5 2 in
        let x = X.create ~j_set ~k:2 ~total ~lo:0 ~len:total in
        for r = 0 to total - 1 do
          X.set x ~rank:r ~cost:(r * r) ~choice:(r land 1)
        done;
        let raw = X.encode_raw x in
        let big =
          Bigarray.Array1.create Bigarray.char Bigarray.c_layout
            (String.length raw)
        in
        String.iteri (Bigarray.Array1.set big) raw;
        let x' = X.of_src (Lp.S_big big) ~j_set ~k:2 ~total ~lo:0 ~len:total in
        same_extent "mapped" x x';
        Helpers.check_bool "read-only" true
          (match X.set x' ~rank:0 ~cost:1 ~choice:0 with
          | exception Invalid_argument _ -> true
          | _ -> false));
  ]

(* --- Membudget -------------------------------------------------------- *)

let budget_tests =
  [
    Helpers.case "parse_bytes units" (fun () ->
        let ok s = Result.get_ok (Mb.parse_bytes s) in
        Helpers.check_int "plain" 1024 (ok "1024");
        Helpers.check_int "k" 4096 (ok "4k");
        Helpers.check_int "K" 4096 (ok "4K");
        Helpers.check_int "M" (2 * 1024 * 1024) (ok "2M");
        Helpers.check_int "G" (1024 * 1024 * 1024) (ok "1g");
        List.iter
          (fun s ->
            Helpers.check_bool s true (Result.is_error (Mb.parse_bytes s)))
          [ ""; "abc"; "0"; "-5"; "1T"; "k" ]);
    Helpers.case "create rejects bad budgets" (fun () ->
        let _, sink = mem_sink () in
        Helpers.check_bool "zero" true
          (match Mb.create ~budget_bytes:0 ~sink () with
          | exception Invalid_argument _ -> true
          | _ -> false);
        Helpers.check_bool "no sink" true
          (match Mb.create ~budget_bytes:100 () with
          | exception Invalid_argument _ -> true
          | _ -> false);
        Helpers.check_bool "zero extent" true
          (match Mb.create ~extent_bytes:0 () with
          | exception Invalid_argument _ -> true
          | _ -> false));
    Helpers.case "unbounded accounting still tracks peaks" (fun () ->
        let n = 6 in
        let tt = Tt.random (Helpers.rng 11) n in
        let mb = Mb.unbounded () in
        ignore (Fs.run ~membudget:mb tt);
        (* the widest layer: C(n, n/2) packed entries plus one extent
           header (the default extent swallows the whole layer) *)
        let expect = (Lp.binomial n (n / 2) * 9) + Lp.extent_header_bytes in
        Helpers.check_int "peak layer" expect (Mb.peak_layer_bytes mb);
        Helpers.check_int "no spills" 0 (Mb.layers_spilled mb);
        Helpers.check_bool "ratio is 1 before any spill" true
          (Mb.compression_ratio mb = 1.0);
        Helpers.check_bool "resident peak >= layer peak" true
          (Mb.peak_resident_bytes mb >= Mb.peak_layer_bytes mb));
    Helpers.case "budgeted run spills and balances the books" (fun () ->
        let n = 7 in
        let tt = Tt.random (Helpers.rng 12) n in
        let unb = Mb.unbounded () in
        ignore (Fs.run ~membudget:unb tt);
        let budget = Mb.peak_layer_bytes unb / 2 in
        let _, sink = mem_sink () in
        let mb = Mb.create ~budget_bytes:budget ~sink () in
        ignore (Fs.run ~membudget:mb tt);
        Helpers.check_bool "spilled" true (Mb.layers_spilled mb > 0);
        Helpers.check_bool "extents counted" true
          (Mb.extents_spilled mb >= Mb.layers_spilled mb);
        Helpers.check_bool "compression never inflates" true
          (Mb.raw_bytes_spilled mb >= Mb.bytes_spilled mb);
        Helpers.check_bool "ratio >= 1" true (Mb.compression_ratio mb >= 1.0);
        Helpers.check_bool "reloaded" true (Mb.reloads mb > 0));
    Helpers.case "transient spill charge is counted once (closed form)"
      (fun () ->
        (* budget 1 with whole-layer extents: every layer is packed,
           charged, and immediately evicted.  If eviction charged the
           dense extent and its encoded payload together the peak would
           exceed one extent; charging the transient once pins the peak
           at exactly the largest extent. *)
        let n = 6 in
        let tt = Tt.random (Helpers.rng 16) n in
        let _, sink = mem_sink () in
        let mb = Mb.create ~budget_bytes:1 ~sink () in
        ignore (Fs.run ~membudget:mb tt);
        let expect = Lp.extent_header_bytes + (Lp.binomial n (n / 2) * 9) in
        Helpers.check_int "peak resident" expect (Mb.peak_resident_bytes mb));
    Helpers.case "a layer larger than the whole budget stays out of core"
      (fun () ->
        let n = 7 in
        let tt = Tt.random (Helpers.rng 15) n in
        let plain = Fs.run tt in
        let _, sink = mem_sink () in
        (* 5 entries per extent; the hump layer C(7,3)*9 = 315 B dense
           exceeds the whole 100 B budget *)
        let extent_bytes = 45 in
        let budget = 100 in
        let mb = Mb.create ~budget_bytes:budget ~extent_bytes ~sink () in
        let r = Fs.run ~membudget:mb tt in
        Helpers.check_int "mincost" plain.Fs.mincost r.Fs.mincost;
        Helpers.check_bool "order" true (r.Fs.order = plain.Fs.order);
        Helpers.check_bool "widths" true (r.Fs.widths = plain.Fs.widths);
        Helpers.check_bool "hump exceeds budget" true
          (Mb.peak_layer_bytes mb > budget);
        Helpers.check_bool "peak stays within budget + one extent" true
          (Mb.peak_resident_bytes mb
          <= budget + Lp.extent_header_bytes + extent_bytes);
        Helpers.check_bool "extent-granular spilling" true
          (Mb.extents_spilled mb > Mb.layers_spilled mb));
  ]

(* --- budgeted ≡ unbounded --------------------------------------------- *)

let identical_prop name engine =
  QCheck.Test.make
    ~name:(Printf.sprintf "budget never changes the answer (%s)" name)
    ~count:60
    (Helpers.arb_truthtable ~lo:4 ~hi:7 ())
    (fun tt ->
      let plain = Fs.run ~engine tt in
      (* a 1-byte budget with tiny extents forces every completed layer
         through the sink piecewise *)
      let _, sink = mem_sink () in
      let mb = Mb.create ~budget_bytes:1 ~extent_bytes:45 ~sink () in
      let tight = Fs.run ~engine ~membudget:mb tt in
      Mb.layers_spilled mb > 0
      && tight.Fs.mincost = plain.Fs.mincost
      && tight.Fs.size = plain.Fs.size
      && tight.Fs.order = plain.Fs.order
      && tight.Fs.widths = plain.Fs.widths)

let props =
  [
    extent_roundtrip_prop;
    identical_prop "Seq" Ovo_core.Engine.Seq;
    identical_prop "Par" (Ovo_core.Engine.Par { domains = 3 });
  ]

(* --- Spill (on disk) -------------------------------------------------- *)

let seg path k ext = Filename.concat path (Printf.sprintf "layer-%02d-%03d.seg" k ext)

let spill_tests =
  [
    Helpers.case "spill/reload roundtrip" (fun () ->
        let dir = tmpdir () in
        let sp = Spill.create dir in
        Spill.spill sp ~k:3 ~ext:0 "payload three";
        Spill.spill sp ~k:3 ~ext:0 "payload three, rewritten";
        Spill.spill sp ~k:3 ~ext:1 "payload three-one";
        Spill.spill sp ~k:11 ~ext:0 "payload eleven";
        Helpers.check_bool "k=3 ext=0" true
          (src_str (Spill.reload sp ~k:3 ~ext:0) = "payload three, rewritten");
        Helpers.check_bool "k=3 ext=1" true
          (src_str (Spill.reload sp ~k:3 ~ext:1) = "payload three-one");
        Helpers.check_bool "k=11" true
          (src_str (Spill.reload sp ~k:11 ~ext:0) = "payload eleven");
        Spill.remove sp;
        Helpers.check_bool "directory reaped" true (not (Sys.file_exists dir)));
    Helpers.case "remove is idempotent and leaves foreign files" (fun () ->
        let dir = tmpdir () in
        let sp = Spill.create dir in
        Spill.spill sp ~k:1 ~ext:0 "x";
        write_file (Filename.concat dir "keep.me") "foreign";
        Spill.remove sp;
        Spill.remove sp;
        Helpers.check_bool "dir kept" true (Sys.is_directory dir);
        Helpers.check_bool "foreign kept" true
          (Sys.file_exists (Filename.concat dir "keep.me")));
    Helpers.case "flipped byte fails the reload" (fun () ->
        let dir = tmpdir () in
        let sp = Spill.create dir in
        Spill.spill sp ~k:4 ~ext:2 "some extent bytes that matter";
        let path = seg dir 4 2 in
        let b = Bytes.of_string (read_file path) in
        let mid = Bytes.length b / 2 in
        Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x40));
        write_file path (Bytes.to_string b);
        Helpers.check_bool "Failure" true
          (match Spill.reload sp ~k:4 ~ext:2 with
          | exception Failure _ -> true
          | _ -> false);
        Spill.remove sp);
    Helpers.case "mmap segments roundtrip and verify" (fun () ->
        let dir = tmpdir () in
        let sp = Spill.create ~mmap:true dir in
        let payload = String.init 257 (fun i -> Char.chr (i * 7 land 0xff)) in
        Spill.spill sp ~k:5 ~ext:1 payload;
        (match Spill.reload sp ~k:5 ~ext:1 with
        | Lp.S_big b ->
            Helpers.check_int "mapped length" (String.length payload)
              (Bigarray.Array1.dim b);
            Helpers.check_bool "mapped bytes" true (src_str (Lp.S_big b) = payload)
        | Lp.S_string _ -> Alcotest.fail "mmap reload returned a string");
        (* flip one payload byte: the CRC must catch it *)
        let path = seg dir 5 1 in
        let b = Bytes.of_string (read_file path) in
        let last = Bytes.length b - 1 in
        Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0x01));
        write_file path (Bytes.to_string b);
        Helpers.check_bool "corrupt mapped segment" true
          (match Spill.reload sp ~k:5 ~ext:1 with
          | exception Failure _ -> true
          | _ -> false);
        (* truncation *)
        write_file path "OVOSEG";
        Helpers.check_bool "truncated mapped segment" true
          (match Spill.reload sp ~k:5 ~ext:1 with
          | exception Failure _ -> true
          | _ -> false);
        Spill.remove sp);
    Helpers.case "corrupted segment aborts the DP cleanly" (fun () ->
        let n = 6 in
        let tt = Tt.random (Helpers.rng 13) n in
        let dir = tmpdir () in
        let sp = Spill.create dir in
        (* wrap the sink so the segment rots on disk between the forward
           sweep and the backtrack — the run must fail, not fabricate an
           ordering from damaged costs *)
        let real = Spill.sink sp in
        let sink =
          {
            real with
            Mb.reload =
              (fun ~k ~ext ->
                let path = seg dir k ext in
                let b = Bytes.of_string (read_file path) in
                let mid = Bytes.length b / 2 in
                Bytes.set b mid
                  (Char.chr (Char.code (Bytes.get b mid) lxor 0x01));
                write_file path (Bytes.to_string b);
                real.Mb.reload ~k ~ext);
          }
        in
        let mb = Mb.create ~budget_bytes:1 ~sink () in
        Helpers.check_bool "Failure, not a wrong answer" true
          (match Fs.run ~membudget:mb tt with
          | exception Failure _ -> true
          | _ -> false);
        Spill.remove sp);
    Helpers.case "on-disk spill reproduces the in-memory result" (fun () ->
        let n = 7 in
        let tt = Tt.random (Helpers.rng 14) n in
        let plain = Fs.run tt in
        let dir = tmpdir () in
        let sp = Spill.create dir in
        let mb = Mb.create ~budget_bytes:64 ~sink:(Spill.sink sp) () in
        let r = Fs.run ~membudget:mb tt in
        Spill.remove sp;
        Helpers.check_int "mincost" plain.Fs.mincost r.Fs.mincost;
        Helpers.check_bool "order" true (r.Fs.order = plain.Fs.order);
        Helpers.check_bool "widths" true (r.Fs.widths = plain.Fs.widths);
        Helpers.check_bool "spilled" true (Mb.layers_spilled mb > 0));
    Helpers.case "mmap spill reproduces the in-memory result" (fun () ->
        let n = 7 in
        let tt = Tt.random (Helpers.rng 17) n in
        let plain = Fs.run tt in
        let dir = tmpdir () in
        let sp = Spill.create ~mmap:true dir in
        let mb =
          Mb.create ~budget_bytes:64 ~extent_bytes:90 ~sink:(Spill.sink sp) ()
        in
        let r = Fs.run ~membudget:mb tt in
        Spill.remove sp;
        Helpers.check_int "mincost" plain.Fs.mincost r.Fs.mincost;
        Helpers.check_bool "order" true (r.Fs.order = plain.Fs.order);
        Helpers.check_bool "spilled extents" true (Mb.extents_spilled mb > 0));
  ]

let () =
  Alcotest.run "membudget"
    [
      ("layer_pack", pack_tests);
      ("extents", extent_tests);
      ("membudget", budget_tests);
      ("spill", spill_tests);
      ("props", Helpers.qtests props);
    ]

(* The cost counters and the Subset_dp functor, tested directly. *)

module Cost = Ovo_core.Cost
module C = Ovo_core.Compact
module T = Ovo_boolfun.Truthtable

let unit_tests =
  [
    Helpers.case "counters accumulate and diff" (fun () ->
        let before = Cost.snapshot () in
        let st = C.of_truthtable C.Bdd (T.of_string "01100110") in
        let _ = C.compact st 0 in
        let after = Cost.snapshot () in
        let d = Cost.diff after before in
        Helpers.check_int "cells = half the table" 4 d.Cost.table_cells;
        Helpers.check_int "one compaction" 1 d.Cost.compactions;
        Helpers.check_bool "nodes counted" true (d.Cost.node_creations >= 1));
    Helpers.case "reset zeroes" (fun () ->
        Cost.reset ();
        let s = Cost.snapshot () in
        Helpers.check_int "cells" 0 s.Cost.table_cells;
        Helpers.check_int "compactions" 0 s.Cost.compactions;
        Helpers.check_int "nodes" 0 s.Cost.node_creations);
    Helpers.case "chain counts a geometric series of cells" (fun () ->
        Cost.reset ();
        let tt = T.random (Helpers.rng 1) 6 in
        let _ = C.compact_chain (C.of_truthtable C.Bdd tt) [| 0; 1; 2; 3; 4; 5 |] in
        let s = Cost.snapshot () in
        (* 32 + 16 + 8 + 4 + 2 + 1 *)
        Helpers.check_int "cells" 63 s.Cost.table_cells;
        Helpers.check_int "compactions" 6 s.Cost.compactions);
    Helpers.case "pp renders all fields" (fun () ->
        let s = Cost.snapshot () in
        let text = Format.asprintf "%a" Cost.pp s in
        Helpers.check_bool "mentions cells" true
          (String.length text > 0
          &&
          let has needle =
            let rec go i =
              i + String.length needle <= String.length text
              && (String.sub text i (String.length needle) = needle || go (i + 1))
            in
            go 0
          in
          has "cells" && has "compactions" && has "nodes"));
  ]

(* A toy COMPACTABLE instance: states are (remaining multiset as mask,
   accumulated cost); compacting variable i costs the number of smaller
   free variables (so different orders genuinely differ, with minimum
   achieved by taking big variables first... actually taking any order
   of a fixed set gives Sum over placements — we choose a cost where the
   min over orders is known in closed form). *)
module Toy = struct
  type state = { free : Ovo_core.Varset.t; cost : int }

  (* placing i costs i times the number of variables still free after
     it; the optimum over a set therefore places big indices early *)
  let compact st i =
    if not (Ovo_core.Varset.mem i st.free) then invalid_arg "toy";
    let free = Ovo_core.Varset.remove i st.free in
    { free; cost = st.cost + (i * Ovo_core.Varset.cardinal free) }

  let cost_if_compacted ~metrics:_ st i = (compact st i).cost
  let materialise ~metrics:_ st i = compact st i
  let mincost st = st.cost
  let free st = st.free
end

module Toy_dp = Ovo_core.Subset_dp.Make (Toy)

let toy_brute base vars =
  List.fold_left
    (fun acc order ->
      min acc
        (Array.fold_left Toy.compact base (Array.of_list order)).Toy.cost)
    max_int
    (Helpers.permutations vars)

let dp_tests =
  [
    Helpers.case "functor DP matches brute force on the toy problem" (fun () ->
        for n = 1 to 6 do
          let full = Ovo_core.Varset.full n in
          let base = { Toy.free = full; cost = 0 } in
          let st = Toy_dp.complete ~base full in
          Helpers.check_int
            (Printf.sprintf "n=%d" n)
            (toy_brute base (List.init n (fun i -> i)))
            st.Toy.cost
        done);
    Helpers.case "early stop produces exactly the layer" (fun () ->
        let full = Ovo_core.Varset.full 5 in
        let base = { Toy.free = full; cost = 0 } in
        let t = Toy_dp.run ~upto:2 ~base full in
        Helpers.check_int "layer" 10 (Hashtbl.length t.Toy_dp.layer);
        Hashtbl.iter
          (fun k (st : Toy.state) ->
            Helpers.check_int "free matches"
              (Ovo_core.Varset.cardinal (Ovo_core.Varset.diff full k))
              (Ovo_core.Varset.cardinal st.Toy.free))
          t.Toy_dp.layer);
    Helpers.case "invalid J rejected" (fun () ->
        let base = { Toy.free = Ovo_core.Varset.of_list [ 0; 1 ]; cost = 0 } in
        Alcotest.check_raises "bad J"
          (Invalid_argument "Subset_dp.run: J not free in the base state")
          (fun () -> ignore (Toy_dp.run ~base (Ovo_core.Varset.of_list [ 2 ]))));
  ]

let () =
  Alcotest.run "cost_dp" [ ("cost", unit_tests); ("subset_dp", dp_tests) ]

(* The ordering service: LRU and bounded-queue semantics, cooperative
   cancellation through the DP, protocol codecs, the canonical result
   cache (including permutation-equivalent hits), and an in-process
   end-to-end run over a temp Unix socket.  The load-bearing property is
   qcheck'd: a cache hit returns exactly what a fresh solve would. *)

module T = Ovo_boolfun.Truthtable
module Cancel = Ovo_core.Cancel
module Fs = Ovo_core.Fs
module P = Ovo_serve.Protocol
module Lru = Ovo_serve.Lru
module Bqueue = Ovo_serve.Bqueue
module Cache = Ovo_serve.Cache
module Solver = Ovo_serve.Solver
module Server = Ovo_serve.Server
module Client = Ovo_serve.Client

let lru_tests =
  [
    Helpers.case "evicts least-recently-used at capacity" (fun () ->
        let l = Lru.create ~cap:2 in
        Lru.add l "a" 1;
        Lru.add l "b" 2;
        Lru.add l "c" 3;
        (* a was LRU *)
        Helpers.check_bool "a gone" false (Lru.mem l "a");
        Helpers.check_bool "b kept" true (Lru.mem l "b");
        Helpers.check_bool "c kept" true (Lru.mem l "c");
        Helpers.check_int "evictions" 1 (Lru.evictions l));
    Helpers.case "find refreshes recency" (fun () ->
        let l = Lru.create ~cap:2 in
        Lru.add l "a" 1;
        Lru.add l "b" 2;
        Helpers.check_bool "hit" true (Lru.find l "a" = Some 1);
        Lru.add l "c" 3;
        (* b, not a, was LRU after the find *)
        Helpers.check_bool "a kept" true (Lru.mem l "a");
        Helpers.check_bool "b gone" false (Lru.mem l "b"));
    Helpers.case "add on an existing key replaces in place" (fun () ->
        let l = Lru.create ~cap:2 in
        Lru.add l "a" 1;
        Lru.add l "b" 2;
        Lru.add l "a" 10;
        Helpers.check_int "length" 2 (Lru.length l);
        Helpers.check_bool "updated" true (Lru.find l "a" = Some 10);
        Helpers.check_int "no eviction" 0 (Lru.evictions l));
    Helpers.case "mem does not touch recency" (fun () ->
        let l = Lru.create ~cap:2 in
        Lru.add l "a" 1;
        Lru.add l "b" 2;
        ignore (Lru.mem l "a");
        Lru.add l "c" 3;
        Helpers.check_bool "a still evicted" false (Lru.mem l "a"));
  ]

let bqueue_tests =
  [
    Helpers.case "try_push reports Full at capacity" (fun () ->
        let q = Bqueue.create ~cap:2 in
        Helpers.check_bool "1st" true (Bqueue.try_push q 1 = `Pushed);
        Helpers.check_bool "2nd" true (Bqueue.try_push q 2 = `Pushed);
        Helpers.check_bool "3rd rejected" true (Bqueue.try_push q 3 = `Full);
        Helpers.check_int "depth" 2 (Bqueue.length q));
    Helpers.case "close drains queued items then yields None" (fun () ->
        let q = Bqueue.create ~cap:4 in
        ignore (Bqueue.try_push q 1);
        ignore (Bqueue.try_push q 2);
        Bqueue.close q;
        Helpers.check_bool "push after close" true
          (match Bqueue.try_push q 3 with
          | exception Bqueue.Closed -> true
          | _ -> false);
        Helpers.check_bool "drain 1" true (Bqueue.pop q = Some 1);
        Helpers.check_bool "drain 2" true (Bqueue.pop q = Some 2);
        Helpers.check_bool "then None" true (Bqueue.pop q = None));
    Helpers.case "pop blocks until a producer arrives" (fun () ->
        let q = Bqueue.create ~cap:1 in
        let got = ref None in
        let consumer = Thread.create (fun () -> got := Bqueue.pop q) () in
        Thread.delay 0.02;
        ignore (Bqueue.try_push q 42);
        Thread.join consumer;
        Helpers.check_bool "received" true (!got = Some 42));
    Helpers.case "close wakes a parked consumer" (fun () ->
        let q = Bqueue.create ~cap:1 in
        let got = ref (Some 0) in
        let consumer = Thread.create (fun () -> got := Bqueue.pop q) () in
        Thread.delay 0.02;
        Bqueue.close q;
        Thread.join consumer;
        Helpers.check_bool "None on close" true (!got = None));
  ]

let cancel_tests =
  [
    Helpers.case "explicit cancel fires the token" (fun () ->
        let c = Cancel.make () in
        Helpers.check_bool "fresh" false (Cancel.is_cancelled c);
        Cancel.cancel c;
        Helpers.check_bool "fired" true (Cancel.is_cancelled c));
    Helpers.case "deadline fires on the injected clock" (fun () ->
        let now = ref 0. in
        let c = Cancel.with_deadline ~clock:(fun () -> !now) 5. in
        Helpers.check_bool "before" false (Cancel.is_cancelled c);
        now := 5.;
        Helpers.check_bool "at deadline" true (Cancel.is_cancelled c));
    Helpers.case "a fired token aborts Fs.run as Error `Cancelled" (fun () ->
        let c = Cancel.make () in
        Cancel.cancel c;
        let tt = T.of_string "01101001" in
        Helpers.check_bool "cancelled" true
          (Cancel.protect c (fun () -> Fs.run ~cancel:c tt) = Error `Cancelled));
    Helpers.case "an unfired token leaves Fs.run untouched" (fun () ->
        let c = Cancel.make () in
        let tt = T.of_string "01101001" in
        match Cancel.protect c (fun () -> Fs.run ~cancel:c tt) with
        | Error `Cancelled -> Alcotest.fail "spurious cancellation"
        | Ok r ->
            Helpers.check_int "same mincost" (Fs.run tt).Fs.mincost r.Fs.mincost);
  ]

let roundtrip_request req =
  match P.request_of_line (P.request_to_line req) with
  | Ok r -> r
  | Error (`Msg m) -> Alcotest.fail m

let roundtrip_reply rep =
  match P.reply_of_line (P.reply_to_line rep) with
  | Ok r -> r
  | Error (`Msg m) -> Alcotest.fail m

let protocol_tests =
  [
    Helpers.case "solve request round-trips" (fun () ->
        let req =
          { P.id = 7;
            op =
              P.Solve
                { P.table = "01101001"; kind = Ovo_core.Compact.Zdd;
                  engine = Ovo_core.Engine.Par { domains = 3 };
                  deadline_ms = Some 250. } }
        in
        Helpers.check_bool "equal" true (roundtrip_request req = req));
    Helpers.case "control requests round-trip" (fun () ->
        List.iter
          (fun op ->
            let req = { P.id = 1; op } in
            Helpers.check_bool "equal" true (roundtrip_request req = req))
          [ P.Stats; P.Ping; P.Shutdown ]);
    Helpers.case "replies round-trip" (fun () ->
        List.iter
          (fun body ->
            let rep = P.reply 9 body in
            Helpers.check_bool "equal" true (roundtrip_reply rep = rep))
          [ P.Ok_solve
              { P.digest = "3:0123456789abcdef"; mincost = 3; size = 5;
                order = [| 2; 0; 1 |]; widths = [| 1; 2; 1 |]; cached = true;
                queue_ms = 0.5; solve_ms = 1.25 };
            P.Pong;
            P.Bye;
            P.Cancelled "deadline exceeded";
            P.Error
              { code = P.Queue_full; message = "full";
                retry_after_ms = Some 12.5 };
            P.Error
              { code = P.Bad_request; message = "nope"; retry_after_ms = None };
          ]);
    Helpers.case "malformed lines decode to errors" (fun () ->
        List.iter
          (fun line ->
            Helpers.check_bool line true
              (match P.request_of_line line with Error (`Msg _) -> true | Ok _ -> false))
          [ "not json"; "[1,2]"; "{\"id\":1}"; "{\"id\":1,\"op\":\"nope\"}";
            "{\"op\":\"ping\"}" ]);
    Helpers.case "addresses parse both ways" (fun () ->
        let ok s a =
          Helpers.check_bool s true (P.addr_of_string s = Ok a)
        in
        ok "unix:/tmp/x.sock" (P.Unix_sock "/tmp/x.sock");
        ok "/tmp/x.sock" (P.Unix_sock "/tmp/x.sock");
        ok "ovo.sock" (P.Unix_sock "ovo.sock");
        ok "127.0.0.1:7421" (P.Tcp ("127.0.0.1", 7421));
        ok "tcp:localhost:80" (P.Tcp ("localhost", 80));
        Helpers.check_bool "bad port" true
          (match P.addr_of_string "host:99999999" with
          | Error (`Msg _) -> true
          | Ok _ -> false));
  ]

let solve_fresh ?(kind = Ovo_core.Compact.Bdd) cache tt =
  match
    Solver.solve ~cache ~cancel:Cancel.never ~engine:Ovo_core.Engine.Seq ~kind
      tt
  with
  | Ok s -> s
  | Error (`Cancelled _) -> Alcotest.fail "unexpected cancellation"

let cache_tests =
  [
    Helpers.case "repeat request is a hit with identical payload" (fun () ->
        let cache = Cache.create ~cap:8 () in
        let tt = T.of_string "0110100110010110" in
        let a = solve_fresh cache tt in
        let b = solve_fresh cache tt in
        Helpers.check_bool "first cold" false a.Solver.cached;
        Helpers.check_bool "second warm" true b.Solver.cached;
        Helpers.check_bool "same payload" true
          ({ a with Solver.cached = false } = { b with Solver.cached = false });
        Helpers.check_int "one hit" 1 (Cache.hits cache));
    Helpers.case "permutation-equivalent request hits the same entry"
      (fun () ->
        let cache = Cache.create ~cap:8 () in
        let tt = T.of_string "0111011000000001" in
        let perm = [| 2; 0; 3; 1 |] in
        let a = solve_fresh cache tt in
        let b = solve_fresh cache (T.permute_vars tt perm) in
        Helpers.check_bool "second warm" true b.Solver.cached;
        Helpers.check_bool "same digest" true
          (String.equal a.Solver.digest b.Solver.digest);
        Helpers.check_int "same mincost" a.Solver.mincost b.Solver.mincost;
        Helpers.check_int "one DP run" 1 (Cache.misses cache));
    Helpers.case "bdd and zdd results do not alias" (fun () ->
        let cache = Cache.create ~cap:8 () in
        let tt = T.of_string "01101001" in
        let _ = solve_fresh cache tt in
        let z = solve_fresh ~kind:Ovo_core.Compact.Zdd cache tt in
        Helpers.check_bool "zdd is its own miss" false z.Solver.cached);
    Helpers.case "digest collision is counted and degrades to a miss"
      (fun () ->
        let cache = Cache.create ~cap:8 () in
        let tt = T.of_string "0110100110010110" in
        let other = T.of_string "0000000000000001" in
        let s = solve_fresh cache tt in
        (* probe the stored digest with a different canonical table: the
           equality check must reject it and count a collision *)
        (match
           Cache.find cache ~digest:s.Solver.digest
             ~kind:Ovo_core.Compact.Bdd ~canon:other
         with
        | None -> ()
        | Some _ -> Alcotest.fail "collision served a wrong answer");
        Helpers.check_int "collision counted" 1 (Cache.collisions cache);
        (match Ovo_obs.Json.member "collisions" (Cache.to_json cache) with
        | Some (Ovo_obs.Json.Int 1) -> ()
        | _ -> Alcotest.fail "collisions missing from stats json"));
    Helpers.case "persist hook fires on add but not on warm" (fun () ->
        let persisted = ref 0 in
        let cache =
          Cache.create
            ~persist:(fun ~digest:_ ~kind:_ _ -> incr persisted)
            ~cap:8 ()
        in
        let tt = T.of_string "01101001" in
        let s = solve_fresh cache tt in
        Helpers.check_int "solve persisted" 1 !persisted;
        Cache.warm cache ~digest:"other" ~kind:Ovo_core.Compact.Bdd
          { Cache.canon = tt; mincost = s.Solver.mincost;
            size = s.Solver.size; canon_order = s.Solver.order;
            widths = s.Solver.widths };
        Helpers.check_int "warm does not persist" 1 !persisted);
    Helpers.case "parse_table rejects junk and over-arity input" (fun () ->
        let bad s =
          match Solver.parse_table ~max_arity:16 s with
          | Error (`Bad _) -> true
          | _ -> false
        in
        Helpers.check_bool "not a power of two" true (bad "011");
        Helpers.check_bool "bad character" true (bad "01x0");
        Helpers.check_bool "empty" true (bad "");
        Helpers.check_bool "too large" true
          (match
             Solver.parse_table ~max_arity:2 "0110100110010110"
           with
          | Error (`Too_large _) -> true
          | _ -> false);
        Helpers.check_bool "good" true
          (match Solver.parse_table ~max_arity:16 "0110" with
          | Ok _ -> true
          | _ -> false));
  ]

let stats_tests =
  [
    Helpers.case "avg_ms_opt distinguishes no-data from fast" (fun () ->
        let s = Ovo_serve.Stats.create () in
        (* no solve observed yet: the server must fall back to its fixed
           retry_after default instead of extrapolating from 0 *)
        Helpers.check_bool "no data" true
          (Ovo_serve.Stats.avg_ms_opt s ~endpoint:"solve" = None);
        Helpers.check_bool "avg_ms still 0." true
          (Ovo_serve.Stats.avg_ms s ~endpoint:"solve" = 0.);
        Ovo_serve.Stats.record s ~endpoint:"solve" ~ms:4.;
        Helpers.check_bool "observed" true
          (Ovo_serve.Stats.avg_ms_opt s ~endpoint:"solve" = Some 4.));
    Helpers.case "stats json: store is null without persistence" (fun () ->
        let s = Ovo_serve.Stats.create () in
        let j =
          Ovo_serve.Stats.to_json s ~queue_depth:0 ~queue_cap:1 ~workers:1
            ~cache:Ovo_obs.Json.Null
        in
        Helpers.check_bool "null store" true
          (Ovo_obs.Json.member "store" j = Some Ovo_obs.Json.Null));
  ]

(* The solved order must actually achieve the reported mincost on the
   *request's* table — this is what "mapping the canonical result back
   through the permutation" has to preserve. *)
let order_achieves_mincost tt (s : Solver.solved) =
  let pi = Ovo_core.Eval_order.read_first s.Solver.order in
  Ovo_core.Eval_order.mincost tt pi = s.Solver.mincost

(* The `Scored orderer must answer in heuristic time with an achievable
   (possibly sub-optimal) ordering, and its replies must never leak into
   the exact result cache. *)
let scored_tests =
  [
    Helpers.case "scored misses never pollute the exact cache" (fun () ->
        let cache = Cache.create ~cap:8 () in
        let tt = T.of_string (String.concat "" [ "0110100110010110";
                                                 "1001011001101001" ]) in
        let solve_scored () =
          match
            Solver.solve ~orderer:`Scored ~cache ~cancel:Cancel.never
              ~engine:Ovo_core.Engine.Seq ~kind:Ovo_core.Compact.Bdd tt
          with
          | Ok s -> s
          | Error (`Cancelled _) -> Alcotest.fail "unexpected cancellation"
        in
        let scored = solve_scored () in
        Helpers.check_bool "scored is not cached" false scored.Solver.cached;
        Helpers.check_bool "scored cost is achievable" true
          (order_achieves_mincost tt scored);
        (* the scored reply must not have entered the cache: the next
           exact solve is still a miss, and is at least as good *)
        let exact = solve_fresh cache tt in
        Helpers.check_bool "exact is still a miss" false exact.Solver.cached;
        Helpers.check_bool "exact <= scored" true
          (exact.Solver.mincost <= scored.Solver.mincost);
        (* once the exact result is cached, the scored path serves it *)
        let hit = solve_scored () in
        Helpers.check_bool "cache hit answers exactly" true hit.Solver.cached;
        Helpers.check_int "hit is the optimum" exact.Solver.mincost
          hit.Solver.mincost);
  ]

let props =
  [
    QCheck.Test.make ~name:"cache hit result == fresh solve result"
      ~count:150
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:5 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let perm = Helpers.perm_of_seed seed (T.arity tt) in
        let ptt = T.permute_vars tt perm in
        (* fresh solves in an empty cache *)
        let fresh_tt = solve_fresh (Cache.create ~cap:4 ()) tt in
        let fresh_ptt = solve_fresh (Cache.create ~cap:4 ()) ptt in
        (* same requests against a shared, warm cache *)
        let cache = Cache.create ~cap:4 () in
        let _warmup = solve_fresh cache tt in
        let hit_tt = solve_fresh cache tt in
        let hit_ptt = solve_fresh cache ptt in
        hit_tt.Solver.cached
        && { hit_tt with Solver.cached = false } = fresh_tt
        && { hit_ptt with Solver.cached = false } = fresh_ptt
        && fresh_tt.Solver.mincost = fresh_ptt.Solver.mincost
        && order_achieves_mincost tt hit_tt
        && order_achieves_mincost ptt hit_ptt);
    QCheck.Test.make ~name:"solver agrees with Fs.run on the raw table"
      ~count:100
      (Helpers.arb_truthtable ~lo:1 ~hi:5 ())
      (fun tt ->
        let s = solve_fresh (Cache.create ~cap:4 ()) tt in
        let r = Fs.run tt in
        s.Solver.mincost = r.Fs.mincost && s.Solver.size = r.Fs.size);
  ]

(* --- in-process end-to-end over a temp Unix socket -------------------- *)

let temp_sock () =
  let path = Filename.temp_file "ovo-serve-test" ".sock" in
  Sys.remove path;
  path

let expect_ok = function
  | Ok (r : P.reply) -> r.P.body
  | Error (`Msg m) -> Alcotest.fail m

(* like {!expect_ok} but keeps the whole reply (item tag, echoed id) *)
let expect_ok' = function
  | Ok (r : P.reply) -> r
  | Error (`Msg m) -> Alcotest.fail m

let e2e_tests =
  [
    Helpers.case "daemon: solve, cache hit, cancel, stats, shutdown"
      (fun () ->
        let sock = temp_sock () in
        let cfg =
          { (Server.default_config ~listen:(P.Unix_sock sock)) with
            Server.workers = 2; queue_cap = 4; cache_cap = 16 }
        in
        let server = Server.start cfg in
        let waiter = Thread.create (fun () -> Server.wait server) () in
        Fun.protect
          ~finally:(fun () ->
            Server.shutdown server;
            Thread.join waiter)
          (fun () ->
            Client.with_conn (P.Unix_sock sock) @@ fun c ->
            let solve ?deadline_ms table =
              expect_ok
                (Client.roundtrip c
                   { P.id = 1;
                     op =
                       P.Solve
                         { P.table; kind = Ovo_core.Compact.Bdd;
                           engine = Ovo_core.Engine.Seq; deadline_ms } })
            in
            Helpers.check_bool "ping" true
              (expect_ok (Client.roundtrip c { P.id = 0; op = P.Ping })
              = P.Pong);
            (let a = solve "0110100110010110" in
             let b = solve "0110100110010110" in
             match (a, b) with
             | P.Ok_solve a, P.Ok_solve b ->
                 Helpers.check_bool "cold" false a.P.cached;
                 Helpers.check_bool "warm" true b.P.cached;
                 Helpers.check_bool "same answer" true
                   (a.P.mincost = b.P.mincost && a.P.order = b.P.order
                  && a.P.widths = b.P.widths)
             | _ -> Alcotest.fail "expected two solve replies");
            (match solve ~deadline_ms:0. "0110100110010110" with
            | P.Cancelled _ -> ()
            | _ -> Alcotest.fail "expected cancellation");
            (match solve "011" with
            | P.Error { code = P.Bad_request; _ } -> ()
            | _ -> Alcotest.fail "expected bad_request");
            (match
               expect_ok (Client.roundtrip c { P.id = 2; op = P.Stats })
             with
            | P.Ok_stats s ->
                let open Ovo_obs.Json in
                let hits =
                  Option.bind (member "cache" s) (member "hits")
                  |> Fun.flip Option.bind to_int_opt
                in
                Helpers.check_bool "hits counted" true (hits = Some 1)
            | _ -> Alcotest.fail "expected stats");
            Helpers.check_bool "bye" true
              (expect_ok (Client.roundtrip c { P.id = 3; op = P.Shutdown })
              = P.Bye));
        (* after graceful shutdown the socket file is gone *)
        Helpers.check_bool "socket unlinked" false (Sys.file_exists sock));
    Helpers.case "daemon: solve_many streams tagged replies in item order"
      (fun () ->
        let sock = temp_sock () in
        let cfg =
          { (Server.default_config ~listen:(P.Unix_sock sock)) with
            Server.workers = 2; queue_cap = 16; cache_cap = 16 }
        in
        let server = Server.start cfg in
        let waiter = Thread.create (fun () -> Server.wait server) () in
        Fun.protect
          ~finally:(fun () ->
            Server.shutdown server;
            Thread.join waiter)
          (fun () ->
            Client.with_conn (P.Unix_sock sock) @@ fun c ->
            let item ?deadline_ms table =
              { P.table; kind = Ovo_core.Compact.Bdd;
                engine = Ovo_core.Engine.Seq; deadline_ms }
            in
            (* same table twice in one batch: the second occurrence must
               come back a cache hit; a 0 ms deadline item cancels without
               harming its neighbours *)
            Client.send c
              { P.id = 11;
                op =
                  P.Solve_many
                    [ item "0110100110010110";
                      item ~deadline_ms:0. "1111000011110000";
                      item "0110";
                      item "0110100110010110" ] };
            let replies = List.init 4 (fun _ -> expect_ok' (Client.recv c)) in
            List.iteri
              (fun k (r : P.reply) ->
                Helpers.check_bool "id echoed" true (r.P.r_id = 11);
                Helpers.check_bool "item in order" true (r.P.item = Some k))
              replies;
            (match List.map (fun r -> r.P.body) replies with
            | [ P.Ok_solve a; P.Cancelled _; P.Ok_solve _; P.Ok_solve d ] ->
                Helpers.check_bool "first cold" false a.P.cached;
                Helpers.check_bool "repeat warm" true d.P.cached;
                Helpers.check_bool "repeat identical" true
                  (a.P.digest = d.P.digest && a.P.mincost = d.P.mincost
                 && a.P.order = d.P.order)
            | _ -> Alcotest.fail "expected ok/cancelled/ok/ok");
            (* an empty batch is rejected without touching the queue *)
            (match
               (expect_ok' (Client.roundtrip c { P.id = 12; op = P.Solve_many [] }))
                 .P.body
             with
            | P.Error { code = P.Bad_request; _ } -> ()
            | _ -> Alcotest.fail "expected bad_request");
            (* the connection is still usable for singles afterwards *)
            match
              (expect_ok' (Client.roundtrip c { P.id = 13; op = P.Ping })).P.body
            with
            | P.Pong -> ()
            | _ -> Alcotest.fail "expected pong"));
    Helpers.case "daemon: prom file is final once wait returns" (fun () ->
        (* regression: the exporter ticker used to race shutdown — wait
           could return while a stale ticker write was still in flight,
           clobbering the final scrape.  stop_and_flush now joins the
           ticker before the last write, so after wait the file must be
           complete and must never change again. *)
        let sock = temp_sock () in
        let prom_path = Filename.temp_file "ovo-prom" ".prom" in
        let cfg =
          { (Server.default_config ~listen:(P.Unix_sock sock)) with
            Server.workers = 1;
            prom = Some (Server.Prom_file prom_path) }
        in
        let server = Server.start cfg in
        let waiter = Thread.create (fun () -> Server.wait server) () in
        (Client.with_conn (P.Unix_sock sock) @@ fun c ->
         ignore
           (expect_ok'
              (Client.roundtrip c
                 { P.id = 1;
                   op =
                     P.Solve
                       { P.table = "0110100110010110";
                         kind = Ovo_core.Compact.Bdd;
                         engine = Ovo_core.Engine.Seq; deadline_ms = None } })));
        Server.shutdown server;
        Thread.join waiter;
        let read_all path =
          let ic = open_in_bin path in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s
        in
        let final = read_all prom_path in
        Helpers.check_bool "final write landed" true
          (String.length final > 0
          && (let needle = "ovo_requests_total" in
              let rec find i =
                i + String.length needle <= String.length final
                && (String.sub final i (String.length needle) = needle
                   || find (i + 1))
              in
              find 0));
        (* nothing may touch the file after wait: no live ticker, no
           leftover tmp from a torn rename *)
        Thread.delay 1.2;
        Helpers.check_bool "quiescent after wait" true
          (read_all prom_path = final);
        Helpers.check_bool "no tmp left behind" false
          (Sys.file_exists (prom_path ^ ".tmp"));
        Sys.remove prom_path);
    Helpers.case "daemon: store persists results across a restart"
      (fun () ->
        let dir = Filename.temp_file "ovo-serve-store" "" in
        Sys.remove dir;
        let run_once f =
          let sock = temp_sock () in
          let cfg =
            { (Server.default_config ~listen:(P.Unix_sock sock)) with
              Server.workers = 1; store_dir = Some dir }
          in
          let server = Server.start cfg in
          let waiter = Thread.create (fun () -> Server.wait server) () in
          Fun.protect
            ~finally:(fun () ->
              Server.shutdown server;
              Thread.join waiter)
            (fun () ->
              Client.with_conn (P.Unix_sock sock) @@ fun c -> f c)
        in
        let solve c table =
          expect_ok
            (Client.roundtrip c
               { P.id = 1;
                 op =
                   P.Solve
                     { P.table; kind = Ovo_core.Compact.Bdd;
                       engine = Ovo_core.Engine.Seq; deadline_ms = None } })
        in
        let first =
          run_once (fun c ->
              match solve c "0110100110010110" with
              | P.Ok_solve r ->
                  Helpers.check_bool "cold" false r.P.cached;
                  r
              | _ -> Alcotest.fail "expected a solve reply")
        in
        (* second daemon, same directory: the result must come back warm,
           byte-identical, without rerunning the DP *)
        run_once (fun c ->
            (match solve c "0110100110010110" with
            | P.Ok_solve r ->
                Helpers.check_bool "warm from store" true r.P.cached;
                Helpers.check_bool "identical" true
                  (r.P.mincost = first.P.mincost && r.P.order = first.P.order
                 && r.P.widths = first.P.widths
                  && String.equal r.P.digest first.P.digest)
            | _ -> Alcotest.fail "expected a solve reply");
            match expect_ok (Client.roundtrip c { P.id = 2; op = P.Stats }) with
            | P.Ok_stats s ->
                let open Ovo_obs.Json in
                let field path j =
                  List.fold_left
                    (fun acc k -> Option.bind acc (member k))
                    (Some j) path
                in
                Helpers.check_bool "warm_loaded surfaced" true
                  (Option.bind (field [ "store"; "warm_loaded" ] s) to_int_opt
                  = Some 1);
                Helpers.check_bool "no discards" true
                  (Option.bind
                     (field [ "store"; "discarded_records" ] s)
                     to_int_opt
                  = Some 0)
            | _ -> Alcotest.fail "expected stats"));
  ]

let () =
  Alcotest.run "serve"
    [
      ("lru", lru_tests);
      ("bqueue", bqueue_tests);
      ("cancel", cancel_tests);
      ("protocol", protocol_tests);
      ("cache", cache_tests);
      ("scored", scored_tests);
      ("stats", stats_tests);
      ("props", Helpers.qtests props);
      ("e2e", e2e_tests);
    ]

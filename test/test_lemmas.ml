(* Direct numerical verification of the paper's structural lemmas on
   random functions:

   - Lemma 4:  MINCOST_I = min_{k∈I} MINCOST_<I∖k, k>
   - Lemma 7:  the same with a fixed leading segment
   - Lemma 9:  MINCOST_[n] = min over K of size k of (MINCOST_K +
                MINCOST_<K,[n]∖K>([n]∖K))  for every split size k. *)

module Fs = Ovo_core.Fs
module Fss = Ovo_core.Fs_star
module C = Ovo_core.Compact
module V = Ovo_core.Varset
module T = Ovo_boolfun.Truthtable

let lemma4_holds tt =
  let table = Fs.all_mincosts tt in
  let base = C.of_truthtable C.Bdd tt in
  let ok = ref true in
  Hashtbl.iter
    (fun iset cost ->
      if not (V.is_empty iset) then begin
        (* recompute each candidate MINCOST_<I∖k, k> via FS* composition *)
        let best = ref max_int in
        V.iter
          (fun k ->
            let without = V.remove k iset in
            let st_without =
              if V.is_empty without then base
              else Fss.complete ~base without
            in
            let st = C.compact st_without k in
            if st.C.mincost < !best then best := st.C.mincost)
          iset;
        if !best <> cost then ok := false
      end)
    table;
  !ok

let lemma9_holds ?(kind = C.Bdd) tt =
  let n = T.arity tt in
  let base = C.of_truthtable kind tt in
  let full_run = Fss.run ~base (V.full n) in
  let total = Fss.mincost_of full_run (V.full n) in
  let ok = ref true in
  for k = 1 to n - 1 do
    let best = ref max_int in
    V.iter_subsets_of_size ~n ~k (fun kset ->
        let st_k = Fss.complete ~base kset in
        let mincost_k = st_k.C.mincost in
        let st_full = Fss.complete ~base:st_k (V.diff (V.full n) kset) in
        (* MINCOST_<K,[n]∖K>([n]∖K) = total of the composed run minus the
           K part *)
        let upper = st_full.C.mincost - mincost_k in
        if mincost_k + upper < !best then best := mincost_k + upper);
    if !best <> total then ok := false
  done;
  n <= 1 || !ok

let props =
  [
    QCheck.Test.make ~name:"Lemma 4 recurrence" ~count:40
      (Helpers.arb_truthtable ~lo:1 ~hi:4 ())
      lemma4_holds;
    QCheck.Test.make ~name:"Lemma 9 divide-and-conquer identity (BDD)"
      ~count:40
      (Helpers.arb_truthtable ~lo:2 ~hi:5 ())
      (fun tt -> lemma9_holds tt);
    QCheck.Test.make ~name:"Lemma 9 divide-and-conquer identity (ZDD)"
      ~count:25
      (Helpers.arb_truthtable ~lo:2 ~hi:4 ())
      (fun tt -> lemma9_holds ~kind:C.Zdd tt);
    QCheck.Test.make
      ~name:"Lemma 7: segment recurrence over a random leading segment"
      ~count:40
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:5 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let n = T.arity tt in
        let st = Helpers.rng seed in
        let i_set = ref V.empty in
        for v = 0 to n - 1 do
          if Random.State.int st 3 = 0 then i_set := V.add v !i_set
        done;
        let j_all = V.diff (V.full n) !i_set in
        QCheck.assume (not (V.is_empty j_all));
        let base0 = C.of_truthtable C.Bdd tt in
        let base =
          if V.is_empty !i_set then base0
          else Fss.complete ~base:base0 !i_set
        in
        (* pick a random non-empty J ⊆ j_all *)
        let j_set = ref V.empty in
        V.iter (fun v -> if Random.State.bool st then j_set := V.add v !j_set) j_all;
        if V.is_empty !j_set then j_set := V.singleton (V.min_elt j_all);
        let lhs = (Fss.complete ~base !j_set).C.mincost in
        (* rhs: min over k ∈ J of MINCOST<I, J∖k, k> *)
        let best = ref max_int in
        V.iter
          (fun k ->
            let without = V.remove k !j_set in
            let st_without =
              if V.is_empty without then base
              else Fss.complete ~base without
            in
            let st' = C.compact st_without k in
            if st'.C.mincost < !best then best := st'.C.mincost)
          !j_set;
        lhs = !best);
  ]

let unit_tests =
  [
    Helpers.case "Lemma 9 on the Achilles function" (fun () ->
        Helpers.check_bool "holds" true
          (lemma9_holds (Ovo_boolfun.Families.achilles 3)));
    Helpers.case "Lemma 4 on the multiplexer" (fun () ->
        Helpers.check_bool "holds" true
          (lemma4_holds (Ovo_boolfun.Families.multiplexer ~select:2)));
  ]

let () =
  Alcotest.run "lemmas" [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

(* The telemetry layer: log-bucketed histograms (quantile error bounds
   against exact nearest-rank, merge algebra), rolling windows on an
   injected clock, the typed registry, Prometheus exposition
   well-formedness, the registry-backed server Stats (including the
   regression for the old ring's drifting running sum), the metrics
   protocol codecs, and access-log recovery after a torn tail. *)

module Histo = Ovo_metrics.Histo
module Window = Ovo_metrics.Window
module R = Ovo_metrics.Registry
module Prom = Ovo_metrics.Prom
module Stats = Ovo_serve.Stats
module Access_log = Ovo_serve.Access_log
module P = Ovo_serve.Protocol
module Json = Ovo_obs.Json

let check_float name eps expected got =
  if Float.abs (expected -. got) > eps then
    Alcotest.failf "%s: expected %g within %g, got %g" name expected eps got

(* exact nearest-rank quantile over the raw samples *)
let exact_quantile samples q =
  let a = Array.of_list samples in
  Array.sort compare a;
  let n = Array.length a in
  let rank = max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n)))) in
  a.(rank - 1)

let histo_tests =
  [
    Helpers.case "bucket index brackets its bounds" (fun () ->
        (* exact boundaries are float-fuzzy by one ulp; interior points
           must land exactly, and the index must be monotone *)
        for i = 1 to Histo.num_core do
          let mid = Histo.min_bound *. Float.exp2 ((float_of_int i -. 0.5) /. 8.) in
          Helpers.check_int "midpoint lands in its bucket" i (Histo.index mid)
        done;
        for i = 1 to Histo.num_core - 1 do
          Helpers.check_bool "monotone" true
            (Histo.index (Histo.bucket_upper i)
            <= Histo.index (Histo.bucket_upper (i + 1)))
        done;
        Helpers.check_int "zero underflows" 0 (Histo.index 0.);
        Helpers.check_int "negative underflows" 0 (Histo.index (-3.));
        Helpers.check_int "nan underflows" 0 (Histo.index Float.nan);
        Helpers.check_int "huge overflows" (Histo.num_core + 1)
          (Histo.index 1e30));
    Helpers.case "count, sum and mean are exact" (fun () ->
        let h = Histo.create () in
        let values = [ 0.5; 1.; 2.; 4.; 1000.; 0.001 ] in
        List.iter (Histo.record h) values;
        let s = Histo.snapshot h in
        Helpers.check_int "count" (List.length values) s.Histo.count;
        check_float "sum" 1e-9 (List.fold_left ( +. ) 0. values) s.Histo.sum;
        check_float "mean" 1e-9
          (List.fold_left ( +. ) 0. values /. 6.)
          (Option.get (Histo.mean s)));
    Helpers.case "quantile of empty is None" (fun () ->
        Helpers.check_bool "none" true
          (Histo.quantile (Histo.snapshot (Histo.create ())) 0.5 = None);
        Helpers.check_bool "empty constant" true
          (Histo.quantile Histo.empty 0.99 = None));
    Helpers.case "single sample: every quantile returns it" (fun () ->
        let h = Histo.create () in
        Histo.record h 7.3;
        let s = Histo.snapshot h in
        List.iter
          (fun q -> check_float "q" 1e-9 7.3 (Option.get (Histo.quantile s q)))
          [ 0.; 0.5; 0.99; 1. ]);
    Helpers.case "merge of empty is identity" (fun () ->
        let h = Histo.create () in
        List.iter (Histo.record h) [ 1.; 2.; 3. ];
        let s = Histo.snapshot h in
        let m = Histo.merge s Histo.empty in
        Helpers.check_int "count" s.Histo.count m.Histo.count;
        check_float "sum" 1e-9 s.Histo.sum m.Histo.sum;
        check_float "p50" 1e-9
          (Option.get (Histo.quantile s 0.5))
          (Option.get (Histo.quantile m 0.5)));
  ]

let histo_props =
  let arb_samples =
    QCheck.(
      list_of_size Gen.(int_range 1 200)
        (map
           (fun x -> Float.abs x +. 0.01)
           (float_range 0. 10000.)))
  in
  [
    QCheck.Test.make ~name:"quantile within max_rel_error of exact" ~count:200
      QCheck.(pair arb_samples (float_range 0.01 0.99))
      (fun (samples, q) ->
        let h = Histo.create () in
        List.iter (Histo.record h) samples;
        let est = Option.get (Histo.quantile (Histo.snapshot h) q) in
        let exact = exact_quantile samples q in
        (* the estimate must sit within one bucket's relative width of
           some sample-achievable value; against exact nearest-rank the
           bound is max_rel_error on either side *)
        Float.abs (est -. exact) <= Histo.max_rel_error *. exact +. 1e-9);
    QCheck.Test.make ~name:"merge is associative and commutative" ~count:100
      QCheck.(triple arb_samples arb_samples arb_samples)
      (fun (xs, ys, zs) ->
        let snap vs =
          let h = Histo.create () in
          List.iter (Histo.record h) vs;
          Histo.snapshot h
        in
        let a = snap xs and b = snap ys and c = snap zs in
        let l = Histo.merge (Histo.merge a b) c in
        let r = Histo.merge a (Histo.merge b c) in
        let ba = Histo.merge b a in
        let ab = Histo.merge a b in
        l.Histo.counts = r.Histo.counts
        && l.Histo.count = r.Histo.count
        && Float.abs (l.Histo.sum -. r.Histo.sum) < 1e-6
        && ab.Histo.counts = ba.Histo.counts
        && ab.Histo.vmin = ba.Histo.vmin
        && ab.Histo.vmax = ba.Histo.vmax);
    QCheck.Test.make ~name:"merge equals recording the concatenation"
      ~count:100
      QCheck.(pair arb_samples arb_samples)
      (fun (xs, ys) ->
        let snap vs =
          let h = Histo.create () in
          List.iter (Histo.record h) vs;
          Histo.snapshot h
        in
        let merged = Histo.merge (snap xs) (snap ys) in
        let whole = snap (xs @ ys) in
        merged.Histo.counts = whole.Histo.counts
        && merged.Histo.count = whole.Histo.count
        && merged.Histo.vmin = whole.Histo.vmin
        && merged.Histo.vmax = whole.Histo.vmax);
  ]

let window_tests =
  [
    Helpers.case "totals cover only the window, expiry is lazy" (fun () ->
        let t = ref 0. in
        let w = Window.create ~clock:(fun () -> !t) ~horizon:60 () in
        Window.add w 10.;
        t := 1.;
        Window.add w 20.;
        Helpers.check_bool "both in 10s" true
          (Window.totals w ~window:10 = (2, 30.));
        Helpers.check_bool "1s sees only current second" true
          (Window.totals w ~window:1 = (1, 20.));
        (* jump past the horizon: everything expires *)
        t := 120.;
        Helpers.check_bool "expired" true
          (Window.totals w ~window:60 = (0, 0.));
        Window.add w 5.;
        Helpers.check_bool "fresh slot counts" true
          (Window.totals w ~window:60 = (1, 5.)));
    Helpers.case "ring lap resets stale slots" (fun () ->
        let t = ref 0. in
        let w = Window.create ~clock:(fun () -> !t) ~horizon:3 () in
        Window.add w 1.;
        (* land in the same ring slot one lap later: the old value must
           not leak into the new second's totals *)
        t := 4.;
        Window.add w 2.;
        Helpers.check_bool "only the new value" true
          (Window.totals w ~window:3 = (1, 2.)));
    Helpers.case "rate and mean_value" (fun () ->
        let t = ref 0. in
        let w = Window.create ~clock:(fun () -> !t) () in
        Helpers.check_bool "empty mean" true
          (Window.mean_value w ~window:60 = None);
        Window.add w 1.;
        Window.add w 0.;
        Window.add w 1.;
        check_float "rate over 10s" 1e-9 0.3 (Window.rate w ~window:10);
        check_float "hit rate" 1e-9 (2. /. 3.)
          (Option.get (Window.mean_value w ~window:60)));
    Helpers.case "window bounds are validated" (fun () ->
        let w = Window.create ~horizon:10 () in
        Helpers.check_bool "zero rejected" true
          (match Window.totals w ~window:0 with
          | exception Invalid_argument _ -> true
          | _ -> false);
        Helpers.check_bool "past horizon rejected" true
          (match Window.totals w ~window:11 with
          | exception Invalid_argument _ -> true
          | _ -> false));
  ]

let registry_tests =
  [
    Helpers.case "same (name, labels) returns the same instrument" (fun () ->
        let reg = R.create () in
        let a = R.counter reg "ovo_x_total" in
        let b = R.counter reg "ovo_x_total" in
        R.inc a 2;
        R.inc b 3;
        Helpers.check_int "shared" 5 (R.counter_value a);
        let l1 = R.counter reg ~labels:[ ("k", "v") ] "ovo_x_total" in
        R.inc l1 7;
        Helpers.check_int "labelled is distinct" 5 (R.counter_value a);
        Helpers.check_int "labelled counts apart" 7 (R.counter_value l1));
    Helpers.case "re-registering with a different kind raises" (fun () ->
        let reg = R.create () in
        ignore (R.counter reg "ovo_x_total");
        Helpers.check_bool "kind clash" true
          (match R.gauge reg "ovo_x_total" with
          | exception Invalid_argument _ -> true
          | _ -> false));
    Helpers.case "negative increment raises" (fun () ->
        let reg = R.create () in
        let c = R.counter reg "ovo_x_total" in
        Helpers.check_bool "negative" true
          (match R.inc c (-1) with
          | exception Invalid_argument _ -> true
          | _ -> false));
    Helpers.case "samples walk in registration order" (fun () ->
        let reg = R.create () in
        ignore (R.counter reg ~labels:[ ("e", "b") ] "ovo_b_total");
        ignore (R.gauge reg "ovo_a");
        ignore (R.counter reg ~labels:[ ("e", "a") ] "ovo_b_total");
        let names = List.map (fun s -> s.R.s_name) (R.samples reg) in
        (* names grouped in first-seen order, label sets in registration
           order within the name *)
        Helpers.check_bool "order" true
          (names = [ "ovo_b_total"; "ovo_b_total"; "ovo_a" ]);
        let labels =
          List.filter_map
            (fun s ->
              if s.R.s_name = "ovo_b_total" then Some s.R.s_labels else None)
            (R.samples reg)
        in
        Helpers.check_bool "label order" true
          (labels = [ [ ("e", "b") ]; [ ("e", "a") ] ]));
  ]

let prom_tests =
  [
    Helpers.case "label escaping" (fun () ->
        Helpers.check_bool "backslash" true
          (Prom.escape_label {|a\b|} = {|a\\b|});
        Helpers.check_bool "quote" true
          (Prom.escape_label {|a"b|} = {|a\"b|});
        Helpers.check_bool "newline" true
          (Prom.escape_label "a\nb" = {|a\nb|}));
    Helpers.case "exposition shape: TYPE once, cumulative buckets, +Inf"
      (fun () ->
        let reg = R.create () in
        let c = R.counter reg ~help:"requests" ~labels:[ ("e", "solve") ]
            "ovo_requests_total"
        in
        ignore (R.counter reg ~labels:[ ("e", "ping") ] "ovo_requests_total");
        R.inc c 3;
        let h = R.histogram reg ~help:"latency" "ovo_latency_ms" in
        List.iter (R.observe h) [ 0.5; 1.; 2.; 1000. ];
        let text = Prom.render reg in
        let lines = String.split_on_char '\n' text in
        let count_pfx p =
          List.length
            (List.filter
               (fun l ->
                 String.length l >= String.length p
                 && String.sub l 0 (String.length p) = p)
               lines)
        in
        Helpers.check_int "one TYPE per name" 1
          (count_pfx "# TYPE ovo_requests_total ");
        Helpers.check_int "histogram TYPE" 1
          (count_pfx "# TYPE ovo_latency_ms ");
        Helpers.check_bool "both label series" true
          (count_pfx "ovo_requests_total{e=\"solve\"} 3" = 1
          && count_pfx "ovo_requests_total{e=\"ping\"} 0" = 1);
        Helpers.check_bool "+Inf bucket present" true
          (List.exists
             (fun l ->
               String.length l > 0
               && count_pfx "ovo_latency_ms_bucket{le=\"+Inf\"} 4" = 1)
             lines);
        Helpers.check_bool "count line" true
          (count_pfx "ovo_latency_ms_count 4" = 1);
        (* cumulative: bucket counts never decrease down the ladder *)
        let bucket_counts =
          List.filter_map
            (fun l ->
              let p = "ovo_latency_ms_bucket{le=" in
              if
                String.length l > String.length p
                && String.sub l 0 (String.length p) = p
              then
                match String.rindex_opt l ' ' with
                | Some i ->
                    int_of_string_opt
                      (String.sub l (i + 1) (String.length l - i - 1))
                | None -> None
              else None)
            lines
        in
        Helpers.check_bool "cumulative" true
          (let rec mono = function
             | a :: (b :: _ as tl) -> a <= b && mono tl
             | _ -> true
           in
           mono bucket_counts);
        Helpers.check_bool "ends with newline" true
          (String.length text > 0 && text.[String.length text - 1] = '\n'));
  ]

(* regression for the old ring implementation: its subtract-on-evict
   running sum drifted after the ring wrapped; the histogram sum is
   add-only, so the mean stays exact at any volume *)
let stats_tests =
  [
    Helpers.case "mean stays exact far past the old ring size" (fun () ->
        let s = Stats.create () in
        (* 3 * 4096 samples of 2.5 — the old ring held 4096 and summed
           with subtract-on-evict float updates *)
        for _ = 1 to 3 * 4096 do
          Stats.record s ~endpoint:"solve" ~ms:2.5
        done;
        Helpers.check_bool "exact mean" true
          (Stats.avg_ms_opt s ~endpoint:"solve" = Some 2.5));
    Helpers.case "solve_ms_p50 gates the retry estimate" (fun () ->
        let s = Stats.create () in
        Helpers.check_bool "cold" true (Stats.solve_ms_p50 s = None);
        List.iter (Stats.record_solve_ms s) [ 10.; 20.; 30. ];
        match Stats.solve_ms_p50 s with
        | None -> Alcotest.fail "expected a median"
        | Some p50 ->
            Helpers.check_bool "near 20" true
              (Float.abs (p50 -. 20.) <= Histo.max_rel_error *. 20. +. 1e-9));
    Helpers.case "metrics_json shape" (fun () ->
        let s = Stats.create () in
        Stats.record s ~endpoint:"solve" ~ms:3.;
        Stats.record_outcome s `Ok;
        Stats.note_layer s ~layer:4 ~states:17;
        Stats.add_pruned s 9;
        Stats.set_live s ~queue_depth:1 ~queue_cap:8 ~workers:2
          ~cache_entries:3 ~cache_hits:4 ~cache_misses:5 ~cache_evictions:0;
        let j = Stats.metrics_json s in
        let i path = Option.bind (Json.find_path path j) Json.to_int_opt in
        Helpers.check_bool "queue" true (i [ "queue"; "depth" ] = Some 1);
        Helpers.check_bool "workers" true (i [ "workers"; "total" ] = Some 2);
        Helpers.check_bool "outcomes" true (i [ "outcomes"; "ok" ] = Some 1);
        Helpers.check_bool "engine layer" true (i [ "engine"; "layer" ] = Some 4);
        Helpers.check_bool "pruned" true
          (i [ "engine"; "states_pruned_total" ] = Some 9);
        Helpers.check_bool "requests window" true
          (i [ "windows"; "requests_60s" ] = Some 1);
        Helpers.check_bool "solve dist present" true
          (Json.find_path [ "latency_ms"; "solve"; "count" ] j <> None));
    Helpers.case "prom exposition carries the pre-registered families"
      (fun () ->
        let s = Stats.create () in
        Stats.record s ~endpoint:"solve" ~ms:3.;
        let text = Stats.prom s in
        List.iter
          (fun needle ->
            let found =
              let nl = String.length needle and tl = String.length text in
              let rec scan i =
                i + nl <= tl && (String.sub text i nl = needle || scan (i + 1))
              in
              scan 0
            in
            Helpers.check_bool needle true found)
          [ "# TYPE ovo_requests_total counter";
            "ovo_requests_total{endpoint=\"solve\"} 1";
            "# TYPE ovo_request_duration_ms histogram";
            "ovo_uptime_seconds";
            "ovo_dp_layer";
            "ovo_process_resident_bytes" ]);
  ]

let protocol_tests =
  [
    Helpers.case "metrics request codec roundtrips" (fun () ->
        List.iter
          (fun fmt ->
            let req = { P.id = 7; op = P.Metrics fmt } in
            match P.request_of_line (P.request_to_line req) with
            | Ok r -> Helpers.check_bool "roundtrip" true (r = req)
            | Error (`Msg m) -> Alcotest.fail m)
          [ P.Mjson; P.Mprom ];
        (* format defaults to json on the wire *)
        match P.request_of_line {|{"id":1,"op":"metrics"}|} with
        | Ok { P.op = P.Metrics P.Mjson; _ } -> ()
        | _ -> Alcotest.fail "default format");
    Helpers.case "metrics replies roundtrip and stay distinguishable"
      (fun () ->
        let m =
          P.reply 1 (P.Ok_metrics (Json.Obj [ ("uptime_s", Json.Float 1.5) ]))
        in
        let p = P.reply 2 (P.Ok_prom "# TYPE a counter\na 1\n") in
        let s = P.reply 3 (P.Ok_stats (Json.Obj [])) in
        List.iter
          (fun reply ->
            match P.reply_of_line (P.reply_to_line reply) with
            | Ok r -> Helpers.check_bool "roundtrip" true (r = reply)
            | Error (`Msg msg) -> Alcotest.fail msg)
          [ m; p; s ]);
  ]

let access_log_tests =
  [
    Helpers.case "entry json roundtrips" (fun () ->
        let e =
          { Access_log.at = 123.5; req_id = 42; endpoint = "solve";
            outcome = "ok"; digest = "abc"; cached = false; queue_ms = 0.2;
            solve_ms = 3.5; lower = 5; upper = 5; detail = ""; shard = "" }
        in
        match Access_log.entry_of_json (Access_log.entry_to_json e) with
        | Ok e' -> Helpers.check_bool "roundtrip" true (e = e')
        | Error (`Msg m) -> Alcotest.fail m);
    Helpers.case "shard field roundtrips and is omitted when empty" (fun () ->
        let e shard =
          { Access_log.at = 9.; req_id = 7; endpoint = "solve";
            outcome = "ok"; digest = "d"; cached = true; queue_ms = 0.1;
            solve_ms = 2.; lower = 3; upper = 3; detail = ""; shard }
        in
        (match Access_log.entry_of_json (Access_log.entry_to_json (e "shard-1")) with
        | Ok e' -> Helpers.check_bool "shard kept" true (e'.Access_log.shard = "shard-1")
        | Error (`Msg m) -> Alcotest.fail m);
        (* a plain daemon's entries stay byte-identical to the pre-fleet
           format: no shard key at all *)
        Helpers.check_bool "no shard key when empty" false
          (match Ovo_obs.Json.member "shard" (Access_log.entry_to_json (e "")) with
          | Some _ -> true
          | None -> false));
    Helpers.case "pre-fleet entries (no shard field) still decode" (fun () ->
        let old =
          {|{"at":1.5,"req_id":3,"endpoint":"solve","outcome":"ok","digest":"xy","cached":false,"queue_ms":0.5,"solve_ms":7.25,"lower":4,"upper":4,"detail":""}|}
        in
        match Ovo_obs.Json.parse old with
        | Error m -> Alcotest.fail m
        | Ok j -> (
            match Access_log.entry_of_json j with
            | Ok e ->
                Helpers.check_bool "defaults to no shard" true
                  (e.Access_log.shard = "");
                Helpers.check_int "req_id" 3 e.Access_log.req_id
            | Error (`Msg m) -> Alcotest.fail m));
    Helpers.case "torn tail is truncated, intact prefix survives" (fun () ->
        let path = Filename.temp_file "ovo-alog" ".log" in
        Sys.remove path;
        let entry i =
          { Access_log.at = float_of_int i; req_id = i; endpoint = "solve";
            outcome = "ok"; digest = Printf.sprintf "d%d" i; cached = false;
            queue_ms = 0.; solve_ms = 1.; lower = -1; upper = -1; detail = "";
            shard = "" }
        in
        let log, existing = Access_log.open_append path in
        Helpers.check_int "fresh" 0 existing;
        Access_log.append log (entry 0);
        Access_log.append log (entry 1);
        Access_log.close log;
        (* simulate kill -9 mid-append: chop bytes off the tail *)
        let size = (Unix.stat path).Unix.st_size in
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        Unix.ftruncate fd (size - 3);
        Unix.close fd;
        (match Access_log.read path with
        | Ok (entries, recovery) ->
            Helpers.check_int "one entry survives" 1 (List.length entries);
            Helpers.check_bool "the first one" true
              ((List.hd entries).Access_log.req_id = 0);
            Helpers.check_bool "tail discarded" true
              (recovery.Ovo_store.Rlog.rec_discarded_bytes > 0)
        | Error m -> Alcotest.fail m);
        (* reopening truncates and appends cleanly after the prefix *)
        let log, existing = Access_log.open_append path in
        Helpers.check_int "recovered count" 1 existing;
        Access_log.append log (entry 2);
        Access_log.close log;
        (match Access_log.read path with
        | Ok (entries, _) ->
            Helpers.check_bool "prefix + new entry" true
              (List.map (fun e -> e.Access_log.req_id) entries = [ 0; 2 ])
        | Error m -> Alcotest.fail m);
        Sys.remove path);
  ]

let () =
  Alcotest.run "metrics"
    [
      ("histo", histo_tests);
      ("histo-props", Helpers.qtests histo_props);
      ("window", window_tests);
      ("registry", registry_tests);
      ("prom", prom_tests);
      ("stats", stats_tests);
      ("protocol", protocol_tests);
      ("access-log", access_log_tests);
    ]

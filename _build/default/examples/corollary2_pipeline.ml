(* Corollary 2 end-to-end: the optimiser does not need a truth table as
   primary input — any polynomial-time-evaluable representation works,
   because the truth table is extracted in O*(2^n).  This example feeds a
   two-level PLA cover (the EDA exchange format) through extraction,
   optimises every output with both the classical FS and the simulated
   quantum algorithm, and reports the modeled costs side by side.

   Run with:  dune exec examples/corollary2_pipeline.exe *)

let pla_text =
  {|# a 2-bit multiplier, 4 inputs, 4 outputs (LSB first)
.i 4
.o 4
.ilb a0 a1 b0 b1
.ob p0 p1 p2 p3
1-1- 1000
1001 0100
0110 0100
1011 0100
1110 0100
0111 0110
1101 0110
0101 0010
1111 0001
.e|}

let () =
  let pla = Ovo_boolfun.Pla.of_string pla_text in
  Format.printf "PLA: %d inputs, %d outputs, %d cubes@."
    (Ovo_boolfun.Pla.inputs pla)
    (Ovo_boolfun.Pla.outputs pla)
    (Ovo_boolfun.Pla.num_cubes pla);
  (* sanity: outputs implement a 2-bit multiplier *)
  let tables = Ovo_boolfun.Pla.tables pla in
  let product code =
    let a = code land 3 and b = (code lsr 2) land 3 in
    a * b
  in
  let ok = ref true in
  for code = 0 to 15 do
    let got =
      Array.to_list (Array.mapi (fun j t -> (j, t)) tables)
      |> List.fold_left
           (fun acc (j, t) ->
             if Ovo_boolfun.Truthtable.eval t code then acc lor (1 lsl j)
             else acc)
           0
    in
    if got <> product code then ok := false
  done;
  Format.printf "cover implements 2-bit multiplication: %b@.@." !ok;

  Format.printf "out    FS-size  FS-cells   quantum-size  modeled-q-cells@.";
  Array.iteri
    (fun j tt ->
      let before = Ovo_core.Cost.snapshot () in
      let r = Ovo_core.Fs.run tt in
      let after = Ovo_core.Cost.snapshot () in
      let fs_cells = (Ovo_core.Cost.diff after before).Ovo_core.Cost.table_cells in
      let ctx = Ovo_quantum.Opt_obdd.make_ctx () in
      let q, qcost =
        Ovo_quantum.Opt_obdd.minimize ~ctx (Ovo_quantum.Opt_obdd.theorem10 ()) tt
      in
      Format.printf "p%d %9d %9d %13d %16.0f@." j r.Ovo_core.Fs.size fs_cells
        q.Ovo_core.Fs.size qcost)
    tables;

  (* and the multi-terminal view: the product as one minimum MTBDD *)
  let mt =
    Ovo_boolfun.Mtable.of_fun 4 ~values:10 product
  in
  let r = Ovo_core.Fs.run_mtable mt in
  Format.printf
    "@.the product as a single minimum MTBDD: %d nodes, ordering (root first) %s@."
    r.Ovo_core.Fs.size
    (String.concat " "
       (List.map string_of_int
          (Array.to_list (Ovo_core.Fs.read_first_order r))));
  let man =
    Ovo_bdd.Mtbdd.create ~order:(Ovo_core.Fs.read_first_order r) 4
  in
  let m = Ovo_bdd.Mtbdd.import man r.Ovo_core.Fs.diagram in
  Format.printf "MTBDD package agrees: eval(3*3) = %d, size %d@."
    (Ovo_bdd.Mtbdd.eval man m 0b1111)
    (Ovo_bdd.Mtbdd.size man m)

(* N-queens with ZDDs — the combinatorial-enumeration workload ZDDs were
   made for (Minato; Knuth TAOCP 7.1.4): represent the set of solutions
   as a family over board cells, built row by row with the family
   algebra, then query it.

   Run with:  dune exec examples/queens.exe *)

module Z = Ovo_bdd.Zdd

(* cell (row, col) on an n x n board = element row*n + col *)
let solutions man n =
  let cell r c = (r * n) + c in
  let attacks (r1, c1) (r2, c2) =
    c1 = c2 || r1 = r2 || abs (r1 - r2) = abs (c1 - c2)
  in
  (* families of partial placements, one queen per processed row *)
  let rec place row acc =
    if row >= n then acc
    else begin
      (* extend every partial placement with a non-attacked cell of this
         row: for column c, keep the placements that avoid attackers *)
      let extended = ref (Z.empty man) in
      for c = 0 to n - 1 do
        (* placements whose earlier queens don't attack (row, c) *)
        let compatible = ref acc in
        for r' = 0 to row - 1 do
          for c' = 0 to n - 1 do
            if attacks (r', c') (row, c) then
              compatible := Z.subset0 man !compatible (cell r' c')
          done
        done;
        extended :=
          Z.union man !extended
            (Z.join man !compatible (Z.singleton man [ cell row c ]))
      done;
      place (row + 1) !extended
    end
  in
  place 0 (Z.base man)

let () =
  List.iter
    (fun n ->
      let man = Z.create (n * n) in
      let sols = solutions man n in
      Printf.printf "%d-queens: %3.0f solutions, ZDD of %d nodes over %d cells\n"
        n (Z.count man sols) (Z.size man sols) (n * n))
    [ 4; 5; 6 ];

  (* drill into the 5-queens solutions with the family algebra *)
  let n = 5 in
  let man = Z.create (n * n) in
  let sols = solutions man n in
  let corner = 0 (* cell (0,0) *) in
  let with_corner = Z.subset1 man sols corner in
  Printf.printf
    "\n5-queens solutions with a queen on the corner: %.0f of %.0f\n"
    (Z.count man with_corner) (Z.count man sols);
  (* every solution places exactly n queens *)
  let sizes_ok =
    List.for_all (fun s -> List.length s = n) (Z.to_family man sols)
  in
  Printf.printf "every solution has exactly %d queens: %b\n" n sizes_ok;
  (* maximal = the family itself (no solution contains another) *)
  Printf.printf "solutions form an antichain: %b\n"
    (Z.equal (Z.maximal man sols) sols)

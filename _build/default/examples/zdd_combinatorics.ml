(* ZDDs for combinatorics (the paper's Remark 2 + the Minato/Knuth
   use-case): build the family of independent sets of a cycle graph with
   the ZDD algebra, query it, and then ask the exact optimiser for the
   minimum-ZDD variable ordering of the same family's characteristic
   function.

   Run with:  dune exec examples/zdd_combinatorics.exe *)

module Zdd = Ovo_bdd.Zdd

(* Independent sets of the cycle C_n, built top-down: all subsets minus
   those containing an edge. *)
let independent_sets man n =
  let all_subsets =
    (* product of {∅,{v}} over all v *)
    let rec loop v acc =
      if v >= n then acc
      else
        loop (v + 1)
          (Zdd.union man acc (Zdd.change man acc v))
    in
    loop 0 (Zdd.base man)
  in
  let rec remove_edges v acc =
    if v >= n then acc
    else
      let u = (v + 1) mod n in
      (* sets containing both endpoints of the edge (v,u) *)
      let with_edge =
        Zdd.join man acc (Zdd.singleton man [ v; u ])
      in
      remove_edges (v + 1) (Zdd.diff man acc with_edge)
  in
  remove_edges 0 all_subsets

(* Lucas numbers count independent sets of a cycle. *)
let lucas n =
  let rec loop i a b = if i >= n then a else loop (i + 1) b (a + b) in
  (* L(1)=1, L(2)=3 for C_1, C_2 independent sets: use recurrence L(n)=L(n-1)+L(n-2), L(1)=1?
     For the cycle graph C_n (n>=3) the count is the Lucas number L(n). Seed L(1)=1, L(2)=3. *)
  loop 1 1 3

let () =
  let n = 10 in
  let man = Zdd.create n in
  let indep = independent_sets man n in
  Format.printf "independent sets of C_%d: %.0f families (Lucas L(%d) = %d)@." n
    (Zdd.count man indep) n (lucas n);
  Format.printf "ZDD size (natural element order): %d nodes@."
    (Zdd.size man indep);
  Format.printf "largest independent sets: %s@."
    (String.concat " "
       (List.filter_map
          (fun s ->
            if List.length s = n / 2 then
              Some ("{" ^ String.concat "," (List.map string_of_int s) ^ "}")
            else None)
          (Zdd.to_family man indep)));

  (* Exact minimum-ZDD ordering for the characteristic function.  For a
     vertex-transitive graph the natural order is already excellent; the
     optimiser confirms (or beats) it. *)
  let tt = Zdd.to_truthtable man indep in
  let r = Ovo_core.Fs.run ~kind:Ovo_core.Compact.Zdd tt in
  Format.printf "exact minimum ZDD size over all orderings: %d nodes@."
    r.Ovo_core.Fs.size;
  Format.printf "an optimal ordering (root first): %s@."
    (String.concat " "
       (List.map string_of_int
          (Array.to_list (Ovo_core.Fs.read_first_order r))));

  (* A deliberately shuffled element order pays a visible price. *)
  let shuffled = [| 0; 5; 1; 6; 2; 7; 3; 8; 4; 9 |] in
  Format.printf "a shuffled ordering costs: %d nodes@."
    (Ovo_core.Eval_order.size ~kind:Ovo_core.Compact.Zdd tt shuffled)

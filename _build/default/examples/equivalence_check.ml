(* Combinational equivalence checking — the original BDD application:
   two structurally different implementations are equivalent iff their
   canonical diagrams are the same node.  We check a ripple-carry adder
   against a carry-lookahead formulation, then plant a bug and watch the
   checker produce a counterexample.

   Run with:  dune exec examples/equivalence_check.exe *)

module B = Ovo_bdd.Bdd
module Cc = Ovo_bdd.Circuits

let bits = 4

(* carry-lookahead: carry_(j+1) = g_j | (p_j & carry_j) with generate
   g = a&b and propagate p = a^b; sum_j = p_j ^ carry_j *)
let lookahead_adder man a b =
  let width = Array.length a in
  let sum = Array.make width (B.bfalse man) in
  let carry = ref (B.bfalse man) in
  for j = 0 to width - 1 do
    let g = B.and_ man a.(j) b.(j) in
    let p = B.xor_ man a.(j) b.(j) in
    sum.(j) <- B.xor_ man p !carry;
    carry := B.or_ man g (B.and_ man p !carry)
  done;
  (sum, !carry)

let () =
  let n = 2 * bits in
  let man = B.create n in
  let a = Cc.input man (Array.init bits (fun j -> j)) in
  let b = Cc.input man (Array.init bits (fun j -> bits + j)) in

  let ripple_sum, ripple_carry = Cc.add man a b in
  let cla_sum, cla_carry = lookahead_adder man a b in

  Printf.printf "checking %d-bit ripple-carry vs carry-lookahead adders\n" bits;
  let equivalent =
    B.equal ripple_carry cla_carry
    && Array.for_all2 B.equal ripple_sum cla_sum
  in
  Printf.printf "equivalent: %b (constant-time handle comparison)\n" equivalent;

  (* plant a bug: the lookahead forgets to propagate through bit 2 *)
  let buggy_sum = Array.copy cla_sum in
  buggy_sum.(2) <- B.xor_ man a.(2) b.(2);
  let miter =
    (* OR of output differences: satisfiable iff the circuits differ *)
    Array.to_list (Array.map2 (B.xor_ man) ripple_sum buggy_sum)
    |> List.fold_left (B.or_ man) (B.bfalse man)
  in
  Printf.printf "\nplanted bug in sum bit 2; miter satcount = %.0f of %d inputs\n"
    (B.satcount man miter) (1 lsl n);
  (match B.sat_one man miter with
  | Some assignment ->
      let value vars =
        List.fold_left
          (fun acc (v, bit) ->
            match List.find_opt (fun x -> x = v) vars with
            | Some _ when bit -> acc lor (1 lsl (v mod bits))
            | _ -> acc)
          0 assignment
      in
      let va = value (List.init bits (fun j -> j)) in
      let vb = value (List.init bits (fun j -> bits + j)) in
      Printf.printf "counterexample: a = %d, b = %d (a+b = %d)\n" va vb (va + vb)
  | None -> Printf.printf "no counterexample?!\n");

  (* the miter itself has an interesting optimal ordering *)
  let tt = B.to_truthtable man miter in
  let r = Ovo_core.Fs.run tt in
  Printf.printf "miter minimum OBDD: %d nodes (identity ordering: %d)\n"
    r.Ovo_core.Fs.size
    (Ovo_core.Eval_order.size tt (Array.init n (fun i -> i)))

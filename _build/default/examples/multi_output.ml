(* Multi-output (shared) diagram optimisation: a real circuit exposes
   many outputs over the same inputs, and the right question is the
   ordering that minimises the SHARED diagram, not each output alone.
   This example optimises a 3-bit adder's outputs jointly, compares the
   shared optimum against per-output optima, and cross-checks with the
   BDD package's shared size.

   Run with:  dune exec examples/multi_output.exe *)

module T = Ovo_boolfun.Truthtable
module S = Ovo_core.Shared
module B = Ovo_bdd.Bdd
module Cc = Ovo_bdd.Circuits

let () =
  let bits = 3 in
  let n = 2 * bits in
  (* outputs: sum bits 0..bits-1 and the carry, as truth tables *)
  let outputs =
    Array.init (bits + 1) (fun j ->
        T.of_fun n (fun code ->
            let a = code land ((1 lsl bits) - 1) in
            let b = code lsr bits in
            (a + b) land (1 lsl j) <> 0))
  in
  Printf.printf "3-bit adder: %d outputs over %d inputs\n" (bits + 1) n;

  (* per-output exact optima (each with its own, possibly different order) *)
  let singles = Array.map (fun tt -> Ovo_core.Fs.run tt) outputs in
  Array.iteri
    (fun j r ->
      Printf.printf "  output %d alone: %d nodes (order root-first: %s)\n" j
        r.Ovo_core.Fs.mincost
        (String.concat " "
           (List.map string_of_int
              (Array.to_list (Ovo_core.Fs.read_first_order r)))))
    singles;
  let sum_singles =
    Array.fold_left (fun acc r -> acc + r.Ovo_core.Fs.mincost) 0 singles
  in

  (* the joint optimum over one shared order *)
  let shared = S.minimize outputs in
  Printf.printf "shared exact optimum: %d nodes (vs %d if kept separate)\n"
    shared.S.mincost sum_singles;
  Printf.printf "shared optimal order (root first): %s\n"
    (String.concat " "
       (List.map string_of_int
          (List.rev (Array.to_list shared.S.order))));

  (* the same circuit built by symbolic simulation in the BDD package,
     under the shared-optimal order, must have the same shared size *)
  let rf =
    let o = shared.S.order in
    Array.init n (fun i -> o.(n - 1 - i))
  in
  let man = B.create ~order:rf n in
  let a = Cc.input man (Array.init bits (fun j -> j)) in
  let b = Cc.input man (Array.init bits (fun j -> bits + j)) in
  let sum, carry = Cc.add man a b in
  let pkg_size = B.shared_size man (carry :: Array.to_list sum) in
  Printf.printf "BDD package under that order: %d nodes (incl. terminals)\n"
    pkg_size;
  Printf.printf "optimiser size incl. terminals: %d — agreement: %b\n"
    shared.S.size
    (pkg_size = shared.S.size);

  (* the blocked ordering pays a visible price on the shared diagram *)
  let blocked = S.compact_chain (S.of_truthtables Ovo_core.Compact.Bdd outputs)
      (Array.init n (fun i -> i))
  in
  Printf.printf "blocked ordering instead: %d nodes (%.1fx the optimum)\n"
    blocked.S.mincost
    (float_of_int blocked.S.mincost /. float_of_int shared.S.mincost)

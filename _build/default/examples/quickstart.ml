(* Quickstart: parse a formula, find its optimal variable ordering with
   the exact FS dynamic program, and use the result with the BDD package.

   Run with:  dune exec examples/quickstart.exe *)

module Expr = Ovo_boolfun.Expr
module Fs = Ovo_core.Fs
module Bdd = Ovo_bdd.Bdd

let () =
  (* A comparator-ish function: true when the 2-bit number (x0,x1) is less
     than (x2,x3), or the guard x4 forces it. *)
  let formula = "(!x1 & x3) | (!(x1 ^ x3) & !x0 & x2) | x4 & !x3" in
  let expr = Expr.of_string formula in
  let tt = Expr.to_truthtable expr in
  Format.printf "function: %a  (arity %d, %d satisfying assignments)@." Expr.pp
    expr
    (Ovo_boolfun.Truthtable.arity tt)
    (Ovo_boolfun.Truthtable.count_ones tt);

  (* Exact minimisation: Theorem 5's O*(3^n) dynamic program. *)
  let r = Fs.run tt in
  let read_first = Fs.read_first_order r in
  Format.printf "optimal OBDD size: %d nodes@." r.Fs.size;
  Format.printf "optimal ordering (root first): %s@."
    (String.concat " "
       (List.map (fun v -> "x" ^ string_of_int v) (Array.to_list read_first)));

  (* Compare against the naive identity ordering. *)
  let identity = Array.init (Ovo_boolfun.Truthtable.arity tt) (fun i -> i) in
  Format.printf "identity-ordering size: %d nodes@."
    (Ovo_core.Eval_order.size tt identity);

  (* Hand the optimised diagram to the BDD package and keep computing. *)
  let man = Bdd.create ~order:read_first (Ovo_boolfun.Truthtable.arity tt) in
  let b = Bdd.import man r.Fs.diagram in
  Format.printf "satcount via BDD package: %.0f@." (Bdd.satcount man b);
  (match Bdd.sat_one man b with
  | Some assignment ->
      Format.printf "a satisfying assignment: %s@."
        (String.concat ", "
           (List.map
              (fun (v, b) -> Printf.sprintf "x%d=%b" v b)
              assignment))
  | None -> Format.printf "unsatisfiable@.");

  (* The package keeps working at the optimal size for derived functions. *)
  let guard = Bdd.var man 4 in
  let without_guard = Bdd.and_ man b (Bdd.not_ man guard) in
  Format.printf "f & !x4: size %d, satcount %.0f@."
    (Bdd.size man without_guard)
    (Bdd.satcount man without_guard)

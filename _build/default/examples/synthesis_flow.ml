(* A miniature synthesis flow, end to end:

     BLIF netlist  →  structural elaboration  →  exact shared ordering
     →  a live Dynbdd manager reordered to it  →  incremental edits
     →  re-sifting  →  exchange-format export.

   This is the shape in which the exact optimiser earns its keep inside
   a real tool: optimise once, keep working in a reorderable manager.

   Run with:  dune exec examples/synthesis_flow.exe *)

module Bl = Ovo_boolfun.Blif
module S = Ovo_core.Shared
module D = Ovo_bdd.Dynbdd

let netlist =
  {|.model alu_slice
.inputs a b cin op0 op1
.outputs out cout
.names a b axb
10 1
01 1
.names axb cin sum
10 1
01 1
.names a b cin maj
11- 1
1-1 1
-11 1
.names a b andab
11 1
.names a b orab
1- 1
-1 1
# op: 00 = add, 01 = and, 10 = or, 11 = xor
.names op0 op1 sum andab orab axb out
001--- 1
10-1-- 1
01--1- 1
11---1 1
.names op0 op1 maj cout
001 1
.end|}

let () =
  let m = Bl.of_string netlist in
  let outputs = Array.of_list (List.map snd (Bl.tables m)) in
  let names = Array.of_list (Bl.output_names m) in
  let n = List.length (Bl.input_names m) in
  Printf.printf "netlist %s: %d inputs, %d outputs\n" (Bl.model_name m) n
    (Array.length outputs);

  (* 1. exact shared ordering for all outputs *)
  let r = S.minimize outputs in
  Printf.printf "exact shared optimum: %d nodes, order (root first): %s\n"
    r.S.size
    (String.concat " "
       (List.map
          (fun l -> List.nth (Bl.input_names m) l)
          (List.rev (Array.to_list r.S.order))));

  (* 2. load into a reorderable manager under that order *)
  let rf = Array.init n (fun i -> r.S.order.(n - 1 - i)) in
  let man = D.create ~order:rf n in
  let handles = Array.map (D.of_truthtable man) outputs in
  Array.iter (D.protect man) handles;
  Printf.printf "manager holds the netlist at %d live nodes\n" (D.live_size man);

  (* 3. an ECO: also expose out & !cout *)
  let eco = D.and_ man handles.(0) (D.not_ man handles.(1)) in
  D.protect man eco;
  Printf.printf "after the ECO: %d live nodes\n" (D.live_size man);

  (* 4. re-sift to absorb the change, collect garbage *)
  D.sift man;
  D.compress man;
  Printf.printf "after sifting + GC: %d live nodes (order: %s)\n"
    (D.live_size man)
    (String.concat " "
       (List.map
          (fun l -> List.nth (Bl.input_names m) l)
          (Array.to_list (D.order man))));

  (* 5. export the first output in the exchange format *)
  Array.iteri
    (fun j h ->
      if j = 0 then begin
        let tt = D.to_truthtable man h in
        let d = Ovo_core.Eval_order.diagram tt
            (Ovo_core.Eval_order.read_first (D.order man))
        in
        let text = Ovo_core.Diagram.serialize d in
        Printf.printf "serialized %s: %d bytes, reloads to size %d\n" names.(j)
          (String.length text)
          (Ovo_core.Diagram.size (Ovo_core.Diagram.deserialize text))
      end)
    handles

(* The paper's Fig. 1 motivation, end to end: the "Achilles heel"
   function x0·x1 + x2·x3 + … is linear-sized under the natural ordering
   and exponential under the interleaved one; exact optimisation recovers
   the linear size from the bad starting point, and we also watch how the
   heuristics cope.

   Run with:  dune exec examples/ordering_blowup.exe *)

module F = Ovo_boolfun.Families
module E = Ovo_core.Eval_order

let () =
  Format.printf
    "pairs  n   natural   interleaved   2n+2   2^(n+1)   exact   sifting@.";
  for pairs = 1 to 6 do
    let tt = F.achilles pairs in
    let n = 2 * pairs in
    let good = E.size tt (F.achilles_good_order pairs) in
    let bad = E.size tt (F.achilles_bad_order pairs) in
    let exact = (Ovo_core.Fs.run tt).Ovo_core.Fs.size in
    (* start sifting from the *bad* ordering to make it work for a living *)
    let sift =
      Ovo_ordering.Sifting.run ~initial:(F.achilles_bad_order pairs) tt
    in
    let sift_size =
      E.size tt sift.Ovo_ordering.Sifting.order
    in
    Format.printf "%5d %3d %9d %13d %6d %9d %7d %9d@." pairs n good bad
      (n + 2)
      (1 lsl (pairs + 1))
      exact sift_size
  done;
  Format.printf
    "@.The gap grows as 2^(n/2+1)/(2n+2); already at n = 12 the bad ordering@.";
  Format.printf
    "is an order of magnitude larger — the paper's case for ordering search.@."

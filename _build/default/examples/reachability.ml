(* Symbolic reachability — BDDs as model-checking substrate: encode a
   transition relation R(s, s'), compute the reachable states by the
   classic image fixpoint

     Reached_0 = Init;  Reached_(i+1) = Reached_i ∪ rename(∃s. R ∧ Reached_i)

   and answer a safety question.  The system is a 4-bit counter that
   counts 0..9 and wraps (states 10..15 are unreachable garbage).

   Run with:  dune exec examples/reachability.exe *)

module B = Ovo_bdd.Bdd
module Cc = Ovo_bdd.Circuits

let bits = 4

let () =
  (* variables 0..3 = current state s (LSB first), 4..7 = next state s' *)
  let n = 2 * bits in
  let man = B.create n in
  let s = Cc.input man (Array.init bits (fun j -> j)) in
  let s' = Cc.input man (Array.init bits (fun j -> bits + j)) in

  (* R(s, s') = if s = 9 then s' = 0 else s' = s + 1 *)
  let nine = Cc.constant man ~width:bits 9 in
  let zero = Cc.constant man ~width:bits 0 in
  let one = Cc.constant man ~width:bits 1 in
  let inc, _carry = Cc.add man s one in
  let at_nine = Cc.equal_vec man s nine in
  let relation =
    B.or_ man
      (B.and_ man at_nine (Cc.equal_vec man s' zero))
      (B.and_ man (B.not_ man at_nine) (Cc.equal_vec man s' inc))
  in
  Printf.printf "transition relation BDD: %d nodes\n" (B.size man relation);

  let current_vars = List.init bits (fun j -> j) in
  let rename_next_to_current f =
    (* after ∃s the support is within s'; substitute each s'_j by s_j *)
    let rec go j f =
      if j >= bits then f
      else go (j + 1) (B.compose_var man f ~var:(bits + j) (B.var man j))
    in
    go 0 f
  in
  let image reached =
    rename_next_to_current
      (B.exists man current_vars (B.and_ man relation reached))
  in

  let init = Cc.equal_vec man s zero in
  let reached = ref init in
  let continue = ref true in
  let iterations = ref 0 in
  while !continue do
    incr iterations;
    let next = B.or_ man !reached (image !reached) in
    if B.equal next !reached then continue := false else reached := next
  done;
  (* states are counted over the s variables only: divide out the s' *)
  let states = B.satcount man !reached /. Float.pow 2. (float_of_int bits) in
  Printf.printf "fixpoint after %d iterations: %.0f reachable states\n"
    !iterations states;

  (* safety: state 12 must be unreachable; state 7 must be reachable *)
  let twelve = Cc.equal_vec man s (Cc.constant man ~width:bits 12) in
  let seven = Cc.equal_vec man s (Cc.constant man ~width:bits 7) in
  Printf.printf "state 12 reachable: %b (expected false)\n"
    (not (B.is_false man (B.and_ man !reached twelve)));
  Printf.printf "state  7 reachable: %b (expected true)\n"
    (not (B.is_false man (B.and_ man !reached seven)));

  (* ordering matters even here: compare the relation's size under the
     interleaved current/next ordering against the blocked one *)
  let interleaved =
    Array.init n (fun l -> if l land 1 = 0 then l / 2 else bits + (l / 2))
  in
  let man2 = B.create ~order:interleaved n in
  let tt = B.to_truthtable man relation in
  let r2 = B.of_truthtable man2 tt in
  Printf.printf
    "relation size: blocked order %d nodes, interleaved %d nodes, exact optimum %d\n"
    (B.size man relation) (B.size man2 r2)
    (Ovo_core.Fs.run tt).Ovo_core.Fs.size

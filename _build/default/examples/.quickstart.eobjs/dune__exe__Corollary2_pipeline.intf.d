examples/corollary2_pipeline.mli:

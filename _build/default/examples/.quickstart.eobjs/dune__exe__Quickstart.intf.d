examples/quickstart.mli:

examples/zdd_combinatorics.mli:

examples/heuristic_quality.mli:

examples/equivalence_check.ml: Array List Ovo_bdd Ovo_core Printf

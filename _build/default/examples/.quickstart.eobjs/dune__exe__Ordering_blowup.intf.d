examples/ordering_blowup.mli:

examples/reachability.mli:

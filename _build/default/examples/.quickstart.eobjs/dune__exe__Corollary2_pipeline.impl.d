examples/corollary2_pipeline.ml: Array Format List Ovo_bdd Ovo_boolfun Ovo_core Ovo_quantum String

examples/quickstart.ml: Array Format List Ovo_bdd Ovo_boolfun Ovo_core Printf String

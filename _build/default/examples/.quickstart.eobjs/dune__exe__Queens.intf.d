examples/queens.mli:

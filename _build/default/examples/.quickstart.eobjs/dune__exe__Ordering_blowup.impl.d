examples/ordering_blowup.ml: Format Ovo_boolfun Ovo_core Ovo_ordering

examples/queens.ml: List Ovo_bdd Printf

examples/multi_output.ml: Array List Ovo_bdd Ovo_boolfun Ovo_core Printf String

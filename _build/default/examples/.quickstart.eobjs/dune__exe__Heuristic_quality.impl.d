examples/heuristic_quality.ml: Format List Ovo_boolfun Ovo_core Ovo_ordering Random

examples/reachability.ml: Array Float List Ovo_bdd Ovo_core Printf

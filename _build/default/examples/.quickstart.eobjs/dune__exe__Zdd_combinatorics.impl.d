examples/zdd_combinatorics.ml: Array Format List Ovo_bdd Ovo_core String

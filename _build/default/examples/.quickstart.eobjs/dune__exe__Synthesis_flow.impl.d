examples/synthesis_flow.ml: Array List Ovo_bdd Ovo_boolfun Ovo_core Printf String

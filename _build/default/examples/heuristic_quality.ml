(* Judging heuristics with the exact optimum — the use-case the paper
   gives for theoretically sound exact methods (Sec. 1.1): run sifting,
   window permutation and random search over the benchmark catalogue and
   report each heuristic's size ratio to the FS optimum.

   Run with:  dune exec examples/heuristic_quality.exe *)

let () =
  let rng = Random.State.make [| 20260706 |] in
  let catalogue = Ovo_boolfun.Families.catalogue ~max_arity:10 in
  Format.printf "Heuristic quality versus the exact optimum (ratio 1.00 = optimal):@.@.";
  List.iter
    (fun (name, tt) ->
      let report = Ovo_ordering.Quality.evaluate ~rng ~name tt in
      Format.printf "%a@." Ovo_ordering.Quality.pp_report report)
    catalogue;
  (* the hybrid exact-block pass usually closes the remaining gap *)
  Format.printf "@.Exact-block hybrid (FS* windows of 4) on the same functions:@.@.";
  List.iter
    (fun (name, tt) ->
      let exact = (Ovo_core.Fs.run tt).Ovo_core.Fs.mincost in
      let hybrid = Ovo_ordering.Exact_block.run ~block:4 tt in
      Format.printf "%-16s exact=%-5d exact-block=%-5d sweeps=%d@." name exact
        hybrid.Ovo_ordering.Exact_block.mincost
        hybrid.Ovo_ordering.Exact_block.sweeps)
    catalogue

(* Ids: 0 = empty family, 1 = {∅}; inner nodes from 2.  Ordering is by
   LEVEL: the root carries the element whose level is smallest, and a
   node's children live at strictly larger levels (terminals at level
   [n]).  With the default identity order, level = element label. *)

type man = {
  n : int;
  level_var : int array;  (* level -> element label *)
  var_level : int array;  (* element label -> level *)
  mutable elems : int array;
  mutable los : int array;
  mutable his : int array;
  mutable next : int;
  unique : (int * int * int, int) Hashtbl.t;
  cache : (int * int * int, int) Hashtbl.t;  (* (op_tag, a, b) *)
}

type t = int

let op_union = 0
let op_inter = 1
let op_diff = 2
let op_join = 3
let op_meet = 4
let op_nonsub = 5
let op_nonsup = 6
let op_maximal = 7
let op_minimal = 8

let create ?order n =
  if n < 0 then invalid_arg "Zdd.create";
  let level_var =
    match order with
    | None -> Array.init n (fun i -> i)
    | Some o ->
        if Array.length o <> n then invalid_arg "Zdd.create: bad order";
        Array.copy o
  in
  let var_level = Array.make n (-1) in
  Array.iteri
    (fun l v ->
      if v < 0 || v >= n || var_level.(v) >= 0 then
        invalid_arg "Zdd.create: order is not a permutation";
      var_level.(v) <- l)
    level_var;
  {
    n;
    level_var;
    var_level;
    elems = Array.make 64 0;
    los = Array.make 64 0;
    his = Array.make 64 0;
    next = 0;
    unique = Hashtbl.create 256;
    cache = Hashtbl.create 256;
  }

let nelems man = man.n
let order man = Array.copy man.level_var
let node_count man = man.next + 2

let empty _man = 0
let base _man = 1
let equal (a : t) (b : t) = a = b

let elem man u = man.elems.(u - 2)
let lo man u = man.los.(u - 2)
let hi man u = man.his.(u - 2)
let level man u = if u < 2 then man.n else man.var_level.(elem man u)

let grow man =
  let cap = Array.length man.elems in
  if man.next >= cap then begin
    let resize a = Array.append a (Array.make cap 0) in
    man.elems <- resize man.elems;
    man.los <- resize man.los;
    man.his <- resize man.his
  end

let mk man v l h =
  if h = 0 then l
  else
    let key = (v, l, h) in
    match Hashtbl.find_opt man.unique key with
    | Some u -> u
    | None ->
        grow man;
        let idx = man.next in
        man.next <- idx + 1;
        man.elems.(idx) <- v;
        man.los.(idx) <- l;
        man.his.(idx) <- h;
        let u = idx + 2 in
        Hashtbl.add man.unique key u;
        u

let cached man tag a b compute =
  let key = (tag, a, b) in
  match Hashtbl.find_opt man.cache key with
  | Some r -> r
  | None ->
      let r = compute () in
      Hashtbl.add man.cache key r;
      r

let rec union man a b =
  if a = b then a
  else if a = 0 then b
  else if b = 0 then a
  else
    let a, b = if a < b then (a, b) else (b, a) in
    cached man op_union a b (fun () ->
        let la = level man a and lb = level man b in
        if la < lb then mk man (elem man a) (union man (lo man a) b) (hi man a)
        else if lb < la then
          mk man (elem man b) (union man a (lo man b)) (hi man b)
        else
          mk man (elem man a)
            (union man (lo man a) (lo man b))
            (union man (hi man a) (hi man b)))

let rec inter man a b =
  if a = b then a
  else if a = 0 || b = 0 then 0
  else
    let a, b = if a < b then (a, b) else (b, a) in
    cached man op_inter a b (fun () ->
        let la = level man a and lb = level man b in
        if la < lb then inter man (lo man a) b
        else if lb < la then inter man a (lo man b)
        else
          mk man (elem man a)
            (inter man (lo man a) (lo man b))
            (inter man (hi man a) (hi man b)))

let rec diff man a b =
  if a = b || a = 0 then 0
  else if b = 0 then a
  else
    cached man op_diff a b (fun () ->
        let la = level man a and lb = level man b in
        if la < lb then mk man (elem man a) (diff man (lo man a) b) (hi man a)
        else if lb < la then diff man a (lo man b)
        else
          mk man (elem man a)
            (diff man (lo man a) (lo man b))
            (diff man (hi man a) (hi man b)))

let rec join man a b =
  if a = 0 || b = 0 then 0
  else if a = 1 then b
  else if b = 1 then a
  else
    let a, b = if a < b then (a, b) else (b, a) in
    cached man op_join a b (fun () ->
        let la = level man a and lb = level man b in
        if la < lb then
          mk man (elem man a) (join man (lo man a) b) (join man (hi man a) b)
        else if lb < la then
          mk man (elem man b) (join man a (lo man b)) (join man a (hi man b))
        else
          let hh = join man (hi man a) (hi man b) in
          let hl = join man (hi man a) (lo man b) in
          let lh = join man (lo man a) (hi man b) in
          mk man (elem man a)
            (join man (lo man a) (lo man b))
            (union man hh (union man hl lh)))

(* {x ∩ y}: the dual of join. *)
let rec meet man a b =
  if a = 0 || b = 0 then 0
  else if a = 1 || b = 1 then 1
  else
    let a, b = if a < b then (a, b) else (b, a) in
    cached man op_meet a b (fun () ->
        let la = level man a and lb = level man b in
        if la < lb then union man (meet man (lo man a) b) (meet man (hi man a) b)
        else if lb < la then
          union man (meet man a (lo man b)) (meet man a (hi man b))
        else
          let keep_v = meet man (hi man a) (hi man b) in
          let drop =
            union man
              (meet man (lo man a) (lo man b))
              (union man
                 (meet man (hi man a) (lo man b))
                 (meet man (lo man a) (hi man b)))
          in
          mk man (elem man a) drop keep_v)

(* sets of [a] that are a subset of no member of [b] *)
let rec nonsub man a b =
  if a = 0 then 0
  else if b = 0 then a
  else if a = b then 0
  else if a = 1 then 0 (* ∅ ⊆ any member; b ≠ 0 has one *)
  else if b = 1 then (* only ∅ can be ⊆ ∅ *)
    diff man a 1
  else
    cached man op_nonsub a b (fun () ->
        let la = level man a and lb = level man b in
        if la < lb then
          (* members with the top element can't fit inside v-free sets *)
          mk man (elem man a) (nonsub man (lo man a) b) (hi man a)
        else if lb < la then nonsub man a (union man (lo man b) (hi man b))
        else
          mk man (elem man a)
            (nonsub man (lo man a) (union man (lo man b) (hi man b)))
            (nonsub man (hi man a) (hi man b)))

let rec contains_empty man t = if t < 2 then t = 1 else contains_empty man (lo man t)

(* sets of [a] that are a superset of no member of [b] *)
let rec nonsup man a b =
  if a = 0 then 0
  else if b = 0 then a
  else if a = b then 0
  else if b = 1 then 0 (* every set ⊇ ∅ *)
  else if a = 1 then if contains_empty man b then 0 else 1
  else
    cached man op_nonsup a b (fun () ->
        let la = level man a and lb = level man b in
        if la < lb then
          mk man (elem man a) (nonsup man (lo man a) b) (nonsup man (hi man a) b)
        else if lb < la then nonsup man a (lo man b)
        else
          mk man (elem man a)
            (nonsup man (lo man a) (lo man b))
            (nonsup man (hi man a) (union man (lo man b) (hi man b))))

let rec maximal man a =
  if a < 2 then a
  else
    cached man op_maximal a a (fun () ->
        let h' = maximal man (hi man a) in
        let l' = nonsub man (maximal man (lo man a)) h' in
        mk man (elem man a) l' h')

let rec minimal man a =
  if a < 2 then a
  else
    cached man op_minimal a a (fun () ->
        let l' = minimal man (lo man a) in
        let h' = nonsup man (minimal man (hi man a)) l' in
        mk man (elem man a) l' h')

let check_elem man v =
  if v < 0 || v >= man.n then invalid_arg "Zdd: element out of range"

let rec change man t v =
  check_elem man v;
  let lv = man.var_level.(v) in
  if t = 0 then 0
  else if level man t > lv then mk man v 0 t
  else if level man t = lv then mk man v (hi man t) (lo man t)
  else mk man (elem man t) (change man (lo man t) v) (change man (hi man t) v)

let rec subset0 man t v =
  check_elem man v;
  let lv = man.var_level.(v) in
  if t < 2 then t
  else if level man t > lv then t
  else if level man t = lv then lo man t
  else mk man (elem man t) (subset0 man (lo man t) v) (subset0 man (hi man t) v)

let rec subset1 man t v =
  check_elem man v;
  let lv = man.var_level.(v) in
  if t < 2 then 0
  else if level man t > lv then 0
  else if level man t = lv then hi man t
  else mk man (elem man t) (subset1 man (lo man t) v) (subset1 man (hi man t) v)

let singleton man set =
  let sorted = List.sort_uniq compare set in
  List.iter (check_elem man) sorted;
  let by_level_desc =
    List.sort (fun a b -> compare man.var_level.(b) man.var_level.(a)) sorted
  in
  List.fold_left (fun acc v -> mk man v 0 acc) 1 by_level_desc

let of_family man sets =
  List.fold_left (fun acc s -> union man acc (singleton man s)) 0 sets

let to_family man t =
  let rec go t prefix acc =
    if t = 0 then acc
    else if t = 1 then List.rev prefix :: acc
    else
      let v = elem man t in
      let acc = go (lo man t) prefix acc in
      go (hi man t) (v :: prefix) acc
  in
  List.rev (go t [] [])

let count man t =
  let memo = Hashtbl.create 64 in
  let rec go t =
    if t = 0 then 0.
    else if t = 1 then 1.
    else
      match Hashtbl.find_opt memo t with
      | Some c -> c
      | None ->
          let c = go (lo man t) +. go (hi man t) in
          Hashtbl.add memo t c;
          c
  in
  go t

let count_by_size man t =
  let len = man.n + 1 in
  let memo = Hashtbl.create 64 in
  let rec go t =
    if t = 0 then Array.make len 0.
    else if t = 1 then begin
      let a = Array.make len 0. in
      a.(0) <- 1.;
      a
    end
    else
      match Hashtbl.find_opt memo t with
      | Some a -> a
      | None ->
          let lo_counts = go (lo man t) and hi_counts = go (hi man t) in
          let a = Array.copy lo_counts in
          for k = len - 1 downto 1 do
            a.(k) <- a.(k) +. hi_counts.(k - 1)
          done;
          Hashtbl.add memo t a;
          a
  in
  go t

let mem man t set =
  let sorted = List.sort_uniq compare set in
  List.iter (check_elem man) sorted;
  let by_level =
    List.sort (fun a b -> compare man.var_level.(a) man.var_level.(b)) sorted
  in
  let rec go t = function
    | [] ->
        let rec down t = if t < 2 then t = 1 else down (lo man t) in
        down t
    | v :: rest ->
        if t < 2 then false
        else
          let lt = level man t and lv = man.var_level.(v) in
          if lt > lv then false
          else if lt = lv then go (hi man t) rest
          else go (lo man t) (v :: rest)
  in
  go t by_level

let size man t =
  let visited = Hashtbl.create 64 in
  let terminals = Hashtbl.create 2 in
  let rec go u =
    if u < 2 then Hashtbl.replace terminals u ()
    else if not (Hashtbl.mem visited u) then begin
      Hashtbl.replace visited u ();
      go (lo man u);
      go (hi man u)
    end
  in
  go t;
  Hashtbl.length visited + Hashtbl.length terminals

let import man (d : Ovo_core.Diagram.t) =
  if d.Ovo_core.Diagram.kind <> Ovo_core.Compact.Zdd then
    invalid_arg "Zdd.import: not a ZDD-rule diagram";
  if d.Ovo_core.Diagram.num_terminals <> 2 then
    invalid_arg "Zdd.import: not two-terminal";
  if d.Ovo_core.Diagram.n <> man.n then invalid_arg "Zdd.import: arity mismatch";
  Array.iteri
    (fun j v ->
      if man.level_var.(man.n - 1 - j) <> v then
        invalid_arg "Zdd.import: ordering mismatch")
    d.Ovo_core.Diagram.order;
  let memo = Hashtbl.create 64 in
  let rec go u =
    if u < 2 then u
    else
      match Hashtbl.find_opt memo u with
      | Some r -> r
      | None ->
          let nd = d.Ovo_core.Diagram.nodes.(u - 2) in
          let r =
            mk man nd.Ovo_core.Diagram.var
              (go nd.Ovo_core.Diagram.lo)
              (go nd.Ovo_core.Diagram.hi)
          in
          Hashtbl.add memo u r;
          r
  in
  go d.Ovo_core.Diagram.root

let of_truthtable man tt =
  if Ovo_boolfun.Truthtable.arity tt <> man.n then
    invalid_arg "Zdd.of_truthtable: arity mismatch";
  let family = ref 0 in
  for code = 0 to Ovo_boolfun.Truthtable.size tt - 1 do
    if Ovo_boolfun.Truthtable.eval tt code then begin
      let set = ref [] in
      for v = man.n - 1 downto 0 do
        if code land (1 lsl v) <> 0 then set := v :: !set
      done;
      family := union man !family (singleton man !set)
    end
  done;
  !family

let to_truthtable man t =
  Ovo_boolfun.Truthtable.of_fun man.n (fun code ->
      let set = ref [] in
      for v = man.n - 1 downto 0 do
        if code land (1 lsl v) <> 0 then set := v :: !set
      done;
      mem man t !set)

let to_dot man t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph zdd {\n  rankdir=TB;\n";
  let visited = Hashtbl.create 64 in
  let rec go u =
    if not (Hashtbl.mem visited u) then begin
      Hashtbl.replace visited u ();
      if u < 2 then
        Buffer.add_string buf
          (Printf.sprintf "  n%d [shape=box,label=\"%s\"];\n" u
             (if u = 0 then "0" else "1"))
      else begin
        Buffer.add_string buf
          (Printf.sprintf "  n%d [shape=circle,label=\"e%d\"];\n" u
             (elem man u));
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [style=dashed];\n" u (lo man u));
        Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u (hi man u));
        go (lo man u);
        go (hi man u)
      end
    end
  in
  go t;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

type vec = Bdd.t array

let constant man ~width v =
  if width < 0 then invalid_arg "Circuits.constant";
  Array.init width (fun j ->
      if v land (1 lsl j) <> 0 then Bdd.btrue man else Bdd.bfalse man)

let input man vars = Array.map (Bdd.var man) vars

let eval_int man vec code =
  let acc = ref 0 in
  Array.iteri (fun j b -> if Bdd.eval man b code then acc := !acc lor (1 lsl j)) vec;
  !acc

let check_same_width a b =
  if Array.length a <> Array.length b then
    invalid_arg "Circuits: width mismatch"

(* full adder cell: sum = a xor b xor c, carry = majority *)
let full_add man a b c =
  let sum = Bdd.xor_ man (Bdd.xor_ man a b) c in
  let carry =
    Bdd.or_ man (Bdd.and_ man a b) (Bdd.and_ man c (Bdd.or_ man a b))
  in
  (sum, carry)

let add man a b =
  check_same_width a b;
  let width = Array.length a in
  let out = Array.make width (Bdd.bfalse man) in
  let carry = ref (Bdd.bfalse man) in
  for j = 0 to width - 1 do
    let s, c = full_add man a.(j) b.(j) !carry in
    out.(j) <- s;
    carry := c
  done;
  (out, !carry)

(* widen with false bits on the MSB side *)
let widen man vec width =
  Array.init width (fun j ->
      if j < Array.length vec then vec.(j) else Bdd.bfalse man)

let multiply man a b =
  let wa = Array.length a and wb = Array.length b in
  let width = wa + wb in
  let acc = ref (constant man ~width 0) in
  for j = 0 to wb - 1 do
    (* partial product: a shifted by j, gated by b_j *)
    let partial =
      Array.init width (fun i ->
          if i >= j && i - j < wa then Bdd.and_ man a.(i - j) b.(j)
          else Bdd.bfalse man)
    in
    let sum, _carry = add man (widen man !acc width) partial in
    acc := sum
  done;
  !acc

let equal_vec man a b =
  check_same_width a b;
  Array.to_seq (Array.map2 (Bdd.iff man) a b)
  |> Seq.fold_left (Bdd.and_ man) (Bdd.btrue man)

let less_than man a b =
  check_same_width a b;
  (* from MSB down: lt = (!a & b) | (a iff b) & lt_below *)
  let lt = ref (Bdd.bfalse man) in
  for j = 0 to Array.length a - 1 do
    let bit_lt = Bdd.and_ man (Bdd.not_ man a.(j)) b.(j) in
    let bit_eq = Bdd.iff man a.(j) b.(j) in
    lt := Bdd.or_ man bit_lt (Bdd.and_ man bit_eq !lt)
  done;
  !lt

let adder_outputs ~bits ~interleaved =
  if bits < 1 then invalid_arg "Circuits.adder_outputs";
  let n = 2 * bits in
  let order =
    if interleaved then
      Array.init n (fun l -> if l land 1 = 0 then l / 2 else bits + (l / 2))
    else Array.init n (fun l -> l)
  in
  let man = Bdd.create ~order n in
  let a = input man (Array.init bits (fun j -> j)) in
  let b = input man (Array.init bits (fun j -> bits + j)) in
  let sum, carry = add man a b in
  (man, sum, carry)

let total_size man vec = Bdd.shared_size man (Array.to_list vec)

lib/bdd/cbdd.ml: Array Float Hashtbl List Ovo_boolfun

lib/bdd/circuits.mli: Bdd

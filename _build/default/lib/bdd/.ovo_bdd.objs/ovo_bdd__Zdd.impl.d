lib/bdd/zdd.ml: Array Buffer Hashtbl List Ovo_boolfun Ovo_core Printf

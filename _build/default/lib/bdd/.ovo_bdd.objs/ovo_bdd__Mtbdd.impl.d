lib/bdd/mtbdd.ml: Array Buffer Hashtbl Ovo_boolfun Ovo_core Printf

lib/bdd/bdd.mli: Ovo_boolfun Ovo_core

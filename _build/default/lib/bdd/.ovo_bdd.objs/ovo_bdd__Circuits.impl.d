lib/bdd/circuits.ml: Array Bdd Seq

lib/bdd/dynbdd.mli: Ovo_boolfun

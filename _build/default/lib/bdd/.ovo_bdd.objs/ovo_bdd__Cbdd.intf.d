lib/bdd/cbdd.mli: Ovo_boolfun

lib/bdd/zdd.mli: Ovo_boolfun Ovo_core

lib/bdd/mtbdd.mli: Ovo_boolfun Ovo_core

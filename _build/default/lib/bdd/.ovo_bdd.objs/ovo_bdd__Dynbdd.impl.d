lib/bdd/dynbdd.ml: Array Hashtbl List Ovo_boolfun

lib/bdd/bdd.ml: Array Buffer Float Hashtbl List Ovo_boolfun Ovo_core Printf

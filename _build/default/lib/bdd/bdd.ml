(* Node ids: 0 = false, 1 = true, inner nodes from 2 up.  Inner node [u]
   lives at index [u - 2] of the [levels]/[los]/[his] stores.  The level
   of a terminal is [n] (below every variable), which makes the min-level
   cofactoring in [ite] uniform. *)

type man = {
  n : int;
  level_var : int array;  (* level -> variable label *)
  var_level : int array;  (* variable label -> level *)
  mutable levels : int array;
  mutable los : int array;
  mutable his : int array;
  mutable next : int;  (* next free index into the stores *)
  unique : (int * int * int, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
}

type t = int

let create ?order n =
  if n < 0 then invalid_arg "Bdd.create";
  let level_var =
    match order with
    | None -> Array.init n (fun i -> i)
    | Some o ->
        if Array.length o <> n then invalid_arg "Bdd.create: bad order length";
        Array.copy o
  in
  let var_level = Array.make n (-1) in
  Array.iteri
    (fun l v ->
      if v < 0 || v >= n || var_level.(v) >= 0 then
        invalid_arg "Bdd.create: order is not a permutation";
      var_level.(v) <- l)
    level_var;
  {
    n;
    level_var;
    var_level;
    levels = Array.make 64 0;
    los = Array.make 64 0;
    his = Array.make 64 0;
    next = 0;
    unique = Hashtbl.create 256;
    ite_cache = Hashtbl.create 256;
  }

let nvars man = man.n
let order man = Array.copy man.level_var
let node_count man = man.next + 2

let bfalse _man = 0
let btrue _man = 1

let equal (a : t) (b : t) = a = b
let is_false _man t = t = 0
let is_true _man t = t = 1

let level man u = if u < 2 then man.n else man.levels.(u - 2)
let lo man u = man.los.(u - 2)
let hi man u = man.his.(u - 2)

let grow man =
  let cap = Array.length man.levels in
  if man.next >= cap then begin
    let resize a = Array.append a (Array.make cap 0) in
    man.levels <- resize man.levels;
    man.los <- resize man.los;
    man.his <- resize man.his
  end

let mk man lvl l h =
  if l = h then l
  else
    let key = (lvl, l, h) in
    match Hashtbl.find_opt man.unique key with
    | Some u -> u
    | None ->
        grow man;
        let idx = man.next in
        man.next <- idx + 1;
        man.levels.(idx) <- lvl;
        man.los.(idx) <- l;
        man.his.(idx) <- h;
        let u = idx + 2 in
        Hashtbl.add man.unique key u;
        u

let var man v =
  if v < 0 || v >= man.n then invalid_arg "Bdd.var";
  mk man man.var_level.(v) 0 1

let rec ite man f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else
    let key = (f, g, h) in
    match Hashtbl.find_opt man.ite_cache key with
    | Some r -> r
    | None ->
        let m = min (level man f) (min (level man g) (level man h)) in
        let cof u = if level man u = m then (lo man u, hi man u) else (u, u) in
        let f0, f1 = cof f and g0, g1 = cof g and h0, h1 = cof h in
        let r = mk man m (ite man f0 g0 h0) (ite man f1 g1 h1) in
        Hashtbl.add man.ite_cache key r;
        r

let not_ man f = ite man f 0 1
let and_ man a b = ite man a b 0
let or_ man a b = ite man a 1 b
let xor_ man a b = ite man a (not_ man b) b
let imp man a b = ite man a b 1
let iff man a b = ite man a b (not_ man b)

let restrict man t ~var:v b =
  if v < 0 || v >= man.n then invalid_arg "Bdd.restrict";
  let lvl = man.var_level.(v) in
  let memo = Hashtbl.create 64 in
  let rec go u =
    if level man u >= lvl then
      if level man u = lvl then if b then hi man u else lo man u else u
    else
      match Hashtbl.find_opt memo u with
      | Some r -> r
      | None ->
          let r = mk man (level man u) (go (lo man u)) (go (hi man u)) in
          Hashtbl.add memo u r;
          r
  in
  go t

let exists man vars t =
  List.fold_left
    (fun acc v ->
      or_ man (restrict man acc ~var:v false) (restrict man acc ~var:v true))
    t vars

let forall man vars t =
  List.fold_left
    (fun acc v ->
      and_ man (restrict man acc ~var:v false) (restrict man acc ~var:v true))
    t vars

let compose_var man f ~var:v g =
  ite man g (restrict man f ~var:v true) (restrict man f ~var:v false)

let support man t =
  let seen_levels = Hashtbl.create 16 in
  let visited = Hashtbl.create 64 in
  let rec go u =
    if u >= 2 && not (Hashtbl.mem visited u) then begin
      Hashtbl.replace visited u ();
      Hashtbl.replace seen_levels (level man u) ();
      go (lo man u);
      go (hi man u)
    end
  in
  go t;
  Hashtbl.fold (fun l () acc -> man.level_var.(l) :: acc) seen_levels []
  |> List.sort compare

let eval man t code =
  let rec go u =
    if u < 2 then u = 1
    else
      let v = man.level_var.(level man u) in
      if code land (1 lsl v) <> 0 then go (hi man u) else go (lo man u)
  in
  go t

let satcount man t =
  let memo = Hashtbl.create 64 in
  (* weight u = #satisfying assignments of the variables strictly below
     level(u) *)
  let rec weight u =
    if u = 0 then 0.
    else if u = 1 then 1.
    else
      match Hashtbl.find_opt memo u with
      | Some w -> w
      | None ->
          let gap child =
            Float.pow 2. (float_of_int (level man child - level man u - 1))
          in
          let w =
            (weight (lo man u) *. gap (lo man u))
            +. (weight (hi man u) *. gap (hi man u))
          in
          Hashtbl.add memo u w;
          w
  in
  weight t *. Float.pow 2. (float_of_int (level man t))

let sat_one man t =
  if t = 0 then None
  else
    let rec go u acc =
      if u = 1 then Some (List.rev acc)
      else
        let v = man.level_var.(level man u) in
        if lo man u <> 0 then go (lo man u) ((v, false) :: acc)
        else go (hi man u) ((v, true) :: acc)
    in
    go t []

let shared_size man ts =
  let visited = Hashtbl.create 64 in
  let terminals = Hashtbl.create 2 in
  let rec go u =
    if u < 2 then Hashtbl.replace terminals u ()
    else if not (Hashtbl.mem visited u) then begin
      Hashtbl.replace visited u ();
      go (lo man u);
      go (hi man u)
    end
  in
  List.iter go ts;
  Hashtbl.length visited + Hashtbl.length terminals

let size man t = shared_size man [ t ]

let of_truthtable man tt =
  if Ovo_boolfun.Truthtable.arity tt <> man.n then
    invalid_arg "Bdd.of_truthtable: arity mismatch";
  (* permute so that the table's variable [l] is the manager's level [l] *)
  let permuted =
    if man.n = 0 then tt
    else Ovo_boolfun.Truthtable.permute_vars tt man.level_var
  in
  let memo = Hashtbl.create 256 in
  let rec build sub lvl =
    match Ovo_boolfun.Truthtable.is_const sub with
    | Some b -> if b then 1 else 0
    | None -> (
        match Hashtbl.find_opt memo sub with
        | Some u -> u
        | None ->
            let f0, f1 = Ovo_boolfun.Truthtable.cofactors sub 0 in
            let u = mk man lvl (build f0 (lvl + 1)) (build f1 (lvl + 1)) in
            Hashtbl.add memo sub u;
            u)
  in
  build permuted 0

let to_truthtable man t = Ovo_boolfun.Truthtable.of_fun man.n (eval man t)

let of_expr man e =
  let rec go = function
    | Ovo_boolfun.Expr.Const b -> if b then 1 else 0
    | Ovo_boolfun.Expr.Var v -> var man v
    | Ovo_boolfun.Expr.Not a -> not_ man (go a)
    | Ovo_boolfun.Expr.And (a, b) -> and_ man (go a) (go b)
    | Ovo_boolfun.Expr.Or (a, b) -> or_ man (go a) (go b)
    | Ovo_boolfun.Expr.Xor (a, b) -> xor_ man (go a) (go b)
  in
  go e

let import man (d : Ovo_core.Diagram.t) =
  if d.Ovo_core.Diagram.kind <> Ovo_core.Compact.Bdd then
    invalid_arg "Bdd.import: not a BDD diagram";
  if d.Ovo_core.Diagram.num_terminals <> 2 then
    invalid_arg "Bdd.import: not two-terminal";
  if d.Ovo_core.Diagram.n <> man.n then invalid_arg "Bdd.import: arity mismatch";
  let dorder = d.Ovo_core.Diagram.order in
  Array.iteri
    (fun j v ->
      if man.level_var.(man.n - 1 - j) <> v then
        invalid_arg "Bdd.import: ordering mismatch")
    dorder;
  let memo = Hashtbl.create 64 in
  let rec go u =
    if u < d.Ovo_core.Diagram.num_terminals then u
    else
      match Hashtbl.find_opt memo u with
      | Some r -> r
      | None ->
          let nd = d.Ovo_core.Diagram.nodes.(u - d.Ovo_core.Diagram.num_terminals) in
          let r =
            mk man
              man.var_level.(nd.Ovo_core.Diagram.var)
              (go nd.Ovo_core.Diagram.lo)
              (go nd.Ovo_core.Diagram.hi)
          in
          Hashtbl.add memo u r;
          r
  in
  go d.Ovo_core.Diagram.root

let cube_cover man t =
  let rec go u prefix acc =
    if u = 0 then acc
    else if u = 1 then List.rev prefix :: acc
    else
      let v = man.level_var.(level man u) in
      let acc = go (lo man u) ((v, false) :: prefix) acc in
      go (hi man u) ((v, true) :: prefix) acc
  in
  List.rev (go t [] [])

let to_expr man t =
  let cube assignment =
    List.fold_left
      (fun acc (v, b) ->
        let lit =
          if b then Ovo_boolfun.Expr.Var v
          else Ovo_boolfun.Expr.Not (Ovo_boolfun.Expr.Var v)
        in
        match acc with
        | None -> Some lit
        | Some e -> Some (Ovo_boolfun.Expr.And (e, lit)))
      None assignment
  in
  List.fold_left
    (fun acc assignment ->
      let term =
        match cube assignment with
        | Some e -> e
        | None -> Ovo_boolfun.Expr.Const true
      in
      match acc with
      | Ovo_boolfun.Expr.Const false -> term
      | e -> Ovo_boolfun.Expr.Or (e, term))
    (Ovo_boolfun.Expr.Const false)
    (cube_cover man t)

let to_dot man t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph bdd {\n  rankdir=TB;\n";
  let visited = Hashtbl.create 64 in
  let rec go u =
    if not (Hashtbl.mem visited u) then begin
      Hashtbl.replace visited u ();
      if u < 2 then
        Buffer.add_string buf
          (Printf.sprintf "  n%d [shape=box,label=\"%d\"];\n" u u)
      else begin
        Buffer.add_string buf
          (Printf.sprintf "  n%d [shape=circle,label=\"x%d\"];\n" u
             man.level_var.(level man u));
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [style=dashed];\n" u (lo man u));
        Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u (hi man u));
        go (lo man u);
        go (hi man u)
      end
    end
  in
  go t;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** A multi-terminal BDD (MTBDD / ADD) package — decision diagrams with
    integer leaves, the variant the paper's Remark 2 covers ("the
    algorithm FS* works even when the function is multi-valued …
    producing a variant of an OBDD (called an MTBDD) of minimum size").

    Terminals carry arbitrary OCaml [int] values; inner structure and
    reduction are as in {!Bdd} (a node with equal children is elided),
    and the manager hash-conses both.  Arithmetic is provided through a
    generic memoised [apply]. *)

type man
type t

val create : ?order:int array -> int -> man
(** As {!Bdd.create}: [order] is the read-first level-to-variable map. *)

val nvars : man -> int

val terminal : man -> int -> t
(** The constant diagram of a value. *)

val value : man -> t -> int option
(** [Some v] when the diagram is the constant [v]. *)

val equal : t -> t -> bool
(** Canonical semantic equality. *)

val select : man -> int -> t -> t -> t
(** [select man v if_false if_true] tests variable label [v] once. *)

val apply1 : man -> (int -> int) -> t -> t
(** Map a function over the terminals (memoised within the call). *)

val apply2 : man -> (int -> int -> int) -> t -> t -> t
(** Pointwise combination (Bryant's apply; memoised within the call). *)

val add : man -> t -> t -> t
val max_ : man -> t -> t -> t
val min_ : man -> t -> t -> t
(** Common [apply2] instances with a persistent cache. *)

val restrict : man -> t -> var:int -> bool -> t

val eval : man -> t -> int -> int
(** Value on an assignment code. *)

val of_mtable : man -> Ovo_boolfun.Mtable.t -> t
val to_mtable : man -> values:int -> t -> Ovo_boolfun.Mtable.t
(** [values] bounds the terminal alphabet of the output table; raises
    [Invalid_argument] if some leaf falls outside [0..values-1]. *)

val import : man -> Ovo_core.Diagram.t -> t
(** Re-hash-cons a (multi-terminal, BDD-rule) diagram produced by the
    optimiser; terminal id [i] becomes value [i].  Ordering must match. *)

val size : man -> t -> int
(** Reachable nodes, distinct terminals included. *)

val to_dot : man -> t -> string

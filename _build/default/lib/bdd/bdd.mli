(** A from-scratch reduced-ordered-BDD package (unique table, hash-consed
    [mk], memoised [ite]), in the style of Brace–Rudell–Bryant.

    This is the substrate the ordering optimiser serves: once
    [Ovo_core.Fs] (or a heuristic) has produced a good variable ordering,
    a manager created with that ordering represents and manipulates the
    function at the minimum size.

    A manager owns [n] variables.  Levels run from 0 (root side, tested
    first) to [n-1]; the manager's {e ordering} maps level → variable
    label.  All public operations speak in variable labels and assignment
    codes (bit [j] of a code = variable [j]), so client code is
    independent of the ordering in force. *)

type man
(** A mutable manager: unique table, node store, operation caches. *)

type t
(** A BDD handle, valid for the manager that created it. *)

val create : ?order:int array -> int -> man
(** [create n] makes a manager with variables [0..n-1].  [order], when
    given, is the {e read-first} ordering: level [l] tests variable
    [order.(l)] (default identity).  Note this is the reverse of the
    optimiser's read-last-first arrays; convert with
    {!Ovo_core.Eval_order.read_first}. *)

val nvars : man -> int
val order : man -> int array
(** The read-first ordering in force (copy). *)

val node_count : man -> int
(** Total nodes allocated in the manager (a growth diagnostic). *)

val bfalse : man -> t
val btrue : man -> t
val var : man -> int -> t
(** The projection function of a variable label. *)

val equal : t -> t -> bool
(** Constant-time semantic equality (canonicity). *)

val is_false : man -> t -> bool
val is_true : man -> t -> bool

val not_ : man -> t -> t
val and_ : man -> t -> t -> t
val or_ : man -> t -> t -> t
val xor_ : man -> t -> t -> t
val imp : man -> t -> t -> t
val iff : man -> t -> t -> t
val ite : man -> t -> t -> t -> t
(** Boolean connectives; memoised, [O(|f|·|g|·|h|)] worst case. *)

val restrict : man -> t -> var:int -> bool -> t
(** Cofactor by a variable label. *)

val exists : man -> int list -> t -> t
val forall : man -> int list -> t -> t
(** Quantification over variable labels. *)

val compose_var : man -> t -> var:int -> t -> t
(** [compose_var man f ~var g] is [f] with [var] substituted by the
    function [g] (Shannon: [ite g f|var=1 f|var=0]) — the building block
    of relational products and variable renaming. *)

val support : man -> t -> int list
(** Variable labels the function depends on, ascending. *)

val eval : man -> t -> int -> bool
(** Evaluate on an assignment code. *)

val satcount : man -> t -> float
(** Number of satisfying assignments over all [n] variables (float to
    allow [n] beyond 62). *)

val sat_one : man -> t -> (int * bool) list option
(** A satisfying partial assignment [(variable, value)] (variables not
    listed are free), or [None] for the constant-false BDD. *)

val size : man -> t -> int
(** Nodes reachable from the root, terminals included (the
    paper-convention diagram size). *)

val shared_size : man -> t list -> int
(** Nodes reachable from any of the roots, counted once — the size of
    the shared multi-rooted diagram these functions form. *)

val of_truthtable : man -> Ovo_boolfun.Truthtable.t -> t
(** Build the canonical BDD of a function (arity must match). *)

val to_truthtable : man -> t -> Ovo_boolfun.Truthtable.t

val of_expr : man -> Ovo_boolfun.Expr.t -> t
(** Compile a formula bottom-up with the connectives above. *)

val import : man -> Ovo_core.Diagram.t -> t
(** Re-hash-cons a diagram produced by the optimiser into this manager.
    The diagram must be a 2-terminal BDD and its ordering must agree
    with the manager's; raises [Invalid_argument] otherwise. *)

val cube_cover : man -> t -> (int * bool) list list
(** A disjoint cube cover read off the 1-paths of the diagram: each cube
    is a partial assignment [(variable, value)] whose conjunction implies
    the function, the cubes are pairwise disjoint, and their union is
    exactly the on-set.  At most one cube per 1-path, so the cover is
    small whenever the diagram is. *)

val to_expr : man -> t -> Ovo_boolfun.Expr.t
(** The {!cube_cover} as a DNF formula ([Expr.Const false] for the empty
    cover). *)

val to_dot : man -> t -> string
(** Graphviz rendering of the sub-diagram rooted here. *)

(* A handle is [2·node_id lor polarity]; node id 0 is the TRUE terminal,
   so [btrue = 0] and [bfalse = 1].  Inner node ids start at 1; node [u]
   lives at store index [u - 1].  Stored hi edges are always regular. *)

type man = {
  n : int;
  level_var : int array;
  var_level : int array;
  mutable levels : int array;
  mutable los : int array;  (* lo edges (may be complemented) *)
  mutable his : int array;  (* hi edges (always regular) *)
  mutable next : int;
  unique : (int * int * int, int) Hashtbl.t;  (* (level, lo, hi) -> id *)
  ite_cache : (int * int * int, int) Hashtbl.t;
}

type t = int

let create ?order n =
  if n < 0 then invalid_arg "Cbdd.create";
  let level_var =
    match order with
    | None -> Array.init n (fun i -> i)
    | Some o ->
        if Array.length o <> n then invalid_arg "Cbdd.create: bad order";
        Array.copy o
  in
  let var_level = Array.make n (-1) in
  Array.iteri
    (fun l v ->
      if v < 0 || v >= n || var_level.(v) >= 0 then
        invalid_arg "Cbdd.create: order is not a permutation";
      var_level.(v) <- l)
    level_var;
  {
    n;
    level_var;
    var_level;
    levels = Array.make 64 0;
    los = Array.make 64 0;
    his = Array.make 64 0;
    next = 0;
    unique = Hashtbl.create 256;
    ite_cache = Hashtbl.create 256;
  }

let nvars man = man.n

let btrue _man = 0
let bfalse _man = 1

let equal (a : t) (b : t) = a = b

let node_of handle = handle lsr 1
let polarity handle = handle land 1
let complement handle = handle lxor 1

let not_ _man t = complement t

let level man e =
  let u = node_of e in
  if u = 0 then man.n else man.levels.(u - 1)

(* children with the edge's polarity pushed down *)
let cofactors man e =
  let u = node_of e and c = polarity e in
  (man.los.(u - 1) lxor c, man.his.(u - 1) lxor c)

let grow man =
  let cap = Array.length man.levels in
  if man.next >= cap then begin
    let resize a = Array.append a (Array.make cap 0) in
    man.levels <- resize man.levels;
    man.los <- resize man.los;
    man.his <- resize man.his
  end

let rec mk man lvl l h =
  if l = h then l
  else if polarity h = 1 then complement (mk man lvl (complement l) (complement h))
  else
    let key = (lvl, l, h) in
    match Hashtbl.find_opt man.unique key with
    | Some u -> u lsl 1
    | None ->
        grow man;
        let idx = man.next in
        man.next <- idx + 1;
        man.levels.(idx) <- lvl;
        man.los.(idx) <- l;
        man.his.(idx) <- h;
        let u = idx + 1 in
        Hashtbl.add man.unique key u;
        u lsl 1

let var man v =
  if v < 0 || v >= man.n then invalid_arg "Cbdd.var";
  (* hi = TRUE (regular), lo = FALSE *)
  mk man man.var_level.(v) 1 0

let rec ite man f g h =
  if f = 0 then g
  else if f = 1 then h
  else if g = h then g
  else if g = 0 && h = 1 then f
  else if g = 1 && h = 0 then complement f
  else begin
    (* normalise: the test is regular *)
    let f, g, h = if polarity f = 1 then (complement f, h, g) else (f, g, h) in
    (* normalise: the then-branch is regular, pulling the complement out *)
    let negate_out = polarity g = 1 in
    let g, h = if negate_out then (complement g, complement h) else (g, h) in
    let key = (f, g, h) in
    let result =
      match Hashtbl.find_opt man.ite_cache key with
      | Some r -> r
      | None ->
          let m = min (level man f) (min (level man g) (level man h)) in
          let cof e = if level man e = m then cofactors man e else (e, e) in
          let f0, f1 = cof f and g0, g1 = cof g and h0, h1 = cof h in
          let r = mk man m (ite man f0 g0 h0) (ite man f1 g1 h1) in
          Hashtbl.add man.ite_cache key r;
          r
    in
    if negate_out then complement result else result
  end

let and_ man a b = ite man a b 1
let or_ man a b = ite man a 0 b
let xor_ man a b = ite man a (complement b) b

let restrict man t ~var:v b =
  if v < 0 || v >= man.n then invalid_arg "Cbdd.restrict";
  let lvl = man.var_level.(v) in
  let memo = Hashtbl.create 64 in
  (* operate on the regular form, reapplying the polarity at the end of
     each step so the memo stays small *)
  let rec go e =
    if level man e > lvl then e
    else if level man e = lvl then
      let lo, hi = cofactors man e in
      if b then hi else lo
    else
      let u = node_of e and c = polarity e in
      let r =
        match Hashtbl.find_opt memo u with
        | Some r -> r
        | None ->
            let r =
              mk man (level man e)
                (go man.los.(u - 1))
                (go man.his.(u - 1))
            in
            Hashtbl.add memo u r;
            r
      in
      r lxor c
  in
  go t

let exists man vars t =
  List.fold_left
    (fun acc v ->
      or_ man (restrict man acc ~var:v false) (restrict man acc ~var:v true))
    t vars

let forall man vars t =
  List.fold_left
    (fun acc v ->
      and_ man (restrict man acc ~var:v false) (restrict man acc ~var:v true))
    t vars

let support man t =
  let seen_levels = Hashtbl.create 16 in
  let visited = Hashtbl.create 64 in
  let rec go u =
    if u <> 0 && not (Hashtbl.mem visited u) then begin
      Hashtbl.replace visited u ();
      Hashtbl.replace seen_levels man.levels.(u - 1) ();
      go (node_of man.los.(u - 1));
      go (node_of man.his.(u - 1))
    end
  in
  go (node_of t);
  Hashtbl.fold (fun l () acc -> man.level_var.(l) :: acc) seen_levels []
  |> List.sort compare

let eval man t code =
  let rec go e =
    if node_of e = 0 then polarity e = 0
    else
      let v = man.level_var.(level man e) in
      let lo, hi = cofactors man e in
      if code land (1 lsl v) <> 0 then go hi else go lo
  in
  go t

let of_truthtable man tt =
  if Ovo_boolfun.Truthtable.arity tt <> man.n then
    invalid_arg "Cbdd.of_truthtable: arity mismatch";
  let permuted =
    if man.n = 0 then tt
    else Ovo_boolfun.Truthtable.permute_vars tt man.level_var
  in
  let memo = Hashtbl.create 256 in
  let rec build sub lvl =
    match Ovo_boolfun.Truthtable.is_const sub with
    | Some b -> if b then 0 else 1
    | None -> (
        match Hashtbl.find_opt memo sub with
        | Some e -> e
        | None ->
            let f0, f1 = Ovo_boolfun.Truthtable.cofactors sub 0 in
            let e = mk man lvl (build f0 (lvl + 1)) (build f1 (lvl + 1)) in
            Hashtbl.add memo sub e;
            e)
  in
  build permuted 0

let to_truthtable man t = Ovo_boolfun.Truthtable.of_fun man.n (eval man t)

let satcount man t =
  let memo = Hashtbl.create 64 in
  (* weight of a REGULAR edge over the variables strictly below its
     level; complemented edges are handled by the caller's subtraction *)
  let rec weight e =
    let u = node_of e in
    let base =
      if u = 0 then 1.
      else
        match Hashtbl.find_opt memo u with
        | Some w -> w
        | None ->
            let lo = man.los.(u - 1) and hi = man.his.(u - 1) in
            let below child =
              Float.pow 2. (float_of_int (level man child - level man e - 1))
            in
            let part child =
              let w = weight (child land lnot 1) *. below child in
              if polarity child = 1 then
                Float.pow 2. (float_of_int (man.n - 1 - level man e)) -. w
              else w
            in
            let w = part lo +. part hi in
            Hashtbl.add memo u w;
            w
    in
    base
  in
  let total = Float.pow 2. (float_of_int man.n) in
  let w =
    weight (t land lnot 1) *. Float.pow 2. (float_of_int (level man t))
  in
  if polarity t = 1 then total -. w else w

let size man t =
  let visited = Hashtbl.create 64 in
  let rec go e =
    let u = node_of e in
    if not (Hashtbl.mem visited u) then begin
      Hashtbl.replace visited u ();
      if u <> 0 then begin
        go man.los.(u - 1);
        go man.his.(u - 1)
      end
    end
  in
  go t;
  Hashtbl.length visited

let node_count man = man.next + 1

(* Ids: 0 = false, 1 = true; inner node [u] at store index [u - 2].
   Unlike Bdd, node contents are mutable (swaps rewrite them) and the
   unique tables are per level, keyed by (lo, hi). *)

type man = {
  n : int;
  mutable level_var : int array;
  mutable var_level : int array;
  mutable levels : int array;
  mutable los : int array;
  mutable his : int array;
  mutable next : int;
  unique : (int * int, int) Hashtbl.t array;  (* one table per level *)
  ite_cache : (int * int * int, int) Hashtbl.t;
  mutable roots : int list;
}

type t = int

let create ?order n =
  if n < 0 then invalid_arg "Dynbdd.create";
  let level_var =
    match order with
    | None -> Array.init n (fun i -> i)
    | Some o ->
        if Array.length o <> n then invalid_arg "Dynbdd.create: bad order";
        Array.copy o
  in
  let var_level = Array.make n (-1) in
  Array.iteri
    (fun l v ->
      if v < 0 || v >= n || var_level.(v) >= 0 then
        invalid_arg "Dynbdd.create: order is not a permutation";
      var_level.(v) <- l)
    level_var;
  {
    n;
    level_var;
    var_level;
    levels = Array.make 64 0;
    los = Array.make 64 0;
    his = Array.make 64 0;
    next = 0;
    unique = Array.init (max n 1) (fun _ -> Hashtbl.create 64);
    ite_cache = Hashtbl.create 256;
    roots = [];
  }

let nvars man = man.n
let order man = Array.copy man.level_var

let bfalse _man = 0
let btrue _man = 1
let equal (a : t) (b : t) = a = b

let level man u = if u < 2 then man.n else man.levels.(u - 2)
let lo man u = man.los.(u - 2)
let hi man u = man.his.(u - 2)

let grow man =
  let cap = Array.length man.levels in
  if man.next >= cap then begin
    let resize a = Array.append a (Array.make cap 0) in
    man.levels <- resize man.levels;
    man.los <- resize man.los;
    man.his <- resize man.his
  end

let mk man lvl l h =
  if l = h then l
  else
    match Hashtbl.find_opt man.unique.(lvl) (l, h) with
    | Some u -> u
    | None ->
        grow man;
        let idx = man.next in
        man.next <- idx + 1;
        man.levels.(idx) <- lvl;
        man.los.(idx) <- l;
        man.his.(idx) <- h;
        let u = idx + 2 in
        Hashtbl.add man.unique.(lvl) (l, h) u;
        u

let var man v =
  if v < 0 || v >= man.n then invalid_arg "Dynbdd.var";
  mk man man.var_level.(v) 0 1

(* The ite cache survives reordering because ids keep their functions;
   see the interface comment. *)
let rec ite man f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else
    let key = (f, g, h) in
    match Hashtbl.find_opt man.ite_cache key with
    | Some r -> r
    | None ->
        let m = min (level man f) (min (level man g) (level man h)) in
        let cof u = if level man u = m then (lo man u, hi man u) else (u, u) in
        let f0, f1 = cof f and g0, g1 = cof g and h0, h1 = cof h in
        let r = mk man m (ite man f0 g0 h0) (ite man f1 g1 h1) in
        Hashtbl.add man.ite_cache key r;
        r

let not_ man f = ite man f 0 1
let and_ man a b = ite man a b 0
let or_ man a b = ite man a 1 b
let xor_ man a b = ite man a (not_ man b) b

let of_truthtable man tt =
  if Ovo_boolfun.Truthtable.arity tt <> man.n then
    invalid_arg "Dynbdd.of_truthtable: arity mismatch";
  let permuted =
    if man.n = 0 then tt
    else Ovo_boolfun.Truthtable.permute_vars tt man.level_var
  in
  let memo = Hashtbl.create 256 in
  let rec build sub lvl =
    match Ovo_boolfun.Truthtable.is_const sub with
    | Some b -> if b then 1 else 0
    | None -> (
        match Hashtbl.find_opt memo sub with
        | Some u -> u
        | None ->
            let f0, f1 = Ovo_boolfun.Truthtable.cofactors sub 0 in
            let u = mk man lvl (build f0 (lvl + 1)) (build f1 (lvl + 1)) in
            Hashtbl.add memo sub u;
            u)
  in
  build permuted 0

let eval man t code =
  let rec go u =
    if u < 2 then u = 1
    else
      let v = man.level_var.(level man u) in
      if code land (1 lsl v) <> 0 then go (hi man u) else go (lo man u)
  in
  go t

let to_truthtable man t = Ovo_boolfun.Truthtable.of_fun man.n (eval man t)

let protect man t = if not (List.mem t man.roots) then man.roots <- t :: man.roots

let protected man = man.roots

let live_size man =
  let visited = Hashtbl.create 256 in
  let terminals = Hashtbl.create 2 in
  let rec go u =
    if u < 2 then Hashtbl.replace terminals u ()
    else if not (Hashtbl.mem visited u) then begin
      Hashtbl.replace visited u ();
      go (lo man u);
      go (hi man u)
    end
  in
  List.iter go man.roots;
  Hashtbl.length visited + Hashtbl.length terminals

(* Adjacent-level swap.  Writing x for the variable at level [l] and y
   for the one at [l+1] (pre-swap):

   - level-[l] nodes not pointing into level [l+1] ("independent of y")
     move down to level [l+1] unchanged;
   - all old level-[l+1] nodes move up to level [l] unchanged (those
     only reachable through rewritten nodes become garbage, which is
     harmless);
   - each remaining level-[l] node u = x ? f1 : f0 is rewritten in place
     to test y first: u := y ? mk(x ? f11 : f01) : mk(x ? f10 : f00).

   Every id keeps its function, so by canonicity no two rebuilt keys can
   collide (asserted). *)
let swap_levels man l =
  if l < 0 || l + 1 >= man.n then invalid_arg "Dynbdd.swap_levels";
  let top = Hashtbl.fold (fun _ u acc -> u :: acc) man.unique.(l) [] in
  let bottom_tbl = man.unique.(l + 1) in
  let bottom = Hashtbl.fold (fun _ u acc -> u :: acc) bottom_tbl [] in
  let in_bottom = Hashtbl.create (List.length bottom) in
  List.iter (fun u -> Hashtbl.replace in_bottom u ()) bottom;
  man.unique.(l) <- Hashtbl.create (List.length top);
  man.unique.(l + 1) <- Hashtbl.create (List.length bottom);
  let add lvl u =
    let key = (lo man u, hi man u) in
    assert (not (Hashtbl.mem man.unique.(lvl) key));
    man.levels.(u - 2) <- lvl;
    Hashtbl.add man.unique.(lvl) key u
  in
  (* old bottom nodes rise to level l *)
  List.iter (add l) bottom;
  (* independent top nodes sink to level l+1; they must be in the table
     before the rewrites below call mk at that level *)
  let dependent, independent =
    List.partition
      (fun u ->
        Hashtbl.mem in_bottom (lo man u) || Hashtbl.mem in_bottom (hi man u))
      top
  in
  List.iter (add (l + 1)) independent;
  List.iter
    (fun u ->
      let f0 = lo man u and f1 = hi man u in
      let cof f =
        if Hashtbl.mem in_bottom f then (lo man f, hi man f) else (f, f)
      in
      let f00, f01 = cof f0 and f10, f11 = cof f1 in
      let new_lo = mk man (l + 1) f00 f10 in
      let new_hi = mk man (l + 1) f01 f11 in
      assert (new_lo <> new_hi);
      man.los.(u - 2) <- new_lo;
      man.his.(u - 2) <- new_hi;
      add l u)
    dependent;
  let x = man.level_var.(l) and y = man.level_var.(l + 1) in
  man.level_var.(l) <- y;
  man.level_var.(l + 1) <- x;
  man.var_level.(x) <- l + 1;
  man.var_level.(y) <- l

(* Move the variable currently at [from] to position [target] by
   adjacent swaps. *)
let move_level man ~from ~target =
  if from < target then
    for l = from to target - 1 do
      swap_levels man l
    done
  else
    for l = from - 1 downto target do
      swap_levels man l
    done

(* Mark-and-sweep over the unique tables.  Ids stay stable (the stores
   are not compacted), so every handle under a protected root remains
   valid; dead nodes merely become unfindable, which keeps the per-level
   tables — the dominant cost of swaps — proportional to the live size.
   A dead handle must not be used afterwards: an equivalent node may be
   re-created under a fresh id, and comparing the two would wrongly
   report inequality. *)
let compress man =
  let live = Hashtbl.create 256 in
  let rec mark u =
    if u >= 2 && not (Hashtbl.mem live u) then begin
      Hashtbl.replace live u ();
      mark (lo man u);
      mark (hi man u)
    end
  in
  List.iter mark man.roots;
  Array.iteri
    (fun lvl tbl ->
      let dead =
        Hashtbl.fold
          (fun key u acc -> if Hashtbl.mem live u then acc else key :: acc)
          tbl []
      in
      List.iter (Hashtbl.remove man.unique.(lvl)) dead)
    man.unique;
  (* operation-cache entries may reference dead nodes; results must not
     resurrect them through the unique tables, so drop the cache *)
  Hashtbl.reset man.ite_cache

let sift ?(max_passes = 4) man =
  if man.n > 1 && man.roots <> [] then begin
    let improved = ref true and passes = ref 0 in
    while !improved && !passes < max_passes do
      incr passes;
      improved := false;
      (* fattest variables first: count live nodes per level *)
      let live_per_level () =
        let counts = Array.make man.n 0 in
        let visited = Hashtbl.create 256 in
        let rec go u =
          if u >= 2 && not (Hashtbl.mem visited u) then begin
            Hashtbl.replace visited u ();
            counts.(level man u) <- counts.(level man u) + 1;
            go (lo man u);
            go (hi man u)
          end
        in
        List.iter go man.roots;
        counts
      in
      let counts = live_per_level () in
      let schedule =
        List.sort
          (fun (_, c1) (_, c2) -> compare c2 c1)
          (List.init man.n (fun l -> (man.level_var.(l), counts.(l))))
      in
      List.iter
        (fun (v, _) ->
          let start_size = live_size man in
          let best_size = ref start_size in
          let best_pos = ref man.var_level.(v) in
          (* walk v down to the bottom, then up to the top, tracking the
             best position seen *)
          let probe () =
            let s = live_size man in
            if s < !best_size then begin
              best_size := s;
              best_pos := man.var_level.(v)
            end
          in
          while man.var_level.(v) < man.n - 1 do
            swap_levels man man.var_level.(v);
            probe ()
          done;
          while man.var_level.(v) > 0 do
            swap_levels man (man.var_level.(v) - 1);
            probe ()
          done;
          move_level man ~from:man.var_level.(v) ~target:!best_pos;
          (* the walk leaves dead nodes in the level tables; collecting
             them keeps every later swap proportional to the live size *)
          compress man;
          if !best_size < start_size then improved := true)
        schedule
    done
  end

let set_order man target =
  if Array.length target <> man.n then invalid_arg "Dynbdd.set_order";
  let seen = Array.make man.n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= man.n || seen.(v) then
        invalid_arg "Dynbdd.set_order: not a permutation";
      seen.(v) <- true)
    target;
  for l = 0 to man.n - 1 do
    (* bring target.(l) to level l *)
    let v = target.(l) in
    move_level man ~from:man.var_level.(v) ~target:l
  done

let allocated man = man.next + 2

let check_invariants man =
  let ok = ref true in
  (* level_var/var_level mutually inverse *)
  Array.iteri (fun l v -> if man.var_level.(v) <> l then ok := false) man.level_var;
  (* unique tables point at nodes of their level with matching keys, and
     children sit strictly below *)
  Array.iteri
    (fun lvl tbl ->
      Hashtbl.iter
        (fun (l, h) u ->
          if level man u <> lvl then ok := false;
          if lo man u <> l || hi man u <> h then ok := false;
          if l = h then ok := false;
          if level man l <= lvl || level man h <= lvl then ok := false)
        tbl)
    man.unique;
  (* no duplicate (level, lo, hi) among live nodes *)
  let seen = Hashtbl.create 256 in
  let visited = Hashtbl.create 256 in
  let rec go u =
    if u >= 2 && not (Hashtbl.mem visited u) then begin
      Hashtbl.replace visited u ();
      let key = (level man u, lo man u, hi man u) in
      if Hashtbl.mem seen key then ok := false;
      Hashtbl.replace seen key ();
      go (lo man u);
      go (hi man u)
    end
  in
  List.iter go man.roots;
  !ok

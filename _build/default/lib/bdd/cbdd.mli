(** A BDD manager with {e complement edges} — the representation used by
    production packages (CUDD, BuDDy): an edge carries a polarity bit, a
    function and its negation share one sub-graph, and negation costs
    O(1).

    Canonical form: the {e hi} (then) edge of every stored node is
    regular; a [mk] whose hi edge is complemented stores the negated
    node and returns a complemented handle.  There is a single terminal
    (TRUE); FALSE is its complement.  Consequently [size] counts at most
    half the nodes of the plain {!Bdd} representation on
    negation-symmetric functions (parity being the extreme case), which
    the tests quantify.

    Note the size convention differs from the paper's (which counts the
    two-terminal, no-complement form); this manager is provided as the
    practical representation, not as the optimiser's metric. *)

type man
type t

val create : ?order:int array -> int -> man
(** As {!Bdd.create}. *)

val nvars : man -> int

val btrue : man -> t
val bfalse : man -> t
val var : man -> int -> t

val equal : t -> t -> bool
(** Constant-time semantic equality. *)

val not_ : man -> t -> t
(** Constant time: flips the polarity bit. *)

val ite : man -> t -> t -> t -> t
val and_ : man -> t -> t -> t
val or_ : man -> t -> t -> t
val xor_ : man -> t -> t -> t

val restrict : man -> t -> var:int -> bool -> t
(** Cofactor by a variable label. *)

val exists : man -> int list -> t -> t
val forall : man -> int list -> t -> t
(** Quantification over variable labels. *)

val support : man -> t -> int list
(** Variable labels the function depends on, ascending. *)

val eval : man -> t -> int -> bool

val of_truthtable : man -> Ovo_boolfun.Truthtable.t -> t
val to_truthtable : man -> t -> Ovo_boolfun.Truthtable.t

val satcount : man -> t -> float

val size : man -> t -> int
(** Distinct nodes reachable through either polarity, plus the terminal. *)

val node_count : man -> int
(** Total nodes allocated in the manager. *)

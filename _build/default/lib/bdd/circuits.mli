(** Word-level circuits over BDDs: vectors of functions representing
    unsigned integers, LSB first.

    This is the layer VLSI verification actually works at — adders,
    multipliers, comparators built by symbolic simulation — and it
    produces the classic ordering-sensitive functions (interleaved
    operand orderings keep adders linear; no ordering saves a
    multiplier's middle bits).  All operations are pure BDD [apply]
    compositions inside one manager. *)

type vec = Bdd.t array
(** Bit [0] is least significant. *)

val constant : Bdd.man -> width:int -> int -> vec
(** [constant man ~width v] encodes [v land (2^width - 1)]. *)

val input : Bdd.man -> int array -> vec
(** [input man vars] is the vector of projections of the given variable
    labels ([vars.(0)] the LSB). *)

val eval_int : Bdd.man -> vec -> int -> int
(** Value of the vector under an assignment code. *)

val add : Bdd.man -> vec -> vec -> vec * Bdd.t
(** Ripple-carry sum of two equal-width vectors: [(sum, carry_out)]. *)

val multiply : Bdd.man -> vec -> vec -> vec
(** Shift-and-add product; the result has width [w_a + w_b]. *)

val equal_vec : Bdd.man -> vec -> vec -> Bdd.t
(** Bitwise equality of equal-width vectors. *)

val less_than : Bdd.man -> vec -> vec -> Bdd.t
(** Unsigned [a < b] for equal-width vectors. *)

val adder_outputs : bits:int -> interleaved:bool -> Bdd.man * vec * Bdd.t
(** A fresh manager holding an [bits]-wide adder over inputs
    [a = x0..] and [b = x_bits..]: with [interleaved] the manager order
    alternates operand bits (the good ordering); otherwise it is blocked
    (the bad one).  Returns [(manager, sum_vector, carry_out)]. *)

val total_size : Bdd.man -> vec -> int
(** Nodes reachable from any bit of the vector (shared nodes counted
    once), terminals included. *)

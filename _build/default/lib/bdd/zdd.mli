(** A from-scratch ZDD (zero-suppressed BDD) package — Minato's structure
    for families of sets, the variant the paper's Remark 2 minimises.

    A manager owns element labels [0..n-1]; a ZDD represents a family of
    subsets of them.  Node convention: the root carries the smallest
    element, a node's [hi] child holds the sets containing its element,
    and the zero-suppression rule ([hi] = empty family ⇒ node elided)
    keeps sparse families compact.  The usual family algebra is provided
    (union, intersection, difference, join, cofactors, counting). *)

type man
type t

val create : ?order:int array -> int -> man
(** Manager for element labels [0..n-1].  [order], when given, is the
    read-first element ordering: the root level tests [order.(0)]
    (default identity).  Orderings from the exact optimiser convert with
    [Ovo_core.Eval_order.read_first]. *)

val order : man -> int array
(** The read-first ordering in force (copy). *)

val nelems : man -> int

val empty : man -> t
(** The empty family [∅]. *)

val base : man -> t
(** The family [{∅}] containing just the empty set. *)

val singleton : man -> int list -> t
(** [{S}] for one set of element labels. *)

val of_family : man -> int list list -> t
(** The family containing exactly the given sets (duplicates merge). *)

val to_family : man -> t -> int list list
(** All member sets, each sorted ascending, in lexicographic order. *)

val equal : t -> t -> bool
(** Canonical: constant-time semantic equality. *)

val union : man -> t -> t -> t
val inter : man -> t -> t -> t
val diff : man -> t -> t -> t

val join : man -> t -> t -> t
(** [{a ∪ b : a ∈ F, b ∈ G}] — Minato's product. *)

val change : man -> t -> int -> t
(** Toggle an element's membership in every set of the family. *)

val subset0 : man -> t -> int -> t
(** Sets not containing the element (element removed from the universe
    view, as in the standard operation). *)

val subset1 : man -> t -> int -> t
(** Sets containing the element, with the element removed. *)

val count : man -> t -> float
(** Number of member sets. *)

val count_by_size : man -> t -> float array
(** [count_by_size man t].(k) = number of member sets of cardinality
    [k]; length [nelems man + 1].  The family's size generating
    function, evaluated without enumeration. *)

val mem : man -> t -> int list -> bool
(** Membership of one set. *)

val size : man -> t -> int
(** Reachable nodes, terminals included. *)

val node_count : man -> int

val import : man -> Ovo_core.Diagram.t -> t
(** Re-hash-cons a ZDD-rule diagram produced by the optimiser into this
    manager (two terminals; ordering must agree). *)

val meet : man -> t -> t -> t
(** [{a ∩ b : a ∈ F, b ∈ G}] — the dual of {!join} (Knuth's [meet]). *)

val maximal : man -> t -> t
(** The sets of the family not strictly contained in another member. *)

val minimal : man -> t -> t
(** The sets of the family not strictly containing another member. *)

val of_truthtable : man -> Ovo_boolfun.Truthtable.t -> t
(** Characteristic-function view: the family of the sets whose
    characteristic vectors satisfy the function. *)

val to_truthtable : man -> t -> Ovo_boolfun.Truthtable.t

val to_dot : man -> t -> string

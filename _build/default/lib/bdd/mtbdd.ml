(* Ids are indices into the node store.  A node is either [Leaf v] or
   [Node (level, lo, hi)]; both are hash-consed, so ids are canonical. *)

type node = Leaf of int | Node of int * int * int

type man = {
  n : int;
  level_var : int array;
  var_level : int array;
  mutable nodes : node array;
  mutable next : int;
  unique : (node, int) Hashtbl.t;
  add_cache : (int * int, int) Hashtbl.t;
  max_cache : (int * int, int) Hashtbl.t;
  min_cache : (int * int, int) Hashtbl.t;
}

type t = int

let create ?order n =
  if n < 0 then invalid_arg "Mtbdd.create";
  let level_var =
    match order with
    | None -> Array.init n (fun i -> i)
    | Some o ->
        if Array.length o <> n then invalid_arg "Mtbdd.create: bad order";
        Array.copy o
  in
  let var_level = Array.make n (-1) in
  Array.iteri
    (fun l v ->
      if v < 0 || v >= n || var_level.(v) >= 0 then
        invalid_arg "Mtbdd.create: order not a permutation";
      var_level.(v) <- l)
    level_var;
  {
    n;
    level_var;
    var_level;
    nodes = Array.make 64 (Leaf 0);
    next = 0;
    unique = Hashtbl.create 256;
    add_cache = Hashtbl.create 64;
    max_cache = Hashtbl.create 64;
    min_cache = Hashtbl.create 64;
  }

let nvars man = man.n

let intern man node =
  match Hashtbl.find_opt man.unique node with
  | Some u -> u
  | None ->
      if man.next >= Array.length man.nodes then
        man.nodes <- Array.append man.nodes (Array.make (Array.length man.nodes) (Leaf 0));
      let u = man.next in
      man.next <- u + 1;
      man.nodes.(u) <- node;
      Hashtbl.add man.unique node u;
      u

let terminal man v = intern man (Leaf v)

let node_of man u = man.nodes.(u)

let value man u = match node_of man u with Leaf v -> Some v | Node _ -> None

let equal (a : t) (b : t) = a = b

let level man u =
  match node_of man u with Leaf _ -> man.n | Node (l, _, _) -> l

let mk man lvl l h = if l = h then l else intern man (Node (lvl, l, h))

let select man v if_false if_true =
  if v < 0 || v >= man.n then invalid_arg "Mtbdd.select";
  mk man man.var_level.(v) if_false if_true

let apply1 man f t =
  let memo = Hashtbl.create 64 in
  let rec go u =
    match Hashtbl.find_opt memo u with
    | Some r -> r
    | None ->
        let r =
          match node_of man u with
          | Leaf v -> terminal man (f v)
          | Node (l, lo, hi) -> mk man l (go lo) (go hi)
        in
        Hashtbl.add memo u r;
        r
  in
  go t

let apply2_with man cache f a b =
  let rec go a b =
    match (node_of man a, node_of man b) with
    | Leaf va, Leaf vb -> terminal man (f va vb)
    | _ -> (
        let key = (a, b) in
        match Hashtbl.find_opt cache key with
        | Some r -> r
        | None ->
            let la = level man a and lb = level man b in
            let m = min la lb in
            let cof u lu =
              if lu = m then
                match node_of man u with
                | Node (_, lo, hi) -> (lo, hi)
                | Leaf _ -> (u, u)
              else (u, u)
            in
            let a0, a1 = cof a la and b0, b1 = cof b lb in
            let r = mk man m (go a0 b0) (go a1 b1) in
            Hashtbl.add cache key r;
            r)
  in
  go a b

let apply2 man f a b = apply2_with man (Hashtbl.create 64) f a b

let add man a b = apply2_with man man.add_cache ( + ) a b
let max_ man a b = apply2_with man man.max_cache max a b
let min_ man a b = apply2_with man man.min_cache min a b

let restrict man t ~var:v b =
  if v < 0 || v >= man.n then invalid_arg "Mtbdd.restrict";
  let lvl = man.var_level.(v) in
  let memo = Hashtbl.create 64 in
  let rec go u =
    if level man u >= lvl then
      if level man u = lvl then begin
        match node_of man u with
        | Node (_, lo, hi) -> if b then hi else lo
        | Leaf _ -> u
      end
      else u
    else
      match Hashtbl.find_opt memo u with
      | Some r -> r
      | None ->
          let r =
            match node_of man u with
            | Leaf _ -> u
            | Node (l, lo, hi) -> mk man l (go lo) (go hi)
          in
          Hashtbl.add memo u r;
          r
  in
  go t

let eval man t code =
  let rec go u =
    match node_of man u with
    | Leaf v -> v
    | Node (l, lo, hi) ->
        let v = man.level_var.(l) in
        if code land (1 lsl v) <> 0 then go hi else go lo
  in
  go t

let of_mtable man mt =
  if Ovo_boolfun.Mtable.arity mt <> man.n then
    invalid_arg "Mtbdd.of_mtable: arity mismatch";
  (* split on the manager's level order directly via code reconstruction *)
  let rec build lvl partial =
    if lvl = man.n then terminal man (Ovo_boolfun.Mtable.eval mt partial)
    else
      let v = man.level_var.(lvl) in
      let lo = build (lvl + 1) partial in
      let hi = build (lvl + 1) (partial lor (1 lsl v)) in
      mk man lvl lo hi
  in
  build 0 0

let to_mtable man ~values t =
  Ovo_boolfun.Mtable.of_fun man.n ~values (eval man t)

let import man (d : Ovo_core.Diagram.t) =
  if d.Ovo_core.Diagram.kind <> Ovo_core.Compact.Bdd then
    invalid_arg "Mtbdd.import: ZDD-rule diagram";
  if d.Ovo_core.Diagram.n <> man.n then invalid_arg "Mtbdd.import: arity mismatch";
  Array.iteri
    (fun j v ->
      if man.level_var.(man.n - 1 - j) <> v then
        invalid_arg "Mtbdd.import: ordering mismatch")
    d.Ovo_core.Diagram.order;
  let memo = Hashtbl.create 64 in
  let rec go u =
    if u < d.Ovo_core.Diagram.num_terminals then terminal man u
    else
      match Hashtbl.find_opt memo u with
      | Some r -> r
      | None ->
          let nd = d.Ovo_core.Diagram.nodes.(u - d.Ovo_core.Diagram.num_terminals) in
          let r =
            mk man
              man.var_level.(nd.Ovo_core.Diagram.var)
              (go nd.Ovo_core.Diagram.lo)
              (go nd.Ovo_core.Diagram.hi)
          in
          Hashtbl.add memo u r;
          r
  in
  go d.Ovo_core.Diagram.root

let size man t =
  let visited = Hashtbl.create 64 in
  let rec go u =
    if not (Hashtbl.mem visited u) then begin
      Hashtbl.replace visited u ();
      match node_of man u with
      | Leaf _ -> ()
      | Node (_, lo, hi) ->
          go lo;
          go hi
    end
  in
  go t;
  Hashtbl.length visited

let to_dot man t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph mtbdd {\n  rankdir=TB;\n";
  let visited = Hashtbl.create 64 in
  let rec go u =
    if not (Hashtbl.mem visited u) then begin
      Hashtbl.replace visited u ();
      match node_of man u with
      | Leaf v ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d [shape=box,label=\"%d\"];\n" u v)
      | Node (l, lo, hi) ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d [shape=circle,label=\"x%d\"];\n" u
               man.level_var.(l));
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [style=dashed];\n" u lo);
          Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u hi);
          go lo;
          go hi
    end
  in
  go t;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** A BDD manager with {e dynamic reordering}: adjacent level swaps in
    place, and Rudell sifting over the live graph.

    {!Bdd} fixes its ordering at creation; real packages (CUDD, BuDDy)
    reorder a populated manager without rebuilding client handles.  This
    manager provides that: {!swap_levels} exchanges two adjacent levels
    by local node surgery, and {!sift} runs the classical sifting loop
    (move each variable through all positions by swaps, keep the best)
    over the protected roots.

    The crucial invariant making in-place swaps sound: a swap preserves
    the {e function} of every node id — updated level-[l] nodes keep
    their ids with rewritten children; nodes of both levels that do not
    interact move between the levels unchanged.  Distinct live nodes
    always represent distinct functions (canonicity), so the rebuilt
    unique tables cannot collide, client handles stay valid, and even
    memoised operation caches survive (they relate ids, and ids keep
    their functions).

    Handles are only as alive as the nodes they reach: {!protect} roots
    you intend to keep across reorderings so {!sift} can measure what
    matters.  Dead nodes are left as garbage (no reference counting);
    {!live_size} reports the reachable count. *)

type man
type t

val create : ?order:int array -> int -> man
(** As {!Bdd.create}; [order] is the initial read-first ordering. *)

val nvars : man -> int

val order : man -> int array
(** Current read-first ordering (changes under swaps/sifting). *)

val bfalse : man -> t
val btrue : man -> t
val var : man -> int -> t
(** Projection of a variable label (valid under any current order). *)

val equal : t -> t -> bool

val ite : man -> t -> t -> t -> t
val and_ : man -> t -> t -> t
val or_ : man -> t -> t -> t
val xor_ : man -> t -> t -> t
val not_ : man -> t -> t

val of_truthtable : man -> Ovo_boolfun.Truthtable.t -> t
(** Builds under the ordering in force at call time. *)

val to_truthtable : man -> t -> Ovo_boolfun.Truthtable.t
(** Label-indexed semantics — invariant under reordering. *)

val eval : man -> t -> int -> bool

val protect : man -> t -> unit
(** Register a root for sifting/size accounting (idempotent). *)

val protected : man -> t list

val live_size : man -> int
(** Nodes reachable from the protected roots, terminals included. *)

val swap_levels : man -> int -> unit
(** [swap_levels man l] exchanges levels [l] and [l+1] in place;
    raises [Invalid_argument] when [l+1] is out of range.  All handles
    keep their functions. *)

val sift : ?max_passes:int -> man -> unit
(** Rudell sifting on the protected roots: each variable (fattest level
    first) is moved through every position by adjacent swaps and left
    where {!live_size} was smallest; passes repeat until no improvement
    (default cap 4 passes). *)

val set_order : man -> int array -> unit
(** Reorder to an explicit read-first ordering (bubble-sort of swaps) —
    e.g. one produced by {!Ovo_core.Fs}. *)

val compress : man -> unit
(** Garbage collection: drops every node not reachable from the
    protected roots from the unique tables (swaps and discarded
    intermediate results leave garbage behind, and table size is what
    swaps pay for).  Handles under a protected root remain valid;
    handles to collected nodes must not be used again — protect what
    you keep. *)

val allocated : man -> int
(** Nodes currently in the stores (live + garbage), terminals included —
    compare with {!live_size} to decide when to {!compress}. *)

val check_invariants : man -> bool
(** Test hook: unique tables are consistent, children are below parents,
    no two live nodes share (level, lo, hi). *)

(** The quantum divide-and-conquer machinery, abstracted over the state
    being optimised.

    The paper's algorithms never look inside [FS(⟨…⟩)] beyond "compact
    one more variable", "read the cost" and "which variables are free" —
    the same interface the classical {!Ovo_core.Subset_dp} functor uses.
    Abstracting over it lets the identical quantum code minimise plain
    diagrams ({!Opt_obdd}) and multi-rooted shared diagrams
    ({!Opt_shared}), supporting the paper's closing remark that the
    speedups carry over to other diagram variants. *)

module type STATE = sig
  type state

  val cost_if_compacted :
    metrics:Ovo_core.Metrics.t -> state -> int -> int
  (** Two-pass DP probe — see {!Ovo_core.Subset_dp.COMPACTABLE}. *)

  val materialise : metrics:Ovo_core.Metrics.t -> state -> int -> state
  val mincost : state -> int
  val free : state -> Ovo_core.Varset.t
end

module Make (S : STATE) : sig
  type subroutine
  (** A procedure extending a state over a free block [J], with modeled
      cost; the composable unit of Lemmas 11/12. *)

  val name : subroutine -> string

  val apply :
    subroutine -> Qctx.t -> S.state -> Ovo_core.Varset.t -> S.state * float

  val fs_star : subroutine
  (** The classical composition (Lemma 8 over [S]); modeled cost =
      measured table cells. *)

  val simple_split : ?alpha:float -> unit -> subroutine
  (** Section 3.1's single-split algorithm (no preprocessing). *)

  val opt_obdd :
    ?label:string -> k:int -> alpha:float array -> subroutine -> subroutine
  (** [OptOBDD*_gamma(k, α)] over [S]; see {!Opt_obdd.opt_obdd} for the
      parameter contract. *)

  val theorem10 : ?k:int -> unit -> subroutine
  (** Published Table 1 parameters (default [k = 6]). *)

  val tower : depth:int -> subroutine
  (** The Theorem 13 composition with the published Table 2 rows;
      [depth] in [1..10]. *)

  val run :
    Qctx.t -> subroutine -> base:S.state -> Ovo_core.Varset.t -> S.state * float
  (** Apply a subroutine over a block (alias of {!apply} with labels). *)
end

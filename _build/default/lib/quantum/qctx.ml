type t = {
  rng : Random.State.t option;
  epsilon : float;
  stats : Qsearch.stats;
}

let make ?rng ?(epsilon = Float.pow 2. (-20.)) () =
  { rng; epsilon; stats = Qsearch.create_stats () }

module Shared = Ovo_core.Shared

module Inst = Opt_generic.Make (struct
  type state = Shared.state

  let cost_if_compacted ~metrics (st : Shared.state) h =
    st.Shared.mincost + Shared.width_if_compacted ~metrics st h

  let materialise ~metrics st h = Shared.materialise ~metrics st h
  let mincost (st : Shared.state) = st.Shared.mincost
  let free = Shared.free
end)

type subroutine = Inst.subroutine

let name = Inst.name
let fs_star = Inst.fs_star
let simple_split = Inst.simple_split
let opt_obdd = Inst.opt_obdd
let theorem10 = Inst.theorem10
let tower = Inst.tower

let minimize_mtables ?(kind = Ovo_core.Compact.Bdd) ~ctx sub mts =
  let base = Shared.initial kind mts in
  let state, cost = Inst.run ctx sub ~base (Shared.free base) in
  (Shared.of_state state, cost)

let minimize ?kind ~ctx sub tts =
  minimize_mtables ?kind ~ctx sub
    (Array.map Ovo_boolfun.Mtable.of_truthtable tts)

type stats = {
  mutable searches : int;
  mutable oracle_evaluations : int;
  mutable modeled_queries : float;
  mutable injected_errors : int;
}

let create_stats () =
  { searches = 0; oracle_evaluations = 0; modeled_queries = 0.; injected_errors = 0 }

let queries_bound ~n ~epsilon =
  if n <= 0 then invalid_arg "Qsearch.queries_bound";
  let eps = if epsilon <= 0. then 1e-300 else min epsilon 0.5 in
  Float.max 1. (Float.round (sqrt (float_of_int n *. (-.log eps /. log 2.))))

type 'a outcome = { argmin : 'a; value : int; modeled_cost : float }

let find_min ?rng ~epsilon ~stats ~candidates ~oracle () =
  let n = Array.length candidates in
  if n = 0 then invalid_arg "Qsearch.find_min: no candidates";
  stats.searches <- stats.searches + 1;
  let best = ref 0 and best_value = ref max_int and max_cost = ref 0. in
  let values = Array.make n 0 in
  Array.iteri
    (fun i x ->
      let value, cost = oracle x in
      stats.oracle_evaluations <- stats.oracle_evaluations + 1;
      values.(i) <- value;
      if cost > !max_cost then max_cost := cost;
      if value < !best_value then begin
        best_value := value;
        best := i
      end)
    candidates;
  let queries = queries_bound ~n ~epsilon in
  stats.modeled_queries <- stats.modeled_queries +. queries;
  let modeled_cost = queries *. Float.max !max_cost 1. in
  let pick =
    match rng with
    | Some st when n > 1 && Random.State.float st 1. < epsilon ->
        (* error branch: any candidate other than the true minimum *)
        stats.injected_errors <- stats.injected_errors + 1;
        let wrong = Random.State.int st (n - 1) in
        if wrong >= !best then wrong + 1 else wrong
    | Some _ | None -> !best
  in
  { argmin = candidates.(pick); value = values.(pick); modeled_cost }

(** Quantum (simulated) joint optimisation of multi-rooted diagrams —
    the {!Opt_generic} machinery instantiated on {!Ovo_core.Shared}
    states: the same divide-and-conquer, quantum minimum finding and
    composition tower, minimising the shared node count of several
    functions at once. *)

type subroutine

val name : subroutine -> string

val fs_star : subroutine
val simple_split : ?alpha:float -> unit -> subroutine
val opt_obdd :
  ?label:string -> k:int -> alpha:float array -> subroutine -> subroutine
val theorem10 : ?k:int -> unit -> subroutine
val tower : depth:int -> subroutine
(** As in {!Opt_obdd}, over shared states. *)

val minimize :
  ?kind:Ovo_core.Compact.kind ->
  ctx:Qctx.t ->
  subroutine ->
  Ovo_boolfun.Truthtable.t array ->
  Ovo_core.Shared.result * float
(** Jointly minimise the shared diagram of the given functions; returns
    the result and the modeled quantum cost. *)

val minimize_mtables :
  ?kind:Ovo_core.Compact.kind ->
  ctx:Qctx.t ->
  subroutine ->
  Ovo_boolfun.Mtable.t array ->
  Ovo_core.Shared.result * float

(** Execution context shared by all simulated quantum algorithms: the
    error budget, the optional RNG that arms error injection, and the
    query statistics. *)

type t = {
  rng : Random.State.t option;
      (** when present, qsearch errors are injected with prob. [epsilon] *)
  epsilon : float;  (** per-search error bound (paper: [2^(-p(n))]) *)
  stats : Qsearch.stats;
}

val make : ?rng:Random.State.t -> ?epsilon:float -> unit -> t
(** Default [epsilon] is [2^(-20)]; no [rng] means deterministic, exact
    simulation. *)

(** Published numerical parameters of the quantum algorithms.

    These are the values of the paper's Table 1 (optimal [α] and the
    resulting exponent base [γ_k] for [OptOBDD(k,α)], [k = 1..6]) and
    Table 2 (the composition iteration of Theorem 13: each row feeds the
    previous row's [γ] into the equations and yields a smaller [β₆],
    converging to 2.77286).

    They are hard-coded here — to six published digits — so the
    algorithms can run without a solver; {!Ovo_numerics.Table1} and
    {!Ovo_numerics.Table2} re-derive them from the equation systems and
    the tests check agreement. *)

val table1 : (int * float * float array) array
(** Rows [(k, γ_k, α)] for [k = 1..6]. *)

val table1_alpha : int -> float array
(** The [α] vector for a given [k ∈ 1..6]; raises [Invalid_argument]
    otherwise. *)

val table1_gamma : int -> float
(** [γ_k] for [k ∈ 1..6]. *)

val table2 : (float * float * float array) array
(** Rows [(γ_input, β₆, α)] of the ten composition rounds. *)

val table2_alpha : int -> float array
(** The [α] vector of composition round [i ∈ 0..9] (round 0 is the
    [γ = 3] row, identical to Table 1's [k = 6] row). *)

val final_gamma : float
(** The headline constant 2.77286 of Theorems 1 and 13. *)

val classical_gamma : float
(** The classical FS base, 3. *)

lib/quantum/qctx.ml: Float Qsearch Random

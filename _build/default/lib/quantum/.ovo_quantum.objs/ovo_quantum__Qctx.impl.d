lib/quantum/qctx.ml: Float Ovo_core Qsearch Random

lib/quantum/opt_shared.mli: Ovo_boolfun Ovo_core Qctx

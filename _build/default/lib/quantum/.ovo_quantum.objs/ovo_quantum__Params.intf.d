lib/quantum/params.mli:

lib/quantum/qsearch.ml: Array Float Random

lib/quantum/opt_generic.ml: Array Float Hashtbl List Logs Ovo_core Params Printf Qctx Qsearch String

lib/quantum/opt_obdd.mli: Ovo_boolfun Ovo_core Qctx Qsearch Random

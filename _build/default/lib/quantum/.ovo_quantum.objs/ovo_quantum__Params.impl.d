lib/quantum/params.ml: Array

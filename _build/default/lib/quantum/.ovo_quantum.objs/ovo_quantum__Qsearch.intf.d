lib/quantum/qsearch.mli: Random

lib/quantum/opt_generic.mli: Ovo_core Qctx

lib/quantum/qctx.mli: Ovo_core Qsearch Random

lib/quantum/qctx.mli: Qsearch Random

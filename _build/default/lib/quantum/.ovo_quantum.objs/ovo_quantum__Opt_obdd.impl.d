lib/quantum/opt_obdd.ml: Opt_generic Ovo_boolfun Ovo_core Qctx Qsearch Random

lib/quantum/opt_shared.ml: Array Opt_generic Ovo_boolfun Ovo_core

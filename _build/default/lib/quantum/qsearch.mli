(** Simulated quantum minimum finding (paper Lemma 6).

    The paper's quantum primitive is the small-error minimum-finding
    algorithm obtained by combining Dürr–Høyer with the small-error
    quantum search of Buhrman et al. (as packaged in LGM18, Cor. 2.3):
    for [f : [N] → Z] given as an oracle and any [ε > 0], it returns an
    [argmin] with error probability at most [ε] using
    [O(√(N·log(1/ε)))] oracle queries.

    No quantum hardware exists here, so this module performs the paper's
    prescribed substitution (see DESIGN.md): it evaluates the oracle on
    every candidate {e classically} (so the returned value is exact),
    while {e accounting} the cost the quantum routine would incur:

    - [queries = ⌈√(N · log₂(1/ε))⌉] oracle evaluations;
    - each query costs what one oracle evaluation costs, so the modeled
      cost of the whole search is [queries × max_candidate_cost]
      (the quantum circuit must run the costliest branch coherently).

    An optional error-injection mode returns, with probability [ε], a
    uniformly random non-minimal candidate instead — this exercises the
    failure branch the analysis tolerates, and lets tests confirm the
    paper's claim that even then the final diagram is {e valid}, merely
    not minimum. *)

type stats = {
  mutable searches : int;  (** number of [find_min] invocations *)
  mutable oracle_evaluations : int;  (** classical evaluations performed *)
  mutable modeled_queries : float;  (** accounted quantum queries *)
  mutable injected_errors : int;  (** times the error branch was taken *)
}

val create_stats : unit -> stats

val queries_bound : n:int -> epsilon:float -> float
(** The Lemma 6 query count [√(N · log₂(1/ε))], at least [1]. *)

type 'a outcome = {
  argmin : 'a;
  value : int;  (** oracle value at [argmin] *)
  modeled_cost : float;
      (** modeled quantum time of this search: query count times the
          costliest single oracle evaluation *)
}

val find_min :
  ?rng:Random.State.t ->
  epsilon:float ->
  stats:stats ->
  candidates:'a array ->
  oracle:('a -> int * float) ->
  unit ->
  'a outcome
(** [oracle x] returns [(value, cost)] where [cost] is the modeled time
    of evaluating the oracle once at [x] (sub-searches included).  The
    candidate array must be non-empty.  When [rng] is supplied, the error
    branch fires with probability [epsilon] (given [N > 1]); without
    [rng] the search is deterministic and exact. *)

(** Numerical reproduction of the paper's Table 1 and Table 2.

    Table 1 fixes the parameters of [OptOBDD(k, α)] by solving the
    system of equations (8)–(9):

    - [1 - α₁ + H(α₁) = f(α_k, 1)];
    - [f(α_(j-1), α_j) = g(α_j, α_(j+1))] for [j = 2..k], with
      [α_(k+1) = 1],

    where [f]/[g] use base [γ = 3] (classical [FS*] inside).  Table 2
    iterates the same system with [γ] set to the previous round's result
    (Theorem 13's composition, equations (14)–(15)), descending from
    2.83728 to 2.77286 in ten rounds.

    Solution method: the [g]-equation is linear in [α_(j+1)], so given
    [(α₁, α₂)] the whole chain [α₃..α_(k+1)] follows by a forward
    recurrence; an inner bisection on [α₂] enforces [α_(k+1) = 1] and an
    outer bisection on [α₁] enforces the boundary equation (8).  The
    paper reports 6 digits (computed at 20-digit precision); bisection to
    [1e-13] reproduces all published digits. *)

type row = {
  gamma_in : float;  (** base used inside [g] (3 for Table 1) *)
  k : int;
  alpha : float array;  (** the solved division fractions, length [k] *)
  gamma_out : float;  (** [2^(1-α₁+H(α₁))] — the resulting bound *)
}

val solve : gamma:float -> k:int -> row
(** Solve the system for given inner base and number of division points;
    raises [Failure] if the bisections cannot bracket (does not happen
    for [k <= 6] and [gamma] in [2.5..3]). *)

val chain : gamma:float -> k:int -> float -> float -> float array
(** [chain ~gamma ~k α₁ α₂] is the forward recurrence: the array
    [α₁, …, α_(k+1)] (not validated against the boundary equations; the
    entries degrade to [nan]/out-of-range values when the seed pair is
    infeasible — used by the solver and exposed for tests). *)

val table1 : unit -> row list
(** Rows for [k = 1..6], base 3 — the paper's Table 1. *)

val table2 : ?rounds:int -> unit -> row list
(** The composition iteration ([k = 6]); default 10 rounds — the
    paper's Table 2.  Row [i]'s [gamma_in] is row [i-1]'s [gamma_out]. *)

val pp_row : Format.formatter -> row -> unit

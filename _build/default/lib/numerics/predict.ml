let fs_star_cells ~free ~j ~upto =
  let acc = ref 0. in
  for i = 1 to upto do
    acc :=
      !acc
      +. Maths.binomial j i *. float_of_int i *. Maths.pow2 (float_of_int (free - i))
  done;
  !acc

let fs_cells n = fs_star_cells ~free:n ~j:n ~upto:n

let factorial n =
  let rec loop i acc = if i > n then acc else loop (i + 1) (acc *. float_of_int i) in
  loop 2 1.

let eval_order_cells n = Maths.pow2 (float_of_int n) -. 1.

let brute_force_cells n = factorial n *. eval_order_cells n

let log2_cost_per_var points =
  match points with
  | [] | [ _ ] -> invalid_arg "Predict.log2_cost_per_var: need two points"
  | _ ->
      let m = float_of_int (List.length points) in
      let sx = List.fold_left (fun a (n, _) -> a +. float_of_int n) 0. points in
      let sy = List.fold_left (fun a (_, c) -> a +. Maths.log2 c) 0. points in
      let sxx =
        List.fold_left (fun a (n, _) -> a +. (float_of_int n *. float_of_int n)) 0. points
      in
      let sxy =
        List.fold_left (fun a (n, c) -> a +. (float_of_int n *. Maths.log2 c)) 0. points
      in
      ((m *. sxy) -. (sx *. sy)) /. ((m *. sxx) -. (sx *. sx))

let quantum_queries ~n ~epsilon =
  if n <= 0. then invalid_arg "Predict.quantum_queries";
  let eps = if epsilon <= 0. then 1e-300 else min epsilon 0.5 in
  Float.max 1. (Float.round (sqrt (n *. (-.log eps /. log 2.))))

type subroutine_cost = free:int -> j:int -> float

let fs_star_cost ~free ~j = if j = 0 then 0. else fs_star_cells ~free ~j ~upto:j

(* must mirror Opt_obdd.division_points *)
let division_points ~alpha n' =
  let clamped =
    Array.to_list alpha
    |> List.map (fun a ->
           let v = int_of_float (Float.round (a *. float_of_int n')) in
           max 1 (min (n' - 1) v))
  in
  let rec dedup last = function
    | [] -> []
    | v :: rest -> if v > last then v :: dedup v rest else dedup last rest
  in
  dedup 0 (List.sort compare clamped)

let opt_obdd_cost ~epsilon ~alpha inner ~free ~j =
  if j = 0 then 0.
  else
    match division_points ~alpha j with
    | [] -> fs_star_cost ~free ~j
    | b ->
        let b = Array.of_list b in
        let m = Array.length b in
        let pre = fs_star_cells ~free ~j ~upto:b.(0) in
        (* level sizes: l_t = b.(t-1) for t <= m, l_(m+1) = j *)
        let level_size t = if t = m + 1 then j else b.(t - 1) in
        let rec cost t =
          if t = 1 then 0.
          else
            let l = level_size t and k = level_size (t - 1) in
            let candidates = Float.round (Maths.binomial l k) in
            let oracle =
              cost (t - 1) +. inner ~free:(free - k) ~j:(l - k)
            in
            quantum_queries ~n:candidates ~epsilon *. Float.max oracle 1.
        in
        pre +. cost (m + 1)

let theorem10_cost ~epsilon ~alpha n =
  opt_obdd_cost ~epsilon ~alpha fs_star_cost ~free:n ~j:n

let tower_cost ~epsilon ~alphas ~depth n =
  if depth < 1 || depth > Array.length alphas then
    invalid_arg "Predict.tower_cost";
  let rec build i =
    let inner = if i = 0 then fs_star_cost else build (i - 1) in
    opt_obdd_cost ~epsilon ~alpha:alphas.(i) inner
  in
  (build (depth - 1)) ~free:n ~j:n

(** The exponent algebra of the paper's complexity analysis (Secs. 3.1,
    3.2 and 4.1).

    All quantities are exponents of 2 per variable: an algorithm of
    modeled time [O*(2^(e·n))] is represented by [e].  The two building
    blocks are

    [g_γ(x, y) = (1 - y) + (y - x)·log₂γ]
    — the classical [FS*] work to extend a block from [x·n] to [y·n]
    placed variables when the inner subroutine has base [γ] (the paper's
    [g] is [g_3]); and

    [f_γ(x, y) = y/2 · H(x/y) + g_γ(x, y)]
    — the same work behind a quantum search over [C(y·n, x·n)] splits. *)

val g : gamma:float -> float -> float -> float
(** [g ~gamma x y] = [(1-y) + (y-x)·log₂gamma]. *)

val f : gamma:float -> float -> float -> float
(** [f ~gamma x y] = [y/2·H(x/y) + g ~gamma x y]; requires
    [0 < x <= y <= 1]. *)

val preprocess_exponent : float -> float
(** [(1 - α₁) + H(α₁)] — the classical preprocessing exponent (the
    dominant term [2^((1-α)n) · C(n, αn)] for [α < 1/3]). *)

val gamma_of_alpha1 : float -> float
(** The resulting base [2^(preprocess_exponent α₁)] once the system is
    balanced — the paper's [γ_k] and [β] values. *)

val gamma0 : unit -> float * float
(** Section 3.1's first, preprocessing-free bound: the balancing
    [(1-α) + α·log₂3 = (1-α)·log₂3] and the resulting base
    [γ₀ ≈ 2.98581]; returns [(α*, γ₀)]. *)

val gamma1 : unit -> float * float
(** Section 3.1's single-division-point bound with preprocessing
    ([k = 1]): returns [(α*, γ₁ ≈ 2.97625)]. *)

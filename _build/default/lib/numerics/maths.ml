let log2 x = log x /. log 2.

let entropy d =
  if d < 0. || d > 1. then invalid_arg "Maths.entropy";
  if d = 0. || d = 1. then 0.
  else (-.d *. log2 d) -. ((1. -. d) *. log2 (1. -. d))

let log2_binomial n k =
  if k < 0 || k > n then invalid_arg "Maths.log2_binomial";
  let k = min k (n - k) in
  let acc = ref 0. in
  for i = 1 to k do
    acc := !acc +. log2 (float_of_int (n - k + i)) -. log2 (float_of_int i)
  done;
  !acc

let pow2 x = Float.pow 2. x

let binomial n k = pow2 (log2_binomial n k)

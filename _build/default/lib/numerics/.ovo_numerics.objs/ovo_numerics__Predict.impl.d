lib/numerics/predict.ml: Array Float List Maths

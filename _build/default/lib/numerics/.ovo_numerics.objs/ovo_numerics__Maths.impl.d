lib/numerics/maths.ml: Float

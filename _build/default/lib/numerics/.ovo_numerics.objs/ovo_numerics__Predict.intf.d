lib/numerics/predict.mli:

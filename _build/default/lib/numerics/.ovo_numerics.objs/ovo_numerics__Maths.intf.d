lib/numerics/maths.mli:

lib/numerics/solver.mli:

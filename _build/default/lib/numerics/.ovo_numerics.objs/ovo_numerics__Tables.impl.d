lib/numerics/tables.ml: Array Exponents Float Format List Maths Printf Solver String

lib/numerics/tables.mli: Format

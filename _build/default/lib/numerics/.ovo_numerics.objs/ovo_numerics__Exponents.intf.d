lib/numerics/exponents.mli:

lib/numerics/exponents.ml: Maths Solver

lib/numerics/solver.ml: Float Option

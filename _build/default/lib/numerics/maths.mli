(** Elementary real functions used by the complexity analysis. *)

val log2 : float -> float

val entropy : float -> float
(** The binary entropy [H(δ) = -δ·log₂δ - (1-δ)·log₂(1-δ)], extended by
    continuity with [H 0 = H 1 = 0]; raises [Invalid_argument] outside
    [0..1]. *)

val log2_binomial : int -> int -> float
(** [log₂ C(n,k)] computed by log-summation (exact enough for [n] in the
    thousands); 0 when [k < 0] or [k > n] never occurs — raises
    [Invalid_argument] instead. *)

val binomial : int -> int -> float
(** [C(n,k)] as a float (may overflow to infinity for huge [n]). *)

val pow2 : float -> float
(** [2^x]. *)

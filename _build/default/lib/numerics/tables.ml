type row = { gamma_in : float; k : int; alpha : float array; gamma_out : float }

(* Forward recurrence: solving f(α_(j-1), α_j) = g(α_j, α_(j+1)) for
   α_(j+1), which is linear because g is affine in its second argument. *)
let chain ~gamma ~k a1 a2 =
  let c = Maths.log2 gamma in
  let alphas = Array.make (k + 1) nan in
  alphas.(0) <- a1;
  if k >= 2 then alphas.(1) <- a2;
  (try
     for j = 2 to k do
       let prev2 = alphas.(j - 2) and prev = alphas.(j - 1) in
       if not (0. < prev2 && prev2 < prev && prev < 1.) then raise Exit;
       let fv = Exponents.f ~gamma prev2 prev in
       alphas.(j) <- (fv -. 1. +. (prev *. c)) /. (c -. 1.)
     done
   with Exit -> ());
  (if k = 1 then alphas.(1) <- 1.);
  alphas

(* Residual of the closing condition α_(k+1) = 1 for a seed pair. *)
let inner_residual ~gamma ~k a1 a2 =
  let alphas = chain ~gamma ~k a1 a2 in
  let v = alphas.(k) in
  if Float.is_nan v then nan else v -. 1.

let solve ~gamma ~k =
  if k < 1 then invalid_arg "Tables.solve";
  let boundary a1 ak =
    Exponents.preprocess_exponent a1 -. Exponents.f ~gamma ak 1.
  in
  if k = 1 then begin
    let a1 =
      Solver.solve ~f:(fun a -> boundary a a) ~lo:1e-4 ~hi:0.34 ~steps:400 ()
    in
    { gamma_in = gamma; k; alpha = [| a1 |]; gamma_out = Exponents.gamma_of_alpha1 a1 }
  end
  else begin
    (* for a given α₁, find the α₂ that closes the chain at 1 *)
    let solve_a2 a1 =
      Solver.solve_offset ~tol:1e-16
        ~f:(fun a2 -> inner_residual ~gamma ~k a1 a2)
        ~origin:a1 ~max_offset:(0.999 -. a1) ~steps:4000 ()
    in
    let outer a1 =
      match solve_a2 a1 with
      | a2 ->
          let alphas = chain ~gamma ~k a1 a2 in
          boundary a1 alphas.(k - 1)
      | exception Failure _ -> nan
    in
    let a1 = Solver.solve ~f:outer ~lo:1e-3 ~hi:0.34 ~steps:400 () in
    let a2 = solve_a2 a1 in
    let alphas = chain ~gamma ~k a1 a2 in
    {
      gamma_in = gamma;
      k;
      alpha = Array.sub alphas 0 k;
      gamma_out = Exponents.gamma_of_alpha1 a1;
    }
  end

let table1 () = List.init 6 (fun i -> solve ~gamma:3. ~k:(i + 1))

let table2 ?(rounds = 10) () =
  let rec loop i gamma acc =
    if i >= rounds then List.rev acc
    else
      let row = solve ~gamma ~k:6 in
      loop (i + 1) row.gamma_out (row :: acc)
  in
  loop 0 3. []

let pp_row ppf r =
  Format.fprintf ppf "γin=%.5f k=%d γout=%.5f α=[%s]" r.gamma_in r.k r.gamma_out
    (String.concat "; "
       (List.map (Printf.sprintf "%.6f") (Array.to_list r.alpha)))

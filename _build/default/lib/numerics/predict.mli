(** Closed-form cost predictors, in the same unit the implementations
    count (table cells processed), for the bench harness to plot next to
    measured numbers.

    The implementation-level counts are function-independent — a table
    compaction always touches exactly half the previous table — so these
    predictors are {e exact} for the classical algorithms and for the
    simulated quantum accounting; the tests assert equality. *)

val fs_cells : int -> float
(** Exact cells processed by algorithm FS on [n] variables:
    [Σ_k C(n,k)·k·2^(n-k) = n·3^(n-1)] (each size-[k] set tries its [k]
    last-variable choices, each a compaction of [2^(n-k)] cells). *)

val fs_star_cells : free:int -> j:int -> upto:int -> float
(** Exact cells for [FS*] from a base with [free] unassigned variables
    over a [j]-element [J], stopped at cardinality [upto]:
    [Σ_(i<=upto) C(j,i)·i·2^(free-i)]. *)

val brute_force_cells : int -> float
(** Exact cells of the [O*(n!·2^n)] brute force: [n!·(2^n - 1)] (one
    compaction chain per ordering). *)

val eval_order_cells : int -> float
(** Cells of evaluating one ordering: [2^n - 1]. *)

val factorial : int -> float

val log2_cost_per_var : (int * float) list -> float
(** Least-squares slope of [log₂ cost] against [n] — the measured
    exponent base is [2^slope]; used to report "who wins, by what base"
    in the benches. *)

(** {2 Modeled quantum cost}

    The simulated quantum algorithms charge a deterministic,
    function-independent cost (classical parts: exact cell counts;
    searches: [queries x max-branch]).  The combinators below compute
    that exact number analytically, so the bench harness can extend the
    cost curves far beyond what the simulation can execute and locate the
    modeled crossovers.  [Test_optobdd] asserts bit-for-bit agreement
    with the simulation on small instances. *)

val quantum_queries : n:float -> epsilon:float -> float
(** The Lemma 6 query count, [max 1 (round (sqrt (N log2(1/eps))))] —
    must mirror [Ovo_quantum.Qsearch.queries_bound] ([n] is a float so
    astronomically large candidate spaces stay representable). *)

type subroutine_cost = free:int -> j:int -> float
(** Cost of extending a compaction state with [free] unassigned
    variables over a [j]-element block. *)

val fs_star_cost : subroutine_cost
(** Classical [FS*]: [fs_star_cells ~free ~j ~upto:j]. *)

val opt_obdd_cost :
  epsilon:float -> alpha:float array -> subroutine_cost -> subroutine_cost
(** Modeled cost of [OptOBDD*_gamma(k, alpha)] over a given inner
    subroutine — mirrors [Ovo_quantum.Opt_obdd.opt_obdd] including its
    division-point rounding and de-duplication. *)

val theorem10_cost : epsilon:float -> alpha:float array -> int -> float
(** Whole-run modeled cost of [OptOBDD(k, alpha)] on [n] variables. *)

val tower_cost :
  epsilon:float -> alphas:float array array -> depth:int -> int -> float
(** Whole-run modeled cost of the Theorem 13 composition of the given
    depth ([alphas.(i)] parameterises round [i]). *)

(** One-dimensional root finding for the parameter-equation systems. *)

val bisect :
  ?tol:float -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** Bisection on a bracketed sign change ([f lo] and [f hi] of opposite
    signs, else [Invalid_argument]); default tolerance [1e-13] on the
    argument. *)

val find_bracket :
  f:(float -> float) -> lo:float -> hi:float -> steps:int -> (float * float) option
(** Scan [steps] equal sub-intervals of [lo..hi] and return the first one
    across which [f] changes sign (infinite values are skipped). *)

val solve :
  ?tol:float -> f:(float -> float) -> lo:float -> hi:float -> steps:int -> unit -> float
(** {!find_bracket} then {!bisect}; raises [Failure] when no sign change
    is found. *)

val solve_offset :
  ?tol:float ->
  f:(float -> float) ->
  origin:float ->
  max_offset:float ->
  steps:int ->
  unit ->
  float
(** Root finding for functions whose root sits at an unknown, possibly
    tiny offset above [origin]: scans offsets [δ] on a geometric grid
    from [1e-14·max_offset] up to [max_offset] (then bisects on [δ]) and
    returns [origin + δ].  Needed by the Table 1/2 systems where
    [α₂ - α₁] shrinks to [1e-5] and below as [k] grows. *)

let g ~gamma x y = 1. -. y +. ((y -. x) *. Maths.log2 gamma)

let f ~gamma x y =
  if x <= 0. || x > y || y > 1. then invalid_arg "Exponents.f";
  (y /. 2. *. Maths.entropy (x /. y)) +. g ~gamma x y

let preprocess_exponent a1 = 1. -. a1 +. Maths.entropy a1

let gamma_of_alpha1 a1 = Maths.pow2 (preprocess_exponent a1)

let gamma0 () =
  let c = Maths.log2 3. in
  (* balance (1-α) + α·log₂3 = (1-α)·log₂3 *)
  let alpha = (c -. 1.) /. ((2. *. c) -. 1.) in
  let exponent = (Maths.entropy alpha /. 2.) +. ((1. -. alpha) *. c) in
  (alpha, Maths.pow2 exponent)

let gamma1 () =
  (* balance (1-α) + H(α) = H(α)/2 + (1-α)·log₂3, i.e. eq. (8) with
     f(α, 1) for k = 1 *)
  let residual a = preprocess_exponent a -. f ~gamma:3. a 1. in
  let alpha = Solver.solve ~f:residual ~lo:1e-4 ~hi:0.34 ~steps:200 () in
  (alpha, gamma_of_alpha1 alpha)

let bisect ?(tol = 1e-13) ~f ~lo ~hi () =
  let flo = f lo and fhi = f hi in
  if flo = 0. then lo
  else if fhi = 0. then hi
  else if (flo > 0.) = (fhi > 0.) then invalid_arg "Solver.bisect: no sign change"
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    while !hi -. !lo > tol do
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      if fmid = 0. then begin
        lo := mid;
        hi := mid
      end
      else if (fmid > 0.) = (!flo > 0.) then begin
        lo := mid;
        flo := fmid
      end
      else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end

let find_bracket ~f ~lo ~hi ~steps =
  if steps < 1 then invalid_arg "Solver.find_bracket";
  let width = (hi -. lo) /. float_of_int steps in
  let value x =
    let v = f x in
    if Float.is_nan v then None else Some v
  in
  let rec scan i prev =
    if i > steps then None
    else
      let x = lo +. (float_of_int i *. width) in
      match (prev, value x) with
      | Some (px, pv), Some v when Float.is_finite pv && Float.is_finite v
        && (pv > 0.) <> (v > 0.) ->
          Some (px, x)
      | _, (Some _ as cur) -> scan (i + 1) (Option.map (fun v -> (x, v)) cur)
      | _, None -> scan (i + 1) None
  in
  scan 1 (Option.map (fun v -> (lo, v)) (value lo))

let solve ?tol ~f ~lo ~hi ~steps () =
  match find_bracket ~f ~lo ~hi ~steps with
  | Some (a, b) -> bisect ?tol ~f ~lo:a ~hi:b ()
  | None -> failwith "Solver.solve: no sign change found in range"

let solve_offset ?tol ~f ~origin ~max_offset ~steps () =
  if max_offset <= 0. then invalid_arg "Solver.solve_offset";
  let lo_offset = 1e-14 *. max_offset in
  let ratio = Float.pow (max_offset /. lo_offset) (1. /. float_of_int steps) in
  let residual_at d =
    let v = f (origin +. d) in
    if Float.is_nan v then None else Some v
  in
  let rec scan i prev =
    if i > steps then failwith "Solver.solve_offset: no sign change found"
    else
      let d = lo_offset *. Float.pow ratio (float_of_int i) in
      match (prev, residual_at d) with
      | Some (pd, pv), Some v
        when Float.is_finite pv && Float.is_finite v && (pv > 0.) <> (v > 0.) ->
          (pd, d)
      | _, (Some _ as cur) -> scan (i + 1) (Option.map (fun v -> (d, v)) cur)
      | _, None -> scan (i + 1) None
  in
  let pd, d = scan 1 (Option.map (fun v -> (lo_offset, v)) (residual_at lo_offset)) in
  origin +. bisect ?tol ~f:(fun d -> f (origin +. d)) ~lo:pd ~hi:d ()

(** A reader for the Berkeley BLIF netlist format (combinational subset).

    Where {!Pla} covers two-level covers, BLIF is the standard exchange
    format for multi-level logic: a `.model` with `.inputs`/`.outputs`
    and one `.names` table per internal signal.  This reader supports
    the combinational core:

    - [.model NAME] (optional name);
    - [.inputs] / [.outputs] (may repeat, accumulate);
    - [.names in1 … ink out] followed by single-output cover rows
      ([01-] input part, [0]/[1] output part; rows with output [0]
      define the off-set, as in SIS);
    - constants: a [.names out] with row [1] (constant true) or no rows
      (constant false);
    - [.end], [#] comments, [\\] line continuations.

    Latches, subcircuits and don't-cares are rejected with a clear
    error.  Output functions are elaborated into truth tables over the
    primary inputs by structural evaluation, which is the [O*(2^n)]
    Corollary 2 path again. *)

type t

val of_string : string -> t
(** Raises [Failure] with a line-numbered message on unsupported or
    malformed input. *)

val of_file : string -> t

val model_name : t -> string
(** The [.model] name ([""] when absent). *)

val input_names : t -> string list
(** Primary inputs, in declaration order.  Input [i] of the model is
    variable [i] of the produced truth tables. *)

val output_names : t -> string list
(** Primary outputs, in declaration order. *)

val output_table : t -> string -> Truthtable.t
(** Truth table of a primary output (by name) over the primary inputs;
    raises [Not_found] for unknown names. *)

val tables : t -> (string * Truthtable.t) list
(** All outputs, in declaration order. *)

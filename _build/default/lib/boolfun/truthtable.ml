type t = { n : int; bits : Bitvec.t }

let arity tt = tt.n
let size tt = Bitvec.length tt.bits

let check_arity n =
  if n < 0 || n > Sys.int_size - 2 then invalid_arg "Truthtable: bad arity"

let of_fun n f =
  check_arity n;
  { n; bits = Bitvec.init (1 lsl n) f }

let of_bitvec n v =
  check_arity n;
  if Bitvec.length v <> 1 lsl n then invalid_arg "Truthtable.of_bitvec";
  { n; bits = v }

let to_bitvec tt = tt.bits

let log2_exact len =
  let rec loop n = if 1 lsl n >= len then n else loop (n + 1) in
  let n = loop 0 in
  if 1 lsl n <> len then invalid_arg "Truthtable: length not a power of two";
  n

let of_string s =
  let v = Bitvec.of_string s in
  of_bitvec (log2_exact (String.length s)) v

let to_string tt = Bitvec.to_string tt.bits

let const n b = of_fun n (fun _ -> b)
let var n j =
  if j < 0 || j >= n then invalid_arg "Truthtable.var";
  of_fun n (fun code -> code land (1 lsl j) <> 0)

let eval tt code = Bitvec.get tt.bits code

let eval_bits tt a =
  if Array.length a <> tt.n then invalid_arg "Truthtable.eval_bits";
  let code = ref 0 in
  for j = 0 to tt.n - 1 do
    if a.(j) then code := !code lor (1 lsl j)
  done;
  eval tt !code

let equal a b = a.n = b.n && Bitvec.equal a.bits b.bits
let compare a b = Bitvec.compare a.bits b.bits
let hash tt = Bitvec.hash tt.bits

let count_ones tt = Bitvec.popcount tt.bits

let is_const tt =
  if Bitvec.is_zero tt.bits then Some false
  else if Bitvec.is_ones tt.bits then Some true
  else None

(* [insert_bit code j b] widens [code] by inserting bit [b] at position
   [j]: bits below [j] stay, bits at or above [j] shift up. *)
let insert_bit code j b =
  let low = code land ((1 lsl j) - 1) in
  let high = (code lsr j) lsl (j + 1) in
  high lor low lor (if b then 1 lsl j else 0)

let restrict tt j b =
  if j < 0 || j >= tt.n then invalid_arg "Truthtable.restrict";
  of_fun (tt.n - 1) (fun code -> eval tt (insert_bit code j b))

let cofactors tt j = (restrict tt j false, restrict tt j true)

let depends_on tt j =
  let f0, f1 = cofactors tt j in
  not (equal f0 f1)

let support tt =
  List.filter (depends_on tt) (List.init tt.n (fun j -> j))

let not_ tt = { tt with bits = Bitvec.lnot_ tt.bits }

let binop kernel a b =
  if a.n <> b.n then invalid_arg "Truthtable: arity mismatch";
  { n = a.n; bits = kernel a.bits b.bits }

let ( &&& ) = binop Bitvec.and_
let ( ||| ) = binop Bitvec.or_
let xor = binop Bitvec.xor_

let permute_vars tt perm =
  if Array.length perm <> tt.n then invalid_arg "Truthtable.permute_vars";
  let seen = Array.make tt.n false in
  Array.iter
    (fun j ->
      if j < 0 || j >= tt.n || seen.(j) then
        invalid_arg "Truthtable.permute_vars: not a permutation";
      seen.(j) <- true)
    perm;
  of_fun tt.n (fun code ->
      let old_code = ref 0 in
      for j = 0 to tt.n - 1 do
        if code land (1 lsl j) <> 0 then
          old_code := !old_code lor (1 lsl perm.(j))
      done;
      eval tt !old_code)

let random st n =
  check_arity n;
  of_fun n (fun _ -> Random.State.bool st)

let pp ppf tt = Format.fprintf ppf "%d:%s" tt.n (to_string tt)

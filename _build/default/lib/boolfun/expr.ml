type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

let rec eval e env =
  match e with
  | Const b -> b
  | Var j -> env j
  | Not a -> not (eval a env)
  | And (a, b) -> eval a env && eval b env
  | Or (a, b) -> eval a env || eval b env
  | Xor (a, b) -> eval a env <> eval b env

let rec max_var = function
  | Const _ -> -1
  | Var j -> j
  | Not a -> max_var a
  | And (a, b) | Or (a, b) | Xor (a, b) -> max (max_var a) (max_var b)

let vars e =
  let module Iset = Set.Make (Int) in
  let rec collect acc = function
    | Const _ -> acc
    | Var j -> Iset.add j acc
    | Not a -> collect acc a
    | And (a, b) | Or (a, b) | Xor (a, b) -> collect (collect acc a) b
  in
  Iset.elements (collect Iset.empty e)

let to_truthtable ?arity e =
  let needed = max_var e + 1 in
  let n = match arity with None -> needed | Some n -> n in
  if n < needed then invalid_arg "Expr.to_truthtable: arity too small";
  Truthtable.of_fun n (fun code -> eval e (fun j -> code land (1 lsl j) <> 0))

(* --- parser ------------------------------------------------------------ *)

type token = Tconst of bool | Tvar of int | Tnot | Tand | Tor | Txor | Tlpar | Trpar

let tokenize s =
  let len = String.length s in
  let fail i msg = failwith (Printf.sprintf "Expr.of_string: %s at %d" msg i) in
  let rec lex i acc =
    if i >= len then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> lex (i + 1) acc
      | '(' -> lex (i + 1) (Tlpar :: acc)
      | ')' -> lex (i + 1) (Trpar :: acc)
      | '!' | '~' -> lex (i + 1) (Tnot :: acc)
      | '&' -> lex (i + 1) (Tand :: acc)
      | '|' -> lex (i + 1) (Tor :: acc)
      | '^' -> lex (i + 1) (Txor :: acc)
      | '0' -> lex (i + 1) (Tconst false :: acc)
      | '1' -> lex (i + 1) (Tconst true :: acc)
      | 'x' ->
          let j = ref (i + 1) in
          while !j < len && s.[!j] >= '0' && s.[!j] <= '9' do
            incr j
          done;
          if !j = i + 1 then fail i "variable index expected after 'x'";
          let idx = int_of_string (String.sub s (i + 1) (!j - i - 1)) in
          lex !j (Tvar idx :: acc)
      | 't' when i + 4 <= len && String.sub s i 4 = "true" ->
          lex (i + 4) (Tconst true :: acc)
      | 'f' when i + 5 <= len && String.sub s i 5 = "false" ->
          lex (i + 5) (Tconst false :: acc)
      | c when c >= 'a' && c <= 'z' ->
          lex (i + 1) (Tvar (Char.code c - Char.code 'a') :: acc)
      | _ -> fail i "unexpected character"
  in
  lex 0 []

(* grammar:  or   := xor ('|' xor)*
             xor  := and ('^' and)*
             and  := atom ('&' atom)*
             atom := '!' atom | '(' or ')' | var | const          *)
let of_string s =
  let toks = ref (tokenize s) in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () = match !toks with [] -> () | _ :: rest -> toks := rest in
  let rec parse_or () =
    let rec loop acc =
      match peek () with
      | Some Tor ->
          advance ();
          loop (Or (acc, parse_xor ()))
      | _ -> acc
    in
    loop (parse_xor ())
  and parse_xor () =
    let rec loop acc =
      match peek () with
      | Some Txor ->
          advance ();
          loop (Xor (acc, parse_and ()))
      | _ -> acc
    in
    loop (parse_and ())
  and parse_and () =
    let rec loop acc =
      match peek () with
      | Some Tand ->
          advance ();
          loop (And (acc, parse_atom ()))
      | _ -> acc
    in
    loop (parse_atom ())
  and parse_atom () =
    match peek () with
    | Some Tnot ->
        advance ();
        Not (parse_atom ())
    | Some Tlpar ->
        advance ();
        let e = parse_or () in
        (match peek () with
        | Some Trpar -> advance ()
        | _ -> failwith "Expr.of_string: missing ')'");
        e
    | Some (Tvar j) ->
        advance ();
        Var j
    | Some (Tconst b) ->
        advance ();
        Const b
    | Some (Tand | Tor | Txor | Trpar) | None ->
        failwith "Expr.of_string: operand expected"
  in
  let e = parse_or () in
  if !toks <> [] then failwith "Expr.of_string: trailing tokens";
  e

let rec to_string = function
  | Const true -> "1"
  | Const false -> "0"
  | Var j -> "x" ^ string_of_int j
  | Not a -> "!" ^ atom_string a
  | And (a, b) -> atom_string a ^ " & " ^ atom_string b
  | Or (a, b) -> atom_string a ^ " | " ^ atom_string b
  | Xor (a, b) -> atom_string a ^ " ^ " ^ atom_string b

and atom_string e =
  match e with
  | Const _ | Var _ | Not _ -> to_string e
  | And _ | Or _ | Xor _ -> "(" ^ to_string e ^ ")"

let pp ppf e = Format.pp_print_string ppf (to_string e)

let literal j b = if b then Var j else Not (Var j)

let dnf_of_truthtable tt =
  let n = Truthtable.arity tt in
  let minterm code =
    let rec build j acc =
      if j >= n then acc
      else
        let lit = literal j (code land (1 lsl j) <> 0) in
        build (j + 1) (match acc with None -> Some lit | Some e -> Some (And (e, lit)))
    in
    match build 0 None with Some e -> e | None -> Const true
  in
  let terms = ref None in
  for code = 0 to Truthtable.size tt - 1 do
    if Truthtable.eval tt code then
      let m = minterm code in
      terms := (match !terms with None -> Some m | Some e -> Some (Or (e, m)))
  done;
  match !terms with None -> Const false | Some e -> e

let cnf_of_truthtable tt =
  let n = Truthtable.arity tt in
  let maxterm code =
    let rec build j acc =
      if j >= n then acc
      else
        let lit = literal j (code land (1 lsl j) = 0) in
        build (j + 1) (match acc with None -> Some lit | Some e -> Some (Or (e, lit)))
    in
    match build 0 None with Some e -> e | None -> Const false
  in
  let clauses = ref None in
  for code = 0 to Truthtable.size tt - 1 do
    if not (Truthtable.eval tt code) then
      let c = maxterm code in
      clauses :=
        (match !clauses with None -> Some c | Some e -> Some (And (e, c)))
  done;
  match !clauses with None -> Const true | Some e -> e

let rec size = function
  | Const _ | Var _ -> 1
  | Not a -> 1 + size a
  | And (a, b) | Or (a, b) | Xor (a, b) -> 1 + size a + size b

let random st ~vars ~depth =
  if vars < 1 then invalid_arg "Expr.random";
  let rec gen depth =
    if depth <= 0 then
      if Random.State.int st 8 = 0 then Const (Random.State.bool st)
      else Var (Random.State.int st vars)
    else
      match Random.State.int st 4 with
      | 0 -> Not (gen (depth - 1))
      | 1 -> And (gen (depth - 1), gen (depth - 1))
      | 2 -> Or (gen (depth - 1), gen (depth - 1))
      | _ -> Xor (gen (depth - 1), gen (depth - 1))
  in
  gen depth

let rec simplify e =
  match e with
  | Const _ | Var _ -> e
  | Not a -> (
      match simplify a with
      | Const b -> Const (not b)
      | Not inner -> inner
      | a' -> Not a')
  | And (a, b) -> (
      match (simplify a, simplify b) with
      | Const false, _ | _, Const false -> Const false
      | Const true, x | x, Const true -> x
      | x, y when x = y -> x
      | x, y -> And (x, y))
  | Or (a, b) -> (
      match (simplify a, simplify b) with
      | Const true, _ | _, Const true -> Const true
      | Const false, x | x, Const false -> x
      | x, y when x = y -> x
      | x, y -> Or (x, y))
  | Xor (a, b) -> (
      match (simplify a, simplify b) with
      | Const false, x | x, Const false -> x
      | Const true, x | x, Const true -> (
          match x with Const bb -> Const (not bb) | Not inner -> inner | _ -> Not x)
      | x, y when x = y -> Const false
      | x, y -> Xor (x, y))

type t = { n : int; values : int; cells : int array }

let arity m = m.n
let num_values m = m.values

let check_cells values cells =
  Array.iter
    (fun v ->
      if v < 0 || v >= values then invalid_arg "Mtable: value out of range")
    cells

let of_array ~values cells =
  if values < 1 then invalid_arg "Mtable: need at least one value";
  let len = Array.length cells in
  let rec log2 n = if 1 lsl n >= len then n else log2 (n + 1) in
  let n = log2 0 in
  if 1 lsl n <> len then invalid_arg "Mtable: length not a power of two";
  check_cells values cells;
  { n; values; cells = Array.copy cells }

let of_fun n ~values f =
  if n < 0 || n > Sys.int_size - 2 then invalid_arg "Mtable: bad arity";
  let cells = Array.init (1 lsl n) f in
  check_cells values cells;
  { n; values; cells }

let of_truthtable tt =
  of_fun (Truthtable.arity tt) ~values:2 (fun code ->
      if Truthtable.eval tt code then 1 else 0)

let eval m code = m.cells.(code)

let insert_bit code j b =
  let low = code land ((1 lsl j) - 1) in
  let high = (code lsr j) lsl (j + 1) in
  high lor low lor (if b then 1 lsl j else 0)

let restrict m j b =
  if j < 0 || j >= m.n then invalid_arg "Mtable.restrict";
  {
    n = m.n - 1;
    values = m.values;
    cells = Array.init (1 lsl (m.n - 1)) (fun code -> eval m (insert_bit code j b));
  }

let equal a b = a.n = b.n && a.values = b.values && a.cells = b.cells

let pp ppf m =
  Format.fprintf ppf "%d(%dv):" m.n m.values;
  Array.iter (fun v -> Format.fprintf ppf "%d" v) m.cells

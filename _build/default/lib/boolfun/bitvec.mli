(** Packed bit vectors.

    A [Bitvec.t] is a fixed-length sequence of bits stored eight per byte.
    It is the backing store for {!Truthtable}, where vectors of length
    [2^n] represent Boolean functions over [n] variables, so the packing
    matters: a 20-variable truth table occupies 128 KiB instead of 8 MiB.

    Indices run from [0] to [length v - 1]; out-of-range accesses raise
    [Invalid_argument]. *)

type t

val create : int -> t
(** [create len] is a vector of [len] bits, all cleared. *)

val length : t -> int
(** Number of bits. *)

val get : t -> int -> bool
(** [get v i] is bit [i]. *)

val set : t -> int -> bool -> unit
(** [set v i b] writes [b] at position [i]. *)

val init : int -> (int -> bool) -> t
(** [init len f] builds a vector whose bit [i] is [f i]. *)

val copy : t -> t
(** Deep copy. *)

val equal : t -> t -> bool
(** Structural equality (same length, same bits). *)

val compare : t -> t -> int
(** Total order consistent with {!equal}. *)

val hash : t -> int
(** Hash compatible with {!equal}. *)

val popcount : t -> int
(** Number of set bits. *)

val is_zero : t -> bool
(** [true] iff no bit is set. *)

val is_ones : t -> bool
(** [true] iff every bit is set. *)

val and_ : t -> t -> t
val or_ : t -> t -> t
val xor_ : t -> t -> t
(** Word-parallel connectives (64 bits per step): these are what the
    [O*(2^n)] truth-table layer should use on hot paths; semantically
    identical to the corresponding {!map2} (property-tested). *)

val map2 : (bool -> bool -> bool) -> t -> t -> t
(** [map2 f a b] applies [f] bitwise; raises [Invalid_argument] when the
    lengths differ.  [f] is applied per bit (not per word) so any function
    is allowed. *)

val lnot_ : t -> t
(** Bitwise complement. *)

val fold : ('a -> bool -> 'a) -> 'a -> t -> 'a
(** Left fold over bits in index order. *)

val iteri : (int -> bool -> unit) -> t -> unit
(** Iterate with index. *)

val to_string : t -> string
(** Bits as a ['0']/['1'] string, index 0 first. *)

val of_string : string -> t
(** Inverse of {!to_string}; raises [Invalid_argument] on characters other
    than ['0'] and ['1']. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer ({!to_string} form). *)

type cube = { care : int; value : int; outs : int }
(* [care] has bit j set when input j is constrained; [value] gives the
   constrained bits; [outs] has bit j set when the cube belongs to output
   j's cover. *)

type t = {
  inputs : int;
  outputs : int;
  cubes : cube list;
  input_names : string array option;
  output_names : string array option;
}

let inputs p = p.inputs
let outputs p = p.outputs
let num_cubes p = List.length p.cubes
let input_names p = p.input_names
let output_names p = p.output_names

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let of_string text =
  let fail line msg = failwith (Printf.sprintf "Pla: line %d: %s" line msg) in
  let ni = ref (-1) and no = ref (-1) and np = ref (-1) in
  let in_names = ref None and out_names = ref None in
  let cubes = ref [] in
  let finished = ref false in
  let parse_cube lineno in_part out_part =
    if String.length in_part <> !ni then fail lineno "input part width mismatch";
    if String.length out_part <> !no then fail lineno "output part width mismatch";
    let care = ref 0 and value = ref 0 and outs = ref 0 in
    String.iteri
      (fun j c ->
        match c with
        | '0' -> care := !care lor (1 lsl j)
        | '1' ->
            care := !care lor (1 lsl j);
            value := !value lor (1 lsl j)
        | '-' -> ()
        | _ -> fail lineno "bad input-part character")
      in_part;
    String.iteri
      (fun j c ->
        match c with
        | '1' -> outs := !outs lor (1 lsl j)
        | '0' | '-' | '~' -> ()
        | _ -> fail lineno "bad output-part character")
      out_part;
    cubes := { care = !care; value = !value; outs = !outs } :: !cubes
  in
  let handle lineno raw =
    let line =
      match String.index_opt raw '#' with
      | None -> raw
      | Some i -> String.sub raw 0 i
    in
    match split_ws line with
    | [] -> ()
    | _ when !finished -> ()
    | ".i" :: [ v ] -> ni := int_of_string v
    | ".o" :: [ v ] -> no := int_of_string v
    | ".p" :: [ v ] -> np := int_of_string v
    | ".ilb" :: names -> in_names := Some (Array.of_list names)
    | ".ob" :: names -> out_names := Some (Array.of_list names)
    | (".e" | ".end") :: _ -> finished := true
    | word :: _ when String.length word > 0 && word.[0] = '.' ->
        () (* unsupported directives are skipped *)
    | [ in_part; out_part ] when !ni >= 0 && !no >= 0 ->
        parse_cube lineno in_part out_part
    | _ -> fail lineno "unparsable line"
  in
  List.iteri
    (fun i line -> handle (i + 1) line)
    (String.split_on_char '\n' text);
  if !ni < 0 then failwith "Pla: missing .i";
  if !no < 0 then failwith "Pla: missing .o";
  let cubes = List.rev !cubes in
  if !np >= 0 && List.length cubes <> !np then
    failwith "Pla: .p does not match the number of cubes";
  {
    inputs = !ni;
    outputs = !no;
    cubes;
    input_names = !in_names;
    output_names = !out_names;
  }

let of_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

let output_table p j =
  if j < 0 || j >= p.outputs then invalid_arg "Pla.output_table";
  Truthtable.of_fun p.inputs (fun code ->
      List.exists
        (fun c -> c.outs land (1 lsl j) <> 0 && code land c.care = c.value)
        p.cubes)

let tables p = Array.init p.outputs (output_table p)

let of_truthtables ts =
  match Array.length ts with
  | 0 -> invalid_arg "Pla.of_truthtables: empty"
  | m ->
      let n = Truthtable.arity ts.(0) in
      Array.iter
        (fun t ->
          if Truthtable.arity t <> n then
            invalid_arg "Pla.of_truthtables: arity mismatch")
        ts;
      let cubes = ref [] in
      for code = (1 lsl n) - 1 downto 0 do
        let outs = ref 0 in
        for j = 0 to m - 1 do
          if Truthtable.eval ts.(j) code then outs := !outs lor (1 lsl j)
        done;
        if !outs <> 0 then
          cubes := { care = (1 lsl n) - 1; value = code; outs = !outs } :: !cubes
      done;
      {
        inputs = n;
        outputs = m;
        cubes = !cubes;
        input_names = None;
        output_names = None;
      }

let to_string p =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf ".i %d\n.o %d\n" p.inputs p.outputs);
  (match p.input_names with
  | Some names ->
      Buffer.add_string buf (".ilb " ^ String.concat " " (Array.to_list names) ^ "\n")
  | None -> ());
  (match p.output_names with
  | Some names ->
      Buffer.add_string buf (".ob " ^ String.concat " " (Array.to_list names) ^ "\n")
  | None -> ());
  Buffer.add_string buf (Printf.sprintf ".p %d\n" (num_cubes p));
  List.iter
    (fun c ->
      for j = 0 to p.inputs - 1 do
        if c.care land (1 lsl j) = 0 then Buffer.add_char buf '-'
        else if c.value land (1 lsl j) <> 0 then Buffer.add_char buf '1'
        else Buffer.add_char buf '0'
      done;
      Buffer.add_char buf ' ';
      for j = 0 to p.outputs - 1 do
        Buffer.add_char buf (if c.outs land (1 lsl j) <> 0 then '1' else '0')
      done;
      Buffer.add_char buf '\n')
    p.cubes;
  Buffer.add_string buf ".e\n";
  Buffer.contents buf

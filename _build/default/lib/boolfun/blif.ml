type row = { pattern : string; value : bool }

type gate = { fanins : string list; out : string; rows : row list }

type t = {
  model_name : string;
  inputs : string list;
  outputs : string list;
  gates : gate list;  (* in file order *)
}

let model_name t = t.model_name
let input_names t = t.inputs
let output_names t = t.outputs

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

(* join continuation lines ending in backslash, strip comments *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let rec join acc pending lineno = function
    | [] -> List.rev (match pending with None -> acc | Some (l, s) -> (l, s) :: acc)
    | line :: rest ->
        let line =
          match String.index_opt line '#' with
          | None -> line
          | Some i -> String.sub line 0 i
        in
        let line = String.trim line in
        let continued = String.length line > 0 && line.[String.length line - 1] = '\\' in
        let body =
          if continued then String.sub line 0 (String.length line - 1) else line
        in
        let acc, pending =
          match pending with
          | None ->
              if continued then (acc, Some (lineno, body))
              else if body = "" then (acc, None)
              else ((lineno, body) :: acc, None)
          | Some (l0, sofar) ->
              let merged = sofar ^ " " ^ body in
              if continued then (acc, Some (l0, merged))
              else ((l0, merged) :: acc, None)
        in
        join acc pending (lineno + 1) rest
  in
  join [] None 1 raw

let of_string text =
  let fail line msg = failwith (Printf.sprintf "Blif: line %d: %s" line msg) in
  let model = ref "" in
  let inputs = ref [] and outputs = ref [] in
  let gates = ref [] in
  let current = ref None in
  let finish_gate () =
    match !current with
    | None -> ()
    | Some (fanins, out, rows) ->
        gates := { fanins; out; rows = List.rev rows } :: !gates;
        current := None
  in
  let handle (lineno, line) =
    match split_ws line with
    | [] -> ()
    | ".model" :: rest ->
        finish_gate ();
        model := String.concat " " rest
    | ".inputs" :: names ->
        finish_gate ();
        inputs := !inputs @ names
    | ".outputs" :: names ->
        finish_gate ();
        outputs := !outputs @ names
    | ".names" :: signals -> (
        finish_gate ();
        match List.rev signals with
        | [] -> fail lineno ".names needs an output"
        | out :: fanins_rev -> current := Some (List.rev fanins_rev, out, []))
    | [ ".end" ] -> finish_gate ()
    | (".latch" | ".subckt" | ".exdc") :: _ ->
        fail lineno "sequential/hierarchical BLIF is not supported"
    | word :: _ when String.length word > 0 && word.[0] = '.' ->
        fail lineno ("unsupported directive " ^ word)
    | words -> (
        match !current with
        | None -> fail lineno "cover row outside a .names block"
        | Some (fanins, out, rows) -> (
            let width = List.length fanins in
            match words with
            | [ outpart ] when width = 0 ->
                let value =
                  match outpart with
                  | "1" -> true
                  | "0" -> false
                  | _ -> fail lineno "bad constant row"
                in
                current := Some (fanins, out, { pattern = ""; value } :: rows)
            | [ pattern; outpart ] when String.length pattern = width ->
                String.iter
                  (fun c ->
                    match c with
                    | '0' | '1' | '-' -> ()
                    | _ -> fail lineno "bad cover character")
                  pattern;
                let value =
                  match outpart with
                  | "1" -> true
                  | "0" -> false
                  | _ -> fail lineno "bad output character"
                in
                current := Some (fanins, out, { pattern; value } :: rows)
            | _ -> fail lineno "malformed cover row"))
  in
  List.iter handle (logical_lines text);
  finish_gate ();
  if !inputs = [] then failwith "Blif: no .inputs";
  if !outputs = [] then failwith "Blif: no .outputs";
  {
    model_name = !model;
    inputs = !inputs;
    outputs = !outputs;
    gates = List.rev !gates;
  }

let of_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

(* Structural elaboration: a table per signal over the primary inputs.
   A SIS cover with output-0 rows defines the off-set; output-1 rows the
   on-set (a single .names block uses one polarity). *)
let elaborate t =
  let n = List.length t.inputs in
  let env : (string, Truthtable.t) Hashtbl.t = Hashtbl.create 32 in
  List.iteri (fun j name -> Hashtbl.replace env name (Truthtable.var n j)) t.inputs;
  let signal name =
    match Hashtbl.find_opt env name with
    | Some tt -> tt
    | None -> failwith (Printf.sprintf "Blif: undefined signal %s" name)
  in
  let gate_table g =
    let fanins = List.map signal g.fanins in
    let row_table r =
      List.fold_left2
        (fun acc c fanin ->
          match c with
          | '1' -> Truthtable.( &&& ) acc fanin
          | '0' -> Truthtable.( &&& ) acc (Truthtable.not_ fanin)
          | _ -> acc)
        (Truthtable.const n true)
        (List.init (String.length r.pattern) (String.get r.pattern))
        fanins
    in
    let on_rows = List.filter (fun r -> r.value) g.rows in
    let off_rows = List.filter (fun r -> not r.value) g.rows in
    match (on_rows, off_rows) with
    | [], [] -> Truthtable.const n false
    | _ :: _, [] ->
        List.fold_left
          (fun acc r -> Truthtable.( ||| ) acc (row_table r))
          (Truthtable.const n false)
          on_rows
    | [], _ :: _ ->
        Truthtable.not_
          (List.fold_left
             (fun acc r -> Truthtable.( ||| ) acc (row_table r))
             (Truthtable.const n false)
             off_rows)
    | _ :: _, _ :: _ -> failwith "Blif: mixed-polarity cover"
  in
  List.iter
    (fun g ->
      if Hashtbl.mem env g.out && not (List.mem g.out t.inputs) then
        failwith (Printf.sprintf "Blif: signal %s defined twice" g.out);
      Hashtbl.replace env g.out (gate_table g))
    t.gates;
  env

let output_table t name =
  if not (List.mem name t.outputs) then raise Not_found;
  let env = elaborate t in
  match Hashtbl.find_opt env name with
  | Some tt -> tt
  | None -> failwith (Printf.sprintf "Blif: output %s has no driver" name)

let tables t =
  let env = elaborate t in
  List.map
    (fun name ->
      match Hashtbl.find_opt env name with
      | Some tt -> (name, tt)
      | None -> failwith (Printf.sprintf "Blif: output %s has no driver" name))
    t.outputs

(** Catalogue of standard Boolean function families.

    These are the workloads used throughout the evaluation: the paper's
    own running example (the "Achilles heel" function of Fig. 1) plus the
    families classically used in the OBDD literature to exercise variable
    ordering (hidden weighted bit, multiplexers, thresholds, adders …).

    Orderings returned by this module follow the repository convention:
    [order.(0)] is the variable read {e last} (the paper's [π[1]]). *)

val achilles : int -> Truthtable.t
(** [achilles pairs] is [x0·x1 + x2·x3 + … ] over [2·pairs] variables —
    the function of the paper's Fig. 1 (with 1-based [x1x2 + x3x4 + …]).
    Its OBDD has [2·pairs + 2] nodes under the natural ordering and
    [2^(pairs+1)] nodes under the interleaved one. *)

val achilles_good_order : int -> int array
(** The natural ordering [(x0, x1, …, x_{2p-1})] (paper's [(x1,…,x2n)]). *)

val achilles_bad_order : int -> int array
(** The interleaved ordering [(x0, x2, …, x1, x3, …)] (paper's
    [(x1, x3, …, x_{2n-1}, x2, x4, …, x_{2n})]). *)

val parity : int -> Truthtable.t
(** XOR of all variables: every ordering is optimal (size [n + 2]). *)

val majority : int -> Truthtable.t
(** True iff more than half of the inputs are set. *)

val threshold : int -> k:int -> Truthtable.t
(** [threshold n ~k] is true iff at least [k] inputs are set. *)

val weight_interval : int -> lo:int -> hi:int -> Truthtable.t
(** True iff the input weight lies in [lo..hi] (a symmetric function). *)

val symmetric : bool array -> Truthtable.t
(** [symmetric values] with [Array.length values = n + 1] is the symmetric
    function whose value on inputs of weight [w] is [values.(w)]. *)

val hidden_weighted_bit : int -> Truthtable.t
(** [HWB_n(x) = x_{wt(x)-1}] (0-based), [false] when [wt(x) = 0]; a
    classical example whose OBDD is exponential under every ordering yet
    ordering-sensitive in the constant. *)

val multiplexer : select:int -> Truthtable.t
(** [multiplexer ~select:s] has arity [s + 2^s]: variables [0..s-1] form
    an address whose bit [j] is variable [j]; the output is the addressed
    data variable [s + addr].  Extremely ordering-sensitive. *)

val adder_bit : bits:int -> out:int -> Truthtable.t
(** [adder_bit ~bits ~out] is output bit [out] (0 = LSB, up to [bits],
    where bit [bits] is the carry-out) of the sum of two [bits]-wide
    integers; variables [0..bits-1] are the first operand (LSB first),
    [bits..2·bits-1] the second.  Interleaved orderings are good, blocked
    orderings are bad. *)

val catalogue : max_arity:int -> (string * Truthtable.t) list
(** A named selection of the above, instantiated at sizes not exceeding
    [max_arity]; used by benches and example programs. *)

val multi_catalogue : (string * Truthtable.t array) list
(** Multi-output benchmark circuits for shared-diagram optimisation, in
    the spirit of the classic MCNC names: [rd53]/[rd73] (bit-count of 5
    and 7 inputs), [sqr3] (square of a 3-bit number), [add3] (3-bit
    adder), [mul2] (2-bit multiplier), [cmp3] (3-bit comparator pair). *)

(** Boolean expressions (formulas / flat circuits).

    This is the front-end promised by the paper's Corollary 2: any
    representation on which [f(x)] can be evaluated in polynomial time —
    DNFs, CNFs, circuits — can feed the optimiser, because its truth table
    is extracted in [O*(2^n)] by {!to_truthtable}.

    Concrete syntax accepted by {!of_string} (tightest first):

    - variables [x0], [x1], … (also bare [a]..[z] mapped to [x0]..[x25]);
    - constants [0], [1], [true], [false];
    - negation [!e] or [~e];
    - conjunction [e & e];
    - exclusive or [e ^ e];
    - disjunction [e | e];
    - parentheses.

    [&], [^] and [|] associate to the left; [&] binds tighter than [^],
    which binds tighter than [|]. *)

type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

val eval : t -> (int -> bool) -> bool
(** [eval e env] evaluates with [env j] the value of variable [j]. *)

val max_var : t -> int
(** Largest variable index occurring, [-1] for closed expressions. *)

val vars : t -> int list
(** Sorted list of distinct variable indices occurring in the formula. *)

val to_truthtable : ?arity:int -> t -> Truthtable.t
(** Tabulates the expression over [arity] variables (default
    [max_var e + 1]).  Raises [Invalid_argument] if [arity] is smaller
    than needed.  This is the [O*(2^n)] extraction of Corollary 2. *)

val of_string : string -> t
(** Parser for the syntax above; raises [Failure] with a position message
    on malformed input. *)

val to_string : t -> string
(** Fully parenthesised rendering re-parsable by {!of_string}. *)

val pp : Format.formatter -> t -> unit

val dnf_of_truthtable : Truthtable.t -> t
(** Canonical sum-of-minterms DNF (a constant when the function is
    constant).  [to_truthtable (dnf_of_truthtable tt) = tt]. *)

val cnf_of_truthtable : Truthtable.t -> t
(** Canonical product-of-maxterms CNF. *)

val size : t -> int
(** Number of AST nodes. *)

val simplify : t -> t
(** Bottom-up local simplification: constant folding, double-negation
    elimination, and the unit/absorbing/idempotence laws of each
    connective on {e syntactically} equal operands.  Semantics are
    preserved exactly; the result never has more nodes. *)

val random : Random.State.t -> vars:int -> depth:int -> t
(** Random formula for tests: binary/unary connectives chosen uniformly,
    leaves are variables below [vars] or constants. *)

(** Truth tables of Boolean functions.

    A value of type [t] represents a total function
    [f : {0,1}^n -> {0,1}].  Assignments are encoded as integers: bit [j]
    of the index (0 = least significant) is the value given to variable
    [j], with variables numbered [0 .. n-1].  The table of an [n]-variable
    function has [2^n] entries; [n] is limited to the host word size
    (practically [n <= 25] or so for memory reasons).

    This module is the ground-truth representation against which every
    diagram and every optimiser in the repository is checked. *)

type t

val arity : t -> int
(** Number of variables [n]. *)

val size : t -> int
(** Number of entries, [2^n]. *)

val of_fun : int -> (int -> bool) -> t
(** [of_fun n f] tabulates [f] over all [2^n] assignment codes.  This is
    the [O*(2^n)] truth-table extraction step of the paper's Corollary 2:
    [f] may evaluate any representation (expression, circuit, diagram). *)

val of_bitvec : int -> Bitvec.t -> t
(** [of_bitvec n v] wraps a bit vector of length [2^n]. *)

val to_bitvec : t -> Bitvec.t
(** Underlying bits (copy-free; treat as read-only). *)

val of_string : string -> t
(** [of_string "0110"] is the 2-variable XOR (length must be a power of
    two); entry [i] of the string is [f] at assignment code [i]. *)

val to_string : t -> string

val const : int -> bool -> t
(** [const n b] is the constant function of arity [n]. *)

val var : int -> int -> t
(** [var n j] is the projection [x_j] as an [n]-variable function. *)

val eval : t -> int -> bool
(** [eval tt code] is [f] at assignment [code]. *)

val eval_bits : t -> bool array -> bool
(** [eval_bits tt a] evaluates with [a.(j)] the value of variable [j];
    [Array.length a] must equal the arity. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val count_ones : t -> int
(** Number of satisfying assignments. *)

val is_const : t -> bool option
(** [Some b] when the function is constantly [b], else [None]. *)

val restrict : t -> int -> bool -> t
(** [restrict tt j b] is [f] with variable [j] fixed to [b], as a function
    of the remaining [n-1] variables.  Variables above [j] are renumbered
    down by one (variable [k > j] becomes [k-1]). *)

val cofactors : t -> int -> t * t
(** [cofactors tt j] is [(restrict tt j false, restrict tt j true)]. *)

val depends_on : t -> int -> bool
(** [depends_on tt j] iff the two cofactors w.r.t. [j] differ. *)

val support : t -> int list
(** Variables the function essentially depends on, ascending. *)

val not_ : t -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val xor : t -> t -> t
(** Pointwise connectives; binary ones require equal arities. *)

val permute_vars : t -> int array -> t
(** [permute_vars tt perm] relabels variables: the result [g] satisfies
    [g(y) = f(x)] where [x.(perm.(j)) = y.(j)].  [perm] must be a
    permutation of [0 .. n-1].  In other words, variable [perm.(j)] of [f]
    becomes variable [j] of [g]. *)

val random : Random.State.t -> int -> t
(** Uniformly random function of the given arity. *)

val pp : Format.formatter -> t -> unit

(** Multi-valued truth tables, the input of MTBDD minimisation.

    A value of type [t] represents [f : {0,1}^n -> {0,..,k-1}] for some
    number of terminal values [k >= 1] (the paper's Remark 2: the FS
    machinery works unchanged when the truth table maps assignments into a
    finite set [Z], producing minimum multi-terminal BDDs).  Assignment
    encoding is as in {!Truthtable}. *)

type t

val arity : t -> int
(** Number of variables. *)

val num_values : t -> int
(** The terminal alphabet size [k]; values are [0 .. k-1]. *)

val of_fun : int -> values:int -> (int -> int) -> t
(** [of_fun n ~values f] tabulates [f]; raises [Invalid_argument] if some
    [f code] falls outside [0 .. values-1]. *)

val of_array : values:int -> int array -> t
(** Wraps an array of length [2^n]. *)

val of_truthtable : Truthtable.t -> t
(** Boolean table as a 2-valued multi-table ([false -> 0], [true -> 1]). *)

val eval : t -> int -> int
(** Value at an assignment code. *)

val restrict : t -> int -> bool -> t
(** As {!Truthtable.restrict}, with variable renumbering. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

type t = { len : int; data : Bytes.t }

let nbytes len = (len + 7) lsr 3

let create len =
  if len < 0 then invalid_arg "Bitvec.create";
  { len; data = Bytes.make (nbytes len) '\000' }

let length v = v.len

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Bitvec: index out of range"

let get v i =
  check v i;
  Char.code (Bytes.unsafe_get v.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set v i b =
  check v i;
  let byte = i lsr 3 in
  let mask = 1 lsl (i land 7) in
  let cur = Char.code (Bytes.unsafe_get v.data byte) in
  let next = if b then cur lor mask else cur land lnot mask in
  Bytes.unsafe_set v.data byte (Char.chr (next land 0xff))

let init len f =
  let v = create len in
  for i = 0 to len - 1 do
    if f i then set v i true
  done;
  v

let copy v = { len = v.len; data = Bytes.copy v.data }

(* The last byte may contain unused bits; they are kept at zero by [set],
   so byte-level comparison and hashing are sound. *)
let equal a b = a.len = b.len && Bytes.equal a.data b.data

let compare a b =
  let c = Stdlib.compare a.len b.len in
  if c <> 0 then c else Bytes.compare a.data b.data

let hash v = Hashtbl.hash (v.len, v.data)

let popcount_byte =
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun c -> table.(Char.code c)

let popcount v =
  let acc = ref 0 in
  for i = 0 to Bytes.length v.data - 1 do
    acc := !acc + popcount_byte (Bytes.get v.data i)
  done;
  !acc

let is_zero v =
  let rec loop i =
    i >= Bytes.length v.data || (Bytes.get v.data i = '\000' && loop (i + 1))
  in
  loop 0

let is_ones v = popcount v = v.len

(* Word-parallel bitwise kernels.  The length invariant (trailing bits
   of the last byte are zero) is preserved by and/or/xor since both
   inputs satisfy it; complement must re-mask the tail. *)
let word_op2 op a b =
  if a.len <> b.len then invalid_arg "Bitvec: length mismatch";
  let nb = Bytes.length a.data in
  let out = Bytes.create nb in
  let full_words = nb / 8 in
  for w = 0 to full_words - 1 do
    let x = Bytes.get_int64_ne a.data (w * 8)
    and y = Bytes.get_int64_ne b.data (w * 8) in
    Bytes.set_int64_ne out (w * 8) (op x y)
  done;
  for i = full_words * 8 to nb - 1 do
    let x = Int64.of_int (Char.code (Bytes.get a.data i))
    and y = Int64.of_int (Char.code (Bytes.get b.data i)) in
    Bytes.set out i (Char.chr (Int64.to_int (op x y) land 0xff))
  done;
  { len = a.len; data = out }

let and_ a b = word_op2 Int64.logand a b
let or_ a b = word_op2 Int64.logor a b
let xor_ a b = word_op2 Int64.logxor a b

let map2 f a b =
  if a.len <> b.len then invalid_arg "Bitvec.map2";
  init a.len (fun i -> f (get a i) (get b i))

let lnot_ v =
  let nb = Bytes.length v.data in
  let out = Bytes.create nb in
  for i = 0 to nb - 1 do
    Bytes.set out i (Char.chr (lnot (Char.code (Bytes.get v.data i)) land 0xff))
  done;
  (* clear the unused high bits of the last byte to keep the invariant *)
  let rem = v.len land 7 in
  if rem > 0 && nb > 0 then begin
    let mask = (1 lsl rem) - 1 in
    Bytes.set out (nb - 1) (Char.chr (Char.code (Bytes.get out (nb - 1)) land mask))
  end;
  { len = v.len; data = out }

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (get v i)
  done;
  !acc

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (get v i)
  done

let to_string v = String.init v.len (fun i -> if get v i then '1' else '0')

let of_string s =
  init (String.length s) (fun i ->
      match s.[i] with
      | '1' -> true
      | '0' -> false
      | _ -> invalid_arg "Bitvec.of_string")

let pp ppf v = Format.pp_print_string ppf (to_string v)

let popcount code =
  let rec loop c acc = if c = 0 then acc else loop (c lsr 1) (acc + (c land 1)) in
  loop code 0

let achilles pairs =
  if pairs < 1 then invalid_arg "Families.achilles";
  Truthtable.of_fun (2 * pairs) (fun code ->
      let rec loop i =
        i < pairs
        && (code land (1 lsl (2 * i)) <> 0 && code land (1 lsl ((2 * i) + 1)) <> 0
           || loop (i + 1))
      in
      loop 0)

let achilles_good_order pairs = Array.init (2 * pairs) (fun i -> i)

let achilles_bad_order pairs =
  Array.init (2 * pairs) (fun i ->
      if i < pairs then 2 * i else (2 * (i - pairs)) + 1)

let parity n = Truthtable.of_fun n (fun code -> popcount code land 1 = 1)

let threshold n ~k = Truthtable.of_fun n (fun code -> popcount code >= k)

let majority n = threshold n ~k:((n / 2) + 1)

let weight_interval n ~lo ~hi =
  Truthtable.of_fun n (fun code ->
      let w = popcount code in
      lo <= w && w <= hi)

let symmetric values =
  let n = Array.length values - 1 in
  if n < 0 then invalid_arg "Families.symmetric";
  Truthtable.of_fun n (fun code -> values.(popcount code))

let hidden_weighted_bit n =
  Truthtable.of_fun n (fun code ->
      let w = popcount code in
      w > 0 && code land (1 lsl (w - 1)) <> 0)

let multiplexer ~select =
  if select < 1 then invalid_arg "Families.multiplexer";
  let n = select + (1 lsl select) in
  Truthtable.of_fun n (fun code ->
      let addr = code land ((1 lsl select) - 1) in
      code land (1 lsl (select + addr)) <> 0)

let adder_bit ~bits ~out =
  if bits < 1 || out < 0 || out > bits then invalid_arg "Families.adder_bit";
  Truthtable.of_fun (2 * bits) (fun code ->
      let a = code land ((1 lsl bits) - 1) in
      let b = code lsr bits in
      (a + b) land (1 lsl out) <> 0)

let catalogue ~max_arity =
  let entries =
    [
      (4, "achilles-2", fun () -> achilles 2);
      (6, "achilles-3", fun () -> achilles 3);
      (8, "achilles-4", fun () -> achilles 4);
      (6, "parity-6", fun () -> parity 6);
      (8, "parity-8", fun () -> parity 8);
      (7, "majority-7", fun () -> majority 7);
      (9, "majority-9", fun () -> majority 9);
      (8, "threshold-8-3", fun () -> threshold 8 ~k:3);
      (8, "interval-8-3-5", fun () -> weight_interval 8 ~lo:3 ~hi:5);
      (6, "hwb-6", fun () -> hidden_weighted_bit 6);
      (8, "hwb-8", fun () -> hidden_weighted_bit 8);
      (10, "hwb-10", fun () -> hidden_weighted_bit 10);
      (6, "mux-2", fun () -> multiplexer ~select:2);
      (11, "mux-3", fun () -> multiplexer ~select:3);
      (8, "adder-4-sum2", fun () -> adder_bit ~bits:4 ~out:2);
      (8, "adder-4-carry", fun () -> adder_bit ~bits:4 ~out:4);
      (10, "adder-5-carry", fun () -> adder_bit ~bits:5 ~out:5);
    ]
  in
  List.filter_map
    (fun (arity, name, build) ->
      if arity <= max_arity then Some (name, build ()) else None)
    entries

let bit_outputs n ~out_bits f =
  Array.init out_bits (fun j ->
      Truthtable.of_fun n (fun code -> f code land (1 lsl j) <> 0))

let multi_catalogue =
  [
    ("rd53", bit_outputs 5 ~out_bits:3 popcount);
    ("rd73", bit_outputs 7 ~out_bits:3 popcount);
    ("sqr3", bit_outputs 3 ~out_bits:6 (fun a -> a * a));
    ( "add3",
      bit_outputs 6 ~out_bits:4 (fun code -> (code land 7) + (code lsr 3)) );
    ( "mul2",
      bit_outputs 4 ~out_bits:4 (fun code -> (code land 3) * (code lsr 2)) );
    ( "cmp3",
      [|
        Truthtable.of_fun 6 (fun code -> code land 7 < code lsr 3);
        Truthtable.of_fun 6 (fun code -> code land 7 = code lsr 3);
      |] );
  ]

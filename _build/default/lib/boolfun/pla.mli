(** A reader/writer for the Berkeley PLA (espresso) exchange format.

    This gives the optimiser the standard EDA front door: two-level cover
    descriptions as produced by espresso and used by the LGSynth/MCNC
    benchmark suites.  Only the core of the format is supported:

    - [.i n] — number of inputs (required);
    - [.o m] — number of outputs (required);
    - [.p k] — number of product terms (optional, checked when present);
    - [.ilb]/[.ob] — names (stored, not interpreted);
    - cube lines [<in-part> <out-part>] with [0], [1], [-] in the input
      part and [0], [1], [-], [~] in the output part;
    - [.e]/[.end] terminator and [#] comments.

    Semantics are the usual F-type cover: output [j] is the OR of the
    cubes whose output part has ['1'] in column [j].  ['-'/'~'] in the
    output part are treated as "not in this cover" (don't-cares are not
    tracked separately — adequate for benchmark input). *)

type t

val inputs : t -> int
val outputs : t -> int
val num_cubes : t -> int

val input_names : t -> string array option
val output_names : t -> string array option

val of_string : string -> t
(** Parses the format above; raises [Failure] with a line-numbered message
    on malformed input. *)

val of_file : string -> t
(** Reads and parses a file. *)

val output_table : t -> int -> Truthtable.t
(** [output_table pla j] tabulates output [j] (costs [O(cubes · 2^n)]). *)

val tables : t -> Truthtable.t array
(** All outputs. *)

val of_truthtables : Truthtable.t array -> t
(** Builds a minterm-based cover representing the given functions (all of
    the same arity).  [tables (of_truthtables ts)] equals [ts]. *)

val to_string : t -> string
(** Renders in the accepted syntax. *)

lib/boolfun/blif.mli: Truthtable

lib/boolfun/expr.mli: Format Random Truthtable

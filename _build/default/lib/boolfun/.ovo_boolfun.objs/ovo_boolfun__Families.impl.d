lib/boolfun/families.ml: Array List Truthtable

lib/boolfun/truthtable.ml: Array Bitvec Format List Random String Sys

lib/boolfun/truthtable.mli: Bitvec Format Random

lib/boolfun/pla.mli: Truthtable

lib/boolfun/expr.ml: Char Format Int List Printf Random Set String Truthtable

lib/boolfun/pla.ml: Array Buffer List Printf String Truthtable

lib/boolfun/bitvec.ml: Array Bytes Char Format Hashtbl Int64 Stdlib String

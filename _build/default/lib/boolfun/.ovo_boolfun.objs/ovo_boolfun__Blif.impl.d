lib/boolfun/blif.ml: Hashtbl List Printf String Truthtable

lib/boolfun/mtable.mli: Format Truthtable

lib/boolfun/mtable.ml: Array Format Sys Truthtable

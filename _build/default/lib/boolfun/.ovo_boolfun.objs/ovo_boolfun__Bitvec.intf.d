lib/boolfun/bitvec.mli: Format

lib/boolfun/families.mli: Truthtable

type result = {
  mincost : int;
  order : int array;
  generations : int;
  probes : int;
}

let order_crossover rng p1 p2 =
  let n = Array.length p1 in
  if n = 0 then [||]
  else begin
    let i = Random.State.int rng n in
    let j = Random.State.int rng n in
    let lo = min i j and hi = max i j in
    let child = Array.make n (-1) in
    let taken = Array.make n false in
    for k = lo to hi do
      child.(k) <- p1.(k);
      taken.(p1.(k)) <- true
    done;
    let fill = ref 0 in
    Array.iter
      (fun v ->
        if not taken.(v) then begin
          while !fill >= lo && !fill <= hi do
            incr fill
          done;
          child.(!fill) <- v;
          incr fill
        end)
      p2;
    child
  end

let run_mtable ?(kind = Ovo_core.Compact.Bdd) ?(population = 16)
    ?(generations = 24) ?(mutation_rate = 0.3) ~rng mt =
  if population < 2 then invalid_arg "Genetic.run: population too small";
  let n = Ovo_boolfun.Mtable.arity mt in
  let base = Ovo_core.Compact.initial kind mt in
  let probes = ref 0 in
  let cost_of order =
    incr probes;
    (Ovo_core.Compact.compact_chain base order).Ovo_core.Compact.mincost
  in
  let individual order = (cost_of order, order) in
  let pool =
    ref
      (Array.init population (fun i ->
           individual (if i = 0 then Perm.identity n else Perm.random rng n)))
  in
  let by_cost (c1, _) (c2, _) = compare c1 c2 in
  Array.sort by_cost !pool;
  let tournament () =
    let pick () = !pool.(Random.State.int rng population) in
    let a = pick () and b = pick () in
    if fst a <= fst b then snd a else snd b
  in
  for _ = 1 to generations do
    let next = Array.make population !pool.(0) (* elitism: keep the best *) in
    for slot = 1 to population - 1 do
      let child = order_crossover rng (tournament ()) (tournament ()) in
      let child =
        if n > 1 && Random.State.float rng 1. < mutation_rate then
          Perm.move child ~from:(Random.State.int rng n)
            ~to_:(Random.State.int rng n)
        else child
      in
      next.(slot) <- individual child
    done;
    Array.sort by_cost next;
    pool := next
  done;
  let best_cost, best_order = !pool.(0) in
  {
    mincost = best_cost;
    order = best_order;
    generations;
    probes = !probes;
  }

let run ?kind ?population ?generations ?mutation_rate ~rng tt =
  run_mtable ?kind ?population ?generations ?mutation_rate ~rng
    (Ovo_boolfun.Mtable.of_truthtable tt)

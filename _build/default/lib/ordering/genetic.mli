(** Genetic-algorithm ordering search (Drechsler–Becker–Göckel style).

    The remaining classic from the BDD-minimisation literature: evolve a
    population of orderings with order-crossover (OX) and relocation
    mutation, selecting by diagram size.  GAs explore more globally than
    sifting's single trajectory at a much higher probe budget; the
    quality bench lines it up against the rest. *)

type result = {
  mincost : int;
  order : int array;
  generations : int;
  probes : int;
}

val run :
  ?kind:Ovo_core.Compact.kind ->
  ?population:int ->
  ?generations:int ->
  ?mutation_rate:float ->
  rng:Random.State.t ->
  Ovo_boolfun.Truthtable.t ->
  result
(** Defaults: population 16 (identity always seeded), 24 generations,
    mutation rate 0.3.  Elitism keeps the best individual, so the result
    never loses to the identity ordering. *)

val run_mtable :
  ?kind:Ovo_core.Compact.kind ->
  ?population:int ->
  ?generations:int ->
  ?mutation_rate:float ->
  rng:Random.State.t ->
  Ovo_boolfun.Mtable.t ->
  result

val order_crossover :
  Random.State.t -> int array -> int array -> int array
(** OX: copy a random slice from the first parent, fill the remaining
    positions with the second parent's elements in their relative order.
    Exposed for the property tests (the result must be a permutation). *)

(** The size spectrum of a function: the distribution of diagram sizes
    over {e all} [n!] orderings.

    The paper's motivation rests on this distribution being wide (the
    Fig. 1 family spans linear to exponential) and on good orderings
    being hard to hit blindly; computing the full spectrum (feasible up
    to [n ≈ 8]) quantifies both — the bench reports how rare the optimal
    orderings are and how much worse the mean and worst cases sit. *)

type t = {
  n : int;
  min_cost : int;
  max_cost : int;
  mean : float;
  optimal_orderings : int;  (** orderings achieving [min_cost] *)
  total_orderings : int;  (** [n!] *)
  histogram : (int * int) list;  (** [(cost, #orderings)], ascending *)
}

val compute :
  ?kind:Ovo_core.Compact.kind -> ?limit:int -> Ovo_boolfun.Truthtable.t -> t
(** Exhaustive over all orderings; refuses arities above [limit]
    (default 8). *)

val optimal_fraction : t -> float
(** [optimal_orderings / total_orderings] — the chance a uniformly
    random ordering is optimal. *)

val pp : Format.formatter -> t -> unit
(** One-line summary. *)

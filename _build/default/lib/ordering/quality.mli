(** Heuristic-quality reports — the paper's stated use for exact methods:
    "to judge the optimization quality of heuristics" (Sec. 1.1).

    For a function, run the exact optimiser and each heuristic, and
    report absolute sizes plus the ratio heuristic/optimum. *)

type entry = {
  method_name : string;
  mincost : int;
  ratio : float;  (** [mincost / exact_mincost]; 1.0 means optimal.  For
                      the degenerate constant function ([exact = 0]) the
                      ratio is 1.0 when the heuristic also reaches 0. *)
}

type report = {
  fn_name : string;
  arity : int;
  exact : int;  (** the FS optimum (non-terminal nodes) *)
  worst : int;  (** worst ordering found among the probes made (an
                    indication of the spread heuristics navigate) *)
  entries : entry list;
}

val evaluate :
  ?kind:Ovo_core.Compact.kind ->
  ?rng:Random.State.t ->
  name:string ->
  Ovo_boolfun.Truthtable.t ->
  report
(** Runs exact FS, sifting, window permutation, random search and
    simulated annealing (with the given or a fixed-seed RNG) on the
    function. *)

val pp_report : Format.formatter -> report -> unit
(** Aligned multi-line rendering. *)

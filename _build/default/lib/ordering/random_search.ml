type result = { mincost : int; order : int array; probes : int }

let run_mtable ?(kind = Ovo_core.Compact.Bdd) ?(samples = 100) ~rng mt =
  let n = Ovo_boolfun.Mtable.arity mt in
  let base = Ovo_core.Compact.initial kind mt in
  let cost_of order =
    (Ovo_core.Compact.compact_chain base order).Ovo_core.Compact.mincost
  in
  let best_order = ref (Perm.identity n) in
  let best_cost = ref (cost_of !best_order) in
  for _ = 1 to samples do
    let cand = Perm.random rng n in
    let c = cost_of cand in
    if c < !best_cost then begin
      best_cost := c;
      best_order := cand
    end
  done;
  { mincost = !best_cost; order = !best_order; probes = samples + 1 }

let run ?kind ?samples ~rng tt =
  run_mtable ?kind ?samples ~rng (Ovo_boolfun.Mtable.of_truthtable tt)

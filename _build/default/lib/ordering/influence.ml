let influences tt =
  let n = Ovo_boolfun.Truthtable.arity tt in
  let size = 1 lsl n in
  Array.init n (fun j ->
      let flips = ref 0 in
      for code = 0 to size - 1 do
        if
          Ovo_boolfun.Truthtable.eval tt code
          <> Ovo_boolfun.Truthtable.eval tt (code lxor (1 lsl j))
        then incr flips
      done;
      float_of_int !flips /. float_of_int size)

type result = { mincost : int; order : int array }

let run ?kind tt =
  let n = Ovo_boolfun.Truthtable.arity tt in
  let inf = influences tt in
  let by_influence =
    List.sort
      (fun (_, a) (_, b) -> compare (a : float) b)
      (List.init n (fun j -> (j, inf.(j))))
  in
  (* ascending influence = read last first, i.e. high influence at root *)
  let order = Array.of_list (List.map fst by_influence) in
  { mincost = Ovo_core.Eval_order.mincost ?kind tt order; order }

(** Brute-force optimal ordering — the paper's [O*(n!·2^n)] baseline.

    Evaluates every permutation with one compaction chain ([2^n - 1]
    table cells each).  This is the algorithm the FS dynamic program was
    invented to beat; the benches race them to show the crossover. *)

type result = {
  mincost : int;
  order : int array;  (** a witness optimum, read-last-first *)
  evaluated : int;  (** permutations tried, [n!] *)
}

val best : ?kind:Ovo_core.Compact.kind -> ?limit:int -> Ovo_boolfun.Truthtable.t -> result
(** Exhaustive search.  Refuses arities above [limit] (default 9) to
    protect the caller from [n!] explosions — raise the limit expressly
    if you mean it. *)

val best_mtable : ?kind:Ovo_core.Compact.kind -> ?limit:int -> Ovo_boolfun.Mtable.t -> result
(** Multi-terminal variant. *)

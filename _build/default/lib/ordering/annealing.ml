type result = { mincost : int; order : int array; probes : int; accepted : int }

let run_mtable ?(kind = Ovo_core.Compact.Bdd) ?(steps = 400)
    ?(start_temperature = 5.0) ?(cooling = 0.97) ?initial ~rng mt =
  let n = Ovo_boolfun.Mtable.arity mt in
  let base = Ovo_core.Compact.initial kind mt in
  let probes = ref 0 in
  let cost_of order =
    incr probes;
    (Ovo_core.Compact.compact_chain base order).Ovo_core.Compact.mincost
  in
  let current =
    ref (match initial with None -> Perm.identity n | Some o -> Array.copy o)
  in
  let current_cost = ref (cost_of !current) in
  let best = ref (Array.copy !current) and best_cost = ref !current_cost in
  let accepted = ref 0 in
  let temperature = ref start_temperature in
  if n > 1 then
    for _ = 1 to steps do
      let from = Random.State.int rng n in
      let to_ = Random.State.int rng n in
      if from <> to_ then begin
        let cand = Perm.move !current ~from ~to_ in
        let c = cost_of cand in
        let delta = float_of_int (c - !current_cost) in
        let accept =
          delta <= 0.
          || Random.State.float rng 1. < exp (-.delta /. Float.max !temperature 1e-9)
        in
        if accept then begin
          incr accepted;
          current := cand;
          current_cost := c;
          if c < !best_cost then begin
            best_cost := c;
            best := Array.copy cand
          end
        end
      end;
      temperature := !temperature *. cooling
    done;
  { mincost = !best_cost; order = !best; probes = !probes; accepted = !accepted }

let run ?kind ?steps ?start_temperature ?cooling ?initial ~rng tt =
  run_mtable ?kind ?steps ?start_temperature ?cooling ?initial ~rng
    (Ovo_boolfun.Mtable.of_truthtable tt)

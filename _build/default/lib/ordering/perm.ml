let identity n = Array.init n (fun i -> i)

(* Heap's algorithm, iterative over the recursion stack array. *)
let iter_all n f =
  let a = identity n in
  let c = Array.make n 0 in
  f a;
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let i = ref 0 in
  while !i < n do
    if c.(!i) < !i then begin
      if !i land 1 = 0 then swap 0 !i else swap c.(!i) !i;
      f a;
      c.(!i) <- c.(!i) + 1;
      i := 0
    end
    else begin
      c.(!i) <- 0;
      incr i
    end
  done

let shuffle_in_place st a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

let random st n =
  let a = identity n in
  shuffle_in_place st a;
  a

let move p ~from ~to_ =
  let n = Array.length p in
  if from < 0 || from >= n || to_ < 0 || to_ >= n then invalid_arg "Perm.move";
  let v = p.(from) in
  let q = Array.make n 0 in
  let src = ref 0 in
  for dst = 0 to n - 1 do
    if dst = to_ then q.(dst) <- v
    else begin
      if !src = from then incr src;
      q.(dst) <- p.(!src);
      incr src
    end
  done;
  q

let count n =
  let rec loop i acc = if i > n then acc else loop (i + 1) (acc *. float_of_int i) in
  loop 2 1.

type result = { mincost : int; order : int array; sweeps : int }

let run_mtable ?(kind = Ovo_core.Compact.Bdd) ?(block = 4) ?(max_sweeps = 8)
    ?initial mt =
  let n = Ovo_boolfun.Mtable.arity mt in
  let w = max 2 (min block (max n 2)) in
  let w = min w n in
  let base0 = Ovo_core.Compact.initial kind mt in
  let cost_of order =
    (Ovo_core.Compact.compact_chain base0 order).Ovo_core.Compact.mincost
  in
  let order =
    ref (match initial with None -> Perm.identity n | Some o -> Array.copy o)
  in
  let cost = ref (cost_of !order) in
  let sweeps = ref 0 in
  let improved = ref true in
  while !improved && !sweeps < max_sweeps do
    incr sweeps;
    improved := false;
    for start = 0 to n - w do
      (* state of the levels below the window *)
      let prefix = Array.sub !order 0 start in
      let base = Ovo_core.Compact.compact_chain base0 prefix in
      let window_vars =
        Ovo_core.Varset.of_list
          (Array.to_list (Array.sub !order start w))
      in
      (* exact DP over the window (Lemma 8) *)
      let st = Ovo_core.Fs_star.complete ~base window_vars in
      let best_block =
        (* the suborder achieved by the optimal state, window part only *)
        let full = Array.of_list (Ovo_core.Compact.order st) in
        Array.sub full start w
      in
      let cand = Array.copy !order in
      Array.blit best_block 0 cand start w;
      let c = cost_of cand in
      if c < !cost then begin
        cost := c;
        order := cand;
        improved := true
      end
    done
  done;
  { mincost = !cost; order = !order; sweeps = !sweeps }

let run ?kind ?block ?max_sweeps ?initial tt =
  run_mtable ?kind ?block ?max_sweeps ?initial
    (Ovo_boolfun.Mtable.of_truthtable tt)

lib/ordering/brute.mli: Ovo_boolfun Ovo_core

lib/ordering/spectrum.mli: Format Ovo_boolfun Ovo_core

lib/ordering/random_search.mli: Ovo_boolfun Ovo_core Random

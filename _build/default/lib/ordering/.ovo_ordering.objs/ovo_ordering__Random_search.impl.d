lib/ordering/random_search.ml: Ovo_boolfun Ovo_core Perm

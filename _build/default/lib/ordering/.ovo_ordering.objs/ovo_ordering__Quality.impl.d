lib/ordering/quality.ml: Annealing Format Genetic List Ovo_boolfun Ovo_core Perm Random Random_search Sifting Window

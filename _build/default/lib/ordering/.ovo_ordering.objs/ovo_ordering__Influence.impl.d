lib/ordering/influence.ml: Array List Ovo_boolfun Ovo_core

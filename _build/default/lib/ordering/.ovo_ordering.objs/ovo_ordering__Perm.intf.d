lib/ordering/perm.mli: Random

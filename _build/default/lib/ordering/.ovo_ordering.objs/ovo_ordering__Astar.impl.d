lib/ordering/astar.ml: Array Hashtbl Ovo_boolfun Ovo_core Set

lib/ordering/spectrum.ml: Format Hashtbl List Option Ovo_boolfun Ovo_core Perm

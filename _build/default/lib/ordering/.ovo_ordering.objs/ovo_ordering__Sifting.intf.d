lib/ordering/sifting.mli: Ovo_boolfun Ovo_core

lib/ordering/portfolio.mli: Ovo_boolfun Ovo_core Random

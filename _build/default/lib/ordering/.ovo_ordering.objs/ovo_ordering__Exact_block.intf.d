lib/ordering/exact_block.mli: Ovo_boolfun Ovo_core

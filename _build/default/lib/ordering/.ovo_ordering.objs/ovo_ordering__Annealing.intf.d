lib/ordering/annealing.mli: Ovo_boolfun Ovo_core Random

lib/ordering/portfolio.ml: Annealing Exact_block Genetic Influence List Ovo_core Random Random_search Sifting Window

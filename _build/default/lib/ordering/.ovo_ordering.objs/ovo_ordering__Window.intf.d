lib/ordering/window.mli: Ovo_boolfun Ovo_core

lib/ordering/annealing.ml: Array Float Ovo_boolfun Ovo_core Perm Random

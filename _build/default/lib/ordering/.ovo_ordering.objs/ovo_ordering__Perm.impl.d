lib/ordering/perm.ml: Array Random

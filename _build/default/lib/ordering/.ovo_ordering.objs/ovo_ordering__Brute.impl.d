lib/ordering/brute.ml: Array Ovo_boolfun Ovo_core Perm

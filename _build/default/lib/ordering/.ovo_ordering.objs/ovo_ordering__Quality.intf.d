lib/ordering/quality.mli: Format Ovo_boolfun Ovo_core Random

lib/ordering/influence.mli: Ovo_boolfun Ovo_core

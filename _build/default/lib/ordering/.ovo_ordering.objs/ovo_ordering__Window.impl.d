lib/ordering/window.ml: Array Ovo_boolfun Ovo_core Perm

lib/ordering/genetic.ml: Array Ovo_boolfun Ovo_core Perm Random

lib/ordering/genetic.mli: Ovo_boolfun Ovo_core Random

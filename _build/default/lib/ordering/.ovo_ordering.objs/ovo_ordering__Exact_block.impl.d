lib/ordering/exact_block.ml: Array Ovo_boolfun Ovo_core Perm

lib/ordering/astar.mli: Ovo_boolfun Ovo_core

lib/ordering/sifting.ml: Array List Ovo_boolfun Ovo_core Perm

(** Influence-based static ordering — a structure-driven heuristic.

    The influence of a variable is the probability that flipping it
    flips the function on a uniform input (its Boolean-Fourier weight).
    A classical static-ordering rule of thumb places high-influence
    variables near the root: they split the function most decisively, so
    the sub-functions below shrink fastest.  Static heuristics cost one
    pass over the table ([O(n·2^n)]) instead of the repeated probing of
    sifting; the quality benches show how much optimality that buys or
    costs. *)

val influences : Ovo_boolfun.Truthtable.t -> float array
(** [influences tt].(j) = Pr over uniform [x] that
    [f(x) ≠ f(x xor e_j)]. *)

type result = {
  mincost : int;
  order : int array;  (** read-last first; high influence at the root *)
}

val run : ?kind:Ovo_core.Compact.kind -> Ovo_boolfun.Truthtable.t -> result
(** Order variables by descending influence (ties by index), evaluate
    once. *)

type entry = { method_name : string; mincost : int; order : int array }

type result = { best : entry; entries : entry list }

let run ?(kind = Ovo_core.Compact.Bdd) ?rng tt =
  let rng = match rng with Some r -> r | None -> Random.State.make [| 0x0BDD |] in
  let members =
    [
      (let r = Influence.run ~kind tt in
       { method_name = "influence"; mincost = r.Influence.mincost; order = r.Influence.order });
      (let r = Sifting.run ~kind tt in
       { method_name = "sifting"; mincost = r.Sifting.mincost; order = r.Sifting.order });
      (let r = Window.run ~kind tt in
       { method_name = "window"; mincost = r.Window.mincost; order = r.Window.order });
      (let r = Annealing.run ~kind ~rng tt in
       { method_name = "annealing"; mincost = r.Annealing.mincost; order = r.Annealing.order });
      (let r = Genetic.run ~kind ~rng tt in
       { method_name = "genetic"; mincost = r.Genetic.mincost; order = r.Genetic.order });
      (let r = Random_search.run ~kind ~rng tt in
       { method_name = "random"; mincost = r.Random_search.mincost; order = r.Random_search.order });
      (let r = Exact_block.run ~kind tt in
       { method_name = "exact-block"; mincost = r.Exact_block.mincost; order = r.Exact_block.order });
    ]
  in
  let sorted =
    List.sort (fun a b -> compare a.mincost b.mincost) members
  in
  match sorted with
  | [] -> assert false
  | best :: _ -> { best; entries = sorted }

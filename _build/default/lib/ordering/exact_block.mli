(** Hybrid heuristic: exact optimisation of contiguous blocks.

    The paper (after [MT98, Sec. 9.22]) motivates exact methods partly
    because they "can be applied at least to parts of the OBDDs within a
    heuristics procedure".  This module is that procedure: a window of
    [block] adjacent levels is re-ordered {e exactly} — not by the
    [w!] enumeration of {!Window}, but by running the composable dynamic
    program [FS*] (Lemma 8) from the compaction state of the levels below
    the window.  Lemma 3 guarantees the levels above the window keep
    their widths (they depend only on the {e set} split), so each window
    step can only improve the size; sweeps repeat until a fixed point.

    Cost per window position: [O(2^(n-s) · 3^w)] cells instead of
    [O(w! · 2^n)] — for [w ≥ 5] the DP is already the cheaper exact
    window. *)

type result = {
  mincost : int;
  order : int array;
  sweeps : int;
}

val run :
  ?kind:Ovo_core.Compact.kind ->
  ?block:int ->
  ?max_sweeps:int ->
  ?initial:int array ->
  Ovo_boolfun.Truthtable.t ->
  result
(** Default [block] 4 (clamped to [n]; [block = n] degenerates to the
    full exact FS), default [max_sweeps] 8. *)

val run_mtable :
  ?kind:Ovo_core.Compact.kind ->
  ?block:int ->
  ?max_sweeps:int ->
  ?initial:int array ->
  Ovo_boolfun.Mtable.t ->
  result

(** Simulated-annealing ordering search.

    The remaining classic from the reordering-heuristics family: random
    neighbourhood moves (relocating one variable) accepted when they
    improve the size or, with probability [exp(-delta/T)], when they do
    not; the temperature [T] decays geometrically.  Anneals escape the
    local optima that trap sifting and window permutation, at the price
    of many more probes — the quality benches put all of them side by
    side against the exact optimum. *)

type result = {
  mincost : int;
  order : int array;
  probes : int;  (** orderings evaluated *)
  accepted : int;  (** moves accepted (including uphill ones) *)
}

val run :
  ?kind:Ovo_core.Compact.kind ->
  ?steps:int ->
  ?start_temperature:float ->
  ?cooling:float ->
  ?initial:int array ->
  rng:Random.State.t ->
  Ovo_boolfun.Truthtable.t ->
  result
(** Defaults: 400 steps, start temperature 5.0 (in node-count units),
    cooling factor 0.97 per step.  The best ordering ever seen is
    returned, so the result never loses to its initial ordering. *)

val run_mtable :
  ?kind:Ovo_core.Compact.kind ->
  ?steps:int ->
  ?start_temperature:float ->
  ?cooling:float ->
  ?initial:int array ->
  rng:Random.State.t ->
  Ovo_boolfun.Mtable.t ->
  result

type t = {
  n : int;
  min_cost : int;
  max_cost : int;
  mean : float;
  optimal_orderings : int;
  total_orderings : int;
  histogram : (int * int) list;
}

let compute ?(kind = Ovo_core.Compact.Bdd) ?(limit = 8) tt =
  let n = Ovo_boolfun.Truthtable.arity tt in
  if n > limit then invalid_arg "Spectrum.compute: arity above limit";
  let base =
    Ovo_core.Compact.initial kind (Ovo_boolfun.Mtable.of_truthtable tt)
  in
  let counts = Hashtbl.create 32 in
  let total = ref 0 and sum = ref 0 in
  Perm.iter_all n (fun order ->
      let c = (Ovo_core.Compact.compact_chain base order).Ovo_core.Compact.mincost in
      incr total;
      sum := !sum + c;
      Hashtbl.replace counts c
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)));
  let histogram =
    Hashtbl.fold (fun cost count acc -> (cost, count) :: acc) counts []
    |> List.sort compare
  in
  match histogram with
  | [] -> invalid_arg "Spectrum.compute: empty spectrum"
  | (min_cost, optimal_orderings) :: _ ->
      let max_cost = fst (List.nth histogram (List.length histogram - 1)) in
      {
        n;
        min_cost;
        max_cost;
        mean = float_of_int !sum /. float_of_int !total;
        optimal_orderings;
        total_orderings = !total;
        histogram;
      }

let optimal_fraction s =
  float_of_int s.optimal_orderings /. float_of_int s.total_orderings

let pp ppf s =
  Format.fprintf ppf
    "n=%d orderings=%d min=%d (%.1f%% optimal) mean=%.1f max=%d" s.n
    s.total_orderings s.min_cost
    (100. *. optimal_fraction s)
    s.mean s.max_cost

type entry = { method_name : string; mincost : int; ratio : float }

type report = {
  fn_name : string;
  arity : int;
  exact : int;
  worst : int;
  entries : entry list;
}

let evaluate ?(kind = Ovo_core.Compact.Bdd) ?rng ~name tt =
  let rng = match rng with Some r -> r | None -> Random.State.make [| 0x0BDD |] in
  let n = Ovo_boolfun.Truthtable.arity tt in
  let exact = (Ovo_core.Fs.run ~kind tt).Ovo_core.Fs.mincost in
  let ratio c =
    if exact = 0 then if c = 0 then 1.0 else infinity
    else float_of_int c /. float_of_int exact
  in
  let sift = Sifting.run ~kind tt in
  let win = Window.run ~kind tt in
  let rand = Random_search.run ~kind ~rng tt in
  let anneal = Annealing.run ~kind ~rng tt in
  let genetic = Genetic.run ~kind ~rng tt in
  (* sample for a pessimistic ordering: max over random probes *)
  let worst = ref 0 in
  for _ = 1 to 50 do
    let c = Ovo_core.Eval_order.mincost ~kind tt (Perm.random rng n) in
    if c > !worst then worst := c
  done;
  let entry name c = { method_name = name; mincost = c; ratio = ratio c } in
  {
    fn_name = name;
    arity = n;
    exact;
    worst = !worst;
    entries =
      [
        entry "sifting" sift.Sifting.mincost;
        entry "window-3" win.Window.mincost;
        entry "random-100" rand.Random_search.mincost;
        entry "annealing" anneal.Annealing.mincost;
        entry "genetic" genetic.Genetic.mincost;
      ];
  }

let pp_report ppf r =
  Format.fprintf ppf "%-16s n=%-2d exact=%-5d worst-seen=%-5d" r.fn_name r.arity
    r.exact r.worst;
  List.iter
    (fun e ->
      Format.fprintf ppf "  %s=%d(%.2fx)" e.method_name e.mincost e.ratio)
    r.entries

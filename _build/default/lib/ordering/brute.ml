type result = { mincost : int; order : int array; evaluated : int }

let best_mtable ?(kind = Ovo_core.Compact.Bdd) ?(limit = 9) mt =
  let n = Ovo_boolfun.Mtable.arity mt in
  if n > limit then invalid_arg "Brute.best: arity above limit";
  let base = Ovo_core.Compact.initial kind mt in
  let best_cost = ref max_int and best_order = ref (Perm.identity n) in
  let evaluated = ref 0 in
  Perm.iter_all n (fun p ->
      incr evaluated;
      let st = Ovo_core.Compact.compact_chain base p in
      if st.Ovo_core.Compact.mincost < !best_cost then begin
        best_cost := st.Ovo_core.Compact.mincost;
        best_order := Array.copy p
      end);
  { mincost = !best_cost; order = !best_order; evaluated = !evaluated }

let best ?kind ?limit tt =
  best_mtable ?kind ?limit (Ovo_boolfun.Mtable.of_truthtable tt)

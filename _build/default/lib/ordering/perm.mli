(** Permutation utilities shared by the ordering searches. *)

val identity : int -> int array

val iter_all : int -> (int array -> unit) -> unit
(** Calls the function on every permutation of [0..n-1] (the array is
    reused between calls; copy it if you keep it).  [n! ] iterations —
    guard the caller. *)

val random : Random.State.t -> int -> int array
(** Uniform random permutation (Fisher–Yates). *)

val shuffle_in_place : Random.State.t -> int array -> unit

val move : int array -> from:int -> to_:int -> int array
(** [move p ~from ~to_] removes the element at index [from] and
    re-inserts it at index [to_], shifting the others; returns a fresh
    array. *)

val count : int -> float
(** [n!] as a float. *)

(** Random-restart ordering search — the weakest baseline: sample [m]
    uniform orderings and keep the best.  Its gap to the exact optimum
    calibrates how much structure the smarter methods exploit. *)

type result = {
  mincost : int;
  order : int array;
  probes : int;
}

val run :
  ?kind:Ovo_core.Compact.kind ->
  ?samples:int ->
  rng:Random.State.t ->
  Ovo_boolfun.Truthtable.t ->
  result
(** Default 100 samples; the identity ordering is always included so the
    result never loses to "no search at all". *)

val run_mtable :
  ?kind:Ovo_core.Compact.kind ->
  ?samples:int ->
  rng:Random.State.t ->
  Ovo_boolfun.Mtable.t ->
  result

type t = int

let empty = 0
let full n = (1 lsl n) - 1
let mem i s = s land (1 lsl i) <> 0
let add i s = s lor (1 lsl i)
let remove i s = s land lnot (1 lsl i)
let singleton i = 1 lsl i
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let subset a b = a land lnot b = 0
let disjoint a b = a land b = 0

let cardinal s =
  let rec loop s acc = if s = 0 then acc else loop (s lsr 1) (acc + (s land 1)) in
  loop s 0

let is_empty s = s = 0

let iter f s =
  let rec loop s =
    if s <> 0 then begin
      let low = s land -s in
      (* index of the lowest set bit *)
      let rec log2 v acc = if v = 1 then acc else log2 (v lsr 1) (acc + 1) in
      f (log2 low 0);
      loop (s land (s - 1))
    end
  in
  loop s

let fold f s acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list l = List.fold_left (fun s i -> add i s) empty l

let min_elt s =
  if s = 0 then raise Not_found
  else
    let low = s land -s in
    let rec log2 v acc = if v = 1 then acc else log2 (v lsr 1) (acc + 1) in
    log2 low 0

let rank_in i s = cardinal (s land ((1 lsl i) - 1))

let iter_subsets_of_size ~n ~k f =
  if k < 0 || k > n then invalid_arg "Varset.iter_subsets_of_size";
  if k = 0 then f 0
  else begin
    let limit = 1 lsl n in
    let s = ref ((1 lsl k) - 1) in
    while !s < limit do
      f !s;
      (* Gosper's hack: next integer with the same popcount. *)
      let c = !s land - !s in
      let r = !s + c in
      s := (((r lxor !s) lsr 2) / c) lor r
    done
  end

let subsets_of_size ~n ~k =
  let acc = ref [] in
  iter_subsets_of_size ~n ~k (fun s -> acc := s :: !acc);
  List.rev !acc

(* Subsets of an arbitrary set: enumerate subsets of [{0..m-1}] for
   [m = cardinal s] and spread the chosen positions onto [s]'s members. *)
let iter_subsets_of s ~size f =
  let members = Array.of_list (elements s) in
  let m = Array.length members in
  if size < 0 || size > m then invalid_arg "Varset.iter_subsets_of";
  iter_subsets_of_size ~n:m ~k:size (fun packed ->
      let sub = fold (fun pos acc -> add members.(pos) acc) packed empty in
      f sub)

let pp ppf s =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (elements s)))

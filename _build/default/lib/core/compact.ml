type kind = Bdd | Zdd

type state = {
  n : int;
  kind : kind;
  num_terminals : int;
  assigned : Varset.t;
  order_rev : int list;
  table : int array;
  node : (int * int * int, int) Hashtbl.t;
  mincost : int;
  next_id : int;
}

let initial kind mt =
  let n = Ovo_boolfun.Mtable.arity mt in
  let num_terminals = Ovo_boolfun.Mtable.num_values mt in
  {
    n;
    kind;
    num_terminals;
    assigned = Varset.empty;
    order_rev = [];
    table = Array.init (1 lsl n) (Ovo_boolfun.Mtable.eval mt);
    node = Hashtbl.create 16;
    mincost = 0;
    next_id = num_terminals;
  }

let of_truthtable kind tt =
  initial kind (Ovo_boolfun.Mtable.of_truthtable tt)

(* One table compaction w.r.t. variable [i].  For each assignment [b] to
   the remaining free variables, fetch the two cofactor nodes and apply
   the reduction rule of [st.kind]; create a fresh node only when the pair
   is new at this variable. *)
let compact st i =
  if i < 0 || i >= st.n then invalid_arg "Compact.compact: variable out of range";
  if Varset.mem i st.assigned then
    invalid_arg "Compact.compact: variable already assigned";
  let freeset = Varset.diff (Varset.full st.n) st.assigned in
  let p = Varset.rank_in i freeset in
  let new_len = Array.length st.table / 2 in
  let table = Array.make (max new_len 1) 0 in
  let node = Hashtbl.copy st.node in
  let mincost = ref st.mincost in
  let next_id = ref st.next_id in
  let low_mask = (1 lsl p) - 1 in
  for b = 0 to new_len - 1 do
    let idx0 = ((b lsr p) lsl (p + 1)) lor (b land low_mask) in
    let lo = st.table.(idx0) in
    let hi = st.table.(idx0 lor (1 lsl p)) in
    let elided =
      match st.kind with Bdd -> lo = hi | Zdd -> hi = 0
    in
    if elided then table.(b) <- lo
    else
      let key = (i, lo, hi) in
      match Hashtbl.find_opt node key with
      | Some u -> table.(b) <- u
      | None ->
          let u = !next_id in
          incr next_id;
          incr mincost;
          Cost.add_node ();
          Hashtbl.add node key u;
          table.(b) <- u
  done;
  Cost.add_cells new_len;
  Cost.add_compaction ();
  {
    st with
    assigned = Varset.add i st.assigned;
    order_rev = i :: st.order_rev;
    table;
    node;
    mincost = !mincost;
    next_id = !next_id;
  }

let compact_chain st vars = Array.fold_left compact st vars

let width_of_last ~before ~after = after.mincost - before.mincost

let free st = Varset.diff (Varset.full st.n) st.assigned

let order st = List.rev st.order_rev

let is_complete st = st.assigned = Varset.full st.n

let root st =
  if not (is_complete st) then invalid_arg "Compact.root: state not complete";
  st.table.(0)

lib/core/bounds.mli: Ovo_boolfun

lib/core/shared.mli: Compact Diagram Engine Hashtbl Metrics Ovo_boolfun Varset

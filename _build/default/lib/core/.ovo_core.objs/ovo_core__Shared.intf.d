lib/core/shared.mli: Compact Diagram Hashtbl Ovo_boolfun Varset

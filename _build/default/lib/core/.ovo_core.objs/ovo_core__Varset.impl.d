lib/core/varset.ml: Array Format List String

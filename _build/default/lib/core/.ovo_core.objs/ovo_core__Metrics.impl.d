lib/core/metrics.ml: Format Printf

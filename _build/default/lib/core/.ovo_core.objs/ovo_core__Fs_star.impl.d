lib/core/fs_star.ml: Compact Hashtbl Logs String Subset_dp Varset

lib/core/bounds.ml: Array Float List Ovo_boolfun

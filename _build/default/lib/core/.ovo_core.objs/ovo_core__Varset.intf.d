lib/core/varset.mli: Format

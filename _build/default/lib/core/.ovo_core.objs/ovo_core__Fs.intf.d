lib/core/fs.mli: Compact Diagram Hashtbl Ovo_boolfun Varset

lib/core/fs.mli: Compact Diagram Engine Hashtbl Metrics Ovo_boolfun Varset

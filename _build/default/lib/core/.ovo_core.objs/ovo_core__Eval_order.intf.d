lib/core/eval_order.mli: Compact Diagram Ovo_boolfun

lib/core/diagram.ml: Array Buffer Compact Format Hashtbl List Ovo_boolfun Printf String

lib/core/cost.ml: Format Metrics

lib/core/engine.mli: Format Metrics

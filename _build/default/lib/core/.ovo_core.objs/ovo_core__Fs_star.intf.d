lib/core/fs_star.mli: Compact Engine Hashtbl Metrics Subset_dp Varset

lib/core/fs_star.mli: Compact Hashtbl Varset

lib/core/subset_dp.mli: Hashtbl Varset

lib/core/subset_dp.mli: Engine Hashtbl Metrics Varset

lib/core/compact.mli: Hashtbl Ovo_boolfun Varset

lib/core/compact.mli: Hashtbl Metrics Ovo_boolfun Varset

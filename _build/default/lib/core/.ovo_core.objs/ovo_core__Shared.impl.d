lib/core/shared.ml: Array Buffer Compact Diagram Hashtbl List Metrics Ovo_boolfun Printf Subset_dp Varset

lib/core/shared.ml: Array Buffer Compact Cost Diagram Hashtbl List Ovo_boolfun Printf Subset_dp Varset

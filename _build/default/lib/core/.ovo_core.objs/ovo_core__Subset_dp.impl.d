lib/core/subset_dp.ml: Hashtbl Varset

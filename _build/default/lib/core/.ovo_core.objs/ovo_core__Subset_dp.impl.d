lib/core/subset_dp.ml: Array Engine Hashtbl List Metrics Varset

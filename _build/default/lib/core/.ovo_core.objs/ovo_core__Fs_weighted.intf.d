lib/core/fs_weighted.mli: Compact Diagram Engine Metrics Ovo_boolfun

lib/core/fs_weighted.mli: Compact Diagram Ovo_boolfun

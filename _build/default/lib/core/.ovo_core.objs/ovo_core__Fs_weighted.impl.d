lib/core/fs_weighted.ml: Array Compact Diagram Ovo_boolfun Subset_dp

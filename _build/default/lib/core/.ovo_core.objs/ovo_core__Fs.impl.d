lib/core/fs.ml: Array Compact Diagram Fs_star Hashtbl Ovo_boolfun Varset

lib/core/diagram.mli: Compact Format Ovo_boolfun

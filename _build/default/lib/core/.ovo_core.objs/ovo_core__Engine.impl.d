lib/core/engine.ml: Array Domain Format Metrics Printf String

lib/core/eval_order.ml: Array Compact Diagram Ovo_boolfun

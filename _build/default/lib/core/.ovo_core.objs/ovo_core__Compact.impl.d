lib/core/compact.ml: Array Hashtbl List Metrics Ovo_boolfun Printf Varset

lib/core/compact.ml: Array Cost Hashtbl List Ovo_boolfun Varset

type node = { var : int; lo : int; hi : int }

type t = {
  n : int;
  kind : Compact.kind;
  num_terminals : int;
  root : int;
  order : int array;
  nodes : node array;
}

let of_state (st : Compact.state) =
  if not (Compact.is_complete st) then
    invalid_arg "Diagram.of_state: state not complete";
  let count = st.next_id - st.num_terminals in
  let nodes = Array.make count { var = -1; lo = 0; hi = 0 } in
  Hashtbl.iter
    (fun (var, lo, hi) id -> nodes.(id - st.num_terminals) <- { var; lo; hi })
    st.node;
  {
    n = st.n;
    kind = st.kind;
    num_terminals = st.num_terminals;
    root = Compact.root st;
    order = Array.of_list (Compact.order st);
    nodes;
  }

let node_count d = Array.length d.nodes

let is_terminal d u = u < d.num_terminals

let reachable_terminals d =
  let seen = Array.make d.num_terminals false in
  if is_terminal d d.root then seen.(d.root) <- true;
  Array.iter
    (fun nd ->
      if is_terminal d nd.lo then seen.(nd.lo) <- true;
      if is_terminal d nd.hi then seen.(nd.hi) <- true)
    d.nodes;
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen

let size d = node_count d + reachable_terminals d

let level_widths d =
  let widths = Array.make d.n 0 in
  let level_of_var = Array.make d.n (-1) in
  Array.iteri (fun j v -> level_of_var.(v) <- j) d.order;
  Array.iter
    (fun nd -> widths.(level_of_var.(nd.var)) <- widths.(level_of_var.(nd.var)) + 1)
    d.nodes;
  widths

(* Walk levels from the root (highest) down to 1.  At each level the
   current node either tests that level's variable (follow the edge) or
   skips it; a skipped set variable kills a ZDD path. *)
let eval d code =
  let cur = ref d.root in
  let dead = ref false in
  for level = d.n - 1 downto 0 do
    let v = d.order.(level) in
    let bit = code land (1 lsl v) <> 0 in
    if not !dead then
      if is_terminal d !cur then begin
        match d.kind with
        | Compact.Bdd -> ()
        | Compact.Zdd -> if bit then dead := true
      end
      else
        let nd = d.nodes.(!cur - d.num_terminals) in
        if nd.var = v then cur := (if bit then nd.hi else nd.lo)
        else begin
          match d.kind with
          | Compact.Bdd -> ()
          | Compact.Zdd -> if bit then dead := true
        end
  done;
  if !dead then 0
  else begin
    assert (is_terminal d !cur);
    !cur
  end

let eval_bool d code = eval d code <> 0

let to_mtable d =
  Ovo_boolfun.Mtable.of_fun d.n ~values:d.num_terminals (eval d)

let to_truthtable d =
  if d.num_terminals <> 2 then
    invalid_arg "Diagram.to_truthtable: not a two-terminal diagram";
  Ovo_boolfun.Truthtable.of_fun d.n (eval_bool d)

let check d mt =
  Ovo_boolfun.Mtable.arity mt = d.n
  && Ovo_boolfun.Mtable.num_values mt <= d.num_terminals
  &&
  let ok = ref true in
  for code = 0 to (1 lsl d.n) - 1 do
    if eval d code <> Ovo_boolfun.Mtable.eval mt code then ok := false
  done;
  !ok

let check_tt d tt = check d (Ovo_boolfun.Mtable.of_truthtable tt)

let of_parts ~kind ~n ~num_terminals ~order ~nodes ~root =
  if num_terminals < 1 then failwith "Diagram.of_parts: need a terminal";
  if Array.length order <> n then failwith "Diagram.of_parts: order length";
  let seen = Array.make (max n 1) false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n || seen.(v) then
        failwith "Diagram.of_parts: order is not a permutation";
      seen.(v) <- true)
    order;
  let max_id = num_terminals + Array.length nodes in
  if root < 0 || root >= max_id then failwith "Diagram.of_parts: bad root";
  let level_of_var = Array.make (max n 1) (-1) in
  Array.iteri (fun j v -> level_of_var.(v) <- j) order;
  Array.iter
    (fun nd ->
      if nd.var < 0 || nd.var >= n then
        failwith "Diagram.of_parts: variable out of range";
      if nd.lo < 0 || nd.lo >= max_id || nd.hi < 0 || nd.hi >= max_id then
        failwith "Diagram.of_parts: dangling child";
      let check_child c =
        if
          c >= num_terminals
          && level_of_var.(nodes.(c - num_terminals).var)
             >= level_of_var.(nd.var)
        then failwith "Diagram.of_parts: edge does not descend"
      in
      check_child nd.lo;
      check_child nd.hi)
    nodes;
  { n; kind; num_terminals; root; order; nodes = Array.copy nodes }

let serialize d =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "ovo-diagram 1\n";
  Buffer.add_string buf
    (Printf.sprintf "kind %s\n"
       (match d.kind with Compact.Bdd -> "bdd" | Compact.Zdd -> "zdd"));
  Buffer.add_string buf (Printf.sprintf "n %d\n" d.n);
  Buffer.add_string buf (Printf.sprintf "terminals %d\n" d.num_terminals);
  Buffer.add_string buf
    (Printf.sprintf "order %s\n"
       (String.concat " " (List.map string_of_int (Array.to_list d.order))));
  Buffer.add_string buf (Printf.sprintf "root %d\n" d.root);
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (Array.length d.nodes));
  Array.iteri
    (fun i nd ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d %d\n" (i + d.num_terminals) nd.var nd.lo
           nd.hi))
    d.nodes;
  Buffer.contents buf

let deserialize text =
  let fail line msg =
    failwith (Printf.sprintf "Diagram.deserialize: line %d: %s" line msg)
  in
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  let words (lineno, l) =
    ( lineno,
      String.split_on_char ' ' l |> List.filter (fun w -> w <> "") )
  in
  match List.map words lines with
  | (l1, [ "ovo-diagram"; "1" ])
    :: (l2, "kind" :: [ kind_word ])
    :: (_, "n" :: [ n_word ])
    :: (_, "terminals" :: [ t_word ])
    :: (lo_line, "order" :: order_words)
    :: (_, "root" :: [ root_word ])
    :: (lc, "nodes" :: [ count_word ])
    :: node_lines ->
      ignore l1;
      let kind =
        match kind_word with
        | "bdd" -> Compact.Bdd
        | "zdd" -> Compact.Zdd
        | _ -> fail l2 "unknown kind"
      in
      let n = int_of_string n_word in
      let num_terminals = int_of_string t_word in
      if num_terminals < 1 then fail l2 "need at least one terminal";
      let order = Array.of_list (List.map int_of_string order_words) in
      if Array.length order <> n then fail lo_line "order length mismatch";
      let seen = Array.make (max n 1) false in
      Array.iter
        (fun v ->
          if v < 0 || v >= n || seen.(v) then
            fail lo_line "order is not a permutation";
          seen.(v) <- true)
        order;
      let count = int_of_string count_word in
      if List.length node_lines <> count then fail lc "node count mismatch";
      let nodes = Array.make count { var = -1; lo = 0; hi = 0 } in
      let max_id = num_terminals + count in
      List.iteri
        (fun i (lineno, ws) ->
          match List.map int_of_string ws with
          | [ id; var; lo; hi ] ->
              if id <> i + num_terminals then fail lineno "ids must be dense";
              if var < 0 || var >= n then fail lineno "variable out of range";
              if lo < 0 || lo >= max_id || hi < 0 || hi >= max_id then
                fail lineno "dangling child reference";
              nodes.(i) <- { var; lo; hi }
          | _ | (exception Failure _) -> fail lineno "malformed node line")
        node_lines;
      let root = int_of_string root_word in
      if root < 0 || root >= max_id then failwith "Diagram.deserialize: bad root";
      (* ordering sanity: every edge must descend strictly in level *)
      let level_of_var = Array.make (max n 1) (-1) in
      Array.iteri (fun j v -> level_of_var.(v) <- j) order;
      Array.iter
        (fun nd ->
          let check_child c =
            if
              c >= num_terminals
              && level_of_var.(nodes.(c - num_terminals).var)
                 >= level_of_var.(nd.var)
            then failwith "Diagram.deserialize: edge does not descend"
          in
          check_child nd.lo;
          check_child nd.hi)
        nodes;
      { n; kind; num_terminals; root; order; nodes }
  | _ -> failwith "Diagram.deserialize: malformed header"

let to_dot ?(name = "diagram") d =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=TB;\n";
  let reachable = Hashtbl.create 16 in
  let rec mark u =
    if not (Hashtbl.mem reachable u) then begin
      Hashtbl.add reachable u ();
      if not (is_terminal d u) then begin
        let nd = d.nodes.(u - d.num_terminals) in
        mark nd.lo;
        mark nd.hi
      end
    end
  in
  mark d.root;
  for t = 0 to d.num_terminals - 1 do
    if Hashtbl.mem reachable t then
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=box,label=\"%d\"];\n" t t)
  done;
  Array.iteri
    (fun i nd ->
      let u = i + d.num_terminals in
      if Hashtbl.mem reachable u then begin
        Buffer.add_string buf
          (Printf.sprintf "  n%d [shape=circle,label=\"x%d\"];\n" u nd.var);
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [style=dashed];\n" u nd.lo);
        Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u nd.hi)
      end)
    d.nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf d =
  let kind = match d.kind with Compact.Bdd -> "bdd" | Compact.Zdd -> "zdd" in
  Format.fprintf ppf "%s(n=%d, size=%d, order=[%s])" kind d.n (size d)
    (String.concat ";" (List.map string_of_int (Array.to_list d.order)))

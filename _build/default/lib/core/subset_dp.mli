(** The subset dynamic program of Lemmas 4/7, abstracted over the state
    being compacted.

    Both the single-rooted [FS*] ({!Fs_star}) and the multi-rooted
    variant ({!Shared}) run the same loop: for growing cardinality [k],
    compute the optimal state for every [K ⊆ J] with [|K| = k] by trying
    each [h ∈ K] on top of the optimal state for [K ∖ {h}].  This functor
    captures that loop once; the per-state operations (one table
    compaction, the cost, the free set) come from the parameter. *)

module type COMPACTABLE = sig
  type state

  val compact : state -> int -> state
  (** Place one variable on top of the assigned block. *)

  val mincost : state -> int
  (** Non-terminal nodes created so far (the DP objective). *)

  val free : state -> Varset.t
  (** Variables not yet assigned. *)
end

module Make (S : COMPACTABLE) : sig
  type t = {
    j_set : Varset.t;
    upto : int;
    mincosts : (Varset.t, int) Hashtbl.t;
        (** [MINCOST⟨base, K⟩] for every computed [K] (including [∅]) *)
    layer : (Varset.t, S.state) Hashtbl.t;
        (** optimal states at cardinality [upto] *)
  }

  val run : ?upto:int -> base:S.state -> Varset.t -> t
  (** As {!Fs_star.run}: requires [j_set ⊆ free base]; [upto] defaults
      to [|j_set|]. *)

  val state_of : t -> Varset.t -> S.state
  val mincost_of : t -> Varset.t -> int

  val complete : base:S.state -> j_set:Varset.t -> S.state
  (** Full run; the optimal state for [K = J]. *)
end

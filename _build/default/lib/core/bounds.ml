let pow2f k = Float.pow 2. (float_of_int k)

(* 2^(2^e), saturating to infinity well before float overflow hurts *)
let pow2_pow2 e = if e > 9 then Float.infinity else Float.pow 2. (pow2f e)

let max_width ~n ~level =
  if level < 1 || level > n then invalid_arg "Bounds.max_width";
  let restrictions = pow2f (n - level) in
  let half = pow2_pow2 (level - 1) in
  (* functions of [level] vars whose two top cofactors differ *)
  let dependents = half *. (half -. 1.) in
  Float.min restrictions dependents

let max_nodes n =
  let acc = ref 0. in
  for level = 1 to n do
    acc := !acc +. max_width ~n ~level
  done;
  !acc

let max_size n = max_nodes n +. 2.

let check_widths ~n widths =
  Array.length widths = n
  && Array.for_all (fun w -> w >= 0) widths
  &&
  let ok = ref true in
  Array.iteri
    (fun i w ->
      if float_of_int w > max_width ~n ~level:(i + 1) then ok := false)
    widths;
  !ok

let support_lower_bound tt =
  List.length (Ovo_boolfun.Truthtable.support tt)

let size_lower_bound tt =
  let terminals =
    match Ovo_boolfun.Truthtable.is_const tt with Some _ -> 1 | None -> 2
  in
  support_lower_bound tt + terminals

(** Operation accounting for complexity experiments.

    The paper's complexity claims (Theorem 5's [O*(3^n)], Theorem 10's
    [O*(2.83728^n)], Theorem 13's [O*(2.77286^n)]) are all dominated by
    the same unit of work: processing one cell of a [TABLE] during a table
    compaction.  This module counts those units so the bench harness can
    plot measured work against the predicted exponentials, independent of
    wall-clock noise.

    Counters are global and not thread-safe; the whole repository is
    single-threaded. *)

type snapshot = {
  table_cells : int;  (** table cells processed by {!Compact.compact} *)
  compactions : int;  (** number of compaction steps *)
  node_creations : int;  (** fresh diagram nodes allocated *)
}

val reset : unit -> unit
(** Zero all counters. *)

val snapshot : unit -> snapshot
(** Current counter values. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] is the per-field difference. *)

val add_cells : int -> unit
val add_compaction : unit -> unit
val add_node : unit -> unit
(** Incrementors used by the core algorithms. *)

val pp : Format.formatter -> snapshot -> unit

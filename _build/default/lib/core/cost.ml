type snapshot = { table_cells : int; compactions : int; node_creations : int }

let of_metrics (s : Metrics.snapshot) =
  {
    table_cells = s.Metrics.s_table_cells;
    compactions = s.Metrics.s_compactions;
    node_creations = s.Metrics.s_node_creations;
  }

let reset () = Metrics.reset Metrics.ambient
let snapshot () = of_metrics (Metrics.snapshot Metrics.ambient)

let diff a b =
  {
    table_cells = a.table_cells - b.table_cells;
    compactions = a.compactions - b.compactions;
    node_creations = a.node_creations - b.node_creations;
  }

let add_cells n = Metrics.add_cells Metrics.ambient n
let add_compaction () = Metrics.add_compaction Metrics.ambient
let add_node () = Metrics.add_node Metrics.ambient

let pp ppf s =
  Format.fprintf ppf "cells=%d compactions=%d nodes=%d" s.table_cells
    s.compactions s.node_creations

type snapshot = { table_cells : int; compactions : int; node_creations : int }

let cells = ref 0
let compactions = ref 0
let nodes = ref 0

let reset () =
  cells := 0;
  compactions := 0;
  nodes := 0

let snapshot () =
  { table_cells = !cells; compactions = !compactions; node_creations = !nodes }

let diff a b =
  {
    table_cells = a.table_cells - b.table_cells;
    compactions = a.compactions - b.compactions;
    node_creations = a.node_creations - b.node_creations;
  }

let add_cells n = cells := !cells + n
let add_compaction () = incr compactions
let add_node () = incr nodes

let pp ppf s =
  Format.fprintf ppf "cells=%d compactions=%d nodes=%d" s.table_cells
    s.compactions s.node_creations

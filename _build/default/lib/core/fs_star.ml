let log_src = Logs.Src.create "ovo.core.fs" ~doc:"Friedman-Supowit DP"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Dp = Subset_dp.Make (struct
  type state = Compact.state

  let compact = Compact.compact
  let mincost (st : Compact.state) = st.Compact.mincost
  let free = Compact.free
end)

type t = {
  base_assigned : Varset.t;
  j_set : Varset.t;
  upto : int;
  mincosts : (Varset.t, int) Hashtbl.t;
  layer : (Varset.t, Compact.state) Hashtbl.t;
}

let run ?upto ~(base : Compact.state) j_set =
  let d =
    try Dp.run ?upto ~base j_set
    with Invalid_argument m ->
      (* keep the module's historical error messages *)
      let suffix = String.sub m (String.length "Subset_dp") (String.length m - String.length "Subset_dp") in
      invalid_arg ("Fs_star" ^ suffix)
  in
  Log.debug (fun m ->
      m "FS* over %a from |I|=%d: %d subsets summarised, layer of %d states"
        Varset.pp j_set
        (Varset.cardinal base.Compact.assigned)
        (Hashtbl.length d.Dp.mincosts)
        (Hashtbl.length d.Dp.layer));
  {
    base_assigned = base.Compact.assigned;
    j_set = d.Dp.j_set;
    upto = d.Dp.upto;
    mincosts = d.Dp.mincosts;
    layer = d.Dp.layer;
  }

let state_of t ksub = Hashtbl.find t.layer ksub

let mincost_of t ksub = Hashtbl.find t.mincosts ksub

let complete ~base ~j_set =
  let t = run ~base j_set in
  state_of t j_set

(** Evaluating a {e given} variable ordering.

    A single compaction chain computes the reduced diagram of [f] under a
    fixed ordering in [O(2^{n+1})] table cells — the per-candidate cost
    that makes brute force [O*(n! · 2^n)] and that the ordering
    heuristics (sifting, window permutation, random search) pay per
    probe.  Orderings follow the repository convention: [order.(0)] is
    the variable read last (the paper's [π[1]]). *)

val state :
  ?kind:Compact.kind -> Ovo_boolfun.Truthtable.t -> int array -> Compact.state
(** Complete compaction state under the given ordering.  Raises
    [Invalid_argument] if [order] is not a permutation of the variables. *)

val state_mtable :
  ?kind:Compact.kind -> Ovo_boolfun.Mtable.t -> int array -> Compact.state
(** Multi-terminal variant. *)

val mincost :
  ?kind:Compact.kind -> Ovo_boolfun.Truthtable.t -> int array -> int
(** Non-terminal node count under the ordering. *)

val size : ?kind:Compact.kind -> Ovo_boolfun.Truthtable.t -> int array -> int
(** Paper-convention size (nodes + reachable terminals). *)

val widths :
  ?kind:Compact.kind -> Ovo_boolfun.Truthtable.t -> int array -> int array
(** [widths.(j)] = number of nodes labeled [order.(j)] (level [j+1]). *)

val diagram :
  ?kind:Compact.kind -> Ovo_boolfun.Truthtable.t -> int array -> Diagram.t
(** The reduced diagram itself. *)

val read_first : int array -> int array
(** Convert between the two ordering directions (the function is its own
    inverse: it just reverses the array). *)

let check_permutation n order =
  if Array.length order <> n then invalid_arg "Eval_order: wrong length";
  let seen = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n || seen.(v) then
        invalid_arg "Eval_order: not a permutation";
      seen.(v) <- true)
    order

let state_mtable ?(kind = Compact.Bdd) mt order =
  check_permutation (Ovo_boolfun.Mtable.arity mt) order;
  Compact.compact_chain (Compact.initial kind mt) order

let state ?kind tt order =
  state_mtable ?kind (Ovo_boolfun.Mtable.of_truthtable tt) order

let mincost ?kind tt order = (state ?kind tt order).Compact.mincost

let diagram ?kind tt order = Diagram.of_state (state ?kind tt order)

let size ?kind tt order = Diagram.size (diagram ?kind tt order)

let widths ?kind tt order = Diagram.level_widths (diagram ?kind tt order)

let read_first order =
  let n = Array.length order in
  Array.init n (fun i -> order.(n - 1 - i))

module type COMPACTABLE = sig
  type state

  val compact : state -> int -> state
  val mincost : state -> int
  val free : state -> Varset.t
end

module Make (S : COMPACTABLE) = struct
  type t = {
    j_set : Varset.t;
    upto : int;
    mincosts : (Varset.t, int) Hashtbl.t;
    layer : (Varset.t, S.state) Hashtbl.t;
  }

  let run ?upto ~base j_set =
    if not (Varset.subset j_set (S.free base)) then
      invalid_arg "Subset_dp.run: J not free in the base state";
    let j_size = Varset.cardinal j_set in
    let upto = match upto with None -> j_size | Some k -> k in
    if upto < 0 || upto > j_size then invalid_arg "Subset_dp.run: bad upto";
    let mincosts = Hashtbl.create 64 in
    Hashtbl.replace mincosts Varset.empty (S.mincost base);
    let layer = ref (Hashtbl.create 1) in
    Hashtbl.replace !layer Varset.empty base;
    for k = 1 to upto do
      let next = Hashtbl.create (Hashtbl.length !layer * 2) in
      let prev = !layer in
      Varset.iter_subsets_of j_set ~size:k (fun ksub ->
          (* Lemma 7: optimal K-state = cheapest over last-placed h ∈ K *)
          let best = ref None in
          Varset.iter
            (fun h ->
              let before = Hashtbl.find prev (Varset.remove h ksub) in
              let cand = S.compact before h in
              match !best with
              | Some b when S.mincost b <= S.mincost cand -> ()
              | Some _ | None -> best := Some cand)
            ksub;
          match !best with
          | None -> assert false
          | Some st ->
              Hashtbl.replace next ksub st;
              Hashtbl.replace mincosts ksub (S.mincost st));
      layer := next
    done;
    { j_set; upto; mincosts; layer = !layer }

  let state_of t ksub = Hashtbl.find t.layer ksub
  let mincost_of t ksub = Hashtbl.find t.mincosts ksub

  let complete ~base ~j_set =
    let t = run ~base j_set in
    state_of t j_set
end

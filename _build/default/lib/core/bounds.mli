(** Theoretical size bounds on decision diagrams.

    The paper's related-work section leans on the classical counting
    facts (Lee 1959; Heap–Mercer): level widths obey universal caps, the
    caps yield the worst-case OBDD size, and counting shows most
    functions sit near it under {e every} ordering.  This module
    provides those bounds; the tests check every diagram the optimisers
    produce against them, and that the caps are tight at small [n].

    Levels are the paper's: level [j ∈ 1..n] counted from the bottom
    (read last), so level [j] sees [n-j] variables above it and [j-1]
    below. *)

val max_width : n:int -> level:int -> float
(** Universal cap on the number of nodes at a level, for any function
    and ordering:
    [min(2^(n-j), 2^(2^(j-1)) · (2^(2^(j-1)) - 1))] — the number of
    upper restrictions versus the number of [j]-variable subfunctions
    essentially depending on their top variable (a pair of distinct
    [(j-1)]-variable cofactors).  Float because the second term
    explodes. *)

val max_nodes : int -> float
(** Sum of {!max_width} over all levels: the worst-case non-terminal
    count over every [n]-variable function and every ordering. *)

val max_size : int -> float
(** [max_nodes n + 2]. *)

val check_widths : n:int -> int array -> bool
(** [check_widths ~n widths] — whether a measured per-level profile
    (index 0 = bottom level) respects every cap. *)

val support_lower_bound : Ovo_boolfun.Truthtable.t -> int
(** Ordering-independent lower bound on the non-terminal count: every
    variable the function essentially depends on labels at least one
    node in any diagram. *)

val size_lower_bound : Ovo_boolfun.Truthtable.t -> int
(** {!support_lower_bound} plus the reachable terminals (2 for
    non-constant functions, 1 otherwise). *)

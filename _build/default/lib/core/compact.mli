(** Table compaction — the primitive of the Friedman–Supowit dynamic
    program (paper Sec. 2.3.1 and the [COMPACT] function of algorithm
    [FS*] in Appendix D).

    A {!state} materialises the quadruple the paper calls
    [FS(⟨I₁,…,I_m⟩)] for the assigned set [I = I₁ ∪ … ∪ I_m]:

    - [TABLE_I]: one cell per assignment [b] to the unassigned variables,
      holding the id of the diagram node for the subfunction
      [f|_{x_{[n]∖I} = b}];
    - [NODE_I]: the set of created nodes, keyed by [(var, lo, hi)] — the
      [var] component implements the paper's prose definition of node
      equivalence ([var(u) = var(v)] is required; the pseudo-code's
      children-only key would wrongly merge distinct subfunctions);
    - [MINCOST_I]: the number of non-terminal nodes created so far, i.e.
      the minimum achievable size of the bottom [|I|] levels given the
      segment constraints accumulated so far;
    - the suborder [π] achieved (the paper keeps it implicitly).

    [compact st i] performs one table compaction with respect to variable
    [i]: it produces the state for assigned set [I ∪ {i}] in which [i] is
    read immediately above the variables of [I] — the paper's
    [FS(⟨I, {i}⟩)] from [FS(⟨I⟩)].  The cost is linear in the size of the
    new table (half the old one), as the complexity analysis requires.

    Table indexing: the unassigned variables, sorted ascending, map to the
    bit positions of the cell index (smallest variable ↔ bit 0). *)

type kind =
  | Bdd  (** delete nodes with [lo = hi] (also the MTBDD rule) *)
  | Zdd  (** delete nodes with [hi] = terminal 0 (zero-suppression) *)

type state = private {
  n : int;  (** total number of variables *)
  kind : kind;
  num_terminals : int;  (** terminal ids are [0 .. num_terminals-1] *)
  assigned : Varset.t;  (** the set [I] *)
  order_rev : int list;  (** achieved suborder, most recent first; so
                             [List.rev order_rev] is [π[1], …, π[|I|]] *)
  table : int array;  (** [2^(n-|I|)] node ids *)
  node : (int * int * int, int) Hashtbl.t;  (** [(var, lo, hi) → id] *)
  mincost : int;
  next_id : int;
}

val initial : kind -> Ovo_boolfun.Mtable.t -> state
(** The paper's [FS(∅)]: [TABLE_∅] is the truth table itself (cells are
    terminal ids), [NODE_∅] is empty, [MINCOST_∅ = 0]. *)

val of_truthtable : kind -> Ovo_boolfun.Truthtable.t -> state
(** Boolean convenience wrapper around {!initial} (two terminals). *)

val compact : ?metrics:Metrics.t -> state -> int -> state
(** [compact st i] — see above.  Raises [Invalid_argument] if [i] is out
    of range or already assigned.  The input state is not mutated.
    Charges [table_cells]/[compactions] (and the allocation counters) to
    [metrics], defaulting to {!Metrics.ambient}. *)

val width_if_compacted : ?metrics:Metrics.t -> state -> int -> int
(** The cost-only kernel of the two-pass DP: how many nodes
    [compact st i] {e would} create — the paper's [Cost_i] — computed by
    the same cell scan but with {e no} allocation: no new table, no copy
    of the node hashtable, no state.  Charges [table_cells] (a probe does
    the work the theorems price) and [cost_probes].  Safe to call
    concurrently on shared frozen states from {!Engine.Par} workers. *)

val mincost_if_compacted : ?metrics:Metrics.t -> state -> int -> int
(** [st.mincost + width_if_compacted st i] — the DP objective of the
    candidate, without building it. *)

val materialise : ?metrics:Metrics.t -> state -> int -> state
(** Exactly {!compact}, but with DP-winner accounting: the candidate's
    cells were already charged by the {!width_if_compacted} probe that
    elected it, so this charges only [states_materialised],
    [node_table_copies] and [node_creations]. *)

val compact_chain : state -> int array -> state
(** Fold {!compact} over the variables of an array, left to right: the
    result is the state of the fully specified suborder.  [O(2^{n-|I|+1})]
    cells in total when the chain exhausts all free variables. *)

val width_of_last : before:state -> after:state -> int
(** Number of nodes created by the last compaction — the paper's
    [Cost_i(f, π)] for the newly placed variable (Lemma 3 guarantees this
    only depends on the set split, not on the suborders). *)

val free : state -> Varset.t
(** The unassigned variables [\[n\] ∖ I]. *)

val order : state -> int list
(** The achieved suborder [π[1], …, π[|I|]] (read-last first). *)

val is_complete : state -> bool
(** All variables assigned (the table has a single cell: the root). *)

val root : state -> int
(** Root node id of a complete state; raises [Invalid_argument] if the
    state is not complete. *)

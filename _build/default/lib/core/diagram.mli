(** Explicit decision diagrams extracted from a completed compaction.

    The FS dynamic program works on tables; once a state is complete (all
    variables placed) its [NODE] set is exactly the node set of the
    reduced diagram [B(f, π)] for the achieved ordering [π].  This module
    turns that into a first-class value: an array of [(var, lo, hi)]
    nodes plus the root, with evaluation, size, export and a validity
    check (the paper's Theorem 1 guarantees the produced OBDD is always a
    valid diagram for [f], even in the error branch of the quantum
    algorithm — [check] is how the tests enforce that). *)

type node = { var : int; lo : int; hi : int }

type t = private {
  n : int;  (** number of variables *)
  kind : Compact.kind;
  num_terminals : int;
  root : int;
  order : int array;  (** [order.(0)] read last (level 1), as everywhere *)
  nodes : node array;  (** node with id [u] is [nodes.(u - num_terminals)] *)
}

val of_state : Compact.state -> t
val of_parts :
  kind:Compact.kind ->
  n:int ->
  num_terminals:int ->
  order:int array ->
  nodes:node array ->
  root:int ->
  t
(** Checked constructor (the validation of {!deserialize} without the
    text): ranges, ordering permutation and strict level descent are
    enforced; raises [Failure] on violations.  Used by
    {!Ovo_core.Shared} to export per-root views of a shared diagram. *)

val node_count : t -> int
(** Non-terminal nodes (the paper's [MINCOST]). *)

val reachable_terminals : t -> int
(** Terminals with an incoming edge (or the root itself, for constant
    functions). *)

val size : t -> int
(** Paper-convention size: [node_count + reachable_terminals] — matches
    the "[2n+2]-sized" / "[2^{n+1}]-sized" figures of Fig. 1. *)

val level_widths : t -> int array
(** [widths.(j)] is the number of nodes labeled with variable
    [order.(j)] (the paper's [Cost_{π[j+1]}(f, π)]). *)

val eval : t -> int -> int
(** [eval d code] follows the diagram on the assignment [code] (bit [j]
    of [code] = variable [j]) and returns the terminal id reached,
    honouring the reduction semantics of [d.kind] (for ZDDs a variable
    skipped on the path evaluates the function to terminal 0 whenever
    that variable is set). *)

val eval_bool : t -> int -> bool
(** [eval d code <> 0] — for two-terminal diagrams. *)

val to_truthtable : t -> Ovo_boolfun.Truthtable.t
(** Tabulate a two-terminal diagram; raises [Invalid_argument] when the
    diagram has more than two terminals. *)

val to_mtable : t -> Ovo_boolfun.Mtable.t
(** Tabulate an arbitrary diagram. *)

val check : t -> Ovo_boolfun.Mtable.t -> bool
(** Full semantic equivalence against a multi-valued truth table. *)

val check_tt : t -> Ovo_boolfun.Truthtable.t -> bool
(** Convenience for Boolean tables. *)

val serialize : t -> string
(** Text serialisation (a dddmp-like exchange format): header with kind,
    arity, terminal count, ordering and root, then one [id var lo hi]
    line per node.  Stable across versions of this library. *)

val deserialize : string -> t
(** Inverse of {!serialize}; raises [Failure] with a line-numbered
    message on malformed input (including dangling node references and
    non-permutation orderings). *)

val to_dot : ?name:string -> t -> string
(** Graphviz rendering (solid 1-edges, dashed 0-edges, box terminals). *)

val pp : Format.formatter -> t -> unit
(** One-line summary: kind, size, ordering. *)

module B = Ovo_bdd.Bdd
module T = Ovo_boolfun.Truthtable
module E = Ovo_boolfun.Expr

let unit_tests =
  [
    Helpers.case "constants and canonicity" (fun () ->
        let man = B.create 3 in
        Helpers.check_bool "false is false" true (B.is_false man (B.bfalse man));
        Helpers.check_bool "true is true" true (B.is_true man (B.btrue man));
        Helpers.check_bool "x & !x = false" true
          (B.equal
             (B.and_ man (B.var man 1) (B.not_ man (B.var man 1)))
             (B.bfalse man));
        Helpers.check_bool "x | !x = true" true
          (B.equal
             (B.or_ man (B.var man 1) (B.not_ man (B.var man 1)))
             (B.btrue man)));
    Helpers.case "hash-consing: same function, same node" (fun () ->
        let man = B.create 4 in
        let a = B.of_expr man (E.of_string "x0 & x1 | x2") in
        let b =
          B.or_ man
            (B.and_ man (B.var man 0) (B.var man 1))
            (B.var man 2)
        in
        Helpers.check_bool "equal handles" true (B.equal a b));
    Helpers.case "ite laws" (fun () ->
        let man = B.create 3 in
        let f = B.of_expr man (E.of_string "x0 ^ x1") in
        let g = B.var man 2 in
        Helpers.check_bool "ite(1,g,h)" true
          (B.equal (B.ite man (B.btrue man) f g) f);
        Helpers.check_bool "ite(0,g,h)" true
          (B.equal (B.ite man (B.bfalse man) f g) g);
        Helpers.check_bool "ite(f,1,0)" true
          (B.equal (B.ite man f (B.btrue man) (B.bfalse man)) f));
    Helpers.case "restrict by label" (fun () ->
        let man = B.create 3 in
        let f = B.of_expr man (E.of_string "x0 & x1 | !x0 & x2") in
        Helpers.check_bool "f|x0=1 = x1" true
          (B.equal (B.restrict man f ~var:0 true) (B.var man 1));
        Helpers.check_bool "f|x0=0 = x2" true
          (B.equal (B.restrict man f ~var:0 false) (B.var man 2)));
    Helpers.case "quantifiers" (fun () ->
        let man = B.create 3 in
        let f = B.of_expr man (E.of_string "x0 & x1") in
        Helpers.check_bool "exists x0" true
          (B.equal (B.exists man [ 0 ] f) (B.var man 1));
        Helpers.check_bool "forall x0" true
          (B.equal (B.forall man [ 0 ] f) (B.bfalse man));
        Helpers.check_bool "exists both" true
          (B.equal (B.exists man [ 0; 1 ] f) (B.btrue man)));
    Helpers.case "support" (fun () ->
        let man = B.create 5 in
        let f = B.of_expr man (E.of_string "x0 & x3 | x0 & !x3") in
        (* simplifies to x0 *)
        Alcotest.(check (list int)) "support" [ 0 ] (B.support man f));
    Helpers.case "satcount and sat_one" (fun () ->
        let man = B.create 4 in
        let f = B.of_expr man (E.of_string "x0 & !x2") in
        Alcotest.(check (float 0.001)) "count" 4. (B.satcount man f);
        (match B.sat_one man f with
        | None -> Alcotest.fail "expected sat"
        | Some assignment ->
            let code =
              List.fold_left
                (fun acc (v, b) -> if b then acc lor (1 lsl v) else acc)
                0 assignment
            in
            Helpers.check_bool "assignment satisfies" true (B.eval man f code));
        Alcotest.(check (option (list (pair int bool))))
          "unsat" None
          (B.sat_one man (B.bfalse man)));
    Helpers.case "custom ordering changes size but not semantics" (fun () ->
        let tt = Ovo_boolfun.Families.achilles 3 in
        let good = B.create ~order:[| 0; 1; 2; 3; 4; 5 |] 6 in
        let bad = B.create ~order:[| 0; 2; 4; 1; 3; 5 |] 6 in
        let bg = B.of_truthtable good tt and bb = B.of_truthtable bad tt in
        Helpers.check_int "good size" 8 (B.size good bg);
        Helpers.check_int "bad size" 16 (B.size bad bb);
        Helpers.check_bool "same function" true
          (T.equal (B.to_truthtable good bg) (B.to_truthtable bad bb)));
    Helpers.case "create rejects bad orders" (fun () ->
        Alcotest.check_raises "dup"
          (Invalid_argument "Bdd.create: order is not a permutation") (fun () ->
            ignore (B.create ~order:[| 0; 0 |] 2)));
    Helpers.case "import rejects mismatched ordering" (fun () ->
        let tt = T.of_string "0110" in
        let r = Ovo_core.Fs.run tt in
        let man = B.create ~order:(Ovo_core.Fs.read_first_order r) 2 in
        let ok = B.import man r.Ovo_core.Fs.diagram in
        Helpers.check_bool "imported" true
          (T.equal (B.to_truthtable man ok) tt);
        (* a manager with the reversed ordering must refuse when orders
           disagree; build one whose order differs *)
        let other_order =
          let o = Ovo_core.Fs.read_first_order r in
          if Array.length o = 2 then [| o.(1); o.(0) |] else o
        in
        let man2 = B.create ~order:other_order 2 in
        (match B.import man2 r.Ovo_core.Fs.diagram with
        | _ -> Alcotest.fail "expected mismatch"
        | exception Invalid_argument _ -> ()));
    Helpers.case "to_dot mentions terminals" (fun () ->
        let man = B.create 2 in
        let f = B.of_expr man (E.of_string "x0 ^ x1") in
        let dot = B.to_dot man f in
        Helpers.check_bool "has digraph" true
          (String.length dot > 20 && String.sub dot 0 7 = "digraph"));
  ]

let binop_prop name tt_op bdd_op =
  QCheck.Test.make ~name ~count:150
    (QCheck.pair
       (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
       (Helpers.arb_truthtable ~lo:1 ~hi:6 ()))
    (fun (a, b) ->
      QCheck.assume (T.arity a = T.arity b);
      let man = B.create (T.arity a) in
      let ba = B.of_truthtable man a and bb = B.of_truthtable man b in
      T.equal (B.to_truthtable man (bdd_op man ba bb)) (tt_op a b))

let props =
  [
    QCheck.Test.make ~name:"of_truthtable/to_truthtable round trip" ~count:200
      (Helpers.arb_truthtable ~lo:1 ~hi:7 ())
      (fun tt ->
        let man = B.create (T.arity tt) in
        T.equal (B.to_truthtable man (B.of_truthtable man tt)) tt);
    binop_prop "and matches tables" T.( &&& ) B.and_;
    binop_prop "or matches tables" T.( ||| ) B.or_;
    binop_prop "xor matches tables" T.xor B.xor_;
    binop_prop "iff is negated xor"
      (fun a b -> T.not_ (T.xor a b))
      B.iff;
    binop_prop "imp matches tables"
      (fun a b -> T.( ||| ) (T.not_ a) b)
      B.imp;
    QCheck.Test.make ~name:"of_expr agrees with Expr.to_truthtable" ~count:200
      (Helpers.arb_expr ~vars:5 ())
      (fun e ->
        let n = max 1 (E.max_var e + 1) in
        let man = B.create n in
        T.equal
          (B.to_truthtable man (B.of_expr man e))
          (E.to_truthtable ~arity:n e));
    QCheck.Test.make ~name:"satcount equals count_ones" ~count:200
      (Helpers.arb_truthtable ~lo:1 ~hi:7 ())
      (fun tt ->
        let man = B.create (T.arity tt) in
        int_of_float (B.satcount man (B.of_truthtable man tt))
        = T.count_ones tt);
    QCheck.Test.make ~name:"size under ordering equals Eval_order size"
      ~count:150
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let n = T.arity tt in
        let pi = Helpers.perm_of_seed seed n in
        let man = B.create ~order:(Ovo_core.Eval_order.read_first pi) n in
        B.size man (B.of_truthtable man tt) = Ovo_core.Eval_order.size tt pi);
    QCheck.Test.make ~name:"import preserves function and size" ~count:100
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let r = Ovo_core.Fs.run tt in
        let man =
          B.create ~order:(Ovo_core.Fs.read_first_order r) (T.arity tt)
        in
        let b = B.import man r.Ovo_core.Fs.diagram in
        T.equal (B.to_truthtable man b) tt
        && B.size man b = r.Ovo_core.Fs.size);
    QCheck.Test.make ~name:"compose_var agrees with pointwise substitution"
      ~count:120
      (QCheck.triple
         (Helpers.arb_truthtable ~lo:2 ~hi:5 ())
         (Helpers.arb_truthtable ~lo:2 ~hi:5 ())
         QCheck.small_int)
      (fun (f_tt, g_tt, seed) ->
        QCheck.assume (T.arity f_tt = T.arity g_tt);
        let n = T.arity f_tt in
        let v = Random.State.int (Helpers.rng seed) n in
        let man = B.create n in
        let f = B.of_truthtable man f_tt and g = B.of_truthtable man g_tt in
        let composed = B.compose_var man f ~var:v g in
        let expect =
          T.of_fun n (fun code ->
              let forced =
                if T.eval g_tt code then code lor (1 lsl v)
                else code land lnot (1 lsl v)
              in
              T.eval f_tt forced)
        in
        T.equal (B.to_truthtable man composed) expect);
    QCheck.Test.make ~name:"restrict agrees with table restrict" ~count:150
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let n = T.arity tt in
        let st = Helpers.rng seed in
        let v = Random.State.int st n in
        let b = Random.State.bool st in
        let man = B.create n in
        let f = B.of_truthtable man tt in
        let restricted = B.restrict man f ~var:v b in
        (* compare as n-variable functions (the table version renumbers) *)
        let expect =
          T.of_fun n (fun code ->
              let forced =
                if b then code lor (1 lsl v) else code land lnot (1 lsl v)
              in
              T.eval tt forced)
        in
        T.equal (B.to_truthtable man restricted) expect);
  ]

let () =
  Alcotest.run "bdd_pkg"
    [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

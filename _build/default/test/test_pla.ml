module P = Ovo_boolfun.Pla
module T = Ovo_boolfun.Truthtable

let sample =
  {|# comment line
.i 3
.o 2
.ilb a b c
.ob f g
.p 3
1-- 10
-11 11
000 01
.e|}

let unit_tests =
  [
    Helpers.case "parse header" (fun () ->
        let p = P.of_string sample in
        Helpers.check_int "inputs" 3 (P.inputs p);
        Helpers.check_int "outputs" 2 (P.outputs p);
        Helpers.check_int "cubes" 3 (P.num_cubes p);
        Alcotest.(check (option (array string))) "ilb"
          (Some [| "a"; "b"; "c" |])
          (P.input_names p));
    Helpers.case "cover semantics" (fun () ->
        let p = P.of_string sample in
        let f = P.output_table p 0 and g = P.output_table p 1 in
        (* f = x0 | (x1 & x2) *)
        Helpers.check_bool "f(100)" true (T.eval f 0b001);
        Helpers.check_bool "f(011)" true (T.eval f 0b110);
        Helpers.check_bool "f(010)" false (T.eval f 0b010);
        (* g = (x1 & x2) | (!x0 & !x1 & !x2) *)
        Helpers.check_bool "g(000)" true (T.eval g 0);
        Helpers.check_bool "g(011)" true (T.eval g 0b110);
        Helpers.check_bool "g(100)" false (T.eval g 0b001));
    Helpers.case ".p mismatch rejected" (fun () ->
        match P.of_string ".i 1\n.o 1\n.p 2\n1 1\n.e" with
        | _ -> Alcotest.fail "expected failure"
        | exception Failure _ -> ());
    Helpers.case "missing .i rejected" (fun () ->
        match P.of_string ".o 1\n1 1\n.e" with
        | _ -> Alcotest.fail "expected failure"
        | exception Failure _ -> ());
    Helpers.case "width mismatch rejected" (fun () ->
        match P.of_string ".i 2\n.o 1\n1 1\n.e" with
        | _ -> Alcotest.fail "expected failure"
        | exception Failure _ -> ());
    Helpers.case "bad character rejected" (fun () ->
        match P.of_string ".i 2\n.o 1\n1x 1\n.e" with
        | _ -> Alcotest.fail "expected failure"
        | exception Failure _ -> ());
    Helpers.case "content after .e is ignored" (fun () ->
        let p = P.of_string ".i 1\n.o 1\n1 1\n.e\ngarbage here\n" in
        Helpers.check_int "cubes" 1 (P.num_cubes p));
    Helpers.case "unknown dot directives are skipped" (fun () ->
        let p = P.of_string ".i 1\n.o 1\n.type fr\n1 1\n.e" in
        Helpers.check_int "cubes" 1 (P.num_cubes p));
    Helpers.case "output_table range check" (fun () ->
        let p = P.of_string sample in
        Alcotest.check_raises "idx" (Invalid_argument "Pla.output_table")
          (fun () -> ignore (P.output_table p 2)));
  ]

let props =
  [
    QCheck.Test.make ~name:"of_truthtables/tables round trip" ~count:100
      (QCheck.pair
         (Helpers.arb_truthtable ~lo:1 ~hi:5 ())
         (Helpers.arb_truthtable ~lo:1 ~hi:5 ()))
      (fun (a, b) ->
        QCheck.assume (T.arity a = T.arity b);
        let p = P.of_truthtables [| a; b |] in
        let ts = P.tables p in
        T.equal ts.(0) a && T.equal ts.(1) b);
    QCheck.Test.make ~name:"to_string/of_string round trip" ~count:100
      (Helpers.arb_truthtable ~lo:1 ~hi:5 ())
      (fun tt ->
        let p = P.of_truthtables [| tt |] in
        let p' = P.of_string (P.to_string p) in
        T.equal (P.output_table p' 0) tt);
  ]

let () =
  Alcotest.run "pla" [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

module B = Ovo_core.Bounds
module T = Ovo_boolfun.Truthtable
module Fs = Ovo_core.Fs

let unit_tests =
  [
    Helpers.case "small level caps by hand" (fun () ->
        (* n = 3: level 1 -> min(4, 2·1) = 2; level 2 -> min(2, 4·3) = 2;
           level 3 -> min(1, 16·15) = 1 *)
        Alcotest.(check (float 0.)) "l1" 2. (B.max_width ~n:3 ~level:1);
        Alcotest.(check (float 0.)) "l2" 2. (B.max_width ~n:3 ~level:2);
        Alcotest.(check (float 0.)) "l3" 1. (B.max_width ~n:3 ~level:3);
        Alcotest.(check (float 0.)) "nodes" 5. (B.max_nodes 3);
        Alcotest.(check (float 0.)) "size" 7. (B.max_size 3));
    Helpers.case "level out of range rejected" (fun () ->
        Alcotest.check_raises "zero" (Invalid_argument "Bounds.max_width")
          (fun () -> ignore (B.max_width ~n:3 ~level:0)));
    Helpers.case "the n = 3 cap is tight (exhaustive)" (fun () ->
        (* some 3-variable function reaches 5 non-terminal nodes *)
        let worst = ref 0 in
        for bits = 0 to 255 do
          let tt = T.of_fun 3 (fun code -> bits land (1 lsl code) <> 0) in
          let c = (Fs.run tt).Fs.mincost in
          if c > !worst then worst := c
        done;
        Helpers.check_int "worst optimum" 5 !worst);
    Helpers.case "the n = 4 cap is not exceeded and nearly reached" (fun () ->
        let st = Helpers.rng 4 in
        let worst = ref 0 in
        for _ = 1 to 500 do
          let tt = T.random st 4 in
          let c = (Fs.run tt).Fs.mincost in
          if c > !worst then worst := c
        done;
        Helpers.check_bool "within cap" true
          (float_of_int !worst <= B.max_nodes 4);
        (* random sampling should reach at least cap - 2 at n = 4 *)
        Helpers.check_bool "near cap" true
          (float_of_int !worst >= B.max_nodes 4 -. 2.));
    Helpers.case "worst-case caps grow like 2^n / n eventually" (fun () ->
        (* the restriction cap dominates high levels, the dependence cap
           the low ones; overall max_nodes n < 2^(n+1) for all small n *)
        for n = 1 to 20 do
          Helpers.check_bool "below 2^(n+1)" true
            (B.max_nodes n < Float.pow 2. (float_of_int (n + 1)))
        done);
    Helpers.case "support lower bound on conjunctions is exact" (fun () ->
        (* x0 & x1 & ... & xk needs exactly one node per variable *)
        for n = 1 to 6 do
          let tt = T.of_fun n (fun code -> code = (1 lsl n) - 1) in
          Helpers.check_int "conjunction" n (B.support_lower_bound tt);
          Helpers.check_int "optimal equals bound" n (Fs.run tt).Fs.mincost
        done);
    Helpers.case "size lower bound of constants" (fun () ->
        Helpers.check_int "const" 1 (B.size_lower_bound (T.const 4 true)));
  ]

let props =
  [
    QCheck.Test.make ~name:"every optimal profile respects the caps"
      ~count:150
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let r = Fs.run tt in
        B.check_widths ~n:(T.arity tt) r.Fs.widths);
    QCheck.Test.make ~name:"every random-order profile respects the caps"
      ~count:150
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let order = Helpers.perm_of_seed seed (T.arity tt) in
        B.check_widths ~n:(T.arity tt)
          (Ovo_core.Eval_order.widths tt order));
    QCheck.Test.make ~name:"lower bounds never exceed the optimum" ~count:150
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let r = Fs.run tt in
        B.support_lower_bound tt <= r.Fs.mincost
        && B.size_lower_bound tt <= r.Fs.size);
    QCheck.Test.make ~name:"optimum never exceeds the worst-case cap"
      ~count:150
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        float_of_int (Fs.run tt).Fs.mincost <= B.max_nodes (T.arity tt));
  ]

let () =
  Alcotest.run "bounds" [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

module Cb = Ovo_bdd.Cbdd
module B = Ovo_bdd.Bdd
module T = Ovo_boolfun.Truthtable
module E = Ovo_boolfun.Expr

let unit_tests =
  [
    Helpers.case "constants are complements of each other" (fun () ->
        let man = Cb.create 3 in
        Helpers.check_bool "not true = false" true
          (Cb.equal (Cb.not_ man (Cb.btrue man)) (Cb.bfalse man));
        Helpers.check_bool "double negation" true
          (Cb.equal (Cb.not_ man (Cb.not_ man (Cb.var man 1))) (Cb.var man 1)));
    Helpers.case "negation shares the sub-graph" (fun () ->
        let man = Cb.create 5 in
        let f = Cb.of_truthtable man (Ovo_boolfun.Families.hidden_weighted_bit 5) in
        let before = Cb.node_count man in
        let _ = Cb.not_ man f in
        Helpers.check_int "no new nodes" before (Cb.node_count man);
        Helpers.check_int "same size" (Cb.size man f)
          (Cb.size man (Cb.not_ man f)));
    Helpers.case "parity shrinks to n+1 nodes with complement edges"
      (fun () ->
        (* plain BDD: 2n-1 inner nodes; with complement edges the two
           nodes per level merge: n inner nodes + 1 terminal *)
        let n = 6 in
        let man = Cb.create n in
        let f = Cb.of_truthtable man (Ovo_boolfun.Families.parity n) in
        Helpers.check_int "size" (n + 1) (Cb.size man f);
        let plain = B.create n in
        let g = B.of_truthtable plain (Ovo_boolfun.Families.parity n) in
        Helpers.check_int "plain size" ((2 * n) - 1 + 2) (B.size plain g));
    Helpers.case "xor via ite agrees with of_truthtable" (fun () ->
        let man = Cb.create 4 in
        let a = Cb.var man 0 and b = Cb.var man 2 in
        let f = Cb.xor_ man a b in
        let direct =
          Cb.of_truthtable man (T.xor (T.var 4 0) (T.var 4 2))
        in
        Helpers.check_bool "canonical" true (Cb.equal f direct));
    Helpers.case "satcount with complemented handles" (fun () ->
        let man = Cb.create 4 in
        let f = Cb.of_truthtable man (Ovo_boolfun.Families.threshold 4 ~k:2) in
        Alcotest.(check (float 0.001)) "count" 11. (Cb.satcount man f);
        Alcotest.(check (float 0.001)) "complement count" 5.
          (Cb.satcount man (Cb.not_ man f)));
  ]

let props =
  [
    QCheck.Test.make ~name:"of_truthtable/to_truthtable round trip" ~count:200
      (Helpers.arb_truthtable ~lo:1 ~hi:7 ())
      (fun tt ->
        let man = Cb.create (T.arity tt) in
        T.equal (Cb.to_truthtable man (Cb.of_truthtable man tt)) tt);
    QCheck.Test.make ~name:"canonicity: equality iff same function" ~count:200
      (QCheck.pair
         (Helpers.arb_truthtable ~lo:1 ~hi:5 ())
         (Helpers.arb_truthtable ~lo:1 ~hi:5 ()))
      (fun (a, b) ->
        QCheck.assume (T.arity a = T.arity b);
        let man = Cb.create (T.arity a) in
        Cb.equal (Cb.of_truthtable man a) (Cb.of_truthtable man b)
        = T.equal a b);
    QCheck.Test.make ~name:"connectives match tables" ~count:200
      (QCheck.pair
         (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
         (Helpers.arb_truthtable ~lo:1 ~hi:6 ()))
      (fun (a, b) ->
        QCheck.assume (T.arity a = T.arity b);
        let man = Cb.create (T.arity a) in
        let ba = Cb.of_truthtable man a and bb = Cb.of_truthtable man b in
        T.equal (Cb.to_truthtable man (Cb.and_ man ba bb)) (T.( &&& ) a b)
        && T.equal (Cb.to_truthtable man (Cb.or_ man ba bb)) (T.( ||| ) a b)
        && T.equal (Cb.to_truthtable man (Cb.xor_ man ba bb)) (T.xor a b)
        && T.equal (Cb.to_truthtable man (Cb.not_ man ba)) (T.not_ a));
    QCheck.Test.make ~name:"negation preserves size exactly" ~count:150
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let man = Cb.create (T.arity tt) in
        let f = Cb.of_truthtable man tt in
        Cb.size man f = Cb.size man (Cb.not_ man f));
    QCheck.Test.make ~name:"satcount equals count_ones" ~count:200
      (Helpers.arb_truthtable ~lo:1 ~hi:7 ())
      (fun tt ->
        let man = Cb.create (T.arity tt) in
        int_of_float (Cb.satcount man (Cb.of_truthtable man tt))
        = T.count_ones tt);
    QCheck.Test.make
      ~name:"complement edges never beat half of the plain size by much"
      ~count:100
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        (* the classical bound: plain-size/2 <= cbdd-size <= plain-size,
           roughly; precisely cbdd nodes >= (plain inner + terminals)/2
           and <= plain *)
        let n = T.arity tt in
        let pi = Helpers.perm_of_seed seed n in
        let rf = Ovo_core.Eval_order.read_first pi in
        let man = Cb.create ~order:rf n in
        let plain = Ovo_core.Eval_order.size tt pi in
        let csize = Cb.size man (Cb.of_truthtable man tt) in
        2 * csize >= plain && csize <= plain);
    QCheck.Test.make ~name:"ite agrees with table ite" ~count:150
      (QCheck.triple
         (Helpers.arb_truthtable ~lo:3 ~hi:5 ())
         (Helpers.arb_truthtable ~lo:3 ~hi:5 ())
         (Helpers.arb_truthtable ~lo:3 ~hi:5 ()))
      (fun (f, g, h) ->
        QCheck.assume (T.arity f = T.arity g && T.arity g = T.arity h);
        let man = Cb.create (T.arity f) in
        let bf = Cb.of_truthtable man f
        and bg = Cb.of_truthtable man g
        and bh = Cb.of_truthtable man h in
        let expect =
          T.( ||| ) (T.( &&& ) f g) (T.( &&& ) (T.not_ f) h)
        in
        T.equal (Cb.to_truthtable man (Cb.ite man bf bg bh)) expect);
  ]

let extension_props =
  [
    QCheck.Test.make ~name:"restrict agrees with table semantics" ~count:150
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let n = T.arity tt in
        let st = Helpers.rng seed in
        let v = Random.State.int st n in
        let bit = Random.State.bool st in
        let man = Cb.create n in
        let f = Cb.of_truthtable man tt in
        let expect =
          T.of_fun n (fun code ->
              let forced =
                if bit then code lor (1 lsl v) else code land lnot (1 lsl v)
              in
              T.eval tt forced)
        in
        T.equal (Cb.to_truthtable man (Cb.restrict man f ~var:v bit)) expect);
    QCheck.Test.make ~name:"restrict commutes with negation" ~count:150
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let n = T.arity tt in
        let v = Random.State.int (Helpers.rng seed) n in
        let man = Cb.create n in
        let f = Cb.of_truthtable man tt in
        Cb.equal
          (Cb.restrict man (Cb.not_ man f) ~var:v true)
          (Cb.not_ man (Cb.restrict man f ~var:v true)));
    QCheck.Test.make ~name:"support equals table support" ~count:150
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let man = Cb.create (T.arity tt) in
        Cb.support man (Cb.of_truthtable man tt) = T.support tt);
    QCheck.Test.make ~name:"exists/forall agree with table quantification"
      ~count:100
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:5 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let n = T.arity tt in
        let v = Random.State.int (Helpers.rng seed) n in
        let man = Cb.create n in
        let f = Cb.of_truthtable man tt in
        let f0 = T.of_fun n (fun c -> T.eval tt (c land lnot (1 lsl v))) in
        let f1 = T.of_fun n (fun c -> T.eval tt (c lor (1 lsl v))) in
        T.equal
          (Cb.to_truthtable man (Cb.exists man [ v ] f))
          (T.( ||| ) f0 f1)
        && T.equal
             (Cb.to_truthtable man (Cb.forall man [ v ] f))
             (T.( &&& ) f0 f1));
  ]

let () =
  Alcotest.run "cbdd"
    [
      ("unit", unit_tests);
      ("props", Helpers.qtests props);
      ("extensions", Helpers.qtests extension_props);
    ]

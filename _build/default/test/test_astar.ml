module A = Ovo_ordering.Astar
module Fs = Ovo_core.Fs
module T = Ovo_boolfun.Truthtable
module F = Ovo_boolfun.Families

let unit_tests =
  [
    Helpers.case "constant function expands almost nothing" (fun () ->
        let r = A.run (T.const 5 true) in
        Helpers.check_int "mincost" 0 r.A.mincost;
        (* h = 0 everywhere, but g = 0 too: the first complete chain wins;
           expansion stays linear-ish, far below 2^5 = 32 *)
        Helpers.check_bool "pruned" true (r.A.expanded < r.A.subsets_total));
    Helpers.case "achilles is solved optimally" (fun () ->
        let r = A.run (F.achilles 3) in
        Helpers.check_int "mincost" 6 r.A.mincost;
        Helpers.check_int "subsets" 64 r.A.subsets_total);
    Helpers.case "order achieves the cost" (fun () ->
        let tt = F.multiplexer ~select:2 in
        let r = A.run tt in
        Helpers.check_int "cost" r.A.mincost
          (Ovo_core.Eval_order.mincost tt r.A.order));
    Helpers.case "zdd kind" (fun () ->
        let tt = F.achilles 2 in
        let r = A.run ~kind:Ovo_core.Compact.Zdd tt in
        Helpers.check_int "zdd optimum"
          (Fs.run ~kind:Ovo_core.Compact.Zdd tt).Fs.mincost r.A.mincost);
    Helpers.case "expansion counts are sane" (fun () ->
        let r = A.run (F.parity 6) in
        Helpers.check_bool "expanded <= 2^n" true
          (r.A.expanded <= r.A.subsets_total);
        Helpers.check_bool "generated >= expanded" true
          (r.A.generated >= r.A.expanded));
    Helpers.case "prunes on functions with small support" (fun () ->
        (* f depends on 3 of 8 variables: A* should expand a tiny part of
           the 2^8 lattice because every non-support variable costs 0 *)
        let f =
          T.( ||| ) (T.( &&& ) (T.var 8 1) (T.var 8 4)) (T.var 8 6)
        in
        let r = A.run f in
        Helpers.check_int "optimal" (Fs.run f).Fs.mincost r.A.mincost;
        Helpers.check_bool "hard pruning" true
          (r.A.expanded * 4 < r.A.subsets_total));
  ]

let props =
  [
    QCheck.Test.make ~name:"A* equals FS (BDD)" ~count:80
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt -> (A.run tt).A.mincost = (Fs.run tt).Fs.mincost);
    QCheck.Test.make ~name:"A* equals FS (ZDD)" ~count:40
      (Helpers.arb_truthtable ~lo:1 ~hi:5 ())
      (fun tt ->
        (A.run ~kind:Ovo_core.Compact.Zdd tt).A.mincost
        = (Fs.run ~kind:Ovo_core.Compact.Zdd tt).Fs.mincost);
    QCheck.Test.make ~name:"A* order is a valid witness" ~count:60
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let r = A.run tt in
        Ovo_core.Eval_order.mincost tt r.A.order = r.A.mincost);
    QCheck.Test.make ~name:"A* never expands more than the lattice" ~count:60
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let r = A.run tt in
        r.A.expanded <= r.A.subsets_total);
  ]

let () =
  Alcotest.run "astar" [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

module F = Ovo_boolfun.Families
module T = Ovo_boolfun.Truthtable

let popcount code =
  let rec loop c acc = if c = 0 then acc else loop (c lsr 1) (acc + (c land 1)) in
  loop code 0

let unit_tests =
  [
    Helpers.case "achilles semantics" (fun () ->
        let tt = F.achilles 2 in
        Helpers.check_bool "x0x1" true (T.eval tt 0b0011);
        Helpers.check_bool "x2x3" true (T.eval tt 0b1100);
        Helpers.check_bool "x0x2" false (T.eval tt 0b0101);
        Helpers.check_bool "none" false (T.eval tt 0));
    Helpers.case "achilles orderings are permutations" (fun () ->
        let check order n =
          let seen = Array.make n false in
          Array.iter (fun v -> seen.(v) <- true) order;
          Array.for_all (fun b -> b) seen
        in
        Helpers.check_bool "good" true (check (F.achilles_good_order 4) 8);
        Helpers.check_bool "bad" true (check (F.achilles_bad_order 4) 8));
    Helpers.case "fig1 sizes at n = 3 pairs (paper: 8 vs 16)" (fun () ->
        let tt = F.achilles 3 in
        Helpers.check_int "good" 8
          (Ovo_core.Eval_order.size tt (F.achilles_good_order 3));
        Helpers.check_int "bad" 16
          (Ovo_core.Eval_order.size tt (F.achilles_bad_order 3)));
    Helpers.case "parity" (fun () ->
        let tt = F.parity 5 in
        Helpers.check_bool "odd" true (T.eval tt 0b10011);
        Helpers.check_bool "even" false (T.eval tt 0b11011);
        Helpers.check_int "balanced" 16 (T.count_ones tt));
    Helpers.case "majority" (fun () ->
        let tt = F.majority 5 in
        Helpers.check_bool "3 of 5" true (T.eval tt 0b10101);
        Helpers.check_bool "2 of 5" false (T.eval tt 0b00101));
    Helpers.case "threshold edge values" (fun () ->
        let tt = F.threshold 4 ~k:0 in
        Alcotest.(check (option bool)) "k=0 is const true" (Some true)
          (T.is_const tt);
        let tt5 = F.threshold 4 ~k:5 in
        Alcotest.(check (option bool)) "k>n is const false" (Some false)
          (T.is_const tt5));
    Helpers.case "weight_interval" (fun () ->
        let tt = F.weight_interval 6 ~lo:2 ~hi:3 in
        Helpers.check_bool "w2" true (T.eval tt 0b000011);
        Helpers.check_bool "w4" false (T.eval tt 0b001111));
    Helpers.case "symmetric from values" (fun () ->
        let tt = F.symmetric [| true; false; true |] in
        Helpers.check_bool "w0" true (T.eval tt 0);
        Helpers.check_bool "w1" false (T.eval tt 1);
        Helpers.check_bool "w2" true (T.eval tt 3));
    Helpers.case "hwb semantics" (fun () ->
        let tt = F.hidden_weighted_bit 4 in
        (* wt=2 at code 0b0011: bit index wt-1 = 1 -> set *)
        Helpers.check_bool "0011" true (T.eval tt 0b0011);
        (* wt=2 at code 0b1010: bit 1 is set -> true *)
        Helpers.check_bool "1010" true (T.eval tt 0b1010);
        (* wt=1 at code 0b1000: bit 0 clear -> false *)
        Helpers.check_bool "1000" false (T.eval tt 0b1000);
        Helpers.check_bool "zero" false (T.eval tt 0));
    Helpers.case "multiplexer selects data" (fun () ->
        let tt = F.multiplexer ~select:2 in
        (* address 2 (x0=0,x1=1), data bits at vars 2..5; data var 2+2=4 *)
        Helpers.check_bool "selected set" true (T.eval tt (0b10 lor (1 lsl 4)));
        Helpers.check_bool "selected clear" false
          (T.eval tt (0b10 lor (1 lsl 5))));
    Helpers.case "adder_bit carry" (fun () ->
        let tt = F.adder_bit ~bits:2 ~out:2 in
        (* a=3 (x0,x1), b=1 (x2) -> 4, carry set *)
        Helpers.check_bool "3+1 carries" true (T.eval tt 0b0111);
        Helpers.check_bool "1+1 no carry" false (T.eval tt 0b0101));
    Helpers.case "multi_catalogue outputs encode their circuits" (fun () ->
        let outputs name = List.assoc name F.multi_catalogue in
        let value outs code =
          Array.to_list (Array.mapi (fun j t -> (j, t)) outs)
          |> List.fold_left
               (fun acc (j, t) ->
                 if T.eval t code then acc lor (1 lsl j) else acc)
               0
        in
        let check name arity f =
          let outs = outputs name in
          for code = 0 to (1 lsl arity) - 1 do
            Helpers.check_int
              (Printf.sprintf "%s(%d)" name code)
              (f code) (value outs code)
          done
        in
        check "rd53" 5 popcount;
        check "sqr3" 3 (fun a -> a * a);
        check "add3" 6 (fun code -> (code land 7) + (code lsr 3));
        check "mul2" 4 (fun code -> (code land 3) * (code lsr 2)));
    Helpers.case "catalogue respects max_arity" (fun () ->
        List.iter
          (fun (_, tt) -> Helpers.check_bool "arity" true (T.arity tt <= 8))
          (F.catalogue ~max_arity:8);
        Helpers.check_bool "nonempty" true (F.catalogue ~max_arity:8 <> []));
  ]

let props =
  [
    QCheck.Test.make ~name:"parity flips on single-bit change" ~count:200
      QCheck.(pair (int_range 1 8) small_int)
      (fun (n, seed) ->
        let tt = F.parity n in
        let st = Helpers.rng seed in
        let code = Random.State.int st (1 lsl n) in
        let j = Random.State.int st n in
        T.eval tt code <> T.eval tt (code lxor (1 lsl j)));
    QCheck.Test.make ~name:"threshold is monotone in weight" ~count:200
      QCheck.(pair (int_range 1 8) small_int)
      (fun (n, seed) ->
        let st = Helpers.rng seed in
        let k = Random.State.int st (n + 1) in
        let tt = F.threshold n ~k in
        let ok = ref true in
        for code = 0 to (1 lsl n) - 1 do
          if T.eval tt code <> (popcount code >= k) then ok := false
        done;
        !ok);
    QCheck.Test.make ~name:"achilles good order linear size" ~count:20
      QCheck.(int_range 1 6)
      (fun pairs ->
        Ovo_core.Eval_order.size (F.achilles pairs) (F.achilles_good_order pairs)
        = (2 * pairs) + 2);
    QCheck.Test.make ~name:"achilles bad order exponential size" ~count:20
      QCheck.(int_range 1 6)
      (fun pairs ->
        Ovo_core.Eval_order.size (F.achilles pairs) (F.achilles_bad_order pairs)
        = 1 lsl (pairs + 1));
    QCheck.Test.make ~name:"symmetric functions ignore permutation" ~count:100
      QCheck.(pair (int_range 1 7) small_int)
      (fun (n, seed) ->
        let tt = F.weight_interval n ~lo:(n / 3) ~hi:(2 * n / 3) in
        let perm = Helpers.perm_of_seed seed n in
        T.equal tt (T.permute_vars tt perm));
  ]

let () =
  Alcotest.run "families"
    [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

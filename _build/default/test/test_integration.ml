(* Cross-cutting integration properties: independently built artefacts
   must agree wherever their semantics overlap. *)

module T = Ovo_boolfun.Truthtable
module E = Ovo_boolfun.Expr
module B = Ovo_bdd.Bdd
module Cb = Ovo_bdd.Cbdd
module D = Ovo_bdd.Dynbdd

(* a random multi-level netlist: w internal gates, each a random 2-input
   connective over earlier signals; rendered to BLIF and compared with
   the same circuit evaluated directly *)
let random_netlist st ~inputs ~gates =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ".model rand\n.inputs";
  for j = 0 to inputs - 1 do
    Buffer.add_string buf (Printf.sprintf " i%d" j)
  done;
  Buffer.add_string buf "\n.outputs g0\n";
  let signal k = if k < inputs then Printf.sprintf "i%d" k else Printf.sprintf "w%d" (k - inputs) in
  let direct = Array.make (inputs + gates) (T.const inputs false) in
  for j = 0 to inputs - 1 do
    direct.(j) <- T.var inputs j
  done;
  for g = 0 to gates - 1 do
    let a = Random.State.int st (inputs + g) in
    let b = Random.State.int st (inputs + g) in
    let op = Random.State.int st 3 in
    let out = inputs + g in
    (match op with
    | 0 ->
        (* and *)
        Buffer.add_string buf
          (Printf.sprintf ".names %s %s %s\n11 1\n" (signal a) (signal b)
             (signal out));
        direct.(out) <- T.( &&& ) direct.(a) direct.(b)
    | 1 ->
        Buffer.add_string buf
          (Printf.sprintf ".names %s %s %s\n1- 1\n-1 1\n" (signal a) (signal b)
             (signal out));
        direct.(out) <- T.( ||| ) direct.(a) direct.(b)
    | _ ->
        Buffer.add_string buf
          (Printf.sprintf ".names %s %s %s\n10 1\n01 1\n" (signal a) (signal b)
             (signal out));
        direct.(out) <- T.xor direct.(a) direct.(b))
  done;
  (* expose the last wire as g0 *)
  Buffer.add_string buf
    (Printf.sprintf ".names %s g0\n1 1\n" (signal (inputs + gates - 1)));
  Buffer.add_string buf ".end\n";
  (Buffer.contents buf, direct.(inputs + gates - 1))

let props =
  [
    QCheck.Test.make ~name:"random BLIF netlists elaborate correctly"
      ~count:100 QCheck.small_int
      (fun seed ->
        let st = Helpers.rng seed in
        let inputs = 2 + Random.State.int st 4 in
        let gates = 1 + Random.State.int st 8 in
        let blif, expect = random_netlist st ~inputs ~gates in
        let m = Ovo_boolfun.Blif.of_string blif in
        T.equal (Ovo_boolfun.Blif.output_table m "g0") expect);
    QCheck.Test.make
      ~name:"Bdd, Cbdd and Dynbdd agree on random expressions" ~count:150
      (Helpers.arb_expr ~vars:5 ())
      (fun e ->
        let n = max 1 (E.max_var e + 1) in
        let expect = E.to_truthtable ~arity:n e in
        let man_b = B.create n and man_c = Cb.create n and man_d = D.create n in
        let via_b = B.to_truthtable man_b (B.of_expr man_b e) in
        let build_d man =
          (* Dynbdd has no of_expr; build through connectives *)
          let rec go = function
            | E.Const b -> if b then D.btrue man else D.bfalse man
            | E.Var v -> D.var man v
            | E.Not a -> D.not_ man (go a)
            | E.And (a, b) -> D.and_ man (go a) (go b)
            | E.Or (a, b) -> D.or_ man (go a) (go b)
            | E.Xor (a, b) -> D.xor_ man (go a) (go b)
          in
          go e
        in
        let via_d = D.to_truthtable man_d (build_d man_d) in
        let via_c = Cb.to_truthtable man_c (Cb.of_truthtable man_c expect) in
        T.equal via_b expect && T.equal via_d expect && T.equal via_c expect);
    QCheck.Test.make
      ~name:"optimised diagram imports agree across managers" ~count:80
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let r = Ovo_core.Fs.run tt in
        let rf = Ovo_core.Fs.read_first_order r in
        let n = T.arity tt in
        let man_b = B.create ~order:rf n in
        let b = B.import man_b r.Ovo_core.Fs.diagram in
        let man_d = D.create ~order:rf n in
        let d = D.of_truthtable man_d tt in
        D.protect man_d d;
        (* both managers under the optimal order realise the optimal size *)
        B.size man_b b = r.Ovo_core.Fs.size
        && D.live_size man_d = r.Ovo_core.Fs.size);
    QCheck.Test.make
      ~name:"serialize through disk-free channels: Pla -> Fs -> Diagram -> Pla"
      ~count:60
      (Helpers.arb_truthtable ~lo:1 ~hi:5 ())
      (fun tt ->
        let pla = Ovo_boolfun.Pla.of_truthtables [| tt |] in
        let read = Ovo_boolfun.Pla.output_table
            (Ovo_boolfun.Pla.of_string (Ovo_boolfun.Pla.to_string pla))
            0
        in
        let r = Ovo_core.Fs.run read in
        let d =
          Ovo_core.Diagram.deserialize
            (Ovo_core.Diagram.serialize r.Ovo_core.Fs.diagram)
        in
        T.equal (Ovo_core.Diagram.to_truthtable d) tt);
    QCheck.Test.make ~name:"arity-0 and arity-1 edge cases across the stack"
      ~count:20 QCheck.bool
      (fun bit ->
        let t0 = T.const 0 bit in
        let r0 = Ovo_core.Fs.run t0 in
        let t1 = T.var 1 0 in
        let r1 = Ovo_core.Fs.run t1 in
        r0.Ovo_core.Fs.mincost = 0
        && Ovo_core.Diagram.check_tt r0.Ovo_core.Fs.diagram t0
        && r1.Ovo_core.Fs.mincost = 1
        && (Ovo_core.Fs.count_optimal_orders t1 = 1.));
  ]

let () = Alcotest.run "integration" [ ("props", Helpers.qtests props) ]

module Z = Ovo_bdd.Zdd
module T = Ovo_boolfun.Truthtable

module Sets = Set.Make (struct
  type t = int list

  let compare = compare
end)

let normalize family = Sets.of_list (List.map (List.sort_uniq compare) family)

(* random family of subsets of 0..n-1 *)
let gen_family =
  QCheck.Gen.(
    int_range 1 6 >>= fun n ->
    int_range 0 12 >>= fun count ->
    list_repeat count (int_range 0 ((1 lsl n) - 1)) >|= fun codes ->
    ( n,
      List.map
        (fun code ->
          List.filter (fun v -> code land (1 lsl v) <> 0) (List.init n (fun v -> v)))
        codes ))

let arb_family =
  QCheck.make
    ~print:(fun (n, fam) ->
      Printf.sprintf "n=%d [%s]" n
        (String.concat ";"
           (List.map
              (fun s -> "{" ^ String.concat "," (List.map string_of_int s) ^ "}")
              fam)))
    gen_family

let unit_tests =
  [
    Helpers.case "empty and base" (fun () ->
        let man = Z.create 3 in
        Helpers.check_int "empty count" 0 (int_of_float (Z.count man (Z.empty man)));
        Helpers.check_int "base count" 1 (int_of_float (Z.count man (Z.base man)));
        Helpers.check_bool "base contains {}" true (Z.mem man (Z.base man) []);
        Helpers.check_bool "empty contains nothing" false
          (Z.mem man (Z.empty man) []));
    Helpers.case "singleton membership" (fun () ->
        let man = Z.create 4 in
        let s = Z.singleton man [ 1; 3 ] in
        Helpers.check_bool "member" true (Z.mem man s [ 3; 1 ]);
        Helpers.check_bool "subset is not member" false (Z.mem man s [ 1 ]);
        Helpers.check_bool "superset is not member" false (Z.mem man s [ 1; 2; 3 ]));
    Helpers.case "to_family lexicographic example" (fun () ->
        let man = Z.create 3 in
        let f = Z.of_family man [ [ 2 ]; [ 0; 1 ]; [] ] in
        Helpers.check_int "count" 3 (int_of_float (Z.count man f));
        Helpers.check_bool "normalized equal" true
          (Sets.equal
             (normalize (Z.to_family man f))
             (normalize [ []; [ 0; 1 ]; [ 2 ] ])));
    Helpers.case "duplicates merge" (fun () ->
        let man = Z.create 3 in
        let f = Z.of_family man [ [ 1 ]; [ 1 ]; [ 1 ] ] in
        Helpers.check_int "count" 1 (int_of_float (Z.count man f)));
    Helpers.case "change toggles" (fun () ->
        let man = Z.create 3 in
        let f = Z.of_family man [ [ 0 ]; [ 0; 2 ] ] in
        let g = Z.change man f 0 in
        Helpers.check_bool "toggled" true
          (Sets.equal (normalize (Z.to_family man g)) (normalize [ []; [ 2 ] ])));
    Helpers.case "subset0/subset1" (fun () ->
        let man = Z.create 3 in
        let f = Z.of_family man [ [ 0 ]; [ 0; 1 ]; [ 2 ] ] in
        Helpers.check_bool "subset1 on 0" true
          (Sets.equal
             (normalize (Z.to_family man (Z.subset1 man f 0)))
             (normalize [ []; [ 1 ] ]));
        Helpers.check_bool "subset0 on 0" true
          (Sets.equal
             (normalize (Z.to_family man (Z.subset0 man f 0)))
             (normalize [ [ 2 ] ])));
    Helpers.case "join example" (fun () ->
        let man = Z.create 4 in
        let a = Z.of_family man [ [ 0 ]; [] ] in
        let b = Z.of_family man [ [ 1 ]; [ 0; 2 ] ] in
        Helpers.check_bool "join" true
          (Sets.equal
             (normalize (Z.to_family man (Z.join man a b)))
             (normalize [ [ 0; 1 ]; [ 0; 2 ]; [ 1 ] ])));
    Helpers.case "zero-suppression keeps sparse families tiny" (fun () ->
        let man = Z.create 20 in
        let s = Z.singleton man [ 7 ] in
        (* one node + two terminals regardless of the 20-element universe *)
        Helpers.check_int "size" 3 (Z.size man s));
    Helpers.case "maximal/minimal on a chain" (fun () ->
        let man = Z.create 4 in
        let fam = Z.of_family man [ []; [ 0 ]; [ 0; 1 ]; [ 2 ] ] in
        Helpers.check_bool "maximal" true
          (Sets.equal
             (normalize (Z.to_family man (Z.maximal man fam)))
             (normalize [ [ 0; 1 ]; [ 2 ] ]));
        Helpers.check_bool "minimal" true
          (Sets.equal
             (normalize (Z.to_family man (Z.minimal man fam)))
             (normalize [ [] ])));
    Helpers.case "meet example" (fun () ->
        let man = Z.create 4 in
        let a = Z.of_family man [ [ 0; 1 ]; [ 2 ] ] in
        let b = Z.of_family man [ [ 1; 2 ] ] in
        Helpers.check_bool "meet" true
          (Sets.equal
             (normalize (Z.to_family man (Z.meet man a b)))
             (normalize [ [ 1 ]; [ 2 ] ])));
    Helpers.case "element range checked" (fun () ->
        let man = Z.create 3 in
        Alcotest.check_raises "range"
          (Invalid_argument "Zdd: element out of range") (fun () ->
            ignore (Z.singleton man [ 3 ])));
  ]

(* set-based references for the order-theoretic operators *)
let ref_meet a b =
  Sets.fold
    (fun x acc ->
      Sets.fold
        (fun y acc ->
          Sets.add
            (List.filter (fun v -> List.mem v y) x)
            acc)
        b acc)
    a Sets.empty

let subset x y = List.for_all (fun v -> List.mem v y) x

let ref_maximal fam =
  Sets.filter
    (fun x -> not (Sets.exists (fun y -> x <> y && subset x y) fam))
    fam

let ref_minimal fam =
  Sets.filter
    (fun x -> not (Sets.exists (fun y -> x <> y && subset y x) fam))
    fam

let family_op_prop name zdd_op set_op =
  QCheck.Test.make ~name ~count:200 (QCheck.pair arb_family arb_family)
    (fun ((n1, f1), (n2, f2)) ->
      let n = max n1 n2 in
      let man = Z.create n in
      let a = Z.of_family man f1 and b = Z.of_family man f2 in
      let result = normalize (Z.to_family man (zdd_op man a b)) in
      let expect = set_op (normalize f1) (normalize f2) in
      Sets.equal result expect)

let props =
  [
    QCheck.Test.make ~name:"of_family/to_family round trip" ~count:200
      arb_family
      (fun (n, fam) ->
        let man = Z.create n in
        Sets.equal
          (normalize (Z.to_family man (Z.of_family man fam)))
          (normalize fam));
    family_op_prop "union is set union" Z.union Sets.union;
    family_op_prop "inter is set intersection" Z.inter Sets.inter;
    family_op_prop "diff is set difference" Z.diff Sets.diff;
    family_op_prop "join is pairwise union" Z.join (fun a b ->
        Sets.fold
          (fun x acc ->
            Sets.fold
              (fun y acc ->
                Sets.add (List.sort_uniq compare (x @ y)) acc)
              b acc)
          a Sets.empty);
    QCheck.Test.make ~name:"count equals family cardinality" ~count:200
      arb_family
      (fun (n, fam) ->
        let man = Z.create n in
        int_of_float (Z.count man (Z.of_family man fam))
        = Sets.cardinal (normalize fam));
    QCheck.Test.make ~name:"mem agrees with the family" ~count:200
      (QCheck.pair arb_family QCheck.small_int)
      (fun ((n, fam), seed) ->
        let man = Z.create n in
        let z = Z.of_family man fam in
        let code = Random.State.int (Helpers.rng seed) (1 lsl n) in
        let set =
          List.filter (fun v -> code land (1 lsl v) <> 0) (List.init n (fun v -> v))
        in
        Z.mem man z set = Sets.mem set (normalize fam));
    family_op_prop "meet is pairwise intersection" Z.meet ref_meet;
    QCheck.Test.make ~name:"maximal keeps exactly the un-dominated sets"
      ~count:200 arb_family
      (fun (n, fam) ->
        let man = Z.create n in
        let z = Z.of_family man fam in
        Sets.equal
          (normalize (Z.to_family man (Z.maximal man z)))
          (ref_maximal (normalize fam)));
    QCheck.Test.make ~name:"minimal keeps exactly the un-dominating sets"
      ~count:200 arb_family
      (fun (n, fam) ->
        let man = Z.create n in
        let z = Z.of_family man fam in
        Sets.equal
          (normalize (Z.to_family man (Z.minimal man z)))
          (ref_minimal (normalize fam)));
    QCheck.Test.make ~name:"custom element order preserves the family"
      ~count:150
      (QCheck.pair arb_family QCheck.small_int)
      (fun ((n, fam), seed) ->
        let order = Helpers.perm_of_seed seed n in
        let man = Z.create ~order n in
        Sets.equal
          (normalize (Z.to_family man (Z.of_family man fam)))
          (normalize fam));
    QCheck.Test.make
      ~name:"family ops agree across element orders" ~count:100
      (QCheck.triple arb_family arb_family QCheck.small_int)
      (fun ((n1, f1), (n2, f2), seed) ->
        let n = max n1 n2 in
        let order = Helpers.perm_of_seed seed n in
        let m1 = Z.create n and m2 = Z.create ~order n in
        let go m =
          let a = Z.of_family m f1 and b = Z.of_family m f2 in
          normalize (Z.to_family m (Z.union m (Z.join m a b) (Z.diff m a b)))
        in
        Sets.equal (go m1) (go m2));
    QCheck.Test.make
      ~name:"import of the exact minimum ZDD preserves family and size"
      ~count:100
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let r = Ovo_core.Fs.run ~kind:Ovo_core.Compact.Zdd tt in
        let man =
          Z.create ~order:(Ovo_core.Fs.read_first_order r) (T.arity tt)
        in
        let z = Z.import man r.Ovo_core.Fs.diagram in
        T.equal (Z.to_truthtable man z) tt
        && Z.size man z = r.Ovo_core.Fs.size);
    QCheck.Test.make ~name:"zdd size under order equals Eval_order" ~count:100
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let n = T.arity tt in
        let pi = Helpers.perm_of_seed seed n in
        let man = Z.create ~order:(Ovo_core.Eval_order.read_first pi) n in
        Z.size man (Z.of_truthtable man tt)
        = Ovo_core.Eval_order.size ~kind:Ovo_core.Compact.Zdd tt pi);
    QCheck.Test.make ~name:"count_by_size matches the enumerated family"
      ~count:200 arb_family
      (fun (n, fam) ->
        let man = Z.create n in
        let z = Z.of_family man fam in
        let counts = Z.count_by_size man z in
        let expect = Array.make (n + 1) 0. in
        Sets.iter
          (fun s -> expect.(List.length s) <- expect.(List.length s) +. 1.)
          (normalize fam);
        counts = expect
        && Array.fold_left ( +. ) 0. counts = Z.count man z);
    QCheck.Test.make ~name:"truthtable round trip" ~count:150
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let man = Z.create (T.arity tt) in
        T.equal (Z.to_truthtable man (Z.of_truthtable man tt)) tt);
    QCheck.Test.make ~name:"canonicity: equal families share handles"
      ~count:100 arb_family
      (fun (n, fam) ->
        let man = Z.create n in
        let a = Z.of_family man fam in
        let b = Z.of_family man (List.rev fam) in
        Z.equal a b);
  ]

let () =
  Alcotest.run "zdd_pkg"
    [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

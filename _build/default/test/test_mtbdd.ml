module M = Ovo_bdd.Mtbdd
module Mt = Ovo_boolfun.Mtable

let unit_tests =
  [
    Helpers.case "terminals are canonical" (fun () ->
        let man = M.create 3 in
        Helpers.check_bool "shared" true
          (M.equal (M.terminal man 7) (M.terminal man 7));
        Helpers.check_bool "distinct" false
          (M.equal (M.terminal man 7) (M.terminal man 8));
        Alcotest.(check (option int)) "value" (Some 7)
          (M.value man (M.terminal man 7)));
    Helpers.case "select tests a variable" (fun () ->
        let man = M.create 3 in
        let d = M.select man 1 (M.terminal man 10) (M.terminal man 20) in
        Helpers.check_int "x1=0" 10 (M.eval man d 0);
        Helpers.check_int "x1=1" 20 (M.eval man d 0b010));
    Helpers.case "select with equal children collapses" (fun () ->
        let man = M.create 3 in
        let t = M.terminal man 5 in
        Helpers.check_bool "collapsed" true (M.equal (M.select man 0 t t) t);
        Alcotest.(check (option int)) "value" (Some 5)
          (M.value man (M.select man 0 t t)));
    Helpers.case "add combines pointwise" (fun () ->
        let man = M.create 2 in
        let a = M.select man 0 (M.terminal man 1) (M.terminal man 2) in
        let b = M.select man 1 (M.terminal man 10) (M.terminal man 20) in
        let s = M.add man a b in
        Helpers.check_int "00" 11 (M.eval man s 0);
        Helpers.check_int "01" 12 (M.eval man s 1);
        Helpers.check_int "10" 21 (M.eval man s 2);
        Helpers.check_int "11" 22 (M.eval man s 3));
    Helpers.case "apply1 maps leaves" (fun () ->
        let man = M.create 2 in
        let a = M.select man 0 (M.terminal man 1) (M.terminal man 2) in
        let sq = M.apply1 man (fun v -> v * v) a in
        Helpers.check_int "0" 1 (M.eval man sq 0);
        Helpers.check_int "1" 4 (M.eval man sq 1));
    Helpers.case "restrict" (fun () ->
        let man = M.create 2 in
        let a = M.select man 0 (M.terminal man 1) (M.terminal man 2) in
        Alcotest.(check (option int)) "restricted" (Some 2)
          (M.value man (M.restrict man a ~var:0 true)));
    Helpers.case "import optimised MTBDD" (fun () ->
        let mt = Mt.of_fun 4 ~values:5 (fun code -> code mod 5) in
        let r = Ovo_core.Fs.run_mtable mt in
        let man = M.create ~order:(Ovo_core.Fs.read_first_order r) 4 in
        let d = M.import man r.Ovo_core.Fs.diagram in
        let ok = ref true in
        for code = 0 to 15 do
          if M.eval man d code <> Mt.eval mt code then ok := false
        done;
        Helpers.check_bool "eval agrees" true !ok;
        Helpers.check_int "size matches the optimiser" r.Ovo_core.Fs.size
          (M.size man d));
  ]

let props =
  [
    QCheck.Test.make ~name:"of_mtable/to_mtable round trip" ~count:150
      (Helpers.arb_mtable ~lo:1 ~hi:5 ~values:4 ())
      (fun mt ->
        let man = M.create (Mt.arity mt) in
        Mt.equal (M.to_mtable man ~values:(Mt.num_values mt) (M.of_mtable man mt)) mt);
    QCheck.Test.make ~name:"apply2 is pointwise" ~count:150
      (QCheck.pair
         (Helpers.arb_mtable ~lo:1 ~hi:4 ~values:5 ())
         (Helpers.arb_mtable ~lo:1 ~hi:4 ~values:5 ()))
      (fun (a, b) ->
        QCheck.assume (Mt.arity a = Mt.arity b);
        let man = M.create (Mt.arity a) in
        let da = M.of_mtable man a and db = M.of_mtable man b in
        let s = M.apply2 man (fun x y -> (3 * x) + y) da db in
        let ok = ref true in
        for code = 0 to (1 lsl Mt.arity a) - 1 do
          if M.eval man s code <> (3 * Mt.eval a code) + Mt.eval b code then
            ok := false
        done;
        !ok);
    QCheck.Test.make ~name:"max/min bracket add/2" ~count:150
      (QCheck.pair
         (Helpers.arb_mtable ~lo:1 ~hi:4 ~values:5 ())
         (Helpers.arb_mtable ~lo:1 ~hi:4 ~values:5 ()))
      (fun (a, b) ->
        QCheck.assume (Mt.arity a = Mt.arity b);
        let man = M.create (Mt.arity a) in
        let da = M.of_mtable man a and db = M.of_mtable man b in
        let hi = M.max_ man da db and lo = M.min_ man da db in
        let ok = ref true in
        for code = 0 to (1 lsl Mt.arity a) - 1 do
          let va = Mt.eval a code and vb = Mt.eval b code in
          if M.eval man hi code <> max va vb then ok := false;
          if M.eval man lo code <> min va vb then ok := false
        done;
        !ok);
    QCheck.Test.make ~name:"canonicity under different construction orders"
      ~count:100
      (Helpers.arb_mtable ~lo:1 ~hi:4 ~values:3 ())
      (fun mt ->
        let man = M.create (Mt.arity mt) in
        let d1 = M.of_mtable man mt in
        (* rebuild through apply2 of itself with max: identical function *)
        let d2 = M.max_ man d1 d1 in
        M.equal d1 d2);
    QCheck.Test.make ~name:"import equals of_mtable under the same order"
      ~count:80
      (Helpers.arb_mtable ~lo:1 ~hi:4 ~values:3 ())
      (fun mt ->
        let r = Ovo_core.Fs.run_mtable mt in
        let order = Ovo_core.Fs.read_first_order r in
        let man = M.create ~order (Mt.arity mt) in
        M.equal (M.import man r.Ovo_core.Fs.diagram) (M.of_mtable man mt));
  ]

let () =
  Alcotest.run "mtbdd"
    [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

test/test_integration.ml: Alcotest Array Buffer Helpers Ovo_bdd Ovo_boolfun Ovo_core Printf QCheck Random

test/test_blif.ml: Alcotest Buffer Helpers Ovo_boolfun Ovo_core Printf QCheck

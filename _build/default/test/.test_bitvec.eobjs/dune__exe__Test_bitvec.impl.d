test/test_bitvec.ml: Alcotest Helpers List Ovo_boolfun QCheck String

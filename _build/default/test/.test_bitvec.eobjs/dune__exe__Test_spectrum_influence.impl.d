test/test_spectrum_influence.ml: Alcotest Array Helpers List Ovo_boolfun Ovo_core Ovo_ordering Ovo_quantum QCheck

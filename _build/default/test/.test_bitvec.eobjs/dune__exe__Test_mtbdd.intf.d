test/test_mtbdd.mli:

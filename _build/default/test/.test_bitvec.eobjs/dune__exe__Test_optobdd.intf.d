test/test_optobdd.mli:

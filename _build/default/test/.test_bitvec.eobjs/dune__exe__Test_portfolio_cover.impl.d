test/test_portfolio_cover.ml: Alcotest Helpers List Ovo_bdd Ovo_boolfun Ovo_core Ovo_ordering QCheck

test/test_zdd_pkg.ml: Alcotest Array Helpers List Ovo_bdd Ovo_boolfun Ovo_core Printf QCheck Random Set String

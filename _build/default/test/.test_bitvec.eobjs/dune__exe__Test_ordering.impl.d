test/test_ordering.ml: Alcotest Array Hashtbl Helpers List Ovo_boolfun Ovo_core Ovo_ordering Printf QCheck

test/test_cbdd.ml: Alcotest Helpers Ovo_bdd Ovo_boolfun Ovo_core QCheck Random

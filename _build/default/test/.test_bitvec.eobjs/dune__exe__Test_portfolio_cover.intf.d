test/test_portfolio_cover.mli:

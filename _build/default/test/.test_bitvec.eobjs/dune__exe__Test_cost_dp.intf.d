test/test_cost_dp.mli:

test/test_dynbdd.ml: Alcotest Array Helpers Ovo_bdd Ovo_boolfun Ovo_core Printf QCheck Random

test/test_dynbdd.mli:

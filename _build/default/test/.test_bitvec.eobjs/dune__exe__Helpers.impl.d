test/helpers.ml: Alcotest Array Format List Ovo_boolfun Ovo_core QCheck QCheck_alcotest Random

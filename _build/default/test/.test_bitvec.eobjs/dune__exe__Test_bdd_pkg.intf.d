test/test_bdd_pkg.mli:

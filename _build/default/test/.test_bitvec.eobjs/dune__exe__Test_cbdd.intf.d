test/test_cbdd.mli:

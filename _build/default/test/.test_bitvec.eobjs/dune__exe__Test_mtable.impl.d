test/test_mtable.ml: Alcotest Helpers Ovo_boolfun QCheck Random

test/test_eval_order.ml: Alcotest Array Helpers Ovo_boolfun Ovo_core QCheck

test/test_qsearch.ml: Alcotest Array Float Gen Helpers List Ovo_quantum QCheck

test/test_opt_shared.ml: Alcotest Array Helpers Ovo_boolfun Ovo_core Ovo_quantum QCheck String

test/test_circuits.ml: Alcotest Array Helpers Ovo_bdd Ovo_boolfun Printf QCheck

test/test_varset.ml: Alcotest Format Hashtbl Helpers List Ovo_core Printf QCheck

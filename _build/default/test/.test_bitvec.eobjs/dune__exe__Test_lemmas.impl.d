test/test_lemmas.ml: Alcotest Hashtbl Helpers Ovo_boolfun Ovo_core QCheck Random

test/test_diagram.mli:

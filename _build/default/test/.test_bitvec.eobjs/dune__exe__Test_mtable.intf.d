test/test_mtable.mli:

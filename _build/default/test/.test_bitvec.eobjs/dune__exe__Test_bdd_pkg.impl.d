test/test_bdd_pkg.ml: Alcotest Array Helpers List Ovo_bdd Ovo_boolfun Ovo_core QCheck Random String

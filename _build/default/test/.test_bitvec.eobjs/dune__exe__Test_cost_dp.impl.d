test/test_cost_dp.ml: Alcotest Array Format Hashtbl Helpers List Ovo_boolfun Ovo_core Printf String

test/test_eval_order.mli:

test/test_engine.ml: Alcotest Array Hashtbl Helpers List Ovo_boolfun Ovo_core QCheck Random

test/test_pla.ml: Alcotest Array Helpers Ovo_boolfun QCheck

test/test_diagram.ml: Alcotest Array Helpers List Ovo_boolfun Ovo_core Printf QCheck String

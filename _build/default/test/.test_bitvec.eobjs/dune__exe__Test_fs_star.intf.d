test/test_fs_star.mli:

test/test_expr.ml: Alcotest Helpers List Ovo_boolfun QCheck Random

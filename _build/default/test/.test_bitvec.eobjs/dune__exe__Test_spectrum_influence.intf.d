test/test_spectrum_influence.mli:

test/test_numerics.ml: Alcotest Array Float Helpers List Ovo_boolfun Ovo_core Ovo_numerics Ovo_quantum Printf QCheck

test/test_optobdd.ml: Alcotest Array Float Helpers List Ovo_boolfun Ovo_core Ovo_numerics Ovo_quantum Printf QCheck

test/test_mtbdd.ml: Alcotest Helpers Ovo_bdd Ovo_boolfun Ovo_core QCheck

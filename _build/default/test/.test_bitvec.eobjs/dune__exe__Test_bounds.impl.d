test/test_bounds.ml: Alcotest Float Helpers Ovo_boolfun Ovo_core QCheck

test/test_qsearch.mli:

test/test_zdd_pkg.mli:

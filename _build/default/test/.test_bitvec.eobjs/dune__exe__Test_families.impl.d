test/test_families.ml: Alcotest Array Helpers List Ovo_boolfun Ovo_core Printf QCheck Random

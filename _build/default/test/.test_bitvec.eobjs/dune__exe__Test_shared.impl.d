test/test_shared.ml: Alcotest Array Helpers List Ovo_boolfun Ovo_core QCheck String

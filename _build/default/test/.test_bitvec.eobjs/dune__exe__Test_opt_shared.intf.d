test/test_opt_shared.mli:

test/test_astar.ml: Alcotest Helpers Ovo_boolfun Ovo_core Ovo_ordering QCheck

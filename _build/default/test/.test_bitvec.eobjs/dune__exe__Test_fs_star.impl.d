test/test_fs_star.ml: Alcotest Array Hashtbl Helpers List Ovo_boolfun Ovo_core QCheck Random

test/test_truthtable.ml: Alcotest Array Helpers Ovo_boolfun QCheck Random

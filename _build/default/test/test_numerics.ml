module M = Ovo_numerics.Maths
module S = Ovo_numerics.Solver
module E = Ovo_numerics.Exponents
module Tb = Ovo_numerics.Tables
module Pr = Ovo_numerics.Predict
module P = Ovo_quantum.Params

let check_float = Alcotest.(check (float 1e-9))

let unit_tests =
  [
    Helpers.case "entropy endpoints and symmetry" (fun () ->
        check_float "H(0)" 0. (M.entropy 0.);
        check_float "H(1)" 0. (M.entropy 1.);
        check_float "H(1/2)" 1. (M.entropy 0.5);
        check_float "symmetry" (M.entropy 0.3) (M.entropy 0.7);
        Alcotest.check_raises "domain" (Invalid_argument "Maths.entropy")
          (fun () -> ignore (M.entropy 1.5)));
    Helpers.case "log2_binomial exact small values" (fun () ->
        check_float "C(5,2)" (M.log2 10.) (M.log2_binomial 5 2);
        check_float "C(10,0)" 0. (M.log2_binomial 10 0);
        check_float "C(10,10)" 0. (M.log2_binomial 10 10);
        Alcotest.(check (float 1e-6)) "C(20,10)" 184756. (M.binomial 20 10));
    Helpers.case "entropy upper-bounds binomials (paper prelim bound)"
      (fun () ->
        (* C(n,k) <= 2^(n·H(k/n)) *)
        for n = 1 to 30 do
          for k = 0 to n do
            Helpers.check_bool "bound" true
              (M.log2_binomial n k
              <= (float_of_int n *. M.entropy (float_of_int k /. float_of_int n))
                 +. 1e-9)
          done
        done);
    Helpers.case "bisection solves sqrt(2)" (fun () ->
        let r = S.bisect ~f:(fun x -> (x *. x) -. 2.) ~lo:0. ~hi:2. () in
        Alcotest.(check (float 1e-10)) "sqrt2" (sqrt 2.) r);
    Helpers.case "bisection requires a sign change" (fun () ->
        Alcotest.check_raises "no change"
          (Invalid_argument "Solver.bisect: no sign change") (fun () ->
            ignore (S.bisect ~f:(fun x -> (x *. x) +. 1.) ~lo:0. ~hi:1. ())));
    Helpers.case "solve scans for a bracket" (fun () ->
        let r =
          S.solve ~f:(fun x -> sin x) ~lo:2. ~hi:4. ~steps:100 ()
        in
        Alcotest.(check (float 1e-9)) "pi" Float.pi r);
    Helpers.case "solve_offset finds tiny roots" (fun () ->
        let r =
          S.solve_offset ~f:(fun x -> x -. 1e-7) ~origin:0. ~max_offset:1.
            ~steps:1000 ()
        in
        Alcotest.(check (float 1e-12)) "tiny" 1e-7 r);
    Helpers.case "g and f definitions" (fun () ->
        (* g_3(x,y) = (1-y) + (y-x)·log2 3 *)
        check_float "g" (0.5 +. (0.2 *. M.log2 3.)) (E.g ~gamma:3. 0.3 0.5);
        (* f adds y/2·H(x/y) *)
        check_float "f"
          (E.g ~gamma:3. 0.25 0.5 +. (0.25 *. M.entropy 0.5))
          (E.f ~gamma:3. 0.25 0.5));
    Helpers.case "gamma0 matches Sec 3.1 (2.98581)" (fun () ->
        let alpha, gamma = E.gamma0 () in
        Alcotest.(check (float 1e-5)) "alpha" 0.269577 alpha;
        Alcotest.(check (float 1e-4)) "gamma" 2.98581 gamma);
    Helpers.case "gamma1 matches Sec 3.1 (2.97625)" (fun () ->
        let alpha, gamma = E.gamma1 () in
        Alcotest.(check (float 1e-5)) "alpha" 0.274863 alpha;
        Alcotest.(check (float 1e-4)) "gamma" 2.97625 gamma);
    Helpers.case "Table 1 reproduces all published digits" (fun () ->
        List.iteri
          (fun i row ->
            let k, gamma, alpha = P.table1.(i) in
            Helpers.check_int "k" k row.Tb.k;
            Alcotest.(check (float 1e-4))
              (Printf.sprintf "gamma_%d" k)
              gamma row.Tb.gamma_out;
            Array.iteri
              (fun j a ->
                Alcotest.(check (float 2e-5))
                  (Printf.sprintf "alpha_%d_%d" k (j + 1))
                  a row.Tb.alpha.(j))
              alpha)
          (Tb.table1 ()));
    Helpers.case "Table 2 reproduces all published digits" (fun () ->
        List.iteri
          (fun i row ->
            let gamma_in, beta, alpha = P.table2.(i) in
            Alcotest.(check (float 1e-4))
              (Printf.sprintf "gamma_in_%d" i)
              gamma_in row.Tb.gamma_in;
            Alcotest.(check (float 1e-4))
              (Printf.sprintf "beta_%d" i)
              beta row.Tb.gamma_out;
            Array.iteri
              (fun j a ->
                Alcotest.(check (float 2e-5))
                  (Printf.sprintf "t2_alpha_%d_%d" i (j + 1))
                  a row.Tb.alpha.(j))
              alpha)
          (Tb.table2 ()));
    Helpers.case "Table 2 converges to 2.77286 (Theorem 13)" (fun () ->
        let rows = Tb.table2 () in
        let last = List.nth rows (List.length rows - 1) in
        Alcotest.(check (float 1e-4)) "final" P.final_gamma last.Tb.gamma_out);
    Helpers.case "k beyond 6 brings only negligible improvement" (fun () ->
        (* the paper stops at k = 6 because gamma_7 is indistinguishable
           at the printed precision *)
        let g6 = (Tb.solve ~gamma:3. ~k:6).Tb.gamma_out in
        let g7 = (Tb.solve ~gamma:3. ~k:7).Tb.gamma_out in
        Helpers.check_bool "monotone" true (g7 <= g6 +. 1e-9);
        Helpers.check_bool "negligible" true (g6 -. g7 < 1e-4));
    Helpers.case "chain recurrence closes at the published seed" (fun () ->
        (* Appendix B: k=2 with alpha = (0.192755, 0.334571) gives
           alpha_3 = 1 *)
        let alphas = Tb.chain ~gamma:3. ~k:2 0.192755 0.334571 in
        Alcotest.(check (float 1e-4)) "closure" 1. alphas.(2));
    Helpers.case "predictors: exact closed forms" (fun () ->
        check_float "fs n=1" 1. (Pr.fs_cells 1);
        check_float "fs n=4" (4. *. 27.) (Pr.fs_cells 4);
        check_float "brute n=3" (6. *. 7.) (Pr.brute_force_cells 3);
        check_float "eval n=5" 31. (Pr.eval_order_cells 5);
        check_float "5!" 120. (Pr.factorial 5));
    Helpers.case "predicted FS cells match the measured counter" (fun () ->
        for n = 1 to 7 do
          let tt = Ovo_boolfun.Truthtable.random (Helpers.rng n) n in
          let before = Ovo_core.Cost.snapshot () in
          let _ = Ovo_core.Fs.run tt in
          let after = Ovo_core.Cost.snapshot () in
          let measured =
            (Ovo_core.Cost.diff after before).Ovo_core.Cost.table_cells
          in
          check_float
            (Printf.sprintf "n=%d" n)
            (Pr.fs_cells n)
            (float_of_int measured)
        done);
    Helpers.case "regression slope recovers an exact exponential" (fun () ->
        let points = List.init 8 (fun i -> (i + 3, Float.pow 3. (float_of_int (i + 3)))) in
        Alcotest.(check (float 1e-9)) "slope" (M.log2 3.)
          (Pr.log2_cost_per_var points));
  ]

let props =
  [
    QCheck.Test.make ~name:"entropy is concave-ish: max at 1/2" ~count:200
      QCheck.(float_range 0. 1.)
      (fun x -> M.entropy x <= 1. +. 1e-12);
    QCheck.Test.make ~name:"pow2 . log2 identity" ~count:200
      QCheck.(float_range 0.001 1000.)
      (fun x -> Float.abs (M.pow2 (M.log2 x) -. x) < 1e-9 *. x);
    QCheck.Test.make ~name:"binomial symmetry" ~count:100
      QCheck.(pair (int_range 0 40) (int_range 0 40))
      (fun (n, k) ->
        QCheck.assume (k <= n);
        Float.abs (M.log2_binomial n k -. M.log2_binomial n (n - k)) < 1e-9);
  ]

let () =
  Alcotest.run "numerics"
    [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

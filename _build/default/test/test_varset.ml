module V = Ovo_core.Varset

let binomial n k =
  let rec loop i acc = if i > k then acc else loop (i + 1) (acc * (n - i + 1) / i) in
  if k < 0 || k > n then 0 else loop 1 1

let unit_tests =
  [
    Helpers.case "basic operations" (fun () ->
        let s = V.of_list [ 1; 4; 6 ] in
        Helpers.check_bool "mem 4" true (V.mem 4 s);
        Helpers.check_bool "mem 3" false (V.mem 3 s);
        Helpers.check_int "cardinal" 3 (V.cardinal s);
        Alcotest.(check (list int)) "elements" [ 1; 4; 6 ] (V.elements s);
        Helpers.check_int "min_elt" 1 (V.min_elt s));
    Helpers.case "add/remove" (fun () ->
        let s = V.add 2 V.empty in
        Helpers.check_bool "added" true (V.mem 2 s);
        Helpers.check_bool "removed" false (V.mem 2 (V.remove 2 s));
        Helpers.check_bool "remove absent is idempotent" true
          (V.remove 5 s = s));
    Helpers.case "set algebra" (fun () ->
        let a = V.of_list [ 0; 1; 2 ] and b = V.of_list [ 2; 3 ] in
        Alcotest.(check (list int)) "union" [ 0; 1; 2; 3 ] (V.elements (V.union a b));
        Alcotest.(check (list int)) "inter" [ 2 ] (V.elements (V.inter a b));
        Alcotest.(check (list int)) "diff" [ 0; 1 ] (V.elements (V.diff a b));
        Helpers.check_bool "subset" true (V.subset (V.of_list [ 1 ]) a);
        Helpers.check_bool "not subset" false (V.subset b a);
        Helpers.check_bool "disjoint" true
          (V.disjoint (V.of_list [ 0 ]) (V.of_list [ 1 ])));
    Helpers.case "full" (fun () ->
        Helpers.check_int "cardinal" 5 (V.cardinal (V.full 5));
        Helpers.check_int "empty full" 0 (V.cardinal (V.full 0)));
    Helpers.case "min_elt of empty raises" (fun () ->
        Alcotest.check_raises "empty" Not_found (fun () ->
            ignore (V.min_elt V.empty)));
    Helpers.case "rank_in" (fun () ->
        let s = V.of_list [ 0; 2; 5; 7 ] in
        Helpers.check_int "rank of 5" 2 (V.rank_in 5 s);
        Helpers.check_int "rank of 0" 0 (V.rank_in 0 s);
        Helpers.check_int "rank of non-member 6" 3 (V.rank_in 6 s));
    Helpers.case "fold ascending" (fun () ->
        Alcotest.(check (list int)) "order" [ 6; 4; 1 ]
          (V.fold (fun i acc -> i :: acc) (V.of_list [ 1; 4; 6 ]) []));
    Helpers.case "iter_subsets_of_size counts binomials" (fun () ->
        for n = 0 to 8 do
          for k = 0 to n do
            let count = ref 0 in
            V.iter_subsets_of_size ~n ~k (fun s ->
                incr count;
                Helpers.check_int "cardinal" k (V.cardinal s));
            Helpers.check_int
              (Printf.sprintf "C(%d,%d)" n k)
              (binomial n k) !count
          done
        done);
    Helpers.case "iter_subsets_of arbitrary set" (fun () ->
        let s = V.of_list [ 1; 3; 6; 7 ] in
        let seen = ref [] in
        V.iter_subsets_of s ~size:2 (fun sub ->
            Helpers.check_bool "subset" true (V.subset sub s);
            Helpers.check_int "size" 2 (V.cardinal sub);
            seen := sub :: !seen);
        Helpers.check_int "count" 6 (List.length !seen);
        Helpers.check_int "distinct" 6
          (List.length (List.sort_uniq compare !seen)));
    Helpers.case "pp" (fun () ->
        Alcotest.(check string) "render" "{0,3}"
          (Format.asprintf "%a" V.pp (V.of_list [ 0; 3 ])));
  ]

let props =
  [
    QCheck.Test.make ~name:"of_list/elements round trip" ~count:200
      QCheck.(small_list (int_range 0 20))
      (fun l ->
        V.elements (V.of_list l) = List.sort_uniq compare l);
    QCheck.Test.make ~name:"cardinal = length of elements" ~count:200
      QCheck.(small_list (int_range 0 30))
      (fun l ->
        let s = V.of_list l in
        V.cardinal s = List.length (V.elements s));
    QCheck.Test.make ~name:"subset enumeration is exhaustive and unique"
      ~count:50
      QCheck.(pair (int_range 0 10) (int_range 0 10))
      (fun (n, k) ->
        QCheck.assume (k <= n);
        let seen = Hashtbl.create 16 in
        V.iter_subsets_of_size ~n ~k (fun s -> Hashtbl.replace seen s ());
        Hashtbl.length seen = binomial n k);
  ]

let () =
  Alcotest.run "varset" [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

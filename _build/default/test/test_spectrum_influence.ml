module Sp = Ovo_ordering.Spectrum
module Inf = Ovo_ordering.Influence
module T = Ovo_boolfun.Truthtable
module F = Ovo_boolfun.Families

let unit_tests =
  [
    Helpers.case "spectrum of a symmetric function is a point mass" (fun () ->
        let s = Sp.compute (F.majority 5) in
        Helpers.check_int "min=max" s.Sp.min_cost s.Sp.max_cost;
        Alcotest.(check (float 1e-9)) "all optimal" 1.0 (Sp.optimal_fraction s);
        Helpers.check_int "120 orderings" 120 s.Sp.total_orderings);
    Helpers.case "achilles spectrum spans linear to exponential" (fun () ->
        let s = Sp.compute (F.achilles 3) in
        Helpers.check_int "min" 6 s.Sp.min_cost;
        Helpers.check_int "max" 14 s.Sp.max_cost;
        Helpers.check_bool "optimum is rare" true (Sp.optimal_fraction s < 0.2);
        Helpers.check_bool "mean strictly between" true
          (s.Sp.mean > 6. && s.Sp.mean < 14.));
    Helpers.case "spectrum histogram accounts for every ordering" (fun () ->
        let s = Sp.compute (F.multiplexer ~select:2) in
        Helpers.check_int "sums to n!" s.Sp.total_orderings
          (List.fold_left (fun acc (_, c) -> acc + c) 0 s.Sp.histogram));
    Helpers.case "spectrum refuses big arities" (fun () ->
        Alcotest.check_raises "limit"
          (Invalid_argument "Spectrum.compute: arity above limit") (fun () ->
            ignore (Sp.compute (F.parity 9))));
    Helpers.case "influence of parity is 1 everywhere" (fun () ->
        let inf = Inf.influences (F.parity 4) in
        Array.iter (fun x -> Alcotest.(check (float 1e-9)) "1" 1.0 x) inf);
    Helpers.case "influence of a single variable" (fun () ->
        let inf = Inf.influences (T.var 3 1) in
        Alcotest.(check (float 1e-9)) "x1" 1.0 inf.(1);
        Alcotest.(check (float 1e-9)) "x0" 0.0 inf.(0);
        Alcotest.(check (float 1e-9)) "x2" 0.0 inf.(2));
    Helpers.case "influence of AND is 1/2^(n-1)" (fun () ->
        let tt = T.of_fun 3 (fun code -> code = 7) in
        let inf = Inf.influences tt in
        Array.iter (fun x -> Alcotest.(check (float 1e-9)) "1/4" 0.25 x) inf);
    Helpers.case "influence ordering places the mux selector high" (fun () ->
        (* for mux the address bits have the highest influence and the
           heuristic's root variable should be one of them *)
        let tt = F.multiplexer ~select:2 in
        let r = Inf.run tt in
        let root = r.Inf.order.(Array.length r.Inf.order - 1) in
        Helpers.check_bool "root is an address bit" true (root = 0 || root = 1));
  ]

let props =
  [
    QCheck.Test.make ~name:"spectrum min equals the FS optimum" ~count:40
      (Helpers.arb_truthtable ~lo:1 ~hi:5 ())
      (fun tt ->
        (Sp.compute tt).Sp.min_cost = (Ovo_core.Fs.run tt).Ovo_core.Fs.mincost);
    QCheck.Test.make ~name:"spectrum mean within [min, max]" ~count:40
      (Helpers.arb_truthtable ~lo:1 ~hi:5 ())
      (fun tt ->
        let s = Sp.compute tt in
        s.Sp.mean >= float_of_int s.Sp.min_cost
        && s.Sp.mean <= float_of_int s.Sp.max_cost);
    QCheck.Test.make ~name:"influences vanish exactly off the support"
      ~count:100
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let inf = Inf.influences tt in
        let support = T.support tt in
        Array.for_all
          (fun j -> List.mem j support = (inf.(j) > 0.))
          (Array.init (T.arity tt) (fun j -> j)));
    QCheck.Test.make ~name:"influence heuristic is sound and honest" ~count:60
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let r = Inf.run tt in
        r.Inf.mincost >= (Ovo_core.Fs.run tt).Ovo_core.Fs.mincost
        && Ovo_core.Eval_order.mincost tt r.Inf.order = r.Inf.mincost);
    QCheck.Test.make ~name:"simple_split (Sec 3.1) equals FS" ~count:30
      (Helpers.arb_truthtable ~lo:2 ~hi:6 ())
      (fun tt ->
        let ctx = Ovo_quantum.Opt_obdd.make_ctx () in
        let r, _ =
          Ovo_quantum.Opt_obdd.minimize ~ctx
            (Ovo_quantum.Opt_obdd.simple_split ())
            tt
        in
        r.Ovo_core.Fs.mincost = (Ovo_core.Fs.run tt).Ovo_core.Fs.mincost);
  ]

let () =
  Alcotest.run "spectrum_influence"
    [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

module OS = Ovo_quantum.Opt_shared
module Q = Ovo_quantum
module S = Ovo_core.Shared
module T = Ovo_boolfun.Truthtable

let gen_pair =
  QCheck.Gen.(
    int_range 2 5 >>= fun n ->
    let table = string_size ~gen:(oneofl [ '0'; '1' ]) (return (1 lsl n)) in
    pair table table >|= fun (a, b) -> [| T.of_string a; T.of_string b |])

let arb_pair =
  QCheck.make
    ~print:(fun tts ->
      String.concat "/" (Array.to_list (Array.map T.to_string tts)))
    gen_pair

let unit_tests =
  [
    Helpers.case "quantum shared optimisation of the 2-bit multiplier"
      (fun () ->
        let outputs =
          Array.init 4 (fun j ->
              T.of_fun 4 (fun code ->
                  ((code land 3) * (code lsr 2)) land (1 lsl j) <> 0))
        in
        let exact = (S.minimize outputs).S.mincost in
        let ctx = Q.Qctx.make () in
        let r, cost = OS.minimize ~ctx (OS.theorem10 ()) outputs in
        Helpers.check_int "mincost" exact r.S.mincost;
        Helpers.check_bool "cost accounted" true (cost > 0.);
        Helpers.check_bool "valid" true
          (S.check r.S.state
             (Array.map Ovo_boolfun.Mtable.of_truthtable outputs)));
    Helpers.case "subroutine names carry over" (fun () ->
        Helpers.check_bool "fs*" true (OS.name OS.fs_star = "FS*");
        Helpers.check_bool "tower" true (OS.name (OS.tower ~depth:2) = "Gamma_2"));
    Helpers.case "classical subroutine over shared states" (fun () ->
        let outputs = [| T.var 3 0; T.( &&& ) (T.var 3 1) (T.var 3 2) |] in
        let ctx = Q.Qctx.make () in
        let r, _ = OS.minimize ~ctx OS.fs_star outputs in
        Helpers.check_int "exact" (S.minimize outputs).S.mincost r.S.mincost);
  ]

let props =
  [
    QCheck.Test.make ~name:"quantum shared theorem10 equals exact Shared"
      ~count:30 arb_pair
      (fun tts ->
        let ctx = Q.Qctx.make () in
        let r, _ = OS.minimize ~ctx (OS.theorem10 ()) tts in
        r.S.mincost = (S.minimize tts).S.mincost);
    QCheck.Test.make ~name:"quantum shared simple_split equals exact Shared"
      ~count:20 arb_pair
      (fun tts ->
        let ctx = Q.Qctx.make () in
        let r, _ = OS.minimize ~ctx (OS.simple_split ()) tts in
        r.S.mincost = (S.minimize tts).S.mincost);
    QCheck.Test.make ~name:"quantum shared tower-2 equals exact Shared"
      ~count:15 arb_pair
      (fun tts ->
        let ctx = Q.Qctx.make () in
        let r, _ = OS.minimize ~ctx (OS.tower ~depth:2) tts in
        r.S.mincost = (S.minimize tts).S.mincost);
    QCheck.Test.make
      ~name:"error injection still yields valid shared diagrams" ~count:30
      (QCheck.pair arb_pair QCheck.small_int)
      (fun (tts, seed) ->
        let ctx = Q.Qctx.make ~rng:(Helpers.rng seed) ~epsilon:0.5 () in
        let r, _ = OS.minimize ~ctx (OS.theorem10 ()) tts in
        S.check r.S.state (Array.map Ovo_boolfun.Mtable.of_truthtable tts)
        && r.S.mincost >= (S.minimize tts).S.mincost);
  ]

let () =
  Alcotest.run "opt_shared"
    [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

module O = Ovo_quantum.Opt_obdd
module P = Ovo_quantum.Params
module Fs = Ovo_core.Fs
module C = Ovo_core.Compact
module T = Ovo_boolfun.Truthtable

let minimize ?kind sub tt =
  let ctx = O.make_ctx () in
  O.minimize ?kind ~ctx sub tt

let unit_tests =
  [
    Helpers.case "theorem10 equals FS on a known function" (fun () ->
        let tt = Ovo_boolfun.Families.hidden_weighted_bit 6 in
        let r, cost = minimize (O.theorem10 ()) tt in
        Helpers.check_int "mincost" 21 r.Fs.mincost;
        Helpers.check_bool "cost positive" true (cost > 0.));
    Helpers.case "params tables are well-formed" (fun () ->
        for k = 1 to 6 do
          let alpha = P.table1_alpha k in
          Helpers.check_int "length" k (Array.length alpha);
          Array.iteri
            (fun i a ->
              Helpers.check_bool "in (0,1)" true (a > 0. && a < 1.);
              if i > 0 then
                Helpers.check_bool "nondecreasing" true (a >= alpha.(i - 1)))
            alpha
        done;
        Helpers.check_bool "gammas decrease" true
          (P.table1_gamma 6 < P.table1_gamma 1);
        Helpers.check_bool "final below classical" true
          (P.final_gamma < P.classical_gamma));
    Helpers.case "invalid parameters rejected" (fun () ->
        Alcotest.check_raises "length"
          (Invalid_argument "Opt_obdd.opt_obdd: |alpha| <> k") (fun () ->
            ignore (O.opt_obdd ~k:2 ~alpha:[| 0.3 |] O.fs_star));
        Alcotest.check_raises "range"
          (Invalid_argument "Opt_obdd.opt_obdd: alpha not in (0,1) nondecreasing")
          (fun () -> ignore (O.opt_obdd ~k:1 ~alpha:[| 1.2 |] O.fs_star));
        Alcotest.check_raises "depth"
          (Invalid_argument "Opt_obdd.tower: depth out of range") (fun () ->
            ignore (O.tower ~depth:11)));
    Helpers.case "tower depth-1 label chains" (fun () ->
        Helpers.check_bool "gamma1" true (O.name (O.tower ~depth:1) = "Gamma_1");
        Helpers.check_bool "gamma3" true (O.name (O.tower ~depth:3) = "Gamma_3"));
    Helpers.case "modeled cost is function-independent" (fun () ->
        (* the accounting depends only on table sizes, never on content *)
        let st = Helpers.rng 3 in
        let n = 6 in
        let costs =
          List.init 5 (fun _ ->
              let tt = T.random st n in
              snd (minimize (O.theorem10 ()) tt))
        in
        match costs with
        | [] -> assert false
        | c :: rest ->
            List.iter (fun c' -> Alcotest.(check (float 1e-6)) "same" c c') rest);
    Helpers.case "modeled cost grows with n" (fun () ->
        let st = Helpers.rng 4 in
        let cost n = snd (minimize (O.theorem10 ()) (T.random st n)) in
        let c5 = cost 5 and c8 = cost 8 in
        Helpers.check_bool "monotone" true (c8 > c5));
    Helpers.case "fs_star subroutine is the classical composition" (fun () ->
        let tt = Ovo_boolfun.Families.multiplexer ~select:2 in
        let r, cost = minimize O.fs_star tt in
        Helpers.check_int "mincost" (Fs.run tt).Fs.mincost r.Fs.mincost;
        (* the classical cost is the exact cell count n·3^(n-1) *)
        Alcotest.(check (float 0.5))
          "cells" (Ovo_numerics.Predict.fs_cells 6) cost);
    Helpers.case "zdd minimisation through the quantum path" (fun () ->
        let tt = Ovo_boolfun.Families.achilles 3 in
        let r, _ = minimize ~kind:C.Zdd (O.theorem10 ()) tt in
        Helpers.check_int "mincost" (Fs.run ~kind:C.Zdd tt).Fs.mincost
          r.Fs.mincost);
    Helpers.case "stats record searches and queries" (fun () ->
        let ctx = O.make_ctx () in
        let tt = Ovo_boolfun.Families.parity 7 in
        let _ = O.minimize ~ctx (O.theorem10 ()) tt in
        Helpers.check_bool "searched" true
          (ctx.O.stats.Ovo_quantum.Qsearch.searches > 0);
        Helpers.check_bool "queries accounted" true
          (ctx.O.stats.Ovo_quantum.Qsearch.modeled_queries > 0.));
  ]

let predictor_tests =
  [
    Helpers.case "analytic predictor equals simulated modeled cost" (fun () ->
        let eps = Float.pow 2. (-20.) in
        for n = 2 to 8 do
          let tt = T.random (Helpers.rng n) n in
          let ctx = O.make_ctx () in
          let _, sim = O.minimize ~ctx (O.theorem10 ()) tt in
          let pred =
            Ovo_numerics.Predict.theorem10_cost ~epsilon:eps
              ~alpha:(P.table1_alpha 6) n
          in
          Alcotest.(check (float 1e-6)) (Printf.sprintf "t10 n=%d" n) pred sim;
          let ctx2 = O.make_ctx () in
          let _, sim2 = O.minimize ~ctx:ctx2 (O.tower ~depth:2) tt in
          let pred2 =
            Ovo_numerics.Predict.tower_cost ~epsilon:eps
              ~alphas:[| P.table2_alpha 0; P.table2_alpha 1 |]
              ~depth:2 n
          in
          Alcotest.(check (float 1e-6)) (Printf.sprintf "tower n=%d" n) pred2 sim2
        done);
    Helpers.case "predictor crossover: OptOBDD(6) beats FS at large n" (fun () ->
        let eps n = Float.pow 2. (-.float_of_int n) in
        let fs = Ovo_numerics.Predict.fs_cells 40 in
        let q =
          Ovo_numerics.Predict.theorem10_cost ~epsilon:(eps 40)
            ~alpha:(P.table1_alpha 6) 40
        in
        Helpers.check_bool "q < fs at n=40" true (q < fs));
  ]

let props =
  [
    QCheck.Test.make ~name:"theorem10 matches FS (BDD)" ~count:40
      (Helpers.arb_truthtable ~lo:2 ~hi:6 ())
      (fun tt ->
        let r, _ = minimize (O.theorem10 ()) tt in
        r.Fs.mincost = (Fs.run tt).Fs.mincost
        && Ovo_core.Diagram.check_tt r.Fs.diagram tt);
    QCheck.Test.make ~name:"tower depth 2 matches FS" ~count:25
      (Helpers.arb_truthtable ~lo:2 ~hi:6 ())
      (fun tt ->
        let r, _ = minimize (O.tower ~depth:2) tt in
        r.Fs.mincost = (Fs.run tt).Fs.mincost);
    QCheck.Test.make ~name:"tower depth 3 matches FS on small n" ~count:10
      (Helpers.arb_truthtable ~lo:2 ~hi:5 ())
      (fun tt ->
        let r, _ = minimize (O.tower ~depth:3) tt in
        r.Fs.mincost = (Fs.run tt).Fs.mincost);
    QCheck.Test.make ~name:"theorem10 matches FS (ZDD)" ~count:25
      (Helpers.arb_truthtable ~lo:2 ~hi:5 ())
      (fun tt ->
        let r, _ = minimize ~kind:C.Zdd (O.theorem10 ()) tt in
        r.Fs.mincost = (Fs.run ~kind:C.Zdd tt).Fs.mincost);
    QCheck.Test.make
      ~name:"with injected errors the diagram is always valid (Theorem 1)"
      ~count:60
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:5 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let ctx = O.make_ctx ~rng:(Helpers.rng seed) ~epsilon:0.4 () in
        let r, _ = O.minimize ~ctx (O.theorem10 ()) tt in
        Ovo_core.Diagram.check_tt r.Fs.diagram tt
        && r.Fs.mincost >= (Fs.run tt).Fs.mincost
        && Ovo_core.Eval_order.mincost tt r.Fs.order = r.Fs.mincost);
    QCheck.Test.make ~name:"multi-terminal quantum minimisation" ~count:20
      (Helpers.arb_mtable ~lo:2 ~hi:4 ~values:3 ())
      (fun mt ->
        let ctx = O.make_ctx () in
        let r, _ = O.minimize_mtable ~ctx (O.theorem10 ()) mt in
        r.Fs.mincost = (Fs.run_mtable mt).Fs.mincost
        && Ovo_core.Diagram.check r.Fs.diagram mt);
  ]

let () =
  Alcotest.run "optobdd"
    [
      ("unit", unit_tests);
      ("predictor", predictor_tests);
      ("props", Helpers.qtests props);
    ]

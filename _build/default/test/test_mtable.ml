module M = Ovo_boolfun.Mtable
module T = Ovo_boolfun.Truthtable

let unit_tests =
  [
    Helpers.case "of_array / eval" (fun () ->
        let m = M.of_array ~values:4 [| 0; 3; 1; 2 |] in
        Helpers.check_int "arity" 2 (M.arity m);
        Helpers.check_int "values" 4 (M.num_values m);
        Helpers.check_int "cell 1" 3 (M.eval m 1));
    Helpers.case "of_array checks range" (fun () ->
        Alcotest.check_raises "range" (Invalid_argument "Mtable: value out of range")
          (fun () -> ignore (M.of_array ~values:2 [| 0; 2 |])));
    Helpers.case "of_array checks power of two" (fun () ->
        Alcotest.check_raises "len"
          (Invalid_argument "Mtable: length not a power of two") (fun () ->
            ignore (M.of_array ~values:2 [| 0; 1; 0 |])));
    Helpers.case "of_truthtable maps booleans" (fun () ->
        let m = M.of_truthtable (T.of_string "0110") in
        Helpers.check_int "values" 2 (M.num_values m);
        Helpers.check_int "m(1)" 1 (M.eval m 1);
        Helpers.check_int "m(3)" 0 (M.eval m 3));
    Helpers.case "restrict" (fun () ->
        let m = M.of_array ~values:5 [| 0; 1; 2; 3; 4; 0; 1; 2 |] in
        (* restrict x1 = 1: cells at codes with bit1 set: 2,3,6,7 -> [2;3;1;2] *)
        let r = M.restrict m 1 true in
        Helpers.check_int "arity" 2 (M.arity r);
        Helpers.check_int "r(0)" 2 (M.eval r 0);
        Helpers.check_int "r(1)" 3 (M.eval r 1);
        Helpers.check_int "r(2)" 1 (M.eval r 2);
        Helpers.check_int "r(3)" 2 (M.eval r 3));
    Helpers.case "equal" (fun () ->
        let a = M.of_array ~values:3 [| 1; 2 |] in
        let b = M.of_array ~values:3 [| 1; 2 |] in
        let c = M.of_array ~values:3 [| 2; 1 |] in
        Helpers.check_bool "eq" true (M.equal a b);
        Helpers.check_bool "ne" false (M.equal a c));
  ]

let props =
  [
    QCheck.Test.make ~name:"restrict agrees with truthtable restrict"
      ~count:300
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let st = Helpers.rng seed in
        let j = Random.State.int st (T.arity tt) in
        let b = Random.State.bool st in
        let via_m = M.restrict (M.of_truthtable tt) j b in
        M.equal via_m (M.of_truthtable (T.restrict tt j b)));
    QCheck.Test.make ~name:"of_fun respects range check" ~count:100
      QCheck.(int_range 1 4)
      (fun n ->
        try
          ignore (M.of_fun n ~values:2 (fun code -> code));
          n <= 1
        with Invalid_argument _ -> n > 1);
  ]

let () =
  Alcotest.run "mtable" [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

module Fs = Ovo_core.Fs
module C = Ovo_core.Compact
module T = Ovo_boolfun.Truthtable
module F = Ovo_boolfun.Families

(* Exhaustive check of FS against brute force for every 2-variable
   function and a sample of 3-variable functions (all 256 would also be
   fine, but adds little over the sample + the qcheck property). *)
let exhaustive_small () =
  for bits = 0 to 15 do
    let tt =
      T.of_fun 2 (fun code -> bits land (1 lsl code) <> 0)
    in
    let r = Fs.run tt in
    Helpers.check_int
      (Printf.sprintf "fn %d" bits)
      (Helpers.brute_mincost tt) r.Fs.mincost;
    Helpers.check_bool "valid" true (Ovo_core.Diagram.check_tt r.Fs.diagram tt)
  done;
  for bits = 0 to 255 do
    let tt = T.of_fun 3 (fun code -> bits land (1 lsl code) <> 0) in
    let r = Fs.run tt in
    Helpers.check_int
      (Printf.sprintf "fn3 %d" bits)
      (Helpers.brute_mincost tt) r.Fs.mincost
  done

let unit_tests =
  [
    Helpers.case "exhaustive n<=3 equals brute force" exhaustive_small;
    Helpers.case "achilles optimum is linear" (fun () ->
        for pairs = 1 to 5 do
          let r = Fs.run (F.achilles pairs) in
          Helpers.check_int "size" ((2 * pairs) + 2) r.Fs.size
        done);
    Helpers.case "parity optimum is 2n-1 nodes" (fun () ->
        for n = 1 to 7 do
          let r = Fs.run (F.parity n) in
          Helpers.check_int "mincost" ((2 * n) - 1) r.Fs.mincost
        done);
    Helpers.case "constant functions" (fun () ->
        let r = Fs.run (T.const 4 false) in
        Helpers.check_int "mincost" 0 r.Fs.mincost;
        Helpers.check_int "size" 1 r.Fs.size);
    Helpers.case "single variable" (fun () ->
        let r = Fs.run (T.var 4 2) in
        Helpers.check_int "mincost" 1 r.Fs.mincost;
        Helpers.check_int "size" 3 r.Fs.size);
    Helpers.case "zero-arity function" (fun () ->
        let r = Fs.run (T.const 0 true) in
        Helpers.check_int "mincost" 0 r.Fs.mincost;
        Helpers.check_int "size" 1 r.Fs.size;
        Helpers.check_int "order length" 0 (Array.length r.Fs.order));
    Helpers.case "widths describe the returned order" (fun () ->
        let tt = F.hidden_weighted_bit 5 in
        let r = Fs.run tt in
        Alcotest.(check (array int))
          "widths" (Ovo_core.Eval_order.widths tt r.Fs.order) r.Fs.widths);
    Helpers.case "read_first_order reverses" (fun () ->
        let r = Fs.run (F.achilles 2) in
        let rf = Fs.read_first_order r in
        let n = Array.length rf in
        Helpers.check_bool "reversed" true
          (Array.for_all (fun i -> rf.(i) = r.Fs.order.(n - 1 - i))
             (Array.init n (fun i -> i))));
    Helpers.case "all_mincosts has 2^n entries and matches run" (fun () ->
        let tt = F.multiplexer ~select:2 in
        let n = T.arity tt in
        let table = Fs.all_mincosts tt in
        Helpers.check_int "entries" (1 lsl n) (Hashtbl.length table);
        Helpers.check_int "full set" (Fs.run tt).Fs.mincost
          (Hashtbl.find table (Ovo_core.Varset.full n));
        Helpers.check_int "empty" 0 (Hashtbl.find table Ovo_core.Varset.empty));
    Helpers.case "mtbdd minimisation equals brute force" (fun () ->
        let st = Helpers.rng 11 in
        for _ = 1 to 10 do
          let n = 1 + Random.State.int st 4 in
          let mt =
            Ovo_boolfun.Mtable.of_fun n ~values:3 (fun _ ->
                Random.State.int st 3)
          in
          let r = Fs.run_mtable mt in
          Helpers.check_int "mtbdd" (Helpers.brute_mincost_mtable mt) r.Fs.mincost;
          Helpers.check_bool "valid" true (Ovo_core.Diagram.check r.Fs.diagram mt)
        done);
    Helpers.case "known catalogue optima are stable" (fun () ->
        (* regression anchors measured once from the exact algorithm *)
        List.iter
          (fun (name, expected) ->
            let tt = List.assoc name (F.catalogue ~max_arity:10) in
            Helpers.check_int name expected (Fs.run tt).Fs.mincost)
          [
            ("hwb-6", 21); ("mux-2", 7); ("adder-4-carry", 11); ("parity-8", 15);
          ]);
  ]

let props =
  [
    QCheck.Test.make ~name:"FS equals brute force (BDD)" ~count:120
      (Helpers.arb_truthtable ~lo:1 ~hi:5 ())
      (fun tt -> (Fs.run tt).Fs.mincost = Helpers.brute_mincost tt);
    QCheck.Test.make ~name:"FS equals brute force (ZDD)" ~count:120
      (Helpers.arb_truthtable ~lo:1 ~hi:5 ())
      (fun tt ->
        (Fs.run ~kind:C.Zdd tt).Fs.mincost
        = Helpers.brute_mincost ~kind:C.Zdd tt);
    QCheck.Test.make ~name:"returned diagram is valid and realises mincost"
      ~count:120
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let r = Fs.run tt in
        Ovo_core.Diagram.check_tt r.Fs.diagram tt
        && Ovo_core.Diagram.node_count r.Fs.diagram = r.Fs.mincost
        && Ovo_core.Eval_order.mincost tt r.Fs.order = r.Fs.mincost);
    QCheck.Test.make ~name:"optimum invariant under variable relabeling"
      ~count:80
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:5 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let perm = Helpers.perm_of_seed seed (T.arity tt) in
        (Fs.run tt).Fs.mincost = (Fs.run (T.permute_vars tt perm)).Fs.mincost);
    QCheck.Test.make ~name:"optimum of negation equals optimum" ~count:80
      (Helpers.arb_truthtable ~lo:1 ~hi:5 ())
      (fun tt -> (Fs.run tt).Fs.mincost = (Fs.run (T.not_ tt)).Fs.mincost);
    QCheck.Test.make
      ~name:"every non-empty I has a predecessor no costlier (Lemma 4)"
      ~count:60
      (Helpers.arb_truthtable ~lo:1 ~hi:5 ())
      (fun tt ->
        (* dropping the top variable of an optimal block never increases
           the cost: MINCOST_I >= min over h of MINCOST_(I minus h) *)
        let table = Fs.all_mincosts tt in
        let ok = ref true in
        Hashtbl.iter
          (fun iset cost ->
            if not (Ovo_core.Varset.is_empty iset) then begin
              let best = ref max_int in
              Ovo_core.Varset.iter
                (fun h ->
                  let c = Hashtbl.find table (Ovo_core.Varset.remove h iset) in
                  if c < !best then best := c)
                iset;
              if !best > cost then ok := false
            end)
          table;
        !ok);
  ]

(* brute-force weighted optimum *)
let brute_weighted ?(kind = C.Bdd) ~weights tt =
  let n = T.arity tt in
  let base = C.of_truthtable kind tt in
  List.fold_left
    (fun acc order ->
      let cost = ref 0 in
      let st = ref base in
      Array.iter
        (fun v ->
          let nx = C.compact !st v in
          cost := !cost + (weights.(v) * C.width_of_last ~before:!st ~after:nx);
          st := nx)
        order;
      min acc !cost)
    max_int (Helpers.all_orders n)

let extension_props =
  [
    QCheck.Test.make
      ~name:"count_optimal_orders equals the exhaustive spectrum" ~count:40
      (Helpers.arb_truthtable ~lo:1 ~hi:5 ())
      (fun tt ->
        let s = Ovo_ordering.Spectrum.compute tt in
        int_of_float (Fs.count_optimal_orders tt)
        = s.Ovo_ordering.Spectrum.optimal_orderings);
    QCheck.Test.make ~name:"count_optimal_orders of symmetric functions is n!"
      ~count:20
      (QCheck.int_range 1 6)
      (fun n ->
        let tt = Ovo_boolfun.Families.parity n in
        Fs.count_optimal_orders tt = Ovo_ordering.Perm.count n);
    QCheck.Test.make ~name:"weighted DP equals weighted brute force" ~count:40
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:5 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let n = T.arity tt in
        let st = Helpers.rng seed in
        let weights = Array.init n (fun _ -> Random.State.int st 5) in
        let r = Ovo_core.Fs_weighted.run ~weights tt in
        r.Ovo_core.Fs_weighted.weighted_cost = brute_weighted ~weights tt
        && Ovo_core.Diagram.check_tt r.Ovo_core.Fs_weighted.diagram tt);
    QCheck.Test.make ~name:"uniform weights reduce to plain FS" ~count:40
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let n = T.arity tt in
        let r = Ovo_core.Fs_weighted.run ~weights:(Array.make n 1) tt in
        r.Ovo_core.Fs_weighted.weighted_cost = (Fs.run tt).Fs.mincost);
    QCheck.Test.make
      ~name:"weighted order is consistent with its reported costs" ~count:40
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:5 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let n = T.arity tt in
        let st = Helpers.rng seed in
        let weights = Array.init n (fun _ -> 1 + Random.State.int st 4) in
        let r = Ovo_core.Fs_weighted.run ~weights tt in
        let widths = Ovo_core.Eval_order.widths tt r.Ovo_core.Fs_weighted.order in
        let recomputed = ref 0 in
        Array.iteri
          (fun level w ->
            recomputed :=
              !recomputed + (weights.(r.Ovo_core.Fs_weighted.order.(level)) * w))
          widths;
        !recomputed = r.Ovo_core.Fs_weighted.weighted_cost);
  ]

let () =
  Alcotest.run "fs"
    [
      ("unit", unit_tests);
      ("props", Helpers.qtests props);
      ("extensions", Helpers.qtests extension_props);
    ]

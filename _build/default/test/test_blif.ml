module Bl = Ovo_boolfun.Blif
module T = Ovo_boolfun.Truthtable

let full_adder =
  {|# a full adder in BLIF
.model fa
.inputs a b cin
.outputs sum cout
.names a b axb
10 1
01 1
.names axb cin sum
10 1
01 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end|}

let unit_tests =
  [
    Helpers.case "full adder parses" (fun () ->
        let m = Bl.of_string full_adder in
        Alcotest.(check string) "model" "fa" (Bl.model_name m);
        Alcotest.(check (list string)) "inputs" [ "a"; "b"; "cin" ]
          (Bl.input_names m);
        Alcotest.(check (list string)) "outputs" [ "sum"; "cout" ]
          (Bl.output_names m));
    Helpers.case "full adder semantics" (fun () ->
        let m = Bl.of_string full_adder in
        let sum = Bl.output_table m "sum" and cout = Bl.output_table m "cout" in
        for code = 0 to 7 do
          let a = code land 1 and b = (code lsr 1) land 1 and c = code lsr 2 in
          let total = a + b + c in
          Helpers.check_bool "sum" (total land 1 = 1) (T.eval sum code);
          Helpers.check_bool "cout" (total >= 2) (T.eval cout code)
        done);
    Helpers.case "off-set covers (output 0 rows)" (fun () ->
        let m =
          Bl.of_string
            ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end"
        in
        (* f is defined by its off-set {11}: f = !(a & b) *)
        let f = Bl.output_table m "f" in
        Helpers.check_bool "!(a&b)" true
          (T.equal f (T.not_ (T.( &&& ) (T.var 2 0) (T.var 2 1)))));
    Helpers.case "constants" (fun () ->
        let m =
          Bl.of_string
            ".model m\n.inputs a\n.outputs t f\n.names t\n1\n.names f\n.end"
        in
        Alcotest.(check (option bool)) "true" (Some true)
          (T.is_const (Bl.output_table m "t"));
        Alcotest.(check (option bool)) "false" (Some false)
          (T.is_const (Bl.output_table m "f")));
    Helpers.case "line continuations" (fun () ->
        let m =
          Bl.of_string
            ".model m\n.inputs \\\na b\n.outputs f\n.names a b f\n11 1\n.end"
        in
        Alcotest.(check (list string)) "inputs" [ "a"; "b" ] (Bl.input_names m));
    Helpers.case "latches rejected" (fun () ->
        match
          Bl.of_string ".model m\n.inputs a\n.outputs f\n.latch a f re clk 0\n.end"
        with
        | _ -> Alcotest.fail "expected failure"
        | exception Failure _ -> ());
    Helpers.case "undefined signals rejected at elaboration" (fun () ->
        let m =
          Bl.of_string ".model m\n.inputs a\n.outputs f\n.names ghost f\n1 1\n.end"
        in
        match Bl.output_table m "f" with
        | _ -> Alcotest.fail "expected failure"
        | exception Failure _ -> ());
    Helpers.case "mixed polarity rejected" (fun () ->
        let m =
          Bl.of_string
            ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n.end"
        in
        match Bl.output_table m "f" with
        | _ -> Alcotest.fail "expected failure"
        | exception Failure _ -> ());
    Helpers.case "multi-level chains compose" (fun () ->
        (* xor of 4 variables built as a tree of 2-input xors *)
        let m =
          Bl.of_string
            ".model x4\n.inputs a b c d\n.outputs f\n\
             .names a b u\n10 1\n01 1\n\
             .names c d v\n10 1\n01 1\n\
             .names u v f\n10 1\n01 1\n.end"
        in
        Helpers.check_bool "is parity-4" true
          (T.equal (Bl.output_table m "f") (Ovo_boolfun.Families.parity 4)));
    Helpers.case "optimising a BLIF output end-to-end" (fun () ->
        let m = Bl.of_string full_adder in
        let cout = Bl.output_table m "cout" in
        let r = Ovo_core.Fs.run cout in
        (* carry of a full adder is MAJ3: 4 inner nodes + 2 terminals *)
        Helpers.check_int "majority-3 optimum" 6 r.Ovo_core.Fs.size);
  ]

let props =
  [
    QCheck.Test.make ~name:"single-gate BLIF equals PLA semantics" ~count:100
      (Helpers.arb_truthtable ~lo:1 ~hi:4 ())
      (fun tt ->
        (* render tt as a minterm cover in BLIF and re-read it *)
        let n = T.arity tt in
        let buf = Buffer.create 256 in
        Buffer.add_string buf ".model m\n.inputs";
        for j = 0 to n - 1 do
          Buffer.add_string buf (Printf.sprintf " x%d" j)
        done;
        Buffer.add_string buf "\n.outputs f\n.names";
        for j = 0 to n - 1 do
          Buffer.add_string buf (Printf.sprintf " x%d" j)
        done;
        Buffer.add_string buf " f\n";
        for code = 0 to (1 lsl n) - 1 do
          if T.eval tt code then begin
            for j = 0 to n - 1 do
              Buffer.add_char buf
                (if code land (1 lsl j) <> 0 then '1' else '0')
            done;
            Buffer.add_string buf " 1\n"
          end
        done;
        Buffer.add_string buf ".end\n";
        let m = Bl.of_string (Buffer.contents buf) in
        T.equal (Bl.output_table m "f") tt);
  ]

let () =
  Alcotest.run "blif" [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

module C = Ovo_core.Compact
module D = Ovo_core.Diagram
module T = Ovo_boolfun.Truthtable

let diagram_of ?(kind = C.Bdd) tt order =
  D.of_state (C.compact_chain (C.of_truthtable kind tt) order)

let unit_tests =
  [
    Helpers.case "of_state requires completion" (fun () ->
        let st = C.of_truthtable C.Bdd (T.of_string "0110") in
        Alcotest.check_raises "incomplete"
          (Invalid_argument "Diagram.of_state: state not complete") (fun () ->
            ignore (D.of_state st)));
    Helpers.case "xor diagram shape" (fun () ->
        let d = diagram_of (T.of_string "0110") [| 0; 1 |] in
        Helpers.check_int "nodes" 3 (D.node_count d);
        Helpers.check_int "terminals" 2 (D.reachable_terminals d);
        Helpers.check_int "size" 5 (D.size d);
        Alcotest.(check (list int)) "widths" [ 2; 1 ]
          (Array.to_list (D.level_widths d)));
    Helpers.case "constant function diagram" (fun () ->
        let d = diagram_of (T.const 3 true) [| 0; 1; 2 |] in
        Helpers.check_int "nodes" 0 (D.node_count d);
        Helpers.check_int "terminals" 1 (D.reachable_terminals d);
        Helpers.check_int "size" 1 (D.size d);
        Helpers.check_int "eval" 1 (D.eval d 5));
    Helpers.case "eval follows edges" (fun () ->
        let tt = T.of_string "00010001" in
        (* f = x0 & x1 over 3 vars *)
        let d = diagram_of tt [| 2; 1; 0 |] in
        Helpers.check_bool "11" true (D.eval_bool d 0b011);
        Helpers.check_bool "01" false (D.eval_bool d 0b001);
        Helpers.check_bool "with x2" true (D.eval_bool d 0b111));
    Helpers.case "to_truthtable round trip" (fun () ->
        let tt = T.of_string "0111010010010111" in
        let d = diagram_of tt [| 3; 1; 0; 2 |] in
        Helpers.check_bool "round" true (T.equal (D.to_truthtable d) tt));
    Helpers.case "to_truthtable rejects multi-terminal" (fun () ->
        let mt = Ovo_boolfun.Mtable.of_array ~values:3 [| 0; 1; 2; 1 |] in
        let d = D.of_state (C.compact_chain (C.initial C.Bdd mt) [| 0; 1 |]) in
        Alcotest.check_raises "multi"
          (Invalid_argument "Diagram.to_truthtable: not a two-terminal diagram")
          (fun () -> ignore (D.to_truthtable d)));
    Helpers.case "check accepts the right table" (fun () ->
        let tt = T.of_string "01100110" in
        let d = diagram_of tt [| 1; 0; 2 |] in
        Helpers.check_bool "check" true (D.check_tt d tt);
        Helpers.check_bool "check wrong" false (D.check_tt d (T.not_ tt)));
    Helpers.case "dot output mentions every level variable" (fun () ->
        let d = diagram_of (Ovo_boolfun.Families.parity 3) [| 0; 1; 2 |] in
        let dot = D.to_dot d in
        List.iter
          (fun v ->
            Helpers.check_bool
              (Printf.sprintf "x%d present" v)
              true
              (let needle = Printf.sprintf "x%d" v in
               let rec contains i =
                 i + String.length needle <= String.length dot
                 && (String.sub dot i (String.length needle) = needle
                    || contains (i + 1))
               in
               contains 0))
          [ 0; 1; 2 ]);
    Helpers.case "zdd eval kills suppressed set bits" (fun () ->
        (* f = !x0 & !x1 (only the empty assignment): the ZDD is just the
           1 terminal; any set bit must evaluate to 0 *)
        let tt = T.of_string "1000" in
        let d = diagram_of ~kind:C.Zdd tt [| 0; 1 |] in
        Helpers.check_int "no nodes" 0 (D.node_count d);
        Helpers.check_int "f(00)" 1 (D.eval d 0);
        Helpers.check_int "f(01)" 0 (D.eval d 1);
        Helpers.check_int "f(11)" 0 (D.eval d 3));
  ]

let serialization_tests =
  [
    Helpers.case "serialize/deserialize round trip on an example" (fun () ->
        let d = diagram_of (Ovo_boolfun.Families.hidden_weighted_bit 5) [| 2; 0; 4; 1; 3 |] in
        let d' = D.deserialize (D.serialize d) in
        Helpers.check_int "size" (D.size d) (D.size d');
        Helpers.check_bool "semantics" true
          (T.equal (D.to_truthtable d) (D.to_truthtable d')));
    Helpers.case "zdd kind survives the round trip" (fun () ->
        let tt = T.of_string "10010110" in
        let d = diagram_of ~kind:C.Zdd tt [| 1; 2; 0 |] in
        let d' = D.deserialize (D.serialize d) in
        Helpers.check_bool "checks as ZDD" true (D.check_tt d' tt));
    Helpers.case "malformed inputs rejected" (fun () ->
        let reject text =
          match D.deserialize text with
          | _ -> Alcotest.failf "expected failure on %S" text
          | exception Failure _ -> ()
        in
        reject "";
        reject "ovo-diagram 2\nkind bdd\nn 1\nterminals 2\norder 0\nroot 0\nnodes 0\n";
        reject "ovo-diagram 1\nkind qdd\nn 1\nterminals 2\norder 0\nroot 0\nnodes 0\n";
        reject
          "ovo-diagram 1\nkind bdd\nn 2\nterminals 2\norder 0 0\nroot 0\nnodes 0\n";
        reject
          "ovo-diagram 1\nkind bdd\nn 1\nterminals 2\norder 0\nroot 9\nnodes 0\n";
        reject
          "ovo-diagram 1\nkind bdd\nn 1\nterminals 2\norder 0\nroot 2\nnodes 1\n2 0 0 9\n");
    Helpers.case "non-descending edges rejected" (fun () ->
        (* the parent tests the bottom-level variable yet points at a
           node of the level above it *)
        let text =
          "ovo-diagram 1\nkind bdd\nn 2\nterminals 2\norder 0 1\nroot 2\nnodes 2\n\
           2 0 0 3\n3 1 0 1\n"
        in
        match D.deserialize text with
        | _ -> Alcotest.fail "expected failure"
        | exception Failure _ -> ());
  ]

let props =
  [
    QCheck.Test.make ~name:"BDD diagram eval equals truth table" ~count:200
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let order = Helpers.perm_of_seed seed (T.arity tt) in
        D.check_tt (diagram_of tt order) tt);
    QCheck.Test.make ~name:"ZDD diagram eval equals truth table" ~count:200
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let order = Helpers.perm_of_seed seed (T.arity tt) in
        D.check_tt (diagram_of ~kind:C.Zdd tt order) tt);
    QCheck.Test.make ~name:"level widths sum to node count" ~count:200
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let order = Helpers.perm_of_seed seed (T.arity tt) in
        let d = diagram_of tt order in
        Array.fold_left ( + ) 0 (D.level_widths d) = D.node_count d);
    QCheck.Test.make ~name:"serialization round trip preserves everything"
      ~count:150
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let order = Helpers.perm_of_seed seed (T.arity tt) in
        let d = diagram_of tt order in
        let d' = D.deserialize (D.serialize d) in
        D.check_tt d' tt
        && D.size d' = D.size d
        && D.level_widths d' = D.level_widths d);
    QCheck.Test.make ~name:"multi-terminal diagram eval equals mtable"
      ~count:200
      (QCheck.pair (Helpers.arb_mtable ~lo:1 ~hi:5 ~values:4 ()) QCheck.small_int)
      (fun (mt, seed) ->
        let order = Helpers.perm_of_seed seed (Ovo_boolfun.Mtable.arity mt) in
        let d = D.of_state (C.compact_chain (C.initial C.Bdd mt) order) in
        D.check d mt);
  ]

let () =
  Alcotest.run "diagram"
    [
      ("unit", unit_tests);
      ("serialization", serialization_tests);
      ("props", Helpers.qtests props);
    ]

module D = Ovo_bdd.Dynbdd
module T = Ovo_boolfun.Truthtable
module F = Ovo_boolfun.Families

let build tt =
  let man = D.create (T.arity tt) in
  let b = D.of_truthtable man tt in
  D.protect man b;
  (man, b)

let unit_tests =
  [
    Helpers.case "one swap preserves semantics and flips the order" (fun () ->
        let tt = F.multiplexer ~select:2 in
        let man, b = build tt in
        D.swap_levels man 2;
        Alcotest.(check (array int)) "order" [| 0; 1; 3; 2; 4; 5 |]
          (D.order man);
        Helpers.check_bool "same function" true
          (T.equal (D.to_truthtable man b) tt);
        Helpers.check_bool "invariants" true (D.check_invariants man));
    Helpers.case "swap is an involution" (fun () ->
        let tt = F.hidden_weighted_bit 5 in
        let man, b = build tt in
        let before = D.live_size man in
        D.swap_levels man 1;
        D.swap_levels man 1;
        Helpers.check_int "size restored" before (D.live_size man);
        Alcotest.(check (array int)) "order restored" [| 0; 1; 2; 3; 4 |]
          (D.order man);
        Helpers.check_bool "function" true (T.equal (D.to_truthtable man b) tt));
    Helpers.case "swap bounds checked" (fun () ->
        let man, _ = build (F.parity 3) in
        Alcotest.check_raises "last" (Invalid_argument "Dynbdd.swap_levels")
          (fun () -> D.swap_levels man 2));
    Helpers.case "set_order reaches the achilles good ordering" (fun () ->
        let tt = F.achilles 3 in
        let man = D.create ~order:[| 0; 2; 4; 1; 3; 5 |] 6 in
        let b = D.of_truthtable man tt in
        D.protect man b;
        Helpers.check_int "bad size first" 16 (D.live_size man);
        D.set_order man [| 0; 1; 2; 3; 4; 5 |];
        Helpers.check_int "good size after" 8 (D.live_size man);
        Helpers.check_bool "function" true (T.equal (D.to_truthtable man b) tt);
        Helpers.check_bool "invariants" true (D.check_invariants man));
    Helpers.case "sifting rescues the achilles bad ordering" (fun () ->
        let tt = F.achilles 4 in
        let man = D.create ~order:[| 0; 2; 4; 6; 1; 3; 5; 7 |] 8 in
        let b = D.of_truthtable man tt in
        D.protect man b;
        Helpers.check_int "bad" 32 (D.live_size man);
        D.sift man;
        Helpers.check_int "optimal" 10 (D.live_size man);
        Helpers.check_bool "function" true (T.equal (D.to_truthtable man b) tt));
    Helpers.case "sifting several roots at once" (fun () ->
        let man = D.create 6 in
        let outputs =
          Array.init 4 (fun j ->
              T.of_fun 6 (fun code ->
                  ((code land 7) + (code lsr 3)) land (1 lsl j) <> 0))
        in
        let handles = Array.map (D.of_truthtable man) outputs in
        Array.iter (D.protect man) handles;
        D.sift man;
        (* the exact shared optimum is 22 incl. terminals (see
           test_shared); sifting must land at or above it and keep all
           functions intact *)
        Helpers.check_bool "at least the shared optimum" true
          (D.live_size man >= 22);
        (* sifting is a heuristic; it lands near but not at the shared
           optimum here (27 vs 22 from the identity start) *)
        Helpers.check_bool "close to it" true (D.live_size man <= 30);
        Array.iteri
          (fun j h ->
            Helpers.check_bool
              (Printf.sprintf "output %d intact" j)
              true
              (T.equal (D.to_truthtable man h) outputs.(j)))
          handles);
    Helpers.case "apply works after reordering (caches stay valid)" (fun () ->
        let man = D.create 4 in
        let a = D.of_truthtable man (T.var 4 0) in
        let b = D.of_truthtable man (T.var 4 3) in
        let f = D.and_ man a b in
        D.protect man f;
        D.set_order man [| 3; 2; 1; 0 |];
        let g = D.or_ man f (D.var man 1) in
        let expect =
          T.( ||| ) (T.( &&& ) (T.var 4 0) (T.var 4 3)) (T.var 4 1)
        in
        Helpers.check_bool "post-reorder apply" true
          (T.equal (D.to_truthtable man g) expect));
  ]

let gc_tests =
  [
    Helpers.case "compress keeps protected functions intact" (fun () ->
        let tt = F.hidden_weighted_bit 6 in
        let man, b = build tt in
        (* generate garbage: walk the variable across the order and back *)
        for _ = 1 to 3 do
          for l = 0 to 4 do
            D.swap_levels man l
          done;
          for l = 4 downto 0 do
            D.swap_levels man l
          done
        done;
        let live = D.live_size man in
        D.compress man;
        Helpers.check_int "live size unchanged" live (D.live_size man);
        Helpers.check_bool "function intact" true
          (T.equal (D.to_truthtable man b) tt);
        Helpers.check_bool "invariants" true (D.check_invariants man));
    Helpers.case "allocated grows under swaps, live does not" (fun () ->
        let tt = F.multiplexer ~select:2 in
        let man, _ = build tt in
        let live0 = D.live_size man in
        for _ = 1 to 4 do
          for l = 0 to 4 do
            D.swap_levels man l
          done;
          for l = 4 downto 0 do
            D.swap_levels man l
          done
        done;
        Helpers.check_int "live restored" live0 (D.live_size man);
        Helpers.check_bool "garbage accumulated" true
          (D.allocated man > live0));
    Helpers.case "ops after compress still canonical" (fun () ->
        let man = D.create 4 in
        let a = D.of_truthtable man (T.var 4 0) in
        let b = D.of_truthtable man (T.var 4 1) in
        let f = D.and_ man a b in
        D.protect man f;
        D.swap_levels man 0;
        D.compress man;
        let g = D.and_ man (D.var man 0) (D.var man 1) in
        Helpers.check_bool "same node" true (D.equal f g));
  ]

let props =
  [
    QCheck.Test.make ~name:"random swap sequences preserve the function"
      ~count:100
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let man, b = build tt in
        let st = Helpers.rng seed in
        let n = T.arity tt in
        for _ = 1 to 12 do
          D.swap_levels man (Random.State.int st (n - 1))
        done;
        T.equal (D.to_truthtable man b) tt && D.check_invariants man);
    QCheck.Test.make ~name:"live size equals Eval_order size of the order"
      ~count:100
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let man, _ = build tt in
        let st = Helpers.rng seed in
        let n = T.arity tt in
        for _ = 1 to 8 do
          D.swap_levels man (Random.State.int st (n - 1))
        done;
        let rf = D.order man in
        let pi = Ovo_core.Eval_order.read_first rf in
        D.live_size man = Ovo_core.Eval_order.size tt pi);
    QCheck.Test.make ~name:"sifting never increases the size" ~count:60
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let n = T.arity tt in
        let man = D.create ~order:(Helpers.perm_of_seed seed n) n in
        let b = D.of_truthtable man tt in
        D.protect man b;
        let before = D.live_size man in
        D.sift man;
        D.live_size man <= before
        && T.equal (D.to_truthtable man b) tt
        && D.check_invariants man);
    QCheck.Test.make ~name:"set_order to the FS optimum reaches the optimum"
      ~count:60
      (Helpers.arb_truthtable ~lo:2 ~hi:6 ())
      (fun tt ->
        let r = Ovo_core.Fs.run tt in
        let man, _ = build tt in
        D.set_order man (Ovo_core.Fs.read_first_order r);
        D.live_size man = r.Ovo_core.Fs.size);
    QCheck.Test.make ~name:"graph sifting agrees with table-based sifting cost"
      ~count:40
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:5 ()) QCheck.small_int)
      (fun (tt, seed) ->
        (* both are heuristics; they need not find the same order, but
           each must honestly report its own resulting order's size *)
        let n = T.arity tt in
        let init = Helpers.perm_of_seed seed n in
        let man = D.create ~order:init n in
        let b = D.of_truthtable man tt in
        D.protect man b;
        D.sift man;
        let pi = Ovo_core.Eval_order.read_first (D.order man) in
        D.live_size man = Ovo_core.Eval_order.size tt pi);
  ]

let () =
  Alcotest.run "dynbdd"
    [
      ("unit", unit_tests);
      ("gc", gc_tests);
      ("props", Helpers.qtests props);
    ]

module E = Ovo_core.Eval_order
module T = Ovo_boolfun.Truthtable
module F = Ovo_boolfun.Families

let unit_tests =
  [
    Helpers.case "fig1 evaluations" (fun () ->
        let tt = F.achilles 3 in
        Helpers.check_int "good" 8 (E.size tt (F.achilles_good_order 3));
        Helpers.check_int "bad" 16 (E.size tt (F.achilles_bad_order 3));
        Helpers.check_int "good mincost" 6
          (E.mincost tt (F.achilles_good_order 3)));
    Helpers.case "widths of parity are 1 2 2 ... capped" (fun () ->
        let tt = F.parity 4 in
        Alcotest.(check (list int)) "widths" [ 2; 2; 2; 1 ]
          (Array.to_list (E.widths tt [| 0; 1; 2; 3 |])));
    Helpers.case "rejects non-permutations" (fun () ->
        let tt = T.of_string "0110" in
        Alcotest.check_raises "dup" (Invalid_argument "Eval_order: not a permutation")
          (fun () -> ignore (E.mincost tt [| 0; 0 |]));
        Alcotest.check_raises "len" (Invalid_argument "Eval_order: wrong length")
          (fun () -> ignore (E.mincost tt [| 0 |])));
    Helpers.case "read_first reverses" (fun () ->
        Alcotest.(check (array int)) "rev" [| 2; 0; 1 |]
          (E.read_first [| 1; 0; 2 |]));
    Helpers.case "zdd kind differs from bdd kind" (fun () ->
        (* f = !x0: BDD has 1 node, ZDD has 0 *)
        let tt = T.of_string "10" in
        Helpers.check_int "bdd" 1 (E.mincost tt [| 0 |]);
        Helpers.check_int "zdd" 0
          (E.mincost ~kind:Ovo_core.Compact.Zdd tt [| 0 |]));
  ]

let props =
  [
    QCheck.Test.make ~name:"diagram of order represents the function"
      ~count:200
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let order = Helpers.perm_of_seed seed (T.arity tt) in
        Ovo_core.Diagram.check_tt (E.diagram tt order) tt);
    QCheck.Test.make ~name:"size = mincost + reachable terminals" ~count:200
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let order = Helpers.perm_of_seed seed (T.arity tt) in
        let d = E.diagram tt order in
        E.size tt order
        = E.mincost tt order + Ovo_core.Diagram.reachable_terminals d);
    QCheck.Test.make ~name:"read_first is an involution" ~count:100
      (QCheck.pair (QCheck.int_range 1 10) QCheck.small_int)
      (fun (n, seed) ->
        let order = Helpers.perm_of_seed seed n in
        E.read_first (E.read_first order) = order);
    QCheck.Test.make
      ~name:"symmetric functions: every ordering has the same cost" ~count:50
      (QCheck.pair (QCheck.int_range 2 6) QCheck.small_int)
      (fun (n, seed) ->
        let tt = F.threshold n ~k:(n / 2) in
        let o1 = Helpers.perm_of_seed seed n in
        let o2 = Helpers.perm_of_seed (seed + 1) n in
        E.mincost tt o1 = E.mincost tt o2);
  ]

let () =
  Alcotest.run "eval_order"
    [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

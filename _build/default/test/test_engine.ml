(* The Engine abstraction: Par must be a drop-in replacement for Seq —
   identical mincosts, identical orderings, identical DP tables — and
   the two-pass metrics discipline must hold exactly. *)

module E = Ovo_core.Engine
module M = Ovo_core.Metrics
module C = Ovo_core.Compact
module Fs = Ovo_core.Fs
module T = Ovo_boolfun.Truthtable

let par2 = E.par ~domains:2 ()

let tables_equal a b =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold
       (fun k v acc -> acc && Hashtbl.find_opt b k = Some v)
       a true

let unit_tests =
  [
    Helpers.case "engine of_string/to_string round-trip" (fun () ->
        List.iter
          (fun s ->
            match E.of_string s with
            | Ok e -> Alcotest.(check string) s s (E.to_string e)
            | Error (`Msg m) -> Alcotest.fail m)
          [ "seq"; "par"; "par:4" ];
        Helpers.check_bool "bad engine rejected" true
          (match E.of_string "parallel" with
          | Error _ -> true
          | Ok _ -> false));
    Helpers.case "domain_count resolves and clamps" (fun () ->
        Helpers.check_int "seq" 1 (E.domain_count E.Seq);
        Helpers.check_int "par:3" 3 (E.domain_count (E.par ~domains:3 ()));
        Helpers.check_bool "auto >= 1" true (E.domain_count (E.par ()) >= 1));
    Helpers.case "Engine.map merges worker metrics" (fun () ->
        let m = M.create () in
        let out =
          E.map par2 ~metrics:m
            (fun metrics x ->
              M.add_cells metrics x;
              x * 2)
            (Array.init 10 (fun i -> i))
        in
        Alcotest.(check (array int))
          "order preserved"
          (Array.init 10 (fun i -> 2 * i))
          out;
        Helpers.check_int "cells merged" 45 (M.snapshot m).M.s_table_cells);
    Helpers.case "cost-mode all_mincosts allocates no per-candidate copies"
      (fun () ->
        let n = 6 in
        let tt = T.random (Helpers.rng 21) n in
        let m = M.create () in
        let table = Fs.all_mincosts ~metrics:m tt in
        Helpers.check_int "entries" (1 lsl n) (Hashtbl.length table);
        let s = M.snapshot m in
        (* probes do all the pricing: one per (K, h) pair *)
        Helpers.check_int "probes = n*2^(n-1)"
          (n * (1 lsl (n - 1)))
          s.M.s_cost_probes;
        (* exactly one winner per non-empty subset below the top layer is
           materialised; the final layer is skipped in cost mode *)
        Helpers.check_int "copies = winners"
          s.M.s_states_materialised s.M.s_node_table_copies;
        Helpers.check_int "winners = 2^n - 2"
          ((1 lsl n) - 2)
          s.M.s_states_materialised;
        (* the point of the refactor: far fewer copies than candidates *)
        Helpers.check_bool "copies < probes" true
          (s.M.s_node_table_copies < s.M.s_cost_probes);
        (* cells keep the Theorem 5 meaning: n * 3^(n-1) *)
        let pow3 = int_of_float (3. ** float_of_int (n - 1)) in
        Helpers.check_int "cells = n*3^(n-1)" (n * pow3) s.M.s_table_cells);
    Helpers.case "Fs.run counts one copy per winner plus reconstruction"
      (fun () ->
        let n = 5 in
        let tt = T.random (Helpers.rng 22) n in
        let m = M.create () in
        let _ = Fs.run ~metrics:m tt in
        let s = M.snapshot m in
        (* complete = costs (2^n - 2 winners, last layer skipped)
           followed by reconstruct (n materialisations) *)
        Helpers.check_int "winners" ((1 lsl n) - 2 + n) s.M.s_states_materialised;
        Helpers.check_int "copies = winners" s.M.s_states_materialised
          s.M.s_node_table_copies);
  ]

let props =
  let run_pair ?kind engine tt = (Fs.run ?kind ~engine tt : Fs.result) in
  [
    QCheck.Test.make ~name:"Par mincost equals Seq (BDD)" ~count:60
      (Helpers.arb_truthtable ~lo:1 ~hi:8 ())
      (fun tt ->
        (run_pair E.Seq tt).Fs.mincost = (run_pair par2 tt).Fs.mincost);
    QCheck.Test.make ~name:"Par mincost equals Seq (ZDD)" ~count:60
      (Helpers.arb_truthtable ~lo:1 ~hi:8 ())
      (fun tt ->
        (run_pair ~kind:C.Zdd E.Seq tt).Fs.mincost
        = (run_pair ~kind:C.Zdd par2 tt).Fs.mincost);
    QCheck.Test.make ~name:"Par ordering is valid and optimal" ~count:60
      (Helpers.arb_truthtable ~lo:1 ~hi:8 ())
      (fun tt ->
        let seq = run_pair E.Seq tt in
        let par = run_pair par2 tt in
        Ovo_core.Eval_order.mincost tt par.Fs.order = seq.Fs.mincost);
    QCheck.Test.make ~name:"Par is deterministic (two runs agree)" ~count:40
      (Helpers.arb_truthtable ~lo:1 ~hi:7 ())
      (fun tt ->
        let a = run_pair par2 tt and b = run_pair par2 tt in
        a.Fs.mincost = b.Fs.mincost && a.Fs.order = b.Fs.order);
    QCheck.Test.make ~name:"Par equals Seq on mtables" ~count:40
      (Helpers.arb_mtable ~lo:1 ~hi:6 ())
      (fun mt ->
        let seq = Fs.run_mtable ~engine:E.Seq mt in
        let par = Fs.run_mtable ~engine:par2 mt in
        seq.Fs.mincost = par.Fs.mincost && seq.Fs.order = par.Fs.order);
    QCheck.Test.make ~name:"all_mincosts tables identical under Par" ~count:40
      (Helpers.arb_truthtable ~lo:1 ~hi:7 ())
      (fun tt ->
        tables_equal
          (Fs.all_mincosts ~engine:E.Seq tt)
          (Fs.all_mincosts ~engine:par2 tt));
    QCheck.Test.make ~name:"Par equals Seq for weighted runs" ~count:30
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let n = T.arity tt in
        let st = Helpers.rng seed in
        let weights = Array.init n (fun _ -> 1 + Random.State.int st 5) in
        let seq = Ovo_core.Fs_weighted.run ~engine:E.Seq ~weights tt in
        let par = Ovo_core.Fs_weighted.run ~engine:par2 ~weights tt in
        seq.Ovo_core.Fs_weighted.weighted_cost
        = par.Ovo_core.Fs_weighted.weighted_cost
        && seq.Ovo_core.Fs_weighted.order = par.Ovo_core.Fs_weighted.order);
    QCheck.Test.make ~name:"Par equals Seq for shared minimisation" ~count:20
      (QCheck.pair
         (Helpers.arb_truthtable ~lo:2 ~hi:5 ())
         (Helpers.arb_truthtable ~lo:2 ~hi:5 ()))
      (fun (a, b) ->
        let n = max (T.arity a) (T.arity b) in
        let pad tt =
          T.of_fun n (fun code -> T.eval tt (code land ((1 lsl T.arity tt) - 1)))
        in
        let outs = [| pad a; pad b |] in
        let seq = Ovo_core.Shared.minimize ~engine:E.Seq outs in
        let par = Ovo_core.Shared.minimize ~engine:par2 outs in
        seq.Ovo_core.Shared.mincost = par.Ovo_core.Shared.mincost
        && seq.Ovo_core.Shared.order = par.Ovo_core.Shared.order);
    QCheck.Test.make ~name:"metrics identical under Par" ~count:30
      (Helpers.arb_truthtable ~lo:1 ~hi:7 ())
      (fun tt ->
        let ms = M.create () and mp = M.create () in
        let _ = Fs.run ~engine:E.Seq ~metrics:ms tt in
        let _ = Fs.run ~engine:par2 ~metrics:mp tt in
        M.snapshot ms = M.snapshot mp);
  ]

let () =
  Alcotest.run "engine"
    [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

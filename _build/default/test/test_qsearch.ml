module Q = Ovo_quantum.Qsearch

let unit_tests =
  [
    Helpers.case "finds the minimum deterministically" (fun () ->
        let stats = Q.create_stats () in
        let out =
          Q.find_min ~epsilon:0.01 ~stats
            ~candidates:[| 5; 3; 9; 3; 7 |]
            ~oracle:(fun x -> (x, 1.))
            ()
        in
        Helpers.check_int "value" 3 out.Q.value;
        Helpers.check_int "argmin" 3 out.Q.argmin;
        Helpers.check_int "searches" 1 stats.Q.searches;
        Helpers.check_int "oracle evals" 5 stats.Q.oracle_evaluations);
    Helpers.case "query accounting matches the Lemma 6 bound" (fun () ->
        let stats = Q.create_stats () in
        let eps = Float.pow 2. (-10.) in
        let n = 100 in
        let _ =
          Q.find_min ~epsilon:eps ~stats
            ~candidates:(Array.init n (fun i -> i))
            ~oracle:(fun x -> (x, 1.))
            ()
        in
        Alcotest.(check (float 1e-9))
          "queries" (Q.queries_bound ~n ~epsilon:eps)
          stats.Q.modeled_queries);
    Helpers.case "queries bound grows like sqrt(N log 1/eps)" (fun () ->
        let q n = Q.queries_bound ~n ~epsilon:(Float.pow 2. (-16.)) in
        Alcotest.(check (float 1.)) "N=100" (sqrt (100. *. 16.)) (q 100);
        Helpers.check_bool "monotone" true (q 400 > q 100);
        Alcotest.(check (float 1e-9)) "quadruple N doubles queries"
          (2. *. q 100) (q 400));
    Helpers.case "modeled cost = queries x max branch cost" (fun () ->
        let stats = Q.create_stats () in
        let out =
          Q.find_min ~epsilon:0.25 ~stats
            ~candidates:[| 0; 1; 2; 3 |]
            ~oracle:(fun x -> (x, float_of_int (10 * (x + 1))))
            ()
        in
        let queries = Q.queries_bound ~n:4 ~epsilon:0.25 in
        Alcotest.(check (float 1e-9)) "cost" (queries *. 40.) out.Q.modeled_cost);
    Helpers.case "empty candidate set rejected" (fun () ->
        let stats = Q.create_stats () in
        Alcotest.check_raises "empty"
          (Invalid_argument "Qsearch.find_min: no candidates") (fun () ->
            ignore
              (Q.find_min ~epsilon:0.1 ~stats ~candidates:[||]
                 ~oracle:(fun x -> (x, 1.))
                 ())));
    Helpers.case "error injection fires at the requested rate" (fun () ->
        let rng = Helpers.rng 5 in
        let stats = Q.create_stats () in
        let trials = 2000 in
        let wrong = ref 0 in
        for _ = 1 to trials do
          let out =
            Q.find_min ~rng ~epsilon:0.3 ~stats ~candidates:[| 4; 1; 2 |]
              ~oracle:(fun x -> (x, 1.))
              ()
          in
          if out.Q.value <> 1 then incr wrong
        done;
        Helpers.check_int "injected = observed" !wrong stats.Q.injected_errors;
        let rate = float_of_int !wrong /. float_of_int trials in
        Helpers.check_bool "rate near 0.3" true (rate > 0.24 && rate < 0.36));
    Helpers.case "error branch never returns the true minimum" (fun () ->
        let rng = Helpers.rng 6 in
        let stats = Q.create_stats () in
        for _ = 1 to 500 do
          let out =
            Q.find_min ~rng ~epsilon:1.0 ~stats ~candidates:[| 9; 2; 5 |]
              ~oracle:(fun x -> (x, 1.))
              ()
          in
          (* epsilon = 1: always the error branch; result must be wrong *)
          Helpers.check_bool "not the min" true (out.Q.value <> 2)
        done);
    Helpers.case "singleton candidate is exact even with errors" (fun () ->
        let rng = Helpers.rng 7 in
        let stats = Q.create_stats () in
        let out =
          Q.find_min ~rng ~epsilon:1.0 ~stats ~candidates:[| 42 |]
            ~oracle:(fun x -> (x, 1.))
            ()
        in
        Helpers.check_int "value" 42 out.Q.value);
  ]

let props =
  [
    QCheck.Test.make ~name:"deterministic search returns a true minimum"
      ~count:200
      QCheck.(list_of_size (Gen.int_range 1 40) (int_range (-100) 100))
      (fun xs ->
        let candidates = Array.of_list xs in
        let stats = Q.create_stats () in
        let out =
          Q.find_min ~epsilon:0.001 ~stats ~candidates
            ~oracle:(fun x -> (x, 1.))
            ()
        in
        out.Q.value = List.fold_left min max_int xs);
    QCheck.Test.make ~name:"queries bound >= 1 and <= N for sane eps"
      ~count:200
      QCheck.(int_range 1 10000)
      (fun n ->
        let q = Q.queries_bound ~n ~epsilon:0.5 in
        q >= 1. && q <= float_of_int (max n 2));
  ]

let () =
  Alcotest.run "qsearch"
    [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

module Bv = Ovo_boolfun.Bitvec

let unit_tests =
  [
    Helpers.case "create is zeroed" (fun () ->
        let v = Bv.create 70 in
        Helpers.check_int "len" 70 (Bv.length v);
        Helpers.check_int "popcount" 0 (Bv.popcount v);
        Helpers.check_bool "is_zero" true (Bv.is_zero v));
    Helpers.case "set/get single bits" (fun () ->
        let v = Bv.create 17 in
        Bv.set v 0 true;
        Bv.set v 16 true;
        Bv.set v 7 true;
        Bv.set v 8 true;
        Helpers.check_bool "bit 0" true (Bv.get v 0);
        Helpers.check_bool "bit 1" false (Bv.get v 1);
        Helpers.check_bool "bit 7" true (Bv.get v 7);
        Helpers.check_bool "bit 8" true (Bv.get v 8);
        Helpers.check_bool "bit 16" true (Bv.get v 16);
        Helpers.check_int "popcount" 4 (Bv.popcount v));
    Helpers.case "set false clears" (fun () ->
        let v = Bv.create 9 in
        Bv.set v 5 true;
        Bv.set v 5 false;
        Helpers.check_bool "cleared" false (Bv.get v 5);
        Helpers.check_bool "is_zero" true (Bv.is_zero v));
    Helpers.case "out of range raises" (fun () ->
        let v = Bv.create 8 in
        Alcotest.check_raises "get -1" (Invalid_argument "Bitvec: index out of range")
          (fun () -> ignore (Bv.get v (-1)));
        Alcotest.check_raises "get 8" (Invalid_argument "Bitvec: index out of range")
          (fun () -> ignore (Bv.get v 8)));
    Helpers.case "negative length raises" (fun () ->
        Alcotest.check_raises "create" (Invalid_argument "Bitvec.create")
          (fun () -> ignore (Bv.create (-1))));
    Helpers.case "string round trip" (fun () ->
        let s = "011010001110101" in
        Alcotest.(check string) "round" s (Bv.to_string (Bv.of_string s)));
    Helpers.case "of_string rejects junk" (fun () ->
        Alcotest.check_raises "junk" (Invalid_argument "Bitvec.of_string")
          (fun () -> ignore (Bv.of_string "01x")));
    Helpers.case "is_ones" (fun () ->
        Helpers.check_bool "ones" true (Bv.is_ones (Bv.of_string "11111"));
        Helpers.check_bool "not ones" false (Bv.is_ones (Bv.of_string "11011")));
    Helpers.case "lnot involutive on example" (fun () ->
        let v = Bv.of_string "0110100" in
        Helpers.check_bool "double negation" true
          (Bv.equal v (Bv.lnot_ (Bv.lnot_ v))));
    Helpers.case "map2 and" (fun () ->
        let a = Bv.of_string "1100" and b = Bv.of_string "1010" in
        Alcotest.(check string) "and" "1000" (Bv.to_string (Bv.map2 ( && ) a b)));
    Helpers.case "map2 length mismatch" (fun () ->
        Alcotest.check_raises "mismatch" (Invalid_argument "Bitvec.map2")
          (fun () ->
            ignore (Bv.map2 ( && ) (Bv.create 3) (Bv.create 4))));
    Helpers.case "fold counts ones" (fun () ->
        let v = Bv.of_string "101101" in
        Helpers.check_int "fold" 4
          (Bv.fold (fun acc b -> if b then acc + 1 else acc) 0 v));
    Helpers.case "iteri visits in order" (fun () ->
        let v = Bv.of_string "010" in
        let seen = ref [] in
        Bv.iteri (fun i b -> seen := (i, b) :: !seen) v;
        Alcotest.(check (list (pair int bool)))
          "order"
          [ (0, false); (1, true); (2, false) ]
          (List.rev !seen));
    Helpers.case "empty vector" (fun () ->
        let v = Bv.create 0 in
        Helpers.check_int "len" 0 (Bv.length v);
        Helpers.check_bool "is_zero" true (Bv.is_zero v);
        Helpers.check_bool "is_ones" true (Bv.is_ones v));
  ]

let gen_bits =
  QCheck.Gen.(
    int_range 0 200 >>= fun len ->
    string_size ~gen:(oneofl [ '0'; '1' ]) (return len))

let arb_bits = QCheck.make ~print:(fun s -> s) gen_bits

let props =
  [
    QCheck.Test.make ~name:"string round trip" ~count:200 arb_bits (fun s ->
        Bv.to_string (Bv.of_string s) = s);
    QCheck.Test.make ~name:"popcount matches string" ~count:200 arb_bits
      (fun s ->
        Bv.popcount (Bv.of_string s)
        = String.fold_left (fun acc c -> if c = '1' then acc + 1 else acc) 0 s);
    QCheck.Test.make ~name:"lnot involutive" ~count:200 arb_bits (fun s ->
        let v = Bv.of_string s in
        Bv.equal v (Bv.lnot_ (Bv.lnot_ v)));
    QCheck.Test.make ~name:"hash respects equal" ~count:200 arb_bits (fun s ->
        let a = Bv.of_string s and b = Bv.of_string s in
        Bv.equal a b && Bv.hash a = Bv.hash b && Bv.compare a b = 0);
    QCheck.Test.make ~name:"copy independent" ~count:100 arb_bits (fun s ->
        QCheck.assume (String.length s > 0);
        let v = Bv.of_string s in
        let c = Bv.copy v in
        Bv.set c 0 (not (Bv.get c 0));
        Bv.get v 0 <> Bv.get c 0);
    QCheck.Test.make ~name:"word-parallel kernels equal map2" ~count:300
      (QCheck.pair arb_bits arb_bits)
      (fun (s1, s2) ->
        let len = min (String.length s1) (String.length s2) in
        let a = Bv.of_string (String.sub s1 0 len) in
        let b = Bv.of_string (String.sub s2 0 len) in
        Bv.equal (Bv.and_ a b) (Bv.map2 ( && ) a b)
        && Bv.equal (Bv.or_ a b) (Bv.map2 ( || ) a b)
        && Bv.equal (Bv.xor_ a b) (Bv.map2 ( <> ) a b));
    QCheck.Test.make ~name:"fast lnot keeps the tail invariant" ~count:300
      arb_bits
      (fun s ->
        let v = Bv.of_string s in
        let n = Bv.lnot_ v in
        (* the invariant shows up through popcount and xor *)
        Bv.popcount n = String.length s - Bv.popcount v
        && Bv.is_ones (Bv.xor_ v n) = (String.length s > 0)
        || String.length s = 0);
    QCheck.Test.make ~name:"init/get agree" ~count:200
      QCheck.(int_range 0 100)
      (fun len ->
        let v = Bv.init len (fun i -> i mod 3 = 0) in
        let ok = ref true in
        for i = 0 to len - 1 do
          if Bv.get v i <> (i mod 3 = 0) then ok := false
        done;
        !ok);
  ]

let () =
  Alcotest.run "bitvec"
    [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

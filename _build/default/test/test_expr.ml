module E = Ovo_boolfun.Expr
module T = Ovo_boolfun.Truthtable

let tt_of s = E.to_truthtable (E.of_string s)

let unit_tests =
  [
    Helpers.case "parse variables and precedence" (fun () ->
        (* & binds tighter than ^, which binds tighter than | *)
        let e = E.of_string "x0 | x1 ^ x2 & x3" in
        Alcotest.(check string) "shape" "x0 | (x1 ^ (x2 & x3))" (E.to_string e));
    Helpers.case "parse negation and parens" (fun () ->
        let e = E.of_string "!(x0 | x1) & ~x2" in
        Helpers.check_bool "at 000" true (E.eval e (fun _ -> false));
        Helpers.check_bool "at x2" false
          (E.eval e (fun j -> j = 2)));
    Helpers.case "letters map to indices" (fun () ->
        let e = E.of_string "a & c" in
        Alcotest.(check (list int)) "vars" [ 0; 2 ] (E.vars e));
    Helpers.case "constants" (fun () ->
        Helpers.check_bool "true" true (E.eval (E.of_string "true") (fun _ -> false));
        Helpers.check_bool "1 & 0" false
          (E.eval (E.of_string "1 & 0") (fun _ -> false)));
    Helpers.case "left associativity" (fun () ->
        Alcotest.(check string) "assoc" "(x0 ^ x1) ^ x2"
          (E.to_string (E.of_string "x0 ^ x1 ^ x2")));
    Helpers.case "parse errors" (fun () ->
        List.iter
          (fun s ->
            match E.of_string s with
            | _ -> Alcotest.failf "expected failure on %S" s
            | exception Failure _ -> ())
          [ "x0 &"; "& x0"; "(x0"; "x0)"; "x"; "x0 x1"; "" ]);
    Helpers.case "to_truthtable xor" (fun () ->
        Alcotest.(check string) "xor" "0110" (T.to_string (tt_of "x0 ^ x1")));
    Helpers.case "to_truthtable arity padding" (fun () ->
        let tt = E.to_truthtable ~arity:3 (E.of_string "x0") in
        Helpers.check_int "arity" 3 (T.arity tt);
        Helpers.check_int "ones" 4 (T.count_ones tt));
    Helpers.case "to_truthtable arity too small" (fun () ->
        Alcotest.check_raises "small"
          (Invalid_argument "Expr.to_truthtable: arity too small") (fun () ->
            ignore (E.to_truthtable ~arity:1 (E.of_string "x1"))));
    Helpers.case "max_var of closed expr" (fun () ->
        Helpers.check_int "closed" (-1) (E.max_var (E.of_string "1 | 0")));
    Helpers.case "size counts nodes" (fun () ->
        Helpers.check_int "size" 6 (E.size (E.of_string "!x0 & (x1 | x2)")));
    Helpers.case "dnf of constant" (fun () ->
        Alcotest.(check string) "false" "0"
          (E.to_string (E.dnf_of_truthtable (T.const 2 false)));
        Alcotest.(check string) "true (cnf)" "1"
          (E.to_string (E.cnf_of_truthtable (T.const 2 true))));
  ]

let simplify_tests =
  [
    Helpers.case "constant folding" (fun () ->
        Alcotest.(check string) "and" "0"
          (E.to_string (E.simplify (E.of_string "x0 & 0")));
        Alcotest.(check string) "or" "1"
          (E.to_string (E.simplify (E.of_string "x0 | 1")));
        Alcotest.(check string) "units" "x0"
          (E.to_string (E.simplify (E.of_string "x0 & 1 | 0"))));
    Helpers.case "double negation" (fun () ->
        Alcotest.(check string) "notnot" "x2"
          (E.to_string (E.simplify (E.of_string "!!x2"))));
    Helpers.case "idempotence and self-xor" (fun () ->
        Alcotest.(check string) "and" "x1"
          (E.to_string (E.simplify (E.of_string "x1 & x1")));
        Alcotest.(check string) "xor" "0"
          (E.to_string (E.simplify (E.of_string "x1 ^ x1"))));
    Helpers.case "xor with true negates" (fun () ->
        Alcotest.(check string) "negate" "!x0"
          (E.to_string (E.simplify (E.of_string "x0 ^ 1")));
        Alcotest.(check string) "unwrap" "x0"
          (E.to_string (E.simplify (E.of_string "!x0 ^ 1"))));
  ]

let props =
  [
    QCheck.Test.make ~name:"printer/parser round trip" ~count:300
      (Helpers.arb_expr ())
      (fun e ->
        let e' = E.of_string (E.to_string e) in
        (* equality of semantics, not syntax *)
        let n = max 1 (E.max_var e + 1) in
        T.equal (E.to_truthtable ~arity:n e) (E.to_truthtable ~arity:n e'));
    QCheck.Test.make ~name:"dnf round trip (Corollary 2 path)" ~count:200
      (Helpers.arb_truthtable ~lo:1 ~hi:5 ())
      (fun tt ->
        T.equal tt
          (E.to_truthtable ~arity:(T.arity tt) (E.dnf_of_truthtable tt)));
    QCheck.Test.make ~name:"cnf round trip (Corollary 2 path)" ~count:200
      (Helpers.arb_truthtable ~lo:1 ~hi:5 ())
      (fun tt ->
        T.equal tt
          (E.to_truthtable ~arity:(T.arity tt) (E.cnf_of_truthtable tt)));
    QCheck.Test.make ~name:"eval agrees with truth table" ~count:300
      (QCheck.pair (Helpers.arb_expr ()) QCheck.small_int)
      (fun (e, seed) ->
        let n = max 1 (E.max_var e + 1) in
        let tt = E.to_truthtable e in
        let code = Random.State.int (Helpers.rng seed) (1 lsl n) in
        E.eval e (fun j -> code land (1 lsl j) <> 0) = T.eval tt code);
    QCheck.Test.make ~name:"simplify preserves semantics" ~count:300
      (Helpers.arb_expr ())
      (fun e ->
        let n = max 1 (E.max_var e + 1) in
        T.equal (E.to_truthtable ~arity:n e)
          (E.to_truthtable ~arity:n (E.simplify e)));
    QCheck.Test.make ~name:"simplify never grows the AST" ~count:300
      (Helpers.arb_expr ())
      (fun e -> E.size (E.simplify e) <= E.size e);
    QCheck.Test.make ~name:"simplify is idempotent" ~count:300
      (Helpers.arb_expr ())
      (fun e ->
        let once = E.simplify e in
        E.simplify once = once);
    QCheck.Test.make ~name:"vars subset of 0..max_var" ~count:200
      (Helpers.arb_expr ())
      (fun e -> List.for_all (fun v -> v >= 0 && v <= E.max_var e) (E.vars e));
  ]

let () =
  Alcotest.run "expr"
    [
      ("unit", unit_tests);
      ("simplify", simplify_tests);
      ("props", Helpers.qtests props);
    ]

module C = Ovo_core.Compact
module T = Ovo_boolfun.Truthtable

(* Reference width computation straight from the definition: the number
   of nodes labeled [v] in B(f, pi) is the number of distinct
   subfunctions of [f] obtained by restricting the variables read before
   [v] (those above it), counted only when they essentially depend on [v]
   (BDD rule) or have a non-zero 1-cofactor (ZDD rule). *)
let reference_width ~kind tt ~above ~v =
  let rec restrictions f vars =
    match vars with
    | [] -> [ f ]
    | x :: rest ->
        let f0, f1 = T.cofactors f x in
        restrictions f0 rest @ restrictions f1 rest
  in
  (* restrict in descending variable order so indices stay valid *)
  let above_desc = List.sort (fun a b -> compare b a) above in
  let subs = restrictions tt above_desc in
  (* after removing |above| higher variables, [v]'s index shifts down by
     the number of removed variables below it — none, since we only
     restrict variables above... they may be numerically below. *)
  let shift = List.length (List.filter (fun x -> x < v) above) in
  let v' = v - shift in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun g ->
      let keep =
        match kind with
        | C.Bdd -> T.depends_on g v'
        | C.Zdd -> T.is_const (T.restrict g v' true) <> Some false
      in
      if keep then Hashtbl.replace seen (T.to_string g) ())
    subs;
  Hashtbl.length seen

let widths_of_chain ~kind tt order =
  let base = C.of_truthtable kind tt in
  let widths = Array.make (Array.length order) 0 in
  let st = ref base in
  Array.iteri
    (fun i v ->
      let next = C.compact !st v in
      widths.(i) <- C.width_of_last ~before:!st ~after:next;
      st := next)
    order;
  widths

let check_widths_against_reference ~kind tt order =
  let n = T.arity tt in
  let widths = widths_of_chain ~kind tt order in
  let ok = ref true in
  Array.iteri
    (fun i v ->
      let above = Array.to_list (Array.sub order (i + 1) (n - i - 1)) in
      if widths.(i) <> reference_width ~kind tt ~above ~v then ok := false)
    order;
  !ok

let unit_tests =
  [
    Helpers.case "initial state is the truth table" (fun () ->
        let st = C.of_truthtable C.Bdd (T.of_string "0110") in
        Helpers.check_int "mincost" 0 st.C.mincost;
        Helpers.check_int "table len" 4 (Array.length st.C.table);
        Alcotest.(check (list int)) "cells" [ 0; 1; 1; 0 ]
          (Array.to_list st.C.table));
    Helpers.case "compact xor bottom variable" (fun () ->
        let st = C.of_truthtable C.Bdd (T.of_string "0110") in
        let st1 = C.compact st 1 in
        (* one x1 node: the two cells are (x1) and (!x1), both depend *)
        Helpers.check_int "mincost" 2 st1.C.mincost;
        Helpers.check_int "table len" 2 (Array.length st1.C.table));
    Helpers.case "compact to completion" (fun () ->
        let st = C.of_truthtable C.Bdd (T.of_string "0110") in
        let st2 = C.compact_chain st [| 0; 1 |] in
        Helpers.check_bool "complete" true (C.is_complete st2);
        Helpers.check_int "xor has 3 nodes" 3 st2.C.mincost;
        Helpers.check_bool "root is a node" true (C.root st2 >= 2));
    Helpers.case "order is recorded read-last-first" (fun () ->
        let st = C.of_truthtable C.Bdd (T.of_string "01101001") in
        let st' = C.compact_chain st [| 2; 0; 1 |] in
        Alcotest.(check (list int)) "order" [ 2; 0; 1 ] (C.order st'));
    Helpers.case "free shrinks" (fun () ->
        let st = C.of_truthtable C.Bdd (T.of_string "01101001") in
        let st' = C.compact st 1 in
        Alcotest.(check (list int)) "free" [ 0; 2 ]
          (Ovo_core.Varset.elements (C.free st')));
    Helpers.case "double compaction of a variable rejected" (fun () ->
        let st = C.compact (C.of_truthtable C.Bdd (T.of_string "0110")) 0 in
        Alcotest.check_raises "again"
          (Invalid_argument "Compact.compact: variable already assigned")
          (fun () -> ignore (C.compact st 0)));
    Helpers.case "variable out of range rejected" (fun () ->
        let st = C.of_truthtable C.Bdd (T.of_string "0110") in
        Alcotest.check_raises "range"
          (Invalid_argument "Compact.compact: variable out of range")
          (fun () -> ignore (C.compact st 2)));
    Helpers.case "root of incomplete state rejected" (fun () ->
        let st = C.of_truthtable C.Bdd (T.of_string "0110") in
        Alcotest.check_raises "incomplete"
          (Invalid_argument "Compact.root: state not complete") (fun () ->
            ignore (C.root st)));
    Helpers.case "zdd rule skips zero hi-cofactors" (fun () ->
        (* f = !x0: under ZDD rule the x0 node is suppressed *)
        let st = C.of_truthtable C.Zdd (T.of_string "10") in
        let st' = C.compact st 0 in
        Helpers.check_int "suppressed" 0 st'.C.mincost);
    Helpers.case "input state is not mutated" (fun () ->
        let st = C.of_truthtable C.Bdd (T.of_string "0110") in
        let _ = C.compact st 0 in
        Helpers.check_int "mincost unchanged" 0 st.C.mincost;
        Helpers.check_int "table unchanged" 4 (Array.length st.C.table));
    Helpers.case "multi-terminal compaction" (fun () ->
        let mt = Ovo_boolfun.Mtable.of_array ~values:3 [| 0; 1; 2; 1 |] in
        let st = C.compact_chain (C.initial C.Bdd mt) [| 0; 1 |] in
        Helpers.check_bool "complete" true (C.is_complete st);
        (* level x0: subfunctions (0,1) and (2,1): 2 nodes; level x1: 1 *)
        Helpers.check_int "mincost" 3 st.C.mincost);
  ]

let props =
  [
    QCheck.Test.make ~name:"BDD chain widths match subfunction counts"
      ~count:150
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:5 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let order = Helpers.perm_of_seed seed (T.arity tt) in
        check_widths_against_reference ~kind:C.Bdd tt order);
    QCheck.Test.make ~name:"ZDD chain widths match subfunction counts"
      ~count:150
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:5 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let order = Helpers.perm_of_seed seed (T.arity tt) in
        check_widths_against_reference ~kind:C.Zdd tt order);
    QCheck.Test.make ~name:"Lemma 3: last-level width depends only on the set"
      ~count:150
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:5 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let n = T.arity tt in
        let st = Helpers.rng seed in
        let i = Random.State.int st n in
        let below =
          List.filter (fun v -> v <> i && Random.State.bool st)
            (List.init n (fun v -> v))
        in
        let base = C.of_truthtable C.Bdd tt in
        let width_for perm =
          let s = C.compact_chain base (Array.of_list perm) in
          let s' = C.compact s i in
          C.width_of_last ~before:s ~after:s'
        in
        match Helpers.permutations below with
        | [] -> true
        | first :: rest ->
            let w = width_for first in
            List.for_all (fun p -> width_for p = w) rest);
    QCheck.Test.make ~name:"mincost equals node-table size" ~count:150
      (QCheck.pair (Helpers.arb_truthtable ~lo:1 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let order = Helpers.perm_of_seed seed (T.arity tt) in
        let st = C.compact_chain (C.of_truthtable C.Bdd tt) order in
        st.C.mincost = Hashtbl.length st.C.node);
  ]

let () =
  Alcotest.run "compact"
    [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

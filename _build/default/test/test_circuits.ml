module B = Ovo_bdd.Bdd
module Cc = Ovo_bdd.Circuits

(* an n-variable manager with [wa]+[wb] input bits: a at vars 0.., b after *)
let fresh wa wb =
  let man = B.create (wa + wb) in
  let a = Cc.input man (Array.init wa (fun j -> j)) in
  let b = Cc.input man (Array.init wb (fun j -> wa + j)) in
  (man, a, b)

let operands code wa wb = (code land ((1 lsl wa) - 1), (code lsr wa) land ((1 lsl wb) - 1))

let unit_tests =
  [
    Helpers.case "constants evaluate to themselves" (fun () ->
        let man = B.create 2 in
        let v = Cc.constant man ~width:4 11 in
        Helpers.check_int "value" 11 (Cc.eval_int man v 0);
        let trunc = Cc.constant man ~width:2 11 in
        Helpers.check_int "truncated" 3 (Cc.eval_int man trunc 0));
    Helpers.case "adder is exact on all 3-bit operands" (fun () ->
        let man, a, b = fresh 3 3 in
        let sum, carry = Cc.add man a b in
        for code = 0 to 63 do
          let va, vb = operands code 3 3 in
          let expect = va + vb in
          let got =
            Cc.eval_int man sum code
            lor if B.eval man carry code then 8 else 0
          in
          Helpers.check_int (Printf.sprintf "%d+%d" va vb) expect got
        done);
    Helpers.case "multiplier is exact on all 3x3-bit operands" (fun () ->
        let man, a, b = fresh 3 3 in
        let prod = Cc.multiply man a b in
        for code = 0 to 63 do
          let va, vb = operands code 3 3 in
          Helpers.check_int
            (Printf.sprintf "%d*%d" va vb)
            (va * vb)
            (Cc.eval_int man prod code)
        done);
    Helpers.case "comparator semantics" (fun () ->
        let man, a, b = fresh 3 3 in
        let lt = Cc.less_than man a b in
        let eq = Cc.equal_vec man a b in
        for code = 0 to 63 do
          let va, vb = operands code 3 3 in
          Helpers.check_bool "lt" (va < vb) (B.eval man lt code);
          Helpers.check_bool "eq" (va = vb) (B.eval man eq code)
        done);
    Helpers.case "adder ordering: interleaved linear, blocked exponential"
      (fun () ->
        let size_of interleaved bits =
          let man, sum, carry = Cc.adder_outputs ~bits ~interleaved in
          B.shared_size man (carry :: Array.to_list sum)
        in
        let good6 = size_of true 6 and bad6 = size_of false 6 in
        let good7 = size_of true 7 and bad7 = size_of false 7 in
        (* polynomial growth (the shared sum vector is Theta(n^2)) versus
           roughly doubling per extra bit *)
        Helpers.check_bool "good grows polynomially" true
          (3 * good7 < 4 * good6 + 60);
        Helpers.check_bool "bad grows geometrically" true
          (bad7 > bad6 + (bad6 / 2));
        Helpers.check_bool "gap" true (bad7 > 4 * good7));
    Helpers.case "width mismatch rejected" (fun () ->
        let man = B.create 3 in
        let a = Cc.input man [| 0 |] and b = Cc.input man [| 1; 2 |] in
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Circuits: width mismatch") (fun () ->
            ignore (Cc.add man a b)));
    Helpers.case "shared size counts common nodes once" (fun () ->
        let man, a, b = fresh 3 3 in
        let sum, _ = Cc.add man a b in
        let separate =
          Array.fold_left (fun acc bit -> acc + B.size man bit) 0 sum
        in
        Helpers.check_bool "sharing helps" true
          (Cc.total_size man sum < separate));
    Helpers.case "multiplier middle bit matches Families.adder-style table"
      (fun () ->
        (* the product's bit 2 over 2x2 operands equals the catalogue's
           mtable used elsewhere *)
        let man, a, b = fresh 2 2 in
        let prod = Cc.multiply man a b in
        let direct =
          Ovo_boolfun.Truthtable.of_fun 4 (fun code ->
              let va, vb = operands code 2 2 in
              (va * vb) land 4 <> 0)
        in
        Helpers.check_bool "bit 2" true
          (Ovo_boolfun.Truthtable.equal (B.to_truthtable man prod.(2)) direct));
  ]

let props =
  [
    QCheck.Test.make ~name:"addition commutes (canonicity)" ~count:50
      QCheck.(int_range 1 4)
      (fun w ->
        let man, a, b = fresh w w in
        let s1, c1 = Cc.add man a b in
        let s2, c2 = Cc.add man b a in
        B.equal c1 c2 && Array.for_all2 B.equal s1 s2);
    QCheck.Test.make ~name:"multiplication commutes (canonicity)" ~count:30
      QCheck.(int_range 1 3)
      (fun w ->
        let man, a, b = fresh w w in
        let p1 = Cc.multiply man a b and p2 = Cc.multiply man b a in
        Array.for_all2 B.equal p1 p2);
    QCheck.Test.make ~name:"a < b xor b < a xor a = b" ~count:30
      QCheck.(int_range 1 4)
      (fun w ->
        let man, a, b = fresh w w in
        let lt = Cc.less_than man a b in
        let gt = Cc.less_than man b a in
        let eq = Cc.equal_vec man a b in
        let xor3 = B.xor_ man (B.xor_ man lt gt) eq in
        B.is_true man xor3);
    QCheck.Test.make ~name:"adding zero is the identity" ~count:30
      QCheck.(int_range 1 5)
      (fun w ->
        let man = B.create w in
        let a = Cc.input man (Array.init w (fun j -> j)) in
        let z = Cc.constant man ~width:w 0 in
        let s, carry = Cc.add man a z in
        B.is_false man carry && Array.for_all2 B.equal s a);
  ]

let () =
  Alcotest.run "circuits"
    [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

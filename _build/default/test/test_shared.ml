module S = Ovo_core.Shared
module C = Ovo_core.Compact
module T = Ovo_boolfun.Truthtable

(* brute-force shared optimum: chain every permutation over the shared
   multi-table state *)
let brute_shared ?(kind = C.Bdd) tts =
  let base = S.of_truthtables kind tts in
  let n = T.arity tts.(0) in
  List.fold_left
    (fun acc order -> min acc (S.compact_chain base order).S.mincost)
    max_int (Helpers.all_orders n)

let gen_pair =
  QCheck.Gen.(
    int_range 1 5 >>= fun n ->
    let table = string_size ~gen:(oneofl [ '0'; '1' ]) (return (1 lsl n)) in
    pair table table >|= fun (a, b) ->
    [| T.of_string a; T.of_string b |])

let arb_pair =
  QCheck.make
    ~print:(fun tts ->
      String.concat "/" (Array.to_list (Array.map T.to_string tts)))
    gen_pair

let unit_tests =
  [
    Helpers.case "sharing counts a common subfunction once" (fun () ->
        (* f0 = x0 & x1, f1 = (x0 & x1) | x2: the x0&x1 sub-diagram is
           shared, so the shared count is below the sum of the parts *)
        let f0 = T.( &&& ) (T.var 3 0) (T.var 3 1) in
        let f1 = T.( ||| ) f0 (T.var 3 2) in
        let r = S.minimize [| f0; f1 |] in
        let alone0 = (Ovo_core.Fs.run f0).Ovo_core.Fs.mincost in
        let alone1 = (Ovo_core.Fs.run f1).Ovo_core.Fs.mincost in
        Helpers.check_bool "shared < sum" true (r.S.mincost < alone0 + alone1);
        Helpers.check_bool "shared >= max" true
          (r.S.mincost >= max alone0 alone1));
    Helpers.case "identical roots cost as one" (fun () ->
        let f = Ovo_boolfun.Families.multiplexer ~select:2 in
        let single = (Ovo_core.Fs.run f).Ovo_core.Fs.mincost in
        let r = S.minimize [| f; f; f |] in
        Helpers.check_int "same as single" single r.S.mincost);
    Helpers.case "single root equals plain FS" (fun () ->
        let f = Ovo_boolfun.Families.hidden_weighted_bit 5 in
        let r = S.minimize [| f |] in
        Helpers.check_int "mincost" (Ovo_core.Fs.run f).Ovo_core.Fs.mincost
          r.S.mincost);
    Helpers.case "2-bit multiplier shared optimum" (fun () ->
        let outputs =
          Array.init 4 (fun j ->
              T.of_fun 4 (fun code ->
                  ((code land 3) * (code lsr 2)) land (1 lsl j) <> 0))
        in
        let r = S.minimize outputs in
        Helpers.check_int "matches brute force" (brute_shared outputs)
          r.S.mincost;
        Helpers.check_bool "valid" true
          (S.check r.S.state
             (Array.map Ovo_boolfun.Mtable.of_truthtable outputs)));
    Helpers.case "roots of complete state" (fun () ->
        let f0 = T.var 2 0 and f1 = T.const 2 true in
        let r = S.minimize [| f0; f1 |] in
        let roots = S.roots r.S.state in
        Helpers.check_int "two roots" 2 (Array.length roots);
        Helpers.check_int "constant root is the terminal" 1 roots.(1));
    Helpers.case "mismatched arities rejected" (fun () ->
        Alcotest.check_raises "arity" (Invalid_argument "Shared.initial: arity mismatch")
          (fun () ->
            ignore (S.of_truthtables C.Bdd [| T.var 2 0; T.var 3 0 |])));
    Helpers.case "empty root array rejected" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Shared.initial: need at least one root") (fun () ->
            ignore (S.of_truthtables C.Bdd [||])));
    Helpers.case "to_dot emits all roots" (fun () ->
        let r = S.minimize [| T.var 2 0; T.var 2 1 |] in
        let dot = S.to_dot r.S.state in
        Helpers.check_bool "r0" true
          (String.length dot > 0
          &&
          let has needle =
            let rec go i =
              i + String.length needle <= String.length dot
              && (String.sub dot i (String.length needle) = needle || go (i + 1))
            in
            go 0
          in
          has "r0" && has "r1"));
  ]

let props =
  [
    QCheck.Test.make ~name:"shared optimum equals brute force" ~count:60
      arb_pair
      (fun tts -> (S.minimize tts).S.mincost = brute_shared tts);
    QCheck.Test.make ~name:"shared optimum equals brute force (ZDD)" ~count:40
      arb_pair
      (fun tts ->
        (S.minimize ~kind:C.Zdd tts).S.mincost = brute_shared ~kind:C.Zdd tts);
    QCheck.Test.make ~name:"every root evaluates to its function" ~count:60
      arb_pair
      (fun tts ->
        let r = S.minimize tts in
        S.check r.S.state (Array.map Ovo_boolfun.Mtable.of_truthtable tts));
    QCheck.Test.make
      ~name:"shared cost brackets: >= each single optimum, <= sum under its own order"
      ~count:60 arb_pair
      (fun tts ->
        let r = S.minimize tts in
        let singles =
          Array.to_list
            (Array.map (fun tt -> (Ovo_core.Fs.run tt).Ovo_core.Fs.mincost) tts)
        in
        (* lower bound: the shared diagram contains each root's reduced
           diagram under the shared order, which is at least that root's
           own optimum; upper bound: node sharing can only help relative
           to keeping the per-root diagrams separate at the same order *)
        let per_root_at_shared_order =
          Array.to_list
            (Array.map
               (fun tt -> Ovo_core.Eval_order.mincost tt r.S.order)
               tts)
        in
        r.S.mincost >= List.fold_left max 0 singles
        && r.S.mincost <= List.fold_left ( + ) 0 per_root_at_shared_order);
    QCheck.Test.make ~name:"order returned achieves the reported cost"
      ~count:60 arb_pair
      (fun tts ->
        let r = S.minimize tts in
        let re =
          S.compact_chain (S.of_truthtables C.Bdd tts) r.S.order
        in
        re.S.mincost = r.S.mincost);
  ]

let diagram_props =
  [
    QCheck.Test.make ~name:"per-root diagram views are valid and shared"
      ~count:60 arb_pair
      (fun tts ->
        let r = S.minimize tts in
        let views = S.diagrams r.S.state in
        Array.length views = Array.length tts
        && Array.for_all2
             (fun d tt -> Ovo_core.Diagram.check_tt d tt)
             views tts);
    QCheck.Test.make
      ~name:"per-root views serialize and reload independently" ~count:40
      arb_pair
      (fun tts ->
        let r = S.minimize tts in
        let views = S.diagrams r.S.state in
        Array.for_all2
          (fun d tt ->
            Ovo_core.Diagram.check_tt
              (Ovo_core.Diagram.deserialize (Ovo_core.Diagram.serialize d))
              tt)
          views tts);
  ]

let () =
  Alcotest.run "shared"
    [
      ("unit", unit_tests);
      ("props", Helpers.qtests props);
      ("diagrams", Helpers.qtests diagram_props);
    ]

module Ord = Ovo_ordering
module Fs = Ovo_core.Fs
module T = Ovo_boolfun.Truthtable
module F = Ovo_boolfun.Families

let unit_tests =
  [
    Helpers.case "perm iter_all counts n!" (fun () ->
        for n = 0 to 6 do
          let count = ref 0 in
          Ord.Perm.iter_all n (fun _ -> incr count);
          Helpers.check_int
            (Printf.sprintf "%d!" n)
            (int_of_float (Ord.Perm.count n))
            !count
        done);
    Helpers.case "perm iter_all yields distinct permutations" (fun () ->
        let seen = Hashtbl.create 64 in
        Ord.Perm.iter_all 5 (fun p -> Hashtbl.replace seen (Array.copy p) ());
        Helpers.check_int "distinct" 120 (Hashtbl.length seen));
    Helpers.case "perm move semantics" (fun () ->
        Alcotest.(check (array int)) "forward" [| 1; 2; 0; 3 |]
          (Ord.Perm.move [| 0; 1; 2; 3 |] ~from:0 ~to_:2);
        Alcotest.(check (array int)) "backward" [| 2; 0; 1; 3 |]
          (Ord.Perm.move [| 0; 1; 2; 3 |] ~from:2 ~to_:0);
        Alcotest.(check (array int)) "no-op" [| 0; 1; 2 |]
          (Ord.Perm.move [| 0; 1; 2 |] ~from:1 ~to_:1));
    Helpers.case "brute refuses large arities" (fun () ->
        Alcotest.check_raises "limit"
          (Invalid_argument "Brute.best: arity above limit") (fun () ->
            ignore (Ord.Brute.best (F.parity 10))));
    Helpers.case "brute on achilles recovers the linear optimum" (fun () ->
        let tt = F.achilles 3 in
        let r = Ord.Brute.best tt in
        Helpers.check_int "mincost" 6 r.Ord.Brute.mincost;
        Helpers.check_int "evaluated" 720 r.Ord.Brute.evaluated);
    Helpers.case "sifting from the bad achilles ordering recovers optimum"
      (fun () ->
        let tt = F.achilles 4 in
        let r = Ord.Sifting.run ~initial:(F.achilles_bad_order 4) tt in
        Helpers.check_int "mincost" 8 r.Ord.Sifting.mincost);
    Helpers.case "window is suboptimal on mux-2 but valid" (fun () ->
        let tt = F.multiplexer ~select:2 in
        let r = Ord.Window.run ~window:3 tt in
        let exact = (Fs.run tt).Fs.mincost in
        Helpers.check_bool "at least exact" true (r.Ord.Window.mincost >= exact);
        Helpers.check_int "reproducible cost" r.Ord.Window.mincost
          (Ovo_core.Eval_order.mincost tt r.Ord.Window.order));
    Helpers.case "exact-block with block = n is exact" (fun () ->
        let tt = F.hidden_weighted_bit 5 in
        let r = Ord.Exact_block.run ~block:5 tt in
        Helpers.check_int "exact" (Fs.run tt).Fs.mincost
          r.Ord.Exact_block.mincost);
    Helpers.case "quality report structure" (fun () ->
        let tt = F.multiplexer ~select:2 in
        let report = Ord.Quality.evaluate ~name:"mux" tt in
        Helpers.check_int "exact" 7 report.Ord.Quality.exact;
        Helpers.check_int "entries" 5 (List.length report.Ord.Quality.entries);
        List.iter
          (fun e ->
            Helpers.check_bool "ratio >= 1" true (e.Ord.Quality.ratio >= 1.0))
          report.Ord.Quality.entries;
        Helpers.check_bool "worst >= exact" true
          (report.Ord.Quality.worst >= report.Ord.Quality.exact));
  ]

let heuristic_soundness name run =
  QCheck.Test.make ~name ~count:50
    (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:5 ()) QCheck.small_int)
    (fun (tt, seed) ->
      let exact = (Fs.run tt).Fs.mincost in
      let cost, order = run tt seed in
      (* sound: never below the true optimum, and honest: the reported
         cost matches the reported order *)
      cost >= exact && Ovo_core.Eval_order.mincost tt order = cost)

let props =
  [
    heuristic_soundness "sifting is sound and honest" (fun tt seed ->
        let init = Helpers.perm_of_seed seed (T.arity tt) in
        let r = Ord.Sifting.run ~initial:init tt in
        (r.Ord.Sifting.mincost, r.Ord.Sifting.order));
    heuristic_soundness "window is sound and honest" (fun tt seed ->
        let init = Helpers.perm_of_seed seed (T.arity tt) in
        let r = Ord.Window.run ~initial:init tt in
        (r.Ord.Window.mincost, r.Ord.Window.order));
    heuristic_soundness "random search is sound and honest" (fun tt seed ->
        let r = Ord.Random_search.run ~rng:(Helpers.rng seed) tt in
        (r.Ord.Random_search.mincost, r.Ord.Random_search.order));
    heuristic_soundness "annealing is sound and honest" (fun tt seed ->
        let r = Ord.Annealing.run ~rng:(Helpers.rng seed) tt in
        (r.Ord.Annealing.mincost, r.Ord.Annealing.order));
    heuristic_soundness "genetic search is sound and honest" (fun tt seed ->
        let r = Ord.Genetic.run ~rng:(Helpers.rng seed) tt in
        (r.Ord.Genetic.mincost, r.Ord.Genetic.order));
    heuristic_soundness "exact-block is sound and honest" (fun tt seed ->
        let init = Helpers.perm_of_seed seed (T.arity tt) in
        let r = Ord.Exact_block.run ~block:3 ~initial:init tt in
        (r.Ord.Exact_block.mincost, r.Ord.Exact_block.order));
    QCheck.Test.make ~name:"brute force equals FS" ~count:40
      (Helpers.arb_truthtable ~lo:1 ~hi:5 ())
      (fun tt ->
        (Ord.Brute.best tt).Ord.Brute.mincost = (Fs.run tt).Fs.mincost);
    QCheck.Test.make ~name:"brute force equals FS (ZDD)" ~count:30
      (Helpers.arb_truthtable ~lo:1 ~hi:4 ())
      (fun tt ->
        (Ord.Brute.best ~kind:Ovo_core.Compact.Zdd tt).Ord.Brute.mincost
        = (Fs.run ~kind:Ovo_core.Compact.Zdd tt).Fs.mincost);
    QCheck.Test.make ~name:"annealing never worsens its initial ordering"
      ~count:40
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let init = Helpers.perm_of_seed seed (T.arity tt) in
        let before = Ovo_core.Eval_order.mincost tt init in
        (Ord.Annealing.run ~initial:init ~rng:(Helpers.rng seed) tt)
          .Ord.Annealing.mincost <= before);
    QCheck.Test.make ~name:"sifting never worsens its initial ordering"
      ~count:60
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let init = Helpers.perm_of_seed seed (T.arity tt) in
        let before = Ovo_core.Eval_order.mincost tt init in
        (Ord.Sifting.run ~initial:init tt).Ord.Sifting.mincost <= before);
    QCheck.Test.make ~name:"exact-block never worsens its initial ordering"
      ~count:40
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let init = Helpers.perm_of_seed seed (T.arity tt) in
        let before = Ovo_core.Eval_order.mincost tt init in
        (Ord.Exact_block.run ~initial:init tt).Ord.Exact_block.mincost <= before);
    QCheck.Test.make ~name:"order crossover yields a permutation" ~count:300
      (QCheck.triple QCheck.small_int QCheck.small_int (QCheck.int_range 0 9))
      (fun (s1, s2, n) ->
        let p1 = Helpers.perm_of_seed s1 n and p2 = Helpers.perm_of_seed s2 n in
        let child = Ord.Genetic.order_crossover (Helpers.rng (s1 + s2)) p1 p2 in
        List.sort compare (Array.to_list child) = List.init n (fun i -> i));
    QCheck.Test.make ~name:"genetic never loses to the identity ordering"
      ~count:30
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:6 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let identity_cost =
          Ovo_core.Eval_order.mincost tt (Ord.Perm.identity (T.arity tt))
        in
        (Ord.Genetic.run ~rng:(Helpers.rng seed) tt).Ord.Genetic.mincost
        <= identity_cost);
    QCheck.Test.make ~name:"perm move preserves the multiset" ~count:100
      (QCheck.triple QCheck.small_int QCheck.small_int QCheck.small_int)
      (fun (seed, from, to_) ->
        let n = 6 in
        let p = Helpers.perm_of_seed seed n in
        let q = Ord.Perm.move p ~from:(from mod n) ~to_:(to_ mod n) in
        List.sort compare (Array.to_list q) = List.init n (fun i -> i));
  ]

let () =
  Alcotest.run "ordering"
    [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

module P = Ovo_ordering.Portfolio
module B = Ovo_bdd.Bdd
module T = Ovo_boolfun.Truthtable
module E = Ovo_boolfun.Expr

let unit_tests =
  [
    Helpers.case "portfolio lists every member, best first" (fun () ->
        let r = P.run (Ovo_boolfun.Families.multiplexer ~select:2) in
        Helpers.check_int "members" 7 (List.length r.P.entries);
        (match r.P.entries with
        | first :: rest ->
            Helpers.check_bool "sorted" true
              (List.for_all (fun e -> e.P.mincost >= first.P.mincost) rest);
            Helpers.check_int "best is head" first.P.mincost r.P.best.P.mincost
        | [] -> Alcotest.fail "empty portfolio"));
    Helpers.case "cube cover of a single cube" (fun () ->
        let man = B.create 3 in
        let f = B.of_expr man (E.of_string "x0 & !x2") in
        Alcotest.(check (list (list (pair int bool))))
          "one cube"
          [ [ (0, true); (2, false) ] ]
          (B.cube_cover man f));
    Helpers.case "cube cover of constants" (fun () ->
        let man = B.create 2 in
        Alcotest.(check (list (list (pair int bool))))
          "false" [] (B.cube_cover man (B.bfalse man));
        Alcotest.(check (list (list (pair int bool))))
          "true" [ [] ]
          (B.cube_cover man (B.btrue man)));
    Helpers.case "to_expr of xor is a 2-cube DNF" (fun () ->
        let man = B.create 2 in
        let f = B.of_expr man (E.of_string "x0 ^ x1") in
        Helpers.check_int "cubes" 2 (List.length (B.cube_cover man f)));
  ]

let props =
  [
    QCheck.Test.make ~name:"portfolio is sound and honest" ~count:40
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:5 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let r = P.run ~rng:(Helpers.rng seed) tt in
        let exact = (Ovo_core.Fs.run tt).Ovo_core.Fs.mincost in
        r.P.best.P.mincost >= exact
        && Ovo_core.Eval_order.mincost tt r.P.best.P.order = r.P.best.P.mincost);
    QCheck.Test.make
      ~name:"portfolio never loses to any individual member" ~count:40
      (QCheck.pair (Helpers.arb_truthtable ~lo:2 ~hi:5 ()) QCheck.small_int)
      (fun (tt, seed) ->
        let r = P.run ~rng:(Helpers.rng seed) tt in
        List.for_all (fun e -> r.P.best.P.mincost <= e.P.mincost) r.P.entries);
    QCheck.Test.make ~name:"to_expr round-trips the function" ~count:150
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let man = B.create (T.arity tt) in
        let f = B.of_truthtable man tt in
        T.equal (E.to_truthtable ~arity:(T.arity tt) (B.to_expr man f)) tt);
    QCheck.Test.make ~name:"cube cover is disjoint and exact" ~count:150
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let n = T.arity tt in
        let man = B.create n in
        let cover = B.cube_cover man (B.of_truthtable man tt) in
        let matches cube code =
          List.for_all
            (fun (v, b) -> (code land (1 lsl v) <> 0) = b)
            cube
        in
        let ok = ref true in
        for code = 0 to (1 lsl n) - 1 do
          let hits = List.length (List.filter (fun c -> matches c code) cover) in
          (* exactly one cube on the on-set, none on the off-set *)
          if T.eval tt code then (if hits <> 1 then ok := false)
          else if hits <> 0 then ok := false
        done;
        !ok);
    QCheck.Test.make
      ~name:"cover size is bounded by satcount and by 1-paths" ~count:100
      (Helpers.arb_truthtable ~lo:1 ~hi:6 ())
      (fun tt ->
        let man = B.create (T.arity tt) in
        let f = B.of_truthtable man tt in
        List.length (B.cube_cover man f) <= T.count_ones tt);
  ]

let () =
  Alcotest.run "portfolio_cover"
    [ ("unit", unit_tests); ("props", Helpers.qtests props) ]

(* Shared test utilities: fixed-seed RNGs, QCheck generators for the
   repository's core types, and brute-force reference computations. *)

let rng seed = Random.State.make [| 0xC0FFEE; seed |]

(* --- QCheck generators ------------------------------------------------ *)

(* A truth table over [lo..hi] variables. *)
let gen_truthtable ?(lo = 1) ?(hi = 6) () =
  let open QCheck.Gen in
  int_range lo hi >>= fun n ->
  string_size ~gen:(oneofl [ '0'; '1' ]) (return (1 lsl n)) >|= fun bits ->
  Ovo_boolfun.Truthtable.of_string bits

let arb_truthtable ?lo ?hi () =
  QCheck.make
    ~print:(fun tt -> Ovo_boolfun.Truthtable.to_string tt)
    (gen_truthtable ?lo ?hi ())

let gen_mtable ?(lo = 1) ?(hi = 5) ?(values = 3) () =
  let open QCheck.Gen in
  int_range lo hi >>= fun n ->
  array_size (return (1 lsl n)) (int_range 0 (values - 1)) >|= fun cells ->
  Ovo_boolfun.Mtable.of_array ~values cells

let arb_mtable ?lo ?hi ?values () =
  QCheck.make
    ~print:(fun mt -> Format.asprintf "%a" Ovo_boolfun.Mtable.pp mt)
    (gen_mtable ?lo ?hi ?values ())

let gen_expr ?(vars = 5) ?(depth = 5) () =
  let open QCheck.Gen in
  int_range 0 1000000 >|= fun seed ->
  Ovo_boolfun.Expr.random (rng seed) ~vars ~depth

let arb_expr ?vars ?depth () =
  QCheck.make ~print:Ovo_boolfun.Expr.to_string (gen_expr ?vars ?depth ())

(* A permutation of [0..n-1] derived from a seed. *)
let perm_of_seed seed n =
  let st = rng seed in
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

(* --- brute-force references ------------------------------------------- *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
        l

let all_orders n = List.map Array.of_list (permutations (List.init n (fun i -> i)))

(* Minimum diagram cost over all orderings, via the compaction chain. *)
let brute_mincost ?kind tt =
  let n = Ovo_boolfun.Truthtable.arity tt in
  List.fold_left
    (fun acc order -> min acc (Ovo_core.Eval_order.mincost ?kind tt order))
    max_int (all_orders n)

let brute_mincost_mtable ?(kind = Ovo_core.Compact.Bdd) mt =
  let n = Ovo_boolfun.Mtable.arity mt in
  let base = Ovo_core.Compact.initial kind mt in
  List.fold_left
    (fun acc order ->
      min acc (Ovo_core.Compact.compact_chain base order).Ovo_core.Compact.mincost)
    max_int (all_orders n)

(* --- alcotest plumbing ------------------------------------------------- *)

let qtests props = List.map QCheck_alcotest.to_alcotest props

let case name f = Alcotest.test_case name `Quick f

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

  $ ovo fig1 --pairs 3
  $ ovo optimize --expr 'x0 & x1 | x2'
  $ ovo optimize --expr 'x0 & x1 | x2' --algo brute
  $ ovo optimize --family mux-2 --algo astar
  $ ovo optimize --table 011
  $ ovo optimize --expr 'x0 &'
  $ ovo optimize
  $ ovo optimize --family nope
  $ ovo optimize --family achilles-3 --algo simple | head -3
  $ ovo table2 --rounds 2
  $ ovo spectrum --family achilles-3 | head -2
  $ ovo families --max-arity 6
  $ ovo optimize --family mux-2 --weights 5,1,1,1,1,1
  $ ovo optimize --family achilles-2 --save ach2.ovo > /dev/null
  $ ovo show ach2.ovo
  $ echo garbage > bad.ovo
  $ ovo show bad.ovo
  $ ovo optimize --table 01101001 --engine par --domains 2
  $ ovo optimize --table 01101001 --stats json
  $ ovo optimize --table 01101001 --engine par --domains 2 --stats text

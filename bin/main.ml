(* ovo — exact and heuristic variable-ordering optimisation for decision
   diagrams, on the command line.  See `ovo --help` and README.md. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Input specification: how the Boolean function reaches the tool.     *)

let load_function ~table ~expr ~pla ~pla_output ~blif ~signal ~family =
  let sources =
    List.filter_map
      (fun x -> x)
      [
        Option.map (fun s -> `Table s) table;
        Option.map (fun s -> `Expr s) expr;
        Option.map (fun s -> `Pla s) pla;
        Option.map (fun s -> `Blif s) blif;
        Option.map (fun s -> `Family s) family;
      ]
  in
  match sources with
  | [] -> Error "no input: pass one of --table, --expr, --pla, --blif, --family"
  | _ :: _ :: _ ->
      Error "pass exactly one of --table, --expr, --pla, --blif, --family"
  | [ `Table s ] -> (
      try Ok (Ovo_boolfun.Truthtable.of_string s)
      with Invalid_argument m -> Error m)
  | [ `Expr s ] -> (
      try Ok (Ovo_boolfun.Expr.to_truthtable (Ovo_boolfun.Expr.of_string s))
      with Failure m | Invalid_argument m -> Error m)
  | [ `Pla path ] -> (
      try
        let p = Ovo_boolfun.Pla.of_file path in
        Ok (Ovo_boolfun.Pla.output_table p pla_output)
      with
      | Failure m | Invalid_argument m -> Error m
      | Sys_error m -> Error m)
  | [ `Blif path ] -> (
      try
        let m = Ovo_boolfun.Blif.of_string
            (let ic = open_in path in
             let len = in_channel_length ic in
             let text = really_input_string ic len in
             close_in ic;
             text)
        in
        let name =
          match signal with
          | Some name -> name
          | None -> (
              match Ovo_boolfun.Blif.output_names m with
              | first :: _ -> first
              | [] -> raise Not_found)
        in
        Ok (Ovo_boolfun.Blif.output_table m name)
      with
      | Failure m | Invalid_argument m -> Error m
      | Sys_error m -> Error m
      | Not_found -> Error "unknown --signal for this BLIF model")
  | [ `Family name ] -> (
      match List.assoc_opt name (Ovo_boolfun.Families.catalogue ~max_arity:24) with
      | Some tt -> Ok tt
      | None ->
          Error
            (Printf.sprintf "unknown family %S; try `ovo families` for the list"
               name))

let table_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "table" ] ~docv:"BITS"
        ~doc:"Truth table as a 0/1 string of length $(b,2^n) (entry $(i,i) is f at assignment code $(i,i)).")

let expr_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "expr" ] ~docv:"EXPR"
        ~doc:"Boolean expression, e.g. $(b,'x0 & x1 | x2 ^ !x3').")

let pla_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "pla" ] ~docv:"FILE" ~doc:"PLA (espresso) file.")

let pla_output_arg =
  Arg.(
    value & opt int 0
    & info [ "output" ] ~docv:"IDX" ~doc:"PLA output column to use (default 0).")

let blif_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "blif" ] ~docv:"FILE" ~doc:"BLIF (combinational) file.")

let signal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "signal" ] ~docv:"NAME"
        ~doc:"Output to use from a $(b,--blif) model (default: the first).")

let family_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "family" ] ~docv:"NAME"
        ~doc:"Named benchmark function; list them with $(b,ovo families).")

let kind_arg =
  let kind_conv =
    Arg.enum [ ("bdd", Ovo_core.Compact.Bdd); ("zdd", Ovo_core.Compact.Zdd) ]
  in
  Arg.(
    value & opt kind_conv Ovo_core.Compact.Bdd
    & info [ "kind" ] ~docv:"KIND" ~doc:"Diagram kind: $(b,bdd) or $(b,zdd).")

let engine_arg =
  let engine_conv = Arg.enum [ ("seq", `Seq); ("par", `Par) ] in
  Arg.(
    value & opt engine_conv `Seq
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "DP engine: $(b,seq) (default) or $(b,par), which splits each \
           cardinality layer of the dynamic program across worker domains \
           (see $(b,--domains)).  Results are identical either way.")

let domains_arg =
  Arg.(
    value & opt int 0
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains for $(b,--engine par); $(b,0) (default) uses the \
           runtime's recommended count.")

let stats_arg =
  let stats_conv = Arg.enum [ ("none", `None); ("text", `Text); ("json", `Json) ] in
  Arg.(
    value & opt stats_conv `None
    & info [ "stats" ] ~docv:"FMT"
        ~doc:
          "Print the run's operation counters (table cells, cost probes, \
           materialised states, ...) after the result: $(b,text) or \
           $(b,json).")

let resolve_engine engine domains =
  match engine with
  | `Seq -> Ovo_core.Engine.Seq
  | `Par -> Ovo_core.Engine.par ~domains ()

(* With an active --mem-budget the JSON object gains a "mem" field and
   with --prune a "prune" field; the default output is byte-identical to
   the pre-budget CLI (pinned by test/cli.t and test/obs.t). *)
let emit_stats ?membudget ?prune stats (m : Ovo_core.Metrics.t) =
  let s = Ovo_core.Metrics.snapshot m in
  match stats with
  | `None -> ()
  | `Text ->
      Format.printf "%a@." Ovo_core.Metrics.pp s;
      Option.iter
        (fun mb -> Format.printf "mem: %a@." Ovo_core.Membudget.pp mb)
        membudget;
      Option.iter
        (fun b -> Format.printf "prune: %a@." Ovo_core.Bound.pp b)
        prune
  | `Json -> (
      match (membudget, prune) with
      | None, None -> Format.printf "%s@." (Ovo_core.Metrics.to_json s)
      | _ ->
          let fields =
            Ovo_core.Metrics.to_args s
            @ (match membudget with
              | None -> []
              | Some mb -> [ ("mem", Ovo_core.Membudget.to_json_value mb) ])
            @
            match prune with
            | None -> []
            | Some b -> [ ("prune", Ovo_core.Bound.to_json_value b) ]
          in
          Format.printf "%s@."
            (Ovo_obs.Json.to_string (Ovo_obs.Json.Obj fields)))

(* ------------------------------------------------------------------ *)
(* observability: --trace / --profile / --progress share one tracer    *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span trace of the run.  A $(i,FILE) ending in \
           $(b,.jsonl) gets one JSON object per event; any other name \
           gets Chrome $(b,trace_event) JSON, loadable in Perfetto or \
           chrome://tracing.  Schemas in doc/observability.md.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Print a profile to stderr after the run: wall time, per-span \
           aggregates, the slowest spans, and GC allocation totals.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:"Tick each completed DP phase on stderr as the run goes.")

(* Build the tracer the three flags imply ({!Ovo_obs.Trace.null} when
   none is set, so traced code paths cost one branch), run [f] under it,
   and emit the requested outputs — also when [f] raises, so a trace of
   a crashing run survives for inspection. *)
let with_obs ~trace_file ~profile ~progress f =
  if trace_file = None && (not profile) && not progress then
    f Ovo_obs.Trace.null
  else begin
    let trace = Ovo_obs.Trace.make () in
    if progress then
      Ovo_obs.Trace.on_event trace (function
        | Ovo_obs.Trace.Span s when s.Ovo_obs.Trace.cat = "dp" ->
            Printf.eprintf "[ovo] %-16s %8.3f ms\n%!" s.Ovo_obs.Trace.name
              ((s.Ovo_obs.Trace.stop -. s.Ovo_obs.Trace.start) *. 1e3)
        | _ -> ());
    let finish () =
      (match trace_file with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          (if Filename.check_suffix path ".jsonl" then
             Ovo_obs.Export.write_jsonl oc trace
           else Ovo_obs.Export.write_chrome oc trace);
          close_out oc;
          Printf.eprintf "[ovo] trace written: %s (%d events)\n%!" path
            (Ovo_obs.Trace.event_count trace));
      if profile then prerr_string (Ovo_obs.Export.summary trace)
    in
    Fun.protect ~finally:finish (fun () -> f trace)
  end

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~docv:"FILE"
        ~doc:"Write the resulting diagram in the ovo exchange format.")

(* ------------------------------------------------------------------ *)
(* persistence flags (doc/persistence.md)                              *)

let fsync_conv =
  let parse s =
    match Ovo_store.Rlog.fsync_of_string s with
    | Ok f -> Ok f
    | Error m -> Error (`Msg m)
  in
  Arg.conv
    ( parse,
      fun ppf f ->
        Format.pp_print_string ppf (Ovo_store.Rlog.fsync_to_string f) )

let fsync_arg =
  Arg.(
    value
    & opt fsync_conv Ovo_store.Rlog.Never
    & info [ "fsync" ] ~docv:"MODE"
        ~doc:
          "Durability policy for store and checkpoint writes: $(b,always), \
           $(b,never) (default; appends still survive process death — this \
           only matters for machine crashes), $(b,interval) (1s) or \
           $(b,interval:SECS).")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "($(b,--algo fs) only)  Write a checkpoint record after every \
           completed DP layer, starting fresh.  A killed run continues \
           with $(b,--resume) $(i,FILE).")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "($(b,--algo fs) only)  Resume from a checkpoint file written by \
           $(b,--checkpoint), and keep checkpointing to it.  The solution \
           is bit-identical to an uninterrupted run.  A missing file \
           degrades to a fresh checkpointed run; a file from a different \
           input or kind is an error.")

let crash_after_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "crash-after-layer" ] ~docv:"K"
        ~doc:
          "Testing hook: exit with status 42 right after the layer-$(i,K) \
           checkpoint record is written — a deterministic stand-in for \
           kill -9.")

let mem_budget_conv =
  let parse s =
    match Ovo_core.Membudget.parse_bytes s with
    | Ok b -> Ok b
    | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf b -> Format.pp_print_int ppf b)

let mem_budget_arg =
  Arg.(
    value
    & opt (some mem_budget_conv) None
    & info [ "mem-budget" ] ~docv:"BYTES"
        ~doc:
          "($(b,--algo fs) only)  Cap the resident bytes of the DP's packed            cost/choice layers.  Completed layers past the cap spill to            CRC-framed segments under $(b,--spill-dir) and are reloaded            lazily during reconstruction; the solution is bit-identical to            an unbounded run.  Accepts $(b,k)/$(b,M)/$(b,G) suffixes            (binary multiples).")

let spill_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spill-dir" ] ~docv:"DIR"
        ~doc:
          "Directory for $(b,--mem-budget) spill segments (default: a fresh            $(b,ovo-spill-<pid>) under the system temp directory).  Segments            are deleted when the run finishes.")

let spill_mmap_arg =
  Arg.(
    value
    & flag
    & info [ "spill-mmap" ]
        ~doc:
          "Write $(b,--mem-budget) spill segments in the mappable raw \
           format and reload them via $(b,mmap)(2): reloaded extents stay \
           off the OCaml heap and the kernel pages them in (and back out) \
           on demand.  Corruption detection (CRC-32) is unchanged.")

let spill_extent_arg =
  Arg.(
    value
    & opt (some mem_budget_conv) None
    & info [ "spill-extent" ] ~docv:"BYTES"
        ~doc:
          "($(b,--mem-budget) only)  Dense payload bytes per spill extent \
           (default 1M).  Layers are split into fixed-size extents and \
           spilled/reloaded at that granularity, so even a single layer \
           larger than the whole budget stays out of core.  Accepts \
           $(b,k)/$(b,M)/$(b,G) suffixes.")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE" ~doc:"Write the resulting diagram in Graphviz format.")

let pp_order ppf order =
  Format.fprintf ppf "[%s]"
    (String.concat " " (List.map string_of_int (Array.to_list order)))

let print_result ?save ~algo ~modeled (r : Ovo_core.Fs.result) dot =
  Format.printf "algorithm        : %s@." algo;
  Format.printf "minimum size     : %d nodes (%d non-terminal)@." r.Ovo_core.Fs.size
    r.Ovo_core.Fs.mincost;
  Format.printf "order (root first): %a@." pp_order (Ovo_core.Fs.read_first_order r);
  Format.printf "order (paper pi)  : %a@." pp_order r.Ovo_core.Fs.order;
  Format.printf "level widths      : %a@." pp_order r.Ovo_core.Fs.widths;
  (match modeled with
  | Some cost -> Format.printf "modeled cost      : %.3e table cells@." cost
  | None -> ());
  (match save with
  | None | Some None -> ()
  | Some (Some path) ->
      let oc = open_out path in
      output_string oc (Ovo_core.Diagram.serialize r.Ovo_core.Fs.diagram);
      close_out oc;
      Format.printf "diagram saved     : %s@." path);
  match dot with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Ovo_core.Diagram.to_dot r.Ovo_core.Fs.diagram);
      close_out oc;
      Format.printf "diagram written   : %s@." path

(* ------------------------------------------------------------------ *)
(* optimize                                                            *)

let weights_arg =
  Arg.(
    value
    & opt (some (list ~sep:',' int)) None
    & info [ "weights" ] ~docv:"W0,W1,.."
        ~doc:
          "Per-variable level weights: minimise the weighted node count \
           exactly (overrides $(b,--algo)).")

let algo_arg =
  Arg.(
    value & opt string "fs"
    & info [ "algo" ] ~docv:"ALGO"
        ~doc:
          "One of $(b,fs) (exact DP, Theorem 5), $(b,qdc) (quantum \
           divide-and-conquer, Theorem 10, simulated), $(b,tower:N) \
           (Theorem 13 composition of depth N, simulated), $(b,brute), \
           $(b,simple) (Sec 3.1 single split, simulated), $(b,astar) (exact, \
           pruned), $(b,sifting), $(b,window), $(b,exact-block), \
           $(b,annealing), $(b,genetic), $(b,influence), $(b,scored) \
           (learned weighted scoring, see $(b,--model)), $(b,portfolio), \
           $(b,random).")

let model_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "model" ] ~docv:"FILE"
        ~doc:
          "Scorer weight model (JSON, doc/learning.md) for $(b,--algo \
           scored), the portfolio's scored member and the $(b,--prune) \
           incumbent.  Default: the built-in weights.")

(* every learn-aware command funnels model loading through here so a
   bad file is one uniform CLI error, not an exception trace *)
let load_weights = function
  | None -> Ovo_learn.Scorer.Weights.default
  | Some path -> (
      match Ovo_learn.Scorer.Weights.load path with
      | Ok w -> w
      | Error m -> failwith ("--model: " ^ m))

let seed_arg =
  Arg.(value & opt int 0x0BDD & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let prune_arg =
  Arg.(
    value
    & vflag false
        [
          ( true,
            info [ "prune" ]
              ~doc:
                "Run the exact DP as a branch-and-bound: seed a free \
                 incumbent from the learned scorer, tighten it with \
                 sifting, skip every subset whose admissible lower \
                 bound proves it cannot beat the incumbent.  Same optimum, \
                 same ordering, fewer states; --stats gains a prune block.  \
                 Works with --algo fs, qdc, tower:N and simple (and with \
                 --weights); incompatible with --checkpoint/--resume." );
          (false, info [ "no-prune" ] ~doc:"Disable pruning (the default).");
        ])

let optimize_cmd =
  let run table expr pla pla_output blif signal family kind algo dot save
      weights seed engine domains stats trace_file profile progress checkpoint
      resume crash_after fsync mem_budget spill_dir spill_mmap spill_extent
      prune model =
    let engine = resolve_engine engine domains in
    with_obs ~trace_file ~profile ~progress @@ fun trace ->
    match load_function ~table ~expr ~pla ~pla_output ~blif ~signal ~family with
    | Error m -> `Error (false, m)
    | Ok tt when weights <> None -> (
        match weights with
        | Some ws -> (
            try
              let metrics = Ovo_core.Metrics.create () in
              let weights = Array.of_list ws in
              let bound =
                if prune then
                  Some
                    (Ovo_ordering.Seed.weighted_bound ~trace ~kind ~weights
                       (Ovo_boolfun.Mtable.of_truthtable tt))
                else None
              in
              let r =
                Ovo_core.Fs_weighted.run ~trace ~kind ~engine ~metrics ~weights
                  ?prune:bound tt
              in
              Format.printf "algorithm        : FS (exact, weighted)@.";
              Format.printf "weighted cost    : %d@."
                r.Ovo_core.Fs_weighted.weighted_cost;
              Format.printf "node count       : %d@."
                r.Ovo_core.Fs_weighted.mincost;
              Format.printf "order (root first): %a@." pp_order
                (Ovo_core.Eval_order.read_first r.Ovo_core.Fs_weighted.order);
              emit_stats ?prune:bound stats metrics;
              `Ok ()
            with Invalid_argument m -> `Error (false, m))
        | None -> assert false)
    | Ok tt -> (
        let with_eval name order =
          let st = Ovo_core.Eval_order.state ~kind tt order in
          print_result ~save ~algo:name ~modeled:None (Ovo_core.Fs.of_state st)
            dot;
          emit_stats stats Ovo_core.Metrics.ambient;
          `Ok ()
        in
        try
          let exact_algo =
            match String.split_on_char ':' algo with
            | [ "fs" ] | [ "qdc" ] | [ "simple" ] | [ "tower"; _ ] -> true
            | _ -> false
          in
          if
            (checkpoint <> None || resume <> None || crash_after <> None)
            && algo <> "fs"
          then failwith "--checkpoint/--resume/--crash-after-layer need --algo fs";
          if mem_budget <> None && not exact_algo then
            failwith "--mem-budget needs --algo fs, qdc, tower:N or simple";
          if spill_dir <> None && mem_budget = None then
            failwith "--spill-dir needs --mem-budget";
          if spill_mmap && mem_budget = None then
            failwith "--spill-mmap needs --mem-budget";
          if spill_extent <> None && mem_budget = None then
            failwith "--spill-extent needs --mem-budget";
          if prune && not exact_algo then
            failwith "--prune needs --algo fs, qdc, tower:N or simple";
          if prune && (checkpoint <> None || resume <> None) then
            failwith "--prune is incompatible with --checkpoint/--resume";
          (* unified mode: the checkpoint doubles as the spill store, so
             a budget+checkpoint run writes each layer once and needs no
             spill directory *)
          let unified =
            mem_budget <> None && (checkpoint <> None || resume <> None)
          in
          if unified && (spill_dir <> None || spill_mmap) then
            failwith
              "--checkpoint/--resume already serve as the spill store; \
               drop --spill-dir/--spill-mmap";
          let membudget, spill_cleanup =
            match mem_budget with
            | None -> (None, fun () -> ())
            | Some _ when unified -> (None, fun () -> ())
            | Some budget_bytes ->
                let dir =
                  match spill_dir with
                  | Some d -> d
                  | None ->
                      Filename.concat
                        (Filename.get_temp_dir_name ())
                        (Printf.sprintf "ovo-spill-%d" (Unix.getpid ()))
                in
                let sp = Ovo_store.Spill.create ~fsync ~mmap:spill_mmap dir in
                ( Some
                    (Ovo_core.Membudget.create ~budget_bytes
                       ?extent_bytes:spill_extent
                       ~sink:(Ovo_store.Spill.sink sp) ()),
                  fun () -> Ovo_store.Spill.remove sp )
          in
          let swts = load_weights model in
          let bound =
            if prune then
              Some (Ovo_learn.Scorer.seeded_bound ~trace ~weights:swts ~kind tt)
            else None
          in
          Fun.protect ~finally:spill_cleanup @@ fun () ->
          match String.split_on_char ':' algo with
          | [ "fs" ] ->
              let metrics = Ovo_core.Metrics.create () in
              let meta = Ovo_store.Checkpoint.meta_of ~kind tt in
              let writer, resume_layers =
                match (checkpoint, resume) with
                | Some _, Some _ ->
                    failwith
                      "pass --checkpoint (start fresh) or --resume \
                       (continue), not both"
                | Some path, None ->
                    (Some (Ovo_store.Checkpoint.create ~fsync ~path meta), [])
                | None, Some path ->
                    let w, layers =
                      Ovo_store.Checkpoint.open_resume ~fsync ~path meta
                    in
                    if layers <> [] then
                      Printf.eprintf
                        "[ovo] resuming %s: layers 1..%d already done\n%!"
                        path (List.length layers);
                    (Some w, layers)
                | None, None -> (None, [])
              in
              let membudget =
                match (mem_budget, writer) with
                | Some budget_bytes, Some w when unified ->
                    (* spill through the checkpoint: evictions are
                       no-ops (the layer record is already appended) and
                       reloads slice the records on hand *)
                    Some
                      (Ovo_core.Membudget.create ~budget_bytes
                         ?extent_bytes:spill_extent
                         ~sink:(Ovo_store.Checkpoint.sink w) ())
                | _ -> membudget
              in
              let on_layer (p : Ovo_core.Subset_dp.progress) =
                match writer with
                | None -> ()
                | Some w ->
                    Ovo_store.Checkpoint.append_layer w p;
                    if crash_after = Some p.Ovo_core.Subset_dp.p_layer
                    then begin
                      Ovo_store.Checkpoint.close w;
                      Printf.eprintf
                        "[ovo] --crash-after-layer %d: exiting 42\n%!"
                        p.Ovo_core.Subset_dp.p_layer;
                      exit 42
                    end
              in
              let r =
                Ovo_core.Fs.run ~trace ~kind ~engine ~metrics ?membudget
                  ?prune:bound ~on_layer ~resume:resume_layers tt
              in
              Option.iter Ovo_store.Checkpoint.close writer;
              print_result ~save ~algo:"FS (exact)"
                ~modeled:
                  (Some
                     (float_of_int
                        (Ovo_core.Metrics.snapshot metrics)
                          .Ovo_core.Metrics.s_table_cells))
                r dot;
              emit_stats ?membudget ?prune:bound stats metrics;
              `Ok ()
          | [ "qdc" ] ->
              let ctx =
                Ovo_quantum.Opt_obdd.make_ctx ~engine ~trace ?membudget
                  ?bound ()
              in
              let r, cost =
                Ovo_quantum.Opt_obdd.minimize ~kind ~ctx
                  (Ovo_quantum.Opt_obdd.theorem10 ()) tt
              in
              print_result ~save ~algo:"OptOBDD(6,alpha) [simulated]" ~modeled:(Some cost)
                r dot;
              emit_stats ?membudget ?prune:bound stats
                ctx.Ovo_quantum.Opt_obdd.metrics;
              `Ok ()
          | [ "tower"; d ] ->
              let depth = int_of_string d in
              let ctx =
                Ovo_quantum.Opt_obdd.make_ctx ~engine ~trace ?membudget
                  ?bound ()
              in
              let r, cost =
                Ovo_quantum.Opt_obdd.minimize ~kind ~ctx
                  (Ovo_quantum.Opt_obdd.tower ~depth) tt
              in
              print_result ~save
                ~algo:(Printf.sprintf "Gamma_%d tower [simulated]" depth)
                ~modeled:(Some cost) r dot;
              emit_stats ?membudget ?prune:bound stats
                ctx.Ovo_quantum.Opt_obdd.metrics;
              `Ok ()
          | [ "brute" ] ->
              let r = Ovo_ordering.Brute.best ~kind tt in
              with_eval "brute force" r.Ovo_ordering.Brute.order
          | [ "sifting" ] ->
              let r = Ovo_ordering.Sifting.run ~trace ~kind tt in
              with_eval "sifting (heuristic)" r.Ovo_ordering.Sifting.order
          | [ "window" ] ->
              let r = Ovo_ordering.Window.run ~trace ~kind tt in
              with_eval "window permutation (heuristic)" r.Ovo_ordering.Window.order
          | [ "exact-block" ] ->
              let r = Ovo_ordering.Exact_block.run ~kind tt in
              with_eval "exact-block hybrid" r.Ovo_ordering.Exact_block.order
          | [ "astar" ] ->
              let r = Ovo_ordering.Astar.run ~trace ~kind tt in
              Format.printf "A* expanded %d of %d subsets@."
                r.Ovo_ordering.Astar.expanded r.Ovo_ordering.Astar.subsets_total;
              with_eval "A* (exact, pruned)" r.Ovo_ordering.Astar.order
          | [ "genetic" ] ->
              let rng = Random.State.make [| seed |] in
              let r = Ovo_ordering.Genetic.run ~kind ~rng tt in
              with_eval "genetic algorithm (heuristic)" r.Ovo_ordering.Genetic.order
          | [ "influence" ] ->
              let r = Ovo_ordering.Influence.run ~kind tt in
              with_eval "influence static heuristic" r.Ovo_ordering.Influence.order
          | [ "scored" ] ->
              let r = Ovo_learn.Scorer.run ~trace ~weights:swts ~kind tt in
              with_eval "scored (learned static heuristic)"
                r.Ovo_learn.Scorer.order
          | [ "simple" ] ->
              let ctx =
                Ovo_quantum.Opt_obdd.make_ctx ~engine ~trace ?membudget
                  ?bound ()
              in
              let r, cost =
                Ovo_quantum.Opt_obdd.minimize ~kind ~ctx
                  (Ovo_quantum.Opt_obdd.simple_split ()) tt
              in
              print_result ~save ~algo:"OptOBDD simple split [simulated]"
                ~modeled:(Some cost) r dot;
              emit_stats ?membudget ?prune:bound stats
                ctx.Ovo_quantum.Opt_obdd.metrics;
              `Ok ()
          | [ "annealing" ] ->
              let rng = Random.State.make [| seed |] in
              let r = Ovo_ordering.Annealing.run ~kind ~rng tt in
              with_eval "simulated annealing (heuristic)"
                r.Ovo_ordering.Annealing.order
          | [ "portfolio" ] ->
              let rng = Random.State.make [| seed |] in
              let r =
                Ovo_ordering.Portfolio.run ~trace ~kind ~rng
                  ~extra:
                    [ Ovo_learn.Scorer.portfolio_member ~weights:swts ~kind () ]
                  tt
              in
              List.iter
                (fun e ->
                  Format.printf "  %-12s %d@."
                    e.Ovo_ordering.Portfolio.method_name
                    e.Ovo_ordering.Portfolio.mincost)
                r.Ovo_ordering.Portfolio.entries;
              with_eval
                (Printf.sprintf "portfolio (won by %s)"
                   r.Ovo_ordering.Portfolio.best.Ovo_ordering.Portfolio.method_name)
                r.Ovo_ordering.Portfolio.best.Ovo_ordering.Portfolio.order
          | [ "random" ] ->
              let rng = Random.State.make [| seed |] in
              let r = Ovo_ordering.Random_search.run ~kind ~rng tt in
              with_eval "random search" r.Ovo_ordering.Random_search.order
          | _ -> `Error (false, "unknown --algo " ^ algo)
        with Invalid_argument m | Failure m -> `Error (false, m))
  in
  let term =
    Term.(
      ret
        (const run $ table_arg $ expr_arg $ pla_arg $ pla_output_arg
       $ blif_arg $ signal_arg $ family_arg $ kind_arg $ algo_arg $ dot_arg
       $ save_arg $ weights_arg $ seed_arg $ engine_arg $ domains_arg
       $ stats_arg $ trace_arg $ profile_arg $ progress_arg $ checkpoint_arg
       $ resume_arg $ crash_after_arg $ fsync_arg $ mem_budget_arg
       $ spill_dir_arg $ spill_mmap_arg $ spill_extent_arg $ prune_arg
       $ model_arg))
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Find an optimal (or heuristic) variable ordering for a function")
    term

(* ------------------------------------------------------------------ *)
(* widths                                                              *)

let order_arg =
  Arg.(
    required
    & opt (some (list ~sep:',' int)) None
    & info [ "order" ] ~docv:"V0,V1,.."
        ~doc:"Ordering to evaluate, root (read-first) variable first.")

let widths_cmd =
  let run table expr pla pla_output blif signal family kind order =
    match load_function ~table ~expr ~pla ~pla_output ~blif ~signal ~family with
    | Error m -> `Error (false, m)
    | Ok tt -> (
        try
          let rf = Array.of_list order in
          let pi = Ovo_core.Eval_order.read_first rf in
          let d = Ovo_core.Eval_order.diagram ~kind tt pi in
          let widths = Ovo_core.Diagram.level_widths d in
          Format.printf "size  : %d@." (Ovo_core.Diagram.size d);
          Format.printf "widths: %a@." pp_order widths;
          Format.printf "caps  : ok=%b (universal per-level bounds, max size %.0f)@."
            (Ovo_core.Bounds.check_widths
               ~n:(Ovo_boolfun.Truthtable.arity tt)
               widths)
            (Ovo_core.Bounds.max_size (Ovo_boolfun.Truthtable.arity tt));
          (* profile histogram, root level first *)
          let peak = Array.fold_left max 1 widths in
          for level = Array.length widths - 1 downto 0 do
            let w = widths.(level) in
            Format.printf "  x%-3d %4d %s@." pi.(level) w
              (String.make (max 1 (w * 40 / peak)) '#')
          done;
          `Ok ()
        with Invalid_argument m -> `Error (false, m))
  in
  let term =
    Term.(
      ret
        (const run $ table_arg $ expr_arg $ pla_arg $ pla_output_arg
       $ blif_arg $ signal_arg $ family_arg $ kind_arg $ order_arg))
  in
  Cmd.v
    (Cmd.info "widths" ~doc:"Evaluate a given variable ordering on a function")
    term

(* ------------------------------------------------------------------ *)
(* table1 / table2                                                     *)

let table1_cmd =
  let run () =
    Format.printf "Reproducing paper Table 1 (gamma_k and alpha for OptOBDD(k, alpha)):@.";
    List.iter
      (fun r -> Format.printf "  %a@." Ovo_numerics.Tables.pp_row r)
      (Ovo_numerics.Tables.table1 ());
    let a0, g0 = Ovo_numerics.Exponents.gamma0 () in
    Format.printf "  (Sec 3.1 gamma_0 without preprocessing: alpha=%.6f gamma=%.5f)@." a0 g0
  in
  Cmd.v (Cmd.info "table1" ~doc:"Re-solve the paper's Table 1") Term.(const run $ const ())

let table2_cmd =
  let run rounds =
    Format.printf "Reproducing paper Table 2 (Theorem 13 composition):@.";
    List.iter
      (fun r -> Format.printf "  %a@." Ovo_numerics.Tables.pp_row r)
      (Ovo_numerics.Tables.table2 ~rounds ())
  in
  let rounds =
    Arg.(value & opt int 10 & info [ "rounds" ] ~doc:"Composition rounds.")
  in
  Cmd.v (Cmd.info "table2" ~doc:"Re-solve the paper's Table 2") Term.(const run $ rounds)

(* ------------------------------------------------------------------ *)
(* fig1                                                                *)

let fig1_cmd =
  let run pairs =
    let tt = Ovo_boolfun.Families.achilles pairs in
    let good = Ovo_boolfun.Families.achilles_good_order pairs in
    let bad = Ovo_boolfun.Families.achilles_bad_order pairs in
    Format.printf
      "f = x0*x1 + x2*x3 + ... over %d variables (paper Fig. 1 family)@."
      (2 * pairs);
    Format.printf "natural ordering    : size %d (paper: 2n+2 = %d)@."
      (Ovo_core.Eval_order.size tt good)
      ((2 * pairs) + 2);
    Format.printf "interleaved ordering: size %d (paper: 2^(n+1) = %d)@."
      (Ovo_core.Eval_order.size tt bad)
      (1 lsl (pairs + 1));
    let r = Ovo_core.Fs.run tt in
    Format.printf "exact optimum       : size %d@." r.Ovo_core.Fs.size
  in
  let pairs =
    Arg.(value & opt int 3 & info [ "pairs" ] ~doc:"Number of product pairs n.")
  in
  Cmd.v
    (Cmd.info "fig1" ~doc:"Reproduce the paper's Fig. 1 ordering blow-up")
    Term.(const run $ pairs)

(* ------------------------------------------------------------------ *)
(* compare (heuristic quality)                                         *)

let compare_cmd =
  let run table expr pla pla_output blif signal family seed =
    match load_function ~table ~expr ~pla ~pla_output ~blif ~signal ~family with
    | Error m -> `Error (false, m)
    | Ok tt ->
        let rng = Random.State.make [| seed |] in
        let name = Option.value family ~default:"function" in
        let report = Ovo_ordering.Quality.evaluate ~rng ~name tt in
        Format.printf "%a@." Ovo_ordering.Quality.pp_report report;
        `Ok ()
  in
  let term =
    Term.(
      ret
        (const run $ table_arg $ expr_arg $ pla_arg $ pla_output_arg
       $ blif_arg $ signal_arg $ family_arg $ seed_arg))
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Judge heuristic quality against the exact optimum (paper Sec. 1.1)")
    term

(* ------------------------------------------------------------------ *)
(* shared (multi-output)                                               *)

let shared_cmd =
  let run pla kind engine domains stats trace_file profile progress =
    let engine = resolve_engine engine domains in
    with_obs ~trace_file ~profile ~progress @@ fun trace ->
    match pla with
    | None -> `Error (false, "pass --pla FILE (all outputs are optimised jointly)")
    | Some path -> (
        try
          let p = Ovo_boolfun.Pla.of_file path in
          let outputs = Ovo_boolfun.Pla.tables p in
          let metrics = Ovo_core.Metrics.create () in
          let r =
            Ovo_core.Shared.minimize ~trace ~kind ~engine ~metrics outputs
          in
          Format.printf "outputs            : %d over %d inputs@."
            (Array.length outputs) (Ovo_boolfun.Pla.inputs p);
          Format.printf "shared minimum size: %d nodes (%d non-terminal)@."
            r.Ovo_core.Shared.size r.Ovo_core.Shared.mincost;
          let n = Array.length r.Ovo_core.Shared.order in
          Format.printf "order (root first) : %a@." pp_order
            (Array.init n (fun i -> r.Ovo_core.Shared.order.(n - 1 - i)));
          Array.iteri
            (fun j tt ->
              let alone = (Ovo_core.Fs.run ~kind tt).Ovo_core.Fs.mincost in
              Format.printf "  output %d alone would need %d nodes@." j alone)
            outputs;
          emit_stats stats metrics;
          `Ok ()
        with
        | Failure m | Invalid_argument m | Sys_error m -> `Error (false, m))
  in
  Cmd.v
    (Cmd.info "shared"
       ~doc:"Jointly optimise all outputs of a PLA as one shared diagram")
    Term.(ret (const run $ pla_arg $ kind_arg $ engine_arg $ domains_arg
               $ stats_arg $ trace_arg $ profile_arg $ progress_arg))

(* ------------------------------------------------------------------ *)
(* spectrum                                                            *)

let spectrum_cmd =
  let run table expr pla pla_output blif signal family kind =
    match load_function ~table ~expr ~pla ~pla_output ~blif ~signal ~family with
    | Error m -> `Error (false, m)
    | Ok tt -> (
        try
          let s = Ovo_ordering.Spectrum.compute ~kind tt in
          Format.printf "%a@." Ovo_ordering.Spectrum.pp s;
          Format.printf "histogram (cost: orderings):@.";
          List.iter
            (fun (cost, count) -> Format.printf "  %4d: %d@." cost count)
            s.Ovo_ordering.Spectrum.histogram;
          `Ok ()
        with Invalid_argument m -> `Error (false, m))
  in
  let term =
    Term.(
      ret
        (const run $ table_arg $ expr_arg $ pla_arg $ pla_output_arg
       $ blif_arg $ signal_arg $ family_arg $ kind_arg))
  in
  Cmd.v
    (Cmd.info "spectrum"
       ~doc:"Size distribution over all orderings (arity <= 8)")
    term

(* ------------------------------------------------------------------ *)
(* show (serialized diagrams)                                          *)

let show_cmd =
  let run path dot =
    try
      let ic = open_in path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      let d = Ovo_core.Diagram.deserialize text in
      Format.printf "%a@." Ovo_core.Diagram.pp d;
      Format.printf "level widths: %a@." pp_order
        (Ovo_core.Diagram.level_widths d);
      (match dot with
      | None -> ()
      | Some out ->
          let oc = open_out out in
          output_string oc (Ovo_core.Diagram.to_dot d);
          close_out oc;
          Format.printf "dot written : %s@." out);
      `Ok ()
    with
    | Failure m | Invalid_argument m -> `Error (false, m)
    | Sys_error m -> `Error (false, m)
  in
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"A diagram saved with $(b,optimize --save).")
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Inspect a saved diagram file")
    Term.(ret (const run $ path $ dot_arg))

(* ------------------------------------------------------------------ *)
(* serve / submit                                                      *)

let addr_conv =
  let parse s =
    match Ovo_serve.Protocol.addr_of_string s with
    | Ok a -> Ok a
    | Error (`Msg m) -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf a ->
      Format.pp_print_string ppf (Ovo_serve.Protocol.addr_to_string a))

let listen_arg =
  Arg.(
    value
    & opt addr_conv (Ovo_serve.Protocol.Unix_sock "ovo.sock")
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "Address to serve on: a Unix-socket path ($(b,unix:/tmp/ovo.sock) \
           or any string with a slash) or $(b,host:port) for TCP.  Default \
           $(b,ovo.sock) in the current directory.")

let serve_cmd =
  let run listen workers queue_cap cache_cap max_arity idle_timeout trace_file
      store no_store fsync mem_budget prune orderer access_log prom
      no_telemetry shard_id =
    let store_dir = if no_store then None else store in
    match
      match prom with
      | None -> Ok None
      | Some spec ->
          Result.map Option.some (Ovo_serve.Server.prom_sink_of_string spec)
    with
    | Error (`Msg m) -> `Error (false, "--prom: " ^ m)
    | Ok prom ->
        Ovo_serve.Server.run
          { Ovo_serve.Server.listen; workers; queue_cap; cache_cap; max_arity;
            idle_timeout; trace_file; store_dir; store_fsync = fsync;
            mem_budget; prune; orderer; access_log; prom;
            telemetry = not no_telemetry; shard_id };
        `Ok ()
  in
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N" ~doc:"Worker pool size.")
  in
  let queue_cap =
    Arg.(value & opt int 64
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:"Job-queue depth before requests are rejected with \
                   $(b,queue_full) + $(b,retry_after_ms).")
  in
  let cache_cap =
    Arg.(value & opt int 256
         & info [ "cache-cap" ] ~docv:"N"
             ~doc:"Result-cache entries (LRU eviction).")
  in
  let max_arity =
    Arg.(value & opt int 16
         & info [ "max-arity" ] ~docv:"N"
             ~doc:"Largest accepted arity; bigger requests get \
                   $(b,too_large).")
  in
  let idle_timeout =
    Arg.(value & opt (some float) None
         & info [ "idle-timeout" ] ~docv:"SECS"
             ~doc:"Shut down after this many seconds without a request \
                   (safety net for scripted runs).")
  in
  let store =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Durable result store: recover and warm-load the cache \
                   from $(i,DIR) at startup, persist every solved result \
                   to its write-ahead log (doc/persistence.md).")
  in
  let no_store =
    Arg.(value & flag
         & info [ "no-store" ]
             ~doc:"Run purely in memory even when $(b,--store) is given \
                   (the flag wins).")
  in
  let mem_budget =
    Arg.(value & opt (some mem_budget_conv) None
         & info [ "mem-budget" ] ~docv:"BYTES"
             ~doc:"Per-solve cap on resident DP layer bytes: big requests \
                   degrade to out-of-core (spilling to a scratch directory \
                   under the system temp dir) instead of growing the \
                   daemon's memory without bound.  Accepts k/M/G suffixes.")
  in
  let serve_prune =
    Arg.(value & flag
         & info [ "prune" ]
             ~doc:"Run every cache-miss solve as a sifting-seeded exact                    branch-and-bound: identical answers, fewer DP states,                    and deadline-cancelled replies carry the best-so-far                    bound pair.")
  in
  let orderer =
    let orderer_conv = Arg.enum [ ("exact", `Exact); ("scored", `Scored) ] in
    Arg.(value & opt orderer_conv `Exact
         & info [ "orderer" ] ~docv:"WHO"
             ~doc:"What answers a cache miss: $(b,exact) (default) runs \
                   the DP; $(b,scored) replies with the learned scorer's \
                   static ordering in heuristic time — a valid ordering \
                   and its achievable cost, not a proven optimum, and \
                   never cached.")
  in
  let access_log =
    Arg.(value & opt (some string) None
         & info [ "access-log" ] ~docv:"FILE"
             ~doc:"Append one CRC-framed structured entry per solve request \
                   (digest, outcome, queue wait, solve duration, cache hit, \
                   bound window).  A torn tail from a crash is recovered on \
                   reopen; dump with $(b,ovo access-log) $(i,FILE).")
  in
  let prom =
    Arg.(value & opt (some string) None
         & info [ "prom" ] ~docv:"FILE|ADDR"
             ~doc:"Export the Prometheus text exposition: a path (anything \
                   with a slash, or a bare filename) is atomically rewritten \
                   every second; $(b,host:port) serves it per scrape over \
                   HTTP.")
  in
  let no_telemetry =
    Arg.(value & flag
         & info [ "no-telemetry" ]
             ~doc:"Skip per-request instrument updates (histograms, windows, \
                   engine gauges) — for measuring their overhead; outcome \
                   counters and $(b,stats) stay on.")
  in
  let shard_id =
    Arg.(value & opt (some string) None
         & info [ "shard-id" ] ~docv:"NAME"
             ~doc:"Fleet identity of this daemon (set by $(b,ovo fleet up)): \
                   stamped on every access-log entry so merged fleet logs \
                   stay attributable.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the ordering service: a daemon with a bounded job queue, a \
          worker pool on the exact DP engine, a canonical result cache, \
          and an optional durable store (protocol in doc/service.md)")
    Term.(
      ret
        (const run $ listen_arg $ workers $ queue_cap $ cache_cap $ max_arity
       $ idle_timeout $ trace_arg $ store $ no_store $ fsync_arg
       $ mem_budget $ serve_prune $ orderer $ access_log $ prom
       $ no_telemetry $ shard_id))

let submit_cmd =
  let module P = Ovo_serve.Protocol in
  let run connect connect_timeout retries table expr pla pla_output blif
      signal family kind engine domains deadline_ms json ping stats_req
      metrics_req prom_req shutdown =
    let fail m = `Error (false, m) in
    let raw reply = print_endline (P.reply_to_line reply) in
    let request op =
      try
        Ovo_serve.Client.with_conn ?timeout:connect_timeout ~retries connect
        @@ fun c ->
        match Ovo_serve.Client.roundtrip c { P.id = 1; op } with
        | Error (`Msg m) -> fail m
        | Ok reply -> (
            match reply.P.body with
            | _ when json -> raw reply; `Ok ()
            | P.Pong -> print_endline "pong"; `Ok ()
            | P.Bye -> print_endline "bye"; `Ok ()
            | P.Ok_stats s ->
                print_endline (Ovo_obs.Json.to_string s); `Ok ()
            | P.Ok_metrics m ->
                print_endline (Ovo_obs.Json.to_string m); `Ok ()
            | P.Ok_prom text -> print_string text; `Ok ()
            | P.Ok_solve r ->
                Format.printf "digest            : %s@." r.P.digest;
                Format.printf "minimum size      : %d nodes (%d non-terminal)@."
                  r.P.size r.P.mincost;
                Format.printf "order (root first): %a@." pp_order r.P.order;
                Format.printf "level widths      : %a@." pp_order r.P.widths;
                Format.printf "cached            : %b@." r.P.cached;
                `Ok ()
            | P.Cancelled m ->
                Printf.eprintf "ovo: request cancelled: %s\n%!" m;
                exit 3
            | P.Error e ->
                fail
                  (Printf.sprintf "server error (%s): %s%s"
                     (P.error_code_to_string e.code) e.message
                     (match e.retry_after_ms with
                     | Some ms -> Printf.sprintf " (retry after %.0f ms)" ms
                     | None -> "")))
      with Unix.Unix_error (e, _, _) ->
        fail
          (Printf.sprintf "cannot reach server at %s: %s"
             (P.addr_to_string connect) (Unix.error_message e))
    in
    if ping then request P.Ping
    else if stats_req then request P.Stats
    else if metrics_req then request (P.Metrics P.Mjson)
    else if prom_req then request (P.Metrics P.Mprom)
    else if shutdown then request P.Shutdown
    else
      match load_function ~table ~expr ~pla ~pla_output ~blif ~signal ~family with
      | Error m -> fail m
      | Ok tt ->
          request
            (P.Solve
               { P.table = Ovo_boolfun.Truthtable.to_string tt; kind;
                 engine = resolve_engine engine domains; deadline_ms })
  in
  let connect =
    Arg.(
      value
      & opt addr_conv (Ovo_serve.Protocol.Unix_sock "ovo.sock")
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:"Server address (same forms as $(b,ovo serve --listen).)")
  in
  let connect_timeout =
    Arg.(value & opt (some float) None
         & info [ "connect-timeout" ] ~docv:"SECS"
             ~doc:"Bound each connection attempt (a TCP connect to a dead \
                   host can otherwise block for minutes).")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry a transient connection failure (refused, reset, \
                   missing socket, timeout) up to $(i,N) extra times with \
                   exponential backoff (50 ms doubling, capped at 2 s) — \
                   rides out a daemon or router restart.")
  in
  let deadline_ms =
    Arg.(value & opt (some float) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Per-job deadline; an expired job is aborted between DP \
                   layers and answered with $(b,cancelled) (exit code 3).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Print the raw NDJSON reply line.")
  in
  let ping =
    Arg.(value & flag & info [ "ping" ] ~doc:"Just check the server is up.")
  in
  let stats_req =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Fetch the server's stats report (uptime, queue depth, \
                   cache hit rate, per-endpoint latency percentiles).")
  in
  let metrics_req =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Fetch the server's aggregated telemetry as JSON (windowed \
                   rates, latency distributions, engine gauges; schema in \
                   doc/service.md).")
  in
  let prom_req =
    Arg.(value & flag
         & info [ "prom" ]
             ~doc:"Fetch the server's Prometheus text exposition.")
  in
  let shutdown =
    Arg.(value & flag
         & info [ "shutdown" ]
             ~doc:"Ask the server to drain its queue and exit.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a function to a running $(b,ovo serve) daemon"
       ~exits:
         (Cmd.Exit.info 3 ~doc:"the request was cancelled (deadline exceeded)"
         :: Cmd.Exit.defaults))
    Term.(
      ret
        (const run $ connect $ connect_timeout $ retries $ table_arg
       $ expr_arg $ pla_arg $ pla_output_arg $ blif_arg $ signal_arg
       $ family_arg $ kind_arg $ engine_arg $ domains_arg $ deadline_ms
       $ json $ ping $ stats_req $ metrics_req $ prom_req $ shutdown))

(* ------------------------------------------------------------------ *)
(* router / fleet / bench serve                                        *)

let shards_of_addrs addrs =
  List.map
    (fun a ->
      { Ovo_router.Shard_map.name = Ovo_serve.Protocol.addr_to_string a;
        addr = a })
    addrs

let router_cmd =
  let run listen shards replicas hash health_interval connect_timeout
      backoff_ms idle_timeout prom =
    match Ovo_router.Shard_map.strategy_of_string hash with
    | Error (`Msg m) -> `Error (false, "--hash: " ^ m)
    | Ok strategy -> (
        match
          match prom with
          | None -> Ok None
          | Some spec ->
              Result.map Option.some
                (Ovo_serve.Prom_export.sink_of_string spec)
        with
        | Error (`Msg m) -> `Error (false, "--prom: " ^ m)
        | Ok prom -> (
            try
              Ovo_router.Router.run
                { Ovo_router.Router.listen; shards = shards_of_addrs shards;
                  strategy; replicas; health_interval; connect_timeout;
                  backoff_ms; idle_timeout; prom };
              `Ok ()
            with Invalid_argument m -> `Error (false, m)))
  in
  let listen =
    Arg.(
      value
      & opt addr_conv (Ovo_serve.Protocol.Unix_sock "ovo-router.sock")
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:"Address to accept clients on (same forms as $(b,ovo serve \
                --listen)).  Default $(b,ovo-router.sock).")
  in
  let shards =
    Arg.(
      required
      & opt (some (list addr_conv)) None
      & info [ "shards" ] ~docv:"ADDR,ADDR,..."
          ~doc:"Comma-separated backend $(b,ovo serve) addresses.  The \
                address string doubles as the shard's stable identity in \
                hashing and metrics, so keep it the same across restarts.")
  in
  let replicas =
    Arg.(value & opt int 2
         & info [ "replicas" ] ~docv:"N"
             ~doc:"Owners per key (primary + failovers).  With 2, any \
                   single shard can die without a $(b,shard_down).")
  in
  let hash =
    Arg.(value & opt string "rendezvous"
         & info [ "hash" ] ~docv:"STRATEGY"
             ~doc:"Consistent-hash strategy: $(b,rendezvous) (default), \
                   $(b,ring), or $(b,ring:VNODES).")
  in
  let health_interval =
    Arg.(value & opt float 2.0
         & info [ "health-interval" ] ~docv:"SECS"
             ~doc:"Seconds between health-probe sweeps (the data path \
                   also marks shards down/up on its own).")
  in
  let connect_timeout =
    Arg.(value & opt float 1.0
         & info [ "connect-timeout" ] ~docv:"SECS"
             ~doc:"Bound on each shard connection attempt.")
  in
  let backoff_ms =
    Arg.(value & opt float 50.
         & info [ "backoff-ms" ] ~docv:"MS"
             ~doc:"Failover backoff before trying the next replica \
                   (doubles per attempt, capped at 2 s).")
  in
  let idle_timeout =
    Arg.(value & opt (some float) None
         & info [ "idle-timeout" ] ~docv:"SECS"
             ~doc:"Shut down after this many seconds without a request.")
  in
  let prom =
    Arg.(value & opt (some string) None
         & info [ "prom" ] ~docv:"FILE|ADDR"
             ~doc:"Router-level Prometheus exposition (same forms as \
                   $(b,ovo serve --prom)): per-shard request counters, \
                   proxy latency histograms, health gauges.")
  in
  Cmd.v
    (Cmd.info "router"
       ~doc:
         "Route the NDJSON solve protocol across a fleet of $(b,ovo serve) \
          shards: consistent-hash placement on the canonical table digest, \
          health-checked failover, scatter/gather $(b,solve_many) \
          (doc/fleet.md)")
    Term.(
      ret
        (const run $ listen $ shards $ replicas $ hash $ health_interval
       $ connect_timeout $ backoff_ms $ idle_timeout $ prom))

(* -- fleet: local process supervision over ovo serve + ovo router -- *)

let fleet_state_file dir = Filename.concat dir "fleet.json"

let fleet_read_state dir =
  let path = fleet_state_file dir in
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no fleet state at %s (is the fleet up?)" path)
  else
    let ic = open_in path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let module J = Ovo_obs.Json in
    match J.parse text with
    | Error m -> Error (Printf.sprintf "%s: %s" path m)
    | Ok j ->
        let shard_of sj =
          match
            ( Option.bind (J.member "name" sj) J.to_string_opt,
              Option.bind (J.member "addr" sj) J.to_string_opt,
              Option.bind (J.member "pid" sj) J.to_int_opt )
          with
          | Some name, Some addr, Some pid -> Some (name, addr, pid)
          | _ -> None
        in
        let shards =
          Option.value
            (Option.bind (J.member "shards" j) J.to_list_opt)
            ~default:[]
          |> List.filter_map shard_of
        in
        let router =
          Option.bind (J.member "router" j) (fun rj ->
              match
                ( Option.bind (J.member "addr" rj) J.to_string_opt,
                  Option.bind (J.member "pid" rj) J.to_int_opt )
              with
              | Some addr, Some pid -> Some (addr, pid)
              | _ -> None)
        in
        Ok (shards, router)

let fleet_write_state dir ~shards ~router =
  let module J = Ovo_obs.Json in
  let sj (name, addr, pid) =
    J.Obj
      [ ("name", J.String name); ("addr", J.String addr);
        ("pid", J.Int pid) ]
  in
  let j =
    J.Obj
      ([ ("shards", J.List (List.map sj shards)) ]
      @
      match router with
      | None -> []
      | Some (addr, pid) ->
          [ ("router", J.Obj [ ("addr", J.String addr); ("pid", J.Int pid) ])
          ])
  in
  let oc = open_out (fleet_state_file dir) in
  output_string oc (J.to_string j);
  output_char oc '\n';
  close_out oc

(* Spawn one daemon process (ovo itself, re-invoked) with stdout and
   stderr appended to a per-process log file. *)
let spawn_daemon ~log args =
  let fd =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let pid =
    Unix.create_process Sys.executable_name
      (Array.of_list (Sys.executable_name :: args))
      Unix.stdin fd fd
  in
  Unix.close fd;
  pid

let ping_addr ?(timeout = 1.0) addr =
  let module P = Ovo_serve.Protocol in
  match Ovo_serve.Client.connect ~timeout addr with
  | exception Unix.Unix_error _ -> false
  | c ->
      Fun.protect
        ~finally:(fun () -> Ovo_serve.Client.close c)
        (fun () ->
          match Ovo_serve.Client.roundtrip c { P.id = 0; op = P.Ping } with
          | Ok { P.body = P.Pong; _ } -> true
          | Ok _ | Error _ -> false)

let wait_ready ?(timeout = 15.) addr =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if ping_addr ~timeout:1.0 addr then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.1;
      go ()
    end
  in
  go ()

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error _ -> true

let fleet_up_cmd =
  let run n dir workers access_log router replicas hash =
    let fail m = `Error (false, m) in
    if n < 1 then fail "need at least one shard"
    else if Sys.file_exists (fleet_state_file dir) then
      fail
        (Printf.sprintf
           "%s exists — a fleet may already be up; run `ovo fleet down \
            --dir %s` first"
           (fleet_state_file dir) dir)
    else begin
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let shard i =
        let name = Printf.sprintf "shard-%d" i in
        let sock = Filename.concat dir (name ^ ".sock") in
        let args =
          [ "serve"; "--listen"; sock; "--shard-id"; name; "--workers";
            string_of_int workers ]
          @
          if access_log then
            [ "--access-log"; Filename.concat dir (name ^ ".alog") ]
          else []
        in
        let pid =
          spawn_daemon ~log:(Filename.concat dir (name ^ ".log")) args
        in
        (name, sock, pid)
      in
      let shards = List.init n shard in
      let dead =
        List.filter
          (fun (_, sock, _) ->
            not (wait_ready (Ovo_serve.Protocol.Unix_sock sock)))
          shards
      in
      if dead <> [] then begin
        List.iter
          (fun (_, _, pid) ->
            try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
          shards;
        fail
          (Printf.sprintf "shard(s) %s never became ready (see logs in %s)"
             (String.concat ", " (List.map (fun (n, _, _) -> n) dead))
             dir)
      end
      else begin
        let router_state =
          if not router then Ok None
          else begin
            let sock = Filename.concat dir "router.sock" in
            let args =
              [ "router"; "--listen"; sock; "--shards";
                String.concat "," (List.map (fun (_, s, _) -> s) shards);
                "--replicas"; string_of_int replicas; "--hash"; hash ]
            in
            let pid =
              spawn_daemon ~log:(Filename.concat dir "router.log") args
            in
            if wait_ready (Ovo_serve.Protocol.Unix_sock sock) then
              Ok (Some (sock, pid))
            else Error (sock, pid)
          end
        in
        match router_state with
        | Error (_, rpid) ->
            List.iter
              (fun (_, _, pid) ->
                try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
              ((("", "", rpid) :: shards));
            fail
              (Printf.sprintf "router never became ready (see %s)"
                 (Filename.concat dir "router.log"))
        | Ok router ->
            fleet_write_state dir
              ~shards:(List.map (fun (n, s, p) -> (n, "unix:" ^ s, p)) shards)
              ~router:(Option.map (fun (s, p) -> ("unix:" ^ s, p)) router);
            List.iter
              (fun (name, sock, pid) ->
                Printf.printf "%-9s pid %-7d %s\n" name pid sock)
              shards;
            (match router with
            | Some (sock, pid) ->
                Printf.printf "%-9s pid %-7d %s\n" "router" pid sock
            | None -> ());
            Printf.printf "state     %s\n" (fleet_state_file dir);
            `Ok ()
      end
    end
  in
  let n =
    Arg.(required & pos 0 (some int) None
         & info [] ~docv:"N" ~doc:"Number of shard daemons to start.")
  in
  let dir =
    Arg.(value & opt string "ovo-fleet"
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"Fleet directory: sockets, per-process logs, and \
                   $(b,fleet.json) state live here.")
  in
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N" ~doc:"Worker threads per shard.")
  in
  let access_log =
    Arg.(value & flag
         & info [ "access-log" ]
             ~doc:"Give each shard a structured access log in the fleet \
                   directory (entries carry the shard's identity).")
  in
  let router =
    Arg.(value & flag
         & info [ "router" ]
             ~doc:"Also start $(b,ovo router) on $(i,DIR)/router.sock in \
                   front of the shards.")
  in
  let replicas =
    Arg.(value & opt int 2
         & info [ "replicas" ] ~docv:"N"
             ~doc:"Router replicas per key (with $(b,--router)).")
  in
  let hash =
    Arg.(value & opt string "rendezvous"
         & info [ "hash" ] ~docv:"STRATEGY"
             ~doc:"Router hash strategy (with $(b,--router)).")
  in
  Cmd.v
    (Cmd.info "up"
       ~doc:"Start $(i,N) local shard daemons (and optionally a router) \
             under $(i,DIR)")
    Term.(
      ret
        (const run $ n $ dir $ workers $ access_log $ router $ replicas
       $ hash))

let fleet_down_cmd =
  let run dir =
    match fleet_read_state dir with
    | Error m -> `Error (false, m)
    | Ok (shards, router) ->
        let procs =
          (match router with
          | Some (_, pid) -> [ ("router", pid) ]
          | None -> [])
          @ List.map (fun (name, _, pid) -> (name, pid)) shards
        in
        List.iter
          (fun (_, pid) ->
            try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
          procs;
        (* graceful drain window, then escalate *)
        let deadline = Unix.gettimeofday () +. 5. in
        let rec linger () =
          if List.exists (fun (_, pid) -> pid_alive pid) procs then
            if Unix.gettimeofday () > deadline then
              List.iter
                (fun (_, pid) ->
                  if pid_alive pid then
                    try Unix.kill pid Sys.sigkill
                    with Unix.Unix_error _ -> ())
                procs
            else begin
              Unix.sleepf 0.1;
              linger ()
            end
        in
        linger ();
        List.iter
          (fun (name, pid) ->
            Printf.printf "%-9s pid %-7d stopped\n" name pid)
          procs;
        Sys.remove (fleet_state_file dir);
        `Ok ()
  in
  let dir =
    Arg.(value & opt string "ovo-fleet"
         & info [ "dir" ] ~docv:"DIR" ~doc:"Fleet directory.")
  in
  Cmd.v
    (Cmd.info "down"
       ~doc:"Stop every process recorded in $(i,DIR)/fleet.json \
             (SIGTERM, then SIGKILL after 5 s)")
    Term.(ret (const run $ dir))

let fleet_status_cmd =
  let run dir =
    match fleet_read_state dir with
    | Error m -> `Error (false, m)
    | Ok (shards, router) ->
        let row name addr pid =
          let state =
            if not (pid_alive pid) then "dead"
            else
              match Ovo_serve.Protocol.addr_of_string addr with
              | Ok a -> if ping_addr a then "up" else "unresponsive"
              | Error _ -> "bad-addr"
          in
          Printf.printf "%-9s pid %-7d %-12s %s\n" name pid state addr
        in
        (match router with
        | Some (addr, pid) -> row "router" addr pid
        | None -> ());
        List.iter (fun (name, addr, pid) -> row name addr pid) shards;
        `Ok ()
  in
  let dir =
    Arg.(value & opt string "ovo-fleet"
         & info [ "dir" ] ~docv:"DIR" ~doc:"Fleet directory.")
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Ping every process in $(i,DIR)/fleet.json")
    Term.(ret (const run $ dir))

let fleet_cmd =
  Cmd.group
    (Cmd.info "fleet"
       ~doc:
         "Supervise a local serving fleet: $(b,up) starts $(i,N) shard \
          daemons (plus an optional router), $(b,down) stops them, \
          $(b,status) pings them (doc/fleet.md)")
    [ fleet_up_cmd; fleet_down_cmd; fleet_status_cmd ]

(* -- bench serve: measure an endpoint (daemon or router) under load -- *)

(* Per-request outcome, filled at the request's workload index by
   whichever client thread carried it (indices are disjoint, so the
   array needs no lock). *)
type load_outcome =
  | L_ok of { digest : string; mincost : int; size : int; cached : bool }
  | L_cancelled
  | L_shard_down
  | L_error

type load_run = {
  duration_s : float;
  outcomes : load_outcome option array;
  lat_ms : float array;
}

let bench_gen_tables ~seed ~tables ~arity =
  let st = Random.State.make [| seed; arity |] in
  List.init tables (fun _ ->
      String.init (1 lsl arity) (fun _ ->
          if Random.State.bool st then '1' else '0'))

let bench_workload ~seed ~tables ~arity ~repeat =
  let tabs = Array.of_list (bench_gen_tables ~seed ~tables ~arity) in
  let work =
    Array.init (tables * repeat) (fun i -> tabs.(i mod tables))
  in
  (* deterministic shuffle so repeats interleave instead of clumping *)
  let st = Random.State.make [| seed; 0x5eed |] in
  for i = Array.length work - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = work.(i) in
    work.(i) <- work.(j);
    work.(j) <- tmp
  done;
  work

(* Drive [work] through [addr] with [clients] threads.  [batch] > 1
   sends every other chunk as one [solve_many] (the rest as single
   solves), so the endpoint sees mixed traffic. *)
let bench_run_load ~addr ~clients ~batch work =
  let module P = Ovo_serve.Protocol in
  let module C = Ovo_serve.Client in
  let n = Array.length work in
  let outcomes = Array.make n None in
  let lat_ms = Array.make n 0. in
  let next = Atomic.make 0 in
  let chunk = max 1 batch in
  let solve table =
    P.
      { table; kind = Ovo_core.Compact.Bdd; engine = Ovo_core.Engine.Seq;
        deadline_ms = None }
  in
  let note idx body ms =
    lat_ms.(idx) <- ms;
    outcomes.(idx) <-
      Some
        (match body with
        | P.Ok_solve r ->
            L_ok
              { digest = r.P.digest; mincost = r.P.mincost; size = r.P.size;
                cached = r.P.cached }
        | P.Cancelled _ -> L_cancelled
        | P.Error { code = P.Shard_down; _ } -> L_shard_down
        | _ -> L_error)
  in
  let client_loop () =
    let c = C.connect_retry ~timeout:2.0 ~retries:20 addr in
    Fun.protect
      ~finally:(fun () -> C.close c)
      (fun () ->
        let rec go () =
          let lo = Atomic.fetch_and_add next chunk in
          if lo < n then begin
            let hi = min n (lo + chunk) in
            let started = Unix.gettimeofday () in
            let ms () = (Unix.gettimeofday () -. started) *. 1000. in
            (if chunk > 1 && lo / chunk mod 2 = 0 then begin
               (* one solve_many for the whole chunk *)
               let items =
                 List.init (hi - lo) (fun k -> solve work.(lo + k))
               in
               match C.send c { P.id = lo; op = P.Solve_many items } with
               | exception Sys_error _ ->
                   for k = lo to hi - 1 do
                     note k (P.Error
                               { code = P.Internal; message = "send failed";
                                 retry_after_ms = None })
                       (ms ())
                   done
               | () ->
                   for _ = lo to hi - 1 do
                     match C.recv c with
                     | Ok { P.item = Some j; body; _ } when lo + j < hi ->
                         note (lo + j) body (ms ())
                     | Ok _ | Error (`Msg _) -> ()
                   done
             end
             else
               for k = lo to hi - 1 do
                 match C.roundtrip c { P.id = k; op = P.Solve (solve work.(k)) }
                 with
                 | Ok { P.body; _ } -> note k body (ms ())
                 | Error (`Msg _) ->
                     note k
                       (P.Error
                          { code = P.Internal; message = "transport";
                            retry_after_ms = None })
                       (ms ())
               done);
            go ()
          end
        in
        go ())
  in
  let started = Unix.gettimeofday () in
  let threads =
    List.init (max 1 clients) (fun _ -> Thread.create client_loop ())
  in
  List.iter Thread.join threads;
  { duration_s = Unix.gettimeofday () -. started; outcomes; lat_ms }

let bench_percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (float_of_int (n - 1) *. q +. 0.5)))

(* Wrong answers: two replies for the same digest must agree on
   (mincost, size) — the digest is the canonical key, so disagreement
   means a shard returned a non-optimal or corrupted result. *)
let bench_aggregate (r : load_run) =
  let ok = ref 0 and cached = ref 0 and cancelled = ref 0 in
  let shard_down = ref 0 and errors = ref 0 and wrong = ref 0 in
  let by_digest = Hashtbl.create 64 in
  Array.iter
    (fun o ->
      match o with
      | None -> incr errors  (* never answered: a lost reply is an error *)
      | Some (L_ok { digest; mincost; size; cached = c }) -> (
          incr ok;
          if c then incr cached;
          match Hashtbl.find_opt by_digest digest with
          | None -> Hashtbl.add by_digest digest (mincost, size)
          | Some (m, s) -> if (m, s) <> (mincost, size) then incr wrong)
      | Some L_cancelled -> incr cancelled
      | Some L_shard_down -> incr shard_down
      | Some L_error -> incr errors)
    r.outcomes;
  let sorted = Array.copy r.lat_ms in
  Array.sort compare sorted;
  let module J = Ovo_obs.Json in
  ( !wrong,
    J.Obj
      [ ("requests", J.Int (Array.length r.outcomes));
        ("ok", J.Int !ok);
        ("cached", J.Int !cached);
        ("cancelled", J.Int !cancelled);
        ("shard_down", J.Int !shard_down);
        ("errors", J.Int !errors);
        ("wrong", J.Int !wrong);
        ("duration_s", J.Float r.duration_s);
        ( "rps",
          J.Float
            (if r.duration_s > 0. then
               float_of_int (Array.length r.outcomes) /. r.duration_s
             else 0.) );
        ("p50_ms", J.Float (bench_percentile sorted 0.5));
        ("p99_ms", J.Float (bench_percentile sorted 0.99)) ]
  )

(* Answers must be bit-identical between two runs of the same workload
   (single daemon vs fleet): compare per-index. *)
let bench_cross_check a b =
  let wrong = ref 0 in
  Array.iteri
    (fun i oa ->
      match (oa, b.outcomes.(i)) with
      | Some (L_ok ra), Some (L_ok rb) ->
          if
            (ra.digest, ra.mincost, ra.size)
            <> (rb.digest, rb.mincost, rb.size)
          then incr wrong
      | _ -> ())
    a.outcomes;
  !wrong

let bench_serve_cmd =
  let module P = Ovo_serve.Protocol in
  let module J = Ovo_obs.Json in
  let run connect spawn clients tables arity repeat batch seed workers
      replicas out =
    let fail m = `Error (false, m) in
    let work = bench_workload ~seed ~tables ~arity ~repeat in
    let emit j =
      (match out with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          output_string oc (J.to_string j);
          output_char oc '\n';
          close_out oc;
          Printf.eprintf "[ovo-bench] wrote %s\n%!" path);
      print_endline (J.to_string j)
    in
    match spawn with
    | None -> (
        (* measure an endpoint somebody else runs (daemon or router) *)
        match bench_run_load ~addr:connect ~clients ~batch work with
        | exception Unix.Unix_error (e, _, _) ->
            fail
              (Printf.sprintf "cannot reach %s: %s" (P.addr_to_string connect)
                 (Unix.error_message e))
        | r ->
            let _, agg = bench_aggregate r in
            emit
              (J.Obj
                 [ ("benchmark", J.String "serve_load");
                   ("addr", J.String (P.addr_to_string connect));
                   ("clients", J.Int clients);
                   ("tables", J.Int tables);
                   ("arity", J.Int arity);
                   ("repeat", J.Int repeat);
                   ("batch", J.Int batch);
                   ("load", agg) ]);
            `Ok ())
    | Some n when n < 1 -> fail "--spawn needs at least 1 shard"
    | Some n ->
        (* spawn a single-daemon baseline, then an n-shard fleet behind
           a router, and run the identical workload against both *)
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "ovo-bench-%d" (Unix.getpid ()))
        in
        (try Unix.mkdir dir 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let serve_args name sock =
          [ "serve"; "--listen"; sock; "--shard-id"; name; "--workers";
            string_of_int workers ]
        in
        let stop_addr addr =
          try
            Ovo_serve.Client.with_conn ~timeout:2.0 addr @@ fun c ->
            ignore (Ovo_serve.Client.roundtrip c { P.id = 0; op = P.Shutdown })
          with Unix.Unix_error _ | Sys_error _ -> ()
        in
        let reap pid = try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> () in
        (* --- single-node baseline --- *)
        let ssock = Filename.concat dir "single.sock" in
        let spid =
          spawn_daemon ~log:(Filename.concat dir "single.log")
            (serve_args "single" ssock)
        in
        if not (wait_ready (P.Unix_sock ssock)) then begin
          (try Unix.kill spid Sys.sigkill with Unix.Unix_error _ -> ());
          fail (Printf.sprintf "baseline daemon never ready (logs in %s)" dir)
        end
        else begin
          let single = bench_run_load ~addr:(P.Unix_sock ssock) ~clients ~batch work in
          stop_addr (P.Unix_sock ssock);
          reap spid;
          (* --- fleet behind a router --- *)
          let shards =
            List.init n (fun i ->
                let name = Printf.sprintf "shard-%d" i in
                let sock = Filename.concat dir (name ^ ".sock") in
                let pid =
                  spawn_daemon ~log:(Filename.concat dir (name ^ ".log"))
                    (serve_args name sock)
                in
                (name, sock, pid))
          in
          let rsock = Filename.concat dir "router.sock" in
          let rpid =
            spawn_daemon ~log:(Filename.concat dir "router.log")
              [ "router"; "--listen"; rsock; "--shards";
                String.concat "," (List.map (fun (_, s, _) -> s) shards);
                "--replicas"; string_of_int replicas ]
          in
          let ready =
            List.for_all
              (fun (_, s, _) -> wait_ready (P.Unix_sock s))
              shards
            && wait_ready (P.Unix_sock rsock)
          in
          if not ready then begin
            List.iter
              (fun (_, _, pid) ->
                try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
              (("", "", rpid) :: shards);
            fail (Printf.sprintf "fleet never ready (logs in %s)" dir)
          end
          else begin
            let fleet = bench_run_load ~addr:(P.Unix_sock rsock) ~clients ~batch work in
            stop_addr (P.Unix_sock rsock);
            List.iter (fun (_, s, _) -> stop_addr (P.Unix_sock s)) shards;
            reap rpid;
            List.iter (fun (_, _, pid) -> reap pid) shards;
            let w1, single_j = bench_aggregate single in
            let w2, fleet_j = bench_aggregate fleet in
            let wrong = w1 + w2 + bench_cross_check single fleet in
            let rps j =
              match Option.bind (J.find_path [ "rps" ] j) J.to_float_opt with
              | Some v -> v
              | None -> 0.
            in
            let speedup =
              if rps single_j > 0. then rps fleet_j /. rps single_j else 0.
            in
            emit
              (J.Obj
                 [ ("benchmark", J.String "fleet");
                   ("shards", J.Int n);
                   ("replicas", J.Int replicas);
                   ("clients", J.Int clients);
                   ("tables", J.Int tables);
                   ("arity", J.Int arity);
                   ("repeat", J.Int repeat);
                   ("batch", J.Int batch);
                   ("workers_per_shard", J.Int workers);
                   ("single", single_j);
                   ("fleet", fleet_j);
                   ("speedup", J.Float speedup);
                   ("wrong", J.Int wrong) ]);
            `Ok ()
          end
        end
  in
  let connect =
    Arg.(
      value
      & opt addr_conv (Ovo_serve.Protocol.Unix_sock "ovo.sock")
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:"Endpoint to load (a daemon or a router); ignored with \
                $(b,--spawn).")
  in
  let spawn =
    Arg.(value & opt (some int) None
         & info [ "spawn" ] ~docv:"N"
             ~doc:"Self-contained comparison: spawn a 1-daemon baseline, \
                   then $(i,N) shard daemons behind a router, run the same \
                   workload against both and report the speedup.")
  in
  let clients =
    Arg.(value & opt int 4
         & info [ "clients" ] ~docv:"K"
             ~doc:"Concurrent client connections driving load.")
  in
  let tables =
    Arg.(value & opt int 40
         & info [ "tables" ] ~docv:"M" ~doc:"Distinct random tables.")
  in
  let arity =
    Arg.(value & opt int 10
         & info [ "arity" ] ~docv:"N" ~doc:"Arity of the random tables.")
  in
  let repeat =
    Arg.(value & opt int 2
         & info [ "repeat" ] ~docv:"R"
             ~doc:"Times each table is requested (repeats exercise the \
                   result cache).")
  in
  let batch =
    Arg.(value & opt int 8
         & info [ "batch" ] ~docv:"B"
             ~doc:"Chunk size: every other chunk goes as one \
                   $(b,solve_many), the rest as single solves (mixed \
                   traffic).  0 or 1 sends singles only.")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"S" ~doc:"Workload PRNG seed.")
  in
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N"
             ~doc:"Workers per spawned daemon (with $(b,--spawn)).")
  in
  let replicas =
    Arg.(value & opt int 2
         & info [ "replicas" ] ~docv:"N"
             ~doc:"Router replicas per key (with $(b,--spawn)).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Also write the JSON report to $(i,FILE) (the CI gate \
                   reads $(b,BENCH_fleet.json)).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Drive concurrent solve / $(b,solve_many) load at a daemon or \
          router and report throughput and latency quantiles; with \
          $(b,--spawn) $(i,N), benchmark an $(i,N)-shard fleet against a \
          single-daemon baseline on the identical workload")
    Term.(
      ret
        (const run $ connect $ spawn $ clients $ tables $ arity $ repeat
       $ batch $ seed $ workers $ replicas $ out))

let bench_cmd =
  Cmd.group
    (Cmd.info "bench"
       ~doc:"Load-driving benchmark clients (doc/benchmarks.md)")
    [ bench_serve_cmd ]

(* ------------------------------------------------------------------ *)
(* top / access-log                                                    *)

let top_cmd =
  let module P = Ovo_serve.Protocol in
  let module J = Ovo_obs.Json in
  (* one dashboard frame, rendered from the metrics-op JSON *)
  let render addr m =
    let buf = Buffer.create 1024 in
    let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let f path = Option.bind (J.find_path path m) J.to_float_opt in
    let i path = Option.bind (J.find_path path m) J.to_int_opt in
    let f0 path = Option.value (f path) ~default:0. in
    let i0 path = Option.value (i path) ~default:0 in
    bpf "ovo top — %s — uptime %.1fs\n" (P.addr_to_string addr)
      (f0 [ "uptime_s" ]);
    bpf "queue    %d/%d    workers %d/%d busy\n"
      (i0 [ "queue"; "depth" ]) (i0 [ "queue"; "cap" ])
      (i0 [ "workers"; "busy" ]) (i0 [ "workers"; "total" ]);
    bpf "rates    %.1f rps (1s)  %.1f (10s)  %.1f (60s)   %d requests/60s%s\n"
      (f0 [ "windows"; "rps_1s" ]) (f0 [ "windows"; "rps_10s" ])
      (f0 [ "windows"; "rps_60s" ])
      (i0 [ "windows"; "requests_60s" ])
      (match f [ "windows"; "cache_hit_rate_60s" ] with
      | None -> ""
      | Some r -> Printf.sprintf "  cache hit %.0f%%" (100. *. r));
    let dist label path =
      match i (path @ [ "count" ]) with
      | None | Some 0 -> ()
      | Some count ->
          bpf "%-8s p50 %.2fms  p90 %.2f  p99 %.2f  max %.2f  (n=%d)\n" label
            (f0 (path @ [ "p50_ms" ]))
            (f0 (path @ [ "p90_ms" ]))
            (f0 (path @ [ "p99_ms" ]))
            (f0 (path @ [ "max_ms" ]))
            count
    in
    dist "solve" [ "latency_ms"; "solve" ];
    dist "qwait" [ "latency_ms"; "queue_wait" ];
    bpf "outcomes ok %d  cached %d  cancelled %d  rejected %d  errors %d\n"
      (i0 [ "outcomes"; "ok" ]) (i0 [ "outcomes"; "cached" ])
      (i0 [ "outcomes"; "cancelled" ]) (i0 [ "outcomes"; "rejected" ])
      (i0 [ "outcomes"; "errors" ]);
    bpf "engine   layer %d (%d states)  pruned %d  spilled %d B\n"
      (i0 [ "engine"; "layer" ]) (i0 [ "engine"; "layer_states" ])
      (i0 [ "engine"; "states_pruned_total" ])
      (i0 [ "engine"; "spill_bytes_total" ]);
    bpf "gc       heap %d words  majors %d  rss %d B\n"
      (i0 [ "gc"; "heap_words" ]) (i0 [ "gc"; "major_collections" ])
      (i0 [ "gc"; "resident_bytes" ]);
    Buffer.contents buf
  in
  let run connect interval once =
    let fetch () =
      Ovo_serve.Client.with_conn connect @@ fun c ->
      match Ovo_serve.Client.roundtrip c { P.id = 1; op = P.Metrics P.Mjson } with
      | Ok { P.body = P.Ok_metrics m; _ } -> Ok m
      | Ok { P.body = P.Error { message; _ }; _ } -> Error message
      | Ok _ -> Error "unexpected reply to metrics op"
      | Error (`Msg m) -> Error m
    in
    try
      if once then
        match fetch () with
        | Ok m -> print_string (render connect m); `Ok ()
        | Error m -> `Error (false, m)
      else
        let rec loop () =
          (match fetch () with
          | Ok m ->
              (* clear screen + home, like top(1) *)
              print_string "\027[2J\027[H";
              print_string (render connect m);
              flush stdout
          | Error m -> Printf.eprintf "ovo top: %s\n%!" m);
          Unix.sleepf interval;
          loop ()
        in
        loop ()
    with Unix.Unix_error (e, _, _) ->
      `Error
        ( false,
          Printf.sprintf "cannot reach server at %s: %s"
            (P.addr_to_string connect) (Unix.error_message e) )
  in
  let connect =
    Arg.(
      value
      & opt addr_conv (Ovo_serve.Protocol.Unix_sock "ovo.sock")
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:"Server address (same forms as $(b,ovo serve --listen).)")
  in
  let interval =
    Arg.(value & opt float 1.
         & info [ "interval" ] ~docv:"SECS" ~doc:"Refresh period.")
  in
  let once =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Print a single frame and exit (no screen clearing) — \
                   scriptable.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal dashboard for a running $(b,ovo serve) daemon: \
          queue depth, worker occupancy, windowed request rates, latency \
          quantiles, engine progress")
    Term.(ret (const run $ connect $ interval $ once))

let access_log_cmd =
  let run path json =
    match Ovo_serve.Access_log.read path with
    | Error m -> `Error (false, m)
    | Ok (entries, recovery) ->
        List.iter
          (fun (e : Ovo_serve.Access_log.entry) ->
            if json then
              print_endline
                (Ovo_obs.Json.to_string (Ovo_serve.Access_log.entry_to_json e))
            else
              Printf.printf
                "%.3f #%d %-9s %s cached=%b queue=%.2fms solve=%.2fms \
                 bounds=[%d,%d]%s%s\n"
                e.Ovo_serve.Access_log.at e.Ovo_serve.Access_log.req_id
                e.Ovo_serve.Access_log.outcome
                (if e.Ovo_serve.Access_log.digest = "" then "-"
                 else e.Ovo_serve.Access_log.digest)
                e.Ovo_serve.Access_log.cached e.Ovo_serve.Access_log.queue_ms
                e.Ovo_serve.Access_log.solve_ms e.Ovo_serve.Access_log.lower
                e.Ovo_serve.Access_log.upper
                (* only fleet shards stamp an identity; plain-daemon
                   lines keep their exact pre-fleet shape *)
                (if e.Ovo_serve.Access_log.shard = "" then ""
                 else " shard=" ^ e.Ovo_serve.Access_log.shard)
                (if e.Ovo_serve.Access_log.detail = "" then ""
                 else " " ^ e.Ovo_serve.Access_log.detail))
          entries;
        if recovery.Ovo_store.Rlog.rec_discarded_bytes > 0 then
          Printf.eprintf "[ovo] %d trailing byte%s discarded (torn tail)\n%!"
            recovery.Ovo_store.Rlog.rec_discarded_bytes
            (if recovery.Ovo_store.Rlog.rec_discarded_bytes = 1 then ""
             else "s");
        `Ok ()
  in
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"An access log written by $(b,ovo serve --access-log).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"One JSON object per entry (NDJSON).")
  in
  Cmd.v
    (Cmd.info "access-log"
       ~doc:"Dump a structured access log written by the serving daemon")
    Term.(ret (const run $ path $ json))

(* ------------------------------------------------------------------ *)
(* families                                                            *)

let families_cmd =
  let run max_arity exact =
    List.iter
      (fun (name, tt) ->
        let n = Ovo_boolfun.Truthtable.arity tt in
        if exact && n <= 12 then
          let r = Ovo_core.Fs.run tt in
          Format.printf "%-16s n=%-2d optimal-size=%d@." name n r.Ovo_core.Fs.size
        else Format.printf "%-16s n=%-2d@." name n)
      (Ovo_boolfun.Families.catalogue ~max_arity)
  in
  let max_arity =
    Arg.(value & opt int 12 & info [ "max-arity" ] ~doc:"Largest arity to list.")
  in
  let exact =
    Arg.(value & flag & info [ "exact" ] ~doc:"Also compute optimal sizes.")
  in
  Cmd.v
    (Cmd.info "families" ~doc:"List the built-in benchmark function families")
    Term.(const run $ max_arity $ exact)

(* ------------------------------------------------------------------ *)
(* learn: dataset / eval-orderers / eval-order (doc/learning.md)       *)

let dataset_families_arg =
  Arg.(
    value
    & opt (some (list string)) None
    & info [ "families" ] ~docv:"NAME,NAME,.."
        ~doc:
          "Restrict the corpus to these catalogue families (default: all; \
           list them with $(b,ovo families)).")

let dataset_cmd =
  let run families n_max random seed kind model out store trace_file profile
      progress =
    with_obs ~trace_file ~profile ~progress @@ fun trace ->
    try
      let open Ovo_learn.Dataset in
      let weights = load_weights model in
      let spec = { families; n_max; random; seed; kind } in
      let on_row (r : row) =
        Format.printf "  %-16s n=%d opt=%-4d scored=%-4d sifting=%d@."
          r.name r.n r.costs.c_opt r.costs.c_scored r.costs.c_sifting
      in
      let rows = generate ~trace ~weights ?store ~on_row spec in
      let oc = open_out out in
      output_string oc (to_ndjson rows);
      close_out oc;
      Format.printf "wrote %d rows: %s@." (List.length rows) out;
      `Ok ()
    with Failure m | Invalid_argument m | Sys_error m -> `Error (false, m)
  in
  let n_max =
    Arg.(value & opt int 12
         & info [ "n-max" ] ~docv:"N"
             ~doc:"Instantiation cap for scalable families (and the arity \
                   cap for $(b,--random) functions).")
  in
  let random =
    Arg.(value & opt int 0
         & info [ "random" ] ~docv:"N"
             ~doc:"Append $(i,N) seeded random functions to the corpus.")
  in
  let seed =
    Arg.(value & opt int 1987
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Corpus seed: every random choice (random functions, \
                   sampled permutations) derives from it, so the same spec \
                   always writes the byte-identical file.")
  in
  let out =
    Arg.(value & opt string "dataset.ndjson"
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Output corpus, one JSON row per line (doc/learning.md).")
  in
  let store =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Resumable generation: completed rows are appended to a \
                   CRC-framed log keyed by the spec, so an interrupted run \
                   redoes only the in-flight row; the final corpus is \
                   byte-identical either way.")
  in
  Cmd.v
    (Cmd.info "dataset"
       ~doc:
         "Generate a ground-truth ordering corpus: exact optima from the \
          DP paired with structural features and heuristic baseline costs")
    Term.(
      ret
        (const run $ dataset_families_arg $ n_max $ random $ seed $ kind_arg
       $ model_arg $ out $ store $ trace_arg $ profile_arg $ progress_arg))

let eval_orderers_cmd =
  let run dataset model seed kind json trace_file profile progress =
    with_obs ~trace_file ~profile ~progress @@ fun trace ->
    try
      let ic = open_in dataset in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Ovo_learn.Dataset.of_ndjson text with
      | Error m -> `Error (false, dataset ^ ": " ^ m)
      | Ok rows ->
          let weights = load_weights model in
          let stats =
            Ovo_learn.Gap.evaluate ~trace ~kind
              (Ovo_learn.Gap.default_orderers ~weights ~kind ~seed ())
              rows
          in
          if json then
            List.iter
              (fun s ->
                print_endline
                  (Ovo_obs.Json.to_string (Ovo_learn.Gap.stat_to_json s)))
              stats
          else Ovo_learn.Gap.report Format.std_formatter stats;
          `Ok ()
    with Failure m | Invalid_argument m | Sys_error m -> `Error (false, m)
  in
  let dataset =
    Arg.(
      required
      & opt (some string) None
      & info [ "dataset" ] ~docv:"FILE"
          ~doc:"A corpus written by $(b,ovo dataset).")
  in
  let seed =
    Arg.(value & opt int 0x0BDD
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Seed of the random-permutation baseline.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"One JSON object per orderer (NDJSON).")
  in
  Cmd.v
    (Cmd.info "eval-orderers"
       ~doc:
         "Score ordering heuristics against the exact optima of a dataset: \
          mean/max/p50/p90 optimality gap and regret per orderer")
    Term.(
      ret
        (const run $ dataset $ model_arg $ seed $ kind_arg $ json
       $ trace_arg $ profile_arg $ progress_arg))

let eval_order_cmd =
  let run table expr pla pla_output blif signal family kind order =
    match load_function ~table ~expr ~pla ~pla_output ~blif ~signal ~family with
    | Error m -> `Error (false, m)
    | Ok tt -> (
        try
          let n = Ovo_boolfun.Truthtable.arity tt in
          let rf = Array.of_list order in
          if Array.length rf <> n then
            failwith
              (Printf.sprintf
                 "--order has %d entries but the function has %d variables"
                 (Array.length rf) n);
          let seen = Array.make n false in
          Array.iter
            (fun v ->
              if v < 0 || v >= n then
                failwith
                  (Printf.sprintf "--order entry %d is outside 0..%d" v (n - 1));
              if seen.(v) then
                failwith (Printf.sprintf "--order repeats variable %d" v);
              seen.(v) <- true)
            rf;
          let pi = Ovo_core.Eval_order.read_first rf in
          let given = Ovo_core.Eval_order.mincost ~kind tt pi in
          let r =
            Ovo_core.Fs.run ~kind
              ~prune:(Ovo_learn.Scorer.seeded_bound ~kind tt)
              tt
          in
          let opt = r.Ovo_core.Fs.mincost in
          Format.printf "given cost    : %d@." given;
          Format.printf "optimal cost  : %d@." opt;
          Format.printf "optimal order : %a@." pp_order
            (Ovo_core.Fs.read_first_order r);
          Format.printf "gap           : %.4f@."
            (if opt = 0 then 1.0 else float_of_int given /. float_of_int opt);
          Format.printf "regret        : %d@." (given - opt);
          `Ok ()
        with Failure m | Invalid_argument m -> `Error (false, m))
  in
  let term =
    Term.(
      ret
        (const run $ table_arg $ expr_arg $ pla_arg $ pla_output_arg
       $ blif_arg $ signal_arg $ family_arg $ kind_arg $ order_arg))
  in
  Cmd.v
    (Cmd.info "eval-order"
       ~doc:
         "Price a user-supplied ordering against the exact optimum: cost, \
          optimality gap and regret in nodes")
    term

let () =
  (* debug logging is enabled with OVO_VERBOSE=1 so every subcommand
     honours it without threading a flag through each term *)
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level
    (Some
       (match Sys.getenv_opt "OVO_VERBOSE" with
       | Some ("1" | "true" | "debug") -> Logs.Debug
       | Some _ | None -> Logs.Warning))

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "ovo" ~version:"1.0.0"
      ~doc:"Optimal variable ordering for binary decision diagrams"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            optimize_cmd;
            widths_cmd;
            table1_cmd;
            table2_cmd;
            fig1_cmd;
            compare_cmd;
            shared_cmd;
            spectrum_cmd;
            show_cmd;
            families_cmd;
            dataset_cmd;
            eval_orderers_cmd;
            eval_order_cmd;
            serve_cmd;
            submit_cmd;
            router_cmd;
            fleet_cmd;
            bench_cmd;
            top_cmd;
            access_log_cmd;
          ]))

(* Bench harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index), then runs Bechamel
   wall-clock micro-benchmarks — one per table/figure — in a single
   executable.  Output is recorded in EXPERIMENTS.md. *)

module T = Ovo_boolfun.Truthtable
module F = Ovo_boolfun.Families
module Fs = Ovo_core.Fs
module C = Ovo_core.Compact
module Cost = Ovo_core.Cost
module E = Ovo_core.Eval_order
module O = Ovo_quantum.Opt_obdd
module P = Ovo_quantum.Params
module Nt = Ovo_numerics.Tables
module Ne = Ovo_numerics.Exponents
module Np = Ovo_numerics.Predict
module Nm = Ovo_numerics.Maths

let section name = Printf.printf "\n================ [%s] ================\n" name

let measured_cells f =
  let before = Cost.snapshot () in
  let result = f () in
  let after = Cost.snapshot () in
  (result, float_of_int (Cost.diff after before).Cost.table_cells)

(* ------------------------------------------------------------------ *)

let fig1 () =
  section "fig1";
  Printf.printf
    "Fig. 1 - OBDD size of f = x0x1 + x2x3 + ... under the natural vs the\n\
     interleaved ordering (paper: 2n+2 vs 2^(n+1)); exact optimum via FS.\n\n";
  Printf.printf "%6s %4s %9s %6s %12s %9s %7s\n" "pairs" "n" "natural" "2n+2"
    "interleaved" "2^(n+1)" "exact";
  for pairs = 1 to 8 do
    let tt = F.achilles pairs in
    let n = 2 * pairs in
    let good = E.size tt (F.achilles_good_order pairs) in
    let bad = E.size tt (F.achilles_bad_order pairs) in
    let exact = if n <= 14 then string_of_int (Fs.run tt).Fs.size else "-" in
    Printf.printf "%6d %4d %9d %6d %12d %9d %7s\n" pairs n good (n + 2) bad
      (1 lsl (pairs + 1))
      exact
  done;
  Printf.printf
    "\nShape check: natural ordering grows linearly, interleaved doubles per\n\
     pair, and the exact optimiser always recovers the linear size.\n"

(* ------------------------------------------------------------------ *)

let table1 () =
  section "table1";
  Printf.printf
    "Table 1 - gamma_k and alpha of OptOBDD(k, alpha), re-solved from the\n\
     equation system (8)-(9) and compared to the published values.\n\n";
  Printf.printf "%2s %10s %10s %10s   alpha (solved)\n" "k" "gamma_k"
    "published" "delta";
  List.iteri
    (fun i row ->
      let _, published, _ = P.table1.(i) in
      Printf.printf "%2d %10.5f %10.5f %10.1e   [%s]\n" row.Nt.k
        row.Nt.gamma_out published
        (Float.abs (row.Nt.gamma_out -. published))
        (String.concat "; "
           (List.map (Printf.sprintf "%.6f") (Array.to_list row.Nt.alpha))))
    (Nt.table1 ());
  let a0, g0 = Ne.gamma0 () in
  let a1, g1 = Ne.gamma1 () in
  Printf.printf
    "\nSec. 3.1 anchors: gamma_0 = %.5f at alpha = %.6f (paper 2.98581 / 0.269577)\n"
    g0 a0;
  Printf.printf
    "                  gamma_1 = %.5f at alpha = %.6f (paper 2.97625 / 0.274863)\n"
    g1 a1

let table2 () =
  section "table2";
  Printf.printf
    "Table 2 - Theorem 13 composition: each round feeds its gamma into the\n\
     equations (14)-(15); beta_6 descends to 2.77286.\n\n";
  Printf.printf "%10s %10s %10s %10s\n" "gamma_in" "beta_6" "published" "delta";
  List.iteri
    (fun i row ->
      let _, published, _ = P.table2.(i) in
      Printf.printf "%10.5f %10.5f %10.5f %10.1e\n" row.Nt.gamma_in
        row.Nt.gamma_out published
        (Float.abs (row.Nt.gamma_out -. published)))
    (Nt.table2 ());
  Printf.printf "\nHeadline constant (Theorems 1/13): gamma <= %.5f\n"
    P.final_gamma

(* ------------------------------------------------------------------ *)

let thm5_scaling () =
  section "thm5-scaling";
  Printf.printf
    "Theorem 5 - FS processes Sum_k C(n,k)*k*2^(n-k) = n*3^(n-1) table\n\
     cells: measured counter vs closed form, and the fitted base.\n\n";
  Printf.printf "%3s %15s %15s %8s\n" "n" "measured" "n*3^(n-1)" "ratio";
  let points = ref [] in
  for n = 4 to 13 do
    let tt = T.random (Random.State.make [| n |]) n in
    let _, cells = measured_cells (fun () -> Fs.run tt) in
    points := (n, cells) :: !points;
    Printf.printf "%3d %15.0f %15.0f %8.4f\n" n cells (Np.fs_cells n)
      (cells /. Np.fs_cells n)
  done;
  let slope = Np.log2_cost_per_var !points in
  Printf.printf
    "\nfitted growth: cost ~ (%.4f)^n   [paper: 3^n up to a polynomial factor]\n"
    (Nm.pow2 slope)

(* ------------------------------------------------------------------ *)

let quantum_vs_classical () =
  section "quantum-vs-classical";
  Printf.printf
    "Modeled cost (table cells) of the algorithm families.  Small n:\n\
     simulated runs (the analytic predictor is asserted equal to the\n\
     simulation by the test suite).  Large n: the predictor extends the\n\
     curves to where the paper's asymptotics bite.\n\n";
  Printf.printf "-- simulated, small n --\n";
  Printf.printf "%3s %14s %14s %14s %14s\n" "n" "brute n!2^n" "FS (measured)"
    "OptOBDD(6)" "tower-2";
  for n = 4 to 11 do
    let tt = T.random (Random.State.make [| 7 * n |]) n in
    let _, fs_cells = measured_cells (fun () -> Fs.run tt) in
    let ctx = O.make_ctx () in
    let _, qcost = O.minimize ~ctx (O.theorem10 ()) tt in
    let tower_cost =
      if n <= 9 then begin
        let ctx2 = O.make_ctx () in
        let _, c = O.minimize ~ctx:ctx2 (O.tower ~depth:2) tt in
        Some c
      end
      else None
    in
    Printf.printf "%3d %14.3e %14.3e %14.3e %14s\n" n (Np.brute_force_cells n)
      fs_cells qcost
      (match tower_cost with Some c -> Printf.sprintf "%.3e" c | None -> "-")
  done;
  let eps n = Float.pow 2. (-.float_of_int n) in
  let a6 = P.table1_alpha 6 in
  let alphas = Array.init 10 P.table2_alpha in
  let fs n = Np.fs_cells n in
  let q6 n = Np.theorem10_cost ~epsilon:(eps n) ~alpha:a6 n in
  let t10 n = Np.tower_cost ~epsilon:(eps n) ~alphas ~depth:10 n in
  Printf.printf "\n-- predicted (exact modeled accounting), large n --\n";
  Printf.printf "%4s %14s %14s %14s %9s\n" "n" "FS" "OptOBDD(6)" "tower-10"
    "q6/FS";
  List.iter
    (fun n ->
      Printf.printf "%4d %14.3e %14.3e %14.3e %9.3f\n" n (fs n) (q6 n) (t10 n)
        (q6 n /. fs n))
    [ 12; 16; 20; 25; 30; 40; 60; 80; 100; 120 ];
  let window lo hi f = List.init (hi - lo + 1) (fun i -> (lo + i, f (lo + i))) in
  let base f = Nm.pow2 (Np.log2_cost_per_var (window 60 120 f)) in
  (* divide out the linear poly factor of FS to expose the clean base *)
  let fs_poly_free n = fs n /. float_of_int n in
  Printf.printf
    "\nfitted bases over n = 60..120:  FS %.4f (poly-corrected %.4f)\n\
    \                                OptOBDD(6) %.4f   tower-10 %.4f\n"
    (base fs) (base fs_poly_free) (base q6) (base t10);
  Printf.printf
    "(paper asymptotics: 3 vs 2.83728 vs 2.77286.  At feasible n the\n\
     alpha*n roundings merge most division points, so the measured bases\n\
     sit between the classical 3 and the ideal constants; the ordering\n\
     classical > OptOBDD is already visible, the deep tower's stacked\n\
     query constants need far larger n.)\n";
  let rec find pred n limit = if n > limit then None else if pred n then Some n else find pred (n + 1) limit in
  let stable pred n = pred n && pred (n + 1) && pred (n + 2) in
  (match find (stable (fun n -> q6 n < fs n)) 4 400 with
  | Some n -> Printf.printf "modeled crossover: OptOBDD(6) beats FS stably from n = %d\n" n
  | None -> Printf.printf "no stable OptOBDD-vs-FS crossover below n = 400\n");
  (match find (stable (fun n -> t10 n < fs n)) 4 400 with
  | Some n -> Printf.printf "modeled crossover: tower-10 beats FS from n = %d\n" n
  | None -> Printf.printf "no stable tower-vs-FS crossover below n = 400\n");
  (match find (stable (fun n -> t10 n < q6 n)) 4 400 with
  | Some n -> Printf.printf "modeled crossover: tower-10 beats OptOBDD(6) from n = %d\n" n
  | None ->
      Printf.printf
        "tower-10 never beats OptOBDD(6) below n = 400 (its per-level\n\
         search constants dominate until the alpha differences resolve)\n");
  let rec find_cross n =
    if n > 40 then n
    else if Np.fs_cells n < Np.brute_force_cells n then n
    else find_cross (n + 1)
  in
  Printf.printf
    "brute force loses to FS from n = %d on (closed-form cell counts)\n"
    (find_cross 2)

(* ------------------------------------------------------------------ *)

let optimality_check () =
  section "optimality-check";
  Printf.printf
    "Theorem 1 correctness claims on random functions: the quantum\n\
     algorithm's output equals the exact optimum; with forced qsearch\n\
     errors the output diagram is still a valid OBDD for f.\n\n";
  let st = Random.State.make [| 2026 |] in
  let trials = 60 in
  let agree = ref 0 in
  for _ = 1 to trials do
    let n = 3 + Random.State.int st 4 in
    let tt = T.random st n in
    let exact = (Fs.run tt).Fs.mincost in
    let ctx = O.make_ctx () in
    let r, _ = O.minimize ~ctx (O.theorem10 ()) tt in
    if r.Fs.mincost = exact && Ovo_core.Diagram.check_tt r.Fs.diagram tt then
      incr agree
  done;
  Printf.printf "exact agreement: %d/%d\n" !agree trials;
  let rng = Random.State.make [| 31337 |] in
  let valid = ref 0 and minimum = ref 0 in
  for _ = 1 to trials do
    let n = 4 + Random.State.int st 2 in
    let tt = T.random st n in
    let exact = (Fs.run tt).Fs.mincost in
    let ctx = O.make_ctx ~rng ~epsilon:0.5 () in
    let r, _ = O.minimize ~ctx (O.theorem10 ()) tt in
    if Ovo_core.Diagram.check_tt r.Fs.diagram tt then incr valid;
    if r.Fs.mincost = exact then incr minimum
  done;
  Printf.printf
    "with epsilon = 0.5 error injection: valid diagrams %d/%d, still minimum %d/%d\n"
    !valid trials !minimum trials;
  Printf.printf
    "(validity must be %d/%d - minimality is allowed to fail, Theorem 1)\n"
    trials trials

(* ------------------------------------------------------------------ *)

let zdd_mtbdd () =
  section "zdd-mtbdd";
  Printf.printf
    "Remark 2 - the two-line rule change minimises ZDDs, and the\n\
     multi-valued table minimises MTBDDs.  Exact vs brute force, plus\n\
     sparse families where the ZDD wins.\n\n";
  Printf.printf "%18s %4s %10s %10s %12s\n" "function" "n" "min-BDD" "min-ZDD"
    "brute-ZDD";
  List.iter
    (fun (name, tt) ->
      let n = T.arity tt in
      let bdd = (Fs.run tt).Fs.mincost in
      let zdd = (Fs.run ~kind:C.Zdd tt).Fs.mincost in
      let brute =
        if n <= 7 then
          string_of_int
            (Ovo_ordering.Brute.best ~kind:C.Zdd tt).Ovo_ordering.Brute.mincost
        else "-"
      in
      Printf.printf "%18s %4d %10d %10d %12s\n" name n bdd zdd brute)
    [
      ("achilles-3", F.achilles 3);
      ("achilles-4", F.achilles 4);
      ("parity-6", F.parity 6);
      ("threshold-8-6", F.threshold 8 ~k:6);
      ("mux-2", F.multiplexer ~select:2);
      ("sparse-interval", F.weight_interval 8 ~lo:0 ~hi:1);
    ];
  let product =
    Ovo_boolfun.Mtable.of_fun 4 ~values:10 (fun code ->
        (code land 3) * (code lsr 2))
  in
  let r = Fs.run_mtable product in
  let brute = Ovo_ordering.Brute.best_mtable product in
  Printf.printf
    "\nMTBDD of 2-bit multiplication: exact %d nodes (brute force %d), valid=%b\n"
    r.Fs.mincost brute.Ovo_ordering.Brute.mincost
    (Ovo_core.Diagram.check r.Fs.diagram product)

(* ------------------------------------------------------------------ *)

let heuristic_quality () =
  section "heuristic-quality";
  Printf.printf
    "Sec. 1.1 - judging heuristics with the exact optimum (ratio 1.00 is\n\
     optimal), plus the FS*-based exact-block hybrid.\n\n";
  let rng = Random.State.make [| 0xB00 |] in
  List.iter
    (fun (name, tt) ->
      let report = Ovo_ordering.Quality.evaluate ~rng ~name tt in
      let hybrid = Ovo_ordering.Exact_block.run ~block:4 tt in
      Format.printf "%a  exact-block=%d@." Ovo_ordering.Quality.pp_report report
        hybrid.Ovo_ordering.Exact_block.mincost)
    (F.catalogue ~max_arity:10)

(* ------------------------------------------------------------------ *)

(* A compaction chain whose NODE set is keyed by the children pair only,
   as the paper's COMPACT pseudo-code literally reads.  Used by the
   ablation below to show that the prose definition (key includes the
   variable) is the correct one. *)
let buggy_chain_mincost tt order =
  let n = T.arity tt in
  let table = ref (Array.init (1 lsl n) (fun code -> if T.eval tt code then 1 else 0)) in
  let node = Hashtbl.create 16 in
  let next = ref 2 and count = ref 0 in
  let assigned = ref Ovo_core.Varset.empty in
  Array.iter
    (fun i ->
      let freeset = Ovo_core.Varset.diff (Ovo_core.Varset.full n) !assigned in
      let p = Ovo_core.Varset.rank_in i freeset in
      let new_len = Array.length !table / 2 in
      let out = Array.make (max new_len 1) 0 in
      let low_mask = (1 lsl p) - 1 in
      for b = 0 to new_len - 1 do
        let idx0 = ((b lsr p) lsl (p + 1)) lor (b land low_mask) in
        let lo = !table.(idx0) and hi = !table.(idx0 lor (1 lsl p)) in
        if lo = hi then out.(b) <- lo
        else
          match Hashtbl.find_opt node (lo, hi) with
          | Some u -> out.(b) <- u
          | None ->
              let u = !next in
              incr next;
              incr count;
              Hashtbl.add node (lo, hi) u;
              out.(b) <- u
      done;
      table := out;
      assigned := Ovo_core.Varset.add i !assigned)
    order;
  !count

let ablations () =
  section "ablations";
  Printf.printf
    "Design-choice ablations called out in DESIGN.md.\n";

  Printf.printf
    "\n(a) NODE key must include the variable (paper prose) - the\n\
     pseudo-code's children-only key merges distinct subfunctions.\n\
     Scanning random functions for a divergence:\n";
  let st = Random.State.make [| 77 |] in
  let found = ref None in
  (try
     while !found = None do
       let n = 3 + Random.State.int st 3 in
       let tt = T.random st n in
       let order = Array.init n (fun i -> i) in
       let good = E.mincost tt order in
       let bad = buggy_chain_mincost tt order in
       if bad <> good then found := Some (tt, good, bad)
     done
   with _ -> ());
  (match !found with
  | Some (tt, good, bad) ->
      Printf.printf
        "  counterexample: f = %s\n  correct node count %d, children-only key gives %d\n"
        (T.to_string tt) good bad
  | None -> Printf.printf "  (no divergence found - unexpected)\n");

  Printf.printf
    "\n(b) number of division points k (modeled cost at n = 30, eps = 2^-30):\n";
  Printf.printf "  %2s %12s %10s   (Table 1 gamma_k: asymptotic target)\n" "k"
    "cells" "gamma_k";
  for k = 1 to 6 do
    let cost =
      Np.theorem10_cost ~epsilon:(Float.pow 2. (-30.))
        ~alpha:(P.table1_alpha k) 30
    in
    Printf.printf "  %2d %12.3e %10.5f\n" k cost (P.table1_gamma k)
  done;
  Printf.printf
    "  (k = 2 already captures most of the gain, matching Table 1's\n\
    \   rapidly flattening gamma_k column)\n";

  Printf.printf
    "\n(c) preprocessing ablation (Sec. 3.1): exponent bases without and\n\
     with the classical preprocess:\n";
  let a0, g0 = Ne.gamma0 () in
  let a1, g1 = Ne.gamma1 () in
  Printf.printf "  no preprocess : gamma_0 = %.5f (alpha = %.6f)\n" g0 a0;
  Printf.printf "  with preprocess: gamma_1 = %.5f (alpha = %.6f)\n" g1 a1;

  Printf.printf
    "\n(d) A* pruning of the subset lattice (exact results, fewer states):\n";
  Printf.printf "  %-16s %4s %9s %7s %8s\n" "function" "n" "expanded" "2^n"
    "ratio";
  List.iter
    (fun (name, tt) ->
      let r = Ovo_ordering.Astar.run tt in
      Printf.printf "  %-16s %4d %9d %7d %8.2f%%\n" name
        (T.arity tt) r.Ovo_ordering.Astar.expanded
        r.Ovo_ordering.Astar.subsets_total
        (100.
        *. float_of_int r.Ovo_ordering.Astar.expanded
        /. float_of_int r.Ovo_ordering.Astar.subsets_total))
    [
      ("achilles-4", F.achilles 4);
      ("parity-8", F.parity 8);
      ("mux-2", F.multiplexer ~select:2);
      ("hwb-8", F.hidden_weighted_bit 8);
      ("adder-4-carry", F.adder_bit ~bits:4 ~out:4);
      ("small-support", T.( ||| ) (T.var 10 2) (T.( &&& ) (T.var 10 5) (T.var 10 8)));
    ];

  Printf.printf
    "\n(e) exact windows (FS* blocks) vs brute-force windows on hwb-10:\n";
  let tt = F.hidden_weighted_bit 10 in
  let win = Ovo_ordering.Window.run ~window:4 tt in
  let blk = Ovo_ordering.Exact_block.run ~block:4 tt in
  let exact = (Fs.run tt).Fs.mincost in
  Printf.printf
    "  window-4: cost %d in %d probes; exact-block-4: cost %d in %d sweeps; true optimum %d\n"
    win.Ovo_ordering.Window.mincost win.Ovo_ordering.Window.probes
    blk.Ovo_ordering.Exact_block.mincost blk.Ovo_ordering.Exact_block.sweeps
    exact

(* ------------------------------------------------------------------ *)

let shared_bench () =
  section "shared";
  Printf.printf
    "Multi-rooted (shared) exact optimisation - the THY96 setting.\n\n";
  Printf.printf "%-18s %4s %8s %14s %8s %10s\n" "circuit" "n" "shared"
    "sum-of-singles" "blocked" "quantum";
  List.iter
    (fun (name, outputs) ->
      let r = Ovo_core.Shared.minimize outputs in
      let singles =
        Array.fold_left
          (fun acc tt -> acc + (Fs.run tt).Fs.mincost)
          0 outputs
      in
      let n = T.arity outputs.(0) in
      let blocked =
        (Ovo_core.Shared.compact_chain
           (Ovo_core.Shared.of_truthtables C.Bdd outputs)
           (Array.init n (fun i -> i)))
          .Ovo_core.Shared.mincost
      in
      let qshared =
        if n <= 6 then begin
          let ctx = Ovo_quantum.Qctx.make () in
          let qr, _ =
            Ovo_quantum.Opt_shared.minimize ~ctx
              (Ovo_quantum.Opt_shared.theorem10 ())
              outputs
          in
          string_of_int qr.Ovo_core.Shared.mincost
        end
        else "-"
      in
      Printf.printf "%-18s %4d %8d %14d %8d %10s\n" name n
        r.Ovo_core.Shared.mincost singles blocked qshared)
    F.multi_catalogue

(* ------------------------------------------------------------------ *)

let spectrum () =
  section "spectrum";
  Printf.printf
    "The full size distribution over all n! orderings - how rare good\n\
     orderings are (the quantitative version of the paper's motivation).\n\n";
  List.iter
    (fun (name, tt) ->
      let s = Ovo_ordering.Spectrum.compute tt in
      let dp_count = Fs.count_optimal_orders tt in
      Format.printf "%-14s %a (DP count %.0f)@." name Ovo_ordering.Spectrum.pp
        s dp_count)
    [
      ("achilles-3", F.achilles 3);
      ("achilles-4", F.achilles 4);
      ("mux-2", F.multiplexer ~select:2);
      ("hwb-6", F.hidden_weighted_bit 6);
      ("adder-3-carry", F.adder_bit ~bits:3 ~out:3);
      ("majority-7", F.majority 7);
      ("random-6", T.random (Random.State.make [| 606 |]) 6);
    ];
  Printf.printf
    "\n(symmetric functions have point-mass spectra; the Fig. 1 family's\n\
     optimum fraction shrinks as n grows, and random functions sit in\n\
     between - blind search degrades accordingly.)\n";
  (* influence static heuristic against the same functions *)
  Printf.printf "\ninfluence-based static ordering (one table pass, no probing):\n";
  List.iter
    (fun (name, tt) ->
      let r = Ovo_ordering.Influence.run tt in
      let exact = (Fs.run tt).Fs.mincost in
      Printf.printf "  %-14s static=%d exact=%d (%.2fx)\n" name
        r.Ovo_ordering.Influence.mincost exact
        (float_of_int r.Ovo_ordering.Influence.mincost /. float_of_int (max exact 1)))
    [
      ("achilles-4", F.achilles 4);
      ("mux-2", F.multiplexer ~select:2);
      ("hwb-8", F.hidden_weighted_bit 8);
      ("adder-4-carry", F.adder_bit ~bits:4 ~out:4);
    ]

(* ------------------------------------------------------------------ *)

(* Engine comparison: the same FS run sequentially and domain-parallel,
   swept over 1/2/4/8 worker domains.  Wall-clock must come from
   gettimeofday — Sys.time sums CPU seconds across domains and would
   hide any speedup.  Results (and the metrics counters showing what the
   two-pass DP avoids) go to BENCH_engine.json for machine consumption;
   CI gates on the best speedup among the domains>=4 rows, so oversub-
   scribed configurations on small runners cannot fail the build as long
   as one genuinely parallel configuration wins. *)
let engine_bench () =
  section "engine";
  let n = 13 in
  let tt = T.random (Random.State.make [| 1313 |]) n in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq_metrics = Ovo_core.Metrics.create () in
  let seq_r, seq_s =
    wall (fun () ->
        Fs.run ~engine:Ovo_core.Engine.Seq ~metrics:seq_metrics tt)
  in
  Printf.printf "FS on a random n=%d function: seq %.3fs\n" n seq_s;
  let cores = Ovo_core.Engine.domain_count (Ovo_core.Engine.par ()) in
  let sweep =
    List.map
      (fun domains ->
        let engine = Ovo_core.Engine.Par { domains } in
        let par_metrics = Ovo_core.Metrics.create () in
        let par_r, par_s =
          wall (fun () -> Fs.run ~engine ~metrics:par_metrics tt)
        in
        let agree =
          seq_r.Fs.mincost = par_r.Fs.mincost && seq_r.Fs.order = par_r.Fs.order
        in
        let speedup = seq_s /. par_s in
        Printf.printf
          "  par:%d %.3fs -> %.2fx  identical=%b\n" domains par_s speedup agree;
        Ovo_obs.Json.Obj
          [
            ("domains", Ovo_obs.Json.Int domains);
            ("par_seconds", Ovo_obs.Json.Float par_s);
            ("speedup", Ovo_obs.Json.Float speedup);
            ("agree", Ovo_obs.Json.Bool agree);
            ( "par_metrics",
              Ovo_obs.Json.Obj
                (Ovo_core.Metrics.to_args
                   (Ovo_core.Metrics.snapshot par_metrics)) );
          ])
      [ 1; 2; 4; 8 ]
  in
  Printf.printf
    "(Par is deterministic and bit-identical; this host recommends %d \
     domains)\n"
    cores;
  let ms = Ovo_core.Metrics.snapshot seq_metrics in
  Printf.printf
    "two-pass accounting: %d cost probes elected %d materialised winners\n\
     (node-table copies %d - one per winner, none per losing candidate)\n"
    ms.Ovo_core.Metrics.s_cost_probes ms.Ovo_core.Metrics.s_states_materialised
    ms.Ovo_core.Metrics.s_node_table_copies;
  let doc =
    Ovo_obs.Json.Obj
      [
        ("n", Ovo_obs.Json.Int n);
        ("host_domains", Ovo_obs.Json.Int cores);
        ("seq_seconds", Ovo_obs.Json.Float seq_s);
        ("sweep", Ovo_obs.Json.List sweep);
        ("seq_metrics", Ovo_obs.Json.Obj (Ovo_core.Metrics.to_args ms));
      ]
  in
  let oc = open_out "BENCH_engine.json" in
  output_string oc (Ovo_obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "written: BENCH_engine.json\n"

(* ------------------------------------------------------------------ *)

(* Tracer overhead: the same FS run with the null tracer and with a
   recording tracer.  The instrumentation granularity is one DP layer,
   so the recording cost is a handful of events per run and the ratio
   must stay near 1 (CI gates on <= 2x).  Medians of repeated runs keep
   one GC pause from deciding the number. *)
let obs_bench () =
  section "obs";
  let n = 12 in
  let tt = T.random (Random.State.make [| 1212 |]) n in
  let wall f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let reps = 5 in
  let times f = median (List.init reps (fun _ -> wall f)) in
  let off_s = times (fun () -> Fs.run tt) in
  let trace = ref (Ovo_obs.Trace.make ()) in
  let on_s =
    times (fun () ->
        trace := Ovo_obs.Trace.make ();
        Fs.run ~trace:!trace tt)
  in
  let events = Ovo_obs.Trace.event_count !trace in
  let ratio = on_s /. Float.max 1e-9 off_s in
  Printf.printf
    "FS on a random n=%d function: tracer off %.4fs, on %.4fs (%d events) -> %.3fx\n"
    n off_s on_s events ratio;
  let doc =
    Ovo_obs.Json.Obj
      [
        ("n", Ovo_obs.Json.Int n);
        ("reps", Ovo_obs.Json.Int reps);
        ("off_seconds", Ovo_obs.Json.Float off_s);
        ("on_seconds", Ovo_obs.Json.Float on_s);
        ("events", Ovo_obs.Json.Int events);
        ("overhead_ratio", Ovo_obs.Json.Float ratio);
      ]
  in
  let oc = open_out "BENCH_obs.json" in
  output_string oc (Ovo_obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "written: BENCH_obs.json\n"

(* ------------------------------------------------------------------ *)

(* The ordering service: an in-process daemon on a temp Unix socket,
   driven through the real client and wire protocol.  Cache-cold
   requests (distinct random n=10 functions, plus hwb-10 once) pay the
   full canonicalize + exact-DP price; cache-warm requests (hwb-10
   repeated) are answered from the canonical result cache and must sit
   orders of magnitude lower — CI gates warm p50 at >= 10x below cold.
   Results go to BENCH_serve.json. *)
let serve_bench () =
  section "serve";
  let sock = Filename.temp_file "ovo-bench-serve" ".sock" in
  Sys.remove sock;
  let module Sv = Ovo_serve.Server in
  let module Cl = Ovo_serve.Client in
  let module Pr = Ovo_serve.Protocol in
  let cfg =
    { (Sv.default_config ~listen:(Pr.Unix_sock sock)) with
      Sv.workers = 2; queue_cap = 128; cache_cap = 512 }
  in
  let server = Sv.start cfg in
  let waiter = Thread.create (fun () -> Sv.wait server) () in
  let hwb10 = T.to_string (F.hidden_weighted_bit 10) in
  let cold_ms, warm_ms, total_requests, wall_s, final_hits =
    Cl.with_conn (Pr.Unix_sock sock) @@ fun c ->
    let next_id = ref 0 in
    let solve table =
      incr next_id;
      let t0 = Unix.gettimeofday () in
      match
        Cl.roundtrip c
          { Pr.id = !next_id;
            op =
              Pr.Solve
                { Pr.table; kind = C.Bdd; engine = Ovo_core.Engine.Seq;
                  deadline_ms = None } }
      with
      | Ok { Pr.body = Pr.Ok_solve r; _ } ->
          ((Unix.gettimeofday () -. t0) *. 1000., r.Pr.cached)
      | Ok _ | Error _ -> failwith "serve bench: unexpected reply"
    in
    let t0 = Unix.gettimeofday () in
    let cold =
      List.init 20 (fun i ->
          T.to_string (T.random (Random.State.make [| 9000 + i |]) 10))
      @ [ hwb10 ]
      |> List.map (fun table ->
             let ms, cached = solve table in
             assert (not cached);
             ms)
    in
    let warm =
      List.init 40 (fun _ ->
          let ms, cached = solve hwb10 in
          assert cached;
          ms)
    in
    let wall_s = Unix.gettimeofday () -. t0 in
    let hits =
      match Cl.roundtrip c { Pr.id = 0; op = Pr.Stats } with
      | Ok { Pr.body = Pr.Ok_stats s; _ } ->
          Option.bind (Ovo_obs.Json.member "cache" s)
            (Ovo_obs.Json.member "hits")
          |> Fun.flip Option.bind Ovo_obs.Json.to_int_opt
          |> Option.value ~default:0
      | _ -> 0
    in
    (match Cl.roundtrip c { Pr.id = 0; op = Pr.Shutdown } with
    | Ok { Pr.body = Pr.Bye; _ } -> ()
    | _ -> failwith "serve bench: shutdown not acknowledged");
    (cold, warm, List.length cold + List.length warm, wall_s, hits)
  in
  Thread.join waiter;
  let pct q xs =
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))
  in
  let cold_p50 = pct 0.5 cold_ms and cold_p99 = pct 0.99 cold_ms in
  let warm_p50 = pct 0.5 warm_ms and warm_p99 = pct 0.99 warm_ms in
  let rps = float_of_int total_requests /. wall_s in
  Printf.printf
    "cache-cold (%d distinct solves): p50 %.3f ms, p99 %.3f ms\n\
     cache-warm (%d hwb-10 repeats) : p50 %.3f ms, p99 %.3f ms\n\
     warm speedup at p50: %.1fx; throughput %.0f requests/sec (%d cache hits)\n"
    (List.length cold_ms) cold_p50 cold_p99 (List.length warm_ms) warm_p50
    warm_p99 (cold_p50 /. warm_p50) rps final_hits;
  let doc =
    Ovo_obs.Json.Obj
      [
        ("cold_requests", Ovo_obs.Json.Int (List.length cold_ms));
        ("warm_requests", Ovo_obs.Json.Int (List.length warm_ms));
        ("cold_p50_ms", Ovo_obs.Json.Float cold_p50);
        ("cold_p99_ms", Ovo_obs.Json.Float cold_p99);
        ("warm_p50_ms", Ovo_obs.Json.Float warm_p50);
        ("warm_p99_ms", Ovo_obs.Json.Float warm_p99);
        ("warm_speedup_p50", Ovo_obs.Json.Float (cold_p50 /. warm_p50));
        ("requests_per_sec", Ovo_obs.Json.Float rps);
        ("cache_hits", Ovo_obs.Json.Int final_hits);
      ]
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc (Ovo_obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "written: BENCH_serve.json\n"

(* ------------------------------------------------------------------ *)

(* Persistence layer: what durability costs and what it buys.  The
   checkpoint hook fires once per cardinality layer (n records for an
   n-variable run), so its overhead over a plain run must stay small —
   CI gates the median ratio at <= 1.25x.  A killed-and-resumed run
   must reproduce the uninterrupted answer bit for bit, and a restarted
   result store must warm-load every entry it was sent before the
   "crash" (close without compaction stands in for kill -9: the WAL is
   written with Unix.write, so the records are already in the file).
   Results go to BENCH_store.json. *)
let store_bench () =
  section "store";
  let module Rs = Ovo_store.Result_store in
  let module Ck = Ovo_store.Checkpoint in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let reps = 5 in
  let n = 12 in
  let tt = T.random (Random.State.make [| 2121 |]) n in
  let ck_path = Filename.temp_file "ovo-bench-ck" ".bin" in
  let meta = Ck.meta_of ~kind:C.Bdd tt in
  let plain_r = ref None in
  let plain_s =
    median
      (List.init reps (fun _ ->
           let r, s = wall (fun () -> Fs.run tt) in
           plain_r := Some r;
           s))
  in
  let ck_s =
    median
      (List.init reps (fun _ ->
           let _, s =
             wall (fun () ->
                 let w = Ck.create ~path:ck_path meta in
                 let r =
                   Fs.run ~on_layer:(Ck.append_layer w) tt
                 in
                 Ck.close w;
                 r)
           in
           s))
  in
  let overhead = ck_s /. Float.max 1e-9 plain_s in
  Printf.printf
    "FS on a random n=%d function: plain %.4fs, with checkpoint %.4fs -> %.3fx\n"
    n plain_s ck_s overhead;
  (* Kill the run after layer n/2 (exception at the on_layer boundary,
     where the CLI's --crash-after-layer exits), then resume. *)
  let exception Crash in
  let stop_after = n / 2 in
  (let w = Ck.create ~path:ck_path meta in
   (try
      ignore
        (Fs.run
           ~on_layer:(fun p ->
             Ck.append_layer w p;
             if p.Ovo_core.Subset_dp.p_layer = stop_after then raise Crash)
           tt)
    with Crash -> ());
   Ck.close w);
  let w, layers = Ck.open_resume ~path:ck_path meta in
  let resumed, resume_s =
    wall (fun () ->
        let r =
          Fs.run ~on_layer:(Ck.append_layer w) ~resume:layers tt
        in
        Ck.close w;
        r)
  in
  let plain = Option.get !plain_r in
  let identical =
    resumed.Fs.mincost = plain.Fs.mincost
    && resumed.Fs.size = plain.Fs.size
    && resumed.Fs.order = plain.Fs.order
    && resumed.Fs.widths = plain.Fs.widths
  in
  Printf.printf
    "killed after layer %d/%d, resumed %d layers in %.4fs (%.0f%% of a full run): identical=%b\n"
    stop_after n (List.length layers) resume_s
    (100. *. resume_s /. Float.max 1e-9 plain_s)
    identical;
  Sys.remove ck_path;
  (* Warm restart of the result store: append, drop the handle, reopen. *)
  let dir = Filename.temp_file "ovo-bench-store" "" in
  Sys.remove dir;
  let entry_of seed =
    let canon, _ = T.canonicalize (T.random (Random.State.make [| seed |]) 8) in
    let r = Fs.run canon in
    {
      Rs.digest = T.digest_of_canonical canon;
      kind = C.Bdd;
      canon;
      mincost = r.Fs.mincost;
      size = r.Fs.size;
      canon_order = r.Fs.order;
      widths = r.Fs.widths;
    }
  in
  let sent = 32 in
  let entries = List.init sent (fun i -> entry_of (4000 + i)) in
  let s = Rs.open_dir dir in
  List.iter (Rs.append s) entries;
  Rs.close s;
  let reopened, load_s = wall (fun () -> Rs.open_dir dir) in
  Rs.close reopened;
  let s = Rs.open_dir dir in
  let st = Rs.stats s in
  let hit_rate =
    float_of_int st.Rs.st_warm_loaded /. float_of_int sent
  in
  Printf.printf
    "result store restart: %d/%d entries warm-loaded in %.4fs (%d discarded) -> hit rate %.2f\n"
    st.Rs.st_warm_loaded sent load_s st.Rs.st_discarded_records hit_rate;
  Rs.close s;
  let doc =
    Ovo_obs.Json.Obj
      [
        ("n", Ovo_obs.Json.Int n);
        ("reps", Ovo_obs.Json.Int reps);
        ("plain_seconds", Ovo_obs.Json.Float plain_s);
        ("checkpoint_seconds", Ovo_obs.Json.Float ck_s);
        ("checkpoint_overhead_ratio", Ovo_obs.Json.Float overhead);
        ("resume_identical", Ovo_obs.Json.Bool identical);
        ("resume_seconds", Ovo_obs.Json.Float resume_s);
        ("store_entries_sent", Ovo_obs.Json.Int sent);
        ("store_warm_loaded", Ovo_obs.Json.Int st.Rs.st_warm_loaded);
        ("store_discarded", Ovo_obs.Json.Int st.Rs.st_discarded_records);
        ("warm_hit_rate", Ovo_obs.Json.Float hit_rate);
      ]
  in
  let oc = open_out "BENCH_store.json" in
  output_string oc (Ovo_obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "written: BENCH_store.json\n"

(* ------------------------------------------------------------------ *)
(* [mem]: the memory-budgeted out-of-core DP.  An unbounded run first
   measures the instance's peak packed-layer bytes (Membudget accounts
   even without a budget); the budgeted run then gets a quarter of that,
   forcing most layers through the spill sink, and must reproduce the
   unbounded answer bit for bit.  Peak RSS comes from /proc (0 where
   unavailable).  Results go to BENCH_mem.json. *)
let mem_bench () =
  section "mem";
  let module Mb = Ovo_core.Membudget in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let peak_rss_kb () =
    match open_in "/proc/self/status" with
    | exception Sys_error _ -> 0
    | ic ->
        let rec go acc =
          match input_line ic with
          | exception End_of_file ->
              close_in ic;
              acc
          | line when String.length line > 6 && String.sub line 0 6 = "VmHWM:"
            -> (
              let v = String.trim (String.sub line 6 (String.length line - 6)) in
              match String.split_on_char ' ' v with
              | kb :: _ ->
                  go (Option.value ~default:acc (int_of_string_opt kb))
              | [] -> go acc)
          | _ -> go acc
        in
        go 0
  in
  let reps = 5 in
  let n = 12 in
  let tt = T.random (Random.State.make [| 3131 |]) n in
  let plain_r = ref None in
  let plain_mb = ref (Mb.unbounded ()) in
  let plain_s =
    median
      (List.init reps (fun _ ->
           let mb = Mb.unbounded () in
           let r, s = wall (fun () -> Fs.run ~membudget:mb tt) in
           plain_r := Some r;
           plain_mb := mb;
           s))
  in
  let peak_layer = Mb.peak_layer_bytes !plain_mb in
  let budget = max 1 (peak_layer / 4) in
  let spill_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ovo-bench-spill-%d" (Unix.getpid ()))
  in
  let budget_r = ref None in
  let budget_mb = ref (Mb.unbounded ()) in
  let budget_s =
    median
      (List.init reps (fun _ ->
           let sp = Ovo_store.Spill.create spill_dir in
           let mb =
             Mb.create ~budget_bytes:budget ~sink:(Ovo_store.Spill.sink sp) ()
           in
           let r, s =
             wall (fun () ->
                 Fun.protect
                   ~finally:(fun () -> Ovo_store.Spill.remove sp)
                   (fun () -> Fs.run ~membudget:mb tt))
           in
           budget_r := Some r;
           budget_mb := mb;
           s))
  in
  let plain = Option.get !plain_r and budgeted = Option.get !budget_r in
  let same (a : Fs.result) (b : Fs.result) =
    a.Fs.mincost = b.Fs.mincost
    && a.Fs.size = b.Fs.size
    && a.Fs.order = b.Fs.order
    && a.Fs.widths = b.Fs.widths
  in
  let identical = same budgeted plain in
  let overhead = budget_s /. Float.max 1e-9 plain_s in
  let mb = !budget_mb in
  (* Hump sub-case: the k=n/2 layer alone exceeds the budget, so it can
     only leave RAM piecewise.  Small extents split it; completion plus
     bit-identity is the whole point, timing is not measured. *)
  let hump_extent = 1024 in
  let hump_budget = 2 * (hump_extent + Ovo_core.Layer_pack.extent_header_bytes)
  in
  let hump_sp = Ovo_store.Spill.create spill_dir in
  let hump_mb =
    Mb.create ~budget_bytes:hump_budget ~extent_bytes:hump_extent
      ~sink:(Ovo_store.Spill.sink hump_sp) ()
  in
  let hump_r =
    Fun.protect
      ~finally:(fun () -> Ovo_store.Spill.remove hump_sp)
      (fun () -> Fs.run ~membudget:hump_mb tt)
  in
  let hump_identical = same hump_r plain in
  (* transient-once bound: resident never exceeds the budget by more
     than the one extent being packed for eviction *)
  let hump_bound =
    hump_budget + Ovo_core.Layer_pack.extent_header_bytes + hump_extent
  in
  let hump_respected = Mb.peak_resident_bytes hump_mb <= hump_bound in
  Printf.printf
    "FS on a random n=%d function: in-memory %.4fs (peak layer %d B), \
     budget %d B %.4fs -> %.3fx overhead\n"
    n plain_s peak_layer budget budget_s overhead;
  Printf.printf
    "budgeted run: %d layers / %d extents spilled (%d B raw -> %d B stored, \
     %.2fx), %d reloads (%d B), peak resident %d B, identical=%b\n"
    (Mb.layers_spilled mb) (Mb.extents_spilled mb) (Mb.raw_bytes_spilled mb)
    (Mb.bytes_spilled mb) (Mb.compression_ratio mb) (Mb.reloads mb)
    (Mb.bytes_reloaded mb) (Mb.peak_resident_bytes mb) identical;
  Printf.printf
    "hump case: budget %d B < hump layer %d B, extent %d B: %d extents \
     spilled, peak resident %d B (bound %d B), identical=%b respected=%b\n"
    hump_budget (Mb.peak_layer_bytes hump_mb) hump_extent
    (Mb.extents_spilled hump_mb)
    (Mb.peak_resident_bytes hump_mb)
    hump_bound hump_identical hump_respected;
  let doc =
    Ovo_obs.Json.Obj
      [
        ("schema", Ovo_obs.Json.Int 2);
        ("n", Ovo_obs.Json.Int n);
        ("reps", Ovo_obs.Json.Int reps);
        ("inmem_seconds", Ovo_obs.Json.Float plain_s);
        ("budgeted_seconds", Ovo_obs.Json.Float budget_s);
        ("spill_overhead_ratio", Ovo_obs.Json.Float overhead);
        ("identical_to_inmem", Ovo_obs.Json.Bool identical);
        ("budget_bytes", Ovo_obs.Json.Int budget);
        ("extent_bytes", Ovo_obs.Json.Int (Mb.extent_bytes mb));
        ("peak_layer_bytes", Ovo_obs.Json.Int peak_layer);
        ("peak_resident_bytes", Ovo_obs.Json.Int (Mb.peak_resident_bytes mb));
        ("layers_spilled", Ovo_obs.Json.Int (Mb.layers_spilled mb));
        ("extents_spilled", Ovo_obs.Json.Int (Mb.extents_spilled mb));
        ("bytes_spilled", Ovo_obs.Json.Int (Mb.bytes_spilled mb));
        ("raw_bytes_spilled", Ovo_obs.Json.Int (Mb.raw_bytes_spilled mb));
        ("compression_ratio", Ovo_obs.Json.Float (Mb.compression_ratio mb));
        ("reloads", Ovo_obs.Json.Int (Mb.reloads mb));
        ("extents_reloaded", Ovo_obs.Json.Int (Mb.reloads mb));
        ("bytes_reloaded", Ovo_obs.Json.Int (Mb.bytes_reloaded mb));
        ( "hump",
          Ovo_obs.Json.Obj
            [
              ("budget_bytes", Ovo_obs.Json.Int hump_budget);
              ("extent_bytes", Ovo_obs.Json.Int hump_extent);
              ( "peak_layer_bytes",
                Ovo_obs.Json.Int (Mb.peak_layer_bytes hump_mb) );
              ( "peak_resident_bytes",
                Ovo_obs.Json.Int (Mb.peak_resident_bytes hump_mb) );
              ( "layer_exceeds_budget",
                Ovo_obs.Json.Bool (Mb.peak_layer_bytes hump_mb > hump_budget)
              );
              ( "extents_spilled",
                Ovo_obs.Json.Int (Mb.extents_spilled hump_mb) );
              ("reloads", Ovo_obs.Json.Int (Mb.reloads hump_mb));
              ( "compression_ratio",
                Ovo_obs.Json.Float (Mb.compression_ratio hump_mb) );
              ("identical_to_inmem", Ovo_obs.Json.Bool hump_identical);
              ("budget_respected", Ovo_obs.Json.Bool hump_respected);
            ] );
        ("peak_rss_kb", Ovo_obs.Json.Int (peak_rss_kb ()));
      ]
  in
  let oc = open_out "BENCH_mem.json" in
  output_string oc (Ovo_obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "written: BENCH_mem.json\n"

(* ------------------------------------------------------------------ *)
(* [prune]: the branch-and-bound exact DP.  Every catalogue family is
   solved plain and sifting-seeded-pruned and the two results must agree
   bit for bit — pruning is an optimisation, never an approximation.
   The wall-clock instance is hwb-12: medians of repeated runs, with the
   sifting seed's construction charged to the pruned side so the ratio
   is honest.  Results go to BENCH_prune.json; CI gates on
   states_pruned > 0, pruned_identical, and pruned wall <= unpruned
   wall on the hwb instance. *)
let prune_bench () =
  section "prune";
  let module B = Ovo_core.Bound in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let identical_all = ref true in
  let total_pruned = ref 0 in
  let families =
    List.map
      (fun (name, tt) ->
        let plain = Fs.run tt in
        let b = Ovo_ordering.Seed.bound tt in
        let pruned = Fs.run ~prune:b tt in
        let identical =
          pruned.Fs.mincost = plain.Fs.mincost
          && pruned.Fs.size = plain.Fs.size
          && pruned.Fs.order = plain.Fs.order
          && pruned.Fs.widths = plain.Fs.widths
        in
        if not identical then identical_all := false;
        let states_pruned = B.states_pruned b in
        total_pruned := !total_pruned + states_pruned;
        Printf.printf "  %-16s mincost=%-4d states_pruned=%-6d identical=%b\n"
          name plain.Fs.mincost states_pruned identical;
        Ovo_obs.Json.Obj
          [
            ("family", Ovo_obs.Json.String name);
            ("mincost", Ovo_obs.Json.Int plain.Fs.mincost);
            ("states_pruned", Ovo_obs.Json.Int states_pruned);
            ("identical", Ovo_obs.Json.Bool identical);
          ])
      (F.catalogue ~max_arity:11)
  in
  let reps = 5 in
  let n = 12 in
  let tt = F.hidden_weighted_bit n in
  let plain_r = ref None in
  let plain_s =
    median
      (List.init reps (fun _ ->
           let r, s = wall (fun () -> Fs.run tt) in
           plain_r := Some r;
           s))
  in
  let pruned_r = ref None in
  let pruned_b = ref None in
  let pruned_s =
    median
      (List.init reps (fun _ ->
           let r, s =
             wall (fun () ->
                 let b = Ovo_ordering.Seed.bound tt in
                 pruned_b := Some b;
                 Fs.run ~prune:b tt)
           in
           pruned_r := Some r;
           s))
  in
  let plain = Option.get !plain_r
  and pruned = Option.get !pruned_r
  and b = Option.get !pruned_b in
  let hwb_identical =
    pruned.Fs.mincost = plain.Fs.mincost
    && pruned.Fs.size = plain.Fs.size
    && pruned.Fs.order = plain.Fs.order
    && pruned.Fs.widths = plain.Fs.widths
  in
  let identical = !identical_all && hwb_identical in
  let ratio = pruned_s /. Float.max 1e-9 plain_s in
  Printf.printf
    "hwb-%d: plain %.4fs, pruned %.4fs (seed incl.) -> %.3fx wall; %d \
     states pruned, lower/incumbent %d/%d\n"
    n plain_s pruned_s ratio (B.states_pruned b) (B.best_lower b)
    (B.incumbent b);
  Printf.printf "identical across catalogue + hwb-%d: %b\n" n identical;
  let doc =
    Ovo_obs.Json.Obj
      [
        ("families", Ovo_obs.Json.List families);
        ("states_pruned", Ovo_obs.Json.Int (!total_pruned + B.states_pruned b));
        ("pruned_identical", Ovo_obs.Json.Bool identical);
        ("hwb_n", Ovo_obs.Json.Int n);
        ("reps", Ovo_obs.Json.Int reps);
        ("hwb_plain_seconds", Ovo_obs.Json.Float plain_s);
        ("hwb_pruned_seconds", Ovo_obs.Json.Float pruned_s);
        ("hwb_wall_ratio", Ovo_obs.Json.Float ratio);
        ("hwb_prune", B.to_json_value b);
      ]
  in
  let oc = open_out "BENCH_prune.json" in
  output_string oc (Ovo_obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "written: BENCH_prune.json\n"

(* ------------------------------------------------------------------ *)
(* [learn]: the ovo.learn subsystem end to end.  A small ground-truth
   corpus (all catalogue families at n <= 8 plus seeded randoms) is
   generated twice and the two NDJSON serialisations must be
   byte-identical — the dataset factory is deterministic by spec.  The
   gap harness then prices every default orderer against the corpus's
   exact optima; CI gates scorer_mean_gap <= random_mean_gap (the
   learned scorer must beat the random baseline it exists to replace).
   Finally the scorer-only pruning seed is charged against hwb-10: it
   must prune states while leaving the DP's answer bit-identical.
   Results go to BENCH_learn.json; the corpus and the default model are
   left as learn-dataset.ndjson / learn-model.json for the artifact
   upload. *)
let learn_bench () =
  section "learn";
  let module B = Ovo_core.Bound in
  let module D = Ovo_learn.Dataset in
  let module G = Ovo_learn.Gap in
  let spec = { D.default_spec with D.n_max = 8; random = 4 } in
  let rows = D.generate spec in
  let ndjson = D.to_ndjson rows in
  let deterministic = ndjson = D.to_ndjson (D.generate spec) in
  Printf.printf "dataset: %d rows, deterministic=%b\n" (List.length rows)
    deterministic;
  let stats = G.evaluate (G.default_orderers ()) rows in
  G.report Format.std_formatter stats;
  Format.pp_print_flush Format.std_formatter ();
  let mean_gap name =
    match List.find_opt (fun s -> s.G.s_name = name) stats with
    | Some s -> s.G.s_mean_gap
    | None -> nan
  in
  let n = 10 in
  let tt = F.hidden_weighted_bit n in
  let plain = Fs.run tt in
  let b = Ovo_learn.Scorer.bound tt in
  let pruned = Fs.run ~prune:b tt in
  let identical =
    pruned.Fs.mincost = plain.Fs.mincost
    && pruned.Fs.size = plain.Fs.size
    && pruned.Fs.order = plain.Fs.order
    && pruned.Fs.widths = plain.Fs.widths
  in
  Printf.printf
    "scored seed on hwb-%d: %d states pruned, identical=%b, \
     lower/incumbent %d/%d\n"
    n (B.states_pruned b) identical (B.best_lower b) (B.incumbent b);
  let oc = open_out "learn-dataset.ndjson" in
  output_string oc ndjson;
  close_out oc;
  Ovo_learn.Scorer.Weights.save "learn-model.json"
    Ovo_learn.Scorer.Weights.default;
  let doc =
    Ovo_obs.Json.Obj
      [
        ("dataset_rows", Ovo_obs.Json.Int (List.length rows));
        ("dataset_deterministic", Ovo_obs.Json.Bool deterministic);
        ("scorer_mean_gap", Ovo_obs.Json.Float (mean_gap "scored"));
        ("random_mean_gap", Ovo_obs.Json.Float (mean_gap "random"));
        ("orderers", Ovo_obs.Json.List (List.map G.stat_to_json stats));
        ( "scored_seed",
          Ovo_obs.Json.Obj
            [
              ("hwb_n", Ovo_obs.Json.Int n);
              ("states_pruned", Ovo_obs.Json.Int (B.states_pruned b));
              ("identical", Ovo_obs.Json.Bool identical);
              ("bound", B.to_json_value b);
            ] );
      ]
  in
  let oc = open_out "BENCH_learn.json" in
  output_string oc (Ovo_obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "written: BENCH_learn.json, learn-dataset.ndjson, learn-model.json\n"

(* ------------------------------------------------------------------ *)

(* Telemetry: what the instruments cost and how honest the quantile
   estimates are.  The histogram's log-bucket ladder promises quantiles
   within Histo.max_rel_error (~4.4%) of an exact nearest-rank over the
   raw samples — measured here against a heavy-tailed synthetic
   distribution spanning the ladder.  The per-request cost of the whole
   telemetry path (endpoint counters + latency histograms + rolling
   windows + solve/queue-wait recording) is measured as warm-request
   throughput of an instrumented daemon vs one with telemetry off
   (median of interleaved rounds).  Results go to BENCH_metrics.json;
   CI gates overhead_ratio <= 1.10 and both rel. errors <= 0.10. *)
let metrics_bench () =
  section "metrics";
  let module H = Ovo_metrics.Histo in
  let rng = Random.State.make [| 4242 |] in
  let samples =
    (* log-uniform over ~3.9 decades: 0.01 .. ~81 ms, the busy part of
       the ladder *)
    Array.init 50_000 (fun _ ->
        0.01 *. exp (9. *. Random.State.float rng 1.))
  in
  let h = H.create () in
  Array.iter (H.record h) samples;
  let snap = H.snapshot h in
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let exact q =
    let n = Array.length sorted in
    sorted.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))
  in
  let rel_err q =
    let e = exact q in
    Float.abs (Option.get (H.quantile snap q) -. e) /. e
  in
  let p50_err = rel_err 0.5 and p99_err = rel_err 0.99 in
  Printf.printf
    "histogram quantile rel. error vs exact nearest-rank (%d samples): \
     p50 %.4f, p99 %.4f (design bound %.4f)\n"
    (Array.length samples) p50_err p99_err H.max_rel_error;
  let module Sv = Ovo_serve.Server in
  let module Cl = Ovo_serve.Client in
  let module Pr = Ovo_serve.Protocol in
  let hwb10 = T.to_string (F.hidden_weighted_bit 10) in
  let warm_requests = 400 in
  let warm_rps ~telemetry =
    let sock = Filename.temp_file "ovo-bench-metrics" ".sock" in
    Sys.remove sock;
    let cfg =
      { (Sv.default_config ~listen:(Pr.Unix_sock sock)) with
        Sv.workers = 2; queue_cap = 128; telemetry }
    in
    let server = Sv.start cfg in
    let waiter = Thread.create (fun () -> Sv.wait server) () in
    let rps =
      Cl.with_conn (Pr.Unix_sock sock) @@ fun c ->
      let solve id =
        match
          Cl.roundtrip c
            { Pr.id; op =
                Pr.Solve
                  { Pr.table = hwb10; kind = C.Bdd;
                    engine = Ovo_core.Engine.Seq; deadline_ms = None } }
        with
        | Ok { Pr.body = Pr.Ok_solve r; _ } -> r.Pr.cached
        | Ok _ | Error _ -> failwith "metrics bench: unexpected reply"
      in
      assert (not (solve 0));
      let t0 = Unix.gettimeofday () in
      for id = 1 to warm_requests do
        assert (solve id)
      done;
      let dt = Unix.gettimeofday () -. t0 in
      (match Cl.roundtrip c { Pr.id = 0; op = Pr.Shutdown } with
      | Ok { Pr.body = Pr.Bye; _ } -> ()
      | _ -> failwith "metrics bench: shutdown not acknowledged");
      float_of_int warm_requests /. dt
    in
    Thread.join waiter;
    rps
  in
  let rounds = 5 in
  let median xs =
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    a.(Array.length a / 2)
  in
  (* interleave the configurations so drift hits both equally *)
  let pairs =
    List.init rounds (fun _ ->
        (warm_rps ~telemetry:true, warm_rps ~telemetry:false))
  in
  let instr = median (List.map fst pairs) in
  let uninstr = median (List.map snd pairs) in
  let ratio = uninstr /. instr in
  Printf.printf
    "warm-request throughput (median of %d rounds x %d requests): \
     instrumented %.0f rps, telemetry off %.0f rps, overhead ratio %.3fx\n"
    rounds warm_requests instr uninstr ratio;
  let doc =
    Ovo_obs.Json.Obj
      [
        ("warm_requests", Ovo_obs.Json.Int warm_requests);
        ("rounds", Ovo_obs.Json.Int rounds);
        ("instrumented_rps", Ovo_obs.Json.Float instr);
        ("uninstrumented_rps", Ovo_obs.Json.Float uninstr);
        ("overhead_ratio", Ovo_obs.Json.Float ratio);
        ("quantile_samples", Ovo_obs.Json.Int (Array.length samples));
        ("p50_rel_err", Ovo_obs.Json.Float p50_err);
        ("p99_rel_err", Ovo_obs.Json.Float p99_err);
      ]
  in
  let oc = open_out "BENCH_metrics.json" in
  output_string oc (Ovo_obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "written: BENCH_metrics.json\n"

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock micro-benchmarks: one per table/figure.         *)

let wallclock () =
  section "wallclock (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let tt8 = T.random (Random.State.make [| 88 |]) 8 in
  let tt10 = T.random (Random.State.make [| 110 |]) 10 in
  let tt12 = T.random (Random.State.make [| 112 |]) 12 in
  let tt6 = T.random (Random.State.make [| 66 |]) 6 in
  let tests =
    Test.make_grouped ~name:"ovo"
      [
        Test.make ~name:"fig1/eval-order-achilles6"
          (Staged.stage (fun () ->
               ignore (E.size (F.achilles 6) (F.achilles_bad_order 6))));
        Test.make ~name:"thm5/fs-n8"
          (Staged.stage (fun () -> ignore (Fs.run tt8)));
        Test.make ~name:"thm5/fs-n10"
          (Staged.stage (fun () -> ignore (Fs.run tt10)));
        Test.make ~name:"quantum/optobdd-n6"
          (Staged.stage (fun () ->
               let ctx = O.make_ctx () in
               ignore (O.minimize ~ctx (O.theorem10 ()) tt6)));
        Test.make ~name:"table1/solve-k3"
          (Staged.stage (fun () -> ignore (Nt.solve ~gamma:3. ~k:3)));
        Test.make ~name:"quality/sifting-n10"
          (Staged.stage (fun () -> ignore (Ovo_ordering.Sifting.run tt10)));
        Test.make ~name:"zdd/fs-zdd-n8"
          (Staged.stage (fun () -> ignore (Fs.run ~kind:C.Zdd tt8)));
        Test.make ~name:"substrate/chain-n12"
          (Staged.stage (fun () ->
               ignore (E.mincost tt12 (Array.init 12 (fun i -> i)))));
        Test.make ~name:"substrate/bitvec-xor-1M"
          (let a = T.random (Random.State.make [| 1 |]) 20 in
           let b = T.random (Random.State.make [| 2 |]) 20 in
           Staged.stage (fun () -> ignore (T.xor a b)));
        Test.make ~name:"dynbdd/sift-n10"
          (Staged.stage (fun () ->
               let man = Ovo_bdd.Dynbdd.create 10 in
               let h = Ovo_bdd.Dynbdd.of_truthtable man tt10 in
               Ovo_bdd.Dynbdd.protect man h;
               Ovo_bdd.Dynbdd.sift man));
        Test.make ~name:"cbdd/build-n10"
          (Staged.stage (fun () ->
               let man = Ovo_bdd.Cbdd.create 10 in
               ignore (Ovo_bdd.Cbdd.of_truthtable man tt10)));
        Test.make ~name:"shared/minimize-mul2"
          (let outputs =
             Array.init 4 (fun j ->
                 T.of_fun 4 (fun code ->
                     ((code land 3) * (code lsr 2)) land (1 lsl j) <> 0))
           in
           Staged.stage (fun () -> ignore (Ovo_core.Shared.minimize outputs)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | Some [] | None -> nan
        in
        (name, est) :: acc)
      results []
  in
  Printf.printf "%-34s %16s\n" "benchmark" "ns/run";
  List.iter
    (fun (name, est) -> Printf.printf "%-34s %16.0f\n" name est)
    (List.sort compare rows)

let () =
  fig1 ();
  table1 ();
  table2 ();
  thm5_scaling ();
  quantum_vs_classical ();
  optimality_check ();
  zdd_mtbdd ();
  heuristic_quality ();
  ablations ();
  shared_bench ();
  spectrum ();
  engine_bench ();
  obs_bench ();
  serve_bench ();
  store_bench ();
  mem_bench ();
  prune_bench ();
  learn_bench ();
  metrics_bench ();
  wallclock ();
  Printf.printf "\nAll sections completed.\n"

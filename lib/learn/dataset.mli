(** Ground-truth ordering corpus: the exact DP as a label factory.

    The learned-ordering papers train against heuristic proxies because
    exact optima are unobtainable at their scale; up to n≈16 this
    repository computes them outright.  A dataset row pairs a
    function's {!Features} with its provably optimal ordering and cost
    (from {!Ovo_core.Fs.run}) plus the costs of the cheap baselines —
    scored, influence, sifting, a seeded random permutation, and the
    worst ordering observed across the sampled set — everything a
    scorer fit or a gap report needs.

    Generation is {e deterministic by spec}: the same {!spec} always
    yields the byte-identical NDJSON corpus (qcheck-pinned), because
    every random choice derives from [spec.seed] and the row index.
    With a [store] directory it is also {e resumable}: each completed
    row is appended to a CRC-framed {!Ovo_store.Rlog} keyed by the spec,
    so an interrupted run redoes only the in-flight row, and the final
    corpus is byte-identical to an uninterrupted one. *)

type spec = {
  families : string list option;
      (** restrict to these catalogue names ([None] = all) *)
  n_max : int;  (** catalogue instantiation cap (and random-arity cap) *)
  random : int;  (** extra seeded random functions appended *)
  seed : int;
  kind : Ovo_core.Compact.kind;
}

val default_spec : spec
(** All families at [n_max = 12], no randoms, seed 1987, BDD. *)

type costs = {
  c_opt : int;  (** the exact optimum — the label *)
  c_worst : int;
      (** costliest ordering among the sampled set (identity, reverse,
          16 seeded random permutations, and every heuristic's order) —
          a lower bound on the true worst *)
  c_scored : int;
  c_influence : int;
  c_sifting : int;
  c_random : int;  (** the first seeded random permutation's cost *)
}

type row = {
  name : string;
  n : int;
  digest : string;  (** permutation-invariant cache digest *)
  table : string;  (** the truth table, so evaluators can re-derive *)
  opt_order : int array;  (** repository convention, read-last first *)
  features : Features.t;
  costs : costs;
}

val tasks : spec -> (string * Ovo_boolfun.Truthtable.t) list
(** The work list the spec denotes, in deterministic order: catalogue
    entries (filtered by [families]) then [random-<seed>-<i>] randoms.
    Raises [Failure] on a family name outside the catalogue. *)

val solve_row :
  ?trace:Ovo_obs.Trace.t ->
  ?weights:Scorer.Weights.t ->
  spec ->
  index:int ->
  string ->
  Ovo_boolfun.Truthtable.t ->
  row
(** Label one function: features, heuristic costs, then the exact DP
    (scorer-seeded branch-and-bound — exact, just faster).  Span
    [learn.dataset.row]. *)

val generate :
  ?trace:Ovo_obs.Trace.t ->
  ?weights:Scorer.Weights.t ->
  ?store:string ->
  ?on_row:(row -> unit) ->
  spec ->
  row list
(** All rows of the spec, in {!tasks} order.  [store] names a directory
    whose [dataset.rlog] caches completed rows: rows recovered from a
    matching spec are reused, a spec mismatch starts the log over.
    [on_row] fires once per row (fresh or recovered), in order. *)

val row_to_json : row -> Ovo_obs.Json.t

val row_of_json : Ovo_obs.Json.t -> (row, string) result

val to_ndjson : row list -> string
(** One {!row_to_json} object per line — the corpus format `ovo
    dataset` writes and `ovo eval-orderers` reads. *)

val of_ndjson : string -> (row list, string) result

(** Exact optimality-gap evaluation of ordering heuristics.

    Because every {!Dataset} row carries the provably optimal cost, an
    orderer's quality needs no proxy: its {e gap} on a function is
    [cost / optimal] (1.0 means optimal) and its {e regret} is
    [cost - optimal] in nodes.  {!evaluate} prices each orderer on
    every row and aggregates the gap distribution — mean and max
    exactly, p50/p90 through {!Ovo_metrics.Histo} (log-bucketed, within
    ~4.4% — the same instrument the daemon's latency telemetry uses, so
    the numbers merge with fleet telemetry for free).

    Surfaced as [ovo eval-orderers] and the [[learn]] bench section;
    CI gates [scorer_mean_gap <= random_mean_gap] on the catalogue. *)

type orderer = {
  o_name : string;
  o_order : Ovo_boolfun.Truthtable.t -> int array;
      (** repository convention: [order.(0)] read last *)
}

val default_orderers :
  ?weights:Scorer.Weights.t ->
  ?kind:Ovo_core.Compact.kind ->
  ?seed:int ->
  unit ->
  orderer list
(** [scored], [influence], [sifting], [window], and [random] — the
    random baseline draws its permutation deterministically from [seed]
    and the function's content hash, so reports are reproducible and
    row-order independent. *)

type stat = {
  s_name : string;
  s_rows : int;
  s_optimal : int;  (** rows hit exactly (gap = 1) *)
  s_mean_gap : float;  (** exact arithmetic mean *)
  s_max_gap : float;
  s_p50_gap : float;  (** histogram estimate *)
  s_p90_gap : float;  (** histogram estimate *)
  s_mean_regret : float;  (** mean extra nodes over optimal *)
  s_max_regret : int;
}

val evaluate :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Ovo_core.Compact.kind ->
  orderer list ->
  Dataset.row list ->
  stat list
(** One stat per orderer, in input order (span [learn.gap.<name>]
    each).  Raises [Invalid_argument] when an orderer returns something
    that is not a permutation — the harness is also the test bed for
    buggy orderers. *)

val stat_to_json : stat -> Ovo_obs.Json.t

val report : Format.formatter -> stat list -> unit
(** Aligned text table, one orderer per line. *)

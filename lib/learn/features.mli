(** Structural features for scored variable ordering.

    The learned-ordering literature (Grumberg–Livne–Markovitch; Kimura–
    Fujita–Wille) scores variables by cheap structural signals — literal
    frequency, adjacency in conjunctions, topological proximity — and
    orders by score instead of probing diagram sizes.  This module
    extracts those signals from the three front-ends the repository
    accepts: raw truth tables (semantic features only), expressions
    (semantic plus syntactic structure) and BLIF netlists (semantic plus
    input-pin topology).

    Every semantic feature is {e permutation-equivariant by
    construction}: extracting from a relabelled function yields the
    relabelled feature vectors ({!permute} states the law, and
    [test/test_learn.ml] qchecks it with exact float equality — each
    entry is a count over all [2^n] assignments, so relabelling permutes
    the very same sums).  Syntactic features are equivariant under
    relabelling of the {e source} (an expression with renamed
    variables); for raw tables they fall back to semantic proxies or
    zeros, as documented per field. *)

type t = {
  n : int;  (** arity *)
  influence : float array;
      (** flip probability [Pr(f(x) <> f(x xor e_j))] — the
          Boolean-Fourier weight of variable [j] *)
  polarity : float array;
      (** signed cofactor imbalance
          [(|f_{j=1}| - |f_{j=0}|) / 2^(n-1)] — the first-order Walsh
          coefficient, up to sign convention *)
  spectral : float array;
      (** second-order spectral moment: mean over [k <> j] of the
          absolute pairwise Walsh coefficient [|W_{jk}|] *)
  occurrence : float array;
      (** literal/occurrence frequency in the source formula
          (normalised to sum 1); for raw tables, the support indicator
          (1 when the function depends on the variable) *)
  cosens : float array array;
      (** pairwise co-sensitivity
          [Pr(flipping j flips f and flipping k flips f)] — the
          semantic analogue of a conjunction-adjacency matrix; symmetric,
          zero diagonal *)
  adjacency : float array array;
      (** conjunction adjacency: how often [j] and [k] meet across the
          two operands of an [And] (normalised to max 1); zeros for raw
          tables, declaration handled by {!of_blif} *)
  proximity : float array array;
      (** topological proximity: [1 / (smallest common subtree size)]
          over all places where [j] and [k] meet in the formula; for
          BLIF, [1 / (1 + pin distance)] in input declaration order;
          zeros for raw tables *)
}

val of_truthtable : Ovo_boolfun.Truthtable.t -> t
(** Semantic features only ([occurrence] = support indicator,
    [adjacency] and [proximity] zero).  [O(n^2 2^n)]. *)

val of_expr : ?arity:int -> Ovo_boolfun.Expr.t -> t
(** Semantic features of the tabulated expression plus literal
    frequency, conjunction adjacency and subtree proximity from the
    syntax tree.  [arity] as in {!Ovo_boolfun.Expr.to_truthtable}. *)

val of_blif : Ovo_boolfun.Blif.t -> string -> t
(** Features of one primary output (by name, as in
    {!Ovo_boolfun.Blif.output_table}): semantic features of the
    elaborated table plus pin-distance proximity over the declared
    inputs.  Raises [Not_found] for unknown names.  Pin distance
    depends on declaration order, so {!of_blif} is the one constructor
    outside the equivariance law. *)

val permute : t -> int array -> t
(** The equivariance law: if [g = Truthtable.permute_vars f perm] then
    [of_truthtable g = permute (of_truthtable f) perm] — entry [j] of
    the result is entry [perm.(j)] of the input (pairwise entries
    [(j, k)] map from [(perm.(j), perm.(k))]). *)

val equal : t -> t -> bool
(** Exact (float-wise) equality. *)

val to_json : t -> Ovo_obs.Json.t

val of_json : Ovo_obs.Json.t -> (t, string) result
(** Inverse of {!to_json} (accepts integer-valued floats printed as
    JSON integers). *)

val pp : Format.formatter -> t -> unit

module T = Ovo_boolfun.Truthtable
module F = Ovo_boolfun.Families
module E = Ovo_core.Eval_order
module Json = Ovo_obs.Json
module Trace = Ovo_obs.Trace

type spec = {
  families : string list option;
  n_max : int;
  random : int;
  seed : int;
  kind : Ovo_core.Compact.kind;
}

let default_spec =
  {
    families = None;
    n_max = 12;
    random = 0;
    seed = 1987;
    kind = Ovo_core.Compact.Bdd;
  }

type costs = {
  c_opt : int;
  c_worst : int;
  c_scored : int;
  c_influence : int;
  c_sifting : int;
  c_random : int;
}

type row = {
  name : string;
  n : int;
  digest : string;
  table : string;
  opt_order : int array;
  features : Features.t;
  costs : costs;
}

let kind_to_string = function
  | Ovo_core.Compact.Bdd -> "bdd"
  | Ovo_core.Compact.Zdd -> "zdd"

let spec_to_json s =
  Json.Obj
    [
      ( "families",
        match s.families with
        | None -> Json.Null
        | Some fs -> Json.List (List.map (fun f -> Json.String f) fs) );
      ("n_max", Json.Int s.n_max);
      ("random", Json.Int s.random);
      ("seed", Json.Int s.seed);
      ("kind", Json.String (kind_to_string s.kind));
    ]

let tasks spec =
  let catalogue = F.catalogue ~max_arity:spec.n_max in
  let named =
    match spec.families with
    | None -> catalogue
    | Some names ->
        List.map
          (fun name ->
            match List.assoc_opt name catalogue with
            | Some tt -> (name, tt)
            | None ->
                failwith
                  (Printf.sprintf
                     "unknown family %S at n_max %d; try `ovo families`" name
                     spec.n_max))
          names
  in
  let randoms =
    List.init spec.random (fun i ->
        (* arity cycles 4..8 (capped by n_max); each function gets its
           own deterministic stream so row i never depends on row i-1 *)
        let n = min spec.n_max (4 + (i mod 5)) in
        let rng = Random.State.make [| 0x0D5; spec.seed; i |] in
        (Printf.sprintf "random-%d-%d" spec.seed i, T.random rng n))
  in
  named @ randoms

(* The sampled stand-in for the (intractable) exact worst ordering:
   identity, reverse, 16 seeded permutations, and every heuristic order
   already priced. *)
let sampled_orders rng n =
  let identity = Array.init n (fun j -> j) in
  let reverse = Array.init n (fun j -> n - 1 - j) in
  let shuffle () =
    let a = Array.init n (fun j -> j) in
    for j = n - 1 downto 1 do
      let k = Random.State.int rng (j + 1) in
      let t = a.(j) in
      a.(j) <- a.(k);
      a.(k) <- t
    done;
    a
  in
  (identity, reverse, List.init 16 (fun _ -> shuffle ()))

let solve_row ?(trace = Trace.null) ?weights spec ~index name tt =
  Trace.with_span trace ~cat:"learn"
    ~args:(fun () ->
      [ ("name", Json.String name); ("n", Json.Int (T.arity tt)) ])
    "learn.dataset.row"
    (fun () ->
      let kind = spec.kind in
      let n = T.arity tt in
      let features = Features.of_truthtable tt in
      let scored = Scorer.run ~trace ?weights ~kind tt in
      let influence = Ovo_ordering.Influence.run ~kind tt in
      let sifting = Ovo_ordering.Sifting.run ~trace ~kind tt in
      let rng = Random.State.make [| spec.seed; index |] in
      let identity, reverse, randoms = sampled_orders rng n in
      let random_costs = List.map (fun o -> E.mincost ~kind tt o) randoms in
      let c_random = match random_costs with c :: _ -> c | [] -> 0 in
      (* exact label: scorer-seeded branch-and-bound, still exact *)
      let prune = Scorer.seeded_bound ~trace ?weights ~kind tt in
      let opt = Ovo_core.Fs.run ~trace ~kind ~prune tt in
      let c_worst =
        List.fold_left max 0
          (E.mincost ~kind tt identity :: E.mincost ~kind tt reverse
           :: scored.Scorer.mincost :: influence.Ovo_ordering.Influence.mincost
           :: sifting.Ovo_ordering.Sifting.mincost :: random_costs)
      in
      {
        name;
        n;
        digest = T.digest tt;
        table = T.to_string tt;
        opt_order = opt.Ovo_core.Fs.order;
        features;
        costs =
          {
            c_opt = opt.Ovo_core.Fs.mincost;
            c_worst;
            c_scored = scored.Scorer.mincost;
            c_influence = influence.Ovo_ordering.Influence.mincost;
            c_sifting = sifting.Ovo_ordering.Sifting.mincost;
            c_random;
          };
      })

let order_to_json o = Json.List (Array.to_list (Array.map (fun v -> Json.Int v) o))

let row_to_json r =
  Json.Obj
    [
      ("name", Json.String r.name);
      ("n", Json.Int r.n);
      ("digest", Json.String r.digest);
      ("table", Json.String r.table);
      ("opt_order", order_to_json r.opt_order);
      ("opt_cost", Json.Int r.costs.c_opt);
      ("worst_cost", Json.Int r.costs.c_worst);
      ("scored_cost", Json.Int r.costs.c_scored);
      ("influence_cost", Json.Int r.costs.c_influence);
      ("sifting_cost", Json.Int r.costs.c_sifting);
      ("random_cost", Json.Int r.costs.c_random);
      ("features", Features.to_json r.features);
    ]

let ( let* ) = Result.bind

let row_of_json j =
  let str name =
    match Json.member name j with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "row: missing string field %S" name)
  in
  let int name =
    match Option.map Json.to_int_opt (Json.member name j) with
    | Some (Some i) -> Ok i
    | _ -> Error (Printf.sprintf "row: missing int field %S" name)
  in
  let* name = str "name" in
  let* n = int "n" in
  let* digest = str "digest" in
  let* table = str "table" in
  let* opt_order =
    match Json.member "opt_order" j with
    | Some (Json.List xs) -> (
        try
          Ok
            (Array.of_list
               (List.map
                  (fun x ->
                    match Json.to_int_opt x with
                    | Some v -> v
                    | None -> raise Exit)
                  xs))
        with Exit -> Error "row: opt_order entry is not an int")
    | _ -> Error "row: missing opt_order"
  in
  let* c_opt = int "opt_cost" in
  let* c_worst = int "worst_cost" in
  let* c_scored = int "scored_cost" in
  let* c_influence = int "influence_cost" in
  let* c_sifting = int "sifting_cost" in
  let* c_random = int "random_cost" in
  let* features =
    match Json.member "features" j with
    | Some f -> Features.of_json f
    | None -> Error "row: missing features"
  in
  if Array.length opt_order <> n then Error "row: opt_order arity mismatch"
  else
    Ok
      {
        name;
        n;
        digest;
        table;
        opt_order;
        features;
        costs = { c_opt; c_worst; c_scored; c_influence; c_sifting; c_random };
      }

let to_ndjson rows =
  String.concat ""
    (List.map (fun r -> Json.to_string (row_to_json r) ^ "\n") rows)

let of_ndjson text =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  let rec go acc i = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match Json.parse line with
        | Error m -> Error (Printf.sprintf "line %d: %s" i m)
        | Ok j -> (
            match row_of_json j with
            | Error m -> Error (Printf.sprintf "line %d: %s" i m)
            | Ok r -> go (r :: acc) (i + 1) rest))
  in
  go [] 1 lines

(* Rlog record types of the resume store: 0 = the generating spec,
   1 = one completed row (its JSON, reused verbatim on recovery). *)
let rt_spec = 0

let rt_row = 1

let generate ?(trace = Trace.null) ?weights ?store ?(on_row = fun _ -> ())
    spec =
  let ts = tasks spec in
  let recovered, append, finish =
    match store with
    | None -> (Hashtbl.create 1, (fun _ -> ()), fun () -> ())
    | Some dir ->
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        let path = Filename.concat dir "dataset.rlog" in
        let spec_line = Json.to_string (spec_to_json spec) in
        let log, records, _recovery = Ovo_store.Rlog.open_append path in
        let matches =
          match records with
          | { Ovo_store.Rlog.rtype; payload } :: _ ->
              rtype = rt_spec && payload = spec_line
          | [] -> false
        in
        let log =
          if matches then log
          else begin
            (* different spec (or fresh file): start over *)
            Ovo_store.Rlog.close log;
            let log = Ovo_store.Rlog.create path in
            Ovo_store.Rlog.append log ~rtype:rt_spec spec_line;
            log
          end
        in
        let tbl = Hashtbl.create 64 in
        if matches then
          List.iter
            (fun { Ovo_store.Rlog.rtype; payload } ->
              if rtype = rt_row then
                match Result.bind (Json.parse payload) row_of_json with
                | Ok r -> Hashtbl.replace tbl r.name r
                | Error _ -> ())
            records;
        ( tbl,
          (fun r ->
            Ovo_store.Rlog.append log ~rtype:rt_row
              (Json.to_string (row_to_json r))),
          fun () -> Ovo_store.Rlog.close log )
  in
  Fun.protect ~finally:finish @@ fun () ->
  Trace.with_span trace ~cat:"learn"
    ~args:(fun () ->
      [
        ("tasks", Json.Int (List.length ts));
        ("recovered", Json.Int (Hashtbl.length recovered));
      ])
    "learn.dataset.generate"
    (fun () ->
      List.mapi
        (fun index (name, tt) ->
          let r =
            match Hashtbl.find_opt recovered name with
            | Some r -> r
            | None ->
                let r = solve_row ~trace ?weights spec ~index name tt in
                append r;
                r
          in
          on_row r;
          r)
        ts)

module T = Ovo_boolfun.Truthtable
module B = Ovo_core.Bound
module Json = Ovo_obs.Json
module Trace = Ovo_obs.Trace

module Weights = struct
  type t = {
    influence : float;
    polarity : float;
    spectral : float;
    occurrence : float;
    cosens : float;
    adjacency : float;
    proximity : float;
    decay : float;
  }

  (* Hand-tuned against the catalogue corpus: influence dominates (the
     classic place-deciders-at-the-root rule), co-sensitivity pulls
     interacting variables together, the syntactic terms only move
     expression/BLIF inputs. *)
  let default =
    {
      influence = 1.0;
      polarity = 0.15;
      spectral = 0.35;
      occurrence = 0.4;
      cosens = 0.8;
      adjacency = 0.6;
      proximity = 0.4;
      decay = 0.5;
    }

  let to_json w =
    Json.Obj
      [
        ("version", Json.Int 1);
        ( "weights",
          Json.Obj
            [
              ("influence", Json.Float w.influence);
              ("polarity", Json.Float w.polarity);
              ("spectral", Json.Float w.spectral);
              ("occurrence", Json.Float w.occurrence);
              ("cosens", Json.Float w.cosens);
              ("adjacency", Json.Float w.adjacency);
              ("proximity", Json.Float w.proximity);
            ] );
        ("decay", Json.Float w.decay);
      ]

  let of_json j =
    let num path dflt =
      match Json.find_path path j with
      | None -> Ok dflt
      | Some v -> (
          match Json.to_float_opt v with
          | Some f -> Ok f
          | None ->
              Error
                (Printf.sprintf "model field %s is not a number"
                   (String.concat "." path)))
    in
    let ( let* ) = Result.bind in
    let* influence = num [ "weights"; "influence" ] default.influence in
    let* polarity = num [ "weights"; "polarity" ] default.polarity in
    let* spectral = num [ "weights"; "spectral" ] default.spectral in
    let* occurrence = num [ "weights"; "occurrence" ] default.occurrence in
    let* cosens = num [ "weights"; "cosens" ] default.cosens in
    let* adjacency = num [ "weights"; "adjacency" ] default.adjacency in
    let* proximity = num [ "weights"; "proximity" ] default.proximity in
    let* decay = num [ "decay" ] default.decay in
    if decay < 0. || decay > 1. then Error "model decay must lie in [0,1]"
    else
      Ok
        {
          influence;
          polarity;
          spectral;
          occurrence;
          cosens;
          adjacency;
          proximity;
          decay;
        }

  let load path =
    match
      try
        let ic = open_in path in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        Ok text
      with Sys_error m -> Error m
    with
    | Error m -> Error m
    | Ok text -> (
        match Json.parse text with
        | Ok j -> of_json j
        | Error m -> Error (Printf.sprintf "%s: %s" path m))

  let save path w =
    let oc = open_out path in
    output_string oc (Json.to_string (to_json w));
    output_char oc '\n';
    close_out oc
end

type result = { mincost : int; order : int array }

let place ?(weights = Weights.default) (f : Features.t) =
  let n = f.n in
  let w = weights in
  let base =
    Array.init n (fun j ->
        (w.Weights.influence *. f.Features.influence.(j))
        +. (w.Weights.polarity *. Float.abs f.Features.polarity.(j))
        +. (w.Weights.spectral *. f.Features.spectral.(j))
        +. (w.Weights.occurrence *. f.Features.occurrence.(j)))
  in
  let coupling j k =
    (w.Weights.cosens *. f.Features.cosens.(j).(k))
    +. (w.Weights.adjacency *. f.Features.adjacency.(j).(k))
    +. (w.Weights.proximity *. f.Features.proximity.(j).(k))
  in
  let placed = Array.make n false in
  let attract = Array.make n 0. in
  (* root-first greedy: highest score splits first *)
  let root_first = Array.make n 0 in
  for t = 0 to n - 1 do
    let best = ref (-1) and best_score = ref neg_infinity in
    for j = 0 to n - 1 do
      if not placed.(j) then begin
        let s = base.(j) +. attract.(j) in
        if s > !best_score then begin
          best_score := s;
          best := j
        end
      end
    done;
    let p = !best in
    placed.(p) <- true;
    root_first.(t) <- p;
    for j = 0 to n - 1 do
      if not placed.(j) then
        attract.(j) <- (w.Weights.decay *. attract.(j)) +. coupling j p
    done
  done;
  (* repository convention: order.(0) is read last *)
  Array.init n (fun j -> root_first.(n - 1 - j))

let order ?weights tt = place ?weights (Features.of_truthtable tt)

let run ?(trace = Trace.null) ?weights ?kind tt =
  let r = ref None in
  Trace.with_span trace ~cat:"learn"
    ~args:(fun () ->
      match !r with
      | None -> [ ("n", Json.Int (T.arity tt)) ]
      | Some { mincost; _ } ->
          [ ("n", Json.Int (T.arity tt)); ("mincost", Json.Int mincost) ])
    "learn.score"
    (fun () ->
      let f =
        Trace.with_span trace ~cat:"learn" "learn.features" (fun () ->
            Features.of_truthtable tt)
      in
      let order = place ?weights f in
      let res = { mincost = Ovo_core.Eval_order.mincost ?kind tt order; order } in
      r := Some res;
      res)

let upper ?trace ?weights ?kind tt =
  let r = run ?trace ?weights ?kind tt in
  { B.ub_source = "scored"; ub_value = r.mincost }

let bound ?trace ?weights ?(kind = Ovo_core.Compact.Bdd) tt =
  B.make
    ~seed:(upper ?trace ?weights ~kind tt)
    (B.counting_lower kind (Ovo_boolfun.Mtable.of_truthtable tt))

let seeded_bound ?trace ?weights ?(kind = Ovo_core.Compact.Bdd)
    ?(portfolio = false) ?rng tt =
  (* the scored incumbent is free; sifting (or the portfolio) then gets
     a chance to tighten it — ties keep the free seed *)
  let scored = upper ?trace ?weights ~kind tt in
  let refined =
    if portfolio then Ovo_ordering.Seed.portfolio_upper ?trace ~kind ?rng tt
    else Ovo_ordering.Seed.sifting_upper ?trace ~kind tt
  in
  let seed =
    if scored.B.ub_value <= refined.B.ub_value then scored else refined
  in
  B.make ~seed (B.counting_lower kind (Ovo_boolfun.Mtable.of_truthtable tt))

let portfolio_member ?weights ?kind () =
  ( "scored",
    fun tt ->
      let r = run ?weights ?kind tt in
      {
        Ovo_ordering.Portfolio.method_name = "scored";
        mincost = r.mincost;
        order = r.order;
      } )

module T = Ovo_boolfun.Truthtable
module E = Ovo_boolfun.Expr
module Json = Ovo_obs.Json

type t = {
  n : int;
  influence : float array;
  polarity : float array;
  spectral : float array;
  occurrence : float array;
  cosens : float array array;
  adjacency : float array array;
  proximity : float array array;
}

(* Every semantic entry below is a count over all 2^n assignments
   divided by a power of two (or an exact mean of such), so extracting
   from a relabelled table performs the very same float operations in a
   different order of variables — equivariance holds with exact float
   equality, which the qcheck property relies on. *)

let of_truthtable tt =
  let n = T.arity tt in
  let size = 1 lsl n in
  let fsize = float_of_int size in
  let influence =
    Array.init n (fun j ->
        let flips = ref 0 in
        for code = 0 to size - 1 do
          if T.eval tt code <> T.eval tt (code lxor (1 lsl j)) then incr flips
        done;
        float_of_int !flips /. fsize)
  in
  let polarity =
    Array.init n (fun j ->
        let f0, f1 = T.cofactors tt j in
        float_of_int (T.count_ones f1 - T.count_ones f0)
        /. float_of_int (size / 2))
  in
  let cosens = Array.make_matrix n n 0. in
  let walsh = Array.make_matrix n n 0. in
  for j = 0 to n - 1 do
    for k = j + 1 to n - 1 do
      let both = ref 0 and agree = ref 0 in
      for code = 0 to size - 1 do
        let v = T.eval tt code in
        let fj = v <> T.eval tt (code lxor (1 lsl j)) in
        let fk = v <> T.eval tt (code lxor (1 lsl k)) in
        if fj && fk then incr both;
        (* (-1)^(f + x_j + x_k) summed over all codes *)
        let chi =
          (if v then 1 else 0)
          lxor ((code lsr j) land 1)
          lxor ((code lsr k) land 1)
        in
        if chi = 0 then incr agree
      done;
      let c = float_of_int !both /. fsize in
      cosens.(j).(k) <- c;
      cosens.(k).(j) <- c;
      let w = Float.abs (float_of_int ((2 * !agree) - size) /. fsize) in
      walsh.(j).(k) <- w;
      walsh.(k).(j) <- w
    done
  done;
  let spectral =
    Array.init n (fun j ->
        if n <= 1 then 0.
        else
          Array.fold_left ( +. ) 0. walsh.(j) /. float_of_int (n - 1))
  in
  let occurrence =
    Array.init n (fun j -> if T.depends_on tt j then 1. else 0.)
  in
  {
    n;
    influence;
    polarity;
    spectral;
    occurrence;
    cosens;
    adjacency = Array.make_matrix n n 0.;
    proximity = Array.make_matrix n n 0.;
  }

(* Distinct variables of a subformula, as a sorted list — subtrees are
   small enough that set-as-list is the simple honest structure. *)
let rec expr_vars = function
  | E.Const _ -> []
  | E.Var j -> [ j ]
  | E.Not e -> expr_vars e
  | E.And (a, b) | E.Or (a, b) | E.Xor (a, b) ->
      List.sort_uniq compare (expr_vars a @ expr_vars b)

let of_expr ?arity e =
  let tt = E.to_truthtable ?arity e in
  let base = of_truthtable tt in
  let n = base.n in
  let occ = Array.make n 0. in
  let adjacency = Array.make_matrix n n 0. in
  let proximity = Array.make_matrix n n 0. in
  let meet m here a b =
    List.iter
      (fun u ->
        List.iter
          (fun v ->
            if u <> v && u < n && v < n then begin
              m.(u).(v) <- max m.(u).(v) here;
              m.(v).(u) <- max m.(v).(u) here
            end)
          b)
      a
  in
  let rec walk = function
    | E.Const _ -> ()
    | E.Var j -> if j < n then occ.(j) <- occ.(j) +. 1.
    | E.Not e -> walk e
    | E.And (a, b) as node ->
        let va = expr_vars a and vb = expr_vars b in
        let here = 1. /. float_of_int (E.size node) in
        List.iter
          (fun u ->
            List.iter
              (fun v ->
                if u <> v && u < n && v < n then begin
                  adjacency.(u).(v) <- adjacency.(u).(v) +. 1.;
                  adjacency.(v).(u) <- adjacency.(v).(u) +. 1.
                end)
              vb)
          va;
        meet proximity here va vb;
        walk a;
        walk b
    | E.Or (a, b) | E.Xor (a, b) ->
        let node_size = 1 + E.size a + E.size b in
        let here = 1. /. float_of_int node_size in
        meet proximity here (expr_vars a) (expr_vars b);
        walk a;
        walk b
  in
  walk e;
  let total = Array.fold_left ( +. ) 0. occ in
  if total > 0. then Array.iteri (fun j c -> occ.(j) <- c /. total) occ;
  let amax = Array.fold_left (fun m row -> Array.fold_left max m row) 0. adjacency in
  if amax > 0. then
    Array.iter (fun row -> Array.iteri (fun k v -> row.(k) <- v /. amax) row)
      adjacency;
  { base with occurrence = occ; adjacency; proximity }

let of_blif b name =
  let tt = Ovo_boolfun.Blif.output_table b name in
  let base = of_truthtable tt in
  let n = base.n in
  let proximity =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then 0. else 1. /. float_of_int (1 + abs (i - j))))
  in
  { base with proximity }

let permute f perm =
  let n = f.n in
  let vec a = Array.init n (fun j -> a.(perm.(j))) in
  let mat m = Array.init n (fun j -> Array.init n (fun k -> m.(perm.(j)).(perm.(k)))) in
  {
    n;
    influence = vec f.influence;
    polarity = vec f.polarity;
    spectral = vec f.spectral;
    occurrence = vec f.occurrence;
    cosens = mat f.cosens;
    adjacency = mat f.adjacency;
    proximity = mat f.proximity;
  }

let equal a b =
  a.n = b.n
  && a.influence = b.influence
  && a.polarity = b.polarity
  && a.spectral = b.spectral
  && a.occurrence = b.occurrence
  && a.cosens = b.cosens
  && a.adjacency = b.adjacency
  && a.proximity = b.proximity

let json_vec a = Json.List (Array.to_list (Array.map (fun x -> Json.Float x) a))

let json_mat m = Json.List (Array.to_list (Array.map json_vec m))

let to_json f =
  Json.Obj
    [
      ("n", Json.Int f.n);
      ("influence", json_vec f.influence);
      ("polarity", json_vec f.polarity);
      ("spectral", json_vec f.spectral);
      ("occurrence", json_vec f.occurrence);
      ("cosens", json_mat f.cosens);
      ("adjacency", json_mat f.adjacency);
      ("proximity", json_mat f.proximity);
    ]

let vec_of_json ~len j =
  match j with
  | Json.List xs when List.length xs = len -> (
      let a = Array.make len 0. in
      try
        List.iteri
          (fun i x ->
            match Json.to_float_opt x with
            | Some v -> a.(i) <- v
            | None -> raise Exit)
          xs;
        Ok a
      with Exit -> Error "feature vector entry is not a number")
  | _ -> Error "feature vector has the wrong shape"

let mat_of_json ~len j =
  match j with
  | Json.List rows when List.length rows = len -> (
      let m = Array.make_matrix len len 0. in
      try
        List.iteri
          (fun i row ->
            match vec_of_json ~len row with
            | Ok a -> m.(i) <- a
            | Error _ -> raise Exit)
          rows;
        Ok m
      with Exit -> Error "feature matrix row is malformed")
  | _ -> Error "feature matrix has the wrong shape"

let ( let* ) = Result.bind

let of_json j =
  match Json.member "n" j with
  | Some (Json.Int n) when n >= 0 ->
      let field name = Option.to_result ~none:("missing feature field " ^ name) (Json.member name j) in
      let* influence = Result.bind (field "influence") (vec_of_json ~len:n) in
      let* polarity = Result.bind (field "polarity") (vec_of_json ~len:n) in
      let* spectral = Result.bind (field "spectral") (vec_of_json ~len:n) in
      let* occurrence = Result.bind (field "occurrence") (vec_of_json ~len:n) in
      let* cosens = Result.bind (field "cosens") (mat_of_json ~len:n) in
      let* adjacency = Result.bind (field "adjacency") (mat_of_json ~len:n) in
      let* proximity = Result.bind (field "proximity") (mat_of_json ~len:n) in
      Ok { n; influence; polarity; spectral; occurrence; cosens; adjacency; proximity }
  | _ -> Error "features: missing or malformed n"

let pp ppf f =
  Format.fprintf ppf "@[<v>features n=%d@," f.n;
  for j = 0 to f.n - 1 do
    Format.fprintf ppf "  x%-3d inf=%.3f pol=%+.3f spec=%.3f occ=%.3f@," j
      f.influence.(j) f.polarity.(j) f.spectral.(j) f.occurrence.(j)
  done;
  Format.fprintf ppf "@]"

(** Scoring-based static variable ordering (Kimura–Fujita–Wille style).

    One pass of {!Features} extraction, a weighted score per variable,
    then greedy root-first placement: the next variable is the unplaced
    one maximising [base score + attraction], where attraction pulls
    variables adjacent to recently placed ones (geometric recency
    decay).  No diagram is ever probed during placement, so the orderer
    costs [O(n^2 2^n)] feature extraction plus [O(n^2)] placement —
    cheap enough to run on every serve request — and the single final
    {!Ovo_core.Eval_order.mincost} evaluation prices the result.

    Weights are a learnable model: {!Weights.load} reads a JSON file
    (produced by hand or fitted against an [ovo dataset] corpus) and
    {!Weights.default} is a sane built-in.  The scorer feeds three
    consumers: a portfolio member ({!portfolio_member}), a free first
    incumbent for branch-and-bound pruning ({!bound}, {!seeded_bound})
    and the daemon's deadline-tight [scored] fast path. *)

module Weights : sig
  type t = {
    influence : float;
    polarity : float;
    spectral : float;
    occurrence : float;
    cosens : float;
    adjacency : float;
    proximity : float;
    decay : float;  (** recency decay of the attraction term, in [0,1] *)
  }

  val default : t

  val to_json : t -> Ovo_obs.Json.t

  val of_json : Ovo_obs.Json.t -> (t, string) result
  (** Accepts [{"version":1,"weights":{...},"decay":d}]; absent fields
      keep their {!default} value, non-numeric ones are errors. *)

  val load : string -> (t, string) result
  (** Read and parse a model file. *)

  val save : string -> t -> unit
end

type result = { mincost : int; order : int array }

val place : ?weights:Weights.t -> Features.t -> int array
(** Pure placement on extracted features; returns the repository-
    convention ordering ([order.(0)] read last, highest score at the
    root).  Always a valid permutation of [0 .. n-1]; ties break to the
    smallest variable index, so placement is deterministic. *)

val order : ?weights:Weights.t -> Ovo_boolfun.Truthtable.t -> int array
(** {!Features.of_truthtable} + {!place}. *)

val run :
  ?trace:Ovo_obs.Trace.t ->
  ?weights:Weights.t ->
  ?kind:Ovo_core.Compact.kind ->
  Ovo_boolfun.Truthtable.t ->
  result
(** Extract, place, evaluate once (span [learn.score]). *)

val upper :
  ?trace:Ovo_obs.Trace.t ->
  ?weights:Weights.t ->
  ?kind:Ovo_core.Compact.kind ->
  Ovo_boolfun.Truthtable.t ->
  Ovo_core.Bound.upper
(** The scored ordering's evaluated cost as an achievable upper bound
    ([ub_source = "scored"]). *)

val bound :
  ?trace:Ovo_obs.Trace.t ->
  ?weights:Weights.t ->
  ?kind:Ovo_core.Compact.kind ->
  Ovo_boolfun.Truthtable.t ->
  Ovo_core.Bound.t
(** A pruning context seeded from the scorer {e alone} — the free first
    incumbent, with no sifting probe spent.  Exactness is unaffected
    (the seed is achievable); [BENCH_learn.json] gates that it still
    prunes states on hwb. *)

val seeded_bound :
  ?trace:Ovo_obs.Trace.t ->
  ?weights:Weights.t ->
  ?kind:Ovo_core.Compact.kind ->
  ?portfolio:bool ->
  ?rng:Random.State.t ->
  Ovo_boolfun.Truthtable.t ->
  Ovo_core.Bound.t
(** What [--prune] uses: the scored incumbent first (free), then
    sifting (or the whole portfolio with [portfolio:true]) tightens it;
    the seed records whichever source won, ties going to the scorer. *)

val portfolio_member :
  ?weights:Weights.t ->
  ?kind:Ovo_core.Compact.kind ->
  unit ->
  string * (Ovo_boolfun.Truthtable.t -> Ovo_ordering.Portfolio.entry)
(** The [("scored", run)] pair {!Ovo_ordering.Portfolio.run} accepts as
    an extra member — injected by callers that sit above both
    libraries, mirroring how {!Ovo_ordering.Seed} injects bounds into
    the core. *)

module T = Ovo_boolfun.Truthtable
module E = Ovo_core.Eval_order
module H = Ovo_metrics.Histo
module Json = Ovo_obs.Json
module Trace = Ovo_obs.Trace

type orderer = { o_name : string; o_order : T.t -> int array }

let default_orderers ?weights ?kind ?(seed = 0x0BDD) () =
  [
    { o_name = "scored"; o_order = (fun tt -> Scorer.order ?weights tt) };
    {
      o_name = "influence";
      o_order = (fun tt -> (Ovo_ordering.Influence.run ?kind tt).Ovo_ordering.Influence.order);
    };
    {
      o_name = "sifting";
      o_order = (fun tt -> (Ovo_ordering.Sifting.run ?kind tt).Ovo_ordering.Sifting.order);
    };
    {
      o_name = "window";
      o_order = (fun tt -> (Ovo_ordering.Window.run ?kind tt).Ovo_ordering.Window.order);
    };
    {
      o_name = "random";
      o_order =
        (fun tt ->
          (* content-keyed stream: the same function always draws the
             same permutation, whatever its position in the corpus *)
          let rng = Random.State.make [| seed; T.hash tt |] in
          let n = T.arity tt in
          let a = Array.init n (fun j -> j) in
          for j = n - 1 downto 1 do
            let k = Random.State.int rng (j + 1) in
            let t = a.(j) in
            a.(j) <- a.(k);
            a.(k) <- t
          done;
          a);
    };
  ]

type stat = {
  s_name : string;
  s_rows : int;
  s_optimal : int;
  s_mean_gap : float;
  s_max_gap : float;
  s_p50_gap : float;
  s_p90_gap : float;
  s_mean_regret : float;
  s_max_regret : int;
}

let evaluate ?(trace = Trace.null) ?kind orderers rows =
  List.map
    (fun o ->
      let st = ref None in
      Trace.with_span trace ~cat:"learn"
        ~args:(fun () ->
          match !st with
          | None -> [ ("rows", Json.Int (List.length rows)) ]
          | Some s ->
              [
                ("rows", Json.Int s.s_rows);
                ("mean_gap", Json.Float s.s_mean_gap);
              ])
        ("learn.gap." ^ o.o_name)
        (fun () ->
          let histo = H.create () in
          let sum_gap = ref 0. and max_gap = ref 0. in
          let sum_regret = ref 0 and max_regret = ref 0 in
          let optimal = ref 0 in
          List.iter
            (fun (r : Dataset.row) ->
              let tt = T.of_string r.Dataset.table in
              let cost = E.mincost ?kind tt (o.o_order tt) in
              let opt = r.Dataset.costs.Dataset.c_opt in
              (* a constant function has optimum 0; both are then 0 *)
              let gap =
                if opt = 0 then 1.
                else float_of_int cost /. float_of_int opt
              in
              let regret = cost - opt in
              H.record histo gap;
              sum_gap := !sum_gap +. gap;
              if gap > !max_gap then max_gap := gap;
              sum_regret := !sum_regret + regret;
              if regret > !max_regret then max_regret := regret;
              if regret = 0 then incr optimal)
            rows;
          let count = List.length rows in
          let fcount = float_of_int (max 1 count) in
          let snap = H.snapshot histo in
          let q p = Option.value ~default:0. (H.quantile snap p) in
          let s =
            {
              s_name = o.o_name;
              s_rows = count;
              s_optimal = !optimal;
              s_mean_gap = !sum_gap /. fcount;
              s_max_gap = !max_gap;
              s_p50_gap = q 0.5;
              s_p90_gap = q 0.9;
              s_mean_regret = float_of_int !sum_regret /. fcount;
              s_max_regret = !max_regret;
            }
          in
          st := Some s;
          s))
    orderers

let stat_to_json s =
  Json.Obj
    [
      ("orderer", Json.String s.s_name);
      ("rows", Json.Int s.s_rows);
      ("optimal", Json.Int s.s_optimal);
      ("mean_gap", Json.Float s.s_mean_gap);
      ("max_gap", Json.Float s.s_max_gap);
      ("p50_gap", Json.Float s.s_p50_gap);
      ("p90_gap", Json.Float s.s_p90_gap);
      ("mean_regret", Json.Float s.s_mean_regret);
      ("max_regret", Json.Int s.s_max_regret);
    ]

let report ppf stats =
  Format.fprintf ppf "%-10s %5s %8s %9s %8s %8s %8s %10s@." "orderer" "rows"
    "optimal" "mean-gap" "p50-gap" "p90-gap" "max-gap" "max-regret";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-10s %5d %8d %9.4f %8.3f %8.3f %8.3f %10d@."
        s.s_name s.s_rows s.s_optimal s.s_mean_gap s.s_p50_gap s.s_p90_gap
        s.s_max_gap s.s_max_regret)
    stats

module Varset = Ovo_core.Varset
module Metrics = Ovo_core.Metrics

module type STATE = sig
  type state

  val cost_if_compacted : metrics:Metrics.t -> state -> int -> int
  val materialise : metrics:Metrics.t -> state -> int -> state
  val mincost : state -> int
  val free : state -> Varset.t
end

(* Modeled classical cost of [f ()]: table cells charged to the
   context's metrics (nested measurements compose — diffs telescope). *)
let measured_cells (ctx : Qctx.t) f =
  let before = Metrics.snapshot ctx.Qctx.metrics in
  let result = f () in
  let after = Metrics.snapshot ctx.Qctx.metrics in
  (result, float_of_int (Metrics.diff after before).Metrics.s_table_cells)

(* must mirror Predict.division_points *)
let division_points ~alpha n' =
  let clamped =
    Array.to_list alpha
    |> List.map (fun a ->
           let v = int_of_float (Float.round (a *. float_of_int n')) in
           max 1 (min (n' - 1) v))
  in
  let rec dedup last = function
    | [] -> []
    | v :: rest -> if v > last then v :: dedup v rest else dedup last rest
  in
  dedup 0 (List.sort compare clamped)

(* One span per Grover-style minimum search, carrying the recursion
   level, the candidate-set size and the search's own deltas of the
   context's {!Qsearch.stats} — oracle calls and modeled query depth.
   The deltas are inclusive: an oracle at level [t] recurses into
   level [t-1], whose searches nest as child spans. *)
let with_search_span (ctx : Qctx.t) ~name ~level ~candidates f =
  let s = ctx.Qctx.stats in
  let evals0 = s.Qsearch.oracle_evaluations in
  let queries0 = s.Qsearch.modeled_queries in
  Ovo_obs.Trace.with_span ctx.Qctx.trace ~cat:"quantum"
    ~args:(fun () ->
      [
        ("level", Ovo_obs.Json.Int level);
        ("candidates", Ovo_obs.Json.Int candidates);
        ( "oracle_evaluations",
          Ovo_obs.Json.Int (s.Qsearch.oracle_evaluations - evals0) );
        ( "modeled_queries",
          Ovo_obs.Json.Float (s.Qsearch.modeled_queries -. queries0) );
      ])
    name f

let log_src = Logs.Src.create "ovo.quantum" ~doc:"simulated quantum algorithms"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Make (S : STATE) = struct
  module Dp = Ovo_core.Subset_dp.Make (S)

  type subroutine = {
    label : string;
    compose : Qctx.t -> S.state -> Varset.t -> S.state * float;
  }

  let name sub = sub.label
  let apply sub = sub.compose

  let fs_star =
    {
      label = "FS*";
      compose =
        (fun (ctx : Qctx.t) base j_set ->
          if Varset.is_empty j_set then (base, 0.)
          else
            Ovo_obs.Trace.with_span ctx.Qctx.trace ~cat:"quantum"
              ~args:(fun () ->
                [ ("vars", Ovo_obs.Json.Int (Varset.cardinal j_set)) ])
              "qdc.fs_star"
              (fun () ->
                measured_cells ctx (fun () ->
                    Dp.complete ~trace:ctx.Qctx.trace ~engine:ctx.Qctx.engine
                      ~metrics:ctx.Qctx.metrics ?membudget:ctx.Qctx.membudget
                      ?prune:ctx.Qctx.bound ~base j_set)));
    }

  (* A sub-sweep pruned against the context's global incumbent can die
     entirely ({!Ovo_core.Bound.Pruned_out}): no completion of that
     branch beats an already-achievable total.  Inside a Grover-style
     search that is just "worse than the incumbent" — the oracle reports
     a sentinel value no real branch can lose to, and if {e every}
     candidate died the search re-raises so the hopelessness propagates
     one recursion level up. *)
  let pruned_sentinel = (max_int, 0.)

  let oracle_catching_pruned f ksub =
    try f ksub with Ovo_core.Bound.Pruned_out _ -> pruned_sentinel

  let subsets_of l ~size =
    let acc = ref [] in
    Varset.iter_subsets_of l ~size (fun k -> acc := k :: !acc);
    Array.of_list !acc

  let simple_split ?alpha () =
    let alpha =
      match alpha with
      | Some a ->
          if a <= 0. || a >= 1. then invalid_arg "Opt_generic.simple_split";
          a
      | None ->
          let c = log 3. /. log 2. in
          (c -. 1.) /. ((2. *. c) -. 1.)
    in
    let compose (ctx : Qctx.t) base j_set =
      let n' = Varset.cardinal j_set in
      if n' = 0 then (base, 0.)
      else
        let k =
          max 1
            (min (n' - 1) (int_of_float (Float.round (alpha *. float_of_int n'))))
        in
        if k >= n' then fs_star.compose ctx base j_set
        else begin
          let candidates = subsets_of j_set ~size:k in
          let memo = Hashtbl.create (Array.length candidates) in
          let oracle =
            oracle_catching_pruned (fun ksub ->
                let st_k, cost_k =
                  measured_cells ctx (fun () ->
                      Dp.complete ~engine:ctx.Qctx.engine
                        ~metrics:ctx.Qctx.metrics
                        ?membudget:ctx.Qctx.membudget ?prune:ctx.Qctx.bound
                        ~base ksub)
                in
                let st, cost_rest =
                  fs_star.compose ctx st_k (Varset.diff j_set ksub)
                in
                Hashtbl.replace memo ksub st;
                (S.mincost st, cost_k +. cost_rest))
          in
          let outcome =
            with_search_span ctx ~name:"qsearch.simple_split" ~level:1
              ~candidates:(Array.length candidates) (fun () ->
                Qsearch.find_min ?rng:ctx.Qctx.rng ~epsilon:ctx.Qctx.epsilon
                  ~stats:ctx.Qctx.stats ~candidates ~oracle ())
          in
          match Hashtbl.find_opt memo outcome.Qsearch.argmin with
          | Some st -> (st, outcome.Qsearch.modeled_cost)
          | None ->
              raise
                (Ovo_core.Bound.Pruned_out
                   "simple_split: every candidate branch was pruned out")
        end
    in
    { label = "OptOBDD-simple"; compose }

  let opt_obdd ?label ~k ~alpha gamma =
    if Array.length alpha <> k then
      invalid_arg "Opt_obdd.opt_obdd: |alpha| <> k";
    Array.iteri
      (fun i a ->
        if a <= 0. || a >= 1. || (i > 0 && a < alpha.(i - 1)) then
          invalid_arg "Opt_obdd.opt_obdd: alpha not in (0,1) nondecreasing")
      alpha;
    let label =
      match label with
      | Some l -> l
      | None -> Printf.sprintf "OptOBDD*_%s(k=%d)" gamma.label k
    in
    let compose (ctx : Qctx.t) base j_set =
      let n' = Varset.cardinal j_set in
      if n' = 0 then (base, 0.)
      else
        match division_points ~alpha n' with
        | [] ->
            (* no interior division point: plain classical composition *)
            fs_star.compose ctx base j_set
        | b ->
            let b = Array.of_list b in
            let m = Array.length b in
            let pre, pre_cost =
              Ovo_obs.Trace.with_span ctx.Qctx.trace ~cat:"quantum"
                ~args:(fun () ->
                  [
                    ("vars", Ovo_obs.Json.Int n');
                    ("upto", Ovo_obs.Json.Int b.(0));
                  ])
                "qdc.preprocess"
                (fun () ->
                  measured_cells ctx (fun () ->
                      Dp.run ~trace:ctx.Qctx.trace ~engine:ctx.Qctx.engine
                        ~metrics:ctx.Qctx.metrics
                        ?membudget:ctx.Qctx.membudget ?prune:ctx.Qctx.bound
                        ~upto:b.(0) ~base j_set))
            in
            let rec divide_and_conquer l t =
              (* [state_of] raises Pruned_out for a pruned preprocess
                 state — absorbed by the enclosing oracle like any other
                 dead branch *)
              if t = 1 then (Dp.state_of pre l, 0.)
              else begin
                let candidates = subsets_of l ~size:b.(t - 2) in
                let memo = Hashtbl.create (Array.length candidates) in
                let oracle =
                  oracle_catching_pruned (fun ksub ->
                      let st_k, cost_k = divide_and_conquer ksub (t - 1) in
                      let st, cost_rest =
                        gamma.compose ctx st_k (Varset.diff l ksub)
                      in
                      Hashtbl.replace memo ksub st;
                      (S.mincost st, cost_k +. cost_rest))
                in
                let outcome =
                  with_search_span ctx
                    ~name:(Printf.sprintf "qsearch.level t=%d" t)
                    ~level:t ~candidates:(Array.length candidates) (fun () ->
                      Qsearch.find_min ?rng:ctx.Qctx.rng
                        ~epsilon:ctx.Qctx.epsilon ~stats:ctx.Qctx.stats
                        ~candidates ~oracle ())
                in
                match Hashtbl.find_opt memo outcome.Qsearch.argmin with
                | Some st -> (st, outcome.Qsearch.modeled_cost)
                | None ->
                    raise
                      (Ovo_core.Bound.Pruned_out
                         (Printf.sprintf
                            "opt_obdd level t=%d: every candidate branch \
                             was pruned out"
                            t))
              end
            in
            let state, search_cost = divide_and_conquer j_set (m + 1) in
            Log.debug (fun msg ->
                msg "%s over %d vars: division points [%s], preprocess %.3e cells, search %.3e modeled"
                  label n'
                  (String.concat ";" (Array.to_list (Array.map string_of_int b)))
                  pre_cost search_cost);
            (state, pre_cost +. search_cost)
    in
    { label; compose }

  let theorem10 ?(k = 6) () =
    opt_obdd
      ~label:(Printf.sprintf "OptOBDD(k=%d)" k)
      ~k ~alpha:(Params.table1_alpha k) fs_star

  let tower ~depth =
    if depth < 1 || depth > Array.length Params.table2 then
      invalid_arg "Opt_obdd.tower: depth out of range";
    let rec build i =
      let inner = if i = 0 then fs_star else build (i - 1) in
      opt_obdd
        ~label:(Printf.sprintf "Gamma_%d" (i + 1))
        ~k:6 ~alpha:(Params.table2_alpha i) inner
    in
    build (depth - 1)

  let run ctx sub ~base j_set = sub.compose ctx base j_set
end

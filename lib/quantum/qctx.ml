type t = {
  rng : Random.State.t option;
  epsilon : float;
  stats : Qsearch.stats;
  engine : Ovo_core.Engine.t;
  metrics : Ovo_core.Metrics.t;
  trace : Ovo_obs.Trace.t;
  membudget : Ovo_core.Membudget.t option;
  bound : Ovo_core.Bound.t option;
}

let make ?rng ?(epsilon = Float.pow 2. (-20.)) ?(engine = Ovo_core.Engine.Seq)
    ?(trace = Ovo_obs.Trace.null) ?membudget ?bound () =
  {
    rng;
    epsilon;
    stats = Qsearch.create_stats ();
    engine;
    metrics = Ovo_core.Metrics.create ();
    trace;
    membudget;
    bound;
  }

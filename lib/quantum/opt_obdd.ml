module Compact = Ovo_core.Compact
module Fs = Ovo_core.Fs

module Inst = Opt_generic.Make (struct
  type state = Compact.state

  let cost_if_compacted ~metrics (st : Compact.state) h =
    st.Compact.mincost + Compact.width_if_compacted ~metrics st h

  let materialise ~metrics st h = Compact.materialise ~metrics st h
  let mincost (st : Compact.state) = st.Compact.mincost
  let free = Compact.free
end)

type ctx = Qctx.t = {
  rng : Random.State.t option;
  epsilon : float;
  stats : Qsearch.stats;
  engine : Ovo_core.Engine.t;
  metrics : Ovo_core.Metrics.t;
  trace : Ovo_obs.Trace.t;
}

let make_ctx = Qctx.make

type subroutine = Inst.subroutine

let name = Inst.name
let apply = Inst.apply
let fs_star = Inst.fs_star
let simple_split = Inst.simple_split
let opt_obdd = Inst.opt_obdd
let theorem10 = Inst.theorem10
let tower = Inst.tower

let minimize_mtable ?(kind = Compact.Bdd) ~ctx sub mt =
  let base = Compact.initial kind mt in
  let state, cost = Inst.run ctx sub ~base (Compact.free base) in
  (Fs.of_state state, cost)

let minimize ?kind ~ctx sub tt =
  minimize_mtable ?kind ~ctx sub (Ovo_boolfun.Mtable.of_truthtable tt)

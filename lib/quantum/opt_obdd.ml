module Compact = Ovo_core.Compact
module Fs = Ovo_core.Fs

module Inst = Opt_generic.Make (struct
  type state = Compact.state

  let cost_if_compacted ~metrics (st : Compact.state) h =
    st.Compact.mincost + Compact.width_if_compacted ~metrics st h

  let materialise ~metrics st h = Compact.materialise ~metrics st h
  let mincost (st : Compact.state) = st.Compact.mincost
  let free = Compact.free
end)

type ctx = Qctx.t = {
  rng : Random.State.t option;
  epsilon : float;
  stats : Qsearch.stats;
  engine : Ovo_core.Engine.t;
  metrics : Ovo_core.Metrics.t;
  trace : Ovo_obs.Trace.t;
  membudget : Ovo_core.Membudget.t option;
  bound : Ovo_core.Bound.t option;
}

let make_ctx = Qctx.make

type subroutine = Inst.subroutine

let name = Inst.name
let apply = Inst.apply
let fs_star = Inst.fs_star
let simple_split = Inst.simple_split
let opt_obdd = Inst.opt_obdd
let theorem10 = Inst.theorem10
let tower = Inst.tower

let minimize_mtable ?(kind = Compact.Bdd) ~ctx sub mt =
  let base = Compact.initial kind mt in
  let state, cost = Inst.run ctx sub ~base (Compact.free base) in
  let r = Fs.of_state state in
  (* deterministic simulation must land at or below the seeded upper
     bound — an excess proves the bound provider unsound.  Error
     injection ([rng] armed) legitimately lands above it. *)
  (match (ctx.rng, ctx.bound) with
  | None, Some b -> Ovo_core.Bound.check_final b r.Fs.mincost
  | _ -> ());
  (r, cost)

let minimize ?kind ~ctx sub tt =
  minimize_mtable ?kind ~ctx sub (Ovo_boolfun.Mtable.of_truthtable tt)

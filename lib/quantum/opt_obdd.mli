(** The quantum divide-and-conquer optimisers of the paper's Sections 3–4:
    [OptOBDD(k, α)] (Theorem 10) and the composition tower
    [Γ_(i+1) = OptOBDD*_(Γ_i)] (Lemmas 11/12, Theorem 13).

    Every algorithm here is expressed as a {!subroutine} — a procedure
    that extends a compaction state [FS(⟨I⟩)] to [FS(⟨I,J⟩)] for an
    arbitrary free set [J].  The classical [FS*] is the base subroutine;
    [opt_obdd ~k ~alpha Γ] wraps any subroutine into the quantum
    divide-and-conquer of the pseudo-code [OptOBDD*_Γ(k, α)]:

    - a classical [FS*] preprocess computes [FS(⟨I,K⟩)] for every
      [K ⊆ J] with [|K| = α₁·|J|];
    - [DivideAndConquer(L, t)] finds, with simulated quantum minimum
      finding (Lemma 6 / {!Qsearch}), the split [K ⊂ L] of cardinality
      [α_(t-1)·|J|] minimising [MINCOST⟨I,K,L∖K⟩] (the Lemma 9
      identity), recursing on [K] and composing the remainder with [Γ].

    The returned modeled cost is measured in table-cell operations: the
    classical parts contribute their {e actual} counted cells, the
    quantum searches contribute [queries × max-branch-cost] as a quantum
    machine would.  Because the simulation evaluates every branch, the
    {e result} is exact whenever no error is injected; correctness tests
    compare against {!Ovo_core.Fs}. *)

type ctx = Qctx.t = {
  rng : Random.State.t option;
      (** when present, qsearch errors are injected with prob. [epsilon] *)
  epsilon : float;  (** per-search error bound (paper: [2^(-p(n))]) *)
  stats : Qsearch.stats;
  engine : Ovo_core.Engine.t;
      (** engine for the classical [FS*] subroutines (default [Seq]) *)
  metrics : Ovo_core.Metrics.t;
      (** per-context counters backing the modeled-cost measurements *)
  trace : Ovo_obs.Trace.t;
      (** span tracer: the quantum recursion records one span per level
          with oracle-call counts and modeled-query deltas *)
  membudget : Ovo_core.Membudget.t option;
      (** one global out-of-core budget shared by every recursive [FS*]
          sub-sweep — see {!Qctx.t} *)
  bound : Ovo_core.Bound.t option;
      (** one global branch-and-bound incumbent shared by every
          sub-sweep — see {!Qctx.t} *)
}

val make_ctx :
  ?rng:Random.State.t ->
  ?epsilon:float ->
  ?engine:Ovo_core.Engine.t ->
  ?trace:Ovo_obs.Trace.t ->
  ?membudget:Ovo_core.Membudget.t ->
  ?bound:Ovo_core.Bound.t ->
  unit ->
  ctx
(** Default [epsilon] is [2^(-20)]; no [rng] means deterministic, exact
    simulation.  With [bound], the deterministic result is additionally
    checked against the seeded upper bound ({!Ovo_core.Bound.check_final})
    and sub-sweeps of hopeless branches exit early with
    {!Ovo_core.Bound.Pruned_out}, absorbed by the enclosing search. *)

type subroutine

val name : subroutine -> string

val apply :
  subroutine ->
  ctx ->
  Ovo_core.Compact.state ->
  Ovo_core.Varset.t ->
  Ovo_core.Compact.state * float
(** [apply sub ctx base j_set] produces the optimal complete-on-[J]
    state and the modeled cost.  [j_set] must be free in [base]. *)

val fs_star : subroutine
(** The classical composition subroutine (Lemma 8); modeled cost =
    measured table cells. *)

val opt_obdd : ?label:string -> k:int -> alpha:float array -> subroutine -> subroutine
(** [opt_obdd ~k ~alpha gamma] is [OptOBDD*_gamma(k, α)].  Requires
    [Array.length alpha = k] and [0 < α₁ ≤ … ≤ α_k < 1].  Division
    points are rounded to integers, clamped to [1..|J|-1], and
    de-duplicated, so small instances degrade gracefully (with no
    intermediate point left, the subroutine collapses to [gamma]'s
    classical preprocessing, i.e. plain [FS*]). *)

val simple_split : ?alpha:float -> unit -> subroutine
(** Section 3.1's first algorithm: a {e single} quantum search over the
    [C(n, αn)] splits of Lemma 9, with no classical preprocessing — the
    oracle computes [FS(K)] from scratch and composes with [FS*].  The
    modeled base is the section's [γ₀ ≈ 2.98581]; the default [alpha] is
    its optimiser [α* = (log₂3 - 1)/(2·log₂3 - 1) ≈ 0.269577]. *)

val theorem10 : ?k:int -> unit -> subroutine
(** [OptOBDD(k, α)] with the published Table 1 parameters
    (default [k = 6]): the [O*(2.83728^n)] algorithm. *)

val tower : depth:int -> subroutine
(** The Theorem 13 composition: [Γ_1] = [OptOBDD*] over [FS*] with
    parameter row 0, …,
    [Γ_depth], with the published Table 2 parameter rows.  [depth] in
    [1..10]; depth 10 is the [O*(2.77286^n)] algorithm.  Beware: the
    classical simulation of depth [d] multiplies work per level, so keep
    [n] small for [d > 2]. *)

val minimize :
  ?kind:Ovo_core.Compact.kind ->
  ctx:ctx ->
  subroutine ->
  Ovo_boolfun.Truthtable.t ->
  Ovo_core.Fs.result * float
(** End-to-end minimisation of a Boolean function: returns the (claimed)
    minimum diagram with its ordering, plus the modeled quantum time. *)

val minimize_mtable :
  ?kind:Ovo_core.Compact.kind ->
  ctx:ctx ->
  subroutine ->
  Ovo_boolfun.Mtable.t ->
  Ovo_core.Fs.result * float
(** Multi-terminal variant (minimum MTBDDs / multi-terminal ZDDs). *)

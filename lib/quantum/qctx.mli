(** Execution context shared by all simulated quantum algorithms: the
    error budget, the optional RNG that arms error injection, the query
    statistics, plus the engine and metrics context the classical
    subroutines run under. *)

type t = {
  rng : Random.State.t option;
      (** when present, qsearch errors are injected with prob. [epsilon] *)
  epsilon : float;  (** per-search error bound (paper: [2^(-p(n))]) *)
  stats : Qsearch.stats;
  engine : Ovo_core.Engine.t;
      (** engine for the classical [FS*] subroutines (default [Seq]) *)
  metrics : Ovo_core.Metrics.t;
      (** per-context counters; modeled costs are measured against this,
          not against the process-global {!Ovo_core.Metrics.ambient} *)
  trace : Ovo_obs.Trace.t;
      (** span tracer threaded through the classical subroutines and the
          quantum recursion (default {!Ovo_obs.Trace.null}) *)
  membudget : Ovo_core.Membudget.t option;
      (** one {e global} memory budget shared by every recursive [FS*]
          sub-sweep of the tower — per-call budgets would multiply the
          allowance by the recursion width *)
  bound : Ovo_core.Bound.t option;
      (** one {e global} branch-and-bound context: every sub-sweep
          prunes against the same incumbent, and a sub-sweep of a
          provably hopeless branch dies early with
          {!Ovo_core.Bound.Pruned_out}, which the search oracles absorb
          as "worse than the incumbent" *)
}

val make :
  ?rng:Random.State.t ->
  ?epsilon:float ->
  ?engine:Ovo_core.Engine.t ->
  ?trace:Ovo_obs.Trace.t ->
  ?membudget:Ovo_core.Membudget.t ->
  ?bound:Ovo_core.Bound.t ->
  unit ->
  t
(** Default [epsilon] is [2^(-20)]; no [rng] means deterministic, exact
    simulation.  A fresh {!Ovo_core.Metrics.t} is created per context. *)

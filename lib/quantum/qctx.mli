(** Execution context shared by all simulated quantum algorithms: the
    error budget, the optional RNG that arms error injection, the query
    statistics, plus the engine and metrics context the classical
    subroutines run under. *)

type t = {
  rng : Random.State.t option;
      (** when present, qsearch errors are injected with prob. [epsilon] *)
  epsilon : float;  (** per-search error bound (paper: [2^(-p(n))]) *)
  stats : Qsearch.stats;
  engine : Ovo_core.Engine.t;
      (** engine for the classical [FS*] subroutines (default [Seq]) *)
  metrics : Ovo_core.Metrics.t;
      (** per-context counters; modeled costs are measured against this,
          not against the process-global {!Ovo_core.Metrics.ambient} *)
  trace : Ovo_obs.Trace.t;
      (** span tracer threaded through the classical subroutines and the
          quantum recursion (default {!Ovo_obs.Trace.null}) *)
}

val make :
  ?rng:Random.State.t ->
  ?epsilon:float ->
  ?engine:Ovo_core.Engine.t ->
  ?trace:Ovo_obs.Trace.t ->
  unit ->
  t
(** Default [epsilon] is [2^(-20)]; no [rng] means deterministic, exact
    simulation.  A fresh {!Ovo_core.Metrics.t} is created per context. *)

(** Bit-packed cost/choice tables for one cardinality layer of the
    subset DP.

    The sweep of {!Subset_dp} produces, for every [k]-subset [K] of the
    free variables, a minimum cost and the variable chosen last — two
    small integers.  A [Layer_pack.t] stores the whole layer in one flat
    [Bytes] buffer at 9 bytes per subset (8-byte LE cost, 1-byte
    choice), indexed by the subset's {e combinatorial rank} (colex
    order — the order {!Varset.iter_subsets_of} enumerates, so ranks are
    dense in [0 .. C(m,k)-1]).  Compared to the boxed hashtable pair it
    replaces this is roughly an order of magnitude smaller, and
    {!encode}/{!decode} turn a layer into a spill payload for
    {!Membudget.sink} with no further serialisation step. *)

type t
(** One packed layer: the [(cost, choice)] of every size-[k] subset of a
    universe [j_set]. *)

val binomial : int -> int -> int
(** [binomial n k] = [C(n,k)]; [0] outside [0 <= k <= n]. *)

val entry_bytes : int
(** Bytes per packed entry (9). *)

val create : j_set:Varset.t -> k:int -> t
(** An empty layer for the size-[k] subsets of [j_set]; entries are
    unset until {!set}.  Raises [Invalid_argument] unless
    [1 <= k <= cardinal j_set]. *)

val of_entries : j_set:Varset.t -> k:int -> (Varset.t * int * int) array -> t
(** Pack a layer from [(subset, cost, choice)] triples (any order).
    Fewer than [C(m,k)] entries leave the rest unset — the shape a
    pruned branch-and-bound layer produces.  Raises [Invalid_argument]
    on more than [C(m,k)] entries. *)

val set : t -> Varset.t -> cost:int -> choice:int -> unit
(** Write one entry.  Costs must be non-negative (the sign bit marks
    unset entries) and choices fit a byte. *)

val cost : t -> Varset.t -> int
(** The packed cost of a subset; raises [Invalid_argument] if the
    subset is not a size-[k] subset of [j_set] or was never set. *)

val choice : t -> Varset.t -> int
(** The packed last-placed variable of a subset (same errors as
    {!cost}). *)

val k : t -> int
val j_set : t -> Varset.t

val count : t -> int
(** Number of subsets in the layer, [C(cardinal j_set, k)]. *)

val present : t -> int
(** Number of entries actually set; [< count t] after pruning. *)

val mem : t -> Varset.t -> bool
(** Whether a subset's entry is set (i.e. survived pruning). *)

val size_bytes : t -> int
(** Resident footprint charged to {!Membudget} — header plus the dense
    data buffer, regardless of how many entries are set.  The spill
    payload ({!encode}) may be smaller when the layer is sparse. *)

val rank : t -> Varset.t -> int
(** Combinatorial (colex) rank of a subset within the layer. *)

val unrank : t -> int -> Varset.t
(** Inverse of {!rank}. *)

val iter : t -> (Varset.t -> cost:int -> choice:int -> unit) -> unit
(** Visit every {e set} entry in enumeration (rank) order; unset
    (pruned) subsets are skipped. *)

val entries : t -> (Varset.t * int * int) array
(** All set [(subset, cost, choice)] triples in rank order — the shape
    {!Subset_dp.progress} carries. *)

val encode : t -> string
(** Serialise the layer as a spill payload.  Complete layers use the
    dense v1 format (14-byte header + 9 bytes per subset); layers sparse
    enough that rank-tagged triples win use the v2 format (18-byte
    header + 13 bytes per set entry) — pruning shrinks spill volume. *)

val decode : string -> t
(** Inverse of {!encode}.  Raises [Failure] on a truncated, corrupt or
    version-mismatched payload — spill damage surfaces as a clean
    error. *)

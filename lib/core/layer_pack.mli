(** Bit-packed cost/choice tables for one cardinality layer of the
    subset DP.

    The sweep of {!Subset_dp} produces, for every [k]-subset [K] of the
    free variables, a minimum cost and the variable chosen last — two
    small integers.  A [Layer_pack.t] stores the whole layer in one flat
    [Bytes] buffer at 9 bytes per subset (8-byte LE cost, 1-byte
    choice), indexed by the subset's {e combinatorial rank} (colex
    order — the order {!Varset.iter_subsets_of} enumerates, so ranks are
    dense in [0 .. C(m,k)-1]).  Compared to the boxed hashtable pair it
    replaces this is roughly an order of magnitude smaller, and
    {!encode}/{!decode} turn a layer into a spill payload for
    {!Membudget.sink} with no further serialisation step. *)

type t
(** One packed layer: the [(cost, choice)] of every size-[k] subset of a
    universe [j_set]. *)

val binomial : int -> int -> int
(** [binomial n k] = [C(n,k)]; [0] outside [0 <= k <= n]. *)

val entry_bytes : int
(** Bytes per packed entry (9). *)

val create : j_set:Varset.t -> k:int -> t
(** An empty layer for the size-[k] subsets of [j_set]; entries are
    unset until {!set}.  Raises [Invalid_argument] unless
    [1 <= k <= cardinal j_set]. *)

val of_entries : j_set:Varset.t -> k:int -> (Varset.t * int * int) array -> t
(** Pack a complete layer from [(subset, cost, choice)] triples (any
    order).  Raises [Invalid_argument] unless exactly [C(m,k)] entries
    are given. *)

val set : t -> Varset.t -> cost:int -> choice:int -> unit
(** Write one entry.  Costs must be non-negative (the sign bit marks
    unset entries) and choices fit a byte. *)

val cost : t -> Varset.t -> int
(** The packed cost of a subset; raises [Invalid_argument] if the
    subset is not a size-[k] subset of [j_set] or was never set. *)

val choice : t -> Varset.t -> int
(** The packed last-placed variable of a subset (same errors as
    {!cost}). *)

val k : t -> int
val j_set : t -> Varset.t

val count : t -> int
(** Number of entries, [C(cardinal j_set, k)]. *)

val size_bytes : t -> int
(** Resident footprint charged to {!Membudget} — header plus data,
    identical to [String.length (encode t)]. *)

val rank : t -> Varset.t -> int
(** Combinatorial (colex) rank of a subset within the layer. *)

val unrank : t -> int -> Varset.t
(** Inverse of {!rank}. *)

val iter : t -> (Varset.t -> cost:int -> choice:int -> unit) -> unit
(** Visit every entry in enumeration (rank) order. *)

val entries : t -> (Varset.t * int * int) array
(** All [(subset, cost, choice)] triples in rank order — the shape
    {!Subset_dp.progress} carries. *)

val encode : t -> string
(** Serialise the layer (versioned 14-byte header + data) as a spill
    payload. *)

val decode : string -> t
(** Inverse of {!encode}.  Raises [Failure] on a truncated, corrupt or
    version-mismatched payload — spill damage surfaces as a clean
    error. *)

(** Bit-packed cost/choice tables for one cardinality layer of the
    subset DP.

    The sweep of {!Subset_dp} produces, for every [k]-subset [K] of the
    free variables, a minimum cost and the variable chosen last — two
    small integers.  A [Layer_pack.t] stores the whole layer in one flat
    [Bytes] buffer at 9 bytes per subset (8-byte LE cost, 1-byte
    choice), indexed by the subset's {e combinatorial rank} (colex
    order — the order {!Varset.iter_subsets_of} enumerates, so ranks are
    dense in [0 .. C(m,k)-1]).  Compared to the boxed hashtable pair it
    replaces this is roughly an order of magnitude smaller, and
    {!encode}/{!decode} turn a layer into a spill payload for
    {!Membudget.sink} with no further serialisation step.

    Three on-disk formats share the version byte: dense v1 (9 B/entry),
    sparse v2 (13 B per {e set} entry — pruned layers spill small) and
    compressed v3 (delta+varint over the colex stream — cost locality
    spills small); {!encode} picks whichever is smallest.  The {!Extent}
    submodule splits a layer into fixed-size rank ranges so the
    out-of-core sweep can spill and reload {e partial} layers: extents
    serialise to v3 or raw v4 payloads with the same self-describing
    header and the same damage rejection. *)

type t
(** One packed layer: the [(cost, choice)] of every size-[k] subset of a
    universe [j_set]. *)

val binomial : int -> int -> int
(** [binomial n k] = [C(n,k)]; [0] outside [0 <= k <= n]. *)

val entry_bytes : int
(** Bytes per packed entry (9). *)

val extent_header_bytes : int
(** Bytes of the self-describing v3/v4 header (30). *)

(** {1 Combinatorial number system} *)

val pascal_table : m:int -> k:int -> int array array
(** [pascal.(p).(i) = C(p,i)] for [p <= m], [i <= k] — the table
    {!rank_in}/{!unrank_in} consume.  Build once per sweep with
    [k = upto] and share it across layers. *)

val rank_in : pascal:int array array -> j_set:Varset.t -> Varset.t -> int
(** Combinatorial (colex) rank of a subset within [j_set] — the order
    {!Varset.iter_subsets_of} enumerates.  No validation: the caller
    guarantees the subset is within [j_set] and the table is wide
    enough. *)

val unrank_in :
  pascal:int array array -> j_set:Varset.t -> k:int -> int -> Varset.t
(** Inverse of {!rank_in} for size-[k] subsets. *)

(** {1 Whole layers} *)

val create : j_set:Varset.t -> k:int -> t
(** An empty layer for the size-[k] subsets of [j_set]; entries are
    unset until {!set}.  Raises [Invalid_argument] unless
    [1 <= k <= cardinal j_set]. *)

val of_entries : j_set:Varset.t -> k:int -> (Varset.t * int * int) array -> t
(** Pack a layer from [(subset, cost, choice)] triples (any order).
    Fewer than [C(m,k)] entries leave the rest unset — the shape a
    pruned branch-and-bound layer produces.  Raises [Invalid_argument]
    on more than [C(m,k)] entries. *)

val set : t -> Varset.t -> cost:int -> choice:int -> unit
(** Write one entry.  Costs must be non-negative (the sign bit marks
    unset entries) and choices fit a byte. *)

val cost : t -> Varset.t -> int
(** The packed cost of a subset; raises [Invalid_argument] if the
    subset is not a size-[k] subset of [j_set] or was never set. *)

val choice : t -> Varset.t -> int
(** The packed last-placed variable of a subset (same errors as
    {!cost}). *)

val k : t -> int
val j_set : t -> Varset.t

val count : t -> int
(** Number of subsets in the layer, [C(cardinal j_set, k)]. *)

val present : t -> int
(** Number of entries actually set; [< count t] after pruning. *)

val mem : t -> Varset.t -> bool
(** Whether a subset's entry is set (i.e. survived pruning). *)

val size_bytes : t -> int
(** Resident footprint charged to {!Membudget} — header plus the dense
    data buffer, regardless of how many entries are set.  The spill
    payload ({!encode}) may be smaller when the layer is sparse or
    compresses well. *)

val rank : t -> Varset.t -> int
(** Combinatorial (colex) rank of a subset within the layer. *)

val unrank : t -> int -> Varset.t
(** Inverse of {!rank}. *)

val iter : t -> (Varset.t -> cost:int -> choice:int -> unit) -> unit
(** Visit every {e set} entry in enumeration (rank) order; unset
    (pruned) subsets are skipped. *)

val entries : t -> (Varset.t * int * int) array
(** All set [(subset, cost, choice)] triples in rank order — the shape
    {!Subset_dp.progress} carries. *)

val encode : t -> string
(** Serialise the layer as a spill/checkpoint payload: the smallest of
    dense v1 (14-byte header + 9 B/subset), sparse v2 (18-byte header +
    13 B per set entry) and compressed v3 (30-byte header + delta+varint
    stream).  Real cost tables are monotone-ish in colex order, so v3
    usually wins by 2× or more. *)

val encode_dense : t -> string
val encode_sparse : t -> string

val encode_packed : t -> string
(** The individual encoders, exposed so tests can pin each format's
    roundtrip and size independently of the automatic choice. *)

val decode : string -> t
(** Inverse of {!encode}; accepts v1, v2 and whole-layer v3 payloads.
    Raises [Failure] on a truncated, corrupt or version-mismatched
    payload — spill damage surfaces as a clean error. *)

(** {1 Payload sources} *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type src = S_string of string | S_big of bigstring
(** Where a reload's bytes live: an ordinary string, or a memory-mapped
    file region ([--spill-mmap]) that the OS pages on demand.  Decoding
    from [S_big] never copies the raw v4 slice — the extent keeps the
    mapping as its backing store. *)

val src_length : src -> int
(** Payload length in bytes, whichever backing. *)

(** {1 Extents} *)

(** A fixed-size rank range of one layer — the granularity the
    out-of-core sweep spills and reloads at, so a layer larger than the
    whole memory budget can still leave RAM piecewise and come back one
    touched extent at a time. *)
module Extent : sig
  type t

  val create : j_set:Varset.t -> k:int -> total:int -> lo:int -> len:int -> t
  (** An empty extent covering ranks [lo .. lo+len-1] of the size-[k]
      layer over [j_set] ([total = C(cardinal j_set, k)], validated).
      Raises [Invalid_argument] on an empty or out-of-range extent. *)

  val j_set : t -> Varset.t
  val k : t -> int

  val total : t -> int
  (** The whole layer's subset count (not this extent's). *)

  val lo : t -> int

  val len : t -> int
  (** First rank covered / number of ranks covered. *)

  val present : t -> int
  (** Entries actually set within the extent. *)

  val size_bytes : t -> int
  (** Resident charge: the 30-byte header plus [len * 9] dense bytes. *)

  val set : t -> rank:int -> cost:int -> choice:int -> unit
  (** Write the entry of a {e global} rank; raises [Invalid_argument]
      outside [lo, lo+len), on a negative cost, an over-wide choice, or
      a read-only (mapped) extent. *)

  val mem : t -> rank:int -> bool
  val cost : t -> rank:int -> int

  val choice : t -> rank:int -> int
  (** Read by global rank; {!cost}/{!choice} raise [Invalid_argument]
      on an unset (pruned) entry. *)

  val iter : t -> (rank:int -> cost:int -> choice:int -> unit) -> unit
  (** Every set entry, in rank order. *)

  val encode : t -> string
  (** The smaller of {!encode_packed} (compressed v3) and {!encode_raw}
      (v4: the dense slice verbatim) — compression is chosen
      automatically exactly when it wins. *)

  val encode_packed : t -> string
  val encode_raw : t -> string

  val of_src :
    src -> j_set:Varset.t -> k:int -> total:int -> lo:int -> len:int -> t
  (** Decode the extent covering ranks [lo, lo+len) from a payload.  The
      payload may be an exact extent (v3/v4), a {e larger} extent, or a
      whole-layer record (v1/v2/v3 — the unified checkpoint format):
      any payload whose range contains the request is sliced.  An exact
      v4 match from a mapped source stays mapped (zero copy).  Raises
      [Failure] on damage — wrong layer, truncation, rank disorder,
      negative costs, present-count mismatch — and [Invalid_argument]
      on a malformed request. *)
end

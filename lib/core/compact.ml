type kind = Bdd | Zdd

type state = {
  n : int;
  kind : kind;
  num_terminals : int;
  assigned : Varset.t;
  order_rev : int list;
  table : int array;
  node : (int * int * int, int) Hashtbl.t;
  mincost : int;
  next_id : int;
}

let initial kind mt =
  let n = Ovo_boolfun.Mtable.arity mt in
  let num_terminals = Ovo_boolfun.Mtable.num_values mt in
  {
    n;
    kind;
    num_terminals;
    assigned = Varset.empty;
    order_rev = [];
    table = Array.init (1 lsl n) (Ovo_boolfun.Mtable.eval mt);
    node = Hashtbl.create 16;
    mincost = 0;
    next_id = num_terminals;
  }

let of_truthtable kind tt =
  initial kind (Ovo_boolfun.Mtable.of_truthtable tt)

let check_var name st i =
  if i < 0 || i >= st.n then
    invalid_arg (Printf.sprintf "Compact.%s: variable out of range" name);
  if Varset.mem i st.assigned then
    invalid_arg (Printf.sprintf "Compact.%s: variable already assigned" name)

(* One table compaction w.r.t. variable [i].  For each assignment [b] to
   the remaining free variables, fetch the two cofactor nodes and apply
   the reduction rule of [st.kind]; create a fresh node only when the pair
   is new at this variable.  A pair can never collide with an entry of
   [st.node]: those are keyed by previously assigned variables, while [i]
   is still free, so the per-variable node key [(i, lo, hi)] is fresh by
   construction — dedup only has to look at pairs seen in this scan. *)
let compact_gen ~charge ~metrics st i =
  let freeset = Varset.diff (Varset.full st.n) st.assigned in
  let p = Varset.rank_in i freeset in
  let new_len = Array.length st.table / 2 in
  let table = Array.make (max new_len 1) 0 in
  let node = Hashtbl.copy st.node in
  let mincost = ref st.mincost in
  let next_id = ref st.next_id in
  let low_mask = (1 lsl p) - 1 in
  for b = 0 to new_len - 1 do
    let idx0 = ((b lsr p) lsl (p + 1)) lor (b land low_mask) in
    let lo = st.table.(idx0) in
    let hi = st.table.(idx0 lor (1 lsl p)) in
    let elided =
      match st.kind with Bdd -> lo = hi | Zdd -> hi = 0
    in
    if elided then table.(b) <- lo
    else
      let key = (i, lo, hi) in
      match Hashtbl.find_opt node key with
      | Some u -> table.(b) <- u
      | None ->
          let u = !next_id in
          incr next_id;
          incr mincost;
          Metrics.add_node metrics;
          Hashtbl.add node key u;
          table.(b) <- u
  done;
  Metrics.add_copy metrics;
  (match charge with
  | `Direct ->
      Metrics.add_cells metrics new_len;
      Metrics.add_compaction metrics
  | `Materialise -> Metrics.add_state metrics);
  {
    st with
    assigned = Varset.add i st.assigned;
    order_rev = i :: st.order_rev;
    table;
    node;
    mincost = !mincost;
    next_id = !next_id;
  }

let compact ?(metrics = Metrics.ambient) st i =
  check_var "compact" st i;
  compact_gen ~charge:`Direct ~metrics st i

let materialise ?(metrics = Metrics.ambient) st i =
  check_var "materialise" st i;
  compact_gen ~charge:`Materialise ~metrics st i

(* The cost-only kernel: the same scan as [compact], but nothing is
   allocated beyond a small per-scan dedup set — no table, no node-table
   copy, no state.  Exactness relies on the freshness argument above:
   the number of nodes [compact st i] would create is the number of
   distinct unelided [(lo, hi)] pairs in this scan. *)
let width_if_compacted ?(metrics = Metrics.ambient) st i =
  check_var "width_if_compacted" st i;
  let freeset = Varset.diff (Varset.full st.n) st.assigned in
  let p = Varset.rank_in i freeset in
  let new_len = Array.length st.table / 2 in
  let seen = Hashtbl.create (min 64 (max 1 new_len)) in
  let width = ref 0 in
  let low_mask = (1 lsl p) - 1 in
  for b = 0 to new_len - 1 do
    let idx0 = ((b lsr p) lsl (p + 1)) lor (b land low_mask) in
    let lo = st.table.(idx0) in
    let hi = st.table.(idx0 lor (1 lsl p)) in
    let elided =
      match st.kind with Bdd -> lo = hi | Zdd -> hi = 0
    in
    if not elided then begin
      let key = (lo, hi) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        incr width
      end
    end
  done;
  Metrics.add_cells metrics new_len;
  Metrics.add_probe metrics;
  !width

let mincost_if_compacted ?metrics st i =
  st.mincost + width_if_compacted ?metrics st i

let compact_chain st vars =
  Array.fold_left (fun st i -> compact st i) st vars

let width_of_last ~before ~after = after.mincost - before.mincost

let free st = Varset.diff (Varset.full st.n) st.assigned

let order st = List.rev st.order_rev

let is_complete st = st.assigned = Varset.full st.n

let root st =
  if not (is_complete st) then invalid_arg "Compact.root: state not complete";
  st.table.(0)

(** The subset dynamic program of Lemmas 4/7, abstracted over the state
    being compacted — now a {e two-pass} engine.

    Both the single-rooted [FS*] ({!Fs_star}) and the multi-rooted
    variant ({!Shared}) run the same loop: for growing cardinality [k],
    compute the optimal state for every [K ⊆ J] with [|K| = k] by trying
    each [h ∈ K] on top of the optimal state for [K ∖ {h}].  This functor
    captures that loop once; the per-state operations come from the
    parameter.

    The loop evaluates each subset in two passes: a {e cost pass} probes
    every candidate [h] with the allocation-free [cost_if_compacted]
    kernel, and only the single winner is then materialised — losing
    candidates never allocate a state or copy a node table.  Layers are
    independent given their predecessor, so an {!Engine.Par} engine
    splits each layer across worker domains, each counting into its own
    {!Metrics.t} scratch; results are deterministic and identical to
    {!Engine.Seq}.

    Beyond the classic {!run} (which returns the final layer's states),
    the {e cost-table mode} {!costs} stores only two integers per subset
    — [MINCOST⟨K⟩] and the tight last-placed variable — and
    {!reconstruct} replays those tight transitions over the base to
    materialise an optimal state in [|K|] compactions, as the paper
    reconstructs orderings from the DP table. *)

module type COMPACTABLE = sig
  type state

  val cost_if_compacted : metrics:Metrics.t -> state -> int -> int
  (** The DP objective the state would have after placing one variable
      on top of the assigned block — computed {e without} building the
      state (no allocation, no node-table copy).  Must equal
      [mincost (materialise st h)] exactly. *)

  val materialise : metrics:Metrics.t -> state -> int -> state
  (** Place one variable on top of the assigned block (the winner of a
      cost pass; accounting goes to the materialisation counters). *)

  val mincost : state -> int
  (** Non-terminal nodes created so far (the DP objective). *)

  val free : state -> Varset.t
  (** Variables not yet assigned. *)
end

type costs = {
  cost_j_set : Varset.t;
  cost_upto : int;
  cost_table : (Varset.t, int) Hashtbl.t;
      (** [MINCOST⟨base, K⟩] for every computed [K] (including [∅]) *)
  cost_choice : (Varset.t, int) Hashtbl.t;
      (** for each [K ≠ ∅], a tight last-placed [h] of the Lemma 7
          recurrence — the backtracking pointers *)
}
(** The cost-table result: two integers per subset, no states.  It is
    state-independent, so it lives outside the functor and can be shared
    by every instance. *)

module Make (S : COMPACTABLE) : sig
  type t = {
    j_set : Varset.t;
    upto : int;
    mincosts : (Varset.t, int) Hashtbl.t;
        (** [MINCOST⟨base, K⟩] for every computed [K] (including [∅]) *)
    layer : (Varset.t, S.state) Hashtbl.t;
        (** optimal states at cardinality [upto] *)
  }

  val run :
    ?trace:Ovo_obs.Trace.t ->
    ?engine:Engine.t ->
    ?cancel:Cancel.t ->
    ?metrics:Metrics.t ->
    ?upto:int ->
    base:S.state ->
    Varset.t ->
    t
  (** As {!Fs_star.run}: requires [j_set ⊆ free base]; [upto] defaults
      to [|j_set|].  Engine defaults to {!Engine.Seq}; metrics to
      {!Metrics.ambient}.  Intermediate layers are dropped eagerly (only
      [mincosts] survives), so peak state memory is two adjacent layers
      during the sweep and one — the returned [upto] layer — after.

      [cancel] (default {!Cancel.never}) is polled between cardinality
      layers: a fired token makes the sweep raise {!Cancel.Cancelled}
      instead of starting the next layer, so a deadline-expired run
      stops within one layer's work.  Wrap the call in {!Cancel.protect}
      for a typed [Error `Cancelled] instead of the exception. *)

  val costs :
    ?trace:Ovo_obs.Trace.t ->
    ?engine:Engine.t ->
    ?cancel:Cancel.t ->
    ?metrics:Metrics.t ->
    ?upto:int ->
    base:S.state ->
    Varset.t ->
    costs
  (** Pure cost-table mode: same sweep, but the final layer's states are
      never materialised and nothing but the integer tables is returned.
      Same validation and defaults as {!run}. *)

  val reconstruct :
    ?trace:Ovo_obs.Trace.t ->
    ?metrics:Metrics.t ->
    base:S.state ->
    costs ->
    Varset.t ->
    S.state
  (** [reconstruct ~base ct k] materialises an optimal state for [K = k]
      by backtracking [ct.cost_choice] from [k] to [∅] and replaying the
      resulting placement sequence over [base] — [|k|] compactions
      total.  Requires [k ⊆ ct.cost_j_set] and [|k| ≤ ct.cost_upto]. *)

  val state_of : t -> Varset.t -> S.state
  val mincost_of : t -> Varset.t -> int

  val complete :
    ?trace:Ovo_obs.Trace.t ->
    ?engine:Engine.t ->
    ?cancel:Cancel.t ->
    ?metrics:Metrics.t ->
    base:S.state ->
    Varset.t ->
    S.state
  (** Full run; the optimal state for [K = J].  Implemented as {!costs}
      followed by {!reconstruct}, so it holds at most one layer of
      states at any time. *)
end

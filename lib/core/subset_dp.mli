(** The subset dynamic program of Lemmas 4/7, abstracted over the state
    being compacted — now a {e two-pass} engine.

    Both the single-rooted [FS*] ({!Fs_star}) and the multi-rooted
    variant ({!Shared}) run the same loop: for growing cardinality [k],
    compute the optimal state for every [K ⊆ J] with [|K| = k] by trying
    each [h ∈ K] on top of the optimal state for [K ∖ {h}].  This functor
    captures that loop once; the per-state operations come from the
    parameter.

    The loop evaluates each subset in two passes: a {e cost pass} probes
    every candidate [h] with the allocation-free [cost_if_compacted]
    kernel, and only the single winner is then materialised — losing
    candidates never allocate a state or copy a node table.  Layers are
    independent given their predecessor, so an {!Engine.Par} engine
    splits each layer across worker domains, each counting into its own
    {!Metrics.t} scratch; results are deterministic and identical to
    {!Engine.Seq}.

    Beyond the classic {!run} (which returns the final layer's states),
    the {e cost-table mode} {!costs} stores only two integers per subset
    — [MINCOST⟨K⟩] and the tight last-placed variable — and
    {!reconstruct} replays those tight transitions over the base to
    materialise an optimal state in [|K|] compactions, as the paper
    reconstructs orderings from the DP table.

    Internally every completed cardinality layer is bit-packed into a
    {!Layer_pack} (9 bytes per subset) and accounted against an optional
    {!Membudget}: past the budget, completed layers spill to disk
    through the injected sink and are reloaded lazily during
    backtracking — results stay bit-identical to the in-memory run under
    both engines, because packing happens after the parallel join.

    With a {!Bound.t} context ([?prune]) the sweep becomes an exact
    {e branch-and-bound}: a subset whose cost plus admissible remaining
    bound exceeds the incumbent is never materialised (nor packed — a
    pruned layer spills sparse).  The incumbent is seeded from an
    injected upper bound and tightened at layer boundaries from states
    whose completion cost is known exactly, on the calling domain only,
    so the surviving state set — and every answer — is deterministic
    and bit-identical to the unpruned sweep under {!Engine.Seq} and
    {!Engine.Par} alike.  A layer losing {e all} states raises
    {!Bound.Pruned_out}: no completion of the base beats the incumbent
    (only possible when the incumbent came from outside this sweep, as
    in the quantum tower's shared-incumbent sub-sweeps, or from an
    unsound seed).  Pruning is incompatible with [resume]. *)

module type COMPACTABLE = sig
  type state

  val cost_if_compacted : metrics:Metrics.t -> state -> int -> int
  (** The DP objective the state would have after placing one variable
      on top of the assigned block — computed {e without} building the
      state (no allocation, no node-table copy).  Must equal
      [mincost (materialise st h)] exactly. *)

  val materialise : metrics:Metrics.t -> state -> int -> state
  (** Place one variable on top of the assigned block (the winner of a
      cost pass; accounting goes to the materialisation counters). *)

  val mincost : state -> int
  (** Non-terminal nodes created so far (the DP objective). *)

  val free : state -> Varset.t
  (** Variables not yet assigned. *)
end

type costs = {
  cost_j_set : Varset.t;
  cost_upto : int;
  cost_table : (Varset.t, int) Hashtbl.t;
      (** [MINCOST⟨base, K⟩] for every computed [K] (including [∅]) *)
  cost_choice : (Varset.t, int) Hashtbl.t;
      (** for each [K ≠ ∅], a tight last-placed [h] of the Lemma 7
          recurrence — the backtracking pointers *)
}
(** The cost-table result: two integers per subset, no states.  It is
    state-independent, so it lives outside the functor and can be shared
    by every instance. *)

type progress = {
  p_layer : int;  (** the cardinality layer that just completed *)
  p_entries : (Varset.t * int * int) array;
      (** one [(K, MINCOST⟨K⟩, tight last-placed h)] triple per subset
          of the layer, in enumeration (Gosper) order *)
}
(** One completed cardinality layer of a sweep — everything a checkpoint
    needs to persist, and everything a resumed sweep needs back.  Like
    {!costs} it is state-independent: rebuilding the layer's states is a
    deterministic replay of the recorded choice chains, so a resumed run
    is bit-identical to an uninterrupted one under both engines. *)

val binomial : int -> int -> int
(** [binomial n k] = C(n,k); [0] outside [0 <= k <= n].  Exposed for
    resume validation (a complete layer [k] over [J] has [C(|J|,k)]
    entries). *)

module Make (S : COMPACTABLE) : sig
  type t = {
    j_set : Varset.t;
    upto : int;
    mincosts : (Varset.t, int) Hashtbl.t;
        (** [MINCOST⟨base, K⟩] for every computed [K] (including [∅]) *)
    layer : (Varset.t, S.state) Hashtbl.t;
        (** optimal states at cardinality [upto] *)
  }

  val run :
    ?trace:Ovo_obs.Trace.t ->
    ?engine:Engine.t ->
    ?cancel:Cancel.t ->
    ?metrics:Metrics.t ->
    ?membudget:Membudget.t ->
    ?prune:Bound.t ->
    ?on_layer:(progress -> unit) ->
    ?resume:progress list ->
    ?upto:int ->
    base:S.state ->
    Varset.t ->
    t
  (** As {!Fs_star.run}: requires [j_set ⊆ free base]; [upto] defaults
      to [|j_set|].  Engine defaults to {!Engine.Seq}; metrics to
      {!Metrics.ambient}.  Intermediate layers are dropped eagerly (only
      [mincosts] survives), so peak state memory is two adjacent layers
      during the sweep and one — the returned [upto] layer — after.

      [cancel] (default {!Cancel.never}) is polled between cardinality
      layers: a fired token makes the sweep raise {!Cancel.Cancelled}
      instead of starting the next layer, so a deadline-expired run
      stops within one layer's work.  Wrap the call in {!Cancel.protect}
      for a typed [Error `Cancelled] instead of the exception.

      [on_layer] (default a no-op) fires at the same layer boundaries
      [cancel] is polled at, once per {e newly computed} layer — the
      checkpoint-emission hook.  An exception it raises aborts the sweep
      and propagates.  [resume] (default [[]]) replays previously
      completed layers [1..m] (consecutive, complete, validated): their
      triples preload the cost/choice tables, layer [m]'s states are
      rebuilt by replaying each subset's recorded chain over [base], and
      the sweep continues at [m+1] — bit-identical to an uninterrupted
      run under {!Engine.Seq} and {!Engine.Par} alike.

      [membudget] (default an {!Membudget.unbounded} context) accounts
      the packed bytes of every completed layer; with a budget and sink
      set, layers past the budget spill to disk and reload lazily when
      read back.  Results are unaffected — only residency changes. *)

  val costs :
    ?trace:Ovo_obs.Trace.t ->
    ?engine:Engine.t ->
    ?cancel:Cancel.t ->
    ?metrics:Metrics.t ->
    ?membudget:Membudget.t ->
    ?prune:Bound.t ->
    ?on_layer:(progress -> unit) ->
    ?resume:progress list ->
    ?upto:int ->
    base:S.state ->
    Varset.t ->
    costs
  (** Pure cost-table mode: same sweep, but the final layer's states are
      never materialised and nothing but the integer tables is returned.
      Same validation and defaults as {!run}, including [on_layer] and
      [resume]. *)

  val reconstruct :
    ?trace:Ovo_obs.Trace.t ->
    ?metrics:Metrics.t ->
    base:S.state ->
    costs ->
    Varset.t ->
    S.state
  (** [reconstruct ~base ct k] materialises an optimal state for [K = k]
      by backtracking [ct.cost_choice] from [k] to [∅] and replaying the
      resulting placement sequence over [base] — [|k|] compactions
      total.  Requires [k ⊆ ct.cost_j_set] and [|k| ≤ ct.cost_upto]. *)

  val state_of : t -> Varset.t -> S.state
  (** The kept optimal state of a subset at cardinality [upto].  Raises
      {!Bound.Pruned_out} when a pruned sweep discarded it — the subset
      provably heads no ordering beating the incumbent. *)

  val mincost_of : t -> Varset.t -> int
  (** [MINCOST⟨base, K⟩]; raises {!Bound.Pruned_out} when pruned. *)

  val complete :
    ?trace:Ovo_obs.Trace.t ->
    ?engine:Engine.t ->
    ?cancel:Cancel.t ->
    ?metrics:Metrics.t ->
    ?membudget:Membudget.t ->
    ?prune:Bound.t ->
    ?on_layer:(progress -> unit) ->
    ?resume:progress list ->
    base:S.state ->
    Varset.t ->
    S.state
  (** Full run; the optimal state for [K = J].  A cost-only sweep
      followed by a backtrack {e directly over the packed layers} — the
      hashtable form of {!costs} is never built, at most one layer of
      states is live at any time, and with a budgeted [membudget]
      spilled layers are reloaded lazily (one fetch per cardinality), so
      this is the out-of-core entry point {!Fs.run} drives. *)
end

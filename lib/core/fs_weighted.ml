type result = {
  weighted_cost : int;
  mincost : int;
  order : int array;
  diagram : Diagram.t;
}

(* A compaction state paired with its weighted objective; the Subset_dp
   functor then minimises the weighted cost directly.  The cost pass
   prices a candidate as w_i · width without building it. *)
module Weighted_state = struct
  type state = {
    inner : Compact.state;
    weights : int array;
    wcost : int;
  }

  let cost_if_compacted ~metrics st i =
    st.wcost + (st.weights.(i) * Compact.width_if_compacted ~metrics st.inner i)

  let materialise ~metrics st i =
    let next = Compact.materialise ~metrics st.inner i in
    let width = Compact.width_of_last ~before:st.inner ~after:next in
    { st with inner = next; wcost = st.wcost + (st.weights.(i) * width) }

  let mincost st = st.wcost
  let free st = Compact.free st.inner
end

module Dp = Subset_dp.Make (Weighted_state)

let run_mtable ?(trace = Ovo_obs.Trace.null) ?(kind = Compact.Bdd) ?engine
    ?cancel ?metrics ?membudget ?prune ~weights mt =
  let n = Ovo_boolfun.Mtable.arity mt in
  if Array.length weights <> n then invalid_arg "Fs_weighted.run: bad weights";
  Array.iter
    (fun w -> if w < 0 then invalid_arg "Fs_weighted.run: negative weight")
    weights;
  let base =
    {
      Weighted_state.inner = Compact.initial kind mt;
      weights = Array.copy weights;
      wcost = 0;
    }
  in
  let st =
    Ovo_obs.Trace.with_span trace ~cat:"fs"
      ~args:(fun () -> [ ("n", Ovo_obs.Json.Int n) ])
      "fs_weighted.run"
      (fun () ->
        Dp.complete ~trace ?engine ?cancel ?metrics ?membudget ?prune ~base
          (Compact.free base.Weighted_state.inner))
  in
  Option.iter
    (fun b -> Bound.check_final b st.Weighted_state.wcost)
    prune;
  let inner = st.Weighted_state.inner in
  {
    weighted_cost = st.Weighted_state.wcost;
    mincost = inner.Compact.mincost;
    order = Array.of_list (Compact.order inner);
    diagram = Diagram.of_state inner;
  }

let run ?trace ?kind ?engine ?cancel ?metrics ?membudget ?prune ~weights tt =
  run_mtable ?trace ?kind ?engine ?cancel ?metrics ?membudget ?prune ~weights
    (Ovo_boolfun.Mtable.of_truthtable tt)

(** Algorithm FS — exact minimum-OBDD construction (paper Theorem 5, the
    Friedman–Supowit [O*(3^n)] dynamic program; the primary contribution
    of the titled DAC 1987 / [FS90] paper).

    Given the truth table of [f : {0,1}^n → {0,1}] (or a multi-valued
    table, Remark 2), [run] produces a minimum reduced diagram together
    with an optimal variable ordering, visiting every subset [I ⊆ \[n\]]
    once and charging [O(2^{n-|I|})] per subset —
    [Σ_k C(n,k) 2^{n-k} = 3^n] table cells in total. *)

type result = {
  mincost : int;  (** minimum number of non-terminal nodes *)
  size : int;  (** {!Diagram.size} of the produced diagram *)
  order : int array;  (** optimal ordering; [order.(0)] is read last *)
  widths : int array;  (** [widths.(j)] = nodes labeled [order.(j)] *)
  diagram : Diagram.t;  (** a minimum diagram realising [order] *)
}

val run :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Compact.kind ->
  ?engine:Engine.t ->
  ?cancel:Cancel.t ->
  ?metrics:Metrics.t ->
  ?membudget:Membudget.t ->
  ?prune:Bound.t ->
  ?on_layer:(Subset_dp.progress -> unit) ->
  ?resume:Subset_dp.progress list ->
  Ovo_boolfun.Truthtable.t ->
  result
(** Minimum OBDD ([kind = Bdd], default) or ZDD ([kind = Zdd]) for a
    Boolean function.  [engine] (default {!Engine.Seq}) splits each DP
    layer across domains; [metrics] (default {!Metrics.ambient}) receives
    the run's counters; a recording [trace] (default
    {!Ovo_obs.Trace.null}) gets one span per DP layer plus per-domain
    child spans under {!Engine.Par}.  [cancel] (default {!Cancel.never})
    is polled between DP layers: a fired token (explicit or
    deadline-expired, see {!Cancel}) aborts the run with
    {!Cancel.Cancelled} — wrap in {!Cancel.protect} for a typed
    [Error `Cancelled].

    [on_layer] (default a no-op) fires once per completed cardinality
    layer with that layer's [(subset, cost, choice)] triples — the
    checkpoint-emission hook ({!Ovo_store.Checkpoint} in the store
    library persists them).  [resume] (default [[]]) preloads previously
    completed layers so the sweep continues where a checkpointed run
    stopped; the final solution is bit-identical to an uninterrupted
    run under both engines.  See {!Subset_dp.Make.run}.

    [prune] (default off) turns the sweep into an exact branch-and-bound
    against the given {!Bound.t} — same answers, fewer states; see
    {!Subset_dp}.  The final cost is sanity-checked against the seeded
    upper bound ({!Bound.check_final}), so an unsound provider raises
    {!Bound.Pruned_out} instead of silently corrupting the optimum.
    Incompatible with [resume]. *)

val run_mtable :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Compact.kind ->
  ?engine:Engine.t ->
  ?cancel:Cancel.t ->
  ?metrics:Metrics.t ->
  ?membudget:Membudget.t ->
  ?prune:Bound.t ->
  ?on_layer:(Subset_dp.progress -> unit) ->
  ?resume:Subset_dp.progress list ->
  Ovo_boolfun.Mtable.t ->
  result
(** Multi-terminal variant (minimum MTBDD when [kind = Bdd]). *)

val all_mincosts :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Compact.kind ->
  ?engine:Engine.t ->
  ?cancel:Cancel.t ->
  ?metrics:Metrics.t ->
  Ovo_boolfun.Truthtable.t ->
  (Varset.t, int) Hashtbl.t
(** [MINCOST_I] for every subset [I ⊆ \[n\]] — the full DP table, used by
    the Lemma 4 / Lemma 9 verification tests and by the divide-and-conquer
    cross-checks.  The table has [2^n] entries.  Runs in pure cost-table
    mode: no per-candidate node-table copies, no layer of states kept. *)

val of_state : Compact.state -> result
(** Package a complete compaction state (any provenance: FS, FS*, or the
    quantum algorithms) as a result. *)

val count_optimal_orders :
  ?kind:Compact.kind -> Ovo_boolfun.Truthtable.t -> float
(** Number of orderings achieving the minimum (out of [n!]), by the same
    [O*(3^n)] dynamic program with path counting: an ordering is optimal
    iff every prefix-set transition is tight in the Lemma 4 recurrence.
    Float because the count can approach [n!].  Cross-checked against
    the exhaustive {!Ovo_ordering.Spectrum} in the tests. *)

val read_first_order : result -> int array
(** The ordering presented root-first (the direction BDD users expect):
    element 0 is the variable tested at the root. *)

type t = Seq | Par of { domains : int }

let seq = Seq
let par ?(domains = 0) () = Par { domains }

let hard_cap = 64

let resolve_domains d =
  let d = if d <= 0 then Domain.recommended_domain_count () else d in
  max 1 (min hard_cap d)

let domain_count = function
  | Seq -> 1
  | Par { domains } -> resolve_domains domains

let to_string = function
  | Seq -> "seq"
  | Par { domains } when domains <= 0 -> "par"
  | Par { domains } -> Printf.sprintf "par:%d" domains

let of_string s =
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "seq" ] -> Ok Seq
  | [ "par" ] -> Ok (Par { domains = 0 })
  | [ "par"; d ] -> (
      match int_of_string_opt d with
      | Some d when d > 0 -> Ok (Par { domains = d })
      | Some _ | None ->
          Error (`Msg (Printf.sprintf "bad domain count in engine %S" s)))
  | _ -> Error (`Msg (Printf.sprintf "unknown engine %S (expected seq|par[:N])" s))

let pp ppf t = Format.pp_print_string ppf (to_string t)

let map ?(trace = Ovo_obs.Trace.null) ?(cancel = Cancel.never) t ~metrics f xs =
  (* the cooperative-cancellation granularity is one layer: a fired
     token aborts before the fan-out, never mid-chunk, so workers always
     run to completion and Par stays exception-free below this check *)
  Cancel.check cancel;
  let len = Array.length xs in
  let seq_map () = Array.map (f metrics) xs in
  match t with
  | Seq -> seq_map ()
  | Par { domains } ->
      let d = min (resolve_domains domains) len in
      if d <= 1 then
        if not (Ovo_obs.Trace.enabled trace) then seq_map ()
        else begin
          (* a layer too small to split still gets its attribution span
             (on the calling domain), so that the domain spans of a Par
             run always sum to the layers' merged metrics *)
          let scratch = Metrics.create () in
          let out =
            Ovo_obs.Trace.with_span trace ~cat:"engine"
              ~args:(fun () ->
                ("worker", Ovo_obs.Json.Int 0)
                :: ("items", Ovo_obs.Json.Int len)
                :: Metrics.to_args (Metrics.snapshot scratch))
              "domain 0"
              (fun () -> Array.map (f scratch) xs)
          in
          Metrics.merge_into ~into:metrics scratch;
          out
        end
      else begin
        (* Contiguous chunks: one domain per chunk, each counting into a
           scratch context.  All items have the same cardinality, hence
           near-identical work, so static splitting balances well.  The
           input layer is only read, never written, and the results are
           reassembled in input order on the calling domain — Par runs
           are therefore deterministic and bit-identical to Seq. *)
        let chunk = (len + d - 1) / d in
        let workers =
          Array.init d (fun w ->
              let lo = w * chunk in
              let hi = min len (lo + chunk) in
              let scratch = Metrics.create () in
              let dom =
                Domain.spawn (fun () ->
                    (* the span is recorded from the worker, so its tid
                       is the worker domain's id and its metrics args
                       are exactly this chunk's contribution *)
                    Ovo_obs.Trace.with_span trace ~cat:"engine"
                      ~args:(fun () ->
                        ("worker", Ovo_obs.Json.Int w)
                        :: ("items", Ovo_obs.Json.Int (max 0 (hi - lo)))
                        :: Metrics.to_args (Metrics.snapshot scratch))
                      (Printf.sprintf "domain %d" w)
                      (fun () ->
                        Array.init (max 0 (hi - lo)) (fun i ->
                            f scratch xs.(lo + i))))
              in
              (scratch, dom))
        in
        let parts =
          Array.map
            (fun (scratch, dom) ->
              let part = Domain.join dom in
              Metrics.merge_into ~into:metrics scratch;
              part)
            workers
        in
        Array.concat (Array.to_list parts)
      end

(** Algorithm [FS*] — the composable Friedman–Supowit dynamic program
    (paper Lemma 8 and the pseudo-code of Appendix D).

    Given [FS(⟨I₁,…,I_m⟩)] — here a {!Compact.state} whose assigned set
    is [I = I₁ ∪ … ∪ I_m] — and a set [J] of still-free variables, [FS*]
    computes [FS(⟨I₁,…,I_m,K⟩)] for every [K ⊆ J] by cardinality, using
    the recurrence of Lemma 7:

    [MINCOST⟨I,K⟩ = min_{h ∈ K} MINCOST⟨I, K∖h, h⟩].

    Stopping at cardinality [k] yields the set
    [{FS(⟨I,K⟩) : K ⊆ J, |K| = k}] in
    [O*(2^(n-|I|-|J|) · Σ_(j≤k) 2^(|J|-j) C(|J|,j))] time — the exact
    bound of Lemma 8 — which is the preprocessing step of the quantum
    algorithms.  Running to [k = |J|] with [I = ∅], [J = \[n\]] is the
    original algorithm FS (Theorem 5). *)

type t = private {
  base_assigned : Varset.t;  (** the set [I] of the base state *)
  j_set : Varset.t;
  upto : int;  (** cardinality at which the run stopped *)
  mincosts : (Varset.t, int) Hashtbl.t;
      (** [MINCOST⟨I,K⟩] for every [K ⊆ J] with [|K| ≤ upto] (including
          [K = ∅], the base's own cost) *)
  layer : (Varset.t, Compact.state) Hashtbl.t;
      (** the optimal states at cardinality [upto], keyed by [K] *)
}

type costs = Subset_dp.costs = {
  cost_j_set : Varset.t;
  cost_upto : int;
  cost_table : (Varset.t, int) Hashtbl.t;
      (** [MINCOST⟨I,K⟩] for every computed [K] (including [∅]) *)
  cost_choice : (Varset.t, int) Hashtbl.t;
      (** backtracking pointers: a tight last-placed [h] per [K ≠ ∅] *)
}
(** The cost-table result of {!costs} — see {!Subset_dp.costs}. *)

val run :
  ?trace:Ovo_obs.Trace.t ->
  ?engine:Engine.t ->
  ?cancel:Cancel.t ->
  ?metrics:Metrics.t ->
  ?membudget:Membudget.t ->
  ?prune:Bound.t ->
  ?on_layer:(Subset_dp.progress -> unit) ->
  ?resume:Subset_dp.progress list ->
  ?upto:int ->
  base:Compact.state ->
  Varset.t ->
  t
(** [run ~base j_set] requires [j_set] to be a subset of the base
    state's free variables; [upto] defaults to [|j_set|] (full run).
    Raises [Invalid_argument] on violations.  [engine] (default
    {!Engine.Seq}) splits each cardinality layer across domains;
    [metrics] (default {!Metrics.ambient}) receives the run's counters,
    aggregated across domains; [cancel] (default {!Cancel.never}) is
    polled between layers; [on_layer]/[resume] checkpoint and resume the
    sweep at those same boundaries — see {!Subset_dp.Make.run}. *)

val costs :
  ?trace:Ovo_obs.Trace.t ->
  ?engine:Engine.t ->
  ?cancel:Cancel.t ->
  ?metrics:Metrics.t ->
  ?membudget:Membudget.t ->
  ?prune:Bound.t ->
  ?on_layer:(Subset_dp.progress -> unit) ->
  ?resume:Subset_dp.progress list ->
  ?upto:int ->
  base:Compact.state ->
  Varset.t ->
  costs
(** Pure cost-table mode: same sweep as {!run} but no layer of states is
    returned — only [MINCOST⟨I,K⟩] and the backtracking pointers, two
    integers per subset.  Same validation and defaults as {!run}. *)

val reconstruct :
  ?trace:Ovo_obs.Trace.t ->
  ?metrics:Metrics.t ->
  base:Compact.state ->
  costs ->
  Varset.t ->
  Compact.state
(** [reconstruct ~base ct k] materialises an optimal state for [K = k] by
    backtracking the tight transitions recorded in [ct] — [|k|]
    compactions over [base].  Requires [k ⊆ ct.cost_j_set] and
    [|k| ≤ ct.cost_upto]. *)

val state_of : t -> Varset.t -> Compact.state
(** The optimal state for a [K] in the final layer; raises [Not_found]
    for other sets. *)

val mincost_of : t -> Varset.t -> int
(** [MINCOST⟨I,K⟩]; raises [Not_found] when [K] was not computed. *)

val complete :
  ?trace:Ovo_obs.Trace.t ->
  ?engine:Engine.t ->
  ?cancel:Cancel.t ->
  ?metrics:Metrics.t ->
  ?membudget:Membudget.t ->
  ?prune:Bound.t ->
  ?on_layer:(Subset_dp.progress -> unit) ->
  ?resume:Subset_dp.progress list ->
  base:Compact.state ->
  Varset.t ->
  Compact.state
(** [complete ~base j_set]: full run returning the single optimal state
    for [K = J] — the
    composition step [FS(⟨I⟩) ↦ FS(⟨I,J⟩)] used verbatim by the quantum
    algorithms (their classical subroutine [Γ = FS*]).  Runs in
    cost-table mode and reconstructs the winner, so it never holds more
    than one layer of states. *)

(** Execution engine for the subset dynamic programs — sequential, or
    domain-parallel on OCaml 5 runtimes.

    The Friedman–Supowit DP is embarrassingly parallel within one
    cardinality layer: every [K] with [|K| = k] depends only on the
    frozen layer [k-1], so the subsets of a layer can be split across
    {!Domain.t}s with no synchronisation beyond the final join.  This
    module captures that split once; {!Subset_dp.Make} (and everything
    above it: {!Fs}, {!Fs_star}, {!Fs_weighted}, {!Shared} and the
    quantum entry points) takes an engine parameter.

    {!Par} is deterministic: results are reassembled in input order, so a
    parallel run produces bit-identical tables, orderings and metrics to
    a sequential one. *)

type t =
  | Seq  (** single-domain, the default everywhere *)
  | Par of { domains : int }
      (** split each DP layer across [domains] worker domains;
          [domains <= 0] means {!Domain.recommended_domain_count} *)

val seq : t

val par : ?domains:int -> unit -> t
(** [par ()] uses the recommended domain count at run time. *)

val domain_count : t -> int
(** The number of domains the engine will actually use (1 for {!Seq});
    resolves [domains <= 0] and clamps to a safe bound. *)

val to_string : t -> string
(** ["seq"], ["par"] or ["par:N"]. *)

val of_string : string -> (t, [ `Msg of string ]) result
(** Inverse of {!to_string}; accepts ["seq"], ["par"], ["par:N"]. *)

val pp : Format.formatter -> t -> unit

val map :
  ?trace:Ovo_obs.Trace.t ->
  ?cancel:Cancel.t ->
  t ->
  metrics:Metrics.t ->
  (Metrics.t -> 'a -> 'b) ->
  'a array ->
  'b array
(** [map t ~metrics f xs] applies [f] to every element, giving each
    worker domain a scratch {!Metrics.t} that is {!Metrics.merge_into}d
    [metrics] after its join ({!Seq} passes [metrics] straight through).
    [f] must be safe to run concurrently against shared read-only data:
    the DP guarantees this because a layer only reads its predecessor.
    [f] may also read shared atomics frozen for the call's duration —
    the branch-and-bound sweep hands workers an incumbent snapshot that
    only the calling domain updates, between [map] calls, so pruning
    decisions stay deterministic.  The result array is in input order
    regardless of engine.

    With a recording [trace] (default {!Ovo_obs.Trace.null}), each
    worker domain wraps its chunk in a span (category ["engine"]) whose
    args carry the chunk bounds and that worker's own metrics — the
    per-domain attribution of a {!Par} layer.  The args of the domain
    spans of one layer sum to the layer's merged metrics delta; a layer
    too small to split records one such span on the calling domain.

    [cancel] (default {!Cancel.never}) is checked once on entry, before
    any worker is spawned: a fired token raises {!Cancel.Cancelled} on
    the calling domain, so a DP sweep aborts between layers and a {!Par}
    fan-out is never torn down mid-chunk. *)

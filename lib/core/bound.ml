exception Pruned_out of string

type lower = {
  lb_source : string;
  remaining : Varset.t -> int;
  exact_completion : Varset.t -> int option;
}

type upper = { ub_source : string; ub_value : int }

type layer_stat = {
  ls_layer : int;
  ls_kept : int;
  ls_pruned : int;
  ls_lower : int;
  ls_incumbent : int;
}

type t = {
  lower : lower;
  seed : upper option;
  incumbent : int Atomic.t;
  pruned : int Atomic.t;
  mutable stats_rev : layer_stat list;
}

(* A variable is [relevant] when every diagram of the function — under
   any ordering — must carry at least one node labelled with it.  For a
   BDD that is classic support: some input pair differing only in the
   variable maps to different values.  For a ZDD the elision rule kills
   [hi = 0] nodes instead, so the witness is a point with the variable
   set and a non-zero value: evaluation must survive that variable, so a
   node labelled with it (with a non-zero hi) sits on the path. *)
let relevant kind mt =
  let n = Ovo_boolfun.Mtable.arity mt in
  let size = 1 lsl n in
  let rel = ref Varset.empty in
  for i = 0 to n - 1 do
    let bit = 1 lsl i in
    let found = ref false in
    let code = ref 0 in
    while (not !found) && !code < size do
      (match kind with
      | Compact.Bdd ->
          if
            !code land bit = 0
            && Ovo_boolfun.Mtable.eval mt !code
               <> Ovo_boolfun.Mtable.eval mt (!code lor bit)
          then found := true
      | Compact.Zdd ->
          if !code land bit <> 0 && Ovo_boolfun.Mtable.eval mt !code <> 0 then
            found := true);
      incr code
    done;
    if !found then rel := Varset.add i !rel
  done;
  !rel

let source_of = function
  | Compact.Bdd -> "support-count"
  | Compact.Zdd -> "zdd-live-count"

(* The admissibility argument works directly on any completed diagram:
   each relevant free variable labels >= 1 node there, and every node
   labelled by a currently-free variable is created by the remaining
   compactions — so the remaining cost is >= the relevant-free count.
   When no relevant variable is free the completion is exactly free of
   charge: every remaining compaction elides its whole table. *)
let counting_of ~lb_source ~weight rel =
  {
    lb_source;
    remaining =
      (fun free -> Varset.fold (fun i acc -> acc + weight i) (Varset.inter rel free) 0);
    exact_completion =
      (fun free -> if Varset.disjoint rel free then Some 0 else None);
  }

let counting_lower kind mt =
  counting_of ~lb_source:(source_of kind) ~weight:(fun _ -> 1) (relevant kind mt)

let weighted_counting_lower ~weights kind mt =
  counting_of
    ~lb_source:("weighted-" ^ source_of kind)
    ~weight:(fun i -> weights.(i))
    (relevant kind mt)

let shared_counting_lower kind mts =
  let rel =
    Array.fold_left
      (fun acc mt -> Varset.union acc (relevant kind mt))
      Varset.empty mts
  in
  counting_of ~lb_source:("shared-" ^ source_of kind) ~weight:(fun _ -> 1) rel

let make ?seed lower =
  {
    lower;
    seed;
    incumbent =
      Atomic.make
        (match seed with Some u -> u.ub_value | None -> max_int);
    pruned = Atomic.make 0;
    stats_rev = [];
  }

let incumbent t = Atomic.get t.incumbent
let remaining t free = t.lower.remaining free
let exact_completion t free = t.lower.exact_completion free
let source t = t.lower.lb_source

(* lock-free monotone min — the Par workers only read, but exact
   completions observed after a layer join race with nobody anyway *)
let observe t v =
  let rec go () =
    let cur = Atomic.get t.incumbent in
    if v < cur && not (Atomic.compare_and_set t.incumbent cur v) then go ()
  in
  go ()

let note_pruned t k = ignore (Atomic.fetch_and_add t.pruned k)
let states_pruned t = Atomic.get t.pruned
let record_layer t ls = t.stats_rev <- ls :: t.stats_rev
let layer_stats t = List.rev t.stats_rev

let best_lower t =
  match t.stats_rev with [] -> 0 | s :: _ -> min s.ls_lower (incumbent t)

let anytime t = (best_lower t, incumbent t)

let check_final t cost =
  match t.seed with
  | Some u when cost > u.ub_value ->
      raise
        (Pruned_out
           (Printf.sprintf
              "Bound: final cost %d exceeds the seeded upper bound %d (%s) — \
               the bound provider is unsound"
              cost u.ub_value u.ub_source))
  | Some _ | None -> ()

let to_args t =
  let seed_args =
    match t.seed with
    | None -> [ ("seed_source", Ovo_obs.Json.String "none") ]
    | Some u ->
        [
          ("seed_source", Ovo_obs.Json.String u.ub_source);
          ("seed_value", Ovo_obs.Json.Int u.ub_value);
        ]
  in
  [
    ("bound_source", Ovo_obs.Json.String t.lower.lb_source);
    ("states_pruned", Ovo_obs.Json.Int (states_pruned t));
    ( "incumbent",
      if incumbent t = max_int then Ovo_obs.Json.Null
      else Ovo_obs.Json.Int (incumbent t) );
  ]
  @ seed_args

let to_json_value t =
  let layers =
    List.map
      (fun ls ->
        Ovo_obs.Json.Obj
          [
            ("k", Ovo_obs.Json.Int ls.ls_layer);
            ("kept", Ovo_obs.Json.Int ls.ls_kept);
            ("pruned", Ovo_obs.Json.Int ls.ls_pruned);
            ("lower", Ovo_obs.Json.Int ls.ls_lower);
            ("incumbent", Ovo_obs.Json.Int ls.ls_incumbent);
          ])
      (layer_stats t)
  in
  Ovo_obs.Json.Obj (to_args t @ [ ("layers", Ovo_obs.Json.List layers) ])

let pp ppf t =
  Format.fprintf ppf "bound=%s pruned=%d incumbent=%s seed=%s"
    t.lower.lb_source (states_pruned t)
    (if incumbent t = max_int then "inf" else string_of_int (incumbent t))
    (match t.seed with
    | None -> "none"
    | Some u -> Printf.sprintf "%s:%d" u.ub_source u.ub_value)

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let r = ref 1 in
    for i = 1 to k do
      r := !r * (n - k + i) / i
    done;
    !r
  end

(* One cardinality layer of the DP, bit-packed: entry [r] of [data] holds
   the (cost, choice) of the k-subset whose combinatorial (colex) rank
   within [j_set] is [r].  8-byte LE cost + 1-byte choice — a fixed 9
   bytes per subset where the hashtable pair cost ~10x that in boxed
   words, and a layout that serialises to a spill payload for free.

   A branch-and-bound sweep leaves pruned subsets unset; the in-memory
   layout stays dense (rank arithmetic is the whole point) but [encode]
   switches to a sparse (rank, cost, choice) triple format or a
   delta+varint compressed stream whenever that is smaller, so both
   pruning and cost locality shrink spill volume. *)

let entry_bytes = 9
let header_bytes = 14
let version = 1
let sparse_header_bytes = 18
let sparse_entry_bytes = 13
let sparse_version = 2
let packed_version = 3
let raw_extent_version = 4
let extent_header_bytes = 30

(* --- combinatorial number system helpers ------------------------------ *)

let pascal_table ~m ~k =
  let t = Array.make_matrix (m + 1) (k + 1) 0 in
  for p = 0 to m do
    t.(p).(0) <- 1;
    for i = 1 to min p k do
      t.(p).(i) <- t.(p - 1).(i - 1) + t.(p - 1).(i)
    done
  done;
  t

(* Combinatorial number system: the rank of {c_1 < ... < c_k} among the
   k-subsets in increasing-bitmask (= colex) order is sum_i C(c_i, i),
   where c_i is the position of the i-th element within [j_set].  This
   matches the order {!Varset.iter_subsets_of} enumerates. *)
let rank_in ~pascal ~j_set ksub =
  let r = ref 0 and i = ref 0 in
  Varset.iter
    (fun e ->
      incr i;
      r := !r + pascal.(Varset.rank_in e j_set).(!i))
    ksub;
  !r

(* Inverse of {!rank_in}: peel off the largest position p with
   C(p,i) <= r for i = k downto 1. *)
let unrank_in ~pascal ~j_set ~k r =
  let members = Array.of_list (Varset.elements j_set) in
  let r = ref r and sub = ref Varset.empty in
  let p = ref (Array.length members - 1) in
  for i = k downto 1 do
    while pascal.(!p).(i) > !r do
      decr p
    done;
    sub := Varset.add members.(!p) !sub;
    r := !r - pascal.(!p).(i)
  done;
  !sub

(* --- zig-zag varints (LEB128) ----------------------------------------- *)

(* Costs along colex order move in small steps, so the v3 stream stores
   per-entry deltas as zig-zag varints: 1–2 bytes where the raw layout
   spends 8.  Duplicated (deliberately) from [Ovo_store.Codec]: ovo.core
   must not depend on the store layer. *)

let varint_add buf v =
  if v < 0 then invalid_arg "Layer_pack: negative varint";
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!v land 0x7f)));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.chr !v)

let zigzag v = (v lsl 1) lxor (v asr (Sys.int_size - 1))
let unzigzag v = (v lsr 1) lxor (- (v land 1))

(* --- payload sources --------------------------------------------------- *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type src = S_string of string | S_big of bigstring

let src_len = function
  | S_string s -> String.length s
  | S_big b -> Bigarray.Array1.dim b

let src_length = src_len

let src_get s i =
  match s with S_string s -> s.[i] | S_big b -> Bigarray.Array1.get b i

let src_u8 s i = Char.code (src_get s i)

let src_u32 s i =
  src_u8 s i
  lor (src_u8 s (i + 1) lsl 8)
  lor (src_u8 s (i + 2) lsl 16)
  lor (src_u8 s (i + 3) lsl 24)

let src_i64 s i =
  let v = ref 0L in
  for j = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (src_u8 s (i + j)))
  done;
  !v

(* Read one LEB128 varint at [!pos]; raises on truncation or a value
   that cannot have been written by [varint_add] (> 9 septets). *)
let src_varint fail s pos =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !pos >= src_len s then fail "truncated varint";
    if !shift > 62 then fail "varint overflow";
    let b = src_u8 s !pos in
    incr pos;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := b land 0x80 <> 0
  done;
  !v

type t = {
  j_set : Varset.t;
  k : int;
  count : int;
  mutable present : int;
  pascal : int array array;
      (* pascal.(p).(i) = C(p,i), for the rank formula above *)
  data : Bytes.t;
}

let create ~j_set ~k =
  let m = Varset.cardinal j_set in
  if k < 1 || k > m then invalid_arg "Layer_pack.create: bad cardinality";
  let count = binomial m k in
  let data = Bytes.make (count * entry_bytes) '\xff' in
  { j_set; k; count; present = 0; pascal = pascal_table ~m ~k; data }

let k t = t.k
let j_set t = t.j_set
let count t = t.count
let present t = t.present
let size_bytes t = header_bytes + Bytes.length t.data
let rank t ksub =
  if (not (Varset.subset ksub t.j_set)) || Varset.cardinal ksub <> t.k then
    invalid_arg "Layer_pack: subset not of this layer";
  rank_in ~pascal:t.pascal ~j_set:t.j_set ksub

let unrank t r = unrank_in ~pascal:t.pascal ~j_set:t.j_set ~k:t.k r
let is_set_at t off = Bytes.get_int64_le t.data off >= 0L

let set t ksub ~cost ~choice =
  if cost < 0 then invalid_arg "Layer_pack.set: negative cost";
  if choice < 0 || choice > 0xff then invalid_arg "Layer_pack.set: bad choice";
  let off = rank t ksub * entry_bytes in
  if not (is_set_at t off) then t.present <- t.present + 1;
  Bytes.set_int64_le t.data off (Int64.of_int cost);
  Bytes.set_uint8 t.data (off + 8) choice

let mem t ksub = is_set_at t (rank t ksub * entry_bytes)

let cost t ksub =
  let off = rank t ksub * entry_bytes in
  let c = Int64.to_int (Bytes.get_int64_le t.data off) in
  if c < 0 then invalid_arg "Layer_pack.cost: entry never set";
  c

let choice t ksub =
  let off = rank t ksub * entry_bytes in
  if Bytes.get_int64_le t.data off < 0L then
    invalid_arg "Layer_pack.choice: entry never set";
  Bytes.get_uint8 t.data (off + 8)

let of_entries ~j_set ~k entries =
  let t = create ~j_set ~k in
  if Array.length entries > t.count then
    invalid_arg "Layer_pack.of_entries: more entries than subsets";
  Array.iter (fun (ksub, cost, choice) -> set t ksub ~cost ~choice) entries;
  t

(* Unset (pruned) subsets are skipped: a partial layer iterates only the
   states the sweep kept. *)
let iter t f =
  Varset.iter_subsets_of t.j_set ~size:t.k (fun ksub ->
      let off = rank t ksub * entry_bytes in
      if is_set_at t off then
        f ksub
          ~cost:(Int64.to_int (Bytes.get_int64_le t.data off))
          ~choice:(Bytes.get_uint8 t.data (off + 8)))

let entries t =
  let out = Array.make t.present (Varset.empty, 0, 0) in
  let i = ref 0 in
  iter t (fun ksub ~cost ~choice ->
      out.(!i) <- (ksub, cost, choice);
      incr i);
  out

(* --- v3/v4 stream helpers over a raw dense buffer ----------------------
   Shared by the whole-layer encoder and the extent encoder: both hold a
   dense 9 B/entry slice and differ only in the header they prepend. *)

let set_extent_header b ~ver ~k ~j_set ~total ~lo ~len ~present ~payload_len =
  Bytes.set_uint8 b 0 ver;
  Bytes.set_uint8 b 1 k;
  Bytes.set_int64_le b 2 (Int64.of_int j_set);
  Bytes.set_int32_le b 10 (Int32.of_int total);
  Bytes.set_int32_le b 14 (Int32.of_int lo);
  Bytes.set_int32_le b 18 (Int32.of_int len);
  Bytes.set_int32_le b 22 (Int32.of_int present);
  Bytes.set_int32_le b 26 (Int32.of_int payload_len)

(* The compressed stream over a dense slice: for every set entry, in
   rank order, [varint gap-from-previous-set-rank] (first: gap from
   [lo - 1]) ++ [zig-zag varint cost delta] (first: delta from 0) ++
   [u8 choice].  Costs within a layer are small and monotone-ish in
   colex order, so deltas are mostly 1-byte. *)
let compress_slice data ~off ~len ~lo =
  let buf = Buffer.create (len * 3) in
  let prev_rank = ref (lo - 1) and prev_cost = ref 0 in
  for i = 0 to len - 1 do
    let eoff = off + (i * entry_bytes) in
    let c64 = Bytes.get_int64_le data eoff in
    if c64 >= 0L then begin
      let rank = lo + i and cost = Int64.to_int c64 in
      varint_add buf (rank - !prev_rank);
      varint_add buf (zigzag (cost - !prev_cost));
      Buffer.add_char buf (Bytes.get data (eoff + 8));
      prev_rank := rank;
      prev_cost := cost
    end
  done;
  Buffer.contents buf

(* Decode a v3 payload stream into a dense slice.  [want_lo]/[want_len]
   select the sub-range to keep (containment slicing — a whole-layer v3
   payload can serve one extent's reload); entries outside it are walked
   but not stored. *)
let decompress_into fail s ~pos ~payload_len ~src_lo ~src_present ~dst
    ~want_lo ~want_len =
  let limit = pos + payload_len in
  let cursor = ref pos in
  let prev_rank = ref (src_lo - 1) and prev_cost = ref 0 in
  let stored = ref 0 in
  for _ = 1 to src_present do
    if !cursor >= limit then fail "truncated stream";
    let gap = src_varint fail s cursor in
    if gap <= 0 then fail "non-increasing rank" (* gap 0 = duplicate *);
    let rank = !prev_rank + gap in
    let cost = !prev_cost + unzigzag (src_varint fail s cursor) in
    if cost < 0 then fail "negative cost";
    if !cursor >= limit then fail "truncated choice";
    let ch = src_u8 s !cursor in
    incr cursor;
    prev_rank := rank;
    prev_cost := cost;
    if rank >= want_lo && rank < want_lo + want_len then begin
      let off = (rank - want_lo) * entry_bytes in
      Bytes.set_int64_le dst off (Int64.of_int cost);
      Bytes.set_uint8 dst (off + 8) ch;
      incr stored
    end
  done;
  if !cursor <> limit then fail "trailing stream bytes";
  (!prev_rank, !stored)

let encode_dense t =
  let b = Bytes.create (header_bytes + Bytes.length t.data) in
  Bytes.set_uint8 b 0 version;
  Bytes.set_uint8 b 1 t.k;
  Bytes.set_int64_le b 2 (Int64.of_int t.j_set);
  Bytes.set_int32_le b 10 (Int32.of_int t.count);
  Bytes.blit t.data 0 b header_bytes (Bytes.length t.data);
  Bytes.unsafe_to_string b

let encode_sparse t =
  let b = Bytes.create (sparse_header_bytes + (t.present * sparse_entry_bytes)) in
  Bytes.set_uint8 b 0 sparse_version;
  Bytes.set_uint8 b 1 t.k;
  Bytes.set_int64_le b 2 (Int64.of_int t.j_set);
  Bytes.set_int32_le b 10 (Int32.of_int t.count);
  Bytes.set_int32_le b 14 (Int32.of_int t.present);
  let out = ref sparse_header_bytes in
  for r = 0 to t.count - 1 do
    let off = r * entry_bytes in
    if is_set_at t off then begin
      Bytes.set_int32_le b !out (Int32.of_int r);
      Bytes.set_int64_le b (!out + 4) (Bytes.get_int64_le t.data off);
      Bytes.set_uint8 b (!out + 12) (Bytes.get_uint8 t.data (off + 8));
      out := !out + sparse_entry_bytes
    end
  done;
  Bytes.unsafe_to_string b

let encode_packed t =
  let stream = compress_slice t.data ~off:0 ~len:t.count ~lo:0 in
  let b = Bytes.create (extent_header_bytes + String.length stream) in
  set_extent_header b ~ver:packed_version ~k:t.k ~j_set:t.j_set ~total:t.count
    ~lo:0 ~len:t.count ~present:t.present
    ~payload_len:(String.length stream);
  Bytes.blit_string stream 0 b extent_header_bytes (String.length stream);
  Bytes.unsafe_to_string b

let encode t =
  let candidates = [ encode_packed t; encode_sparse t; encode_dense t ] in
  List.fold_left
    (fun best c -> if String.length c < String.length best then c else best)
    (List.hd candidates) (List.tl candidates)

let decode s =
  let fail msg = failwith (Printf.sprintf "Layer_pack.decode: %s" msg) in
  if String.length s < header_bytes then fail "payload shorter than header";
  let v = Char.code s.[0] in
  if v <> version && v <> sparse_version && v <> packed_version then
    fail "unknown version";
  let k = Char.code s.[1] in
  let j_set = Int64.to_int (String.get_int64_le s 2) in
  let count = Int32.to_int (String.get_int32_le s 10) in
  let m = Varset.cardinal j_set in
  if j_set < 0 || k < 1 || k > m then fail "inconsistent header";
  if count <> binomial m k then fail "entry count does not match layer";
  let t = create ~j_set ~k in
  (if v = version then begin
     if String.length s <> header_bytes + (count * entry_bytes) then
       fail "truncated layer data";
     Bytes.blit_string s header_bytes t.data 0 (count * entry_bytes);
     (* recover [present] by scanning for set sign bits *)
     for r = 0 to count - 1 do
       if is_set_at t (r * entry_bytes) then t.present <- t.present + 1
     done
   end
   else if v = sparse_version then begin
     if String.length s < sparse_header_bytes then
       fail "payload shorter than sparse header";
     let present = Int32.to_int (String.get_int32_le s 14) in
     if present < 0 || present > count then fail "inconsistent sparse header";
     if String.length s <> sparse_header_bytes + (present * sparse_entry_bytes)
     then fail "truncated layer data";
     for i = 0 to present - 1 do
       let off = sparse_header_bytes + (i * sparse_entry_bytes) in
       let r = Int32.to_int (String.get_int32_le s off) in
       if r < 0 || r >= count then fail "entry rank out of range";
       let c = String.get_int64_le s (off + 4) in
       if c < 0L then fail "negative cost in sparse entry";
       let doff = r * entry_bytes in
       if not (is_set_at t doff) then t.present <- t.present + 1;
       Bytes.set_int64_le t.data doff c;
       Bytes.set_uint8 t.data (doff + 8) (Char.code s.[off + 12])
     done;
     if t.present <> present then fail "duplicate rank in sparse entries"
   end
   else begin
     (* v3: a compressed stream — accepted here only when it covers the
        whole layer (an extent payload is not a layer) *)
     if String.length s < extent_header_bytes then
       fail "payload shorter than extent header";
     let lo = Int32.to_int (String.get_int32_le s 14) in
     let len = Int32.to_int (String.get_int32_le s 18) in
     let present = Int32.to_int (String.get_int32_le s 22) in
     let payload_len = Int32.to_int (String.get_int32_le s 26) in
     if lo <> 0 || len <> count then fail "extent payload, not a whole layer";
     if present < 0 || present > count then fail "inconsistent header";
     if String.length s <> extent_header_bytes + payload_len then
       fail "truncated layer data";
     let last_rank, stored =
       decompress_into fail (S_string s) ~pos:extent_header_bytes ~payload_len
         ~src_lo:0 ~src_present:present ~dst:t.data ~want_lo:0 ~want_len:count
     in
     if last_rank >= count then fail "entry rank out of range";
     t.present <- stored
   end);
  t

(* --- extents ------------------------------------------------------------ *)

module Extent = struct
  type data = Heap of Bytes.t | Map of bigstring

  type t = {
    x_j_set : Varset.t;
    x_k : int;
    x_total : int;  (* C(|j_set|, k): the whole layer's subset count *)
    x_lo : int;
    x_len : int;
    mutable x_present : int;
    x_data : data;  (* dense 9 B/entry slice for ranks [lo, lo+len) *)
  }

  let j_set t = t.x_j_set
  let k t = t.x_k
  let total t = t.x_total
  let lo t = t.x_lo
  let len t = t.x_len
  let present t = t.x_present
  let size_bytes t = extent_header_bytes + (t.x_len * entry_bytes)

  let create ~j_set ~k ~total ~lo ~len =
    let m = Varset.cardinal j_set in
    if k < 1 || k > m || total <> binomial m k then
      invalid_arg "Layer_pack.Extent.create: bad layer shape";
    if lo < 0 || len < 1 || lo + len > total then
      invalid_arg "Layer_pack.Extent.create: bad extent range";
    {
      x_j_set = j_set;
      x_k = k;
      x_total = total;
      x_lo = lo;
      x_len = len;
      x_present = 0;
      x_data = Heap (Bytes.make (len * entry_bytes) '\xff');
    }

  let data_i64 d off =
    match d with
    | Heap b -> Bytes.get_int64_le b off
    | Map b ->
        let v = ref 0L in
        for j = 7 downto 0 do
          v :=
            Int64.logor (Int64.shift_left !v 8)
              (Int64.of_int (Char.code (Bigarray.Array1.get b (off + j))))
        done;
        !v

  let data_u8 d off =
    match d with
    | Heap b -> Bytes.get_uint8 b off
    | Map b -> Char.code (Bigarray.Array1.get b off)

  let off_of t rank =
    if rank < t.x_lo || rank >= t.x_lo + t.x_len then
      invalid_arg "Layer_pack.Extent: rank outside this extent";
    (rank - t.x_lo) * entry_bytes

  let set t ~rank ~cost ~choice =
    if cost < 0 then invalid_arg "Layer_pack.Extent.set: negative cost";
    if choice < 0 || choice > 0xff then
      invalid_arg "Layer_pack.Extent.set: bad choice";
    let off = off_of t rank in
    match t.x_data with
    | Map _ -> invalid_arg "Layer_pack.Extent.set: mapped extents are read-only"
    | Heap b ->
        if Bytes.get_int64_le b off < 0L then t.x_present <- t.x_present + 1;
        Bytes.set_int64_le b off (Int64.of_int cost);
        Bytes.set_uint8 b (off + 8) choice

  let mem t ~rank = data_i64 t.x_data (off_of t rank) >= 0L

  let cost t ~rank =
    let c = Int64.to_int (data_i64 t.x_data (off_of t rank)) in
    if c < 0 then invalid_arg "Layer_pack.Extent.cost: entry never set";
    c

  let choice t ~rank =
    let off = off_of t rank in
    if data_i64 t.x_data off < 0L then
      invalid_arg "Layer_pack.Extent.choice: entry never set";
    data_u8 t.x_data (off + 8)

  let iter t f =
    for i = 0 to t.x_len - 1 do
      let off = i * entry_bytes in
      let c = data_i64 t.x_data off in
      if c >= 0L then
        f ~rank:(t.x_lo + i) ~cost:(Int64.to_int c)
          ~choice:(data_u8 t.x_data (off + 8))
    done

  let heap_data t =
    match t.x_data with
    | Heap b -> b
    | Map big ->
        let b = Bytes.create (t.x_len * entry_bytes) in
        for i = 0 to Bytes.length b - 1 do
          Bytes.set b i (Bigarray.Array1.get big i)
        done;
        b

  let encode_raw t =
    let data = heap_data t in
    let b = Bytes.create (extent_header_bytes + Bytes.length data) in
    set_extent_header b ~ver:raw_extent_version ~k:t.x_k ~j_set:t.x_j_set
      ~total:t.x_total ~lo:t.x_lo ~len:t.x_len ~present:t.x_present
      ~payload_len:(Bytes.length data);
    Bytes.blit data 0 b extent_header_bytes (Bytes.length data);
    Bytes.unsafe_to_string b

  let encode_packed t =
    let data = heap_data t in
    let stream = compress_slice data ~off:0 ~len:t.x_len ~lo:t.x_lo in
    let b = Bytes.create (extent_header_bytes + String.length stream) in
    set_extent_header b ~ver:packed_version ~k:t.x_k ~j_set:t.x_j_set
      ~total:t.x_total ~lo:t.x_lo ~len:t.x_len ~present:t.x_present
      ~payload_len:(String.length stream);
    Bytes.blit_string stream 0 b extent_header_bytes (String.length stream);
    Bytes.unsafe_to_string b

  let encode t =
    let packed = encode_packed t and raw = encode_raw t in
    if String.length packed < String.length raw then packed else raw

  (* Decode from any accepted payload shape, keeping only the requested
     rank range.  The payload's own range must {e contain} the request —
     an exact extent match and a whole-layer record (the unified
     checkpoint format) are both containment, so one reload path serves
     the spill store and the checkpoint store alike.  A v4 payload
     backed by a mapped [src] keeps the mapping as its backing slice, so
     the OS pages the data instead of the heap holding it. *)
  let of_src src ~j_set ~k ~total ~lo ~len =
    let fail msg = failwith (Printf.sprintf "Layer_pack.Extent.of_src: %s" msg) in
    let m = Varset.cardinal j_set in
    if k < 1 || k > m || total <> binomial m k || lo < 0 || len < 1
       || lo + len > total
    then invalid_arg "Layer_pack.Extent.of_src: bad requested range";
    let slen = src_len src in
    if slen < header_bytes then fail "payload shorter than header";
    let ver = src_u8 src 0 in
    let hk = src_u8 src 1 in
    let hj = Int64.to_int (src_i64 src 2) in
    let hcount = src_u32 src 10 in
    if hk <> k || hj <> j_set then fail "payload belongs to another layer";
    if hcount <> total then fail "entry count does not match layer";
    let fresh () =
      {
        x_j_set = j_set;
        x_k = k;
        x_total = total;
        x_lo = lo;
        x_len = len;
        x_present = 0;
        x_data = Heap (Bytes.make (len * entry_bytes) '\xff');
      }
    in
    let count_present t =
      let n = ref 0 in
      for i = 0 to t.x_len - 1 do
        if data_i64 t.x_data (i * entry_bytes) >= 0L then incr n
      done;
      !n
    in
    if ver = version then begin
      (* whole-layer dense v1: the slice is plain offset arithmetic *)
      if slen <> header_bytes + (total * entry_bytes) then
        fail "truncated layer data";
      let t = fresh () in
      let b =
        match t.x_data with Heap b -> b | Map _ -> assert false
      in
      (match src with
      | S_string s ->
          Bytes.blit_string s
            (header_bytes + (lo * entry_bytes))
            b 0 (len * entry_bytes)
      | S_big big ->
          for i = 0 to Bytes.length b - 1 do
            Bytes.set b i
              (Bigarray.Array1.get big (header_bytes + (lo * entry_bytes) + i))
          done);
      t.x_present <- count_present t;
      t
    end
    else if ver = sparse_version then begin
      if slen < sparse_header_bytes then fail "payload shorter than header";
      let present = src_u32 src 14 in
      if present < 0 || present > total then fail "inconsistent sparse header";
      if slen <> sparse_header_bytes + (present * sparse_entry_bytes) then
        fail "truncated layer data";
      let t = fresh () in
      let b = match t.x_data with Heap b -> b | Map _ -> assert false in
      for i = 0 to present - 1 do
        let off = sparse_header_bytes + (i * sparse_entry_bytes) in
        let r = src_u32 src off in
        if r < 0 || r >= total then fail "entry rank out of range";
        if r >= lo && r < lo + len then begin
          let c = src_i64 src (off + 4) in
          if c < 0L then fail "negative cost in sparse entry";
          let doff = (r - lo) * entry_bytes in
          if Bytes.get_int64_le b doff >= 0L then
            fail "duplicate rank in sparse entries";
          Bytes.set_int64_le b doff c;
          Bytes.set_uint8 b (doff + 8) (src_u8 src (off + 12));
          t.x_present <- t.x_present + 1
        end
      done;
      t
    end
    else if ver = packed_version || ver = raw_extent_version then begin
      if slen < extent_header_bytes then fail "payload shorter than header";
      let hlo = src_u32 src 14 in
      let hlen = src_u32 src 18 in
      let hpresent = src_u32 src 22 in
      let payload_len = src_u32 src 26 in
      if hlo < 0 || hlen < 1 || hlo + hlen > total then fail "bad extent range";
      if hpresent < 0 || hpresent > hlen then fail "inconsistent header";
      if not (hlo <= lo && lo + len <= hlo + hlen) then
        fail "payload does not cover the requested range";
      if slen <> extent_header_bytes + payload_len then fail "truncated extent";
      if ver = raw_extent_version then begin
        if payload_len <> hlen * entry_bytes then fail "payload length mismatch";
        let t =
          if hlo = lo && hlen = len then
            (* exact match: a mapped payload stays mapped (zero copy) *)
            match src with
            | S_big big ->
                {
                  x_j_set = j_set;
                  x_k = k;
                  x_total = total;
                  x_lo = lo;
                  x_len = len;
                  x_present = 0;
                  x_data =
                    Map
                      (Bigarray.Array1.sub big extent_header_bytes payload_len);
                }
            | S_string s ->
                let t = fresh () in
                let b =
                  match t.x_data with Heap b -> b | Map _ -> assert false
                in
                Bytes.blit_string s extent_header_bytes b 0 (len * entry_bytes);
                t
          else begin
            let t = fresh () in
            let b =
              match t.x_data with Heap b -> b | Map _ -> assert false
            in
            let base = extent_header_bytes + ((lo - hlo) * entry_bytes) in
            (match src with
            | S_string s -> Bytes.blit_string s base b 0 (len * entry_bytes)
            | S_big big ->
                for i = 0 to Bytes.length b - 1 do
                  Bytes.set b i (Bigarray.Array1.get big (base + i))
                done);
            t
          end
        in
        t.x_present <- count_present t;
        (if hlo = lo && hlen = len && t.x_present <> hpresent then
           fail "present count does not match data");
        t
      end
      else begin
        let t = fresh () in
        let b = match t.x_data with Heap b -> b | Map _ -> assert false in
        let last_rank, stored =
          decompress_into fail src ~pos:extent_header_bytes ~payload_len
            ~src_lo:hlo ~src_present:hpresent ~dst:b ~want_lo:lo ~want_len:len
        in
        if last_rank >= hlo + hlen then fail "entry rank out of range";
        t.x_present <- stored;
        t
      end
    end
    else fail "unknown version"
end

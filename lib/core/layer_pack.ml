let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let r = ref 1 in
    for i = 1 to k do
      r := !r * (n - k + i) / i
    done;
    !r
  end

(* One cardinality layer of the DP, bit-packed: entry [r] of [data] holds
   the (cost, choice) of the k-subset whose combinatorial (colex) rank
   within [j_set] is [r].  8-byte LE cost + 1-byte choice — a fixed 9
   bytes per subset where the hashtable pair cost ~10x that in boxed
   words, and a layout that serialises to a spill payload for free.

   A branch-and-bound sweep leaves pruned subsets unset; the in-memory
   layout stays dense (rank arithmetic is the whole point) but [encode]
   switches to a sparse (rank, cost, choice) triple format whenever that
   is smaller, so pruning shrinks spill volume too. *)

let entry_bytes = 9
let header_bytes = 14
let version = 1
let sparse_header_bytes = 18
let sparse_entry_bytes = 13
let sparse_version = 2

type t = {
  j_set : Varset.t;
  k : int;
  count : int;
  mutable present : int;
  pascal : int array array;
      (* pascal.(p).(i) = C(p,i), for the rank formula below *)
  data : Bytes.t;
}

let pascal_table ~m ~k =
  let t = Array.make_matrix (m + 1) (k + 1) 0 in
  for p = 0 to m do
    t.(p).(0) <- 1;
    for i = 1 to min p k do
      t.(p).(i) <- t.(p - 1).(i - 1) + t.(p - 1).(i)
    done
  done;
  t

let create ~j_set ~k =
  let m = Varset.cardinal j_set in
  if k < 1 || k > m then invalid_arg "Layer_pack.create: bad cardinality";
  let count = binomial m k in
  let data = Bytes.make (count * entry_bytes) '\xff' in
  { j_set; k; count; present = 0; pascal = pascal_table ~m ~k; data }

let k t = t.k
let j_set t = t.j_set
let count t = t.count
let present t = t.present
let size_bytes t = header_bytes + Bytes.length t.data

(* Combinatorial number system: the rank of {c_1 < ... < c_k} among the
   k-subsets in increasing-bitmask (= colex) order is sum_i C(c_i, i),
   where c_i is the position of the i-th element within [j_set].  This
   matches the order {!Varset.iter_subsets_of} enumerates. *)
let rank t ksub =
  if (not (Varset.subset ksub t.j_set)) || Varset.cardinal ksub <> t.k then
    invalid_arg "Layer_pack: subset not of this layer";
  let r = ref 0 and i = ref 0 in
  Varset.iter
    (fun e ->
      incr i;
      r := !r + t.pascal.(Varset.rank_in e t.j_set).(!i))
    ksub;
  !r

(* Inverse of {!rank}: peel off the largest position p with C(p,i) <= r
   for i = k downto 1. *)
let unrank t r =
  let members = Array.of_list (Varset.elements t.j_set) in
  let r = ref r and sub = ref Varset.empty in
  let p = ref (Array.length members - 1) in
  for i = t.k downto 1 do
    while t.pascal.(!p).(i) > !r do
      decr p
    done;
    sub := Varset.add members.(!p) !sub;
    r := !r - t.pascal.(!p).(i)
  done;
  !sub

let is_set_at t off = Bytes.get_int64_le t.data off >= 0L

let set t ksub ~cost ~choice =
  if cost < 0 then invalid_arg "Layer_pack.set: negative cost";
  if choice < 0 || choice > 0xff then invalid_arg "Layer_pack.set: bad choice";
  let off = rank t ksub * entry_bytes in
  if not (is_set_at t off) then t.present <- t.present + 1;
  Bytes.set_int64_le t.data off (Int64.of_int cost);
  Bytes.set_uint8 t.data (off + 8) choice

let mem t ksub = is_set_at t (rank t ksub * entry_bytes)

let cost t ksub =
  let off = rank t ksub * entry_bytes in
  let c = Int64.to_int (Bytes.get_int64_le t.data off) in
  if c < 0 then invalid_arg "Layer_pack.cost: entry never set";
  c

let choice t ksub =
  let off = rank t ksub * entry_bytes in
  if Bytes.get_int64_le t.data off < 0L then
    invalid_arg "Layer_pack.choice: entry never set";
  Bytes.get_uint8 t.data (off + 8)

let of_entries ~j_set ~k entries =
  let t = create ~j_set ~k in
  if Array.length entries > t.count then
    invalid_arg "Layer_pack.of_entries: more entries than subsets";
  Array.iter (fun (ksub, cost, choice) -> set t ksub ~cost ~choice) entries;
  t

(* Unset (pruned) subsets are skipped: a partial layer iterates only the
   states the sweep kept. *)
let iter t f =
  Varset.iter_subsets_of t.j_set ~size:t.k (fun ksub ->
      let off = rank t ksub * entry_bytes in
      if is_set_at t off then
        f ksub
          ~cost:(Int64.to_int (Bytes.get_int64_le t.data off))
          ~choice:(Bytes.get_uint8 t.data (off + 8)))

let entries t =
  let out = Array.make t.present (Varset.empty, 0, 0) in
  let i = ref 0 in
  iter t (fun ksub ~cost ~choice ->
      out.(!i) <- (ksub, cost, choice);
      incr i);
  out

let encode_dense t =
  let b = Bytes.create (header_bytes + Bytes.length t.data) in
  Bytes.set_uint8 b 0 version;
  Bytes.set_uint8 b 1 t.k;
  Bytes.set_int64_le b 2 (Int64.of_int t.j_set);
  Bytes.set_int32_le b 10 (Int32.of_int t.count);
  Bytes.blit t.data 0 b header_bytes (Bytes.length t.data);
  Bytes.unsafe_to_string b

let encode_sparse t =
  let b = Bytes.create (sparse_header_bytes + (t.present * sparse_entry_bytes)) in
  Bytes.set_uint8 b 0 sparse_version;
  Bytes.set_uint8 b 1 t.k;
  Bytes.set_int64_le b 2 (Int64.of_int t.j_set);
  Bytes.set_int32_le b 10 (Int32.of_int t.count);
  Bytes.set_int32_le b 14 (Int32.of_int t.present);
  let out = ref sparse_header_bytes in
  for r = 0 to t.count - 1 do
    let off = r * entry_bytes in
    if is_set_at t off then begin
      Bytes.set_int32_le b !out (Int32.of_int r);
      Bytes.set_int64_le b (!out + 4) (Bytes.get_int64_le t.data off);
      Bytes.set_uint8 b (!out + 12) (Bytes.get_uint8 t.data (off + 8));
      out := !out + sparse_entry_bytes
    end
  done;
  Bytes.unsafe_to_string b

let encode t =
  if sparse_header_bytes + (t.present * sparse_entry_bytes)
     < header_bytes + (t.count * entry_bytes)
  then encode_sparse t
  else encode_dense t

let decode s =
  let fail msg = failwith (Printf.sprintf "Layer_pack.decode: %s" msg) in
  if String.length s < header_bytes then fail "payload shorter than header";
  let v = Char.code s.[0] in
  if v <> version && v <> sparse_version then fail "unknown version";
  let k = Char.code s.[1] in
  let j_set = Int64.to_int (String.get_int64_le s 2) in
  let count = Int32.to_int (String.get_int32_le s 10) in
  let m = Varset.cardinal j_set in
  if j_set < 0 || k < 1 || k > m then fail "inconsistent header";
  if count <> binomial m k then fail "entry count does not match layer";
  let t = create ~j_set ~k in
  (if v = version then begin
     if String.length s <> header_bytes + (count * entry_bytes) then
       fail "truncated layer data";
     Bytes.blit_string s header_bytes t.data 0 (count * entry_bytes);
     (* recover [present] by scanning for set sign bits *)
     for r = 0 to count - 1 do
       if is_set_at t (r * entry_bytes) then t.present <- t.present + 1
     done
   end
   else begin
     if String.length s < sparse_header_bytes then
       fail "payload shorter than sparse header";
     let present = Int32.to_int (String.get_int32_le s 14) in
     if present < 0 || present > count then fail "inconsistent sparse header";
     if String.length s <> sparse_header_bytes + (present * sparse_entry_bytes)
     then fail "truncated layer data";
     for i = 0 to present - 1 do
       let off = sparse_header_bytes + (i * sparse_entry_bytes) in
       let r = Int32.to_int (String.get_int32_le s off) in
       if r < 0 || r >= count then fail "entry rank out of range";
       let c = String.get_int64_le s (off + 4) in
       if c < 0L then fail "negative cost in sparse entry";
       let doff = r * entry_bytes in
       if not (is_set_at t doff) then t.present <- t.present + 1;
       Bytes.set_int64_le t.data doff c;
       Bytes.set_uint8 t.data (doff + 8) (Char.code s.[off + 12])
     done;
     if t.present <> present then fail "duplicate rank in sparse entries"
   end);
  t

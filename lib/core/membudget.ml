type sink = {
  spill : k:int -> ext:int -> string -> unit;
  reload : k:int -> ext:int -> Layer_pack.src;
}

let default_extent_bytes = 1024 * 1024

type t = {
  budget_bytes : int option;
  extent_bytes : int;
  sink : sink option;
  mutable resident_bytes : int;
  mutable peak_resident_bytes : int;
  mutable peak_layer_bytes : int;
  mutable layers_spilled : int;
  mutable extents_spilled : int;
  mutable bytes_spilled : int;
  mutable raw_bytes_spilled : int;
  mutable reloads : int;
  mutable bytes_reloaded : int;
}

let create ?budget_bytes ?(extent_bytes = default_extent_bytes) ?sink () =
  (match budget_bytes with
  | Some b when b <= 0 -> invalid_arg "Membudget.create: budget must be > 0"
  | Some _ when sink = None ->
      invalid_arg "Membudget.create: a budget needs a spill sink"
  | _ -> ());
  if extent_bytes <= 0 then
    invalid_arg "Membudget.create: extent size must be > 0";
  {
    budget_bytes;
    extent_bytes;
    sink;
    resident_bytes = 0;
    peak_resident_bytes = 0;
    peak_layer_bytes = 0;
    layers_spilled = 0;
    extents_spilled = 0;
    bytes_spilled = 0;
    raw_bytes_spilled = 0;
    reloads = 0;
    bytes_reloaded = 0;
  }

let unbounded () = create ()
let budget t = t.budget_bytes
let extent_bytes t = t.extent_bytes
let sink t = t.sink
let resident_bytes t = t.resident_bytes
let peak_resident_bytes t = t.peak_resident_bytes
let peak_layer_bytes t = t.peak_layer_bytes
let layers_spilled t = t.layers_spilled
let extents_spilled t = t.extents_spilled
let bytes_spilled t = t.bytes_spilled
let raw_bytes_spilled t = t.raw_bytes_spilled
let reloads t = t.reloads
let bytes_reloaded t = t.bytes_reloaded

let compression_ratio t =
  if t.bytes_spilled = 0 then 1.0
  else float_of_int t.raw_bytes_spilled /. float_of_int t.bytes_spilled

let over_budget t =
  match t.budget_bytes with None -> false | Some b -> t.resident_bytes > b

let grew t bytes =
  t.resident_bytes <- t.resident_bytes + bytes;
  if t.resident_bytes > t.peak_resident_bytes then
    t.peak_resident_bytes <- t.resident_bytes

let shrank t bytes = t.resident_bytes <- max 0 (t.resident_bytes - bytes)

let note_layer_bytes t bytes =
  if bytes > t.peak_layer_bytes then t.peak_layer_bytes <- bytes

let note_layer_spill t = t.layers_spilled <- t.layers_spilled + 1

let note_spill t ~raw ~stored =
  t.extents_spilled <- t.extents_spilled + 1;
  t.raw_bytes_spilled <- t.raw_bytes_spilled + raw;
  t.bytes_spilled <- t.bytes_spilled + stored

let note_reload t bytes =
  t.reloads <- t.reloads + 1;
  t.bytes_reloaded <- t.bytes_reloaded + bytes

(* Accepts "4096", "64k", "16M", "2G" (binary multiples).  Kept liberal
   on case, strict on everything else, so a typo fails loudly instead of
   silently meaning bytes. *)
let parse_bytes s =
  let s = String.trim s in
  let len = String.length s in
  if len = 0 then Error "empty size"
  else
    let unit_of c =
      match Char.lowercase_ascii c with
      | 'k' -> Some 1024
      | 'm' -> Some (1024 * 1024)
      | 'g' -> Some (1024 * 1024 * 1024)
      | _ -> None
    in
    let digits, mult =
      match unit_of s.[len - 1] with
      | Some m -> (String.sub s 0 (len - 1), m)
      | None -> (s, 1)
    in
    match int_of_string_opt digits with
    | None -> Error (Printf.sprintf "bad size %S (want BYTES[k|M|G])" s)
    | Some n when n <= 0 -> Error "size must be > 0"
    | Some n -> Ok (n * mult)

let to_args t =
  Ovo_obs.Json.
    [
      ( "budget_bytes",
        match t.budget_bytes with Some b -> Int b | None -> Null );
      ("extent_bytes", Int t.extent_bytes);
      ("peak_resident_bytes", Int t.peak_resident_bytes);
      ("peak_layer_bytes", Int t.peak_layer_bytes);
      ("layers_spilled", Int t.layers_spilled);
      ("extents_spilled", Int t.extents_spilled);
      ("bytes_spilled", Int t.bytes_spilled);
      ("raw_bytes_spilled", Int t.raw_bytes_spilled);
      ("reloads", Int t.reloads);
      ("bytes_reloaded", Int t.bytes_reloaded);
    ]

let to_json_value t = Ovo_obs.Json.Obj (to_args t)
let to_json t = Ovo_obs.Json.to_string (to_json_value t)

let pp ppf t =
  Format.fprintf ppf
    "budget=%s peak_resident=%d peak_layer=%d spilled=%d layers/%d extents \
     (%d B, %d raw) reloads=%d"
    (match t.budget_bytes with Some b -> string_of_int b | None -> "none")
    t.peak_resident_bytes t.peak_layer_bytes t.layers_spilled t.extents_spilled
    t.bytes_spilled t.raw_bytes_spilled t.reloads

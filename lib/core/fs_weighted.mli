(** Weighted exact ordering: minimise [Σ_j w_(π[j]) · Cost_(π[j])]
    instead of the plain node count.

    Lemma 3 makes the width of a level a function of the set split
    alone, so the Friedman–Supowit recurrence survives any per-variable
    level weighting: [WCOST_I = min_h (WCOST_(I∖h) + w_h · Cost_h)].
    Non-uniform weights model levels with different implementation costs
    (e.g. pass-transistor stages, or variables whose tests dominate a
    traversal workload).  Uniform weights reduce to {!Fs}. *)

type result = {
  weighted_cost : int;  (** the minimised objective *)
  mincost : int;  (** plain node count of the chosen ordering *)
  order : int array;  (** read-last first, as everywhere *)
  diagram : Diagram.t;
}

val run :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Compact.kind ->
  ?engine:Engine.t ->
  ?cancel:Cancel.t ->
  ?metrics:Metrics.t ->
  ?membudget:Membudget.t ->
  ?prune:Bound.t ->
  weights:int array ->
  Ovo_boolfun.Truthtable.t ->
  result
(** Weights must be non-negative, one per variable.  [O*(3^n)] like the
    unweighted DP.  [engine]/[cancel]/[metrics] as in {!Fs.run}. *)

val run_mtable :
  ?trace:Ovo_obs.Trace.t ->
  ?kind:Compact.kind ->
  ?engine:Engine.t ->
  ?cancel:Cancel.t ->
  ?metrics:Metrics.t ->
  ?membudget:Membudget.t ->
  ?prune:Bound.t ->
  weights:int array ->
  Ovo_boolfun.Mtable.t ->
  result

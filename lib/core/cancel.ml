exception Cancelled

type t = {
  fired : bool Atomic.t;
  deadline : float;  (** absolute clock value; [infinity] = none *)
  clock : unit -> float;
}

let never =
  { fired = Atomic.make false; deadline = infinity; clock = (fun () -> 0.) }

let make () =
  { fired = Atomic.make false; deadline = infinity; clock = (fun () -> 0.) }

let with_deadline ?(clock = Ovo_obs.Trace.monotonic) seconds =
  { fired = Atomic.make false; deadline = clock () +. seconds; clock }

(* [never] is a shared constant; firing it would cancel every default
   run in the process, so [cancel] ignores it *)
let cancel t = if t != never then Atomic.set t.fired true

let is_cancelled t =
  Atomic.get t.fired
  || (t.deadline < infinity && t.clock () >= t.deadline)

let check t = if is_cancelled t then raise Cancelled

let protect _t f = try Ok (f ()) with Cancelled -> Error `Cancelled

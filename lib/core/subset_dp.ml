module Trace = Ovo_obs.Trace

module type COMPACTABLE = sig
  type state

  val cost_if_compacted : metrics:Metrics.t -> state -> int -> int
  val materialise : metrics:Metrics.t -> state -> int -> state
  val mincost : state -> int
  val free : state -> Varset.t
end

type costs = {
  cost_j_set : Varset.t;
  cost_upto : int;
  cost_table : (Varset.t, int) Hashtbl.t;
  cost_choice : (Varset.t, int) Hashtbl.t;
}

type progress = {
  p_layer : int;
  p_entries : (Varset.t * int * int) array;
}

let binomial = Layer_pack.binomial

(* The packed cost/choice store of one sweep: layer [k] is split into
   fixed-size {!Layer_pack.Extent}s (9 bytes per subset, ~1 MiB of dense
   payload per extent) instead of two hashtable bindings, and under a
   {!Membudget} completed extents are spilled through the injected sink,
   lowest cardinality first — the forward sweep never re-reads them, and
   backtracking reloads only the extents its level-synchronous chains
   touch.  Because eviction happens extent-by-extent as each one is
   packed, peak resident stays within budget + one extent even when a
   single layer (the k≈n/2 hump) exceeds the whole budget.
   State-independent, so it lives outside the functor. *)
module Layers = struct
  module Extent = Layer_pack.Extent

  type eslot = Resident of Extent.t | Spilled

  type lrec = {
    l_total : int;  (* C(m,k): subsets in the layer *)
    l_elen : int;  (* ranks per extent (the last extent may be shorter) *)
    l_extents : eslot option array;
    mutable l_spilled_once : bool;
  }

  type t = {
    j_set : Varset.t;
    base_cost : int;
    mb : Membudget.t;
    trace : Trace.t;
    pascal : int array array;  (* shared rank/unrank table, k up to [upto] *)
    slots : lrec option array;  (* indexed by cardinality; slot 0 unused *)
    mutable memo : (int * int * Extent.t) option;
        (* last transiently reloaded (k, ext, extent): colex-ordered
           readers touch consecutive ranks, so a 1-slot memo turns
           per-entry fetches into one reload per extent *)
  }

  let create ~trace ~mb ~base_cost ~upto j_set =
    {
      j_set;
      base_cost;
      mb;
      trace;
      pascal = Layer_pack.pascal_table ~m:(Varset.cardinal j_set) ~k:upto;
      slots = Array.make (upto + 1) None;
      memo = None;
    }

  let rank t ksub = Layer_pack.rank_in ~pascal:t.pascal ~j_set:t.j_set ksub

  let ext_len lr ei = min lr.l_elen (lr.l_total - (ei * lr.l_elen))

  let spill_extent t ~k lr ei x =
    match Membudget.sink t.mb with
    | None -> ()
    | Some sink ->
        let raw = Extent.size_bytes x in
        let payload = Extent.encode x in
        let stored = String.length payload in
        (* transient-once accounting: the dense extent's charge is
           released as the packed copy is charged — the two are never on
           the books together, and since the encoder never grows
           ([stored <= raw]), eviction monotonically frees memory *)
        Membudget.shrank t.mb raw;
        Membudget.grew t.mb stored;
        Trace.with_span t.trace ~cat:"spill"
          ~args:(fun () ->
            [
              ("k", Ovo_obs.Json.Int k);
              ("ext", Ovo_obs.Json.Int ei);
              ("raw", Ovo_obs.Json.Int raw);
              ("bytes", Ovo_obs.Json.Int stored);
            ])
          "spill.write"
          (fun () -> sink.Membudget.spill ~k ~ext:ei payload);
        Membudget.shrank t.mb stored;
        if not lr.l_spilled_once then begin
          lr.l_spilled_once <- true;
          Membudget.note_layer_spill t.mb
        end;
        Membudget.note_spill t.mb ~raw ~stored;
        Trace.counter t.trace "spill.bytes_spilled"
          (float_of_int (Membudget.bytes_spilled t.mb));
        lr.l_extents.(ei) <- Some Spilled

  let enforce_budget t =
    let k = ref 1 in
    while Membudget.over_budget t.mb && !k < Array.length t.slots do
      (match t.slots.(!k) with
      | None -> ()
      | Some lr ->
          let ei = ref 0 in
          while Membudget.over_budget t.mb && !ei < Array.length lr.l_extents
          do
            (match lr.l_extents.(!ei) with
            | Some (Resident x) -> spill_extent t ~k:!k lr !ei x
            | Some Spilled | None -> ());
            incr ei
          done);
      incr k
    done

  (* Pack one completed layer's triples, extent by extent: each extent
     is filled, charged and immediately subject to budget enforcement,
     so the layer as a whole need never be resident at once. *)
  let put_entries t ~k entries =
    let total = binomial (Varset.cardinal t.j_set) k in
    let elen =
      max 1 (Membudget.extent_bytes t.mb / Layer_pack.entry_bytes)
    in
    let n_ext = (total + elen - 1) / elen in
    let lr =
      {
        l_total = total;
        l_elen = elen;
        l_extents = Array.make n_ext None;
        l_spilled_once = false;
      }
    in
    t.slots.(k) <- Some lr;
    (* bucket the triples by extent index; entries arrive in colex order
       but ranks are computed anyway, so no order is assumed *)
    let buckets = Array.make n_ext [] in
    Array.iter
      (fun ((ksub, _, _) as e) ->
        let r = rank t ksub in
        buckets.(r / elen) <- (r, e) :: buckets.(r / elen))
      entries;
    let layer_bytes = ref 0 in
    for ei = 0 to n_ext - 1 do
      let lo = ei * elen in
      let x =
        Extent.create ~j_set:t.j_set ~k ~total ~lo ~len:(ext_len lr ei)
      in
      List.iter
        (fun (r, (_, cost, choice)) -> Extent.set x ~rank:r ~cost ~choice)
        buckets.(ei);
      buckets.(ei) <- [];
      layer_bytes := !layer_bytes + Extent.size_bytes x;
      Membudget.grew t.mb (Extent.size_bytes x);
      lr.l_extents.(ei) <- Some (Resident x);
      enforce_budget t
    done;
    Membudget.note_layer_bytes t.mb !layer_bytes

  (* Fetch one extent for reading.  A spilled extent is decoded
     transiently and not re-accounted resident: readers touch ranks in
     colex runs, so the 1-slot memo bounds transient reloads to one
     live extent at a time. *)
  let fetch_extent t ~k ~ei =
    match t.slots.(k) with
    | None -> invalid_arg "Subset_dp: layer not computed"
    | Some lr -> (
        match lr.l_extents.(ei) with
        | None -> invalid_arg "Subset_dp: extent not computed"
        | Some (Resident x) -> x
        | Some Spilled -> (
            match t.memo with
            | Some (mk, mei, x) when mk = k && mei = ei -> x
            | _ -> (
                match Membudget.sink t.mb with
                | None -> assert false
                | Some sink ->
                    Trace.with_span t.trace ~cat:"spill"
                      ~args:(fun () ->
                        [
                          ("k", Ovo_obs.Json.Int k);
                          ("ext", Ovo_obs.Json.Int ei);
                        ])
                      "spill.reload"
                      (fun () ->
                        let src = sink.Membudget.reload ~k ~ext:ei in
                        let lo = ei * lr.l_elen in
                        let x =
                          try
                            Extent.of_src src ~j_set:t.j_set ~k ~total:lr.l_total
                              ~lo ~len:(ext_len lr ei)
                          with Invalid_argument m -> failwith m
                        in
                        Membudget.note_reload t.mb (Layer_pack.src_length src);
                        t.memo <- Some (k, ei, x);
                        x))))

  let extent_of t ~k ksub =
    match t.slots.(k) with
    | None -> invalid_arg "Subset_dp: layer not computed"
    | Some lr ->
        let r = rank t ksub in
        (r, fetch_extent t ~k ~ei:(r / lr.l_elen))

  let cost t ksub =
    if Varset.is_empty ksub then t.base_cost
    else
      let r, x = extent_of t ~k:(Varset.cardinal ksub) ksub in
      Extent.cost x ~rank:r

  (* Backtrack the recorded tight choices of every [target] (all of one
     cardinality [m]) level-synchronously: at each level the chains'
     ranks are grouped by extent, so a spilled extent costs one reload
     however many chains cross it — and extents no chain touches are
     never read at all.  Chains come back first-placed-first, ready to
     replay. *)
  let chains t targets =
    let m =
      if Array.length targets = 0 then 0 else Varset.cardinal targets.(0)
    in
    let subs = Array.copy targets in
    let acc = Array.make (Array.length targets) [] in
    for k = m downto 1 do
      match t.slots.(k) with
      | None -> invalid_arg "Subset_dp: layer not computed"
      | Some lr ->
          let cache = Hashtbl.create 4 in
          Array.iteri
            (fun i sub ->
              let r = rank t sub in
              let ei = r / lr.l_elen in
              let x =
                match Hashtbl.find_opt cache ei with
                | Some x -> x
                | None ->
                    let x = fetch_extent t ~k ~ei in
                    Hashtbl.add cache ei x;
                    x
              in
              let h = Extent.choice x ~rank:r in
              acc.(i) <- h :: acc.(i);
              subs.(i) <- Varset.remove h sub)
            subs
    done;
    acc

  (* Visit every set entry of layer [k], extent by extent in rank
     order. *)
  let iter_layer t k f =
    match t.slots.(k) with
    | None -> invalid_arg "Subset_dp: layer not computed"
    | Some lr ->
        for ei = 0 to Array.length lr.l_extents - 1 do
          Extent.iter (fetch_extent t ~k ~ei) (fun ~rank ~cost ~choice ->
              f
                (Layer_pack.unrank_in ~pascal:t.pascal ~j_set:t.j_set ~k rank)
                ~cost ~choice)
        done

  (* Unpack everything back into the legacy hashtable form (the public
     {!costs}/[mincosts] API). *)
  let to_tables t upto =
    let mincosts = Hashtbl.create 64 and choices = Hashtbl.create 64 in
    Hashtbl.replace mincosts Varset.empty t.base_cost;
    for k = 1 to upto do
      iter_layer t k (fun ksub ~cost ~choice ->
          Hashtbl.replace mincosts ksub cost;
          Hashtbl.replace choices ksub choice)
    done;
    (mincosts, choices)
end

module Make (S : COMPACTABLE) = struct
  type t = {
    j_set : Varset.t;
    upto : int;
    mincosts : (Varset.t, int) Hashtbl.t;
    layer : (Varset.t, S.state) Hashtbl.t;
  }

  let validate ~base j_set upto =
    if not (Varset.subset j_set (S.free base)) then
      invalid_arg "Subset_dp.run: J not free in the base state";
    let j_size = Varset.cardinal j_set in
    let upto = match upto with None -> j_size | Some k -> k in
    if upto < 0 || upto > j_size then invalid_arg "Subset_dp.run: bad upto";
    upto

  let subsets_of j_set ~size =
    let acc = ref [] in
    Varset.iter_subsets_of j_set ~size (fun k -> acc := k :: !acc);
    Array.of_list (List.rev !acc)

  (* The two-pass layer step for one subset.  Pass 1 probes every
     candidate [h] for its cost only (Lemma 7 minimisation) — no state,
     no node-table copy.  Pass 2 materialises the single winner, unless
     [skip_state] (the caller will never read this layer's states).
     Ties keep the smallest [h], as the one-pass code did.  The previous
     layer is frozen, so this function is safe on Engine.Par workers.

     [prune = Some (b, cap, base_free)] turns the step into a
     branch-and-bound one: a predecessor missing from [prev] was pruned
     (a subset all of whose predecessors are gone is unreachable and
     pruned too), and a winner whose cost plus admissible remaining
     bound exceeds the incumbent snapshot [cap] is dropped — [None].
     [cap] is read once per layer on the calling domain, so Par workers
     prune against the same incumbent as Seq and the surviving state
     set is deterministic.  An optimal chain's prefixes always satisfy
     [cost + remaining <= optimum <= cap], so exactly one full-cost
     chain to every optimal target survives and answers stay
     bit-identical (a pruned candidate never beats the surviving tight
     choice, so ties still keep the smallest [h]). *)
  let eval_subset ~prev ~skip_state ~prune metrics ksub =
    let best_h = ref (-1) and best_c = ref max_int in
    Varset.iter
      (fun h ->
        match Hashtbl.find_opt prev (Varset.remove h ksub) with
        | None -> ()
        | Some before ->
            let c = S.cost_if_compacted ~metrics before h in
            if c < !best_c then begin
              best_c := c;
              best_h := h
            end)
      ksub;
    if !best_h < 0 then begin
      assert (Option.is_some prune);
      None
    end
    else
      let keep =
        match prune with
        | None -> true
        | Some (b, cap, base_free) ->
            !best_c + Bound.remaining b (Varset.diff base_free ksub) <= cap
      in
      if not keep then None
      else
        let st =
          if skip_state then None
          else begin
            let before = Hashtbl.find prev (Varset.remove !best_h ksub) in
            let st = S.materialise ~metrics before !best_h in
            assert (S.mincost st = !best_c);
            Some st
          end
        in
        Some (ksub, !best_h, !best_c, st)

  (* Replaying a subset's recorded choice chain over the base yields a
     state bit-identical to the one the original sweep materialised for
     it: node ids are assigned in scan order, which is a deterministic
     function of the placement sequence alone. *)
  let chain_of choices ksub =
    let rec go k acc =
      if Varset.is_empty k then acc
      else
        let h = Hashtbl.find choices k in
        go (Varset.remove h k) (h :: acc)
    in
    go ksub []

  (* A resume must be a consecutive, complete prefix of layers 1..m with
     every entry a |layer|-subset of J; anything else means the
     checkpoint belongs to a different run.  Returns m (0 when empty). *)
  let validate_resume ~upto j_set resume =
    let j_size = Varset.cardinal j_set in
    let expect = ref 1 in
    List.iter
      (fun p ->
        if p.p_layer <> !expect || p.p_layer > upto then
          invalid_arg
            "Subset_dp.run: resume layers must be consecutive from 1";
        if Array.length p.p_entries <> binomial j_size p.p_layer then
          invalid_arg "Subset_dp.run: resume layer is incomplete";
        Array.iter
          (fun (ksub, _, h) ->
            if
              (not (Varset.subset ksub j_set))
              || Varset.cardinal ksub <> p.p_layer
              || not (Varset.mem h ksub)
            then invalid_arg "Subset_dp.run: resume entry does not match J")
          p.p_entries;
        incr expect)
      resume;
    !expect - 1

  (* One full DP sweep.  [keep_last_states]: materialise and keep the
     states of the final cardinality layer (algorithm FS* proper);
     cost-only callers skip them and backtrack instead.  Intermediate
     layers are always materialised (the next layer's probes need them)
     and dropped eagerly as soon as their successor layer is complete —
     only the packed integer layers outlive a layer.

     Each completed layer is bit-packed extent by extent into
     {!Layer_pack.Extent}s by {!Layers.put_entries}, which charges [mb]
     per extent and spills past the budget; packing happens on the
     calling domain after the parallel join, so the packed bytes — like
     the results they encode — are identical under Seq and Par.

     [on_layer] fires once per completed cardinality layer with that
     layer's (subset, cost, tight choice) triples — the checkpoint
     hook — {e before} the layer is packed, so a checkpoint-backed spill
     sink ({!Ovo_store.Checkpoint.sink}) already holds the layer's
     record when its extents are evicted; the same boundaries [cancel]
     is polled at.  [resume] preloads the
     packed layers from previously completed progress and rebuilds the
     last layer's states by replaying the recorded choice chains, so
     the sweep continues exactly where the checkpointed run stopped and
     stays bit-identical to an uninterrupted one under both engines.

     With a recording tracer, every cardinality layer is one span
     (category "dp") whose args carry the subset count and the layer's
     metrics delta (merged across domains for Engine.Par; the per-domain
     child spans come from Engine.map).  The whole sweep is a parent
     span.  Spill traffic adds "spill" spans and counters — only ever
     emitted when a budget is set, so unbudgeted traces are unchanged.
     Probes stay untraced — the tracer's granularity floor is a layer,
     so the disabled-tracer cost on the hot path is zero. *)
  let sweep ~trace ~engine ~cancel ~metrics ~mb ~prune ~upto ~keep_last_states
      ~on_layer ~resume ~base j_set =
    (match (prune, resume) with
    | Some _, _ :: _ ->
        (* a checkpoint records complete layers; a pruned sweep neither
           produces nor accepts them *)
        invalid_arg "Subset_dp: pruning cannot resume from a checkpoint"
    | _ -> ());
    let base_free = S.free base in
    let layers =
      Layers.create ~trace ~mb ~base_cost:(S.mincost base) ~upto j_set
    in
    let start_k = validate_resume ~upto j_set resume + 1 in
    List.iter
      (fun p -> Layers.put_entries layers ~k:p.p_layer p.p_entries)
      resume;
    let layer = ref (Hashtbl.create 1) in
    if start_k = 1 then Hashtbl.replace !layer Varset.empty base
    else begin
      let m = start_k - 1 in
      (* the resumed layer's states are only needed when the sweep will
         read them: either another layer follows, or the caller keeps
         the final layer (FS* proper) *)
      if m < upto || keep_last_states then
        Trace.with_span trace ~cat:"dp"
          ~args:(fun () ->
            [
              ("k", Ovo_obs.Json.Int m);
              ( "subsets",
                Ovo_obs.Json.Int (binomial (Varset.cardinal j_set) m) );
            ])
          "dp.rebuild"
          (fun () ->
            let tbl = Hashtbl.create 64 in
            let subs = subsets_of j_set ~size:m in
            let chains = Layers.chains layers subs in
            Array.iteri
              (fun i ksub ->
                let st =
                  List.fold_left
                    (fun st h -> S.materialise ~metrics st h)
                    base chains.(i)
                in
                (* [subs] is in colex order, so the per-subset cost
                   probes walk each spilled extent once via the memo *)
                assert (S.mincost st = Layers.cost layers ksub);
                Hashtbl.replace tbl ksub st)
              subs;
            layer := tbl)
    end;
    Trace.with_span trace ~cat:"dp"
      ~args:(fun () ->
        [
          ("vars", Ovo_obs.Json.Int (Varset.cardinal j_set));
          ("upto", Ovo_obs.Json.Int upto);
          ("resumed_from", Ovo_obs.Json.Int (start_k - 1));
          ("engine", Ovo_obs.Json.String (Engine.to_string engine));
        ]
        @ (match prune with None -> [] | Some b -> Bound.to_args b))
      "dp.sweep"
      (fun () ->
        for k = start_k to upto do
          (* cooperative cancellation: a fired token (deadline or explicit)
             aborts the sweep between layers — the finished layers' work
             is discarded and Cancelled propagates to the caller's
             [Cancel.protect] *)
          Cancel.check cancel;
          let prev = !layer in
          let skip_state = k = upto && not keep_last_states in
          let subs = subsets_of j_set ~size:k in
          (* the incumbent is frozen for the whole layer: workers prune
             against this snapshot, and only the post-join code below
             (calling domain) tightens it — Seq and Par keep identical
             surviving-state sets *)
          let pr =
            Option.map (fun b -> (b, Bound.incumbent b, base_free)) prune
          in
          let before = Metrics.snapshot metrics in
          let results =
            Trace.with_span trace ~cat:"dp"
              ~args:(fun () ->
                ("k", Ovo_obs.Json.Int k)
                :: ("subsets", Ovo_obs.Json.Int (Array.length subs))
                :: ("skip_state", Ovo_obs.Json.Bool skip_state)
                :: Metrics.to_args
                     (Metrics.diff (Metrics.snapshot metrics) before))
              (Printf.sprintf "layer k=%d" k)
              (fun () ->
                Engine.map ~trace ~cancel engine ~metrics
                  (eval_subset ~prev ~skip_state ~prune:pr)
                  subs)
          in
          let kept =
            Array.of_seq (Seq.filter_map Fun.id (Array.to_seq results))
          in
          (match prune with
          | None -> ()
          | Some b ->
              let pruned = Array.length subs - Array.length kept in
              Bound.note_pruned b pruned;
              if Array.length kept = 0 then
                raise
                  (Bound.Pruned_out
                     (Printf.sprintf
                        "Subset_dp: layer k=%d lost all %d states to the \
                         incumbent %d — no completion of this base beats it"
                        k (Array.length subs) (Bound.incumbent b)));
              (* layer boundary: tighten the incumbent from states whose
                 completion cost is known exactly (achievable totals),
                 and record the trajectory *)
              let best_lb = ref max_int in
              Array.iter
                (fun (ksub, _, c, _) ->
                  let free = Varset.diff base_free ksub in
                  (match Bound.exact_completion b free with
                  | Some extra -> Bound.observe b (c + extra)
                  | None -> ());
                  let lb = c + Bound.remaining b free in
                  if lb < !best_lb then best_lb := lb)
                kept;
              Bound.record_layer b
                {
                  Bound.ls_layer = k;
                  ls_kept = Array.length kept;
                  ls_pruned = pruned;
                  ls_lower = !best_lb;
                  ls_incumbent = Bound.incumbent b;
                };
              Trace.counter trace "prune.states_pruned"
                (float_of_int (Bound.states_pruned b));
              if Bound.incumbent b < max_int then
                Trace.counter trace "prune.incumbent"
                  (float_of_int (Bound.incumbent b)));
          let next = Hashtbl.create (Array.length kept * 2) in
          Array.iter
            (fun (ksub, _, _, st) ->
              match st with
              | Some st -> Hashtbl.replace next ksub st
              | None -> ())
            kept;
          let entries = Array.map (fun (ksub, h, c, _) -> (ksub, c, h)) kept in
          (* checkpoint first, pack second: once [on_layer] has made the
             layer durable, a checkpoint-backed spill sink can treat
             eviction of its extents as a no-op *)
          on_layer { p_layer = k; p_entries = entries };
          Layers.put_entries layers ~k entries;
          (* eager drop: only the packed extents survive *)
          Hashtbl.reset prev;
          layer := next
        done);
    (layers, !layer)

  let membudget_of = function
    | Some mb -> mb
    | None -> Membudget.unbounded ()

  let run ?(trace = Trace.null) ?(engine = Engine.Seq)
      ?(cancel = Cancel.never) ?(metrics = Metrics.ambient) ?membudget ?prune
      ?(on_layer = fun _ -> ()) ?(resume = []) ?upto ~base j_set =
    let upto = validate ~base j_set upto in
    let mb = membudget_of membudget in
    let layers, layer =
      sweep ~trace ~engine ~cancel ~metrics ~mb ~prune ~upto
        ~keep_last_states:true ~on_layer ~resume ~base j_set
    in
    let mincosts, _ = Layers.to_tables layers upto in
    { j_set; upto; mincosts; layer }

  let costs ?(trace = Trace.null) ?(engine = Engine.Seq)
      ?(cancel = Cancel.never) ?(metrics = Metrics.ambient) ?membudget ?prune
      ?(on_layer = fun _ -> ()) ?(resume = []) ?upto ~base j_set =
    let upto = validate ~base j_set upto in
    let mb = membudget_of membudget in
    let layers, _ =
      sweep ~trace ~engine ~cancel ~metrics ~mb ~prune ~upto
        ~keep_last_states:false ~on_layer ~resume ~base j_set
    in
    let mincosts, choices = Layers.to_tables layers upto in
    { cost_j_set = j_set; cost_upto = upto; cost_table = mincosts;
      cost_choice = choices }

  let reconstruct ?(trace = Trace.null) ?(metrics = Metrics.ambient) ~base ct
      target =
    if not (Varset.subset target ct.cost_j_set)
       || Varset.cardinal target > ct.cost_upto
    then invalid_arg "Subset_dp.reconstruct: target not covered";
    (* Backtrack the recorded tight transitions: [cost_choice] holds, for
       every K, the last-placed h of an optimal suborder of K.  Walking
       it from [target] down to the empty set yields the placement
       sequence; replaying it over [base] materialises the optimal state
       in |target| compactions. *)
    let before = Metrics.snapshot metrics in
    let st =
      Trace.with_span trace ~cat:"dp"
        ~args:(fun () ->
          ("placements", Ovo_obs.Json.Int (Varset.cardinal target))
          :: Metrics.to_args (Metrics.diff (Metrics.snapshot metrics) before))
        "dp.reconstruct"
        (fun () ->
          List.fold_left
            (fun st h -> S.materialise ~metrics st h)
            base
            (chain_of ct.cost_choice target))
    in
    assert (S.mincost st = Hashtbl.find ct.cost_table target);
    st

  (* Under pruning a subset may have been discarded — surface that as
     {!Bound.Pruned_out} (the branch is provably not worth completing)
     rather than [Not_found]. *)
  let state_of t ksub =
    match Hashtbl.find_opt t.layer ksub with
    | Some st -> st
    | None ->
        raise (Bound.Pruned_out "Subset_dp.state_of: the state was pruned")

  let mincost_of t ksub =
    match Hashtbl.find_opt t.mincosts ksub with
    | Some c -> c
    | None ->
        raise (Bound.Pruned_out "Subset_dp.mincost_of: the state was pruned")

  (* The out-of-core path: sweep in packed (cost-only) mode, then
     backtrack directly over the packed layers — spilled layers are
     reloaded lazily, one fetch per cardinality, and the hashtable form
     is never built. *)
  let complete ?(trace = Trace.null) ?(engine = Engine.Seq)
      ?(cancel = Cancel.never) ?(metrics = Metrics.ambient) ?membudget ?prune
      ?(on_layer = fun _ -> ()) ?(resume = []) ~base j_set =
    let upto = validate ~base j_set None in
    let mb = membudget_of membudget in
    let layers, _ =
      sweep ~trace ~engine ~cancel ~metrics ~mb ~prune ~upto
        ~keep_last_states:false ~on_layer ~resume ~base j_set
    in
    let before = Metrics.snapshot metrics in
    let st =
      Trace.with_span trace ~cat:"dp"
        ~args:(fun () ->
          ("placements", Ovo_obs.Json.Int (Varset.cardinal j_set))
          :: Metrics.to_args (Metrics.diff (Metrics.snapshot metrics) before))
        "dp.reconstruct"
        (fun () ->
          let chain =
            match Layers.chains layers [| j_set |] with
            | [| c |] -> c
            | _ -> assert false
          in
          List.fold_left (fun st h -> S.materialise ~metrics st h) base chain)
    in
    assert (S.mincost st = Layers.cost layers j_set);
    st
end
